// Command pnptune is the end-to-end PnP tuner CLI: it trains the GNN on
// every corpus application except the target (leave-one-out, as the paper
// evaluates) and prints the recommended OpenMP configuration for each
// region of the target application — without executing the target.
//
// Usage:
//
//	pnptune -machine haswell -app LULESH -cap 40
//	pnptune -machine skylake -app gemm -objective edp
//	pnptune -list                      # list corpus applications
package main

import (
	"flag"
	"fmt"
	"os"

	"pnptuner/internal/core"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/kernels"
	"pnptuner/internal/metrics"
)

func main() {
	machine := flag.String("machine", "haswell", "machine model: haswell or skylake")
	app := flag.String("app", "", "target application (see -list)")
	capW := flag.Float64("cap", 0, "power cap in watts (0 = all Table I caps)")
	objective := flag.String("objective", "time", "tuning objective: time or edp")
	epochs := flag.Int("epochs", 0, "override training epochs")
	list := flag.Bool("list", false, "list corpus applications and exit")
	flag.Parse()

	if *list {
		for _, name := range kernels.AppNames() {
			fmt.Println(name)
		}
		return
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "pnptune: -app is required (try -list)")
		os.Exit(2)
	}

	m, err := hw.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	d, err := dataset.Build(m)
	if err != nil {
		fatal(err)
	}
	var fold dataset.Fold
	found := false
	for _, f := range d.LOOCVFolds() {
		if f.App == *app {
			fold, found = f, true
			break
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown application %q (try -list)", *app))
	}

	cfg := core.DefaultModelConfig()
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}

	switch *objective {
	case "time":
		res := core.TrainPower(d, fold, cfg)
		fmt.Printf("trained on %d regions in %s (loss %.3f)\n",
			len(fold.Train), res.Stats.Duration.Round(1e7), res.Stats.FinalLoss)
		for _, rd := range fold.Val {
			fmt.Printf("region %s:\n", rd.Region.ID)
			for ci, cw := range d.Space.Caps() {
				if *capW != 0 && cw != *capW {
					continue
				}
				pick := res.Pred[rd.Region.ID][ci]
				cfgP := d.Space.Configs[pick]
				def := rd.DefaultResult(ci, d.Space).TimeSec
				got := rd.Results[ci][pick].TimeSec
				fmt.Printf("  %3.0fW: %-22s speedup vs default %.2fx (oracle %.2fx)\n",
					cw, cfgP, metrics.Speedup(def, got), metrics.Speedup(def, rd.BestTime(ci)))
			}
		}
	case "edp":
		res := core.TrainEDP(d, fold, cfg)
		fmt.Printf("trained on %d regions in %s (loss %.3f)\n",
			len(fold.Train), res.Stats.Duration.Round(1e7), res.Stats.FinalLoss)
		tdpIdx := len(d.Space.Caps()) - 1
		for _, rd := range fold.Val {
			pick := res.Pred[rd.Region.ID]
			cw, cfgP := d.Space.At(pick)
			ci, ki := d.Space.SplitJoint(pick)
			def := rd.DefaultResult(tdpIdx, d.Space)
			got := rd.Results[ci][ki]
			fmt.Printf("region %s: cap %3.0fW, %-22s EDP improvement %.2fx, speedup %.2fx, greenup %.2fx\n",
				rd.Region.ID, cw, cfgP,
				metrics.EDPImprovement(def.EDP(), got.EDP()),
				metrics.Speedup(def.TimeSec, got.TimeSec),
				metrics.Greenup(def.EnergyJ(), got.EnergyJ()))
		}
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pnptune: %v\n", err)
	os.Exit(1)
}
