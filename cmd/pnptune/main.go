// Command pnptune is the end-to-end PnP tuner CLI: one front door to
// every tuning strategy of the unified autotune engine.
//
// The default strategy ("gnn") trains the GNN on every corpus
// application except the target (leave-one-out, as the paper evaluates)
// and prints the recommended OpenMP configuration for each region of the
// target application — without executing the target. "hybrid" lets the
// model shortlist top candidates and validates them with a few noisy
// executions; "bliss" and "opentuner" run the search baselines under
// their execution budgets, no model at all.
//
// Trained models are reusable artifacts: -save persists the model after
// training, and -load serves predictions from a saved model without
// retraining (the registry and pnpserve build on the same format).
//
// Usage:
//
//	pnptune -machine haswell -app LULESH -cap 40
//	pnptune -machine skylake -app gemm -objective edp
//	pnptune -machine haswell -app LULESH -strategy hybrid -budget 3
//	pnptune -machine haswell -app XSBench -strategy bliss -budget 20
//	pnptune -machine haswell -app gemm -strategy opentuner -objective energy
//	pnptune -machine haswell -app LULESH -save lulesh.pnpm
//	pnptune -machine haswell -app LULESH -load lulesh.pnpm
//	pnptune -list                      # list corpus applications
//
// With -remote, pnptune becomes a thin front-end to a running pnpserve:
// every region of the target application is tuned server-side through
// the v1 API (the server trains or loads the models), and -async routes
// each session through the async job endpoints instead of blocking the
// request.
//
//	pnptune -machine haswell -app gemm -remote http://localhost:8080
//	pnptune -machine haswell -app gemm -strategy hybrid -remote http://localhost:8080 -async
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/autotune"
	"pnptuner/internal/bliss"
	"pnptuner/internal/client"
	"pnptuner/internal/core"
	"pnptuner/internal/dataset"
	"pnptuner/internal/experiments"
	"pnptuner/internal/hw"
	"pnptuner/internal/kernels"
	"pnptuner/internal/metrics"
	"pnptuner/internal/opentuner"
)

// Valid flag values, also the rejection messages' contents.
var (
	validObjectives = []string{"time", "edp", "energy"}
	validStrategies = []string{"gnn", "bliss", "opentuner", "hybrid"}
)

func main() {
	machine := flag.String("machine", "haswell", "machine model: haswell or skylake")
	app := flag.String("app", "", "target application (see -list)")
	capW := flag.Float64("cap", 0, "power cap in watts (0 = all Table I caps)")
	objective := flag.String("objective", "time", "tuning objective: "+strings.Join(validObjectives, ", "))
	strategy := flag.String("strategy", "gnn", "tuning strategy: "+strings.Join(validStrategies, ", "))
	budget := flag.Int("budget", 0, "execution budget per tuning task (0 = strategy default)")
	epochs := flag.Int("epochs", 0, "override training epochs")
	savePath := flag.String("save", "", "save the trained model to this path")
	loadPath := flag.String("load", "", "load a saved model instead of training")
	remote := flag.String("remote", "", "pnpserve base URL: tune server-side via the v1 API instead of in-process models")
	async := flag.Bool("async", false, "with -remote, run each session as an async job (submit → poll → result)")
	measureBudget := flag.Int("measure", 0,
		"with -remote, real executions granted per session instead of dataset replay; samples feed the server's model refresh (0 = replay)")
	quantize := flag.Bool("quantize", false,
		"with -strategy gnn, predict through the float32 quantized model snapshot (picks match float64 bit-for-bit)")
	list := flag.Bool("list", false, "list corpus applications and exit")
	flag.Parse()

	if *list {
		for _, name := range kernels.AppNames() {
			fmt.Println(name)
		}
		return
	}
	// Reject unknown enum flags loudly, listing the valid values —
	// never fall back to a default silently.
	if !slices.Contains(validObjectives, *objective) {
		fatal(fmt.Errorf("unknown objective %q (valid: %s)", *objective, strings.Join(validObjectives, ", ")))
	}
	if !slices.Contains(validStrategies, *strategy) {
		fatal(fmt.Errorf("unknown strategy %q (valid: %s)", *strategy, strings.Join(validStrategies, ", ")))
	}
	modelDriven := *strategy == "gnn" || *strategy == "hybrid"
	if *objective == "energy" && modelDriven {
		fatal(fmt.Errorf("objective \"energy\" has no trained model; use -strategy bliss or opentuner"))
	}
	if *budget < 0 {
		fatal(fmt.Errorf("negative budget %d", *budget))
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "pnptune: -app is required (try -list)")
		os.Exit(2)
	}
	if *async && *remote == "" {
		fatal(fmt.Errorf("-async only applies with -remote"))
	}
	if *quantize && (*strategy != "gnn" || *remote != "") {
		fatal(fmt.Errorf("-quantize only applies with -strategy gnn in-process"))
	}
	if *measureBudget != 0 && *remote == "" {
		fatal(fmt.Errorf("-measure only applies with -remote"))
	}
	if *remote != "" {
		runRemote(*remote, *machine, *app, *objective, *strategy, *capW, *budget, *measureBudget, *async)
		return
	}

	m, err := hw.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	d, err := dataset.Build(m)
	if err != nil {
		fatal(err)
	}
	fold, found := d.FoldByApp(*app)
	if !found {
		fatal(fmt.Errorf("unknown application %q (try -list)", *app))
	}

	cfg := core.DefaultModelConfig()
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	scenario := "loocv:" + fold.App

	switch *strategy {
	case "gnn":
		runGNN(d, fold, cfg, scenario, *objective, *capW, *loadPath, *savePath, *quantize)
	case "hybrid":
		runHybrid(d, fold, cfg, scenario, *objective, *capW, *loadPath, *savePath, pick(*budget, experiments.HybridK))
	case "bliss":
		runSearch(d, fold, bliss.Entry("BLISS"), *objective, *capW, pick(*budget, bliss.Budget))
	case "opentuner":
		runSearch(d, fold, opentuner.Entry("OpenTuner"), *objective, *capW, pick(*budget, opentuner.Budget))
	}
}

func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// runGNN is the paper's zero-execution scenario: train (or load) and
// predict.
func runGNN(d *dataset.Dataset, fold dataset.Fold, cfg core.ModelConfig, scenario, objective string, capW float64, loadPath, savePath string, quantize bool) {
	switch objective {
	case "time":
		var model *core.Model
		var meta core.ModelMeta
		var pred map[string][]int
		if loadPath != "" {
			model, meta = loadModel(loadPath, d, objective, scenario)
			pred = core.PredictPower(d, model, fold.Val)
		} else {
			res := core.TrainPower(d, fold, cfg)
			fmt.Printf("trained on %d regions in %s (loss %.3f)\n",
				len(fold.Train), res.Stats.Duration.Round(1e7), res.Stats.FinalLoss)
			model, meta, pred = res.Model, core.MetaFor(d, scenario, objective), res.Pred
		}
		saveModel(model, savePath, meta)
		if quantize {
			fmt.Println("predicting through the float32 quantized snapshot")
			pred = core.PredictPowerQuantized(model.MustQuantize(), fold.Val)
		}
		printTimePicks(d, fold, capW, func(id string, ci int) (int, int) { return pred[id][ci], 0 })
	case "edp":
		var model *core.Model
		var meta core.ModelMeta
		var pred map[string]int
		if loadPath != "" {
			model, meta = loadModel(loadPath, d, objective, scenario)
			pred = core.PredictEDP(d, model, fold.Val)
		} else {
			res := core.TrainEDP(d, fold, cfg)
			fmt.Printf("trained on %d regions in %s (loss %.3f)\n",
				len(fold.Train), res.Stats.Duration.Round(1e7), res.Stats.FinalLoss)
			model, meta, pred = res.Model, core.MetaFor(d, scenario, objective), res.Pred
		}
		saveModel(model, savePath, meta)
		if quantize {
			fmt.Println("predicting through the float32 quantized snapshot")
			pred = core.PredictEDPQuantized(model.MustQuantize(), fold.Val)
		}
		printJointPicks(d, fold, autotune.EDP{}, func(id string) (int, int) { return pred[id], 0 })
	}
}

// runHybrid trains (or loads) the model, then refines its top-k
// shortlist with a small noisy execution budget per tuning task.
func runHybrid(d *dataset.Dataset, fold dataset.Fold, cfg core.ModelConfig, scenario, objective string, capW float64, loadPath, savePath string, k int) {
	var model *core.Model
	var meta core.ModelMeta
	if loadPath != "" {
		model, meta = loadModel(loadPath, d, objective, scenario)
	} else {
		var stats core.TrainStats
		switch objective {
		case "time":
			res := core.TrainPower(d, fold, cfg)
			model, stats = res.Model, res.Stats
		case "edp":
			res := core.TrainEDP(d, fold, cfg)
			model, stats = res.Model, res.Stats
		}
		fmt.Printf("trained on %d regions in %s (loss %.3f)\n",
			len(fold.Train), stats.Duration.Round(1e7), stats.FinalLoss)
		meta = core.MetaFor(d, scenario, objective)
	}
	saveModel(model, savePath, meta)
	fmt.Printf("hybrid tuning: model shortlists top-%d, %d validation runs per task\n", k, k)

	switch objective {
	case "time":
		topk := core.TopKPower(d, model, fold.Val, k)
		entry := autotune.HybridEntry(experiments.TunerPnPHybrid, func(t autotune.Task) []int {
			return topk[t.RegionID][t.Obj.(autotune.TimeUnderCap).Cap]
		})
		entry.Budget = k
		printTimePicks(d, fold, capW, func(id string, ci int) (int, int) {
			rd := d.Region(id)
			res := autotune.RunEntry(entry, rd, timeTask(d, rd, ci))
			return res.Best, res.Evals
		})
	case "edp":
		topk := core.TopKEDP(d, model, fold.Val, k)
		entry := autotune.HybridEntry(experiments.TunerPnPHybrid, func(t autotune.Task) []int { return topk[t.RegionID] })
		entry.Budget = k
		printJointPicks(d, fold, autotune.EDP{}, func(id string) (int, int) {
			rd := d.Region(id)
			res := autotune.RunEntry(entry, rd, jointTask(d, rd, autotune.EDP{}))
			return res.Best, res.Evals
		})
	}
}

// runSearch runs a model-free search baseline under its execution budget.
func runSearch(d *dataset.Dataset, fold dataset.Fold, entry autotune.Entry, objective string, capW float64, budget int) {
	entry.Budget = budget
	fmt.Printf("strategy %s: %d executions per tuning task, no model\n", entry.Name, budget)
	switch objective {
	case "time":
		printTimePicks(d, fold, capW, func(id string, ci int) (int, int) {
			rd := d.Region(id)
			res := autotune.RunEntry(entry, rd, timeTask(d, rd, ci))
			return res.Best, res.Evals
		})
	case "edp":
		printJointPicks(d, fold, autotune.EDP{}, func(id string) (int, int) {
			rd := d.Region(id)
			res := autotune.RunEntry(entry, rd, jointTask(d, rd, autotune.EDP{}))
			return res.Best, res.Evals
		})
	case "energy":
		printJointPicks(d, fold, autotune.Energy{}, func(id string) (int, int) {
			rd := d.Region(id)
			res := autotune.RunEntry(entry, rd, jointTask(d, rd, autotune.Energy{}))
			return res.Best, res.Evals
		})
	}
}

func timeTask(d *dataset.Dataset, rd *dataset.RegionData, ci int) autotune.Task {
	return autotune.Task{
		Problem:  autotune.Problem{Obj: autotune.TimeUnderCap{Cap: ci}, Space: d.Space, Seed: rd.Region.Seed},
		RegionID: rd.Region.ID,
	}
}

func jointTask(d *dataset.Dataset, rd *dataset.RegionData, obj autotune.Objective) autotune.Task {
	return autotune.Task{
		Problem:  autotune.Problem{Obj: obj, Space: d.Space, Seed: rd.Region.Seed},
		RegionID: rd.Region.ID,
	}
}

// printTimePicks prints the per-cap recommendations of the target's
// regions; pickAt returns (config index, executions spent).
func printTimePicks(d *dataset.Dataset, fold dataset.Fold, capW float64, pickAt func(id string, ci int) (int, int)) {
	for _, rd := range fold.Val {
		fmt.Printf("region %s:\n", rd.Region.ID)
		for ci, cw := range d.Space.Caps() {
			if capW != 0 && cw != capW {
				continue
			}
			idx, evals := pickAt(rd.Region.ID, ci)
			cfgP := d.Space.Configs[idx]
			def := rd.DefaultResult(ci, d.Space).TimeSec
			got := rd.Results[ci][idx].TimeSec
			runs := ""
			if evals > 0 {
				runs = fmt.Sprintf(" [%d runs]", evals)
			}
			fmt.Printf("  %3.0fW: %-22s speedup vs default %.2fx (oracle %.2fx)%s\n",
				cw, cfgP, metrics.Speedup(def, got), metrics.Speedup(def, rd.BestTime(ci)), runs)
		}
	}
}

// printJointPicks prints joint (cap, config) recommendations for a
// joint-space objective, with improvement vs default at TDP and fraction
// of the oracle.
func printJointPicks(d *dataset.Dataset, fold dataset.Fold, obj autotune.Objective, pickOf func(id string) (int, int)) {
	tdpIdx := len(d.Space.Caps()) - 1
	for _, rd := range fold.Val {
		idx, evals := pickOf(rd.Region.ID)
		cw, cfgP := d.Space.At(idx)
		ci, ki := d.Space.SplitJoint(idx)
		def := rd.DefaultResult(tdpIdx, d.Space)
		got := rd.Results[ci][ki]
		runs := ""
		if evals > 0 {
			runs = fmt.Sprintf(" [%d runs]", evals)
		}
		switch obj.(type) {
		case autotune.Energy:
			_, oracleV := autotune.Oracle(rd, d.Space, obj)
			fmt.Printf("region %s: cap %3.0fW, %-22s greenup %.2fx, speedup %.2fx, oracle frac %.2f%s\n",
				rd.Region.ID, cw, cfgP,
				metrics.Greenup(def.EnergyJ(), got.EnergyJ()),
				metrics.Speedup(def.TimeSec, got.TimeSec),
				oracleV/obj.Value(rd, d.Space, idx), runs)
		default:
			fmt.Printf("region %s: cap %3.0fW, %-22s EDP improvement %.2fx, speedup %.2fx, greenup %.2fx%s\n",
				rd.Region.ID, cw, cfgP,
				metrics.EDPImprovement(def.EDP(), got.EDP()),
				metrics.Speedup(def.TimeSec, got.TimeSec),
				metrics.Greenup(def.EnergyJ(), got.EnergyJ()), runs)
		}
	}
}

// loadModel restores a saved model (and its original metadata) and
// refuses one trained for a different machine, search space, or
// objective. A scenario mismatch only warns: serving a model for an app
// it trained on is legitimate, but the printed "vs oracle" numbers are
// then inflated by training leakage and must not be read as held-out.
func loadModel(path string, d *dataset.Dataset, objective, wantScenario string) (*core.Model, core.ModelMeta) {
	m, meta, err := core.LoadModel(path)
	if err != nil {
		fatal(err)
	}
	if err := meta.Check(d); err != nil {
		fatal(err)
	}
	if meta.Objective != objective {
		fatal(fmt.Errorf("model %s was trained for objective %q, not %q", path, meta.Objective, objective))
	}
	if meta.Scenario != wantScenario {
		fmt.Fprintf(os.Stderr,
			"pnptune: warning: model was trained for scenario %q, not %q — the target's regions may have been in its training set, so reported improvements are not held-out numbers\n",
			meta.Scenario, wantScenario)
	}
	fmt.Printf("loaded model %s (%s/%s/%s), skipping training\n",
		path, meta.Machine, meta.Objective, meta.Scenario)
	return m, meta
}

// saveModel persists the model when -save was given. meta is the model's
// true provenance — for a -load'ed model, its original metadata, so
// re-saving can never relabel what the model was trained on.
func saveModel(m *core.Model, path string, meta core.ModelMeta) {
	if path == "" {
		return
	}
	if err := m.Save(path, meta); err != nil {
		fatal(err)
	}
	fmt.Printf("saved model to %s\n", path)
}

// runRemote tunes every region of the target application through a
// running pnpserve: the same leave-one-out scenario as local mode, but
// the server owns the models and the engine sessions. With async, each
// session goes submit → poll → result through the job endpoints (the
// finished job's result is bit-identical to the synchronous reply).
func runRemote(base, machine, app, objective, strategy string, capW float64, budget, measureBudget int, async bool) {
	corpus, err := kernels.Compile()
	if err != nil {
		fatal(err)
	}
	regions, ok := corpus.ByApp[app]
	if !ok {
		fatal(fmt.Errorf("unknown application %q (try -list)", app))
	}

	c := client.New(base, client.WithRetries(3, 200*time.Millisecond))
	ctx := context.Background()
	mode := "sync"
	if async {
		mode = "async jobs"
	}
	fmt.Printf("remote tuning via %s (%s): machine %s, strategy %s, objective %s\n",
		base, mode, machine, strategy, objective)

	for _, region := range regions {
		req := api.TuneRequest{
			Machine:       machine,
			Objective:     objective,
			Strategy:      strategy,
			Scenario:      "loocv:" + app,
			RegionID:      region.ID,
			Budget:        budget,
			MeasureBudget: measureBudget,
		}
		var resp *api.TuneResponse
		if async {
			job, err := c.TuneAsync(ctx, req)
			if err != nil {
				fatal(remoteErr(err))
			}
			fin, err := c.Wait(ctx, job.ID, 100*time.Millisecond)
			if err != nil {
				fatal(remoteErr(err))
			}
			switch fin.Status {
			case api.JobDone:
				resp = fin.Result
			case api.JobFailed:
				fatal(fmt.Errorf("job %s failed: %v", fin.ID, fin.Error))
			default:
				fatal(fmt.Errorf("job %s ended %s", fin.ID, fin.Status))
			}
		} else {
			resp, err = c.Tune(ctx, req)
			if err != nil {
				fatal(remoteErr(err))
			}
		}

		header := ""
		if resp.ModelVersion > 0 {
			header += fmt.Sprintf(" (model v%d)", resp.ModelVersion)
		}
		if resp.MeasuredRuns > 0 {
			header += fmt.Sprintf(" [%d measured runs]", resp.MeasuredRuns)
		}
		fmt.Printf("region %s:%s\n", resp.RegionID, header)
		for _, p := range resp.Picks {
			if capW != 0 && p.CapW != capW {
				continue
			}
			runs := ""
			if p.Evals > 0 {
				runs = fmt.Sprintf(" [%d runs]", p.Evals)
			}
			fmt.Printf("  %3.0fW: %-22s oracle frac %.2f%s\n", p.CapW, p.Config, p.OracleFrac, runs)
		}
	}
}

// remoteErr decorates API failures with an actionable hint.
func remoteErr(err error) error {
	switch client.ErrorCode(err) {
	case api.CodeModelNotFound:
		return fmt.Errorf("%w\n(the server has no trainer for this model; preload it or start pnpserve with training enabled)", err)
	case "":
		return fmt.Errorf("%w\n(is pnpserve running at the -remote URL?)", err)
	}
	return err
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pnptune: %v\n", err)
	os.Exit(1)
}
