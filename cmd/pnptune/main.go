// Command pnptune is the end-to-end PnP tuner CLI: it trains the GNN on
// every corpus application except the target (leave-one-out, as the paper
// evaluates) and prints the recommended OpenMP configuration for each
// region of the target application — without executing the target.
//
// Trained models are reusable artifacts: -save persists the model after
// training, and -load serves predictions from a saved model without
// retraining (the registry and pnpserve build on the same format).
//
// Usage:
//
//	pnptune -machine haswell -app LULESH -cap 40
//	pnptune -machine skylake -app gemm -objective edp
//	pnptune -machine haswell -app LULESH -save lulesh.pnpm
//	pnptune -machine haswell -app LULESH -load lulesh.pnpm
//	pnptune -list                      # list corpus applications
package main

import (
	"flag"
	"fmt"
	"os"

	"pnptuner/internal/core"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/kernels"
	"pnptuner/internal/metrics"
)

func main() {
	machine := flag.String("machine", "haswell", "machine model: haswell or skylake")
	app := flag.String("app", "", "target application (see -list)")
	capW := flag.Float64("cap", 0, "power cap in watts (0 = all Table I caps)")
	objective := flag.String("objective", "time", "tuning objective: time or edp")
	epochs := flag.Int("epochs", 0, "override training epochs")
	savePath := flag.String("save", "", "save the trained model to this path")
	loadPath := flag.String("load", "", "load a saved model instead of training")
	list := flag.Bool("list", false, "list corpus applications and exit")
	flag.Parse()

	if *list {
		for _, name := range kernels.AppNames() {
			fmt.Println(name)
		}
		return
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "pnptune: -app is required (try -list)")
		os.Exit(2)
	}

	m, err := hw.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	d, err := dataset.Build(m)
	if err != nil {
		fatal(err)
	}
	fold, found := d.FoldByApp(*app)
	if !found {
		fatal(fmt.Errorf("unknown application %q (try -list)", *app))
	}

	cfg := core.DefaultModelConfig()
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	scenario := "loocv:" + fold.App

	switch *objective {
	case "time":
		var model *core.Model
		var meta core.ModelMeta
		var pred map[string][]int
		if *loadPath != "" {
			model, meta = loadModel(*loadPath, d, *objective, scenario)
			pred = core.PredictPower(d, model, fold.Val)
		} else {
			res := core.TrainPower(d, fold, cfg)
			fmt.Printf("trained on %d regions in %s (loss %.3f)\n",
				len(fold.Train), res.Stats.Duration.Round(1e7), res.Stats.FinalLoss)
			model, meta, pred = res.Model, core.MetaFor(d, scenario, *objective), res.Pred
		}
		saveModel(model, *savePath, meta)
		for _, rd := range fold.Val {
			fmt.Printf("region %s:\n", rd.Region.ID)
			for ci, cw := range d.Space.Caps() {
				if *capW != 0 && cw != *capW {
					continue
				}
				pick := pred[rd.Region.ID][ci]
				cfgP := d.Space.Configs[pick]
				def := rd.DefaultResult(ci, d.Space).TimeSec
				got := rd.Results[ci][pick].TimeSec
				fmt.Printf("  %3.0fW: %-22s speedup vs default %.2fx (oracle %.2fx)\n",
					cw, cfgP, metrics.Speedup(def, got), metrics.Speedup(def, rd.BestTime(ci)))
			}
		}
	case "edp":
		var model *core.Model
		var meta core.ModelMeta
		var pred map[string]int
		if *loadPath != "" {
			model, meta = loadModel(*loadPath, d, *objective, scenario)
			pred = core.PredictEDP(d, model, fold.Val)
		} else {
			res := core.TrainEDP(d, fold, cfg)
			fmt.Printf("trained on %d regions in %s (loss %.3f)\n",
				len(fold.Train), res.Stats.Duration.Round(1e7), res.Stats.FinalLoss)
			model, meta, pred = res.Model, core.MetaFor(d, scenario, *objective), res.Pred
		}
		saveModel(model, *savePath, meta)
		tdpIdx := len(d.Space.Caps()) - 1
		for _, rd := range fold.Val {
			pick := pred[rd.Region.ID]
			cw, cfgP := d.Space.At(pick)
			ci, ki := d.Space.SplitJoint(pick)
			def := rd.DefaultResult(tdpIdx, d.Space)
			got := rd.Results[ci][ki]
			fmt.Printf("region %s: cap %3.0fW, %-22s EDP improvement %.2fx, speedup %.2fx, greenup %.2fx\n",
				rd.Region.ID, cw, cfgP,
				metrics.EDPImprovement(def.EDP(), got.EDP()),
				metrics.Speedup(def.TimeSec, got.TimeSec),
				metrics.Greenup(def.EnergyJ(), got.EnergyJ()))
		}
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}
}

// loadModel restores a saved model (and its original metadata) and
// refuses one trained for a different machine, search space, or
// objective. A scenario mismatch only warns: serving a model for an app
// it trained on is legitimate, but the printed "vs oracle" numbers are
// then inflated by training leakage and must not be read as held-out.
func loadModel(path string, d *dataset.Dataset, objective, wantScenario string) (*core.Model, core.ModelMeta) {
	m, meta, err := core.LoadModel(path)
	if err != nil {
		fatal(err)
	}
	if err := meta.Check(d); err != nil {
		fatal(err)
	}
	if meta.Objective != objective {
		fatal(fmt.Errorf("model %s was trained for objective %q, not %q", path, meta.Objective, objective))
	}
	if meta.Scenario != wantScenario {
		fmt.Fprintf(os.Stderr,
			"pnptune: warning: model was trained for scenario %q, not %q — the target's regions may have been in its training set, so reported improvements are not held-out numbers\n",
			meta.Scenario, wantScenario)
	}
	fmt.Printf("loaded model %s (%s/%s/%s), skipping training\n",
		path, meta.Machine, meta.Objective, meta.Scenario)
	return m, meta
}

// saveModel persists the model when -save was given. meta is the model's
// true provenance — for a -load'ed model, its original metadata, so
// re-saving can never relabel what the model was trained on.
func saveModel(m *core.Model, path string, meta core.ModelMeta) {
	if path == "" {
		return
	}
	if err := m.Save(path, meta); err != nil {
		fatal(err)
	}
	fmt.Printf("saved model to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pnptune: %v\n", err)
	os.Exit(1)
}
