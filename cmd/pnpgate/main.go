// Command pnpgate is the multi-replica serving router: it fronts N
// shared-nothing pnpserve replicas behind the same /v1 API surface,
// consistent-hashing each model key (machine, scenario, objective) to
// an owning replica, probing replica health in the background, failing
// retryable requests over to the next replica in the key's preference
// order, and single-flighting cold-model warm-up so one replica trains
// while its peers later fetch the blob.
//
// Usage:
//
//	pnpgate -addr :8090 -replicas http://host1:8080,http://host2:8080,http://host3:8080
//
// Endpoints (all under /v1, same contract as one replica):
//
//	POST   /v1/predict     routed by model key, failover on transport errors
//	POST   /v1/tune        sync routed like predict; async creates a job on
//	                       the owner and returns its "r<replica>-" scoped ID
//	GET    /v1/jobs        merged listing across live replicas
//	GET    /v1/jobs/{id}   routed to the owning replica by ID prefix
//	DELETE /v1/jobs/{id}   likewise
//	GET    /v1/models      merged listing, each entry tagged with its replica
//	GET    /v1/healthz     gate liveness + per-replica breaker states
//	GET    /v1/traces/{id} the gate-side span timeline of one request
//	GET    /metrics        Prometheus text exposition (pnpgate_* families)
//
// Requests carry an X-Request-ID trace ID (minted here when absent) that
// the gate stamps onto every proxied replica attempt, so one ID pulls
// the gate-side spans from this process and the replica-side spans from
// the owning pnpserve's /v1/traces/{id}.
//
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pnptuner/internal/gate"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated pnpserve base URLs (order is the stable replica index)")
	vnodes := flag.Int("vnodes", gate.DefaultVNodes, "virtual nodes per replica on the hash ring")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive transport failures that mark a replica down")
	recoverOKs := flag.Int("recover-successes", 2, "consecutive successes a half-open replica needs to be up")
	probeInterval := flag.Duration("probe-interval", time.Second, "background health-probe period")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	attemptTimeout := flag.Duration("attempt-timeout", time.Minute, "per-replica attempt bound; a black-holed replica costs one slice of the request budget, not all of it (negative = unbounded)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "fixed hedge trigger for idempotent predicts (0 = adaptive, from the observed p99)")
	noHedge := flag.Bool("no-hedge", false, "disable hedged predicts entirely")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/ for in-place profiling of the routing hot paths")
	traceLog := flag.Int("trace-log", 0,
		"log every Nth request's root span via slog (0 disables trace sampling logs)")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	g, err := gate.New(gate.Config{
		Replicas: urls,
		VNodes:   *vnodes,
		Health: gate.TrackerConfig{
			FailThreshold:    *failThreshold,
			RecoverSuccesses: *recoverOKs,
			ProbeInterval:    *probeInterval,
		},
		AttemptTimeout: *attemptTimeout,
		HedgeDelay:     *hedgeDelay,
		DisableHedge:   *noHedge,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpgate: %v\n", err)
		os.Exit(1)
	}

	if *traceLog > 0 {
		g.SetTraceLogging(*traceLog)
		log.Printf("trace sampling enabled: logging every %d requests", *traceLog)
	}

	// The gate handler owns the API surface; -pprof mounts the standard
	// profiling endpoints beside it, mirroring pnpserve's flag.
	handler := g.Handler()
	if *enablePprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}

	log.Printf("pnpgate listening on %s, routing %d replicas (%s)", *addr, len(urls), strings.Join(urls, ", "))
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		got := <-sig
		log.Printf("received %s, draining (grace %s)", got, *shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		g.Close()
		log.Printf("drained; bye")
	}()

	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pnpgate: %v\n", err)
		os.Exit(1)
	}
	<-done
}
