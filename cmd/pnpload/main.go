// Command pnpload is an open-loop load generator for a pnpgate (or a
// single pnpserve): Poisson arrivals at a fixed offered rate, a
// weighted predict / sync-tune / async-job traffic mix drawn uniformly
// over a configurable model-key space, and HDR-style log-linear
// latency histograms. The run's report — per-op p50/p90/p99/mean/max,
// throughput, and error counts by stable API code — is written as JSON
// for benchmark artifacts like BENCH_6.json.
//
// Usage:
//
//	pnpload -target http://localhost:8090 -rate 100 -duration 30s -out report.json
//	pnpload -target http://localhost:8090 -scenarios full,loocv:lu,loocv:mg -max-error-rate 0
//
// Open-loop means arrivals never wait for completions: if the target
// slows down, latency and in-flight count grow instead of the load
// quietly throttling itself, which is what makes the quantiles honest.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pnptuner/internal/loadgen"
)

func main() {
	target := flag.String("target", "http://localhost:8090", "base URL of the gate or replica under load")
	rate := flag.Float64("rate", 50, "offered arrival rate (requests/second, Poisson)")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate arrivals")
	inflight := flag.Int("inflight", 256, "max concurrent requests before arrivals are shed")
	seed := flag.Int64("seed", 1, "rng seed for arrivals and traffic mix")
	predictW := flag.Float64("predict", 0.8, "predict traffic weight")
	tuneW := flag.Float64("tune", 0.1, "synchronous tune traffic weight")
	jobW := flag.Float64("job", 0.1, "async tune job traffic weight")
	machines := flag.String("machines", "haswell,skylake", "comma-separated machines")
	objectives := flag.String("objectives", "time,edp", "comma-separated objectives")
	scenarios := flag.String("scenarios", "full", "comma-separated scenarios (e.g. full,loocv:lu)")
	budget := flag.Int("budget", 2, "execution budget per tune")
	regions := flag.Int("regions", 4, "distinct corpus regions to cycle through")
	withHist := flag.Bool("hist", true, "include raw histogram buckets in the report")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	maxErrRate := flag.Float64("max-error-rate", 1.0, "exit nonzero when errors/sent exceeds this fraction")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Config{
		Target:        *target,
		Rate:          *rate,
		Duration:      *duration,
		MaxInFlight:   *inflight,
		Seed:          *seed,
		PredictWeight: *predictW,
		TuneWeight:    *tuneW,
		JobWeight:     *jobW,
		Machines:      split(*machines),
		Objectives:    split(*objectives),
		Scenarios:     split(*scenarios),
		Budget:        *budget,
		Regions:       *regions,
	}, *withHist)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpload: %v\n", err)
		os.Exit(1)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpload: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pnpload: %v\n", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "pnpload: %d sent, %d ok, %d errors, %d shed, %.1f req/s; predict p50=%.2fms p99=%.2fms\n",
		rep.Sent, rep.Completed, rep.Errors, rep.Shed, rep.ThroughputRPS,
		rep.Ops[loadgen.OpPredict].P50Millis, rep.Ops[loadgen.OpPredict].P99Millis)

	if rep.Sent > 0 && float64(rep.Errors)/float64(rep.Sent) > *maxErrRate {
		fmt.Fprintf(os.Stderr, "pnpload: error rate %.3f exceeds -max-error-rate %.3f\n",
			float64(rep.Errors)/float64(rep.Sent), *maxErrRate)
		os.Exit(1)
	}
}

func split(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
