// Command pnpload is an open-loop load generator for a pnpgate (or a
// single pnpserve): Poisson arrivals at a fixed offered rate, a
// weighted predict / sync-tune / async-job traffic mix drawn uniformly
// over a configurable model-key space, and HDR-style log-linear
// latency histograms. The run's report — per-op p50/p90/p99/mean/max,
// throughput, and error counts by stable API code — is written as JSON
// for benchmark artifacts like BENCH_6.json.
//
// Usage:
//
//	pnpload -target http://localhost:8090 -rate 100 -duration 30s -out report.json
//	pnpload -target http://localhost:8090 -scenarios full,loocv:lu,loocv:mg -max-error-rate 0
//	pnpload -target http://localhost:8090 -timeout 500ms -chaos latency=20ms,errors=0.05 -max-p99 250ms
//
// -timeout gives each request its own deadline budget (stamped onto
// X-Deadline, so gate and replicas shed expired work as typed
// deadline_exceeded); -chaos injects faults through a local chaos proxy
// on the way to the target; deadline-exceeded, server-shed, and
// degraded outcomes are reported apart from unexpected errors, and
// -max-p99 turns the predict tail into an exit-code assertion.
//
// Open-loop means arrivals never wait for completions: if the target
// slows down, latency and in-flight count grow instead of the load
// quietly throttling itself, which is what makes the quantiles honest.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pnptuner/internal/chaos"
	"pnptuner/internal/loadgen"
)

func main() {
	target := flag.String("target", "http://localhost:8090", "base URL of the gate or replica under load")
	rate := flag.Float64("rate", 50, "offered arrival rate (requests/second, Poisson)")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate arrivals")
	inflight := flag.Int("inflight", 256, "max concurrent requests before arrivals are shed")
	seed := flag.Int64("seed", 1, "rng seed for arrivals and traffic mix")
	predictW := flag.Float64("predict", 0.8, "predict traffic weight")
	tuneW := flag.Float64("tune", 0.1, "synchronous tune traffic weight")
	jobW := flag.Float64("job", 0.1, "async tune job traffic weight")
	machines := flag.String("machines", "haswell,skylake", "comma-separated machines")
	objectives := flag.String("objectives", "time,edp", "comma-separated objectives")
	scenarios := flag.String("scenarios", "full", "comma-separated scenarios (e.g. full,loocv:lu)")
	budget := flag.Int("budget", 2, "execution budget per tune")
	regions := flag.Int("regions", 4, "distinct corpus regions to cycle through")
	withHist := flag.Bool("hist", true, "include raw histogram buckets in the report")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	maxErrRate := flag.Float64("max-error-rate", 1.0, "exit nonzero when unexpected errors/sent exceeds this fraction (typed timeouts and sheds are counted separately)")
	timeout := flag.Duration("timeout", 0, "per-request deadline budget, stamped onto X-Deadline so it propagates through gate and replicas (0 = unbounded)")
	maxP99 := flag.Duration("max-p99", 0, "exit nonzero when the predict p99 exceeds this (0 = unbounded)")
	chaosSpec := flag.String("chaos", "", "inject faults between pnpload and the target through a local chaos proxy, e.g. latency=20ms,jitter=5ms,errors=0.05 (empty = direct)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	loadTarget := *target
	if *chaosSpec != "" {
		faults, err := chaos.ParseFaults(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnpload: %v\n", err)
			os.Exit(1)
		}
		proxy, err := chaos.New(*target, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnpload: %v\n", err)
			os.Exit(1)
		}
		proxy.SetFaults(faults)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnpload: chaos proxy listen: %v\n", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: proxy}
		go srv.Serve(ln)
		defer srv.Close()
		loadTarget = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "pnpload: chaos proxy %s -> %s injecting %s\n", loadTarget, *target, faults)
	}

	// Scrape the target's own metrics around the run so the report
	// carries the server-side deltas (queue waits, sheds, cache hits)
	// next to the client-observed latencies. Scrapes go to the real
	// target, not the chaos proxy — faults belong in the load path,
	// not the measurement path. A failed scrape degrades to a report
	// without deltas rather than failing the run.
	before, scrapeErr := loadgen.ScrapeMetrics(ctx, *target)
	if scrapeErr != nil {
		fmt.Fprintf(os.Stderr, "pnpload: metrics scrape before run: %v (report will omit server deltas)\n", scrapeErr)
	}

	rep, err := loadgen.Run(ctx, loadgen.Config{
		Target:        loadTarget,
		Rate:          *rate,
		Duration:      *duration,
		MaxInFlight:   *inflight,
		Seed:          *seed,
		PredictWeight: *predictW,
		TuneWeight:    *tuneW,
		JobWeight:     *jobW,
		Machines:      split(*machines),
		Objectives:    split(*objectives),
		Scenarios:     split(*scenarios),
		Budget:        *budget,
		Regions:       *regions,
		Timeout:       *timeout,
	}, *withHist)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpload: %v\n", err)
		os.Exit(1)
	}
	// The artifact names what was measured, not the ephemeral proxy hop.
	rep.Target = *target

	if scrapeErr == nil {
		after, err := loadgen.ScrapeMetrics(context.Background(), *target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnpload: metrics scrape after run: %v (report will omit server deltas)\n", err)
		} else {
			rep.ServerDeltas = loadgen.MetricsDelta(before, after)
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpload: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pnpload: %v\n", err)
		os.Exit(1)
	}

	predictP99 := rep.Ops[loadgen.OpPredict].P99Millis
	fmt.Fprintf(os.Stderr, "pnpload: %d sent, %d ok, %d errors, %d timeouts, %d server-shed, %d degraded, %d shed, %.1f req/s; predict p50=%.2fms p99=%.2fms\n",
		rep.Sent, rep.Completed, rep.Errors, rep.Timeouts, rep.ShedByServer, rep.Degraded, rep.Shed, rep.ThroughputRPS,
		rep.Ops[loadgen.OpPredict].P50Millis, predictP99)

	failed := false
	if rep.Sent > 0 && float64(rep.Errors)/float64(rep.Sent) > *maxErrRate {
		fmt.Fprintf(os.Stderr, "pnpload: error rate %.3f exceeds -max-error-rate %.3f\n",
			float64(rep.Errors)/float64(rep.Sent), *maxErrRate)
		failed = true
	}
	if *maxP99 > 0 && predictP99 > float64(*maxP99)/float64(time.Millisecond) {
		fmt.Fprintf(os.Stderr, "pnpload: predict p99 %.2fms exceeds -max-p99 %s\n", predictP99, *maxP99)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

func split(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
