// Command servesmoke is the serving smoke test: it drives a running
// pnpserve through the Go client SDK and exits non-zero on the first
// contract violation. CI boots pnpserve against a tiny trained model and
// runs this binary; operators can point it at a live deployment as a
// post-deploy check.
//
// It exercises the whole v1 surface: health, model listing, /v1/predict,
// a synchronous /v1/tune, the async job lifecycle (submit → poll →
// result, with sync/async parity asserted bit-for-bit), cancellation of
// an unknown job, and legacy-alias parity (/predict and /tune must
// return byte-identical bodies to their /v1 equivalents).
//
// With -refresh it additionally closes the measure→learn loop end to
// end: a measured tune job (measure_budget > 0) must report real runs
// and samples, the fed-back samples must trigger a background refresh,
// and predict traffic must carry the canary to a verdict until the
// served model version advances. The target server must be running with
// -refresh-threshold low enough for one job's samples to trip it.
//
// Usage:
//
//	servesmoke -base http://localhost:8080 [-machine haswell] [-timeout 5m] [-refresh]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"reflect"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/client"
	"pnptuner/internal/kernels"
)

func main() {
	base := flag.String("base", "http://localhost:8080", "pnpserve base URL")
	machine := flag.String("machine", "haswell", "machine model to exercise")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline (covers train-on-first-request)")
	refresh := flag.Bool("refresh", false,
		"exercise the measure→learn loop (server must run with a low -refresh-threshold)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*base, client.WithRetries(5, 500*time.Millisecond))

	corpus, err := kernels.Compile()
	check(err, "compile corpus")
	region := corpus.Regions[0]
	graphJSON, err := json.Marshal(region.Graph)
	check(err, "marshal graph")

	// 1. The server is up and reporting.
	waitHealthy(ctx, c)

	// 2. Prediction (trains the model on first request).
	step("POST /v1/predict (first request may train)")
	pred, err := c.Predict(ctx, api.PredictRequest{
		Machine: *machine, Objective: "time", Graph: graphJSON,
	})
	check(err, "predict")
	if len(pred.Picks) == 0 || pred.Picks[0].Config == "" {
		fail("predict returned no usable picks: %+v", pred)
	}
	fmt.Printf("  %d picks, first: %3.0fW → %s\n", len(pred.Picks), pred.Picks[0].CapW, pred.Picks[0].Config)

	// 3. Synchronous tune.
	treq := api.TuneRequest{
		Machine: *machine, Objective: "time", Strategy: "hybrid",
		RegionID: region.ID, Budget: 3, Seed: 12345,
	}
	step("POST /v1/tune (sync)")
	sync, err := c.Tune(ctx, treq)
	check(err, "sync tune")
	if len(sync.Picks) == 0 || sync.Picks[0].Evals != 3 {
		fail("sync tune shape wrong: %+v", sync)
	}

	// 4. Async job lifecycle + parity with sync.
	step("POST /v1/tune (async) → poll → result")
	job, err := c.TuneAsync(ctx, treq)
	check(err, "submit async tune")
	fin, err := c.Wait(ctx, job.ID, 200*time.Millisecond)
	check(err, "wait for job")
	if fin.Status != api.JobDone || fin.Result == nil {
		fail("job did not finish cleanly: %+v", fin)
	}
	if !reflect.DeepEqual(*fin.Result, *sync) {
		fail("async result diverges from sync:\n%+v\n%+v", *fin.Result, *sync)
	}
	fmt.Printf("  job %s done, result identical to sync\n", fin.ID)

	// 5. Stable error codes.
	step("error codes")
	if _, err := c.Job(ctx, "nosuchjob"); !client.IsCode(err, api.CodeJobNotFound) {
		fail("unknown job code = %q, want job_not_found (%v)", client.ErrorCode(err), err)
	}
	if _, err := c.Tune(ctx, api.TuneRequest{
		Machine: *machine, Objective: "time", Strategy: "bliss",
		RegionID: region.ID, Budget: api.MaxTuneBudget + 1,
	}); !client.IsCode(err, api.CodeBudgetExceeded) {
		fail("oversized budget code = %q, want budget_exceeded (%v)", client.ErrorCode(err), err)
	}

	// 6. Legacy aliases answer byte-identically to v1.
	step("legacy-alias parity")
	legacyParity(ctx, *base, "/predict", api.PathPredict, api.PredictRequest{
		Machine: *machine, Objective: "time", Graph: graphJSON,
	})
	legacyParity(ctx, *base, "/tune", api.PathTune, treq)

	// 7. Model listing includes what we just trained.
	step("GET /v1/models")
	models, err := c.ListModels(ctx)
	check(err, "list models")
	if len(models) == 0 {
		fail("no models listed after serving")
	}

	// 8. The measure→learn loop: measured tune → samples → refresh →
	// canary → promoted version, observable through /v1/models/{id}.
	if *refresh {
		refreshLoop(ctx, c, *machine, region.ID, graphJSON)
	}

	health, err := c.Health(ctx)
	check(err, "final health")
	fmt.Printf("smoke OK: served=%d trained=%d jobs_done=%d\n",
		health.Served, health.ModelsTrained, health.Jobs.Done)
}

// refreshLoop drives the full measure→learn cycle: submit an async tune
// job with a real measurement budget, assert the response carries
// measured runs and samples, then keep predicting until the background
// refresh's canary reaches a verdict and the served version advances.
// A demoted canary is legitimate (the retrain lost the shadow score),
// so up to three measure→canary cycles are attempted before failing.
func refreshLoop(ctx context.Context, c *client.Client, machine, regionID string, graphJSON []byte) {
	step("measure→learn loop (async measured tune → refresh → canary → promote)")

	modelID := findModelID(ctx, c, machine)
	det, err := c.Model(ctx, modelID)
	check(err, "model detail")
	baseVersion := det.Version
	fmt.Printf("  model %s serving v%d (%d samples)\n", modelID, det.Version, det.Samples)

	preq := api.PredictRequest{Machine: machine, Objective: "time", Graph: graphJSON}
	for cycle := 1; cycle <= 3; cycle++ {
		job, err := c.TuneAsync(ctx, api.TuneRequest{
			Machine: machine, Objective: "time", Strategy: "hybrid",
			RegionID: regionID, Budget: 3, Seed: uint64(77000 + cycle), MeasureBudget: 8,
		})
		check(err, "submit measured tune")
		fin, err := c.Wait(ctx, job.ID, 200*time.Millisecond)
		check(err, "wait for measured tune")
		if fin.Status != api.JobDone || fin.Result == nil {
			fail("measured job did not finish cleanly: %+v", fin)
		}
		if fin.Result.MeasuredRuns == 0 || len(fin.Result.Samples) == 0 {
			fail("measured tune reported no real runs: runs=%d samples=%d",
				fin.Result.MeasuredRuns, len(fin.Result.Samples))
		}
		if fin.Result.ModelVersion < baseVersion {
			fail("tune served version %d regressed below %d", fin.Result.ModelVersion, baseVersion)
		}
		fmt.Printf("  cycle %d: job %s measured %d runs (%d samples)\n",
			cycle, fin.ID, fin.Result.MeasuredRuns, len(fin.Result.Samples))

		// Predict traffic both scores the canary and proves v(base) keeps
		// serving while the shadow is judged.
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			pred, err := c.Predict(ctx, preq)
			check(err, "predict during canary")
			if len(pred.Picks) == 0 {
				fail("predict lost picks mid-canary: %+v", pred)
			}
			det, err = c.Model(ctx, modelID)
			check(err, "model detail during canary")
			if det.Version > baseVersion {
				fmt.Printf("  promoted: v%d → v%d after %d samples (history %d events)\n",
					baseVersion, det.Version, det.Samples, len(det.History))
				return
			}
			if det.CanaryVersion == 0 && countEvents(det.History, api.EventDemoted) >= cycle {
				break // this cycle's canary lost; measure again
			}
			time.Sleep(100 * time.Millisecond)
		}
		fmt.Printf("  cycle %d: canary demoted (or window still open), retrying\n", cycle)
	}
	fail("model version never advanced past v%d after 3 measure→canary cycles", baseVersion)
}

// findModelID resolves the content address of the machine's full-corpus
// time model from the registry listing.
func findModelID(ctx context.Context, c *client.Client, machine string) string {
	models, err := c.ListModels(ctx)
	check(err, "list models for refresh loop")
	for _, m := range models {
		if m.Key.Machine == machine && m.Key.Objective == "time" && m.Key.Scenario == "full" {
			return m.ID
		}
	}
	fail("no %s/full/time model listed; predict step should have trained it", machine)
	return ""
}

func countEvents(history []api.VersionEvent, event string) int {
	n := 0
	for _, ev := range history {
		if ev.Event == event {
			n++
		}
	}
	return n
}

// waitHealthy polls /v1/healthz until the server answers.
func waitHealthy(ctx context.Context, c *client.Client) {
	step("GET /v1/healthz (waiting for the server)")
	for {
		h, err := c.Health(ctx)
		if err == nil && h.Status == "ok" {
			return
		}
		select {
		case <-ctx.Done():
			fail("server never became healthy: %v", err)
		case <-time.After(500 * time.Millisecond):
		}
	}
}

// legacyParity posts the same body to the legacy path and its v1
// successor and requires byte-identical response bodies plus the
// deprecation headers on the alias.
func legacyParity(ctx context.Context, base, legacyPath, v1Path string, reqBody any) {
	payload, err := json.Marshal(reqBody)
	check(err, "marshal parity body")
	do := func(path string) ([]byte, *http.Response) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(payload))
		check(err, "build parity request")
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		check(err, "POST "+path)
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		check(err, "read "+path)
		if resp.StatusCode != http.StatusOK {
			fail("%s status %d: %s", path, resp.StatusCode, body)
		}
		return body, resp
	}
	v1Body, _ := do(v1Path)
	legacyBody, legacyResp := do(legacyPath)
	if !bytes.Equal(v1Body, legacyBody) {
		fail("%s diverges from %s:\n%s\n%s", legacyPath, v1Path, legacyBody, v1Body)
	}
	if legacyResp.Header.Get("Deprecation") != "true" {
		fail("%s not flagged deprecated", legacyPath)
	}
	fmt.Printf("  %s ≡ %s (%d bytes)\n", legacyPath, v1Path, len(v1Body))
}

func step(name string) { fmt.Println("==>", name) }

func check(err error, what string) {
	if err != nil {
		fail("%s: %v", what, err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servesmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
