// Command pnpchaos is a standalone fault-injecting reverse proxy: it
// sits on the network path to a pnpserve replica or a pnpgate and
// injects latency, abrupt connection errors, black-hole partitions, and
// bandwidth caps, deterministically from a seed. Chaos suites (CI's
// chaos-smoke job, manual game days) put one in front of each replica
// and assert the fleet's client-visible behavior stays inside the SLO
// envelope.
//
// Usage:
//
//	pnpchaos -addr :9080 -target http://127.0.0.1:8080 -faults latency=20ms,jitter=5ms,errors=0.05
//	pnpchaos -addr :9081 -target http://127.0.0.1:8081 -faults partition
//	pnpchaos -addr :9082 -target http://127.0.0.1:8082 -faults none -route /v1/predict=latency=50ms
//
// Injected errors are connection aborts, never synthesized HTTP bodies:
// the caller sees the transport failure a crashed server produces, which
// is what feeds circuit breakers and failover. Injection counters are
// printed on SIGINT/SIGTERM.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pnptuner/internal/chaos"
)

// routeFlags collects repeated -route prefix=faultspec overrides.
type routeFlags []string

func (r *routeFlags) String() string     { return strings.Join(*r, "; ") }
func (r *routeFlags) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	addr := flag.String("addr", ":9080", "listen address")
	target := flag.String("target", "", "base URL the proxy forwards to")
	faultSpec := flag.String("faults", "none", "default fault mix, e.g. latency=20ms,jitter=5ms,errors=0.05,partition,bw=65536")
	seed := flag.Int64("seed", 1, "rng seed; the same seed over the same request sequence injects the same faults")
	var routes routeFlags
	flag.Var(&routes, "route", "per-path override as prefix=faultspec, e.g. /v1/predict=errors=0.1 (repeatable; longest prefix wins)")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "pnpchaos: -target is required")
		os.Exit(1)
	}
	proxy, err := chaos.New(*target, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpchaos: %v\n", err)
		os.Exit(1)
	}
	faults, err := chaos.ParseFaults(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpchaos: %v\n", err)
		os.Exit(1)
	}
	proxy.SetFaults(faults)
	for _, r := range routes {
		prefix, spec, ok := strings.Cut(r, "=")
		if !ok || !strings.HasPrefix(prefix, "/") {
			fmt.Fprintf(os.Stderr, "pnpchaos: -route %q: want /prefix=faultspec\n", r)
			os.Exit(1)
		}
		rf, err := chaos.ParseFaults(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnpchaos: -route %q: %v\n", r, err)
			os.Exit(1)
		}
		proxy.SetRoute(prefix, rf)
		log.Printf("route %s injects %s", prefix, rf)
	}

	log.Printf("pnpchaos listening on %s -> %s injecting %s (seed %d)", *addr, *target, faults, *seed)
	srv := &http.Server{Addr: *addr, Handler: proxy}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		stats, _ := json.Marshal(proxy.Stats())
		log.Printf("stats %s", stats)
		srv.Close()
	}()

	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pnpchaos: %v\n", err)
		os.Exit(1)
	}
	<-done
}
