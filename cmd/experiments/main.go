// Command experiments regenerates the paper's tables and figures on the
// simulated testbeds.
//
// Usage:
//
//	experiments -run all            # everything, full scale (~15 min)
//	experiments -run fig2 -quick    # one figure at reduced scale
//	experiments -run table1,motivation
//
// Available experiment names: table1, table2, motivation, fig2, fig3,
// fig4, fig5, fig6 (includes fig7), all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pnptuner/internal/experiments"
	"pnptuner/internal/hw"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiments: table1,table2,motivation,fig2,fig3,fig4,fig5,fig6,all")
	quick := flag.Bool("quick", false, "reduced scale (fewer folds/epochs) for smoke runs")
	folds := flag.Int("folds", 0, "limit LOOCV folds (0 = all 30)")
	epochs := flag.Int("epochs", 0, "override training epochs (0 = default)")
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *folds > 0 {
		opts.MaxFolds = *folds
	}
	if *epochs > 0 {
		opts.Model.Epochs = *epochs
	}

	w := os.Stdout
	var err error
	for _, name := range strings.Split(*run, ",") {
		switch strings.TrimSpace(name) {
		case "all":
			_, err = experiments.RunAll(w, opts)
		case "table1":
			experiments.Table1(w)
		case "table2":
			experiments.Table2(w)
		case "motivation":
			_, err = experiments.Motivation(w)
		case "fig2":
			_, err = experiments.Fig2(w, opts)
		case "fig3":
			_, err = experiments.Fig3(w, opts)
		case "fig4":
			_, err = experiments.Fig4(w, opts)
		case "fig5":
			_, err = experiments.Fig5(w, opts)
		case "fig6", "fig7":
			if _, err = experiments.Fig6And7(w, hw.Skylake(), opts); err == nil {
				_, err = experiments.Fig6And7(w, hw.Haswell(), opts)
			}
		default:
			err = fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}
}
