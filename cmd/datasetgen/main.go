// Command datasetgen runs the exhaustive Table I sweep for one machine and
// dumps the measurement grid as CSV: one row per (region, cap, config)
// with time, package energy, DRAM energy, frequency, and oracle flags.
//
// Usage:
//
//	datasetgen -machine haswell > haswell.csv
//	datasetgen -machine skylake -labels   # oracle labels only
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
)

func main() {
	machine := flag.String("machine", "haswell", "machine model: haswell or skylake")
	labelsOnly := flag.Bool("labels", false, "emit only per-region oracle labels")
	flag.Parse()

	m, err := hw.ByName(*machine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datasetgen: %v\n", err)
		os.Exit(1)
	}
	d, err := dataset.Build(m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datasetgen: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *labelsOnly {
		fmt.Fprintln(w, "region,cap_w,best_time_config,best_edp_joint")
		for _, rd := range d.Regions {
			for ci, capW := range d.Space.Caps() {
				fmt.Fprintf(w, "%s,%g,%s,%d\n", rd.Region.ID, capW,
					d.Space.Configs[rd.BestTimeCfg[ci]], rd.BestEDPJoint)
			}
		}
		return
	}

	fmt.Fprintln(w, "region,app,cap_w,threads,schedule,chunk,time_s,pkg_energy_j,dram_energy_j,freq_ghz,throttled,is_best_time,is_best_edp")
	for _, rd := range d.Regions {
		for ci, capW := range d.Space.Caps() {
			for ki, cfg := range d.Space.Configs {
				r := rd.Results[ci][ki]
				fmt.Fprintf(w, "%s,%s,%g,%d,%s,%d,%.9g,%.6g,%.6g,%.3f,%v,%v,%v\n",
					rd.Region.ID, rd.Region.App, capW,
					cfg.Threads, cfg.Sched, cfg.Chunk,
					r.TimeSec, r.PkgEnergyJ, r.DRAMEnergyJ, r.FreqGHz, r.Throttled,
					ki == rd.BestTimeCfg[ci],
					d.Space.JointIndex(ci, ki) == rd.BestEDPJoint)
			}
		}
	}
}
