// Command pnpgraph dumps the flow-aware program graph of a corpus region
// (or of a source file supplied on stdin) in DOT or JSON form, for
// inspection and plotting.
//
// Usage:
//
//	pnpgraph -region gemm.kernel_gemm#0 -format dot | dot -Tsvg > gemm.svg
//	pnpgraph -region LULESH.EvalEOSForElems#0 -format json
//	pnpgraph -list                      # list region IDs
//	pnpgraph -stdin -format dot < my_kernel.c
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"pnptuner/internal/frontend"
	"pnptuner/internal/kernels"
	"pnptuner/internal/programl"
)

func main() {
	region := flag.String("region", "", "corpus region ID (see -list)")
	format := flag.String("format", "dot", "output format: dot or json")
	list := flag.Bool("list", false, "list corpus region IDs and exit")
	stdin := flag.Bool("stdin", false, "compile a mini-C source from stdin instead")
	flag.Parse()

	if *list {
		c := kernels.MustCompile()
		for _, id := range c.RegionIDs() {
			fmt.Println(id)
		}
		return
	}

	var g *programl.Graph
	switch {
	case *stdin:
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		prog, low, err := frontend.Compile("stdin", string(src))
		if err != nil {
			fatal(err)
		}
		if len(prog.Regions) == 0 {
			fatal(fmt.Errorf("no parallel regions in input"))
		}
		g, err = programl.FromFunction(prog.Regions[0].ID, low.RegionFunc[prog.Regions[0].ID])
		if err != nil {
			fatal(err)
		}
	case *region != "":
		c := kernels.MustCompile()
		r := c.Region(*region)
		if r == nil {
			fatal(fmt.Errorf("unknown region %q (try -list)", *region))
		}
		g = r.Graph
	default:
		fatal(fmt.Errorf("one of -region, -stdin, or -list is required"))
	}

	switch *format {
	case "dot":
		fmt.Print(g.DOT())
	case "json":
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pnpgraph: %v\n", err)
	os.Exit(1)
}
