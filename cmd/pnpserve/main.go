// Command pnpserve is the PnP tuner's inference server: it exposes the
// model registry over the versioned v1 HTTP API (internal/api), training
// (or loading) each requested model once and serving predictions many
// times. Concurrent requests for the same model funnel through a
// micro-batching queue into single block-diagonal forward passes, and
// async tuning sessions run on a bounded job-store worker pool, so
// throughput scales with the batch engine instead of request count.
//
// Usage:
//
//	pnpserve -addr :8080 -dir ./models
//	pnpserve -addr :8080 -dir ./models -preload haswell/time,skylake/edp
//
// Endpoints (legacy pre-versioning aliases in parentheses):
//
//	POST   /v1/predict    (/predict)  {"machine","objective","graph",...} → picks
//	POST   /v1/tune       (/tune)     bounded engine session; "async":true → job
//	GET    /v1/jobs[/{id}]            list / poll async tuning jobs
//	DELETE /v1/jobs/{id}              cancel an async tuning job
//	GET    /v1/models     (/models)   registry contents (cached + on disk)
//	GET    /v1/models/{id}            one model's version + refresh detail
//	GET    /v1/healthz    (/healthz)  liveness + traffic + per-route counters
//	GET    /v1/traces/{id}            one request's recorded span timeline
//	GET    /metrics                   Prometheus text exposition
//
// With -refresh-threshold N, tune sessions carrying a measure_budget
// feed their real-execution samples back into the registry; every N
// samples a model retrains incrementally in the background and shadows
// live predict traffic for -canary-window requests before being promoted
// (new version serves) or demoted (discarded).
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops,
// in-flight requests finish, running tune jobs drain until
// -shutdown-timeout, then everything is cancelled and batchers close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pnptuner/internal/client"
	"pnptuner/internal/core"
	"pnptuner/internal/kernels"
	"pnptuner/internal/registry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "on-disk model store (empty = in-memory only)")
	cacheSize := flag.Int("cache", 8, "max models held in memory (LRU)")
	epochs := flag.Int("epochs", 0, "override training epochs for train-on-miss")
	maxBatch := flag.Int("max-batch", 16, "micro-batch window size")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "micro-batch window wait")
	maxInflight := flag.Int("max-inflight", 1024,
		"concurrent predict/tune requests admitted per route before load-shedding 503 overloaded (negative = unlimited)")
	jobWorkers := flag.Int("job-workers", 2, "concurrent async tune sessions")
	jobQueue := flag.Int("job-queue", 32, "max async tune jobs awaiting a worker")
	jobTTL := flag.Duration("job-ttl", 15*time.Minute, "finished-job retention before GC")
	refreshThreshold := flag.Int("refresh-threshold", 0,
		"measured samples per model that trigger a background refresh retrain (0 disables the measure→learn loop)")
	canaryWindow := flag.Int("canary-window", 16,
		"scored live predicts a refreshed model shadows before the promote/demote verdict")
	refreshEpochs := flag.Int("refresh-epochs", 4, "fine-tune epochs per refresh retrain")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second,
		"grace period for in-flight requests and running jobs on SIGINT/SIGTERM")
	quantize := flag.Bool("quantize", false,
		"serve predictions through float32 quantized model snapshots (picks are parity-gated bit-equal to float64)")
	preload := flag.String("preload", "", "comma-separated machine/objective[/scenario] keys to resolve at startup")
	peers := flag.String("peers", "", "comma-separated peer replica base URLs to fetch cold models from before training")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/ for in-place profiling of the serving hot paths")
	traceLog := flag.Int("trace-log", 0,
		"log every Nth request's root span via slog (0 disables trace sampling logs)")
	flag.Parse()

	cfg := core.DefaultModelConfig()
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}

	reg, err := registry.New(*dir, *cacheSize, registry.DefaultTrainer(cfg))
	if err != nil {
		fatal(err)
	}

	// In a cluster, a registry miss first asks the peer replicas for the
	// model's content-addressed blob (one of them may have trained it
	// already) and only trains when no peer has it. ImportBlob verifies
	// the content address, so a bad peer cannot poison the store.
	if peerURLs := splitList(*peers); len(peerURLs) > 0 {
		pool := client.NewPool(client.WithRetries(0, time.Millisecond))
		reg.SetFetcher(func(ctx context.Context, k registry.Key) ([]byte, error) {
			// ctx carries the resolving request's trace ID (never its
			// cancellation), so the peer hop joins the same trace; the
			// timeout bounds the fetch itself.
			ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
			for _, peer := range peerURLs {
				rc, err := pool.Get(peer).ModelBlob(ctx, k.ID())
				if err != nil {
					continue // peer lacks it or is down: try the next
				}
				data, err := io.ReadAll(rc)
				rc.Close()
				if err == nil && len(data) > 0 {
					log.Printf("fetched model %s (%s) from peer %s", k, k.ID(), peer)
					return data, nil
				}
			}
			return nil, nil // no peer has it: train locally
		})
		log.Printf("peer model fetch enabled (%s)", strings.Join(peerURLs, ", "))
	}

	// Serving annotates client graphs with the corpus vocabulary; freeze
	// it so unknown node texts map to the unknown token instead of minting
	// ids the trained embeddings have never seen.
	corpus, err := kernels.Compile()
	if err != nil {
		fatal(err)
	}
	corpus.Vocab.Freeze()

	srv := registry.NewServer(reg, corpus.Vocab, registry.ServerConfig{
		MaxBatch:    *maxBatch,
		MaxWait:     *maxWait,
		MaxInflight: *maxInflight,
		Quantize:    *quantize,
		Jobs: registry.JobStoreConfig{
			Workers: *jobWorkers,
			Queue:   *jobQueue,
			TTL:     *jobTTL,
		},
		Refresh: registry.RefreshConfig{
			Threshold:    *refreshThreshold,
			CanaryWindow: *canaryWindow,
			Epochs:       *refreshEpochs,
		},
	})
	if *refreshThreshold > 0 {
		log.Printf("model refresh enabled: threshold %d samples, canary window %d, %d epochs",
			*refreshThreshold, *canaryWindow, *refreshEpochs)
	}
	if *quantize {
		log.Printf("quantized serving enabled: forwarding on float32 model snapshots")
	}
	if *traceLog > 0 {
		srv.SetTraceLogging(*traceLog)
		log.Printf("trace sampling enabled: logging every %d requests", *traceLog)
	}

	for _, spec := range strings.Split(*preload, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		key, err := parseKey(spec)
		if err != nil {
			fatal(err)
		}
		log.Printf("preloading %s ...", key)
		start := time.Now()
		if _, err := reg.Get(key); err != nil {
			fatal(err)
		}
		log.Printf("preloaded %s in %s", key, time.Since(start).Round(time.Millisecond))
	}

	// The registry handler owns the API surface; -pprof mounts the
	// standard profiling endpoints beside it so CPU/heap profiles of the
	// micro-batched forward pass can be taken from a live server
	// (go tool pprof http://host:port/debug/pprof/profile).
	handler := srv.Handler()
	if *enablePprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}

	log.Printf("pnpserve listening on %s (store %q, cache %d, batch %d/%s, jobs %d×%d)",
		*addr, *dir, *cacheSize, *maxBatch, *maxWait, *jobWorkers, *jobQueue)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		// No WriteTimeout: the first /v1/predict for a model trains it
		// (minutes); slow-client protection comes from the read limits
		// and the bounded request body.
		IdleTimeout: 2 * time.Minute,
	}

	// Graceful shutdown: stop the listener first so no new requests race
	// the drain, let in-flight requests and running jobs finish within
	// the grace period, then cancel what remains and close the batchers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		got := <-sig
		log.Printf("received %s, shutting down (grace %s)", got, *shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		srv.Shutdown(ctx)
		log.Printf("drained; bye")
	}()

	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
}

// splitList reads a comma-separated flag into its non-empty parts.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseKey reads "machine/objective" or "machine/objective/scenario".
func parseKey(spec string) (registry.Key, error) {
	parts := strings.SplitN(spec, "/", 3)
	if len(parts) < 2 {
		return registry.Key{}, fmt.Errorf("pnpserve: bad preload key %q (want machine/objective[/scenario])", spec)
	}
	key := registry.Key{Machine: parts[0], Objective: parts[1], Scenario: registry.ScenarioFull}
	if len(parts) == 3 {
		key.Scenario = parts[2]
	}
	return key, key.Validate()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pnpserve: %v\n", err)
	os.Exit(1)
}
