// Command pnpserve is the PnP tuner's inference server: it exposes the
// model registry over HTTP, training (or loading) each requested model
// once and serving predictions many times. Concurrent requests for the
// same model funnel through a micro-batching queue into single
// block-diagonal forward passes, so throughput scales with the batch
// engine instead of request count.
//
// Usage:
//
//	pnpserve -addr :8080 -dir ./models
//	pnpserve -addr :8080 -dir ./models -preload haswell/time,skylake/edp
//
// Endpoints:
//
//	POST /predict  {"machine","objective","scenario"?,"graph",...} → picks
//	GET  /healthz  liveness + traffic counters
//	GET  /models   registry contents (cached + on disk)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"pnptuner/internal/core"
	"pnptuner/internal/kernels"
	"pnptuner/internal/registry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "on-disk model store (empty = in-memory only)")
	cacheSize := flag.Int("cache", 8, "max models held in memory (LRU)")
	epochs := flag.Int("epochs", 0, "override training epochs for train-on-miss")
	maxBatch := flag.Int("max-batch", 16, "micro-batch window size")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "micro-batch window wait")
	preload := flag.String("preload", "", "comma-separated machine/objective[/scenario] keys to resolve at startup")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/ for in-place profiling of the serving hot paths")
	flag.Parse()

	cfg := core.DefaultModelConfig()
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}

	reg, err := registry.New(*dir, *cacheSize, registry.DefaultTrainer(cfg))
	if err != nil {
		fatal(err)
	}

	// Serving annotates client graphs with the corpus vocabulary; freeze
	// it so unknown node texts map to the unknown token instead of minting
	// ids the trained embeddings have never seen.
	corpus, err := kernels.Compile()
	if err != nil {
		fatal(err)
	}
	corpus.Vocab.Freeze()

	srv := registry.NewServer(reg, corpus.Vocab, *maxBatch, *maxWait)
	defer srv.Close()

	for _, spec := range strings.Split(*preload, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		key, err := parseKey(spec)
		if err != nil {
			fatal(err)
		}
		log.Printf("preloading %s ...", key)
		start := time.Now()
		if _, err := reg.Get(key); err != nil {
			fatal(err)
		}
		log.Printf("preloaded %s in %s", key, time.Since(start).Round(time.Millisecond))
	}

	// The registry handler owns the API surface; -pprof mounts the
	// standard profiling endpoints beside it so CPU/heap profiles of the
	// micro-batched forward pass can be taken from a live server
	// (go tool pprof http://host:port/debug/pprof/profile).
	handler := srv.Handler()
	if *enablePprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}

	log.Printf("pnpserve listening on %s (store %q, cache %d, batch %d/%s)",
		*addr, *dir, *cacheSize, *maxBatch, *maxWait)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		// No WriteTimeout: the first /predict for a model trains it
		// (minutes); slow-client protection comes from the read limits
		// and the bounded request body.
		IdleTimeout: 2 * time.Minute,
	}
	if err := httpSrv.ListenAndServe(); err != nil {
		fatal(err)
	}
}

// parseKey reads "machine/objective" or "machine/objective/scenario".
func parseKey(spec string) (registry.Key, error) {
	parts := strings.SplitN(spec, "/", 3)
	if len(parts) < 2 {
		return registry.Key{}, fmt.Errorf("pnpserve: bad preload key %q (want machine/objective[/scenario])", spec)
	}
	key := registry.Key{Machine: parts[0], Objective: parts[1], Scenario: registry.ScenarioFull}
	if len(parts) == 3 {
		key.Scenario = parts[2]
	}
	return key, key.Validate()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pnpserve: %v\n", err)
	os.Exit(1)
}
