#!/usr/bin/env bash
# bench_cluster.sh — produce BENCH_6.json: open-loop pnpload runs against a
# 1-replica and a 3-replica cluster under an identical offered load and an
# identical pre-trained model store.
#
# The clusters are cache-constrained (-cache 2 per replica) while the hot key
# set is 8 models (2 machines x 2 objectives x {full, loocv:lu}), so the
# single replica continuously evicts and reloads models from disk, paying
# deserialization and batcher-recreation on the serving path. Three replicas
# consistent-hash the same 8 keys into three disjoint residency sets (about
# 2-3 each), which fit; the win measured here is shared-nothing working-set
# partitioning, not CPU parallelism (CI runners and the dev box are 1-2
# cores — all three replicas share them).
#
# Usage: scripts/bench_cluster.sh [out.json] [rate] [duration]
set -euo pipefail

OUT=${1:-BENCH_6.json}
RATE=${2:-60}
DURATION=${3:-25s}
SCENARIOS="full,loocv:lu"
PRELOAD="haswell/time,haswell/edp,skylake/time,skylake/edp,haswell/time/loocv:lu,haswell/edp/loocv:lu,skylake/time/loocv:lu,skylake/edp/loocv:lu"

BIN=$(mktemp -d)
WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -TERM "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

echo "== building binaries" >&2
go build -o "$BIN/pnpserve" ./cmd/pnpserve
go build -o "$BIN/pnpgate" ./cmd/pnpgate
go build -o "$BIN/pnpload" ./cmd/pnpload

wait_http() { # url [tries]
  for _ in $(seq 1 "${2:-300}"); do
    if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "timeout waiting for $1" >&2
  return 1
}

echo "== pre-training the 8-model store (epochs=1)" >&2
"$BIN/pnpserve" -addr 127.0.0.1:18100 -dir "$WORK/seed" -cache 16 -epochs 1 -preload "$PRELOAD" &
SEED_PID=$!
PIDS+=("$SEED_PID")
wait_http http://127.0.0.1:18100/v1/healthz 3000 # listen starts after preload
kill -TERM "$SEED_PID" && wait "$SEED_PID" 2>/dev/null || true
PIDS=()

run_bench() { # name replica_count
  local name=$1 n=$2 urls="" port pid
  for i in $(seq 0 $((n - 1))); do
    port=$((18110 + i))
    cp -r "$WORK/seed" "$WORK/$name-r$i"
    "$BIN/pnpserve" -addr "127.0.0.1:$port" -dir "$WORK/$name-r$i" -cache 2 -epochs 1 &
    pid=$!
    PIDS+=("$pid")
    urls="$urls${urls:+,}http://127.0.0.1:$port"
  done
  for i in $(seq 0 $((n - 1))); do wait_http "http://127.0.0.1:$((18110 + i))/v1/healthz"; done

  "$BIN/pnpgate" -addr 127.0.0.1:18109 -replicas "$urls" -probe-interval 250ms &
  PIDS+=("$!")
  wait_http http://127.0.0.1:18109/v1/healthz

  echo "== load: $name ($n replica(s), rate $RATE, $DURATION)" >&2
  "$BIN/pnpload" -target http://127.0.0.1:18109 -rate "$RATE" -duration "$DURATION" \
    -predict 1 -tune 0 -job 0 -scenarios "$SCENARIOS" -seed 6 -inflight 64 \
    -hist=false -out "$WORK/$name.json"
  # No -max-error-rate gate here: the 1-replica baseline is deliberately
  # driven past capacity, where LRU thrash yields some 503s even after
  # client retries. The merge step records error counts per run.

  for pid in "${PIDS[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  PIDS=()
}

run_bench single 1
run_bench cluster3 3

echo "== assembling $OUT" >&2
SINGLE="$WORK/single.json" CLUSTER="$WORK/cluster3.json" OUTFILE="$OUT" go run ./scripts/bench6merge.go

echo "done: $OUT" >&2
