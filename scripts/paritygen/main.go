// Command paritygen regenerates the golden table in
// internal/autotune/parity_test.go: every (machine, region, seed, cap)
// tuning task the parity test pins, run through the engine-driven BLISS
// and OpenTuner strategies. Rerun it whenever the noise stream or a
// strategy's decision sequence changes ON PURPOSE, and paste the output
// over the parityCases literal:
//
//	go run ./scripts/paritygen > /tmp/parity_rows.txt
package main

import (
	"fmt"
	"os"

	"pnptuner/internal/autotune"
	"pnptuner/internal/bliss"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/opentuner"
)

func main() {
	for _, name := range []string{"skylake", "haswell"} {
		m, err := hw.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paritygen:", err)
			os.Exit(1)
		}
		d := dataset.MustBuild(m)
		for _, ri := range []int{0, 5, 12, 33, 60} {
			rd := d.Regions[ri]
			for _, seed := range []uint64{1, 42, rd.Region.Seed} {
				for _, capIdx := range []int{0, 1, 2, 3, -1} {
					var obj autotune.Objective
					if capIdx >= 0 {
						obj = autotune.TimeUnderCap{Cap: capIdx}
					} else {
						obj = autotune.EDP{}
					}
					task := autotune.Task{
						Problem:  autotune.Problem{Obj: obj, Space: d.Space, Seed: seed},
						RegionID: rd.Region.ID,
					}
					b := autotune.RunEntry(bliss.Entry("BLISS"), rd, task).Best
					o := autotune.RunEntry(opentuner.Entry("OpenTuner"), rd, task).Best
					fmt.Printf("\t{%q, %d, %d, %d, %d, %d},\n", name, ri, seed, capIdx, b, o)
				}
			}
		}
	}
}
