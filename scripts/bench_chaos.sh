#!/usr/bin/env bash
# bench_chaos.sh — produce BENCH_8.json: hedged predicts vs no hedging
# under injected latency, same fleet, same offered load.
#
# One of three replicas sits behind a pnpchaos proxy adding 200ms to
# every gate→replica request; the other two are direct. Every replica
# holds an identical pre-trained model store, so the slow path is pure
# injected latency, not training. Keys owned by the slow replica pay
# the 200ms on every predict when hedging is off; with a 25ms hedge
# trigger the gate races the next preference-order replica and the tail
# collapses to roughly hedge-delay + service time. The before/after
# predict p99 is the artifact.
#
# Usage: scripts/bench_chaos.sh [out.json] [rate] [duration]
set -euo pipefail

OUT=${1:-BENCH_8.json}
RATE=${2:-60}
DURATION=${3:-20s}
LATENCY=200ms
PRELOAD="haswell/time,haswell/edp,skylake/time,skylake/edp"

BIN=$(mktemp -d)
WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -TERM "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

echo "== building binaries" >&2
go build -o "$BIN/pnpserve" ./cmd/pnpserve
go build -o "$BIN/pnpgate" ./cmd/pnpgate
go build -o "$BIN/pnpload" ./cmd/pnpload
go build -o "$BIN/pnpchaos" ./cmd/pnpchaos

wait_http() { # url [tries]
  for _ in $(seq 1 "${2:-300}"); do
    if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "timeout waiting for $1" >&2
  return 1
}

echo "== pre-training the 4-model store (epochs=1)" >&2
"$BIN/pnpserve" -addr 127.0.0.1:18200 -dir "$WORK/seed" -cache 16 -epochs 1 -preload "$PRELOAD" &
SEED_PID=$!
PIDS+=("$SEED_PID")
wait_http http://127.0.0.1:18200/v1/healthz 3000 # listen starts after preload
kill -TERM "$SEED_PID" && wait "$SEED_PID" 2>/dev/null || true
PIDS=()

run_bench() { # name gate_flags...
  local name=$1
  shift
  for i in 0 1 2; do
    cp -r "$WORK/seed" "$WORK/$name-r$i"
    "$BIN/pnpserve" -addr "127.0.0.1:$((18210 + i))" -dir "$WORK/$name-r$i" -cache 16 -epochs 1 &
    PIDS+=("$!")
  done
  for i in 0 1 2; do wait_http "http://127.0.0.1:$((18210 + i))/v1/healthz"; done

  # Replica 0's gate-facing path goes through the latency proxy.
  "$BIN/pnpchaos" -addr 127.0.0.1:18219 -target http://127.0.0.1:18210 -faults "latency=$LATENCY" -seed 8 &
  PIDS+=("$!")
  "$BIN/pnpgate" -addr 127.0.0.1:18209 \
    -replicas http://127.0.0.1:18219,http://127.0.0.1:18211,http://127.0.0.1:18212 \
    -probe-interval 250ms "$@" &
  PIDS+=("$!")
  wait_http http://127.0.0.1:18209/v1/healthz

  # Warm every key through the gate first: hedging never fires on cold
  # keys, and both runs should measure steady state.
  "$BIN/pnpload" -target http://127.0.0.1:18209 -rate 10 -duration 3s \
    -predict 1 -tune 0 -job 0 -seed 9 -out /dev/null -hist=false

  echo "== load: $name (rate $RATE, $DURATION, slow replica +$LATENCY)" >&2
  "$BIN/pnpload" -target http://127.0.0.1:18209 -rate "$RATE" -duration "$DURATION" \
    -predict 1 -tune 0 -job 0 -seed 8 -inflight 128 -max-error-rate 0 \
    -hist=false -out "$WORK/$name.json"

  for pid in "${PIDS[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  PIDS=()
}

run_bench nohedge -no-hedge
run_bench hedged -hedge-delay 25ms

echo "== assembling $OUT" >&2
jq -n \
  --slurpfile no "$WORK/nohedge.json" \
  --slurpfile yes "$WORK/hedged.json" \
  --arg latency "$LATENCY" '
  def summarize: {
    offered_rate_rps: .offered_rate_rps,
    duration_sec: .duration_sec,
    sent: .sent,
    completed: .completed,
    errors: .errors,
    timeouts: .timeouts,
    degraded: .degraded,
    throughput_rps: .throughput_rps,
    predict_p50_ms: .ops.predict.p50_ms,
    predict_p99_ms: .ops.predict.p99_ms,
    predict_max_ms: .ops.predict.max_ms
  };
  {
    issue: 8,
    note: ("pnpload (open-loop Poisson, predict-only, seed 8) against a pnpgate fronting 3 pnpserve replicas with identical pre-trained 4-model stores; replica 0 is reached through a pnpchaos proxy adding " + $latency + " to every gate-side request. Keys the ring assigns to the slow replica pay the injected latency on every predict when hedging is off; with -hedge-delay 25ms the gate races the next preference-order replica after 25ms and takes the first answer, collapsing the injected-latency tail. Both runs are warmed first (hedging never fires on cold keys) and required zero unexpected errors."),
    injected_latency: $latency,
    hedge_delay: "25ms",
    runs: { no_hedge: ($no[0] | summarize), hedged: ($yes[0] | summarize) },
    p99_improvement: {
      no_hedge_ms: ($no[0].ops.predict.p99_ms),
      hedged_ms: ($yes[0].ops.predict.p99_ms),
      speedup: (($no[0].ops.predict.p99_ms) / ($yes[0].ops.predict.p99_ms))
    }
  }' > "$OUT"

echo "done: $OUT" >&2
jq .p99_improvement "$OUT" >&2
