// Command bench6merge folds the two pnpload reports produced by
// scripts/bench_cluster.sh (env SINGLE, CLUSTER) into the committed
// BENCH_6.json artifact (env OUTFILE): per-run predict p50/p99,
// throughput, and error counts, plus the cluster-over-single speedups
// the issue's acceptance criteria check.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"pnptuner/internal/loadgen"
)

type runSummary struct {
	Replicas         int     `json:"replicas"`
	CachePerReplica  int     `json:"cache_per_replica"`
	OfferedRateRPS   float64 `json:"offered_rate_rps"`
	DurationSec      float64 `json:"duration_sec"`
	Sent             int64   `json:"sent"`
	Completed        int64   `json:"completed"`
	Errors           int64   `json:"errors"`
	Shed             int64   `json:"shed"`
	ThroughputRPS    float64 `json:"throughput_rps"`
	PredictP50Millis float64 `json:"predict_p50_ms"`
	PredictP99Millis float64 `json:"predict_p99_ms"`
}

func load(path string, replicas int) (*loadgen.Report, runSummary) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		fatal(err)
	}
	pred := rep.Ops[loadgen.OpPredict]
	if pred == nil {
		fatal(fmt.Errorf("%s: no predict stats", path))
	}
	return &rep, runSummary{
		Replicas:         replicas,
		CachePerReplica:  2,
		OfferedRateRPS:   rep.OfferedRate,
		DurationSec:      rep.DurationSec,
		Sent:             rep.Sent,
		Completed:        rep.Completed,
		Errors:           rep.Errors,
		Shed:             rep.Shed,
		ThroughputRPS:    rep.ThroughputRPS,
		PredictP50Millis: pred.P50Millis,
		PredictP99Millis: pred.P99Millis,
	}
}

func main() {
	_, single := load(os.Getenv("SINGLE"), 1)
	_, cluster := load(os.Getenv("CLUSTER"), 3)

	out := map[string]any{
		"issue": 6,
		"note": "pnpload (open-loop Poisson, predict-only, seed 6) against pnpgate fronting " +
			"1 vs 3 pnpserve replicas; identical pre-trained 8-model store (haswell,skylake x " +
			"time,edp x full,loocv:lu), cache capacity 2 models per replica. The single replica " +
			"thrashes its LRU (8 hot keys, 2 slots: every request risks a disk reload plus " +
			"batcher rebuild), saturating below the offered rate — its residual errors are 503s " +
			"from batchers closed by eviction churn that persist through client retries. Three " +
			"replicas consistent-hash the keys into disjoint resident sets that fit, serving " +
			"the same offered load error-free. Single-core host, so the gain is working-set " +
			"partitioning, not CPU parallelism.",
		"runs": map[string]runSummary{
			"single":   single,
			"cluster3": cluster,
		},
		"speedup": map[string]float64{
			"throughput": ratio(cluster.ThroughputRPS, single.ThroughputRPS),
			"p50":        ratio(single.PredictP50Millis, cluster.PredictP50Millis),
			"p99":        ratio(single.PredictP99Millis, cluster.PredictP99Millis),
		},
	}

	if cluster.ThroughputRPS <= single.ThroughputRPS {
		fmt.Fprintf(os.Stderr, "bench6merge: WARNING cluster throughput %.2f not above single %.2f\n",
			cluster.ThroughputRPS, single.ThroughputRPS)
	}

	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(os.Getenv("OUTFILE"), append(blob, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return float64(int(a/b*100+0.5)) / 100
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench6merge: %v\n", err)
	os.Exit(1)
}
