module pnptuner

go 1.21
