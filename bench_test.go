// Package bench holds the benchmark harness: one testing.B benchmark per
// table and figure of the paper (regenerating its data at reduced scale
// per iteration), plus ablation benchmarks for the design choices called
// out in DESIGN.md and micro-benchmarks of the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// Full-scale figure regeneration lives in cmd/experiments; these
// benchmarks exercise the same code paths end to end.
package bench

import (
	"io"
	"testing"

	"pnptuner/internal/autotune"
	"pnptuner/internal/bliss"
	"pnptuner/internal/core"
	"pnptuner/internal/dataset"
	"pnptuner/internal/experiments"
	"pnptuner/internal/frontend"
	"pnptuner/internal/hw"
	"pnptuner/internal/kernels"
	"pnptuner/internal/omp"
	"pnptuner/internal/opentuner"
	"pnptuner/internal/programl"
	"pnptuner/internal/rgcn"
	"pnptuner/internal/space"
	"pnptuner/internal/tensor"
)

// benchOpts returns reduced-scale options so one benchmark iteration stays
// in the seconds range.
func benchOpts() experiments.Options {
	o := experiments.QuickOptions()
	o.MaxFolds = 2
	return o
}

// --- Tables ---------------------------------------------------------------

// BenchmarkTable1SearchSpace regenerates Table I: constructing and fully
// enumerating the 508-point search space for both machines.
func BenchmarkTable1SearchSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range hw.Machines() {
			s := space.New(m)
			total := 0
			for j := 0; j < s.NumJoint(); j++ {
				_, cfg := s.At(j)
				total += cfg.Threads
			}
			if s.NumJoint() != 508 {
				b.Fatal("search space size drifted")
			}
		}
	}
}

// BenchmarkTable2ModelConstruction builds the Table II model (4 RGCN +
// 3 FC layers) from scratch.
func BenchmarkTable2ModelConstruction(b *testing.B) {
	c := kernels.MustCompile()
	cfg := core.DefaultModelConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewModel(cfg, c.Vocab.Size(), 4, 127)
		if len(m.Heads) != 4 {
			b.Fatal("model shape wrong")
		}
	}
}

// --- §I motivating example -------------------------------------------------

// BenchmarkMotivationLULESH regenerates the §I numbers (exhaustive search
// over the LULESH boundary kernel at every Haswell cap).
func BenchmarkMotivationLULESH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Motivation(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures ----------------------------------------------------------------

// BenchmarkFig2HaswellPowerTuning regenerates Fig. 2 (power-constrained
// tuning, Haswell) at reduced fold count.
func BenchmarkFig2HaswellPowerTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(io.Discard, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3SkylakePowerTuning regenerates Fig. 3 (Skylake, with the
// Haswell→Skylake transfer-learning path).
func BenchmarkFig3SkylakePowerTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(io.Discard, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4UnseenCapSkylake regenerates Fig. 4 (unseen power
// constraints, Skylake).
func BenchmarkFig4UnseenCapSkylake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(io.Discard, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5UnseenCapHaswell regenerates Fig. 5 (unseen power
// constraints, Haswell).
func BenchmarkFig5UnseenCapHaswell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(io.Discard, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6EDP regenerates Fig. 6 (EDP improvement, both systems).
func BenchmarkFig6EDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range hw.Machines() {
			if _, err := experiments.Fig6And7(io.Discard, m, benchOpts()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig7SpeedupGreenup regenerates the Fig. 7 series (speedups and
// greenups of EDP-tuned configurations); it shares the Fig. 6 pipeline,
// benchmarked here on the Haswell system alone.
func BenchmarkFig7SpeedupGreenup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ef, err := experiments.Fig6And7(io.Discard, hw.Haswell(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(ef.Speedup[experiments.TunerPnPStatic]) == 0 {
			b.Fatal("no Fig 7 series")
		}
	}
}

// --- Ablations (DESIGN.md design choices) -----------------------------------

// BenchmarkAblationStaticVsDynamicFeatures contrasts training with static
// features only against the counter-augmented variant (§IV-B).
func BenchmarkAblationStaticVsDynamicFeatures(b *testing.B) {
	d := dataset.MustBuild(hw.Haswell())
	fold := d.LOOCVFolds()[0]
	for _, variant := range []struct {
		name     string
		counters bool
	}{{"static", false}, {"dynamic", true}} {
		b.Run(variant.name, func(b *testing.B) {
			cfg := core.DefaultModelConfig()
			cfg.Epochs = 6
			cfg.UseCounters = variant.counters
			for i := 0; i < b.N; i++ {
				core.TrainPower(d, fold, cfg)
			}
		})
	}
}

// BenchmarkAblationTransferVsFull contrasts full Skylake training against
// frozen-encoder transfer (the 4.18× claim of §IV-B).
func BenchmarkAblationTransferVsFull(b *testing.B) {
	dH := dataset.MustBuild(hw.Haswell())
	dS := dataset.MustBuild(hw.Skylake())
	cfg := core.DefaultModelConfig()
	cfg.Epochs = 6
	src := core.TrainPower(dH, dataset.Fold{Train: dH.Regions}, cfg)
	fold := dS.LOOCVFolds()[0]
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.TrainPower(dS, fold, cfg)
		}
	})
	b.Run("transfer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.TransferPower(src.Model, dS, fold, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSoftVsHardLabels contrasts hard argmax-label training
// (the paper's stated recipe) against the soft near-optimal-set labels
// this reproduction defaults to (see DESIGN.md §Deviations).
func BenchmarkAblationSoftVsHardLabels(b *testing.B) {
	d := dataset.MustBuild(hw.Haswell())
	fold := d.LOOCVFolds()[0]
	for _, variant := range []struct {
		name string
		soft bool
	}{{"hard", false}, {"soft", true}} {
		b.Run(variant.name, func(b *testing.B) {
			cfg := core.DefaultModelConfig()
			cfg.Epochs = 6
			cfg.SoftLabels = variant.soft
			for i := 0; i < b.N; i++ {
				core.TrainPower(d, fold, cfg)
			}
		})
	}
}

// BenchmarkAblationRGCNDepth varies the number of RGCN layers around the
// Table II value (4), the key architecture choice of §III-D1.
func BenchmarkAblationRGCNDepth(b *testing.B) {
	d := dataset.MustBuild(hw.Haswell())
	fold := d.LOOCVFolds()[0]
	for _, depth := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "rgcn1", 2: "rgcn2", 4: "rgcn4"}[depth], func(b *testing.B) {
			cfg := core.DefaultModelConfig()
			cfg.Epochs = 6
			cfg.NumRGCN = depth
			for i := 0; i < b.N; i++ {
				core.TrainPower(d, fold, cfg)
			}
		})
	}
}

// BenchmarkAblationHybridTopK measures the hybrid extension (top-k
// candidates validated by measurement) against pure static prediction.
func BenchmarkAblationHybridTopK(b *testing.B) {
	d := dataset.MustBuild(hw.Haswell())
	fold := d.LOOCVFolds()[0]
	cfg := core.DefaultModelConfig()
	cfg.Epochs = 6
	res := core.TrainPower(d, fold, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.HybridPower(d, res, fold, 3)
	}
}

// BenchmarkAblationSchedulers contrasts the three schedule simulators on
// an imbalanced region (the choice the omp package's chunk-level
// simulation exists for).
func BenchmarkAblationSchedulers(b *testing.B) {
	c := kernels.MustCompile()
	var region *kernels.Region
	for _, r := range c.Regions {
		if r.App == "Quicksilver" {
			region = r
			break
		}
	}
	ex := omp.NewExecutor(hw.Haswell())
	for _, sched := range []omp.Schedule{omp.ScheduleStatic, omp.ScheduleDynamic, omp.ScheduleGuided} {
		b.Run(sched.String(), func(b *testing.B) {
			cfg := omp.Config{Threads: 16, Sched: sched, Chunk: 16}
			for i := 0; i < b.N; i++ {
				ex.Run(&region.Info.Model, region.Seed, cfg, 60)
			}
		})
	}
}

// --- Substrate micro-benchmarks ----------------------------------------------

// BenchmarkExhaustiveSweep measures the full oracle sweep (68 regions ×
// 508 points) — the "dataset creation" cost of §III-C.
func BenchmarkExhaustiveSweep(b *testing.B) {
	corpus := kernels.MustCompile()
	m := hw.Haswell()
	s := space.New(m)
	ex := omp.NewExecutor(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range corpus.Regions {
			for _, capW := range s.Caps() {
				for _, cfg := range s.Configs {
					ex.Run(&r.Info.Model, r.Seed, cfg, capW)
				}
			}
		}
	}
}

// BenchmarkRegionExecution measures one simulated region execution.
func BenchmarkRegionExecution(b *testing.B) {
	c := kernels.MustCompile()
	r := c.Regions[0]
	ex := omp.NewExecutor(hw.Skylake())
	cfg := omp.Config{Threads: 32, Sched: omp.ScheduleDynamic, Chunk: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Run(&r.Info.Model, r.Seed, cfg, 120)
	}
}

// BenchmarkCorpusCompile measures frontend compilation + graph
// construction of the whole 30-application corpus.
func BenchmarkCorpusCompile(b *testing.B) {
	apps := kernels.Apps()
	for i := 0; i < b.N; i++ {
		for _, app := range apps {
			if _, _, err := frontend.Compile(app.Name, app.Source); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRGCNForward measures one GNN encoder pass over a mid-sized
// region graph.
func BenchmarkRGCNForward(b *testing.B) {
	c := kernels.MustCompile()
	var g *programl.Graph
	for _, r := range c.Regions {
		if r.App == "gemm" {
			g = r.Graph
		}
	}
	rng := tensor.NewRNG(1)
	emb := rgcn.NewEmbedding("e", c.Vocab.Size(), 16, rng)
	layer := rgcn.NewLayer("l", emb.OutDim(), 16, rng)
	adj := rgcn.BuildAdjacency(g)
	layer.SetGraph(adj)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := emb.Forward(g)
		layer.Forward(h)
	}
}

// BenchmarkBatchedForward contrasts the sequential per-graph encoder path
// (the seed's hot loop: one Forward per region) with the batched
// block-diagonal engine, which encodes the whole corpus in one pass. The
// batched path fans the per-relation scatter-adds and matrix multiplies
// out across the worker pool, so the gap widens with GOMAXPROCS; both
// paths produce the same pooled vectors within 1e-9 (see
// core.TestEncoderBatchMatchesPerGraph).
func BenchmarkBatchedForward(b *testing.B) {
	c := kernels.MustCompile()
	cfg := core.DefaultModelConfig()
	m := core.NewModel(cfg, c.Vocab.Size(), 1, 127)
	regions := c.Regions
	m.Batch(regions) // warm the adjacency cache for both paths
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range regions {
				m.Enc.Forward(r, m.Adjacency(r))
			}
		}
	})
	b.Run("batched-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Enc.ForwardBatch(m.Batch(regions))
		}
	})
}

// BenchmarkFitEpoch measures training epoch throughput on the full
// scenario-1 corpus: one Fit call with a single epoch — minibatch
// assembly, block-diagonal encoder forward/backward, head passes, and the
// optimizer step for every minibatch of the 68-region corpus. This is the
// headline training hot path the compile-once pipeline exists for; compare
// against BENCH_3.json with benchstat.
func BenchmarkFitEpoch(b *testing.B) {
	d := dataset.MustBuild(hw.Haswell())
	cfg := core.DefaultModelConfig()
	cfg.Epochs = 1
	nCaps := len(d.Space.Caps())
	m := core.NewModel(cfg, d.Corpus.Vocab.Size(), nCaps, d.Space.NumConfigs())
	samples := core.PowerSamples(d, d.Regions, cfg)
	m.Fit(samples) // warm caches so iterations measure steady state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Fit(samples)
	}
}

// BenchmarkPredictSweep measures prediction-sweep throughput: scoring
// every region of the corpus across every per-cap head (68 regions × 4
// heads × 127 configs) from raw graphs to config picks — the
// train-once/predict-many serving shape.
func BenchmarkPredictSweep(b *testing.B) {
	d := dataset.MustBuild(hw.Haswell())
	cfg := core.DefaultModelConfig()
	cfg.Epochs = 1
	nCaps := len(d.Space.Caps())
	m := core.NewModel(cfg, d.Corpus.Vocab.Size(), nCaps, d.Space.NumConfigs())
	m.Fit(core.PowerSamples(d, d.Regions, cfg))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := core.PredictPower(d, m, d.Regions); len(got) != len(d.Regions) {
			b.Fatal("sweep dropped regions")
		}
	}
}

// BenchmarkPredictSweepQuantized is BenchmarkPredictSweep through the
// float32 quantized serving snapshot (weights converted once, outside the
// loop) — the measured speedup of the -quantize serving path. Picks are
// parity-gated bit-equal to the float64 sweep (core.TestQuantizedParity*).
func BenchmarkPredictSweepQuantized(b *testing.B) {
	d := dataset.MustBuild(hw.Haswell())
	cfg := core.DefaultModelConfig()
	cfg.Epochs = 1
	nCaps := len(d.Space.Caps())
	m := core.NewModel(cfg, d.Corpus.Vocab.Size(), nCaps, d.Space.NumConfigs())
	m.Fit(core.PowerSamples(d, d.Regions, cfg))
	q := m.MustQuantize()
	core.PredictPowerQuantized(q, d.Regions) // warm the scratch arenas
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := core.PredictPowerQuantized(q, d.Regions); len(got) != len(d.Regions) {
			b.Fatal("sweep dropped regions")
		}
	}
}

// BenchmarkBaselineTuners measures one engine-driven tuning run of each
// baseline strategy.
func BenchmarkBaselineTuners(b *testing.B) {
	d := dataset.MustBuild(hw.Haswell())
	rd := d.Regions[0]
	task := func(seed uint64) autotune.Task {
		return autotune.Task{
			Problem:  autotune.Problem{Obj: autotune.TimeUnderCap{Cap: 0}, Space: d.Space, Seed: seed},
			RegionID: rd.Region.ID,
		}
	}
	b.Run("bliss", func(b *testing.B) {
		entry := bliss.Entry("BLISS")
		for i := 0; i < b.N; i++ {
			autotune.RunEntry(entry, rd, task(uint64(i)))
		}
	})
	b.Run("opentuner", func(b *testing.B) {
		entry := opentuner.Entry("OpenTuner")
		for i := 0; i < b.N; i++ {
			autotune.RunEntry(entry, rd, task(uint64(i)))
		}
	})
}

// BenchmarkEngineSession measures one full autotune engine session per
// strategy on a fixed tuning task (Haswell region 0, lowest cap): the
// zero-execution GNN pick, the hybrid shortlist refinement, and the two
// search baselines under their paper budgets. This is the perf
// trajectory point the bench-smoke CI job tracks (BENCH_4.json).
func BenchmarkEngineSession(b *testing.B) {
	d := dataset.MustBuild(hw.Haswell())
	rd := d.Regions[0]
	cfg := core.DefaultModelConfig()
	cfg.Epochs = 1
	nCaps := len(d.Space.Caps())
	m := core.NewModel(cfg, d.Corpus.Vocab.Size(), nCaps, d.Space.NumConfigs())
	m.Fit(core.PowerSamples(d, d.Regions, cfg))
	topk := core.TopKPower(d, m, d.Regions[:1], experiments.HybridK)

	task := func(seed uint64) autotune.Task {
		return autotune.Task{
			Problem:  autotune.Problem{Obj: autotune.TimeUnderCap{Cap: 0}, Space: d.Space, Seed: seed},
			RegionID: rd.Region.ID,
		}
	}
	entries := map[string]autotune.Entry{
		"gnn": autotune.FixedEntry("gnn", func(t autotune.Task) int {
			return topk[t.RegionID][0][0]
		}),
		"hybrid": autotune.HybridEntry("hybrid", func(t autotune.Task) []int {
			return topk[t.RegionID][0]
		}),
		"bliss":     bliss.Entry("BLISS"),
		"opentuner": opentuner.Entry("OpenTuner"),
	}
	for _, name := range []string{"gnn", "hybrid", "bliss", "opentuner"} {
		entry := entries[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				autotune.RunEntry(entry, rd, task(uint64(i)))
			}
		})
	}
}
