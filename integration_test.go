package bench

import (
	"math"
	"strings"
	"testing"

	"pnptuner/internal/core"
	"pnptuner/internal/dataset"
	"pnptuner/internal/frontend"
	"pnptuner/internal/hw"
	"pnptuner/internal/metrics"
	"pnptuner/internal/omp"
	"pnptuner/internal/programl"
	"pnptuner/internal/vocab"
)

// TestPipelineEndToEnd walks a user-authored kernel through the entire
// stack: parse → analyze → lower → graph → vocabulary → simulated
// execution, checking cross-layer consistency at each joint.
func TestPipelineEndToEnd(t *testing.T) {
	src := `
const int N = 300000;
double a[N];
double b[N];
double s;

void saxpyish() {
  #pragma omp parallel for schedule(static) reduction(+:s)
  for (i = 0; i < N; i++) {
    a[i] = a[i] + 2.5 * b[i];
    s += a[i];
  }
}
`
	prog, low, err := frontend.Compile("user", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Regions) != 1 {
		t.Fatalf("regions = %d", len(prog.Regions))
	}
	region := prog.Regions[0]
	if region.Model.Trips != 300000 || !region.Model.HasReduction {
		t.Fatalf("model wrong: %+v", region.Model)
	}

	fn := low.RegionFunc[region.ID]
	if fn == nil || !strings.Contains(fn.Nam, "omp_outlined") {
		t.Fatal("outlining failed")
	}
	g, err := programl.FromFunction(region.ID, fn)
	if err != nil {
		t.Fatal(err)
	}
	v := vocab.New()
	v.Freeze()
	v.Annotate(g)
	for _, n := range g.Nodes {
		if n.Token == vocab.UnknownToken {
			t.Fatalf("user kernel produced unknown token %q", n.Text)
		}
	}

	mach := hw.Haswell()
	ex := omp.NewExecutor(mach)
	rTDP := ex.Run(&region.Model, 1, omp.DefaultConfig(mach), mach.TDP)
	rCap := ex.Run(&region.Model, 1, omp.DefaultConfig(mach), mach.MinPower)
	if !(rCap.TimeSec > rTDP.TimeSec) {
		t.Fatalf("power cap did not slow execution: %g vs %g", rCap.TimeSec, rTDP.TimeSec)
	}
	if !(rTDP.EnergyJ() > 0 && rCap.EDP() > 0) {
		t.Fatal("non-physical energy")
	}
}

// TestHybridTopKBeatsStaticTop1 checks the extension mode: picking the
// best of the model's top-3 candidates by measurement must be at least as
// good as trusting the argmax, and strictly better somewhere.
func TestHybridTopKBeatsStaticTop1(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	fold := d.LOOCVFolds()[0]
	cfg := core.DefaultModelConfig()
	cfg.Epochs = 8
	cfg.EmbedDim, cfg.Hidden = 8, 8
	res := core.TrainPower(d, fold, cfg)
	hybrid := core.HybridPower(d, res, fold, 3)

	var top1, top3 []float64
	for _, rd := range fold.Val {
		for ci := range d.Space.Caps() {
			best := rd.BestTime(ci)
			top1 = append(top1, best/rd.Results[ci][res.Pred[rd.Region.ID][ci]].TimeSec)
			top3 = append(top3, best/rd.Results[ci][hybrid[rd.Region.ID][ci]].TimeSec)
		}
	}
	g1, g3 := metrics.GeoMean(top1), metrics.GeoMean(top3)
	if g3 < g1-1e-12 {
		t.Fatalf("hybrid top-3 (%.4f) worse than top-1 (%.4f): selection broken", g3, g1)
	}
	// Per-case dominance: hybrid can never be worse on any single case.
	for i := range top1 {
		if top3[i] < top1[i]-1e-12 {
			t.Fatalf("hybrid regressed case %d: %.4f < %.4f", i, top3[i], top1[i])
		}
	}
}

// TestOracleConsistencyAcrossMachines: both machines' datasets must agree
// on corpus shape and produce comparable (finite, positive) oracle values.
func TestOracleConsistencyAcrossMachines(t *testing.T) {
	dH := dataset.MustBuild(hw.Haswell())
	dS := dataset.MustBuild(hw.Skylake())
	if len(dH.Regions) != len(dS.Regions) {
		t.Fatal("region counts differ")
	}
	for i := range dH.Regions {
		if dH.Regions[i].Region.ID != dS.Regions[i].Region.ID {
			t.Fatal("region order differs across machines")
		}
		for ci := range dH.Space.Caps() {
			if b := dH.Regions[i].BestTime(ci); !(b > 0) || math.IsInf(b, 0) {
				t.Fatalf("bad Haswell oracle for %s", dH.Regions[i].Region.ID)
			}
		}
	}
	// The same region should generally run faster on the bigger machine
	// at TDP in aggregate.
	var ratios []float64
	for i := range dH.Regions {
		h := dH.Regions[i].BestTime(len(dH.Space.Caps()) - 1)
		s := dS.Regions[i].BestTime(len(dS.Space.Caps()) - 1)
		ratios = append(ratios, h/s)
	}
	if metrics.GeoMean(ratios) < 1 {
		t.Fatalf("Skylake slower than Haswell in aggregate (ratio %.3f); calibration wrong",
			metrics.GeoMean(ratios))
	}
}
