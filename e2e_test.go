package bench

import (
	"math"
	"path/filepath"
	"testing"

	"pnptuner/internal/core"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/registry"
)

// tinyCfg keeps e2e training fast without changing any mechanism.
func tinyCfg() core.ModelConfig {
	cfg := core.DefaultModelConfig()
	cfg.EmbedDim = 8
	cfg.Hidden = 8
	cfg.Epochs = 4
	return cfg
}

// TestE2EGoldenSaveLoad is the end-to-end golden test of the model
// registry workflow: train a tiny scenario-1 model, Save → LoadModel, and
// assert the reloaded model's per-region, per-cap predicted config
// indices are identical to the in-memory model's — on both machines.
func TestE2EGoldenSaveLoad(t *testing.T) {
	for _, m := range hw.Machines() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			d := dataset.MustBuild(m)
			fold := d.LOOCVFolds()[0]
			res := core.TrainPower(d, fold, tinyCfg())

			path := filepath.Join(t.TempDir(), m.Name+".pnpm")
			meta := core.MetaFor(d, "loocv:"+fold.App, "time")
			if err := res.Model.Save(path, meta); err != nil {
				t.Fatal(err)
			}
			loaded, meta2, err := core.LoadModel(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := meta2.Check(d); err != nil {
				t.Fatal(err)
			}

			// Every parameter must survive the round trip bit-exactly.
			src, dst := res.Model.Params(), loaded.Params()
			if len(src) != len(dst) {
				t.Fatalf("%d vs %d params", len(src), len(dst))
			}
			for i := range src {
				for j := range src[i].W.Data {
					if math.Float64bits(src[i].W.Data[j]) != math.Float64bits(dst[i].W.Data[j]) {
						t.Fatalf("param %s[%d] not bit-exact after Save/Load", src[i].Name, j)
					}
				}
			}

			// And so must the recommendations: identical config indices per
			// region per cap, against both the train-time predictions and a
			// fresh in-memory prediction pass.
			inMem := core.PredictPower(d, res.Model, fold.Val)
			fromDisk := core.PredictPower(d, loaded, fold.Val)
			for _, rd := range fold.Val {
				id := rd.Region.ID
				for ci := range d.Space.Caps() {
					if fromDisk[id][ci] != inMem[id][ci] {
						t.Fatalf("%s cap %d: loaded pick %d != in-memory %d",
							id, ci, fromDisk[id][ci], inMem[id][ci])
					}
					if fromDisk[id][ci] != res.Pred[id][ci] {
						t.Fatalf("%s cap %d: loaded pick %d != train-time %d",
							id, ci, fromDisk[id][ci], res.Pred[id][ci])
					}
				}
			}
		})
	}
}

// TestE2EGoldenSaveLoadEDP runs the same golden round trip for the
// scenario-2 (joint cap × config, EDP objective) model.
func TestE2EGoldenSaveLoadEDP(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	fold := d.LOOCVFolds()[1]
	cfg := tinyCfg()
	cfg.Epochs = 3
	res := core.TrainEDP(d, fold, cfg)

	path := filepath.Join(t.TempDir(), "edp.pnpm")
	if err := res.Model.Save(path, core.MetaFor(d, "loocv:"+fold.App, "edp")); err != nil {
		t.Fatal(err)
	}
	loaded, meta, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := meta.Check(d); err != nil {
		t.Fatal(err)
	}
	fromDisk := core.PredictEDP(d, loaded, fold.Val)
	for _, rd := range fold.Val {
		id := rd.Region.ID
		if fromDisk[id] != res.Pred[id] {
			t.Fatalf("%s: loaded joint pick %d != train-time %d", id, fromDisk[id], res.Pred[id])
		}
	}
}

// TestE2ERegistryTrainOnceServeTwice closes the loop at the registry
// level: the first Get trains and persists, a second registry over the
// same store serves the identical model from disk, and its predictions
// match the original's exactly.
func TestE2ERegistryTrainOnceServeTwice(t *testing.T) {
	dir := t.TempDir()
	key := registry.Key{Machine: "haswell", Scenario: "loocv:gemm", Objective: registry.ObjectiveTime}

	reg1, err := registry.New(dir, 2, registry.DefaultTrainer(tinyCfg()))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := reg1.Get(key)
	if err != nil {
		t.Fatal(err)
	}

	reg2, err := registry.New(dir, 2, nil) // no trainer: must come from disk
	if err != nil {
		t.Fatal(err)
	}
	e2, err := reg2.Get(key)
	if err != nil {
		t.Fatal(err)
	}

	d := dataset.MustBuild(hw.Haswell())
	fold, ok := d.FoldByApp("gemm")
	if !ok {
		t.Fatal("gemm fold missing")
	}
	p1 := core.PredictPower(d, e1.Model, fold.Val)
	p2 := core.PredictPower(d, e2.Model, fold.Val)
	for _, rd := range fold.Val {
		id := rd.Region.ID
		for ci := range d.Space.Caps() {
			if p1[id][ci] != p2[id][ci] {
				t.Fatalf("%s cap %d: trained pick %d != disk-served %d", id, ci, p1[id][ci], p2[id][ci])
			}
		}
	}
}
