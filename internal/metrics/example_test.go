package metrics_test

import (
	"fmt"

	"pnptuner/internal/metrics"
)

// ExampleGeoMean aggregates per-region speedups the way every figure in
// the paper does.
func ExampleGeoMean() {
	speedups := []float64{1.2, 1.5, 0.9, 2.0}
	fmt.Printf("%.3f\n", metrics.GeoMean(speedups))
	// Output:
	// 1.342
}

// ExampleNormalize shows oracle normalization: the figures plot each
// tuner's speedup as a fraction of the exhaustive-search speedup.
func ExampleNormalize() {
	tunerSpeedup, oracleSpeedup := 1.31, 1.40
	fmt.Printf("%.3f\n", metrics.Normalize(tunerSpeedup, oracleSpeedup))
	// Output:
	// 0.936
}

// ExampleFractionAtLeast computes the "within 5% of oracle" statistic.
func ExampleFractionAtLeast() {
	normalized := []float64{1.0, 0.97, 0.90, 0.96}
	fmt.Printf("%.0f%%\n", 100*metrics.FractionAtLeast(normalized, 0.95))
	// Output:
	// 75%
}
