package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRatios(t *testing.T) {
	if Speedup(2, 1) != 2 || Speedup(1, 2) != 0.5 {
		t.Error("speedup wrong")
	}
	if Greenup(100, 50) != 2 {
		t.Error("greenup wrong")
	}
	if EDPImprovement(9, 3) != 3 {
		t.Error("EDP improvement wrong")
	}
	if !math.IsInf(Speedup(1, 0), 1) || !math.IsInf(Greenup(1, 0), 1) {
		t.Error("zero denominators must give +Inf")
	}
}

func TestGeoMeanKnown(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean(1,4) = %g", g)
	}
	if g := GeoMean([]float64{2, 2, 2}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean(2,2,2) = %g", g)
	}
	if g := GeoMean(nil); g != 1 {
		t.Fatalf("geomean(empty) = %g", g)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestNormalize(t *testing.T) {
	if Normalize(0.9, 1.0) != 0.9 {
		t.Error("normalize wrong")
	}
	if Normalize(1.00000001, 1.0) != 1 {
		t.Error("jitter above oracle must clamp to 1")
	}
	if Normalize(1.5, 1.0) != 1.5 {
		t.Error("genuinely-above-oracle must not clamp")
	}
	if Normalize(1, 0) != 0 {
		t.Error("zero oracle must yield 0")
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{1.0, 0.96, 0.5, 0.95}
	if got := FractionAtLeast(xs, 0.95); got != 0.75 {
		t.Fatalf("FractionAtLeast = %g", got)
	}
	if got := FractionAtLeast(nil, 0.95); got != 0 {
		t.Fatalf("empty FractionAtLeast = %g", got)
	}
	a := []float64{2, 1, 3}
	b := []float64{1, 1, 4}
	if got := FractionGreater(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("FractionGreater = %g", got)
	}
}

func TestFractionGreaterPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FractionGreater([]float64{1}, []float64{1, 2})
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 4})
	if s.Min != 1 || s.Max != 4 || s.N != 3 || math.Abs(s.GeoMean-2) > 1e-12 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
	if e := Summarize(nil); e.GeoMean != 1 || e.N != 0 {
		t.Fatalf("empty summary = %+v", e)
	}
}

// Property: geomean is scale-equivariant: GeoMean(k·xs) == k·GeoMean(xs).
func TestQuickGeoMeanScaling(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%7)
		xs := make([]float64, n)
		ys := make([]float64, n)
		k := 0.5 + float64(seed%13)/4
		x := seed
		for i := range xs {
			x = x*6364136223846793005 + 1442695040888963407
			v := 0.1 + float64(x>>40)/float64(1<<24)*5
			xs[i] = v
			ys[i] = v * k
		}
		return math.Abs(GeoMean(ys)-k*GeoMean(xs)) < 1e-9*GeoMean(ys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
