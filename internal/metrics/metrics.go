// Package metrics provides the evaluation arithmetic the paper reports:
// speedup, greenup (Energy_old/Energy_new, after Choi et al.'s roofline
// model of energy), energy-delay-product improvement, geometric means, and
// oracle normalization.
package metrics

import (
	"fmt"
	"math"
)

// Speedup returns t_base / t_new (>1 means the new configuration is faster).
func Speedup(baseTime, newTime float64) float64 {
	if newTime <= 0 {
		return math.Inf(1)
	}
	return baseTime / newTime
}

// Greenup returns e_base / e_new (>1 means the new configuration uses
// less energy).
func Greenup(baseEnergy, newEnergy float64) float64 {
	if newEnergy <= 0 {
		return math.Inf(1)
	}
	return baseEnergy / newEnergy
}

// EDPImprovement returns edp_base / edp_new (>1 means better).
func EDPImprovement(baseEDP, newEDP float64) float64 {
	if newEDP <= 0 {
		return math.Inf(1)
	}
	return baseEDP / newEDP
}

// GeoMean returns the geometric mean of xs. It panics on non-positive
// inputs (ratios are positive by construction) and returns 1 for empty
// input (the neutral ratio).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("metrics: non-positive ratio %g in geomean", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Normalize divides each value by the oracle value, clamping at 1 only
// when numeric jitter pushes a ratio infinitesimally above the oracle.
func Normalize(value, oracle float64) float64 {
	if oracle <= 0 {
		return 0
	}
	n := value / oracle
	if n > 1 && n < 1.0000001 {
		n = 1
	}
	return n
}

// FractionAtLeast returns the fraction of xs that are ≥ threshold — the
// paper's "within 5% of oracle" style statistics use this with normalized
// values (e.g. threshold 0.95).
func FractionAtLeast(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionGreater returns the fraction of pairwise comparisons where a[i]
// > b[i] (the "PnP beats BLISS in X% of cases" statistic).
func FractionGreater(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: mismatched series %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	n := 0
	for i := range a {
		if a[i] > b[i] {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

// Summary bundles the descriptive statistics printed by the experiment
// harness.
type Summary struct {
	GeoMean float64
	Min     float64
	Max     float64
	N       int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{GeoMean: 1}
	}
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1), N: len(xs)}
	s.GeoMean = GeoMean(xs)
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("geomean %.3f (min %.3f, max %.3f, n=%d)", s.GeoMean, s.Min, s.Max, s.N)
}
