package bliss

import (
	"math"
	"testing"

	"pnptuner/internal/autotune"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
)

// timeTask builds a scenario-1 tuning task at capIdx.
func timeTask(d *dataset.Dataset, capIdx int, seed uint64, budget int) autotune.Problem {
	return autotune.Problem{
		Obj:    autotune.TimeUnderCap{Cap: capIdx},
		Space:  d.Space,
		Budget: budget,
		Seed:   seed,
	}
}

func TestTuneTimeRespectsBudgetAndRange(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	rd := d.Regions[0]
	p := timeTask(d, 0, 1, 10)
	res := autotune.Run(p, autotune.NewReplay(rd, d.Space, p.Obj, p.Seed, NoiseSD, NoiseMix), NewStrategy(p))
	if res.Evals > 10 {
		t.Fatalf("session spent %d evals, budget 10", res.Evals)
	}
	if res.Best < 0 || res.Best >= d.Space.NumConfigs() {
		t.Fatalf("pick %d out of range", res.Best)
	}
}

func TestTuneFindsGoodConfig(t *testing.T) {
	// With 20 samples of 127 configs plus surrogate guidance, BLISS must
	// deliver a clear geometric-mean speedup over the default config at
	// the lowest cap (individual regions may regress: when default is
	// already near-optimal, noisy best-of-20 selection can tip below it,
	// which is exactly the behaviour the paper's comparison exposes).
	d := dataset.MustBuild(hw.Haswell())
	entry := Entry("BLISS")
	var sps []float64
	for _, rd := range d.Regions {
		task := autotune.Task{Problem: timeTask(d, 0, rd.Region.Seed, Budget), RegionID: rd.Region.ID}
		pick := autotune.RunEntry(entry, rd, task).Best
		got := rd.Results[0][pick].TimeSec
		def := rd.DefaultResult(0, d.Space).TimeSec
		sps = append(sps, def/got)
	}
	prod := 1.0
	for _, s := range sps {
		prod *= s
	}
	gm := math.Pow(prod, 1/float64(len(sps)))
	if gm < 1.1 {
		t.Fatalf("BLISS geomean speedup over default = %.3f, want > 1.1", gm)
	}
}

func TestTuneEDPRange(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	task := autotune.Task{Problem: autotune.Problem{Obj: autotune.EDP{}, Space: d.Space, Seed: 7}}
	pick := autotune.RunEntry(Entry("BLISS"), d.Regions[3], task).Best
	if pick < 0 || pick >= d.Space.NumJoint() {
		t.Fatalf("joint pick %d out of range", pick)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	rd := d.Regions[5]
	task := autotune.Task{Problem: timeTask(d, 1, 42, Budget)}
	a := autotune.RunEntry(Entry("BLISS"), rd, task).Best
	b := autotune.RunEntry(Entry("BLISS"), rd, task).Best
	if a != b {
		t.Fatal("same seed gave different picks")
	}
}

func TestRidgeFitsLinearFunction(t *testing.T) {
	r := &ridge{lambda: 1e-6}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		x := []float64{float64(i) / 20, float64(i%5) / 5}
		xs = append(xs, x)
		ys = append(ys, 3*x[0]-2*x[1]+1)
	}
	r.fit(xs, ys)
	got := r.predict([]float64{0.5, 0.4})
	want := 3*0.5 - 2*0.4 + 1
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("ridge predict = %g, want %g", got, want)
	}
}

func TestQuadraticRidgeFitsQuadratic(t *testing.T) {
	r := &ridge{lambda: 1e-6, quadratic: true}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 30; i++ {
		x := []float64{float64(i) / 30}
		xs = append(xs, x)
		ys = append(ys, 2*x[0]*x[0]-x[0]+0.5)
	}
	r.fit(xs, ys)
	got := r.predict([]float64{0.6})
	want := 2*0.36 - 0.6 + 0.5
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("quadratic ridge = %g, want %g", got, want)
	}
}

func TestKNNPredictsNeighbourMean(t *testing.T) {
	m := &knn{k: 2}
	m.fit([][]float64{{0}, {0.1}, {1}}, []float64{10, 20, 99})
	got := m.predict([]float64{0.05})
	if math.Abs(got-15) > 1e-12 {
		t.Fatalf("knn = %g, want 15", got)
	}
}

func TestBestModelPrefersBetterFit(t *testing.T) {
	// A clean quadratic should select the quadratic ridge over plain knn.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 15; i++ {
		x := float64(i) / 15
		xs = append(xs, []float64{x})
		ys = append(ys, x*x)
	}
	m := bestModel(xs, ys)
	if _, ok := m.(*ridge); !ok {
		t.Fatalf("bestModel picked %T for a polynomial", m)
	}
}

func TestExploreFallbackSpendsFullBudget(t *testing.T) {
	// Budget = the whole space: the last exploit/explore rounds leave
	// only a handful of unvisited candidates, where 32 random draws
	// routinely all land on visited ones. The linear-scan fallback must
	// keep proposing, so the session spends its entire budget on
	// distinct candidates instead of silently giving up early.
	d := dataset.MustBuild(hw.Haswell())
	rd := d.Regions[0]
	n := d.Space.NumConfigs()
	p := timeTask(d, 0, 3, n)
	res := autotune.Run(p, autotune.NewReplay(rd, d.Space, p.Obj, p.Seed, NoiseSD, NoiseMix), NewStrategy(p))
	if res.Evals != n {
		t.Fatalf("session spent %d of %d evals: explore gave up before the budget", res.Evals, n)
	}
	seen := map[int]bool{}
	for _, o := range res.Trace {
		if seen[o.Config] {
			t.Fatalf("config %d proposed twice", o.Config)
		}
		seen[o.Config] = true
	}
}

func TestSessionAllocsCeiling(t *testing.T) {
	// Regression ceiling for the vectorized session: the dominant costs
	// are the once-per-session feature matrices; the steady-state
	// exploit rounds reuse scratch buffers. BENCH_4 measured 13205
	// allocs per session before vectorization, ~207 after; the ceiling
	// is the issue's 50x-reduction floor.
	d := dataset.MustBuild(hw.Haswell())
	rd := d.Regions[0]
	p := timeTask(d, 0, 1, Budget)
	allocs := testing.AllocsPerRun(10, func() {
		autotune.Run(p, autotune.NewReplay(rd, d.Space, p.Obj, p.Seed, NoiseSD, NoiseMix), NewStrategy(p))
	})
	if allocs > 264 {
		t.Fatalf("BLISS session allocates %.0f times, ceiling 264", allocs)
	}
}
