package bliss

import (
	"math"
	"testing"

	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
)

func TestTuneTimeRespectsBudgetAndRange(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	rd := d.Regions[0]
	tuner := New(1)
	evals := 0
	// Wrap: count measurements through a probe tuner with tiny budget.
	tuner.Budget = 10
	pick := tuner.TuneTime(rd, 0, d.Space)
	_ = evals
	if pick < 0 || pick >= d.Space.NumConfigs() {
		t.Fatalf("pick %d out of range", pick)
	}
}

func TestTuneFindsGoodConfig(t *testing.T) {
	// With 20 samples of 127 configs plus surrogate guidance, BLISS must
	// deliver a clear geometric-mean speedup over the default config at
	// the lowest cap (individual regions may regress: when default is
	// already near-optimal, noisy best-of-20 selection can tip below it,
	// which is exactly the behaviour the paper's comparison exposes).
	d := dataset.MustBuild(hw.Haswell())
	var sps []float64
	for _, rd := range d.Regions {
		pick := New(rd.Region.Seed).TuneTime(rd, 0, d.Space)
		got := rd.Results[0][pick].TimeSec
		def := rd.DefaultResult(0, d.Space).TimeSec
		sps = append(sps, def/got)
	}
	prod := 1.0
	for _, s := range sps {
		prod *= s
	}
	gm := math.Pow(prod, 1/float64(len(sps)))
	if gm < 1.1 {
		t.Fatalf("BLISS geomean speedup over default = %.3f, want > 1.1", gm)
	}
}

func TestTuneEDPRange(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	pick := New(7).TuneEDP(d.Regions[3], d.Space)
	if pick < 0 || pick >= d.Space.NumJoint() {
		t.Fatalf("joint pick %d out of range", pick)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	rd := d.Regions[5]
	a := New(42).TuneTime(rd, 1, d.Space)
	b := New(42).TuneTime(rd, 1, d.Space)
	if a != b {
		t.Fatal("same seed gave different picks")
	}
}

func TestNoiseIsUnbiasedAndSpread(t *testing.T) {
	tu := New(3)
	sum, sumsq := 0.0, 0.0
	n := 5000
	for i := 0; i < n; i++ {
		v := tu.noise(uint64(i))
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("noise mean = %g, want ~1", mean)
	}
	if sd < 0.10 || sd > 0.20 {
		t.Fatalf("noise sd = %g, want ~0.15", sd)
	}
}

func TestRidgeFitsLinearFunction(t *testing.T) {
	r := &ridge{lambda: 1e-6}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		x := []float64{float64(i) / 20, float64(i%5) / 5}
		xs = append(xs, x)
		ys = append(ys, 3*x[0]-2*x[1]+1)
	}
	r.fit(xs, ys)
	got := r.predict([]float64{0.5, 0.4})
	want := 3*0.5 - 2*0.4 + 1
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("ridge predict = %g, want %g", got, want)
	}
}

func TestQuadraticRidgeFitsQuadratic(t *testing.T) {
	r := &ridge{lambda: 1e-6, quadratic: true}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 30; i++ {
		x := []float64{float64(i) / 30}
		xs = append(xs, x)
		ys = append(ys, 2*x[0]*x[0]-x[0]+0.5)
	}
	r.fit(xs, ys)
	got := r.predict([]float64{0.6})
	want := 2*0.36 - 0.6 + 0.5
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("quadratic ridge = %g, want %g", got, want)
	}
}

func TestKNNPredictsNeighbourMean(t *testing.T) {
	m := &knn{k: 2}
	m.fit([][]float64{{0}, {0.1}, {1}}, []float64{10, 20, 99})
	got := m.predict([]float64{0.05})
	if math.Abs(got-15) > 1e-12 {
		t.Fatalf("knn = %g, want 15", got)
	}
}

func TestBestModelPrefersBetterFit(t *testing.T) {
	// A clean quadratic should select the quadratic ridge over plain knn.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 15; i++ {
		x := float64(i) / 15
		xs = append(xs, []float64{x})
		ys = append(ys, x*x)
	}
	m := bestModel(xs, ys)
	if _, ok := m.(*ridge); !ok {
		t.Fatalf("bestModel picked %T for a polynomial", m)
	}
}
