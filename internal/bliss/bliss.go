// Package bliss reimplements the BLISS auto-tuner (Roy et al., PLDI 2021)
// that the paper compares against: a Bayesian-flavoured sample-efficient
// tuner that maintains a pool of diverse lightweight surrogate models
// (ridge regression, quadratic ridge, k-nearest-neighbours), picks the
// pool member with the best leave-one-out error on the samples gathered
// so far, and alternates model-guided exploitation with random
// exploration. It needs real executions — 20 sampling runs per region in
// the paper's setup — which is exactly the cost the PnP tuner's static
// approach avoids.
//
// BLISS plugs into the autotune engine as a Strategy: the engine owns
// the budget, the seeded RNG stream, and the evaluator (noisy dataset
// replay in the paper's comparison), so a tuning trace is reproducible
// from (strategy, seed, budget) alone.
package bliss

import (
	"math"
	"sort"

	"pnptuner/internal/autotune"
	"pnptuner/internal/dataset"
)

// Paper-comparison defaults: 20 sampling executions per tuning task, and
// 15% relative measurement noise — the run-to-run variance of short
// OpenMP regions on real hardware (turbo, cache state, interference)
// that keeps best-of-20 sampling away from the true optimum.
const (
	Budget  = 20
	NoiseSD = 0.15
)

// NoiseMix is BLISS's replay-noise stream constant (autotune.Replay.Mix),
// kept distinct from other tuners' so their measurements decorrelate at
// equal seeds.
const NoiseMix uint64 = 0x9e3779b97f4a7c15

// Entry returns the engine entry the figure drivers run: the BLISS
// strategy under its paper budget, measured by noisy dataset replay.
func Entry(name string) autotune.Entry {
	return autotune.Entry{
		Name:   name,
		Budget: Budget,
		New:    New,
		Eval: func(rd *dataset.RegionData, t autotune.Task) autotune.Evaluator {
			return autotune.NewReplay(rd, t.Space, t.Obj, t.Seed, NoiseSD, NoiseMix)
		},
	}
}

// Strategy is one BLISS tuning session: bootstrap with stratified random
// samples, then alternate surrogate-guided exploitation with random
// exploration; the recommendation is the best measured point.
type Strategy struct {
	n      int
	feats  [][]float64
	budget int // internal pacing bound (the engine still enforces its own)
	boot   int

	rng      *autotune.RNG
	visited  map[int]bool
	proposed int

	xs   [][]float64
	ys   []float64 // log-scale observations
	idxs []int
}

// New constructs the BLISS strategy for one task (autotune.Entry.New).
func New(t autotune.Task) autotune.Strategy { return NewStrategy(t.Problem) }

// NewStrategy sizes a BLISS session from the problem: candidate features
// come from the objective, the bootstrap fraction from the budget, and
// every random decision from the problem seed.
func NewStrategy(p autotune.Problem) *Strategy {
	n := p.N()
	budget := p.Budget
	if budget < 4 {
		budget = 4
	}
	if budget > n {
		budget = n
	}
	boot := budget / 3
	if boot < 3 {
		boot = 3
	}
	feats := make([][]float64, n)
	for i := range feats {
		feats[i] = p.Obj.Features(p.Space, i)
	}
	return &Strategy{
		n:       n,
		feats:   feats,
		budget:  budget,
		boot:    boot,
		rng:     autotune.NewRNG(p.Seed),
		visited: map[int]bool{},
	}
}

// Propose returns the next candidates to measure: the remaining
// bootstrap draws, then one surrogate-guided pick plus (budget allowing)
// one random exploration point per round.
func (s *Strategy) Propose(k int) []int {
	if k <= 0 {
		return nil
	}
	var out []int
	mark := func(i int) {
		if s.visited[i] {
			return
		}
		s.visited[i] = true
		out = append(out, i)
	}

	if s.proposed < s.boot {
		// Bootstrap: random draws until the boot count of distinct
		// points is met.
		for s.proposed+len(out) < s.boot && len(out) < k {
			mark(int(s.rng.Next() % uint64(s.n)))
		}
		s.proposed += len(out)
		return out
	}
	if s.proposed >= s.budget {
		return nil
	}

	// Exploit: the best-of-pool surrogate's best unvisited candidate.
	model := bestModel(s.xs, s.ys)
	bestI, bestPred := -1, math.Inf(1)
	for i := 0; i < s.n; i++ {
		if s.visited[i] {
			continue
		}
		if p := model.predict(s.feats[i]); p < bestPred {
			bestPred, bestI = p, i
		}
	}
	if bestI >= 0 {
		mark(bestI)
	}
	// Explore: one random unvisited point, budget allowing.
	if s.proposed+len(out) < s.budget && len(out) < k {
		for tries := 0; tries < 32; tries++ {
			i := int(s.rng.Next() % uint64(s.n))
			if !s.visited[i] {
				mark(i)
				break
			}
		}
	}
	s.proposed += len(out)
	return out
}

// Observe records one measurement on log scale for the surrogate pool.
func (s *Strategy) Observe(config int, value float64) {
	s.xs = append(s.xs, s.feats[config])
	s.ys = append(s.ys, math.Log(value))
	s.idxs = append(s.idxs, config)
}

// Best returns the best measured point — which, with noisy measurements,
// need not be the true optimum.
func (s *Strategy) Best() int {
	if len(s.idxs) == 0 {
		return 0
	}
	best, bestY := s.idxs[0], s.ys[0]
	for k, y := range s.ys {
		if y < bestY {
			bestY, best = y, s.idxs[k]
		}
	}
	return best
}

// --- Lightweight model pool ---------------------------------------------

type surrogate interface {
	fit(xs [][]float64, ys []float64)
	predict(x []float64) float64
}

// bestModel fits the pool and returns the member with the lowest
// leave-one-out error (BLISS's model-selection step).
func bestModel(xs [][]float64, ys []float64) surrogate {
	pool := []surrogate{
		&ridge{lambda: 0.1},
		&ridge{lambda: 0.1, quadratic: true},
		&knn{k: 3},
	}
	bestErr := math.Inf(1)
	var best surrogate
	for _, m := range pool {
		err := looError(m, xs, ys)
		if err < bestErr {
			bestErr, best = err, m
		}
	}
	best.fit(xs, ys)
	return best
}

func looError(m surrogate, xs [][]float64, ys []float64) float64 {
	if len(xs) < 3 {
		return math.Inf(1)
	}
	total := 0.0
	for i := range xs {
		txs := make([][]float64, 0, len(xs)-1)
		tys := make([]float64, 0, len(ys)-1)
		for j := range xs {
			if j != i {
				txs = append(txs, xs[j])
				tys = append(tys, ys[j])
			}
		}
		m.fit(txs, tys)
		d := m.predict(xs[i]) - ys[i]
		total += d * d
	}
	return total / float64(len(xs))
}

// ridge is linear (or quadratic-expanded) ridge regression solved by
// Gaussian elimination on the normal equations.
type ridge struct {
	lambda    float64
	quadratic bool
	w         []float64
}

func (r *ridge) expand(x []float64) []float64 {
	out := append([]float64{1}, x...)
	if r.quadratic {
		for i := 0; i < len(x); i++ {
			for j := i; j < len(x); j++ {
				out = append(out, x[i]*x[j])
			}
		}
	}
	return out
}

func (r *ridge) fit(xs [][]float64, ys []float64) {
	if len(xs) == 0 {
		r.w = nil
		return
	}
	d := len(r.expand(xs[0]))
	// Normal equations: (XᵀX + λI) w = Xᵀy.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
		a[i][i] = r.lambda
	}
	for k := range xs {
		e := r.expand(xs[k])
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += e[i] * e[j]
			}
			a[i][d] += e[i] * ys[k]
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < d; col++ {
		piv := col
		for row := col + 1; row < d; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[piv][col]) {
				piv = row
			}
		}
		a[col], a[piv] = a[piv], a[col]
		p := a[col][col]
		if math.Abs(p) < 1e-12 {
			continue
		}
		for row := 0; row < d; row++ {
			if row == col {
				continue
			}
			f := a[row][col] / p
			for j := col; j <= d; j++ {
				a[row][j] -= f * a[col][j]
			}
		}
	}
	r.w = make([]float64, d)
	for i := 0; i < d; i++ {
		if math.Abs(a[i][i]) > 1e-12 {
			r.w[i] = a[i][d] / a[i][i]
		}
	}
}

func (r *ridge) predict(x []float64) float64 {
	e := r.expand(x)
	s := 0.0
	for i, v := range e {
		if i < len(r.w) {
			s += r.w[i] * v
		}
	}
	return s
}

// knn predicts the mean of the k nearest samples.
type knn struct {
	k  int
	xs [][]float64
	ys []float64
}

func (m *knn) fit(xs [][]float64, ys []float64) { m.xs, m.ys = xs, ys }

func (m *knn) predict(x []float64) float64 {
	type dy struct {
		d, y float64
	}
	ds := make([]dy, len(m.xs))
	for i, xi := range m.xs {
		d := 0.0
		for j := range xi {
			dd := xi[j] - x[j]
			d += dd * dd
		}
		ds[i] = dy{d, m.ys[i]}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	k := m.k
	if k > len(ds) {
		k = len(ds)
	}
	if k == 0 {
		return 0
	}
	s := 0.0
	for i := 0; i < k; i++ {
		s += ds[i].y
	}
	return s / float64(k)
}
