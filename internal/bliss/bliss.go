// Package bliss reimplements the BLISS auto-tuner (Roy et al., PLDI 2021)
// that the paper compares against: a Bayesian-flavoured sample-efficient
// tuner that maintains a pool of diverse lightweight surrogate models
// (ridge regression, quadratic ridge, k-nearest-neighbours), picks the
// pool member with the best leave-one-out error on the samples gathered
// so far, and alternates model-guided exploitation with random
// exploration. It needs real executions — 20 sampling runs per region in
// the paper's setup — which is exactly the cost the PnP tuner's static
// approach avoids.
//
// Tuner-visible measurements carry multiplicative run-to-run noise, as
// real repeated executions do; the final choice is the best *measured*
// configuration, which with noise need not be the true optimum.
package bliss

import (
	"math"
	"sort"

	"pnptuner/internal/dataset"
	"pnptuner/internal/space"
)

// Tuner is a BLISS instance.
type Tuner struct {
	// Budget is the number of sampling executions per tuning task
	// (20 in the paper's comparison).
	Budget int
	// NoiseSD is the relative measurement noise of one execution.
	NoiseSD float64
	// Seed decorrelates tuning runs.
	Seed uint64
}

// New returns a BLISS tuner with the paper's budget. The 15% measurement
// noise reflects run-to-run variance of short OpenMP regions on real
// hardware (turbo, cache state, interference), which is what keeps
// best-of-20 sampling away from the true optimum.
func New(seed uint64) *Tuner {
	return &Tuner{Budget: 20, NoiseSD: 0.15, Seed: seed}
}

// TuneTime tunes the per-cap configuration space for minimum execution
// time, returning the chosen config index.
func (t *Tuner) TuneTime(rd *dataset.RegionData, capIdx int, s *space.Space) int {
	n := s.NumConfigs()
	measure := func(i int) float64 {
		true_ := rd.Results[capIdx][i].TimeSec
		return true_ * t.noise(uint64(capIdx)*1000+uint64(i))
	}
	feats := make([][]float64, n)
	for i := 0; i < n; i++ {
		feats[i] = s.ConfigFeatures(i)
	}
	return t.search(n, feats, measure)
}

// TuneEDP tunes the joint (cap × config) space for minimum energy-delay
// product, returning the chosen joint index.
func (t *Tuner) TuneEDP(rd *dataset.RegionData, s *space.Space) int {
	n := s.NumJoint()
	measure := func(j int) float64 {
		ci, ki := s.SplitJoint(j)
		return rd.Results[ci][ki].EDP() * t.noise(uint64(j))
	}
	feats := make([][]float64, n)
	for j := 0; j < n; j++ {
		ci, ki := s.SplitJoint(j)
		f := s.ConfigFeatures(ki)
		capf := s.Caps()[ci] / s.M.TDP
		feats[j] = append(append([]float64{}, f...), capf)
	}
	return t.search(n, feats, measure)
}

// search runs the BLISS loop: bootstrap with random samples, then
// alternate surrogate-guided picks with exploration until the budget is
// spent; return the best measured point.
func (t *Tuner) search(n int, feats [][]float64, measure func(int) float64) int {
	budget := t.Budget
	if budget < 4 {
		budget = 4
	}
	if budget > n {
		budget = n
	}
	rng := newSplitMix(t.Seed)

	visited := map[int]bool{}
	var xs [][]float64
	var ys []float64 // log-scale objective
	var idxs []int
	sample := func(i int) {
		if visited[i] {
			return
		}
		visited[i] = true
		v := measure(i)
		xs = append(xs, feats[i])
		ys = append(ys, math.Log(v))
		idxs = append(idxs, i)
	}

	// Bootstrap: stratified random third of the budget.
	boot := budget / 3
	if boot < 3 {
		boot = 3
	}
	for len(idxs) < boot {
		sample(int(rng.next() % uint64(n)))
	}

	for len(idxs) < budget {
		model := bestModel(xs, ys)
		// Exploit: the model's best unvisited candidate.
		bestI, bestPred := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if visited[i] {
				continue
			}
			if p := model.predict(feats[i]); p < bestPred {
				bestPred, bestI = p, i
			}
		}
		if bestI >= 0 {
			sample(bestI)
		}
		// Explore: one random unvisited point every other round.
		if len(idxs) < budget {
			for tries := 0; tries < 32; tries++ {
				i := int(rng.next() % uint64(n))
				if !visited[i] {
					sample(i)
					break
				}
			}
		}
	}

	// Return the best measured point.
	best := idxs[0]
	bestY := ys[0]
	for k, y := range ys {
		if y < bestY {
			bestY, best = y, idxs[k]
		}
	}
	return best
}

// noise returns a deterministic multiplicative noise factor ~ 1 ± NoiseSD.
func (t *Tuner) noise(key uint64) float64 {
	r := newSplitMix(t.Seed ^ (key * 0x9e3779b97f4a7c15))
	u1 := float64(r.next()>>11) / (1 << 53)
	u2 := float64(r.next()>>11) / (1 << 53)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(t.NoiseSD*z - t.NoiseSD*t.NoiseSD/2)
}

// --- Lightweight model pool ---------------------------------------------

type surrogate interface {
	fit(xs [][]float64, ys []float64)
	predict(x []float64) float64
}

// bestModel fits the pool and returns the member with the lowest
// leave-one-out error (BLISS's model-selection step).
func bestModel(xs [][]float64, ys []float64) surrogate {
	pool := []surrogate{
		&ridge{lambda: 0.1},
		&ridge{lambda: 0.1, quadratic: true},
		&knn{k: 3},
	}
	bestErr := math.Inf(1)
	var best surrogate
	for _, m := range pool {
		err := looError(m, xs, ys)
		if err < bestErr {
			bestErr, best = err, m
		}
	}
	best.fit(xs, ys)
	return best
}

func looError(m surrogate, xs [][]float64, ys []float64) float64 {
	if len(xs) < 3 {
		return math.Inf(1)
	}
	total := 0.0
	for i := range xs {
		txs := make([][]float64, 0, len(xs)-1)
		tys := make([]float64, 0, len(ys)-1)
		for j := range xs {
			if j != i {
				txs = append(txs, xs[j])
				tys = append(tys, ys[j])
			}
		}
		m.fit(txs, tys)
		d := m.predict(xs[i]) - ys[i]
		total += d * d
	}
	return total / float64(len(xs))
}

// ridge is linear (or quadratic-expanded) ridge regression solved by
// Gaussian elimination on the normal equations.
type ridge struct {
	lambda    float64
	quadratic bool
	w         []float64
}

func (r *ridge) expand(x []float64) []float64 {
	out := append([]float64{1}, x...)
	if r.quadratic {
		for i := 0; i < len(x); i++ {
			for j := i; j < len(x); j++ {
				out = append(out, x[i]*x[j])
			}
		}
	}
	return out
}

func (r *ridge) fit(xs [][]float64, ys []float64) {
	if len(xs) == 0 {
		r.w = nil
		return
	}
	d := len(r.expand(xs[0]))
	// Normal equations: (XᵀX + λI) w = Xᵀy.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
		a[i][i] = r.lambda
	}
	for k := range xs {
		e := r.expand(xs[k])
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += e[i] * e[j]
			}
			a[i][d] += e[i] * ys[k]
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < d; col++ {
		piv := col
		for row := col + 1; row < d; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[piv][col]) {
				piv = row
			}
		}
		a[col], a[piv] = a[piv], a[col]
		p := a[col][col]
		if math.Abs(p) < 1e-12 {
			continue
		}
		for row := 0; row < d; row++ {
			if row == col {
				continue
			}
			f := a[row][col] / p
			for j := col; j <= d; j++ {
				a[row][j] -= f * a[col][j]
			}
		}
	}
	r.w = make([]float64, d)
	for i := 0; i < d; i++ {
		if math.Abs(a[i][i]) > 1e-12 {
			r.w[i] = a[i][d] / a[i][i]
		}
	}
}

func (r *ridge) predict(x []float64) float64 {
	e := r.expand(x)
	s := 0.0
	for i, v := range e {
		if i < len(r.w) {
			s += r.w[i] * v
		}
	}
	return s
}

// knn predicts the mean of the k nearest samples.
type knn struct {
	k  int
	xs [][]float64
	ys []float64
}

func (m *knn) fit(xs [][]float64, ys []float64) { m.xs, m.ys = xs, ys }

func (m *knn) predict(x []float64) float64 {
	type dy struct {
		d, y float64
	}
	ds := make([]dy, len(m.xs))
	for i, xi := range m.xs {
		d := 0.0
		for j := range xi {
			dd := xi[j] - x[j]
			d += dd * dd
		}
		ds[i] = dy{d, m.ys[i]}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	k := m.k
	if k > len(ds) {
		k = len(ds)
	}
	if k == 0 {
		return 0
	}
	s := 0.0
	for i := 0; i < k; i++ {
		s += ds[i].y
	}
	return s / float64(k)
}

// splitMix is a tiny deterministic RNG.
type splitMix struct{ x uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{x: seed} }

func (s *splitMix) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
