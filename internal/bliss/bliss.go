// Package bliss reimplements the BLISS auto-tuner (Roy et al., PLDI 2021)
// that the paper compares against: a Bayesian-flavoured sample-efficient
// tuner that maintains a pool of diverse lightweight surrogate models
// (ridge regression, quadratic ridge, k-nearest-neighbours), picks the
// pool member with the best leave-one-out error on the samples gathered
// so far, and alternates model-guided exploitation with random
// exploration. It needs real executions — 20 sampling runs per region in
// the paper's setup — which is exactly the cost the PnP tuner's static
// approach avoids.
//
// BLISS plugs into the autotune engine as a Strategy: the engine owns
// the budget, the seeded RNG stream, and the evaluator (noisy dataset
// replay in the paper's comparison), so a tuning trace is reproducible
// from (strategy, seed, budget) alone.
//
// The session hot path is vectorized onto the tensor kernels: candidate
// features and their quadratic expansions are built once per session as
// row-major matrices, ridge fits solve the normal equations by Cholesky
// factorization, leave-one-out errors come from the closed-form hat-
// matrix identity e_i/(1-h_ii) instead of n refits, and the exploit scan
// over all candidates is a single matrix multiply — so a steady-state
// session runs in microseconds with near-zero allocations.
package bliss

import (
	"math"

	"pnptuner/internal/autotune"
	"pnptuner/internal/dataset"
	"pnptuner/internal/tensor"
)

// Paper-comparison defaults: 20 sampling executions per tuning task, and
// 15% relative measurement noise — the run-to-run variance of short
// OpenMP regions on real hardware (turbo, cache state, interference)
// that keeps best-of-20 sampling away from the true optimum.
const (
	Budget  = 20
	NoiseSD = 0.15
)

// NoiseMix is BLISS's replay-noise stream constant (autotune.Replay.Mix),
// kept distinct from other tuners' so their measurements decorrelate at
// equal seeds.
const NoiseMix uint64 = 0x9e3779b97f4a7c15

// Surrogate pool constants: the ridge regularizer and the kNN
// neighbourhood of the three pool members.
const (
	poolLambda = 0.1
	poolK      = 3
)

// Entry returns the engine entry the figure drivers run: the BLISS
// strategy under its paper budget, measured by noisy dataset replay.
func Entry(name string) autotune.Entry {
	return autotune.Entry{
		Name:   name,
		Budget: Budget,
		New:    New,
		Eval: func(rd *dataset.RegionData, t autotune.Task) autotune.Evaluator {
			return autotune.NewReplay(rd, t.Space, t.Obj, t.Seed, NoiseSD, NoiseMix)
		},
	}
}

// Strategy is one BLISS tuning session: bootstrap with stratified random
// samples, then alternate surrogate-guided exploitation with random
// exploration; the recommendation is the best measured point.
//
// All per-candidate state is matrix-shaped and built once at
// construction: featM holds the raw feature rows, phiLin/phiQuad their
// ridge design expansions. Every Propose after the bootstrap reuses the
// scratch buffers below, so steady-state rounds allocate nothing.
type Strategy struct {
	n, d   int
	budget int // internal pacing bound (the engine still enforces its own)
	boot   int

	rng      *autotune.RNG
	visited  []bool
	proposed int

	featM   *tensor.Matrix // n×d raw candidate features
	phiLin  *tensor.Matrix // n×(1+d) linear ridge design rows
	phiQuad *tensor.Matrix // n×Dq quadratic ridge design rows

	ys   []float64 // log-scale observations
	idxs []int

	// Model-selection and scan scratch (see exploit).
	rawBuf, linBuf, quadBuf    tensor.Buf // gathered observed rows
	aBuf, lBuf, rhsBuf         tensor.Buf // normal equations + Cholesky factor
	predsBuf, distBuf, scanBuf tensor.Buf
	wLin, wQuad, solve         []float64
	chosen                     []int
	colDist                    []float64
	yMat, wMat                 tensor.Matrix
}

// New constructs the BLISS strategy for one task (autotune.Entry.New).
func New(t autotune.Task) autotune.Strategy { return NewStrategy(t.Problem) }

// NewStrategy sizes a BLISS session from the problem: candidate features
// come from the objective, the bootstrap fraction from the budget, and
// every random decision from the problem seed.
func NewStrategy(p autotune.Problem) *Strategy {
	n := p.N()
	budget := p.Budget
	if budget < 4 {
		budget = 4
	}
	if budget > n {
		budget = n
	}
	boot := budget / 3
	if boot < 3 {
		boot = 3
	}
	s := &Strategy{
		n:       n,
		budget:  budget,
		boot:    boot,
		rng:     autotune.NewRNG(p.Seed),
		visited: make([]bool, n),
		ys:      make([]float64, 0, budget),
		idxs:    make([]int, 0, budget),
	}
	// Candidate features become matrices once: raw rows for kNN
	// distances, expanded rows for the two ridge designs. Per-candidate
	// predict calls never re-expand.
	for i := 0; i < n; i++ {
		f := p.Obj.Features(p.Space, i)
		if s.featM == nil {
			s.d = len(f)
			s.featM = tensor.New(n, s.d)
			s.phiLin = tensor.New(n, 1+s.d)
			s.phiQuad = tensor.New(n, expandDim(s.d, true))
		}
		copy(s.featM.Row(i), f)
		expandInto(f, s.phiLin.Row(i), false)
		expandInto(f, s.phiQuad.Row(i), true)
	}
	s.wLin = make([]float64, 1+s.d)
	s.wQuad = make([]float64, expandDim(s.d, true))
	s.solve = make([]float64, expandDim(s.d, true))
	s.chosen = make([]int, 0, poolK)
	s.colDist = make([]float64, 0, budget)
	return s
}

// Propose returns the next candidates to measure: the remaining
// bootstrap draws, then one surrogate-guided pick plus (budget allowing)
// one random exploration point per round.
func (s *Strategy) Propose(k int) []int {
	if k <= 0 {
		return nil
	}
	var out []int
	mark := func(i int) {
		if s.visited[i] {
			return
		}
		s.visited[i] = true
		out = append(out, i)
	}

	if s.proposed < s.boot {
		// Bootstrap: random draws until the boot count of distinct
		// points is met.
		for s.proposed+len(out) < s.boot && len(out) < k {
			mark(int(s.rng.Next() % uint64(s.n)))
		}
		s.proposed += len(out)
		return out
	}
	if s.proposed >= s.budget {
		return nil
	}

	// Exploit: the best-of-pool surrogate's best unvisited candidate.
	if bestI := s.exploit(); bestI >= 0 {
		mark(bestI)
	}
	// Explore: one random unvisited point, budget allowing. The random
	// draw gets a bounded number of tries; on a nearly-saturated space
	// (most candidates visited) it falls back to a linear scan for the
	// first unvisited candidate, so the session never silently
	// under-spends its budget.
	if s.proposed+len(out) < s.budget && len(out) < k {
		picked := false
		for tries := 0; tries < 32; tries++ {
			i := int(s.rng.Next() % uint64(s.n))
			if !s.visited[i] {
				mark(i)
				picked = true
				break
			}
		}
		if !picked {
			for i := 0; i < s.n; i++ {
				if !s.visited[i] {
					mark(i)
					break
				}
			}
		}
	}
	s.proposed += len(out)
	return out
}

// Observe records one measurement on log scale for the surrogate pool.
func (s *Strategy) Observe(config int, value float64) {
	s.ys = append(s.ys, math.Log(value))
	s.idxs = append(s.idxs, config)
}

// Best returns the best measured point — which, with noisy measurements,
// need not be the true optimum.
func (s *Strategy) Best() int {
	if len(s.idxs) == 0 {
		return 0
	}
	best, bestY := s.idxs[0], s.ys[0]
	for k, y := range s.ys {
		if y < bestY {
			bestY, best = y, s.idxs[k]
		}
	}
	return best
}

// exploit runs the vectorized model-selection + scan round: gather the
// observed rows, pick the pool member with the lowest leave-one-out
// error (linear ridge, quadratic ridge, kNN — ties to the earlier
// member, as the scalar pool loop broke them), and return its best
// unvisited candidate (index order, strict <), or -1 if none remain.
func (s *Strategy) exploit() int {
	m := len(s.ys)
	raw := s.rawBuf.Get(m, s.d)
	lin := s.linBuf.Get(m, s.phiLin.Cols)
	quad := s.quadBuf.Get(m, s.phiQuad.Cols)
	for i, c := range s.idxs {
		copy(raw.Row(i), s.featM.Row(c))
		copy(lin.Row(i), s.phiLin.Row(c))
		copy(quad.Row(i), s.phiQuad.Row(c))
	}
	s.yMat = tensor.Matrix{Rows: m, Cols: 1, Data: s.ys}

	kind, bestErr := -1, math.Inf(1)
	if err := s.ridgeLOO(lin, s.wLin); err < bestErr {
		kind, bestErr = 0, err
	}
	if err := s.ridgeLOO(quad, s.wQuad); err < bestErr {
		kind, bestErr = 1, err
	}
	if err := s.knnLOO(raw); err < bestErr {
		kind = 2
	}

	switch kind {
	case 0:
		return s.scanRidge(s.phiLin, s.wLin)
	case 1:
		return s.scanRidge(s.phiQuad, s.wQuad)
	default:
		return s.scanKNN(raw)
	}
}

// ridgeLOO fits (XᵀX + λI)w = Xᵀy by Cholesky and returns the exact
// leave-one-out mean squared error from the hat-matrix diagonal:
// the residual of refitting without sample i is e_i/(1-h_ii) with
// h_ii = x_iᵀ(XᵀX+λI)⁻¹x_i — one factorization instead of m refits.
func (s *Strategy) ridgeLOO(x *tensor.Matrix, w []float64) float64 {
	m, dim := x.Rows, x.Cols
	if m < poolK {
		return math.Inf(1)
	}
	a := s.aBuf.GetZeroed(dim, dim)
	tensor.MatMulTAAddInto(x, x, a)
	for i := 0; i < dim; i++ {
		a.Data[i*dim+i] += poolLambda
	}
	l := s.lBuf.Get(dim, dim)
	if !tensor.CholeskyInto(a, l) {
		return math.Inf(1)
	}
	rhs := s.rhsBuf.GetZeroed(dim, 1)
	tensor.MatMulTAAddInto(x, &s.yMat, rhs)
	tensor.SolveInto(l, rhs.Data, w[:dim])

	s.wMat = tensor.Matrix{Rows: dim, Cols: 1, Data: w[:dim]}
	preds := s.predsBuf.GetZeroed(m, 1)
	tensor.MatMulAddInto(x, &s.wMat, preds)

	total := 0.0
	solve := s.solve[:dim]
	for i := 0; i < m; i++ {
		xi := x.Row(i)
		tensor.SolveInto(l, xi, solve)
		h := 0.0
		for j, v := range xi {
			h += v * solve[j]
		}
		r := (preds.Data[i] - s.ys[i]) / (1 - h)
		total += r * r
	}
	return total / float64(m)
}

// knnLOO computes the pool kNN's leave-one-out error from one pairwise
// squared-distance matrix over the observed rows.
func (s *Strategy) knnLOO(raw *tensor.Matrix) float64 {
	m := raw.Rows
	if m < poolK {
		return math.Inf(1)
	}
	dist := s.distBuf.Get(m, m)
	tensor.PairwiseSqDistInto(raw, raw, dist)
	total := 0.0
	for i := 0; i < m; i++ {
		d := knnMean(dist.Row(i), s.ys, i, poolK, &s.chosen) - s.ys[i]
		total += d * d
	}
	return total / float64(m)
}

// scanRidge scores every candidate with one matrix multiply (the
// ScoreAll pattern: phi·w fans out across the worker pool for large
// operands) and returns the best unvisited candidate.
func (s *Strategy) scanRidge(phi *tensor.Matrix, w []float64) int {
	s.wMat = tensor.Matrix{Rows: phi.Cols, Cols: 1, Data: w[:phi.Cols]}
	scores := s.scanBuf.GetZeroed(s.n, 1)
	tensor.MatMulAddInto(phi, &s.wMat, scores)
	bestI, bestPred := -1, math.Inf(1)
	for i := 0; i < s.n; i++ {
		if s.visited[i] {
			continue
		}
		if p := scores.Data[i]; p < bestPred {
			bestPred, bestI = p, i
		}
	}
	return bestI
}

// scanKNN scores every unvisited candidate against the observed rows via
// one observed×candidates distance matrix and returns the best.
func (s *Strategy) scanKNN(raw *tensor.Matrix) int {
	m := raw.Rows
	dist := s.distBuf.Get(m, s.n)
	tensor.PairwiseSqDistInto(raw, s.featM, dist)
	if cap(s.colDist) < m {
		s.colDist = make([]float64, m)
	}
	col := s.colDist[:m]
	bestI, bestPred := -1, math.Inf(1)
	for i := 0; i < s.n; i++ {
		if s.visited[i] {
			continue
		}
		for j := 0; j < m; j++ {
			col[j] = dist.At(j, i)
		}
		if p := knnMean(col, s.ys, -1, poolK, &s.chosen); p < bestPred {
			bestPred, bestI = p, i
		}
	}
	return bestI
}

// --- Lightweight model pool ---------------------------------------------

// surrogate is the standalone pool-member interface; the session hot
// path above runs the same math through its matrix scratch instead.
type surrogate interface {
	fit(xs [][]float64, ys []float64)
	predict(x []float64) float64
	looError(xs [][]float64, ys []float64) float64
}

// bestModel fits the pool and returns the member with the lowest
// leave-one-out error (BLISS's model-selection step).
func bestModel(xs [][]float64, ys []float64) surrogate {
	pool := []surrogate{
		&ridge{lambda: poolLambda},
		&ridge{lambda: poolLambda, quadratic: true},
		&knn{k: poolK},
	}
	bestErr := math.Inf(1)
	var best surrogate
	for _, m := range pool {
		if err := m.looError(xs, ys); err < bestErr {
			bestErr, best = err, m
		}
	}
	best.fit(xs, ys)
	return best
}

// expandDim is the ridge design width for d raw features: bias + linear
// terms, plus the upper-triangle quadratic terms when quadratic.
func expandDim(d int, quadratic bool) int {
	dim := 1 + d
	if quadratic {
		dim += d * (d + 1) / 2
	}
	return dim
}

// expandInto writes the ridge design row of x into dst:
// [1, x..., x_i·x_j for i≤j].
func expandInto(x, dst []float64, quadratic bool) {
	dst[0] = 1
	copy(dst[1:], x)
	if !quadratic {
		return
	}
	p := 1 + len(x)
	for i := 0; i < len(x); i++ {
		for j := i; j < len(x); j++ {
			dst[p] = x[i] * x[j]
			p++
		}
	}
}

// ridge is linear (or quadratic-expanded) ridge regression solved by a
// Cholesky factorization of the normal equations.
type ridge struct {
	lambda    float64
	quadratic bool
	w         []float64
}

func (r *ridge) expand(x []float64) []float64 {
	out := make([]float64, expandDim(len(x), r.quadratic))
	expandInto(x, out, r.quadratic)
	return out
}

// design builds the expanded m×D design matrix of xs.
func (r *ridge) design(xs [][]float64) *tensor.Matrix {
	x := tensor.New(len(xs), expandDim(len(xs[0]), r.quadratic))
	for k, row := range xs {
		expandInto(row, x.Row(k), r.quadratic)
	}
	return x
}

func (r *ridge) fit(xs [][]float64, ys []float64) {
	if len(xs) == 0 {
		r.w = nil
		return
	}
	x := r.design(xs)
	r.w = make([]float64, x.Cols)
	ridgeSolve(x, ys, r.lambda, r.w)
}

// ridgeSolve solves (XᵀX + λI)w = Xᵀy by Cholesky, leaving w zero when
// the normal equations are not positive definite (which for λ > 0 can
// only mean severe ill-conditioning).
func ridgeSolve(x *tensor.Matrix, ys []float64, lambda float64, w []float64) bool {
	dim := x.Cols
	a := tensor.New(dim, dim)
	tensor.MatMulTAAddInto(x, x, a)
	for i := 0; i < dim; i++ {
		a.Data[i*dim+i] += lambda
	}
	l := tensor.New(dim, dim)
	if !tensor.CholeskyInto(a, l) {
		return false
	}
	rhs := tensor.New(dim, 1)
	ym := tensor.Matrix{Rows: len(ys), Cols: 1, Data: ys}
	tensor.MatMulTAAddInto(x, &ym, rhs)
	tensor.SolveInto(l, rhs.Data, w)
	return true
}

// looError is the closed-form ridge leave-one-out error: one fit, then
// per-sample residuals e_i/(1-h_ii) from the hat-matrix diagonal.
func (r *ridge) looError(xs [][]float64, ys []float64) float64 {
	if len(xs) < 3 {
		return math.Inf(1)
	}
	x := r.design(xs)
	dim := x.Cols
	a := tensor.New(dim, dim)
	tensor.MatMulTAAddInto(x, x, a)
	for i := 0; i < dim; i++ {
		a.Data[i*dim+i] += r.lambda
	}
	l := tensor.New(dim, dim)
	if !tensor.CholeskyInto(a, l) {
		return math.Inf(1)
	}
	rhs := tensor.New(dim, 1)
	ym := tensor.Matrix{Rows: len(ys), Cols: 1, Data: ys}
	tensor.MatMulTAAddInto(x, &ym, rhs)
	w := make([]float64, dim)
	tensor.SolveInto(l, rhs.Data, w)

	solve := make([]float64, dim)
	total := 0.0
	for i := range xs {
		xi := x.Row(i)
		pred := 0.0
		for j, v := range xi {
			pred += w[j] * v
		}
		tensor.SolveInto(l, xi, solve)
		h := 0.0
		for j, v := range xi {
			h += v * solve[j]
		}
		d := (pred - ys[i]) / (1 - h)
		total += d * d
	}
	return total / float64(len(xs))
}

func (r *ridge) predict(x []float64) float64 {
	e := r.expand(x)
	s := 0.0
	for i, v := range e {
		if i < len(r.w) {
			s += r.w[i] * v
		}
	}
	return s
}

// knn predicts the mean of the k nearest samples (ties broken toward
// earlier samples — a stable selection).
type knn struct {
	k  int
	xs [][]float64
	ys []float64
}

func (m *knn) fit(xs [][]float64, ys []float64) { m.xs, m.ys = xs, ys }

func (m *knn) predict(x []float64) float64 {
	if len(m.xs) == 0 {
		return 0
	}
	ds := make([]float64, len(m.xs))
	for i, xi := range m.xs {
		d := 0.0
		for j := range xi {
			dd := xi[j] - x[j]
			d += dd * dd
		}
		ds[i] = d
	}
	var chosen []int
	return knnMean(ds, m.ys, -1, m.k, &chosen)
}

// looError is the kNN leave-one-out error over the precomputable
// pairwise distances (each held-out sample predicts from the rest).
func (m *knn) looError(xs [][]float64, ys []float64) float64 {
	if len(xs) < 3 {
		return math.Inf(1)
	}
	x := tensor.New(len(xs), len(xs[0]))
	for i, row := range xs {
		copy(x.Row(i), row)
	}
	dist := tensor.New(len(xs), len(xs))
	tensor.PairwiseSqDistInto(x, x, dist)
	var chosen []int
	total := 0.0
	for i := range xs {
		d := knnMean(dist.Row(i), ys, i, m.k, &chosen) - ys[i]
		total += d * d
	}
	return total / float64(len(xs))
}

// knnMean returns the mean y of the k nearest samples by squared
// distance, skipping index skip (-1 for none). Selection is stable —
// repeated first-minimum scans, so equal distances resolve toward the
// earlier sample — and the sum accumulates in ascending-distance order.
func knnMean(ds, ys []float64, skip, k int, chosen *[]int) float64 {
	avail := len(ds)
	if skip >= 0 {
		avail--
	}
	if k > avail {
		k = avail
	}
	if k <= 0 {
		return 0
	}
	sel := (*chosen)[:0]
	s := 0.0
	for c := 0; c < k; c++ {
		bi, bd := -1, math.Inf(1)
	scan:
		for j := range ds {
			if j == skip {
				continue
			}
			for _, t := range sel {
				if t == j {
					continue scan
				}
			}
			if ds[j] < bd {
				bd, bi = ds[j], j
			}
		}
		sel = append(sel, bi)
		s += ys[bi]
	}
	*chosen = sel
	return s / float64(k)
}
