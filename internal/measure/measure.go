// Package measure closes the measure→learn loop: it executes tuning
// candidates on the simulated hardware instead of replaying the
// exhaustive dataset grid. A Runner owns one region's measurement
// session — an omp execution model driven under an hw RAPL power cap,
// energy read back through the wrapping MSR counter, PAPI counters
// collected once per session — and records every (config, runtime,
// energy) sample it takes. Bound per-objective evaluators satisfy
// autotune.Evaluator, so any search strategy runs unchanged on real
// executions; completed sessions feed their samples back into
// dataset region data (dataset.SampleLog / Dataset.WithSamples) for
// serving-side incremental retraining.
package measure

import (
	"context"
	"math"
	"sync"

	"pnptuner/internal/autotune"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/kernels"
	"pnptuner/internal/omp"
	"pnptuner/internal/papi"
	"pnptuner/internal/space"
)

// NoiseMix is the measurement loop's noise-stream constant: run-to-run
// noise of real executions draws from its own stream, independent of the
// replay evaluators' streams at the same seed.
const NoiseMix uint64 = 0xa0761d6478bd642f

// DefaultNoiseSD is the relative run-to-run spread of one real
// execution — smaller than the baselines' replay noise (0.15–0.20)
// because a dedicated measurement run pins frequency and isolates the
// region, but not zero: real hardware never repeats exactly.
const DefaultNoiseSD = 0.05

// Sample is one recorded execution.
type Sample struct {
	// CapIdx / CfgIdx locate the measured cell on the dataset grid.
	CapIdx int
	CfgIdx int
	// CapW is the programmed package power cap in watts.
	CapW float64
	// ConfigIndex is the candidate index in the objective's space that
	// was measured (per-cap for time, joint for edp/energy).
	ConfigIndex int
	// Config is the human-readable runtime configuration.
	Config string
	// Result is the observed execution (noise included).
	Result omp.Result
	// EnergyJ is the energy as read back from the RAPL counter — the
	// delta of two wrapping 32-bit readings, quantized to
	// hw.EnergyUnitJ, the way a PAPI RAPL component reports it.
	EnergyJ float64
	// Value is the objective value the engine observed for this run.
	Value float64
}

// Runner owns one region's measurement session: the RAPL interface it
// programs, the executor it runs on, and the samples it records. One
// Runner serves every head of a tune session — per-objective bound
// evaluators share its RAPL state, run counter, and sample log. Safe
// for concurrent use, though engine sessions measure sequentially.
type Runner struct {
	m      *hw.Machine
	region *kernels.Region
	s      *space.Space
	rapl   *hw.RAPL
	exec   *omp.Executor
	seed   uint64
	// NoiseSD is the relative run-to-run measurement noise
	// (DefaultNoiseSD unless overridden; 0 = perfectly repeatable runs).
	noiseSD float64

	mu       sync.Mutex
	ctx      context.Context
	runs     int
	samples  []Sample
	counters *papi.Counters
	onSample func(Sample)
}

// OnSample installs a tap called (outside the runner lock) after every
// recorded execution — telemetry counters, never measurement logic.
func (r *Runner) OnSample(fn func(Sample)) {
	r.mu.Lock()
	r.onSample = fn
	r.mu.Unlock()
}

// NewRunner builds a measurement session for one region on machine m.
// seed decorrelates the run-to-run noise of independent sessions;
// noiseSD < 0 selects DefaultNoiseSD.
func NewRunner(m *hw.Machine, region *kernels.Region, s *space.Space, seed uint64, noiseSD float64) *Runner {
	if noiseSD < 0 {
		noiseSD = DefaultNoiseSD
	}
	return &Runner{
		m:       m,
		region:  region,
		s:       s,
		rapl:    hw.NewRAPL(m),
		exec:    omp.NewExecutor(m),
		seed:    seed,
		noiseSD: noiseSD,
	}
}

// Bind attaches a request context to the session: once ctx is done,
// further measurements return +Inf without executing anything — the
// deadline budget propagates into the engine loop itself, so an expired
// request stops consuming machine time mid-session instead of finishing
// its measurement budget into a response nobody is waiting for. Samples
// already taken stay recorded (cancelled sessions' real runs are still
// real data for refresh retraining). A nil ctx unbinds.
func (r *Runner) Bind(ctx context.Context) {
	r.mu.Lock()
	r.ctx = ctx
	r.mu.Unlock()
}

// Evaluator binds the runner to one objective, satisfying
// autotune.Evaluator: Measure decodes the candidate into a (cap, config)
// point, programs the cap, executes, and records the sample. Install it
// as an autotune.Entry's Eval hook to run any strategy on real
// executions.
func (r *Runner) Evaluator(obj autotune.Objective) autotune.Evaluator {
	return boundEvaluator{r: r, obj: obj}
}

type boundEvaluator struct {
	r   *Runner
	obj autotune.Objective
}

func (b boundEvaluator) Measure(config int) float64 { return b.r.measure(b.obj, config) }

// measure executes one candidate under its power cap and returns the
// observed objective value (lower is better).
func (r *Runner) measure(obj autotune.Objective, config int) float64 {
	ci, ki := r.decode(obj, config)
	capW := r.s.Caps()[ci]
	cfg := r.s.Configs[ki]

	r.mu.Lock()
	if r.ctx != nil && r.ctx.Err() != nil {
		r.mu.Unlock()
		// +Inf is the engine convention for "unobservable": no strategy
		// will pick it as the incumbent, and the run never executed.
		return math.Inf(1)
	}

	r.rapl.SetPowerLimit(capW)
	res := r.exec.Run(&r.region.Info.Model, r.region.Seed, cfg, r.rapl.PowerLimit())
	r.runs++
	if r.noiseSD > 0 {
		// One lognormal factor per run scales time and energy together
		// (frequency jitter moves both), keyed by candidate AND run
		// ordinal so re-measuring a config draws fresh noise — yet the
		// whole stream is a pure function of (seed, run sequence).
		f := autotune.Noise(r.seed, NoiseMix, runKey(obj.NoiseKey(config), r.runs), r.noiseSD)
		res.TimeSec *= f
		res.PkgEnergyJ *= f
		res.DRAMEnergyJ *= f
	}

	// Read energy the way real tooling does: two snapshots of the
	// wrapping 32-bit counter around the run, delta in hardware units.
	before := r.rapl.EnergyStatus()
	r.rapl.AccumulateEnergy(res.EnergyJ())
	energyJ := hw.EnergyDelta(before, r.rapl.EnergyStatus())

	var value float64
	switch obj.(type) {
	case autotune.TimeUnderCap:
		value = res.TimeSec
	case autotune.Energy:
		value = energyJ
	default: // EDP and other joint objectives
		value = energyJ * res.TimeSec
	}

	sample := Sample{
		CapIdx:      ci,
		CfgIdx:      ki,
		CapW:        capW,
		ConfigIndex: config,
		Config:      cfg.String(),
		Result:      res,
		EnergyJ:     energyJ,
		Value:       value,
	}
	r.samples = append(r.samples, sample)
	fn := r.onSample
	r.mu.Unlock()
	if fn != nil {
		fn(sample)
	}
	return value
}

// decode maps a candidate index to its grid cell: per-cap candidates for
// TimeUnderCap, joint (cap × config) labels otherwise.
func (r *Runner) decode(obj autotune.Objective, config int) (ci, ki int) {
	if o, ok := obj.(autotune.TimeUnderCap); ok {
		return o.Cap, config
	}
	return r.s.SplitJoint(config)
}

// runKey folds the run ordinal into the candidate's noise key. Space
// keys fit comfortably in 32 bits (at most caps×configs ≈ 5·10² joint
// labels), so the ordinal occupies the high word.
func runKey(key uint64, run int) uint64 {
	return key | uint64(run)<<32
}

// Runs returns how many executions the session has taken.
func (r *Runner) Runs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}

// Samples returns a copy of every recorded sample, in execution order.
func (r *Runner) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, len(r.samples))
	copy(out, r.samples)
	return out
}

// Counters collects the region's PAPI counters, once per session.
func (r *Runner) Counters() papi.Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		c := papi.Collect(&r.region.Info.Model, r.m)
		r.counters = &c
	}
	return *r.counters
}

// DatasetSamples converts the session's samples into the dataset
// feedback form, tagged with the region they measured — what completed
// sessions append to a dataset.SampleLog.
func (r *Runner) DatasetSamples() []dataset.MeasuredSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]dataset.MeasuredSample, len(r.samples))
	for i, s := range r.samples {
		out[i] = dataset.MeasuredSample{
			RegionID: r.region.ID,
			CapIdx:   s.CapIdx,
			CfgIdx:   s.CfgIdx,
			Result:   s.Result,
		}
	}
	return out
}
