package measure_test

import (
	"fmt"

	"pnptuner/internal/autotune"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/measure"
)

// ExampleRunner measures a handful of candidates for one region under
// the time-at-cap objective: each Measure programs the RAPL cap,
// executes the region on the simulated hardware, reads energy back
// through the wrapping counter, and records the sample. Noise is off
// here so the output is the true execution model.
func ExampleRunner() {
	m, _ := hw.ByName("skylake")
	d := dataset.MustBuild(m)
	rd := d.Regions[0]

	r := measure.NewRunner(m, rd.Region, d.Space, 1, 0)
	eval := r.Evaluator(autotune.TimeUnderCap{Cap: 0})

	best, bestV := -1, 0.0
	for _, cand := range []int{0, 40, 80, d.Space.DefaultIndex()} {
		if v := eval.Measure(cand); best < 0 || v < bestV {
			best, bestV = cand, v
		}
	}

	fmt.Printf("runs: %d samples: %d\n", r.Runs(), len(r.Samples()))
	fmt.Printf("best: %s\n", d.Space.Configs[best])
	s := r.Samples()[0]
	fmt.Printf("first sample: cap %gW, config %s, energy > 0: %t\n",
		s.CapW, s.Config, s.EnergyJ > 0)
	// Output:
	// runs: 4 samples: 4
	// best: 16t/guided/64
	// first sample: cap 75W, config 1t/static/1, energy > 0: true
}
