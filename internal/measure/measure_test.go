package measure_test

import (
	"context"
	"reflect"
	"testing"

	"pnptuner/internal/autotune"
	"pnptuner/internal/bliss"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/measure"
)

func testRegion(t *testing.T) (*hw.Machine, *dataset.Dataset, *dataset.RegionData) {
	t.Helper()
	m, err := hw.ByName("skylake")
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, d, d.Regions[3]
}

// TestSameSeedBitIdentical pins the determinism contract: two sessions
// with the same seed produce bit-identical sample streams — same cells,
// same times, same counter-read energies, same observed values — through
// a full engine-driven search.
func TestSameSeedBitIdentical(t *testing.T) {
	m, d, rd := testRegion(t)
	session := func() ([]measure.Sample, int) {
		r := measure.NewRunner(m, rd.Region, d.Space, 42, measure.DefaultNoiseSD)
		task := autotune.Task{
			Problem:  autotune.Problem{Obj: autotune.EDP{}, Space: d.Space, Seed: 42},
			RegionID: rd.Region.ID,
		}
		e := bliss.Entry("BLISS")
		e.Budget = 6
		e.Eval = func(_ *dataset.RegionData, t autotune.Task) autotune.Evaluator {
			return r.Evaluator(t.Obj)
		}
		res := autotune.RunEntry(e, rd, task)
		return r.Samples(), res.Best
	}
	s1, best1 := session()
	s2, best2 := session()
	if len(s1) == 0 {
		t.Fatal("session recorded no samples")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed, different sample streams:\n%+v\nvs\n%+v", s1, s2)
	}
	if best1 != best2 {
		t.Fatalf("same seed, different best: %d vs %d", best1, best2)
	}

	// A different seed must draw different noise (values diverge even on
	// identical cells).
	r3 := measure.NewRunner(m, rd.Region, d.Space, 43, measure.DefaultNoiseSD)
	v42 := measure.NewRunner(m, rd.Region, d.Space, 42, measure.DefaultNoiseSD).
		Evaluator(autotune.EDP{}).Measure(0)
	v43 := r3.Evaluator(autotune.EDP{}).Measure(0)
	if v42 == v43 {
		t.Fatalf("seeds 42 and 43 observed identical noisy values (%g)", v42)
	}
}

// TestNoiseFreeMatchesGrid pins the execution path against the dataset
// sweep: with zero noise, a measured cell reproduces the grid result
// exactly, and the counter-read energy is the run's energy quantized to
// the RAPL energy unit.
func TestNoiseFreeMatchesGrid(t *testing.T) {
	m, d, rd := testRegion(t)
	r := measure.NewRunner(m, rd.Region, d.Space, 1, 0)
	for _, cand := range []int{0, 5, 250, d.Space.NumJoint() - 1} {
		r.Evaluator(autotune.EDP{}).Measure(cand)
	}
	for _, s := range r.Samples() {
		grid := rd.Results[s.CapIdx][s.CfgIdx]
		if s.Result != grid {
			t.Fatalf("cell (%d,%d): measured %+v, grid %+v", s.CapIdx, s.CfgIdx, s.Result, grid)
		}
		if diff := s.EnergyJ - grid.EnergyJ(); diff < -hw.EnergyUnitJ || diff > hw.EnergyUnitJ {
			t.Fatalf("cell (%d,%d): counter energy %g vs true %g (off by more than one unit)",
				s.CapIdx, s.CfgIdx, s.EnergyJ, grid.EnergyJ())
		}
	}
}

// TestPerHeadDecoding checks that a TimeUnderCap evaluator measures on
// its own cap row while a joint evaluator spans the whole grid, sharing
// one runner's sample log.
func TestPerHeadDecoding(t *testing.T) {
	m, d, rd := testRegion(t)
	r := measure.NewRunner(m, rd.Region, d.Space, 7, 0)
	r.Evaluator(autotune.TimeUnderCap{Cap: 2}).Measure(10)
	joint := d.Space.JointIndex(1, 10)
	r.Evaluator(autotune.EDP{}).Measure(joint)
	ss := r.Samples()
	if len(ss) != 2 || r.Runs() != 2 {
		t.Fatalf("want 2 shared samples, got %d (runs %d)", len(ss), r.Runs())
	}
	if ss[0].CapIdx != 2 || ss[0].CfgIdx != 10 {
		t.Fatalf("time head measured cell (%d,%d), want (2,10)", ss[0].CapIdx, ss[0].CfgIdx)
	}
	if ss[1].CapIdx != 1 || ss[1].CfgIdx != 10 {
		t.Fatalf("joint head measured cell (%d,%d), want (1,10)", ss[1].CapIdx, ss[1].CfgIdx)
	}
	if ss[0].CapW != d.Space.Caps()[2] {
		t.Fatalf("cap not programmed: %g", ss[0].CapW)
	}
}

// TestCancellationRetainsPartialSamples runs an engine session that is
// cancelled mid-search: the engine stops before its next measurement and
// the runner retains exactly the samples taken so far.
func TestCancellationRetainsPartialSamples(t *testing.T) {
	m, d, rd := testRegion(t)
	r := measure.NewRunner(m, rd.Region, d.Space, 9, measure.DefaultNoiseSD)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const stopAfter = 3
	eval := r.Evaluator(autotune.EDP{})
	wrapped := autotune.EvaluatorFunc(func(c int) float64 {
		v := eval.Measure(c)
		if r.Runs() >= stopAfter {
			cancel()
		}
		return v
	})
	p := autotune.Problem{Obj: autotune.EDP{}, Space: d.Space, Budget: 10, Seed: 9}
	autotune.RunContext(ctx, p, wrapped, autotune.NewShortlist([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}))

	if got := len(r.Samples()); got != stopAfter {
		t.Fatalf("cancelled after %d runs, runner holds %d samples", stopAfter, got)
	}
}

// TestDatasetFeedback closes the loop at the dataset layer: measured
// samples append to a SampleLog and WithSamples yields a derived dataset
// whose touched cells are the sample means, without mutating the shared
// build cache.
func TestDatasetFeedback(t *testing.T) {
	m, d, rd := testRegion(t)
	r := measure.NewRunner(m, rd.Region, d.Space, 11, measure.DefaultNoiseSD)
	eval := r.Evaluator(autotune.EDP{})
	// Re-measure one cell twice (fresh noise per run) plus one other cell.
	eval.Measure(17)
	eval.Measure(17)
	eval.Measure(400)

	var log dataset.SampleLog
	log.Append(r.DatasetSamples()...)
	if log.Total() != 3 || log.SinceTrain() != 3 {
		t.Fatalf("log counts: total %d since %d", log.Total(), log.SinceTrain())
	}
	if got := log.PerRegion()[rd.Region.ID]; got != 3 {
		t.Fatalf("per-region count %d, want 3", got)
	}

	ss := r.Samples()
	if ss[0].Result == ss[1].Result {
		t.Fatal("re-measured cell drew identical noise")
	}
	derived := d.WithSamples(log.Snapshot())
	if derived == d {
		t.Fatal("WithSamples returned the shared dataset for non-empty samples")
	}
	drd := derived.Region(rd.Region.ID)
	if drd == rd {
		t.Fatal("touched region not copied")
	}
	wantT := (ss[0].Result.TimeSec + ss[1].Result.TimeSec) / 2
	if got := drd.Results[ss[0].CapIdx][ss[0].CfgIdx].TimeSec; got != wantT {
		t.Fatalf("derived cell time %g, want mean %g", got, wantT)
	}
	// The shared dataset is untouched.
	if rd.Results[ss[0].CapIdx][ss[0].CfgIdx].TimeSec == wantT {
		t.Fatal("shared build cache was mutated")
	}
	// Untouched regions are shared, and derived labels stay coherent.
	for i, reg := range derived.Regions {
		if reg.Region.ID != rd.Region.ID && reg != d.Regions[i] {
			t.Fatalf("untouched region %s was copied", reg.Region.ID)
		}
	}
	if err := derived.SanityCheck(); err != nil {
		t.Fatalf("derived dataset: %v", err)
	}

	if consumed := log.MarkTrained(); consumed != 3 {
		t.Fatalf("MarkTrained consumed %d, want 3", consumed)
	}
	if log.SinceTrain() != 0 || log.Total() != 3 {
		t.Fatalf("after MarkTrained: since %d total %d", log.SinceTrain(), log.Total())
	}
}
