// Package chaos is a fault-injecting reverse proxy for resilience
// testing: it sits between the gate and a replica (or between a load
// generator and the gate) and injects the failure modes distributed
// serving actually meets — added latency, abruptly killed connections,
// black-holed requests, and constrained bandwidth — deterministically,
// from a seed, so a chaos run is reproducible.
//
// Injected errors are connection aborts, not synthesized HTTP error
// bodies, on purpose: the client must see a transport-level failure
// (the kind that feeds circuit breakers and fails over to the next
// replica), not a well-formed response the registry never sent.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is one route's injected failure mix. The zero value injects
// nothing.
type Faults struct {
	// Latency is added to every request before it is forwarded; Jitter
	// adds a uniform [0, Jitter) on top.
	Latency time.Duration
	Jitter  time.Duration
	// ErrorRate is the probability ([0,1]) a request's connection is
	// abruptly closed instead of forwarded — a transport failure, never
	// a well-formed error body.
	ErrorRate float64
	// Partition black-holes every request: held until the client gives
	// up (its context/timeout), then the connection is closed. This is
	// what a network partition looks like from the caller's side —
	// silence, not refusal.
	Partition bool
	// BandwidthBps throttles the response body to roughly this many
	// bytes per second (0 = unthrottled).
	BandwidthBps int64
}

// String renders the faults in ParseFaults syntax.
func (f Faults) String() string {
	var parts []string
	if f.Latency > 0 {
		parts = append(parts, "latency="+f.Latency.String())
	}
	if f.Jitter > 0 {
		parts = append(parts, "jitter="+f.Jitter.String())
	}
	if f.ErrorRate > 0 {
		parts = append(parts, "errors="+strconv.FormatFloat(f.ErrorRate, 'g', -1, 64))
	}
	if f.Partition {
		parts = append(parts, "partition")
	}
	if f.BandwidthBps > 0 {
		parts = append(parts, "bw="+strconv.FormatInt(f.BandwidthBps, 10))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseFaults parses the comma-separated fault spec shared by the CLI
// flags (pnpchaos -faults, pnpload -chaos):
//
//	latency=20ms,jitter=5ms,errors=0.05,partition,bw=65536
//
// Unknown keys are errors — a typo that silently injects nothing would
// make a chaos suite vacuously green.
func ParseFaults(spec string) (Faults, error) {
	var f Faults
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return f, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		var err error
		switch key {
		case "latency":
			f.Latency, err = time.ParseDuration(val)
		case "jitter":
			f.Jitter, err = time.ParseDuration(val)
		case "errors":
			f.ErrorRate, err = strconv.ParseFloat(val, 64)
			if err == nil && (f.ErrorRate < 0 || f.ErrorRate > 1) {
				err = fmt.Errorf("rate %v outside [0,1]", f.ErrorRate)
			}
		case "partition":
			if hasVal {
				f.Partition, err = strconv.ParseBool(val)
			} else {
				f.Partition = true
			}
		case "bw":
			f.BandwidthBps, err = strconv.ParseInt(val, 10, 64)
		default:
			return Faults{}, fmt.Errorf("chaos: unknown fault %q (valid: latency, jitter, errors, partition, bw)", key)
		}
		if err != nil {
			return Faults{}, fmt.Errorf("chaos: fault %q: %v", part, err)
		}
	}
	return f, nil
}

// Stats counts what the proxy has injected — the ground truth a chaos
// suite checks its observed failure rates against.
type Stats struct {
	Forwarded  int64 `json:"forwarded"`
	Delayed    int64 `json:"delayed"`
	Errors     int64 `json:"errors"`
	Partitions int64 `json:"partitions"`
}

// Proxy is the fault-injecting reverse proxy: default faults for every
// request, per-route-prefix overrides, deterministic randomness.
type Proxy struct {
	rp *httputil.ReverseProxy

	mu     sync.Mutex
	rng    *rand.Rand
	faults Faults
	routes map[string]Faults // path prefix → override

	forwarded  atomic.Int64
	delayed    atomic.Int64
	errors     atomic.Int64
	partitions atomic.Int64
}

// New builds a proxy forwarding to target (a base URL), injecting
// nothing until SetFaults/SetRoute. seed fixes the randomness stream:
// the same seed over the same request sequence injects the same faults.
func New(target string, seed int64) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("chaos: target %q: %v", target, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("chaos: target %q is not an absolute URL", target)
	}
	p := &Proxy{
		rp:     httputil.NewSingleHostReverseProxy(u),
		rng:    rand.New(rand.NewSource(seed)),
		routes: map[string]Faults{},
	}
	// A dead target must look like a dead target: abort the connection
	// (transport failure) instead of the default synthesized 502 body,
	// which a client would misread as a live-but-failing server.
	p.rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, _ error) {
		abort(w)
	}
	return p, nil
}

// SetFaults replaces the default fault mix (applied where no route
// override matches).
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// SetRoute overrides the faults for requests whose path starts with
// prefix. The longest matching prefix wins.
func (p *Proxy) SetRoute(prefix string, f Faults) {
	p.mu.Lock()
	p.routes[prefix] = f
	p.mu.Unlock()
}

// Stats snapshots the injection counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Forwarded:  p.forwarded.Load(),
		Delayed:    p.delayed.Load(),
		Errors:     p.errors.Load(),
		Partitions: p.partitions.Load(),
	}
}

// faultsFor picks the request's fault mix and rolls its error dice
// under one lock, keeping the random stream deterministic under
// concurrency (stream order still depends on request arrival order;
// determinism is per-sequence, which is what reproducibility needs).
func (p *Proxy) faultsFor(r *http.Request) (f Faults, inject bool, jitter time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f = p.faults
	best := -1
	for prefix, rf := range p.routes {
		if len(prefix) > best && strings.HasPrefix(r.URL.Path, prefix) {
			f, best = rf, len(prefix)
		}
	}
	if f.ErrorRate > 0 && p.rng.Float64() < f.ErrorRate {
		inject = true
	}
	if f.Jitter > 0 {
		jitter = time.Duration(p.rng.Int63n(int64(f.Jitter)))
	}
	return f, inject, jitter
}

// ServeHTTP injects the route's faults, then forwards.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f, inject, jitter := p.faultsFor(r)

	if f.Partition {
		// Black hole: hold the request until the caller stops waiting.
		// The close afterwards is what the caller's transport reports —
		// never a response. The body must be drained first: with unread
		// body bytes the server never starts its background connection
		// read, so a client disconnect would not cancel r.Context() and
		// this goroutine would hang past the caller's timeout.
		p.partitions.Add(1)
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		abort(w)
		return
	}
	if delay := f.Latency + jitter; delay > 0 {
		p.delayed.Add(1)
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			abort(w)
			return
		}
	}
	if inject {
		p.errors.Add(1)
		abort(w)
		return
	}
	p.forwarded.Add(1)
	if f.BandwidthBps > 0 {
		w = &throttledWriter{ResponseWriter: w, bps: f.BandwidthBps}
	}
	p.rp.ServeHTTP(w, r)
}

// abort kills the client connection without writing a response: the
// caller sees a transport failure (EOF / connection reset), the same
// signal a crashed server produces.
func abort(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	// No hijack support (e.g. HTTP/2): abort the handler, which tears
	// down the stream without a response.
	panic(http.ErrAbortHandler)
}

// throttledWriter paces response bytes to roughly bps, sleeping after
// each chunk proportionally to its size.
type throttledWriter struct {
	http.ResponseWriter
	bps int64
}

func (t *throttledWriter) Write(b []byte) (int, error) {
	const chunk = 4 << 10
	total := 0
	for len(b) > 0 {
		n := len(b)
		if n > chunk {
			n = chunk
		}
		wrote, err := t.ResponseWriter.Write(b[:n])
		total += wrote
		if err != nil {
			return total, err
		}
		if f, ok := t.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		time.Sleep(time.Duration(float64(wrote) / float64(t.bps) * float64(time.Second)))
		b = b[n:]
	}
	return total, nil
}
