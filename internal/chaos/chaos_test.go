package chaos

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func backend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Backend", "yes")
		io.WriteString(w, `{"ok":true}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func startProxy(t *testing.T, target string, seed int64) (*Proxy, *httptest.Server) {
	t.Helper()
	p, err := New(target, seed)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func TestParseFaults(t *testing.T) {
	f, err := ParseFaults("latency=20ms,jitter=5ms,errors=0.05,partition,bw=65536")
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	want := Faults{Latency: 20 * time.Millisecond, Jitter: 5 * time.Millisecond,
		ErrorRate: 0.05, Partition: true, BandwidthBps: 65536}
	if f != want {
		t.Fatalf("got %+v want %+v", f, want)
	}
	if _, err := ParseFaults("latncy=20ms"); err == nil {
		t.Fatal("typo'd key parsed without error")
	}
	if _, err := ParseFaults("errors=1.5"); err == nil {
		t.Fatal("out-of-range error rate parsed without error")
	}
	if f, err := ParseFaults(""); err != nil || f != (Faults{}) {
		t.Fatalf("empty spec: %+v, %v", f, err)
	}
	// String → ParseFaults round-trips.
	back, err := ParseFaults(want.String())
	if err != nil || back != want {
		t.Fatalf("round trip: %+v, %v", back, err)
	}
}

func TestProxyForwardsCleanly(t *testing.T) {
	be := backend(t)
	_, srv := startProxy(t, be.URL, 1)
	resp, err := http.Get(srv.URL + "/v1/predict")
	if err != nil {
		t.Fatalf("GET through clean proxy: %v", err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("X-Backend") != "yes" {
		t.Fatal("response did not come from the backend")
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("unexpected body %q", body)
	}
}

func TestProxyInjectsLatency(t *testing.T) {
	be := backend(t)
	p, srv := startProxy(t, be.URL, 1)
	p.SetFaults(Faults{Latency: 50 * time.Millisecond})
	start := time.Now()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("latency not injected: %v", elapsed)
	}
	if p.Stats().Delayed != 1 {
		t.Fatalf("delayed counter = %d, want 1", p.Stats().Delayed)
	}
}

func TestProxyInjectsTransportErrors(t *testing.T) {
	be := backend(t)
	p, srv := startProxy(t, be.URL, 42)
	p.SetFaults(Faults{ErrorRate: 1})
	resp, err := http.Get(srv.URL + "/")
	if err == nil {
		resp.Body.Close()
		t.Fatal("expected a transport error, got a response")
	}
	// The failure must be transport-level (EOF/reset), never an HTTP
	// status — that is what makes injected errors fail over cleanly.
	if p.Stats().Errors != 1 {
		t.Fatalf("errors counter = %d, want 1", p.Stats().Errors)
	}
}

func TestProxyErrorRateIsDeterministic(t *testing.T) {
	outcomes := func(seed int64) string {
		be := backend(t)
		p, srv := startProxy(t, be.URL, seed)
		p.SetFaults(Faults{ErrorRate: 0.5})
		var b strings.Builder
		c := srv.Client()
		for i := 0; i < 32; i++ {
			resp, err := c.Get(srv.URL + "/")
			if err != nil {
				b.WriteByte('x')
				continue
			}
			resp.Body.Close()
			b.WriteByte('.')
		}
		return b.String()
	}
	a, b := outcomes(7), outcomes(7)
	if a != b {
		t.Fatalf("same seed, different injection sequence:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("rate 0.5 over 32 requests should mix outcomes: %s", a)
	}
}

func TestProxyPartitionBlackHoles(t *testing.T) {
	be := backend(t)
	p, srv := startProxy(t, be.URL, 1)
	p.SetFaults(Faults{Partition: true})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/", nil)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("partitioned request got a response")
	}
	// The caller's own timeout ends the wait — the proxy never answers.
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Fatalf("partition answered after only %v; should hold until the client gives up", elapsed)
	}
	if p.Stats().Partitions != 1 {
		t.Fatalf("partitions counter = %d, want 1", p.Stats().Partitions)
	}
}

func TestProxyRouteOverride(t *testing.T) {
	be := backend(t)
	p, srv := startProxy(t, be.URL, 1)
	p.SetFaults(Faults{})                           // default: clean
	p.SetRoute("/v1/predict", Faults{ErrorRate: 1}) // predicts always die

	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("clean route failed: %v", err)
	}
	resp.Body.Close()

	if resp, err := http.Get(srv.URL + "/v1/predict"); err == nil {
		resp.Body.Close()
		t.Fatal("overridden route served despite ErrorRate 1")
	}
}

func TestProxyBandwidthThrottle(t *testing.T) {
	payload := strings.Repeat("a", 32<<10)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer slow.Close()
	p, srv := startProxy(t, slow.URL, 1)
	p.SetFaults(Faults{BandwidthBps: 256 << 10}) // 32KiB at 256KiB/s ≈ 125ms
	start := time.Now()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != len(payload) {
		t.Fatalf("body truncated: %d of %d bytes", len(body), len(payload))
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("32KiB at 256KiB/s took only %v; throttle not applied", elapsed)
	}
}
