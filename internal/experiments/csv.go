package experiments

import (
	"fmt"
	"io"
)

// WriteCSV emits the power figure as long-format CSV (machine, cap, app,
// tuner, normalized speedup), ready for plotting tools.
func (pf *PowerFigure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "machine,cap_w,app,tuner,norm_speedup"); err != nil {
		return err
	}
	for ci, capW := range pf.Caps {
		for ai, app := range pf.Apps {
			for _, tn := range Tuners {
				if _, err := fmt.Fprintf(w, "%s,%g,%s,%s,%.6f\n",
					pf.Machine, capW, app, tn, pf.Norm[tn][ci][ai]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteCSV emits the unseen-cap figure as long-format CSV.
func (uf *UnseenCapFigure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "machine,target_cap_w,app,series,norm_speedup"); err != nil {
		return err
	}
	for ti, capW := range uf.TargetCaps {
		for ai, app := range uf.Apps {
			if _, err := fmt.Fprintf(w, "%s,%g,%s,Default,%.6f\n",
				uf.Machine, capW, app, uf.DefaultNorm[ti][ai]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s,%g,%s,PnP,%.6f\n",
				uf.Machine, capW, app, uf.PnPNorm[ti][ai]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV emits the EDP figure as long-format CSV.
func (ef *EDPFigure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "machine,app,tuner,norm_edp_improvement"); err != nil {
		return err
	}
	for ai, app := range ef.Apps {
		for _, tn := range Tuners {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%.6f\n",
				ef.Machine, app, tn, ef.NormEDP[tn][ai]); err != nil {
				return err
			}
		}
	}
	return nil
}
