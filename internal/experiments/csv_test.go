package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestPowerFigureCSV(t *testing.T) {
	pf := &PowerFigure{
		Machine: "haswell",
		Caps:    []float64{40, 85},
		Apps:    []string{"gemm", "lu"},
		Norm:    map[string][][]float64{},
	}
	for _, tn := range Tuners {
		pf.Norm[tn] = [][]float64{{0.5, 0.6}, {0.7, 0.8}}
	}
	var b bytes.Buffer
	if err := pf.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	want := 1 + len(pf.Caps)*len(pf.Apps)*len(Tuners)
	if len(lines) != want {
		t.Fatalf("csv lines = %d, want %d", len(lines), want)
	}
	if lines[0] != "machine,cap_w,app,tuner,norm_speedup" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(b.String(), "haswell,40,gemm,Default,0.5") {
		t.Error("missing expected row")
	}
}

func TestUnseenCapFigureCSV(t *testing.T) {
	uf := &UnseenCapFigure{
		Machine:     "skylake",
		TargetCaps:  []float64{150, 75},
		Apps:        []string{"mvt"},
		DefaultNorm: [][]float64{{0.4}, {0.3}},
		PnPNorm:     [][]float64{{0.9}, {0.95}},
	}
	var b bytes.Buffer
	if err := uf.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"skylake,150,mvt,Default,0.4", "skylake,75,mvt,PnP,0.95"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q", want)
		}
	}
}

func TestEDPFigureCSV(t *testing.T) {
	ef := &EDPFigure{
		Machine: "haswell",
		Apps:    []string{"atax"},
		NormEDP: map[string][]float64{},
	}
	for _, tn := range Tuners {
		ef.NormEDP[tn] = []float64{0.77}
	}
	var b bytes.Buffer
	if err := ef.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "haswell,atax,PnP(Static),0.77") {
		t.Error("csv missing row")
	}
}
