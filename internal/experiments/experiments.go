// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated testbeds: the Table I search space,
// the Table II hyperparameters, the §I motivating example, the
// power-constrained tuning figures (2, 3), the unseen-power-constraint
// figures (4, 5), the EDP figures (6, 7), and the aggregate statistics
// quoted in the text. Each driver prints the same rows/series the paper
// reports and returns the numbers for programmatic checks.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"pnptuner/internal/autotune"
	"pnptuner/internal/bliss"
	"pnptuner/internal/core"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/kernels"
	"pnptuner/internal/metrics"
	"pnptuner/internal/opentuner"
	"pnptuner/internal/space"
	"pnptuner/internal/tensor"
)

// parallelFolds runs fn(i) for i in [0, n) across up to runtime.NumCPU()
// goroutines — one per LOOCV fold. Each fold trains and evaluates an
// independent model, so the only coordination is the join; callers merge
// per-fold outputs sequentially afterwards, keeping results deterministic
// and identical to the sequential order. Folds share the corpus's
// compile-once graph artifacts (kernels.Region.CompiledGraph), so no fold
// pays graph-compilation cost — each model only merges precompiled plans. While folds run concurrently the
// tensor kernel pool is divided among them, so total goroutine pressure
// stays near NumCPU instead of folds×NumCPU (kernel chunking is
// shape-determined, so the cap never changes numerical results).
func parallelFolds(n int, fn func(i int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	restore := tensor.SetWorkerCap((runtime.NumCPU() + workers - 1) / workers)
	defer restore()
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Options control experiment scale.
type Options struct {
	// Model overrides the default Table II model configuration.
	Model core.ModelConfig
	// MaxFolds truncates the LOOCV loop for quick runs (0 = all 30).
	MaxFolds int
	// Threshold is the normalized-speedup bar below which the dynamic
	// (counter-augmented) model re-predicts (§IV-B uses 0.95).
	Threshold float64
}

// DefaultOptions returns full-scale settings.
func DefaultOptions() Options {
	return Options{Model: core.DefaultModelConfig(), Threshold: 0.95}
}

// QuickOptions returns reduced settings for tests and smoke runs.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Model.Epochs = 8
	o.MaxFolds = 4
	return o
}

// Tuner labels, in the figures' legend order.
const (
	TunerDefault   = "Default"
	TunerPnPStatic = "PnP(Static)"
	TunerPnPDyn    = "PnP(Dynamic)"
	TunerPnPHybrid = "PnP(Hybrid)"
	TunerBLISS     = "BLISS"
	TunerOpenTuner = "OpenTuner"
)

// Tuners lists the legend order. PnP(Hybrid) is this reproduction's
// extension scenario: the GNN shortlists top-k configurations and a
// k-execution budget validates them — between the paper's zero-execution
// static scenario and the baselines' 20-execution searches.
var Tuners = []string{TunerDefault, TunerPnPStatic, TunerPnPDyn, TunerPnPHybrid, TunerBLISS, TunerOpenTuner}

// HybridK re-exports the engine's hybrid shortlist size — the k the
// figures' PnP(Hybrid) column spends per tuning task.
const HybridK = autotune.HybridK

// timeEntries assembles the scenario-1 strategy columns for one fold:
// zero-execution entries from the default config and the static/dynamic
// prediction maps, the hybrid shortlist entry, and the engine-driven
// search baselines.
func timeEntries(d *dataset.Dataset, static, dynamic map[string][]int, topk map[string][][]int) []autotune.Entry {
	capOf := func(t autotune.Task) int { return t.Obj.(autotune.TimeUnderCap).Cap }
	return []autotune.Entry{
		autotune.FixedEntry(TunerDefault, func(t autotune.Task) int { return d.Space.DefaultIndex() }),
		autotune.FixedEntry(TunerPnPStatic, func(t autotune.Task) int { return static[t.RegionID][capOf(t)] }),
		autotune.FixedEntry(TunerPnPDyn, func(t autotune.Task) int { return dynamic[t.RegionID][capOf(t)] }),
		autotune.HybridEntry(TunerPnPHybrid, func(t autotune.Task) []int { return topk[t.RegionID][capOf(t)] }),
		bliss.Entry(TunerBLISS),
		opentuner.Entry(TunerOpenTuner),
	}
}

// --- Table I and Table II ------------------------------------------------

// Table1 prints the search space (Table I).
func Table1(w io.Writer) {
	fmt.Fprintln(w, "TABLE I: Search space for performance and power tuning")
	for _, m := range hw.Machines() {
		s := space.New(m)
		fmt.Fprintf(w, "  %-8s power limits %v W, threads %v, schedules %v, chunks %v\n",
			m.Name, m.PowerLimits, m.ThreadCounts, space.Schedules, space.Chunks)
		fmt.Fprintf(w, "  %-8s per-cap configs %d (126 grid + default), joint space %d\n",
			"", s.NumConfigs(), s.NumJoint())
	}
}

// Table2 prints the model hyperparameters (Table II).
func Table2(w io.Writer) {
	cfg := core.DefaultModelConfig()
	fmt.Fprintln(w, "TABLE II: Deep learning model hyperparameters")
	fmt.Fprintf(w, "  Layers          RGCN (%d), FCNN (%d)\n", cfg.NumRGCN, cfg.NumDense)
	fmt.Fprintf(w, "  Activations     LeakyReLU (slope %g), ReLU\n", cfg.LeakySlope)
	fmt.Fprintf(w, "  Optimizer       AdamW (amsgrad=%v) / Adam\n", cfg.AMSGrad)
	fmt.Fprintf(w, "  Learning rate   %g\n", cfg.LR)
	fmt.Fprintf(w, "  Batch size      %d\n", cfg.BatchSize)
	fmt.Fprintf(w, "  Loss            Cross entropy\n")
	fmt.Fprintf(w, "  Embedding/width %d / %d\n", cfg.EmbedDim, cfg.Hidden)
}

// --- §I motivating example ------------------------------------------------

// MotivationResult holds the §I LULESH numbers.
type MotivationResult struct {
	// SpeedupAtCap is the oracle speedup over the default config at each
	// Haswell cap for ApplyAccelerationBoundaryConditionsForNodes.
	SpeedupAtCap []float64
	// TunerNorm[tuner][capIdx] is the fraction of the oracle speedup each
	// model-free engine entry (Default, BLISS, OpenTuner) reaches on the
	// motivating kernel.
	TunerNorm map[string][]float64
	// BestEnergyGreenup and BestEnergySpeedup compare the most
	// energy-efficient point against default at TDP.
	BestEnergyGreenup float64
	BestEnergySpeedup float64
	BestEnergyCapW    float64
	// EDP-optimal point vs default at TDP.
	EDPSpeedup float64
	EDPGreenup float64
	EDPCapW    float64
}

// Motivation reproduces the §I motivating example on the Haswell system.
func Motivation(w io.Writer) (*MotivationResult, error) {
	d, err := dataset.Build(hw.Haswell())
	if err != nil {
		return nil, err
	}
	var rd *dataset.RegionData
	for _, r := range d.Regions {
		if r.Region.App == "LULESH" && r.Region.Info.Func == "ApplyAccelerationBoundaryConditionsForNodes" {
			rd = r
			break
		}
	}
	if rd == nil {
		return nil, fmt.Errorf("experiments: LULESH boundary kernel missing")
	}
	res := &MotivationResult{TunerNorm: map[string][]float64{}}
	fmt.Fprintln(w, "Motivating example (§I): LULESH ApplyAccelerationBoundaryConditionsForNodes, Haswell")
	for ci, capW := range d.Space.Caps() {
		def := rd.DefaultResult(ci, d.Space).TimeSec
		sp := metrics.Speedup(def, rd.BestTime(ci))
		res.SpeedupAtCap = append(res.SpeedupAtCap, sp)
		fmt.Fprintf(w, "  exhaustive best speedup vs default at %3.0fW: %.2fx\n", capW, sp)
	}
	// What the model-free strategies recover of those gains: one engine
	// session per (entry, cap) on the motivating kernel.
	entries := []autotune.Entry{
		autotune.FixedEntry(TunerDefault, func(t autotune.Task) int { return d.Space.DefaultIndex() }),
		bliss.Entry(TunerBLISS),
		opentuner.Entry(TunerOpenTuner),
	}
	for _, en := range entries {
		norms := make([]float64, len(d.Space.Caps()))
		for ci := range d.Space.Caps() {
			task := autotune.Task{
				Problem: autotune.Problem{
					Obj:   autotune.TimeUnderCap{Cap: ci},
					Space: d.Space,
					Seed:  rd.Region.Seed,
				},
				RegionID: rd.Region.ID,
			}
			pick := autotune.RunEntry(en, rd, task).Best
			def := rd.DefaultResult(ci, d.Space).TimeSec
			sp := metrics.Speedup(def, rd.Results[ci][pick].TimeSec)
			norms[ci] = metrics.Normalize(sp, metrics.Speedup(def, rd.BestTime(ci)))
		}
		res.TunerNorm[en.Name] = norms
		fmt.Fprintf(w, "  %-10s fraction of oracle per cap:", en.Name)
		for _, v := range norms {
			fmt.Fprintf(w, " %5.2f", v)
		}
		fmt.Fprintln(w)
	}
	// Most energy-efficient point across the whole joint space.
	tdpIdx := len(d.Space.Caps()) - 1
	defTDP := rd.DefaultResult(tdpIdx, d.Space)
	bestE := -1.0
	var bestECap int
	var bestET float64
	for ci := range d.Space.Caps() {
		for ki := range d.Space.Configs {
			r := rd.Results[ci][ki]
			if bestE < 0 || r.EnergyJ() < bestE {
				bestE = r.EnergyJ()
				bestECap = ci
				bestET = r.TimeSec
			}
		}
	}
	res.BestEnergyGreenup = metrics.Greenup(defTDP.EnergyJ(), bestE)
	res.BestEnergySpeedup = metrics.Speedup(defTDP.TimeSec, bestET)
	res.BestEnergyCapW = d.Space.Caps()[bestECap]
	fmt.Fprintf(w, "  most energy-efficient point: %gW cap, greenup %.2fx, speedup %.2fx vs default@TDP\n",
		res.BestEnergyCapW, res.BestEnergyGreenup, res.BestEnergySpeedup)

	ci, ki := d.Space.SplitJoint(rd.BestEDPJoint)
	edpBest := rd.Results[ci][ki]
	res.EDPSpeedup = metrics.Speedup(defTDP.TimeSec, edpBest.TimeSec)
	res.EDPGreenup = metrics.Greenup(defTDP.EnergyJ(), edpBest.EnergyJ())
	res.EDPCapW = d.Space.Caps()[ci]
	fmt.Fprintf(w, "  EDP-optimal point: %gW cap, speedup %.2fx, greenup %.2fx vs default@TDP\n",
		res.EDPCapW, res.EDPSpeedup, res.EDPGreenup)
	return res, nil
}

// --- Figures 2 and 3: power-constrained tuning ---------------------------

// PowerFigure is the data behind Fig. 2 (Haswell) or Fig. 3 (Skylake).
type PowerFigure struct {
	Machine string
	Caps    []float64
	Apps    []string
	// Norm[tuner][capIdx][appIdx]: per-app geomean normalized speedup
	// (speedup over default divided by oracle speedup, as in the figures).
	Norm map[string][][]float64
	// RegionNorm[tuner]: per-(region,cap) normalized values (flat), for
	// the §IV-B aggregate statistics.
	RegionNorm map[string][]float64
	// Speedup[tuner][capIdx]: geomean speedup over default across regions.
	Speedup map[string][]float64
	// TransferSpeedup is the full/frozen training-time ratio (Fig. 3 only).
	TransferSpeedup float64
}

// Frac95 returns the fraction of (region, cap) cases within 5% of oracle.
func (pf *PowerFigure) Frac95(tuner string) float64 {
	return metrics.FractionAtLeast(pf.RegionNorm[tuner], 0.95)
}

// BeatsFraction returns how often tuner a strictly beats tuner b.
func (pf *PowerFigure) BeatsFraction(a, b string) float64 {
	return metrics.FractionGreater(pf.RegionNorm[a], pf.RegionNorm[b])
}

// Fig2 reproduces the Haswell power-constrained tuning figure.
func Fig2(w io.Writer, opts Options) (*PowerFigure, error) {
	return powerFigure(w, hw.Haswell(), nil, opts, "Fig 2: Power Constrained Tuning (Haswell)")
}

// Fig3 reproduces the Skylake power-constrained tuning figure, training
// via Haswell→Skylake transfer learning as §IV-B describes.
func Fig3(w io.Writer, opts Options) (*PowerFigure, error) {
	// Source encoder: trained once on the full Haswell corpus.
	dH, err := dataset.Build(hw.Haswell())
	if err != nil {
		return nil, err
	}
	srcFold := dataset.Fold{App: "", Train: dH.Regions}
	src := core.TrainPower(dH, srcFold, opts.Model)
	return powerFigure(w, hw.Skylake(), src, opts, "Fig 3: Power Constrained Tuning (Skylake, transfer-trained)")
}

func powerFigure(w io.Writer, m *hw.Machine, transferSrc *core.PowerResult, opts Options, title string) (*PowerFigure, error) {
	d, err := dataset.Build(m)
	if err != nil {
		return nil, err
	}
	folds := d.LOOCVFolds()
	if opts.MaxFolds > 0 && opts.MaxFolds < len(folds) {
		folds = folds[:opts.MaxFolds]
	}

	pf := &PowerFigure{
		Machine:    m.Name,
		Caps:       d.Space.Caps(),
		Norm:       map[string][][]float64{},
		RegionNorm: map[string][]float64{},
		Speedup:    map[string][]float64{},
	}
	// speedups[tuner][capIdx] collects per-region speedups over default.
	type cell struct{ norm, speedup []float64 }
	perApp := map[string]map[string][]cell{} // tuner → app → per-cap cells
	for _, tn := range Tuners {
		perApp[tn] = map[string][]cell{}
	}
	addRegion := func(tuner, app string, ci int, norm, speedup float64) {
		cells := perApp[tuner][app]
		if cells == nil {
			cells = make([]cell, len(pf.Caps))
		}
		cells[ci].norm = append(cells[ci].norm, norm)
		cells[ci].speedup = append(cells[ci].speedup, speedup)
		perApp[tuner][app] = cells
		pf.RegionNorm[tuner] = append(pf.RegionNorm[tuner], norm)
	}

	// Train every fold in parallel (each fold is an independent model),
	// then merge in fold order so the output is deterministic. Only the
	// prediction maps survive the fold — the trained models would
	// otherwise all stay live until the merge.
	type foldOut struct {
		static           map[string][]int
		dynamic          map[string][]int
		topk             map[string][][]int
		fullDur, xferDur float64
		err              error
	}
	outs := make([]foldOut, len(folds))
	parallelFolds(len(folds), func(fi int) {
		fold := folds[fi]
		o := &outs[fi]
		var res *core.PowerResult
		if transferSrc != nil {
			// Measure the transfer-vs-full training speedup on this fold.
			full := core.TrainPower(d, fold, opts.Model)
			o.fullDur = full.Stats.Duration.Seconds()
			var err error
			res, err = core.TransferPower(transferSrc.Model, d, fold, opts.Model)
			if err != nil {
				o.err = err
				return
			}
			o.xferDur = res.Stats.Duration.Seconds()
		} else {
			res = core.TrainPower(d, fold, opts.Model)
		}
		o.static = res.Pred
		o.dynamic = core.RefineWithCounters(d, fold, res.Pred, opts.Threshold, opts.Model)
		o.topk = core.TopKPower(d, res.Model, fold.Val, HybridK)
	})

	var fullDur, xferDur float64
	for fi, fold := range folds {
		o := outs[fi]
		if o.err != nil {
			return nil, o.err
		}
		fullDur += o.fullDur
		xferDur += o.xferDur

		// Every tuner column is one engine entry: the predictions become
		// zero-execution Fixed strategies, the hybrid shortlist gets its
		// k-execution refinement budget, and the search baselines run
		// their full noisy-replay sessions.
		entries := timeEntries(d, o.static, o.dynamic, o.topk)
		for _, rd := range fold.Val {
			for ci := range pf.Caps {
				def := rd.DefaultResult(ci, d.Space).TimeSec
				best := rd.BestTime(ci)
				oracleSp := metrics.Speedup(def, best)
				task := autotune.Task{
					Problem: autotune.Problem{
						Obj:   autotune.TimeUnderCap{Cap: ci},
						Space: d.Space,
						Seed:  rd.Region.Seed,
					},
					RegionID: rd.Region.ID,
				}
				for _, en := range entries {
					pick := autotune.RunEntry(en, rd, task).Best
					sp := metrics.Speedup(def, rd.Results[ci][pick].TimeSec)
					addRegion(en.Name, rd.Region.App, ci, metrics.Normalize(sp, oracleSp), sp)
				}
			}
		}
	}
	if xferDur > 0 {
		pf.TransferSpeedup = fullDur / xferDur
	}

	// Collapse per-app geomeans in figure order.
	for _, app := range kernels.AppNames() {
		if len(perApp[TunerDefault][app]) == 0 {
			continue
		}
		pf.Apps = append(pf.Apps, app)
	}
	for _, tn := range Tuners {
		grid := make([][]float64, len(pf.Caps))
		agg := make([]float64, len(pf.Caps))
		for ci := range pf.Caps {
			grid[ci] = make([]float64, len(pf.Apps))
			var all []float64
			for ai, app := range pf.Apps {
				c := perApp[tn][app][ci]
				grid[ci][ai] = metrics.GeoMean(c.norm)
				all = append(all, c.speedup...)
			}
			agg[ci] = metrics.GeoMean(all)
		}
		pf.Norm[tn] = grid
		pf.Speedup[tn] = agg
	}

	printPowerFigure(w, title, pf)
	return pf, nil
}

// appOrder returns the corpus apps present in the figure, in figure order.
func appOrder(present map[string]bool) []string {
	var out []string
	for _, app := range kernels.AppNames() {
		if present[app] {
			out = append(out, app)
		}
	}
	return out
}

func printPowerFigure(w io.Writer, title string, pf *PowerFigure) {
	fmt.Fprintln(w, title)
	for ci, capW := range pf.Caps {
		fmt.Fprintf(w, "  -- %gW: normalized speedups (oracle = 1.00) --\n", capW)
		fmt.Fprintf(w, "  %-14s", "app")
		for _, tn := range Tuners {
			fmt.Fprintf(w, " %12s", tn)
		}
		fmt.Fprintln(w)
		for ai, app := range pf.Apps {
			fmt.Fprintf(w, "  %-14s", app)
			for _, tn := range Tuners {
				fmt.Fprintf(w, " %12.3f", pf.Norm[tn][ci][ai])
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "  geomean speedups over default per cap:\n")
	for _, tn := range Tuners[1:] {
		fmt.Fprintf(w, "    %-13s", tn)
		for ci := range pf.Caps {
			fmt.Fprintf(w, " %6.3fx", pf.Speedup[tn][ci])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  >=0.95 oracle: PnP(Static) %.0f%%, PnP(Dynamic) %.0f%%, PnP(Hybrid) %.0f%%, BLISS %.0f%%, OpenTuner %.0f%%\n",
		100*pf.Frac95(TunerPnPStatic), 100*pf.Frac95(TunerPnPDyn), 100*pf.Frac95(TunerPnPHybrid),
		100*pf.Frac95(TunerBLISS), 100*pf.Frac95(TunerOpenTuner))
	fmt.Fprintf(w, "  PnP beats BLISS in %.0f%% and OpenTuner in %.0f%% of cases\n",
		100*pf.BeatsFraction(TunerPnPStatic, TunerBLISS),
		100*pf.BeatsFraction(TunerPnPStatic, TunerOpenTuner))
	if pf.TransferSpeedup > 0 {
		fmt.Fprintf(w, "  transfer learning: %.2fx faster training than full retraining\n", pf.TransferSpeedup)
	}
}
