package experiments

import (
	"bytes"
	"strings"
	"testing"

	"pnptuner/internal/hw"
)

func TestTablesPrint(t *testing.T) {
	var b bytes.Buffer
	Table1(&b)
	Table2(&b)
	out := b.String()
	for _, want := range []string{"TABLE I", "TABLE II", "508", "RGCN (4)", "FCNN (3)", "Cross entropy", "0.001"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q", want)
		}
	}
}

func TestMotivationShape(t *testing.T) {
	var b bytes.Buffer
	res, err := Motivation(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SpeedupAtCap) != 4 {
		t.Fatalf("caps = %d", len(res.SpeedupAtCap))
	}
	// The paper's shape: gains shrink as the cap loosens, largest at 40W.
	if res.SpeedupAtCap[0] <= res.SpeedupAtCap[3] {
		t.Errorf("speedup at 40W (%.2f) should exceed 85W (%.2f)",
			res.SpeedupAtCap[0], res.SpeedupAtCap[3])
	}
	if res.SpeedupAtCap[0] < 2 {
		t.Errorf("40W speedup %.2f too small for the motivating example", res.SpeedupAtCap[0])
	}
	if res.EDPGreenup <= 1 {
		t.Errorf("EDP point greenup %.2f must beat default", res.EDPGreenup)
	}
}

func TestFig2QuickShape(t *testing.T) {
	var b bytes.Buffer
	pf, err := Fig2(&b, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pf.Machine != "haswell" || len(pf.Caps) != 4 {
		t.Fatalf("figure meta wrong: %s %v", pf.Machine, pf.Caps)
	}
	if len(pf.Apps) == 0 {
		t.Fatal("no apps evaluated")
	}
	for _, tn := range Tuners {
		if len(pf.Norm[tn]) != 4 {
			t.Fatalf("%s: missing cap rows", tn)
		}
		for ci := range pf.Caps {
			for ai := range pf.Apps {
				v := pf.Norm[tn][ci][ai]
				if v <= 0 || v > 1.2 {
					t.Fatalf("%s norm[%d][%d] = %g out of range", tn, ci, ai, v)
				}
			}
		}
	}
	// Oracle-normalized default must never exceed 1.
	for ci := range pf.Caps {
		for _, v := range pf.Norm[TunerDefault][ci] {
			if v > 1.0001 {
				t.Fatalf("default normalized %g > 1", v)
			}
		}
	}
	if !strings.Contains(b.String(), "geomean speedups over default") {
		t.Error("figure print incomplete")
	}
	// The hybrid scenario buys headroom with its k validation runs: its
	// fraction-of-oracle at the figures' reporting threshold must be at
	// least the pure static prediction's.
	if hy, st := pf.Frac95(TunerPnPHybrid), pf.Frac95(TunerPnPStatic); hy < st {
		t.Errorf("hybrid frac@0.95 = %.3f below pure-GNN %.3f", hy, st)
	}
}

func TestFig5QuickShape(t *testing.T) {
	var b bytes.Buffer
	uf, err := Fig5(&b, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(uf.TargetCaps) != 2 || uf.TargetCaps[0] != 85 || uf.TargetCaps[1] != 40 {
		t.Fatalf("target caps = %v, want [85 40]", uf.TargetCaps)
	}
	if len(uf.Speedup) != 2 || uf.Speedup[0] <= 0 {
		t.Fatalf("speedups = %v", uf.Speedup)
	}
	for ti := range uf.TargetCaps {
		if uf.OracleSpeedup[ti] < uf.Speedup[ti]*0.99 {
			t.Fatalf("PnP (%.3f) exceeding oracle (%.3f) at cap %d",
				uf.Speedup[ti], uf.OracleSpeedup[ti], ti)
		}
	}
}

func TestFig6QuickShape(t *testing.T) {
	var b bytes.Buffer
	ef, err := Fig6And7(&b, hw.Haswell(), QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range Tuners {
		if ef.EDPImprovement[tn] <= 0 {
			t.Fatalf("%s: no EDP improvement recorded", tn)
		}
	}
	// Default's improvement over itself is exactly 1.
	if ef.EDPImprovement[TunerDefault] != 1 {
		t.Fatalf("default EDP improvement = %g, want 1", ef.EDPImprovement[TunerDefault])
	}
	// PnP must improve EDP over default on geomean.
	if ef.EDPImprovement[TunerPnPStatic] <= 1.05 {
		t.Fatalf("PnP EDP improvement = %.3f, want > 1.05", ef.EDPImprovement[TunerPnPStatic])
	}
	out := b.String()
	if !strings.Contains(out, "Fig 6") || !strings.Contains(out, "Fig 7") {
		t.Error("missing figure output")
	}
}
