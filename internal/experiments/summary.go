package experiments

import (
	"fmt"
	"io"

	"pnptuner/internal/hw"
	"pnptuner/internal/metrics"
)

// AllResults bundles every experiment's data for the summary and for
// EXPERIMENTS.md generation.
type AllResults struct {
	Motivation *MotivationResult
	Fig2       *PowerFigure // Haswell
	Fig3       *PowerFigure // Skylake
	Fig4       *UnseenCapFigure
	Fig5       *UnseenCapFigure
	Fig6Sky    *EDPFigure
	Fig6Has    *EDPFigure
}

// RunAll executes every experiment in paper order, printing each figure's
// data followed by the §IV aggregate summary.
func RunAll(w io.Writer, opts Options) (*AllResults, error) {
	all := &AllResults{}
	var err error

	Table1(w)
	fmt.Fprintln(w)
	Table2(w)
	fmt.Fprintln(w)

	if all.Motivation, err = Motivation(w); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)
	if all.Fig2, err = Fig2(w, opts); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)
	if all.Fig3, err = Fig3(w, opts); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)
	if all.Fig4, err = Fig4(w, opts); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)
	if all.Fig5, err = Fig5(w, opts); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)
	if all.Fig6Sky, err = Fig6And7(w, hw.Skylake(), opts); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)
	if all.Fig6Has, err = Fig6And7(w, hw.Haswell(), opts); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)
	all.Summary(w)
	return all, nil
}

// Summary prints the paper-vs-measured aggregate comparison (§IV claims).
func (all *AllResults) Summary(w io.Writer) {
	fmt.Fprintln(w, "==== Aggregate summary: paper vs this reproduction ====")
	row := func(name string, paper string, measured string) {
		fmt.Fprintf(w, "  %-58s paper %-28s measured %s\n", name, paper, measured)
	}
	if f := all.Fig2; f != nil {
		row("Haswell PnP geomean speedups (40/60/70/85W)",
			"1.19/1.12/1.13/1.14x", fmtSeries(f.Speedup[TunerPnPStatic]))
		row("Haswell BLISS geomean speedups", "1.11/1.09/1.09/1.11x", fmtSeries(f.Speedup[TunerBLISS]))
		row("Haswell OpenTuner geomean speedups", "1.06/1.00/1.04/1.02x", fmtSeries(f.Speedup[TunerOpenTuner]))
	}
	if f := all.Fig3; f != nil {
		row("Skylake PnP geomean speedups (75/100/120/150W)",
			"1.50/1.25/1.26/1.34x", fmtSeries(f.Speedup[TunerPnPStatic]))
		row("Skylake BLISS geomean speedups", "1.29/1.20/1.18/1.17x", fmtSeries(f.Speedup[TunerBLISS]))
		row("Skylake OpenTuner geomean speedups", "1.27/1.13/1.07/1.10x", fmtSeries(f.Speedup[TunerOpenTuner]))
		if f.TransferSpeedup > 0 {
			row("Transfer-learning training speedup", "4.18x", fmt.Sprintf("%.2fx", f.TransferSpeedup))
		}
	}
	if all.Fig2 != nil && all.Fig3 != nil {
		both := append(append([]float64{}, all.Fig2.RegionNorm[TunerPnPStatic]...),
			all.Fig3.RegionNorm[TunerPnPStatic]...)
		bothDyn := append(append([]float64{}, all.Fig2.RegionNorm[TunerPnPDyn]...),
			all.Fig3.RegionNorm[TunerPnPDyn]...)
		bothBliss := append(append([]float64{}, all.Fig2.RegionNorm[TunerBLISS]...),
			all.Fig3.RegionNorm[TunerBLISS]...)
		bothOT := append(append([]float64{}, all.Fig2.RegionNorm[TunerOpenTuner]...),
			all.Fig3.RegionNorm[TunerOpenTuner]...)
		row("PnP(Static) within 5% of oracle (both systems)", "74%",
			fmt.Sprintf("%.0f%%", 100*metrics.FractionAtLeast(both, 0.95)))
		row("PnP(Dynamic) within 5% of oracle", "87.5% (refined cases)",
			fmt.Sprintf("%.0f%%", 100*metrics.FractionAtLeast(bothDyn, 0.95)))
		bothHybrid := append(append([]float64{}, all.Fig2.RegionNorm[TunerPnPHybrid]...),
			all.Fig3.RegionNorm[TunerPnPHybrid]...)
		row(fmt.Sprintf("PnP(Hybrid) within 5%% of oracle (k=%d runs)", HybridK),
			"n/a (this repo's extension)",
			fmt.Sprintf("%.0f%%", 100*metrics.FractionAtLeast(bothHybrid, 0.95)))
		row("BLISS within 5% of oracle", "51%",
			fmt.Sprintf("%.0f%%", 100*metrics.FractionAtLeast(bothBliss, 0.95)))
		row("OpenTuner within 5% of oracle", "34%",
			fmt.Sprintf("%.0f%%", 100*metrics.FractionAtLeast(bothOT, 0.95)))
		row("PnP beats BLISS / OpenTuner", "83% / 78%",
			fmt.Sprintf("%.0f%% / %.0f%%",
				100*metrics.FractionGreater(both, bothBliss),
				100*metrics.FractionGreater(both, bothOT)))
	}
	if f := all.Fig4; f != nil {
		row("Skylake unseen-cap PnP speedups (150W, 75W)",
			"1.29x, 1.36x (oracle 1.44, 1.59)",
			fmt.Sprintf("%.2fx, %.2fx (oracle %.2f, %.2f)",
				f.Speedup[0], f.Speedup[1], f.OracleSpeedup[0], f.OracleSpeedup[1]))
	}
	if f := all.Fig5; f != nil {
		row("Haswell unseen-cap PnP speedups (85W, 40W)",
			"1.13x, 1.17x (oracle 1.16, 1.27)",
			fmt.Sprintf("%.2fx, %.2fx (oracle %.2f, %.2f)",
				f.Speedup[0], f.Speedup[1], f.OracleSpeedup[0], f.OracleSpeedup[1]))
	}
	if all.Fig4 != nil && all.Fig5 != nil {
		both := append(append([]float64{}, all.Fig4.RegionNorm...), all.Fig5.RegionNorm...)
		row("Unseen-cap within 5%/20% of oracle", "64% / 85%",
			fmt.Sprintf("%.0f%% / %.0f%%",
				100*metrics.FractionAtLeast(both, 0.95),
				100*metrics.FractionAtLeast(both, 0.80)))
	}
	if f := all.Fig6Has; f != nil {
		row("Haswell EDP improvement PnP(Static)/BLISS/OpenTuner",
			"1.37x / 1.31x / 1.21x",
			fmt.Sprintf("%.2fx / %.2fx / %.2fx",
				f.EDPImprovement[TunerPnPStatic], f.EDPImprovement[TunerBLISS], f.EDPImprovement[TunerOpenTuner]))
		row("Haswell EDP PnP(Dynamic)", "1.52x",
			fmt.Sprintf("%.2fx", f.EDPImprovement[TunerPnPDyn]))
	}
	if f := all.Fig6Sky; f != nil {
		row("Skylake EDP improvement PnP(Static)/BLISS/OpenTuner",
			"1.85x / 1.69x / 1.49x",
			fmt.Sprintf("%.2fx / %.2fx / %.2fx",
				f.EDPImprovement[TunerPnPStatic], f.EDPImprovement[TunerBLISS], f.EDPImprovement[TunerOpenTuner]))
		row("Skylake EDP PnP(Dynamic)", "2.31x",
			fmt.Sprintf("%.2fx", f.EDPImprovement[TunerPnPDyn]))
	}
	if all.Fig6Sky != nil && all.Fig6Has != nil {
		bothEDP := append(append([]float64{}, all.Fig6Sky.RegionNormEDP[TunerPnPStatic]...),
			all.Fig6Has.RegionNormEDP[TunerPnPStatic]...)
		row("EDP within 5%/20% of oracle (PnP static)", "45% / 69%",
			fmt.Sprintf("%.0f%% / %.0f%%",
				100*metrics.FractionAtLeast(bothEDP, 0.95),
				100*metrics.FractionAtLeast(bothEDP, 0.80)))
		bothSp := append(append([]float64{}, all.Fig6Sky.Speedup[TunerPnPStatic]...),
			all.Fig6Has.Speedup[TunerPnPStatic]...)
		row("EDP tuning: cases with time improvement", "84%",
			fmt.Sprintf("%.0f%%", 100*metrics.FractionAtLeast(bothSp, 1.0)))
		bothGr := append(append([]float64{}, all.Fig6Sky.Greenup[TunerPnPStatic]...),
			all.Fig6Has.Greenup[TunerPnPStatic]...)
		row("EDP tuning: cases with energy reduction", "94%",
			fmt.Sprintf("%.0f%%", 100*metrics.FractionAtLeast(bothGr, 1.0)))
	}
	if m := all.Motivation; m != nil {
		row("LULESH BC oracle speedups at 40/60/70/85W",
			"7.54/2.11/1.80/1.67x", fmtSeries(m.SpeedupAtCap))
		row("LULESH BC EDP point (speedup, greenup)", "1.64x, 2.70x",
			fmt.Sprintf("%.2fx, %.2fx", m.EDPSpeedup, m.EDPGreenup))
	}
}

func fmtSeries(xs []float64) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += "/"
		}
		out += fmt.Sprintf("%.2f", x)
	}
	return out + "x"
}
