package experiments

import (
	"fmt"
	"io"

	"pnptuner/internal/autotune"
	"pnptuner/internal/bliss"
	"pnptuner/internal/core"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/metrics"
	"pnptuner/internal/opentuner"
)

// UnseenCapFigure is the data behind Fig. 4 (Skylake) or Fig. 5 (Haswell):
// tuning at power constraints excluded from training.
type UnseenCapFigure struct {
	Machine string
	// TargetCaps are the held-out power limits (lowest and highest).
	TargetCaps []float64
	Apps       []string
	// DefaultNorm/PnPNorm[t][appIdx]: normalized speedups at target cap t.
	DefaultNorm [][]float64
	PnPNorm     [][]float64
	// RegionNorm flattens PnP per-(region, target-cap) values.
	RegionNorm []float64
	// Speedup[t] is the PnP geomean speedup over default; OracleSpeedup[t]
	// the exhaustive-search geomean, as §IV-B quotes.
	Speedup       []float64
	OracleSpeedup []float64
}

// Fig4 evaluates unseen power constraints on Skylake (150W and 75W).
func Fig4(w io.Writer, opts Options) (*UnseenCapFigure, error) {
	return unseenCapFigure(w, hw.Skylake(), opts, "Fig 4: Unseen power constraints (Skylake)")
}

// Fig5 evaluates unseen power constraints on Haswell (85W and 40W).
func Fig5(w io.Writer, opts Options) (*UnseenCapFigure, error) {
	return unseenCapFigure(w, hw.Haswell(), opts, "Fig 5: Unseen power constraints (Haswell)")
}

func unseenCapFigure(w io.Writer, m *hw.Machine, opts Options, title string) (*UnseenCapFigure, error) {
	d, err := dataset.Build(m)
	if err != nil {
		return nil, err
	}
	folds := d.LOOCVFolds()
	if opts.MaxFolds > 0 && opts.MaxFolds < len(folds) {
		folds = folds[:opts.MaxFolds]
	}
	// The paper tests the highest and lowest caps.
	targets := []int{len(d.Space.Caps()) - 1, 0}

	uf := &UnseenCapFigure{Machine: m.Name}
	for _, t := range targets {
		uf.TargetCaps = append(uf.TargetCaps, d.Space.Caps()[t])
	}
	present := map[string]bool{}
	type appAgg struct{ def, pnp []float64 }
	perApp := make([]map[string]*appAgg, len(targets))
	var speedups, oracles [][]float64
	for range targets {
		speedups = append(speedups, nil)
		oracles = append(oracles, nil)
	}
	for ti := range targets {
		perApp[ti] = map[string]*appAgg{}
	}

	// One training run per (fold, target cap) — all independent, so they
	// fan out across the fold pool and merge in deterministic order.
	// Only the prediction maps are retained.
	preds := make([]map[string]int, len(folds)*len(targets))
	parallelFolds(len(preds), func(i int) {
		fold, capIdx := folds[i/len(targets)], targets[i%len(targets)]
		preds[i] = core.TrainUnseenCap(d, fold, capIdx, opts.Model).Pred
	})

	for fi, fold := range folds {
		for ti, capIdx := range targets {
			pred := preds[fi*len(targets)+ti]
			for _, rd := range fold.Val {
				present[rd.Region.App] = true
				def := rd.DefaultResult(capIdx, d.Space).TimeSec
				best := rd.BestTime(capIdx)
				oracleSp := metrics.Speedup(def, best)
				pick := pred[rd.Region.ID]
				sp := metrics.Speedup(def, rd.Results[capIdx][pick].TimeSec)

				agg := perApp[ti][rd.Region.App]
				if agg == nil {
					agg = &appAgg{}
					perApp[ti][rd.Region.App] = agg
				}
				agg.def = append(agg.def, metrics.Normalize(1, oracleSp))
				norm := metrics.Normalize(sp, oracleSp)
				agg.pnp = append(agg.pnp, norm)
				uf.RegionNorm = append(uf.RegionNorm, norm)
				speedups[ti] = append(speedups[ti], sp)
				oracles[ti] = append(oracles[ti], oracleSp)
			}
		}
	}

	uf.Apps = appOrder(present)
	uf.DefaultNorm = make([][]float64, len(targets))
	uf.PnPNorm = make([][]float64, len(targets))
	for ti := range targets {
		uf.DefaultNorm[ti] = make([]float64, len(uf.Apps))
		uf.PnPNorm[ti] = make([]float64, len(uf.Apps))
		for ai, app := range uf.Apps {
			uf.DefaultNorm[ti][ai] = metrics.GeoMean(perApp[ti][app].def)
			uf.PnPNorm[ti][ai] = metrics.GeoMean(perApp[ti][app].pnp)
		}
		uf.Speedup = append(uf.Speedup, metrics.GeoMean(speedups[ti]))
		uf.OracleSpeedup = append(uf.OracleSpeedup, metrics.GeoMean(oracles[ti]))
	}

	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  %-14s", "app")
	for ti := range targets {
		fmt.Fprintf(w, "  Default(%3.0fW) PnP(%3.0fW)", uf.TargetCaps[ti], uf.TargetCaps[ti])
	}
	fmt.Fprintln(w)
	for ai, app := range uf.Apps {
		fmt.Fprintf(w, "  %-14s", app)
		for ti := range targets {
			fmt.Fprintf(w, "  %13.3f %9.3f", uf.DefaultNorm[ti][ai], uf.PnPNorm[ti][ai])
		}
		fmt.Fprintln(w)
	}
	for ti := range targets {
		fmt.Fprintf(w, "  at %3.0fW: PnP geomean speedup %.2fx vs oracle %.2fx\n",
			uf.TargetCaps[ti], uf.Speedup[ti], uf.OracleSpeedup[ti])
	}
	fmt.Fprintf(w, "  within 5%% of oracle: %.0f%%, within 20%%: %.0f%%\n",
		100*metrics.FractionAtLeast(uf.RegionNorm, 0.95),
		100*metrics.FractionAtLeast(uf.RegionNorm, 0.80))
	return uf, nil
}

// EDPFigure is the data behind Figs. 6 and 7 for one machine: EDP tuning
// over the joint (cap × config) space, evaluated against default at TDP.
type EDPFigure struct {
	Machine string
	Apps    []string
	// NormEDP[tuner][appIdx]: per-app geomean normalized EDP improvement.
	NormEDP map[string][]float64
	// RegionNormEDP[tuner]: flat per-region normalized EDP improvements.
	RegionNormEDP map[string][]float64
	// Speedup/Greenup[tuner]: flat per-region values vs default at TDP
	// (the Fig. 7 series).
	Speedup map[string][]float64
	Greenup map[string][]float64
	// EDPImprovement[tuner]: geomean EDP improvement over default at TDP.
	EDPImprovement map[string]float64
}

// Fig6And7 reproduces the EDP experiments for machine m: Fig. 6's
// normalized EDP improvements and Fig. 7's speedup/greenup series.
func Fig6And7(w io.Writer, m *hw.Machine, opts Options) (*EDPFigure, error) {
	d, err := dataset.Build(m)
	if err != nil {
		return nil, err
	}
	folds := d.LOOCVFolds()
	if opts.MaxFolds > 0 && opts.MaxFolds < len(folds) {
		folds = folds[:opts.MaxFolds]
	}
	tdpIdx := len(d.Space.Caps()) - 1

	ef := &EDPFigure{
		Machine:        m.Name,
		NormEDP:        map[string][]float64{},
		RegionNormEDP:  map[string][]float64{},
		Speedup:        map[string][]float64{},
		Greenup:        map[string][]float64{},
		EDPImprovement: map[string]float64{},
	}
	present := map[string]bool{}
	perApp := map[string]map[string][]float64{}
	for _, tn := range Tuners {
		perApp[tn] = map[string][]float64{}
	}
	improvements := map[string][]float64{}

	record := func(tuner string, rd *dataset.RegionData, joint int) {
		def := rd.DefaultResult(tdpIdx, d.Space)
		ci, ki := d.Space.SplitJoint(joint)
		got := rd.Results[ci][ki]
		bestEDP := rd.BestEDP(d.Space)
		oracleImp := metrics.EDPImprovement(def.EDP(), bestEDP)
		imp := metrics.EDPImprovement(def.EDP(), got.EDP())
		norm := metrics.Normalize(imp, oracleImp)
		perApp[tuner][rd.Region.App] = append(perApp[tuner][rd.Region.App], norm)
		ef.RegionNormEDP[tuner] = append(ef.RegionNormEDP[tuner], norm)
		ef.Speedup[tuner] = append(ef.Speedup[tuner], metrics.Speedup(def.TimeSec, got.TimeSec))
		ef.Greenup[tuner] = append(ef.Greenup[tuner], metrics.Greenup(def.EnergyJ(), got.EnergyJ()))
		improvements[tuner] = append(improvements[tuner], imp)
	}

	// Per-fold EDP models are independent: train in parallel, merge in
	// fold order. Only the prediction maps and shortlists are retained.
	type foldOut struct {
		static  map[string]int
		dynamic map[string]int
		topk    map[string][]int
	}
	outs := make([]foldOut, len(folds))
	parallelFolds(len(folds), func(fi int) {
		static := core.TrainEDP(d, folds[fi], opts.Model)
		outs[fi] = foldOut{
			static:  static.Pred,
			dynamic: core.RefineEDPWithCounters(d, folds[fi], static.Pred, opts.Threshold, opts.Model),
			topk:    core.TopKEDP(d, static.Model, folds[fi].Val, HybridK),
		}
	})

	for fi, fold := range folds {
		o := outs[fi]
		// One engine entry per tuner column over the joint space.
		entries := []autotune.Entry{
			autotune.FixedEntry(TunerDefault, func(t autotune.Task) int {
				return d.Space.JointIndex(tdpIdx, d.Space.DefaultIndex())
			}),
			autotune.FixedEntry(TunerPnPStatic, func(t autotune.Task) int { return o.static[t.RegionID] }),
			autotune.FixedEntry(TunerPnPDyn, func(t autotune.Task) int { return o.dynamic[t.RegionID] }),
			autotune.HybridEntry(TunerPnPHybrid, func(t autotune.Task) []int { return o.topk[t.RegionID] }),
			bliss.Entry(TunerBLISS),
			opentuner.Entry(TunerOpenTuner),
		}
		for _, rd := range fold.Val {
			present[rd.Region.App] = true
			task := autotune.Task{
				Problem:  autotune.Problem{Obj: autotune.EDP{}, Space: d.Space, Seed: rd.Region.Seed},
				RegionID: rd.Region.ID,
			}
			for _, en := range entries {
				record(en.Name, rd, autotune.RunEntry(en, rd, task).Best)
			}
		}
	}

	ef.Apps = appOrder(present)
	for _, tn := range Tuners {
		row := make([]float64, len(ef.Apps))
		for ai, app := range ef.Apps {
			row[ai] = metrics.GeoMean(perApp[tn][app])
		}
		ef.NormEDP[tn] = row
		ef.EDPImprovement[tn] = metrics.GeoMean(improvements[tn])
	}

	fmt.Fprintf(w, "Fig 6 (%s): normalized EDP improvement over default at TDP (oracle = 1.00)\n", m.Name)
	fmt.Fprintf(w, "  %-14s", "app")
	for _, tn := range Tuners {
		fmt.Fprintf(w, " %12s", tn)
	}
	fmt.Fprintln(w)
	for ai, app := range ef.Apps {
		fmt.Fprintf(w, "  %-14s", app)
		for _, tn := range Tuners {
			fmt.Fprintf(w, " %12.3f", ef.NormEDP[tn][ai])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  geomean EDP improvement: ")
	for _, tn := range Tuners[1:] {
		fmt.Fprintf(w, "%s %.2fx  ", tn, ef.EDPImprovement[tn])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  EDP within 5%%/20%% of oracle: PnP(Static) %.0f%%/%.0f%%, PnP(Dynamic) %.0f%%/%.0f%%, PnP(Hybrid) %.0f%%/%.0f%%, BLISS %.0f%%/%.0f%%, OpenTuner %.0f%%/%.0f%%\n",
		100*metrics.FractionAtLeast(ef.RegionNormEDP[TunerPnPStatic], 0.95),
		100*metrics.FractionAtLeast(ef.RegionNormEDP[TunerPnPStatic], 0.80),
		100*metrics.FractionAtLeast(ef.RegionNormEDP[TunerPnPDyn], 0.95),
		100*metrics.FractionAtLeast(ef.RegionNormEDP[TunerPnPDyn], 0.80),
		100*metrics.FractionAtLeast(ef.RegionNormEDP[TunerPnPHybrid], 0.95),
		100*metrics.FractionAtLeast(ef.RegionNormEDP[TunerPnPHybrid], 0.80),
		100*metrics.FractionAtLeast(ef.RegionNormEDP[TunerBLISS], 0.95),
		100*metrics.FractionAtLeast(ef.RegionNormEDP[TunerBLISS], 0.80),
		100*metrics.FractionAtLeast(ef.RegionNormEDP[TunerOpenTuner], 0.95),
		100*metrics.FractionAtLeast(ef.RegionNormEDP[TunerOpenTuner], 0.80))

	fmt.Fprintf(w, "Fig 7 (%s): speedups/greenups over default at TDP when tuning for EDP\n", m.Name)
	for _, tn := range Tuners[1:] {
		sp := ef.Speedup[tn]
		gr := ef.Greenup[tn]
		slow := 1 - metrics.FractionAtLeast(sp, 1.0)
		worseE := 1 - metrics.FractionAtLeast(gr, 1.0)
		fmt.Fprintf(w, "  %-13s speedup %s | greenup %s | slowdowns %.0f%%, energy increases %.0f%%\n",
			tn, metrics.Summarize(sp), metrics.Summarize(gr), 100*slow, 100*worseE)
	}
	return ef, nil
}
