// Package testutil spins whole in-process serving clusters — N
// pnpserve replicas plus one pnpgate router on ephemeral ports — so
// cluster behaviour (placement, failover, replication, recovery) is
// testable with `go test` alone: no binaries, no fixed ports, full
// cleanup via t.Cleanup. Replicas can be killed and restarted
// mid-test to inject faults; each keeps its on-disk model store and
// per-replica training counter across restarts, exactly like a
// crashed process coming back on the same address.
package testutil

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pnptuner/internal/chaos"
	"pnptuner/internal/client"
	"pnptuner/internal/core"
	"pnptuner/internal/gate"
	"pnptuner/internal/hw"
	"pnptuner/internal/kernels"
	"pnptuner/internal/registry"
	"pnptuner/internal/space"
)

// config collects StartCluster options.
type config struct {
	cache      int
	maxBatch   int
	maxWait    time.Duration
	jobs       registry.JobStoreConfig
	trainer    registry.TrainFunc
	trainDelay time.Duration
	health     gate.TrackerConfig
	vnodes     int
	gateMod    func(*gate.Config)
	serverMod  func(*registry.ServerConfig)
	chaosSeed  int64
	withChaos  bool
}

// Option tunes StartCluster.
type Option func(*config)

// WithCache sets each replica's in-memory model LRU capacity.
func WithCache(n int) Option { return func(c *config) { c.cache = n } }

// WithTrainer swaps the per-replica train-on-miss function (default
// TinyTrainer). The cluster wraps it with the replica's Trains counter
// either way.
func WithTrainer(f registry.TrainFunc) Option { return func(c *config) { c.trainer = f } }

// WithTrainDelay makes every training dawdle, widening the window in
// which concurrent cold requests can race a training.
func WithTrainDelay(d time.Duration) Option { return func(c *config) { c.trainDelay = d } }

// WithGateHealth tunes the gate's circuit breakers and prober. The
// default probes every 20ms with threshold 3 / recovery 2, so a killed
// replica is detected within ~100ms of test time.
func WithGateHealth(h gate.TrackerConfig) Option { return func(c *config) { c.health = h } }

// WithJobs bounds each replica's async tune job subsystem.
func WithJobs(j registry.JobStoreConfig) Option { return func(c *config) { c.jobs = j } }

// WithGateConfig applies mod to the gate's config after the defaults
// are set — tests tune attempt timeouts, hedging, or anything else
// without testutil growing one option per knob.
func WithGateConfig(mod func(*gate.Config)) Option { return func(c *config) { c.gateMod = mod } }

// WithServerConfig applies mod to every replica's ServerConfig —
// admission limits, batching, refresh.
func WithServerConfig(mod func(*registry.ServerConfig)) Option {
	return func(c *config) { c.serverMod = mod }
}

// WithChaos inserts a fault-injecting chaos proxy in front of every
// replica: the gate routes through the proxies (Cluster.Chaos, gate
// index order) while replica-to-replica traffic (peer model fetch)
// stays direct. Proxies start fault-free; tests arm them per replica
// with SetFaults/SetRoute. seed fixes each proxy's randomness (proxy i
// uses seed+i).
func WithChaos(seed int64) Option {
	return func(c *config) {
		c.withChaos = true
		c.chaosSeed = seed
	}
}

// Cluster is a running gate + replicas fleet.
type Cluster struct {
	// Gate is the router; GateURL its HTTP base.
	Gate    *gate.Gate
	GateURL string
	// Replicas in gate index order.
	Replicas []*Replica
	// Chaos holds the per-replica fault proxies when the cluster was
	// started WithChaos (gate index order; nil otherwise).
	Chaos []*chaos.Proxy

	pool     *client.Pool
	gateHTTP *httptest.Server
}

// Replica is one in-process pnpserve: a registry + API server on a
// stable address. Kill / Restart simulate a crash and a reboot — the
// on-disk store and address survive, in-memory state (cache, jobs)
// does not.
type Replica struct {
	Index int
	URL   string
	Dir   string
	// Trains counts train-on-miss invocations across restarts: the
	// cluster-wide sum proves single-flight training.
	Trains atomic.Int64

	cfg   *config
	peers func() []string // all replica URLs, self included (skipped)

	mu      sync.Mutex
	running bool
	addr    string
	ln      net.Listener
	reg     *registry.Registry
	srv     *registry.Server
	http    *http.Server
	pool    *client.Pool
}

// StartCluster boots n replicas and a gate over them, registers full
// cleanup on t, and returns the running cluster. Replicas train with
// TinyTrainer by default (instant, deterministic) and fetch cold
// models from peers before training, exactly like production replicas
// configured with -peers.
func StartCluster(t testing.TB, n int, opts ...Option) *Cluster {
	t.Helper()
	cfg := &config{
		cache:    8,
		maxBatch: 8,
		maxWait:  time.Millisecond,
		jobs:     registry.JobStoreConfig{Workers: 2, Queue: 32, TTL: time.Minute},
		trainer:  TinyTrainer,
		health: gate.TrackerConfig{
			FailThreshold:    3,
			RecoverSuccesses: 2,
			ProbeInterval:    20 * time.Millisecond,
			ProbeTimeout:     2 * time.Second,
		},
	}
	for _, o := range opts {
		o(cfg)
	}

	pool := client.NewPool(client.WithRetries(0, time.Millisecond))
	c := &Cluster{pool: pool}

	urls := make([]string, n)
	for i := 0; i < n; i++ {
		r := &Replica{
			Index: i,
			Dir:   t.TempDir(),
			cfg:   cfg,
			pool:  pool,
			peers: func() []string { return urls },
		}
		if err := r.start("127.0.0.1:0"); err != nil {
			t.Fatalf("start replica %d: %v", i, err)
		}
		urls[i] = r.URL
		c.Replicas = append(c.Replicas, r)
	}

	// With chaos on, the gate routes through per-replica fault proxies;
	// peer fetch (r.peers) keeps the direct URLs, mirroring production
	// where the fault domain is the gate↔replica network path.
	gateURLs := urls
	var chaosHTTP []*httptest.Server
	if cfg.withChaos {
		gateURLs = make([]string, n)
		for i, u := range urls {
			p, err := chaos.New(u, cfg.chaosSeed+int64(i))
			if err != nil {
				t.Fatalf("start chaos proxy %d: %v", i, err)
			}
			ps := httptest.NewServer(p)
			c.Chaos = append(c.Chaos, p)
			chaosHTTP = append(chaosHTTP, ps)
			gateURLs[i] = ps.URL
		}
	}

	gcfg := gate.Config{Replicas: gateURLs, VNodes: cfg.vnodes, Health: cfg.health}
	if cfg.gateMod != nil {
		cfg.gateMod(&gcfg)
	}
	g, err := gate.New(gcfg)
	if err != nil {
		t.Fatalf("start gate: %v", err)
	}
	c.Gate = g
	c.gateHTTP = httptest.NewServer(g.Handler())
	c.GateURL = c.gateHTTP.URL

	t.Cleanup(func() {
		c.gateHTTP.Close()
		g.Close()
		for _, ps := range chaosHTTP {
			ps.Close()
		}
		for _, r := range c.Replicas {
			r.Kill()
		}
		pool.Close()
	})
	return c
}

// Client returns a fresh SDK client against the gate.
func (c *Cluster) Client(opts ...client.Option) *client.Client {
	return client.New(c.GateURL, opts...)
}

// ReplicaClient returns a fresh SDK client aimed straight at replica i,
// bypassing the gate.
func (c *Cluster) ReplicaClient(i int, opts ...client.Option) *client.Client {
	return client.New(c.Replicas[i].URL, opts...)
}

// TotalTrains sums every replica's training counter.
func (c *Cluster) TotalTrains() int64 {
	var sum int64
	for _, r := range c.Replicas {
		sum += r.Trains.Load()
	}
	return sum
}

// WaitState blocks until the gate sees replica i in the wanted state
// (or the deadline passes, failing the test).
func (c *Cluster) WaitState(t testing.TB, i int, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Gate.Tracker().State(i) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica %d never reached state %q (now %q)", i, want, c.Gate.Tracker().State(i))
}

// start boots the replica's registry and HTTP server on addr
// ("host:0" picks an ephemeral port; a concrete addr rebinds it).
func (r *Replica) start(addr string) error {
	reg, err := registry.New(r.Dir, r.cfg.cache, r.countingTrainer())
	if err != nil {
		return err
	}
	reg.SetFetcher(r.fetchFromPeers)
	scfg := registry.ServerConfig{
		MaxBatch: r.cfg.maxBatch,
		MaxWait:  r.cfg.maxWait,
		Jobs:     r.cfg.jobs,
	}
	if r.cfg.serverMod != nil {
		r.cfg.serverMod(&scfg)
	}
	srv := registry.NewServer(reg, kernels.MustCompile().Vocab, scfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)

	r.mu.Lock()
	r.running = true
	if r.addr == "" {
		// First boot: pin the ephemeral address. Restarts rebind the
		// same one, so URL is written exactly once and is safe to read
		// without the lock forever after.
		r.addr = ln.Addr().String()
		r.URL = "http://" + r.addr
	}
	r.ln, r.reg, r.srv, r.http = ln, reg, srv, hs
	r.mu.Unlock()
	return nil
}

// countingTrainer wraps the configured trainer with the replica's
// persistent Trains counter and optional delay.
func (r *Replica) countingTrainer() registry.TrainFunc {
	return func(k registry.Key) (*core.Model, core.ModelMeta, error) {
		r.Trains.Add(1)
		if r.cfg.trainDelay > 0 {
			time.Sleep(r.cfg.trainDelay)
		}
		return r.cfg.trainer(k)
	}
}

// fetchFromPeers resolves a registry miss by asking every peer replica
// for the model's blob before falling back to training — the
// production -peers wiring, in-process.
func (r *Replica) fetchFromPeers(ctx context.Context, k registry.Key) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	for _, peer := range r.peers() {
		if peer == "" || peer == r.URL {
			continue
		}
		rc, err := r.pool.Get(peer).ModelBlob(ctx, k.ID())
		if err != nil {
			continue // missing there, or peer down: try the next one
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err == nil && len(data) > 0 {
			return data, nil
		}
	}
	return nil, nil // no peer has it: train locally
}

// Kill crashes the replica: connections drop, in-flight requests fail,
// nothing is drained. The on-disk store and address remain for
// Restart. Killing a dead replica is a no-op.
func (r *Replica) Kill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.running {
		return
	}
	r.running = false
	r.http.Close()
	r.ln.Close()
	r.srv.Close()
}

// Restart reboots a killed replica on its original address, with a
// fresh registry over the surviving on-disk store (the cache and job
// store start empty, like a real process restart).
func (r *Replica) Restart() error {
	r.mu.Lock()
	if r.running {
		r.mu.Unlock()
		return errors.New("testutil: replica already running")
	}
	addr := r.addr
	r.mu.Unlock()
	return r.start(addr)
}

// Running reports whether the replica is serving.
func (r *Replica) Running() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.running
}

// Registry exposes the replica's current registry (swapped on restart).
func (r *Replica) Registry() *registry.Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reg
}

// TinyTrainer is the shared test trainer: a correctly-shaped untrained
// model for the key's machine and objective, built instantly (zero
// epochs) and deterministically.
func TinyTrainer(k registry.Key) (*core.Model, core.ModelMeta, error) {
	c := kernels.MustCompile()
	mach, err := hw.ByName(k.Machine)
	if err != nil {
		return nil, core.ModelMeta{}, err
	}
	sp := space.New(mach)
	cfg := core.DefaultModelConfig()
	cfg.EmbedDim, cfg.Hidden, cfg.Epochs = 6, 6, 0
	nHeads, classes := len(sp.Caps()), 16
	if k.Objective == registry.ObjectiveEDP {
		nHeads, classes = 1, 64
	}
	m := core.NewModel(cfg, c.Vocab.Size(), nHeads, classes)
	meta := core.ModelMeta{
		Machine: k.Machine, Scenario: k.Scenario, Objective: k.Objective,
		Caps:       append([]float64(nil), sp.Caps()...),
		NumConfigs: sp.NumConfigs(), NumJoint: sp.NumJoint(),
		VocabSize: c.Vocab.Size(),
	}
	return m, meta, nil
}
