package testutil_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/chaos"
	"pnptuner/internal/client"
	"pnptuner/internal/gate"
	"pnptuner/internal/registry"
	"pnptuner/internal/testutil"
)

// chaosPredict sends one predict through the gate and fails the test on
// any error — the contract under chaos is zero unexpected client-visible
// failures, only typed outcomes.
func chaosPredict(t *testing.T, cl *client.Client, machine string, graph api.RawObject) *api.PredictResponse {
	t.Helper()
	out, err := cl.Predict(context.Background(), api.PredictRequest{
		Machine: machine, Objective: registry.ObjectiveTime, Graph: graph,
	})
	if err != nil {
		t.Fatalf("predict %s: %v", machine, err)
	}
	return out
}

// TestClusterChaosErrorInjection: one replica's network path drops 40%
// of connections mid-flight. Idempotent predicts fail over inside the
// gate, so the client sees zero errors even while the proxy is provably
// injecting.
func TestClusterChaosErrorInjection(t *testing.T) {
	c := testutil.StartCluster(t, 3, testutil.WithChaos(42))
	cl := c.Client(client.WithRetries(0, time.Millisecond))
	graph := corpusGraph(t, 0)

	// Warm every key fault-free so training never races the chaos.
	for _, k := range clusterKeys() {
		chaosPredict(t, cl, k.Machine, graph)
	}

	victim := c.Gate.Ring().Owner(gate.RouteKey("haswell", registry.ScenarioFull, registry.ObjectiveTime))
	c.Chaos[victim].SetFaults(chaos.Faults{ErrorRate: 0.4})

	for round := 0; round < 15; round++ {
		for _, k := range clusterKeys() {
			chaosPredict(t, cl, k.Machine, graph)
		}
	}

	if got := c.Chaos[victim].Stats().Errors; got == 0 {
		t.Fatal("proxy injected no errors — the suite tested nothing")
	}
}

// TestClusterChaosLatencyHedging: the owner of a hot key slows to
// 300ms; with a 25ms hedge trigger the gate races the next
// preference-order replica and answers far below the injected latency.
func TestClusterChaosLatencyHedging(t *testing.T) {
	c := testutil.StartCluster(t, 3,
		testutil.WithChaos(7),
		testutil.WithGateConfig(func(g *gate.Config) { g.HedgeDelay = 25 * time.Millisecond }),
	)
	cl := c.Client(client.WithRetries(0, time.Millisecond))
	graph := corpusGraph(t, 0)

	// Warm the key first: cold predicts may train and must never hedge
	// (a hedged cold miss would double-train).
	chaosPredict(t, cl, "haswell", graph)

	owner := c.Gate.Ring().Owner(gate.RouteKey("haswell", registry.ScenarioFull, registry.ObjectiveTime))
	c.Chaos[owner].SetFaults(chaos.Faults{Latency: 300 * time.Millisecond})

	start := time.Now()
	out := chaosPredict(t, cl, "haswell", graph)
	elapsed := time.Since(start)

	if out.Degraded {
		t.Fatal("hedged predict answered from the degraded path")
	}
	if elapsed >= 250*time.Millisecond {
		t.Fatalf("hedging did not beat the injected latency: %v", elapsed)
	}
	h, err := cl.GateHealth(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Hedges == 0 || h.HedgeWins == 0 {
		t.Fatalf("hedges=%d wins=%d, want both > 0", h.Hedges, h.HedgeWins)
	}
	// The slow replica answered late, not wrongly: no breaker damage.
	if st := h.Replicas[owner].State; st != api.ReplicaUp {
		t.Fatalf("slow owner marked %s, want up", st)
	}
}

// TestClusterChaosPartitionFailover: the owner's path black-holes
// (silence, not refusal). The per-attempt timeout converts the hang
// into a transport failure and the predict fails over within a bounded
// window instead of inheriting the partition's infinite wait.
func TestClusterChaosPartitionFailover(t *testing.T) {
	c := testutil.StartCluster(t, 3,
		testutil.WithChaos(11),
		testutil.WithGateConfig(func(g *gate.Config) {
			g.AttemptTimeout = 150 * time.Millisecond
			g.DisableHedge = true
		}),
	)
	cl := c.Client(client.WithRetries(0, time.Millisecond))
	graph := corpusGraph(t, 0)
	chaosPredict(t, cl, "haswell", graph)

	owner := c.Gate.Ring().Owner(gate.RouteKey("haswell", registry.ScenarioFull, registry.ObjectiveTime))
	c.Chaos[owner].SetFaults(chaos.Faults{Partition: true})

	start := time.Now()
	out := chaosPredict(t, cl, "haswell", graph)
	elapsed := time.Since(start)

	if out.Degraded {
		t.Fatal("partition failover answered from the degraded path")
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("failover took %v, want bounded by the attempt timeout", elapsed)
	}
	if got := c.Chaos[owner].Stats().Partitions; got == 0 {
		t.Fatal("proxy black-holed nothing — the suite tested nothing")
	}
	// Sustained black-holing walks the breaker down; traffic keeps
	// succeeding around it the whole way.
	for i := 0; i < 5; i++ {
		chaosPredict(t, cl, "haswell", graph)
	}
	c.WaitState(t, owner, api.ReplicaDown, 10*time.Second)
	chaosPredict(t, cl, "haswell", graph)
}

// TestClusterDeadlineShedE2E: a request whose X-Deadline budget cannot
// possibly be met is shed as a typed deadline_exceeded 504 — at the
// gate, and independently at a replica — while a generous budget passes
// untouched.
func TestClusterDeadlineShedE2E(t *testing.T) {
	c := testutil.StartCluster(t, 2)
	cl := c.Client(client.WithRetries(0, time.Millisecond))
	graph := corpusGraph(t, 0)
	chaosPredict(t, cl, "haswell", graph)

	body, err := json.Marshal(api.PredictRequest{
		Machine: "haswell", Objective: registry.ObjectiveTime, Graph: graph,
	})
	if err != nil {
		t.Fatal(err)
	}

	post := func(base, deadline string) (*http.Response, api.ErrorBody) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/predict", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if deadline != "" {
			req.Header.Set(api.DeadlineHeader, deadline)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb api.ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return resp, eb
	}

	for _, target := range []struct {
		name, base string
	}{
		{"gate", c.GateURL},
		{"replica", c.Replicas[0].URL},
	} {
		// 50µs of remaining budget: positive (so it passes admission and
		// exercises the in-flight timeout), but unmeetable.
		resp, eb := post(target.base, "0.050")
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("%s: tiny budget: status %d, want 504", target.name, resp.StatusCode)
		}
		if eb.Error.Code != api.CodeDeadlineExceeded {
			t.Fatalf("%s: tiny budget: body %+v, want code %s", target.name, eb, api.CodeDeadlineExceeded)
		}

		resp, _ = post(target.base, api.FormatDeadline(10*time.Second))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: generous budget: status %d, want 200", target.name, resp.StatusCode)
		}

		resp, eb = post(target.base, "soon")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: malformed deadline: status %d, want 400", target.name, resp.StatusCode)
		}
	}
}

// TestClusterDegradedServing: every replica dies. The gate still
// answers — from the last-known-good cache for a graph it has served,
// from the model-free heuristic for one it has not — and says so with
// degraded: true instead of 503ing the fleet's consumers.
func TestClusterDegradedServing(t *testing.T) {
	c := testutil.StartCluster(t, 2)
	cl := c.Client(client.WithRetries(0, time.Millisecond))
	graph := corpusGraph(t, 0)

	live := chaosPredict(t, cl, "haswell", graph)
	if live.Degraded {
		t.Fatal("healthy cluster served degraded")
	}

	for _, r := range c.Replicas {
		r.Kill()
	}

	cached := chaosPredict(t, cl, "haswell", graph)
	if !cached.Degraded || cached.DegradedSource != "cache" {
		t.Fatalf("degraded=%v source=%q, want cached last-known-good", cached.Degraded, cached.DegradedSource)
	}
	if len(cached.Picks) != len(live.Picks) {
		t.Fatalf("cached degraded answer lost picks: %d vs %d", len(cached.Picks), len(live.Picks))
	}

	fresh := chaosPredict(t, cl, "haswell", corpusGraph(t, 1))
	if !fresh.Degraded || fresh.DegradedSource != "heuristic" {
		t.Fatalf("degraded=%v source=%q, want heuristic fallback", fresh.Degraded, fresh.DegradedSource)
	}
	if len(fresh.Picks) == 0 {
		t.Fatal("heuristic degraded answer carries no picks")
	}
}
