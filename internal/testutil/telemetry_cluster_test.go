package testutil_test

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/client"
	"pnptuner/internal/loadgen"
	"pnptuner/internal/registry"
	"pnptuner/internal/telemetry"
	"pnptuner/internal/testutil"
)

// fetchTrace pulls one process's /v1/traces/{id}; ok=false on 404
// (the process never saw the trace, or evicted it).
func fetchTrace(t *testing.T, baseURL, id string) (telemetry.Trace, bool) {
	t.Helper()
	resp, err := http.Get(baseURL + api.PathTraces + "/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return telemetry.Trace{}, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s%s/%s: %d", baseURL, api.PathTraces, id, resp.StatusCode)
	}
	var tr telemetry.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr, true
}

// findSpan returns the first span with the given name, or nil.
func findSpan(tr telemetry.Trace, name string) *telemetry.Span {
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return &tr.Spans[i]
		}
	}
	return nil
}

// TestClusterTraceSpansGateAndReplica is the cross-hop tracing e2e: one
// gated predict carrying a caller-chosen X-Request-ID yields the SAME
// trace ID at both hops — the gate's /v1/traces/{id} holds the root
// span and the proxied attempt, the owning replica's /v1/traces/{id}
// holds its own root span plus the batcher's queue and forward spans —
// all with real timings. Then both processes' /metrics expositions are
// scraped through the pnpload parser and checked for the families the
// request must have moved.
func TestClusterTraceSpansGateAndReplica(t *testing.T) {
	c := testutil.StartCluster(t, 2)
	cl := c.Client(client.WithRetries(0, time.Millisecond))
	graph := corpusGraph(t, 0)
	req := api.PredictRequest{
		Machine: "haswell", Objective: registry.ObjectiveTime, Graph: graph,
	}

	// Warm the key first so the traced request exercises the serving
	// path (batcher → forward), not a one-off training.
	if _, err := cl.Predict(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	const traceID = "e2e-trace-0001"
	ctx := telemetry.WithTraceID(context.Background(), traceID)
	if _, err := cl.Predict(ctx, req); err != nil {
		t.Fatal(err)
	}

	// Gate half: root span for the HTTP request plus the replica attempt.
	gtr, ok := fetchTrace(t, c.GateURL, traceID)
	if !ok {
		t.Fatalf("gate has no trace %q", traceID)
	}
	if gtr.ID != traceID {
		t.Fatalf("gate trace ID = %q, want %q", gtr.ID, traceID)
	}
	root := findSpan(gtr, "http POST "+api.PathPredict)
	if root == nil {
		t.Fatalf("gate trace lacks the root span: %+v", gtr.Spans)
	}
	if root.DurNs <= 0 {
		t.Fatalf("gate root span has no duration: %+v", root)
	}
	attempt := findSpan(gtr, "gate.attempt")
	if attempt == nil {
		t.Fatalf("gate trace lacks the replica attempt span: %+v", gtr.Spans)
	}
	if attempt.DurNs <= 0 || attempt.Attrs["outcome"] != "ok" {
		t.Fatalf("attempt span = %+v, want positive duration and outcome ok", attempt)
	}

	// Replica half: the same ID, on exactly one replica (the request was
	// not hedged — the key is warm and the adaptive trigger has no p99
	// yet), carrying the replica's root span and the batcher spans.
	served := -1
	var rtr telemetry.Trace
	for i := range c.Replicas {
		if tr, ok := fetchTrace(t, c.Replicas[i].URL, traceID); ok {
			if served >= 0 {
				t.Fatalf("trace %q on replicas %d and %d; an unhedged predict touches one", traceID, served, i)
			}
			served, rtr = i, tr
		}
	}
	if served < 0 {
		t.Fatalf("no replica holds trace %q", traceID)
	}
	if rroot := findSpan(rtr, "http POST "+api.PathPredict); rroot == nil || rroot.DurNs <= 0 {
		t.Fatalf("replica root span missing or untimed: %+v", rtr.Spans)
	}
	if q := findSpan(rtr, "batch.queue"); q == nil || q.DurNs < 0 {
		t.Fatalf("replica trace lacks a batch.queue span: %+v", rtr.Spans)
	}
	fw := findSpan(rtr, "batch.forward")
	if fw == nil || fw.DurNs <= 0 {
		t.Fatalf("replica trace lacks a timed batch.forward span: %+v", rtr.Spans)
	}
	if fw.Attrs["batch_size"] == "" {
		t.Fatalf("forward span lacks batch_size: %+v", fw)
	}

	// Metrics: both processes expose parseable text with the families
	// the two predicts must have moved.
	gm, err := loadgen.ScrapeMetrics(context.Background(), c.GateURL)
	if err != nil {
		t.Fatal(err)
	}
	if v := gm[`pnpgate_http_requests_total{route="/v1/predict"}`]; v < 2 {
		t.Fatalf("gate predict request counter = %v, want >= 2", v)
	}
	if gm["pnpgate_served_total"] < 2 {
		t.Fatalf("pnpgate_served_total = %v, want >= 2", gm["pnpgate_served_total"])
	}
	for _, series := range []string{`pnpgate_replica_state{replica="0"}`, `pnpgate_replica_state{replica="1"}`} {
		if _, ok := gm[series]; !ok {
			t.Fatalf("gate exposition lacks %s", series)
		}
	}

	rm, err := loadgen.ScrapeMetrics(context.Background(), c.Replicas[served].URL)
	if err != nil {
		t.Fatal(err)
	}
	if v := rm[`pnp_http_requests_total{route="/v1/predict"}`]; v < 2 {
		t.Fatalf("replica predict request counter = %v, want >= 2", v)
	}
	if rm["pnp_batch_forward_seconds_count"] < 1 {
		t.Fatalf("pnp_batch_forward_seconds_count = %v, want >= 1", rm["pnp_batch_forward_seconds_count"])
	}
	if rm["pnp_registry_models_trained_total"]+rm["pnp_registry_models_fetched_total"] < 1 {
		t.Fatal("replica trained/fetched counters never moved")
	}
}
