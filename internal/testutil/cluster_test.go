package testutil_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/client"
	"pnptuner/internal/gate"
	"pnptuner/internal/kernels"
	"pnptuner/internal/registry"
	"pnptuner/internal/testutil"
)

// corpusGraph marshals one corpus region's graph for predict bodies.
func corpusGraph(t testing.TB, idx int) api.RawObject {
	t.Helper()
	b, err := json.Marshal(kernels.MustCompile().Regions[idx].Graph)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// clusterKeys is the test traffic mix: every machine × objective on the
// full scenario — four distinct model keys spread across the ring.
func clusterKeys() []registry.Key {
	var keys []registry.Key
	for _, m := range []string{"haswell", "skylake"} {
		for _, o := range []string{registry.ObjectiveTime, registry.ObjectiveEDP} {
			keys = append(keys, registry.Key{Machine: m, Scenario: registry.ScenarioFull, Objective: o})
		}
	}
	return keys
}

// TestClusterFaultInjection is the kill-a-replica-mid-traffic e2e:
// predicts keep succeeding through the outage (idempotent routes fail
// over), the gate marks the victim down, surviving replicas' async
// jobs stay visible, and a restarted victim walks half-open back to up
// and serves again.
func TestClusterFaultInjection(t *testing.T) {
	c := testutil.StartCluster(t, 3)
	cl := c.Client(client.WithRetries(0, time.Millisecond))
	ctx := context.Background()
	graph := corpusGraph(t, 0)
	keys := clusterKeys()

	predictAll := func(stage string) {
		t.Helper()
		for _, k := range keys {
			_, err := cl.Predict(ctx, api.PredictRequest{
				Machine: k.Machine, Objective: k.Objective, Graph: graph,
			})
			if err != nil {
				t.Fatalf("%s: predict %s: %v", stage, k, err)
			}
		}
	}
	predictAll("warm-up")

	// One async job per key, owner-routed; all finish quickly.
	region := kernels.MustCompile().Regions[0].ID
	var jobIDs []string
	for _, k := range keys {
		job, err := cl.TuneAsync(ctx, api.TuneRequest{
			Machine: k.Machine, Objective: k.Objective, Strategy: "bliss",
			RegionID: region, Budget: 2, Seed: 7, Async: true,
		})
		if err != nil {
			t.Fatalf("submit job for %s: %v", k, err)
		}
		jobIDs = append(jobIDs, job.ID)
	}
	for _, id := range jobIDs {
		if _, err := cl.Wait(ctx, id, 5*time.Millisecond); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}

	victim := c.Gate.Ring().Owner(gate.RouteKey("haswell", registry.ScenarioFull, registry.ObjectiveTime))
	victimPrefix := fmt.Sprintf("r%d-", victim)
	c.Replicas[victim].Kill()

	// Mid-outage, before any mark-down: idempotent traffic reroutes on
	// the spot — the client sees zero failures.
	predictAll("during outage")

	c.WaitState(t, victim, api.ReplicaDown, 5*time.Second)

	// After the mark-down window: sustained traffic, still zero 5xx.
	for round := 0; round < 5; round++ {
		predictAll("after mark-down")
	}

	// Survivors' jobs are all still there; the victim's replica-local
	// jobs are invisible while it is down.
	jobs, err := cl.ListJobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	listed := map[string]bool{}
	for _, j := range jobs {
		listed[j.ID] = true
	}
	for _, id := range jobIDs {
		onVictim := strings.HasPrefix(id, victimPrefix)
		if !onVictim && !listed[id] {
			t.Fatalf("survivor job %s lost from the merged listing: %v", id, listed)
		}
		if onVictim && listed[id] {
			t.Fatalf("down replica's job %s still listed", id)
		}
	}

	// Recovery: restart on the same address; probes walk the breaker
	// half-open → up, and the replica serves again.
	if err := c.Replicas[victim].Restart(); err != nil {
		t.Fatalf("restart replica %d: %v", victim, err)
	}
	c.WaitState(t, victim, api.ReplicaUp, 5*time.Second)
	predictAll("after recovery")

	h, err := cl.GateHealth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range h.Replicas {
		if rs.State != api.ReplicaUp {
			t.Fatalf("replica %d ended %s, want up", rs.Index, rs.State)
		}
	}
	if h.Failovers == 0 {
		t.Fatal("outage traffic recorded no failovers")
	}
}

// TestClusterTrainsOnce: 16 concurrent cold predicts for one key
// through the gate cause exactly one training fleet-wide, and peer
// replicas then serve the fetched blob bit-identically instead of
// retraining. Run under -race, this is also the concurrency check on
// the gate's warm-up single flight.
func TestClusterTrainsOnce(t *testing.T) {
	c := testutil.StartCluster(t, 3, testutil.WithTrainDelay(30*time.Millisecond))
	cl := c.Client(client.WithRetries(0, time.Millisecond))
	ctx := context.Background()
	graph := corpusGraph(t, 0)

	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.Predict(ctx, api.PredictRequest{
				Machine: "haswell", Objective: registry.ObjectiveTime, Graph: graph,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cold predict %d: %v", i, err)
		}
	}
	if got := c.TotalTrains(); got != 1 {
		t.Fatalf("fleet trained %d times for one key, want exactly 1", got)
	}

	key := registry.Key{Machine: "haswell", Scenario: registry.ScenarioFull, Objective: registry.ObjectiveTime}
	owner := c.Gate.Ring().Owner(gate.RouteKey(key.Machine, key.Scenario, key.Objective))
	readBlob := func(i int) []byte {
		t.Helper()
		rc, err := c.ReplicaClient(i).ModelBlob(ctx, key.ID())
		if err != nil {
			t.Fatalf("blob from replica %d: %v", i, err)
		}
		defer rc.Close()
		data, err := io.ReadAll(rc)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	want := readBlob(owner)

	// Hitting the other replicas directly forces their own resolve path:
	// they must fetch the owner's blob, not train.
	for i := range c.Replicas {
		if i == owner {
			continue
		}
		if _, err := c.ReplicaClient(i).Predict(ctx, api.PredictRequest{
			Machine: key.Machine, Objective: key.Objective, Graph: graph,
		}); err != nil {
			t.Fatalf("direct predict on replica %d: %v", i, err)
		}
		if got := readBlob(i); !bytes.Equal(got, want) {
			t.Fatalf("replica %d serves a different blob than the trainer (%d vs %d bytes)", i, len(got), len(want))
		}
	}
	if got := c.TotalTrains(); got != 1 {
		t.Fatalf("peer replication retrained: fleet trains = %d, want 1", got)
	}
}
