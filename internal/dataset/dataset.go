// Package dataset builds the exhaustive measurement dataset the paper's
// training and evaluation rest on: every OpenMP region of the corpus
// executed (on the simulated testbed) at every Table I point — 68 regions
// × 508 (cap, config) combinations per machine. The exhaustive sweep is
// simultaneously the oracle the paper normalizes against and the label
// source for training.
package dataset

import (
	"fmt"
	"sync"

	"pnptuner/internal/hw"
	"pnptuner/internal/kernels"
	"pnptuner/internal/omp"
	"pnptuner/internal/papi"
	"pnptuner/internal/space"
)

// RegionData holds the full measurement grid of one region on one machine.
type RegionData struct {
	Region *kernels.Region
	// Results[capIdx][cfgIdx] is the simulated execution at that point.
	Results [][]omp.Result
	// Counters are the PAPI samples used as dynamic features.
	Counters papi.Counters

	// BestTimeCfg[capIdx] is the config index minimizing time at that cap
	// (the scenario-1 oracle and training label).
	BestTimeCfg []int
	// BestEDPJoint is the joint (cap, config) label minimizing EDP
	// (the scenario-2 oracle and training label).
	BestEDPJoint int
}

// BestTime returns the oracle execution time at capIdx.
func (rd *RegionData) BestTime(capIdx int) float64 {
	return rd.Results[capIdx][rd.BestTimeCfg[capIdx]].TimeSec
}

// DefaultResult returns the default-config execution at capIdx.
func (rd *RegionData) DefaultResult(capIdx int, s *space.Space) omp.Result {
	return rd.Results[capIdx][s.DefaultIndex()]
}

// BestEDP returns the oracle EDP over the joint space.
func (rd *RegionData) BestEDP(s *space.Space) float64 {
	ci, ki := s.SplitJoint(rd.BestEDPJoint)
	return rd.Results[ci][ki].EDP()
}

// Dataset is the exhaustive sweep for one machine.
type Dataset struct {
	Machine *hw.Machine
	Space   *space.Space
	Corpus  *kernels.Corpus
	Regions []*RegionData
	byID    map[string]*RegionData
}

// Region returns the measurement grid for a region ID, or nil.
func (d *Dataset) Region(id string) *RegionData { return d.byID[id] }

var (
	buildMu    sync.Mutex
	buildCache = map[string]*Dataset{}
)

// Build runs the exhaustive sweep for machine m over the built-in corpus.
// Results are cached per machine (the sweep is deterministic).
func Build(m *hw.Machine) (*Dataset, error) {
	buildMu.Lock()
	defer buildMu.Unlock()
	if d, ok := buildCache[m.Name]; ok {
		return d, nil
	}
	corpus, err := kernels.Compile()
	if err != nil {
		return nil, err
	}
	d, err := build(m, corpus)
	if err != nil {
		return nil, err
	}
	buildCache[m.Name] = d
	return d, nil
}

// MustBuild is Build, panicking on error.
func MustBuild(m *hw.Machine) *Dataset {
	d, err := Build(m)
	if err != nil {
		panic(err)
	}
	return d
}

func build(m *hw.Machine, corpus *kernels.Corpus) (*Dataset, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := space.New(m)
	ex := omp.NewExecutor(m)
	d := &Dataset{Machine: m, Space: s, Corpus: corpus, byID: map[string]*RegionData{}}

	for _, r := range corpus.Regions {
		rd := &RegionData{
			Region:      r,
			Results:     make([][]omp.Result, len(s.Caps())),
			BestTimeCfg: make([]int, len(s.Caps())),
			Counters:    papi.Collect(&r.Info.Model, m),
		}
		bestEDP := -1.0
		for ci, capW := range s.Caps() {
			rd.Results[ci] = make([]omp.Result, s.NumConfigs())
			bestT := -1.0
			for ki, cfg := range s.Configs {
				res := ex.Run(&r.Info.Model, r.Seed, cfg, capW)
				rd.Results[ci][ki] = res
				if bestT < 0 || res.TimeSec < bestT {
					bestT = res.TimeSec
					rd.BestTimeCfg[ci] = ki
				}
				if edp := res.EDP(); bestEDP < 0 || edp < bestEDP {
					bestEDP = edp
					rd.BestEDPJoint = s.JointIndex(ci, ki)
				}
			}
		}
		d.Regions = append(d.Regions, rd)
		d.byID[r.ID] = rd
	}
	return d, nil
}

// Minibatches slices a sample permutation into contiguous minibatches of
// the given size (the last batch may be short). It is the iterator the
// batched trainer walks once per epoch: each returned index set becomes
// one block-diagonal graph batch and one optimizer step.
func Minibatches(perm []int, size int) [][]int {
	return MinibatchesInto(nil, perm, size)
}

// MinibatchesInto is Minibatches reusing dst's backing storage: the
// trainer passes the previous epoch's slice back in, so the per-epoch
// re-slicing of a fresh permutation allocates nothing in steady state.
// The returned batches alias perm, which the caller likewise reuses (see
// tensor.RNG.PermInto).
func MinibatchesInto(dst [][]int, perm []int, size int) [][]int {
	if size < 1 {
		size = 1
	}
	dst = dst[:0]
	for lo := 0; lo < len(perm); lo += size {
		hi := lo + size
		if hi > len(perm) {
			hi = len(perm)
		}
		dst = append(dst, perm[lo:hi])
	}
	return dst
}

// Fold is one leave-one-out cross-validation split: the regions of one
// application validate a model trained on all other applications.
type Fold struct {
	App   string
	Train []*RegionData
	Val   []*RegionData
}

// LOOCVFolds returns one fold per application, in figure order.
func (d *Dataset) LOOCVFolds() []Fold {
	var folds []Fold
	for _, app := range kernels.AppNames() {
		f := Fold{App: app}
		for _, rd := range d.Regions {
			if rd.Region.App == app {
				f.Val = append(f.Val, rd)
			} else {
				f.Train = append(f.Train, rd)
			}
		}
		if len(f.Val) > 0 {
			folds = append(folds, f)
		}
	}
	return folds
}

// FoldByApp returns the LOOCV fold holding out app, or ok=false if the
// corpus has no such application.
func (d *Dataset) FoldByApp(app string) (Fold, bool) {
	for _, f := range d.LOOCVFolds() {
		if f.App == app {
			return f, true
		}
	}
	return Fold{}, false
}

// FullFold returns the production split: every region trains, nothing is
// held out. This is what a serving model trains on — LOOCV exists to
// evaluate the method, not to ship it.
func (d *Dataset) FullFold() Fold {
	return Fold{App: "", Train: d.Regions}
}

// SanityCheck verifies dataset invariants: oracle labels index minimal
// entries, defaults exist, and every grid cell is populated.
func (d *Dataset) SanityCheck() error {
	for _, rd := range d.Regions {
		if len(rd.Results) != len(d.Space.Caps()) {
			return fmt.Errorf("dataset: %s: missing caps", rd.Region.ID)
		}
		for ci := range rd.Results {
			if len(rd.Results[ci]) != d.Space.NumConfigs() {
				return fmt.Errorf("dataset: %s: missing configs at cap %d", rd.Region.ID, ci)
			}
			best := rd.BestTimeCfg[ci]
			for ki, res := range rd.Results[ci] {
				if res.TimeSec <= 0 {
					return fmt.Errorf("dataset: %s: non-positive time at (%d,%d)", rd.Region.ID, ci, ki)
				}
				if res.TimeSec < rd.Results[ci][best].TimeSec {
					return fmt.Errorf("dataset: %s: label not optimal at cap %d", rd.Region.ID, ci)
				}
			}
		}
		bc, bk := d.Space.SplitJoint(rd.BestEDPJoint)
		bestEDP := rd.Results[bc][bk].EDP()
		for ci := range rd.Results {
			for ki := range rd.Results[ci] {
				if rd.Results[ci][ki].EDP() < bestEDP {
					return fmt.Errorf("dataset: %s: EDP label not optimal", rd.Region.ID)
				}
			}
		}
	}
	return nil
}
