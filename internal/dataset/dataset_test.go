package dataset

import (
	"testing"

	"pnptuner/internal/hw"
	"pnptuner/internal/metrics"
)

func TestBuildHaswell(t *testing.T) {
	d, err := Build(hw.Haswell())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regions) != 68 {
		t.Fatalf("regions = %d, want 68", len(d.Regions))
	}
	if err := d.SanityCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIsCached(t *testing.T) {
	a := MustBuild(hw.Haswell())
	b := MustBuild(hw.Haswell())
	if a != b {
		t.Fatal("dataset not cached")
	}
}

func TestLOOCVFolds(t *testing.T) {
	d := MustBuild(hw.Haswell())
	folds := d.LOOCVFolds()
	if len(folds) != 30 {
		t.Fatalf("folds = %d, want 30 (one per app)", len(folds))
	}
	total := 0
	for _, f := range folds {
		total += len(f.Val)
		if len(f.Train)+len(f.Val) != 68 {
			t.Fatalf("fold %s: %d+%d != 68", f.App, len(f.Train), len(f.Val))
		}
		for _, rd := range f.Val {
			if rd.Region.App != f.App {
				t.Fatalf("fold %s contains region of %s", f.App, rd.Region.App)
			}
		}
		for _, rd := range f.Train {
			if rd.Region.App == f.App {
				t.Fatalf("fold %s leaks validation app into training", f.App)
			}
		}
	}
	if total != 68 {
		t.Fatalf("folds cover %d regions, want 68", total)
	}
}

func TestOracleBeatsDefault(t *testing.T) {
	// The tuning problem must be non-trivial: at the lowest cap the oracle
	// should beat the default by a solid geomean margin.
	d := MustBuild(hw.Haswell())
	var sps []float64
	for _, rd := range d.Regions {
		def := rd.DefaultResult(0, d.Space).TimeSec
		sps = append(sps, metrics.Speedup(def, rd.BestTime(0)))
	}
	gm := metrics.GeoMean(sps)
	if gm < 1.05 {
		t.Fatalf("oracle geomean speedup at 40W = %.3f; landscape too flat", gm)
	}
	if gm > 4 {
		t.Fatalf("oracle geomean speedup at 40W = %.3f; landscape implausibly steep", gm)
	}
}

func TestOracleLabelsVaryAcrossCaps(t *testing.T) {
	// If the best config were identical at every cap, power-aware tuning
	// would be pointless; the paper's premise is that it varies.
	d := MustBuild(hw.Haswell())
	varies := 0
	for _, rd := range d.Regions {
		first := rd.BestTimeCfg[0]
		for _, b := range rd.BestTimeCfg[1:] {
			if b != first {
				varies++
				break
			}
		}
	}
	if varies < 10 {
		t.Fatalf("only %d/68 regions change oracle config across caps", varies)
	}
}

func TestOracleLabelsVaryAcrossRegions(t *testing.T) {
	d := MustBuild(hw.Haswell())
	distinct := map[int]bool{}
	for _, rd := range d.Regions {
		distinct[rd.BestTimeCfg[0]] = true
	}
	if len(distinct) < 5 {
		t.Fatalf("only %d distinct oracle configs at 40W; classification trivial", len(distinct))
	}
}

func TestEDPOracleUsesVariedCaps(t *testing.T) {
	// The EDP-optimal power level should not be a single cap for all
	// regions (otherwise scenario 2 degenerates).
	d := MustBuild(hw.Haswell())
	caps := map[int]int{}
	for _, rd := range d.Regions {
		ci, _ := d.Space.SplitJoint(rd.BestEDPJoint)
		caps[ci]++
	}
	if len(caps) < 2 {
		t.Fatalf("EDP oracle picked one cap for all regions: %v", caps)
	}
}

func TestRegionLookup(t *testing.T) {
	d := MustBuild(hw.Haswell())
	id := d.Regions[0].Region.ID
	if d.Region(id) != d.Regions[0] {
		t.Fatal("lookup broken")
	}
	if d.Region("missing") != nil {
		t.Fatal("lookup invented a region")
	}
}
