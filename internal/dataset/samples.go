package dataset

import (
	"sync"

	"pnptuner/internal/omp"
)

// MeasuredSample is one real execution fed back from the measurement
// loop (internal/measure): a grid coordinate on one region plus the
// observed result. Unlike the exhaustive sweep, measured results carry
// run-to-run noise, so repeated samples of the same cell differ — the
// mean over them is what refines the grid.
type MeasuredSample struct {
	RegionID string
	CapIdx   int
	CfgIdx   int
	Result   omp.Result
}

// SampleLog accumulates measured samples for one model key across tune
// sessions. Safe for concurrent use: sessions append concurrently while
// a background retrain snapshots.
type SampleLog struct {
	mu         sync.Mutex
	samples    []MeasuredSample
	byRegion   map[string]int
	sinceTrain int
}

// Append records samples from one (possibly partial) tune session.
func (l *SampleLog) Append(ss ...MeasuredSample) {
	if len(ss) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.byRegion == nil {
		l.byRegion = map[string]int{}
	}
	l.samples = append(l.samples, ss...)
	l.sinceTrain += len(ss)
	for _, s := range ss {
		l.byRegion[s.RegionID]++
	}
}

// Total returns the number of samples ever recorded.
func (l *SampleLog) Total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// SinceTrain returns the samples accumulated since the last MarkTrained
// — the refresh-threshold counter.
func (l *SampleLog) SinceTrain() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceTrain
}

// MarkTrained resets the since-train counter, returning how many samples
// the caller just consumed into a retrain.
func (l *SampleLog) MarkTrained() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.sinceTrain
	l.sinceTrain = 0
	return n
}

// PerRegion returns a copy of the per-region sample counts.
func (l *SampleLog) PerRegion() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int, len(l.byRegion))
	for k, v := range l.byRegion {
		out[k] = v
	}
	return out
}

// Snapshot returns a copy of every recorded sample.
func (l *SampleLog) Snapshot() []MeasuredSample {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]MeasuredSample, len(l.samples))
	copy(out, l.samples)
	return out
}

// WithSamples returns a derived dataset where each measured grid cell is
// replaced by the mean over its samples (labels recomputed for affected
// regions). The receiver — typically the process-wide Build cache — is
// never mutated: unaffected regions are shared, affected ones deep-
// copied. Samples referencing unknown regions or out-of-range cells are
// ignored.
func (d *Dataset) WithSamples(samples []MeasuredSample) *Dataset {
	type cell struct {
		ci, ki int
	}
	agg := map[string]map[cell][]omp.Result{}
	for _, s := range samples {
		if d.byID[s.RegionID] == nil {
			continue
		}
		if s.CapIdx < 0 || s.CapIdx >= len(d.Space.Caps()) ||
			s.CfgIdx < 0 || s.CfgIdx >= d.Space.NumConfigs() {
			continue
		}
		c := cell{s.CapIdx, s.CfgIdx}
		if agg[s.RegionID] == nil {
			agg[s.RegionID] = map[cell][]omp.Result{}
		}
		agg[s.RegionID][c] = append(agg[s.RegionID][c], s.Result)
	}
	if len(agg) == 0 {
		return d
	}

	out := &Dataset{
		Machine: d.Machine,
		Space:   d.Space,
		Corpus:  d.Corpus,
		Regions: make([]*RegionData, len(d.Regions)),
		byID:    make(map[string]*RegionData, len(d.byID)),
	}
	for i, rd := range d.Regions {
		cells, touched := agg[rd.Region.ID]
		if !touched {
			out.Regions[i] = rd
			out.byID[rd.Region.ID] = rd
			continue
		}
		nrd := &RegionData{
			Region:      rd.Region,
			Results:     make([][]omp.Result, len(rd.Results)),
			Counters:    rd.Counters,
			BestTimeCfg: make([]int, len(rd.BestTimeCfg)),
		}
		for ci := range rd.Results {
			nrd.Results[ci] = append([]omp.Result(nil), rd.Results[ci]...)
		}
		for c, rs := range cells {
			nrd.Results[c.ci][c.ki] = meanResult(rs)
		}
		// Recompute the oracle labels over the refined grid.
		bestEDP := -1.0
		for ci := range nrd.Results {
			bestT := -1.0
			for ki, res := range nrd.Results[ci] {
				if bestT < 0 || res.TimeSec < bestT {
					bestT = res.TimeSec
					nrd.BestTimeCfg[ci] = ki
				}
				if edp := res.EDP(); bestEDP < 0 || edp < bestEDP {
					bestEDP = edp
					nrd.BestEDPJoint = d.Space.JointIndex(ci, ki)
				}
			}
		}
		out.Regions[i] = nrd
		out.byID[rd.Region.ID] = nrd
	}
	return out
}

// meanResult averages measured executions of one grid cell.
func meanResult(rs []omp.Result) omp.Result {
	var out omp.Result
	n := float64(len(rs))
	for _, r := range rs {
		out.TimeSec += r.TimeSec / n
		out.PkgEnergyJ += r.PkgEnergyJ / n
		out.DRAMEnergyJ += r.DRAMEnergyJ / n
		out.FreqGHz += r.FreqGHz / n
		out.Utilization += r.Utilization / n
		out.Throttled = out.Throttled || r.Throttled
	}
	return out
}
