// Package programl builds flow-aware program multigraphs from outlined IR
// functions, following the PROGRAML representation (Cummins et al., ICML
// 2021): one vertex per instruction, separate vertices for variables and
// constants, and three typed edge relations — control flow between
// instructions, data flow through values, and call flow to callees.
package programl

import (
	"fmt"
	"strings"

	"pnptuner/internal/ir"
)

// NodeKind classifies graph vertices.
type NodeKind int

// Vertex kinds, mirroring PROGRAML's instruction/variable/constant split.
const (
	KindInstruction NodeKind = iota
	KindVariable
	KindConstant
)

func (k NodeKind) String() string {
	switch k {
	case KindInstruction:
		return "instruction"
	case KindVariable:
		return "variable"
	case KindConstant:
		return "constant"
	}
	return "?"
}

// Relation is the typed-edge flavour.
type Relation int

// Edge relations. NumRelations counts them; the RGCN allocates one weight
// matrix per relation and direction.
const (
	RelControl Relation = iota
	RelData
	RelCall
	NumRelations
)

func (r Relation) String() string {
	switch r {
	case RelControl:
		return "control"
	case RelData:
		return "data"
	case RelCall:
		return "call"
	}
	return "?"
}

// Node is one graph vertex. Text is the normalized IR token sequence the
// embedding is keyed on; Token is filled by the vocabulary.
type Node struct {
	Kind  NodeKind
	Text  string
	Token int
}

// Edge is one typed, directed edge.
type Edge struct {
	Src, Dst int
	Rel      Relation
}

// Graph is a flow-aware program multigraph for one OpenMP region.
type Graph struct {
	RegionID string
	Nodes    []Node
	Edges    []Edge
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// Validate checks structural integrity — the guard the serving path runs
// on client-supplied graphs before they reach the batch engine, whose
// adjacency builder indexes node arrays without bounds checks.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("programl: %s: graph has no nodes", g.RegionID)
	}
	for i, n := range g.Nodes {
		if n.Kind < KindInstruction || n.Kind > KindConstant {
			return fmt.Errorf("programl: %s: node %d has unknown kind %d", g.RegionID, i, n.Kind)
		}
		if n.Token < 0 {
			return fmt.Errorf("programl: %s: node %d has negative token %d", g.RegionID, i, n.Token)
		}
	}
	for i, e := range g.Edges {
		if e.Src < 0 || e.Src >= len(g.Nodes) || e.Dst < 0 || e.Dst >= len(g.Nodes) {
			return fmt.Errorf("programl: %s: edge %d (%d→%d) out of range [0,%d)",
				g.RegionID, i, e.Src, e.Dst, len(g.Nodes))
		}
		if e.Rel < RelControl || e.Rel >= NumRelations {
			return fmt.Errorf("programl: %s: edge %d has unknown relation %d", g.RegionID, i, e.Rel)
		}
	}
	return nil
}

// Stats summarizes the graph for logs and docs.
func (g *Graph) Stats() string {
	per := map[Relation]int{}
	for _, e := range g.Edges {
		per[e.Rel]++
	}
	return fmt.Sprintf("%s: %d nodes, %d edges (control %d, data %d, call %d)",
		g.RegionID, len(g.Nodes), len(g.Edges), per[RelControl], per[RelData], per[RelCall])
}

// builder accumulates graph state during construction.
type builder struct {
	g         *Graph
	instNode  map[*ir.Instr]int
	varNode   map[ir.Value]int
	constNode map[string]int
	extNode   map[string]int
}

func (b *builder) addNode(kind NodeKind, text string) int {
	b.g.Nodes = append(b.g.Nodes, Node{Kind: kind, Text: text})
	return len(b.g.Nodes) - 1
}

func (b *builder) addEdge(src, dst int, rel Relation) {
	b.g.Edges = append(b.g.Edges, Edge{Src: src, Dst: dst, Rel: rel})
}

// FromFunction builds the PROGRAML graph of one (outlined) IR function.
func FromFunction(regionID string, f *ir.Function) (*Graph, error) {
	if f.IsDecl || len(f.Blocks) == 0 {
		return nil, fmt.Errorf("programl: %s: cannot graph a declaration", f.Nam)
	}
	b := &builder{
		g:         &Graph{RegionID: regionID},
		instNode:  map[*ir.Instr]int{},
		varNode:   map[ir.Value]int{},
		constNode: map[string]int{},
		extNode:   map[string]int{},
	}

	// Instruction vertices.
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			b.instNode[in] = b.addNode(KindInstruction, InstrText(in))
		}
	}

	// Control-flow edges: sequential within a block, terminator to each
	// successor's first instruction.
	for _, blk := range f.Blocks {
		for i := 0; i+1 < len(blk.Instrs); i++ {
			b.addEdge(b.instNode[blk.Instrs[i]], b.instNode[blk.Instrs[i+1]], RelControl)
		}
		term := blk.Terminator()
		if term == nil {
			return nil, fmt.Errorf("programl: %s: block %s unterminated", f.Nam, blk.Nam)
		}
		for _, succ := range blk.Succs() {
			if len(succ.Instrs) == 0 {
				return nil, fmt.Errorf("programl: %s: empty successor %s", f.Nam, succ.Nam)
			}
			b.addEdge(b.instNode[term], b.instNode[succ.Instrs[0]], RelControl)
		}
	}

	// Data-flow and call edges.
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			dst := b.instNode[in]
			for oi, op := range in.Operands {
				src, ok := b.operandNode(op)
				if !ok {
					continue
				}
				// A store writes its pointer operand: direction instr→var.
				if in.Op == ir.OpStore && oi == 1 {
					b.addEdge(dst, src, RelData)
					continue
				}
				b.addEdge(src, dst, RelData)
			}
			if in.Op == ir.OpCall {
				callee := b.externalNode(in.Callee)
				b.addEdge(dst, callee, RelCall)
				b.addEdge(callee, dst, RelCall)
			}
		}
	}
	return b.g, nil
}

// operandNode returns the vertex for an operand, creating variable and
// constant vertices on demand. Instruction results map to the defining
// instruction's vertex (ok=false only for nil operands).
func (b *builder) operandNode(op ir.Value) (int, bool) {
	switch v := op.(type) {
	case *ir.Instr:
		n, ok := b.instNode[v]
		return n, ok
	case *ir.Const:
		key := v.Ty.String() + " " + bucketConst(v.Text)
		if n, ok := b.constNode[key]; ok {
			return n, true
		}
		n := b.addNode(KindConstant, "const "+key)
		b.constNode[key] = n
		return n, true
	case *ir.Arg:
		if n, ok := b.varNode[v]; ok {
			return n, true
		}
		n := b.addNode(KindVariable, "param "+v.Ty.String())
		b.varNode[v] = n
		return n, true
	case *ir.Global:
		if n, ok := b.varNode[v]; ok {
			return n, true
		}
		text := "global " + v.Elem.String()
		if len(v.Dims) > 0 {
			text = fmt.Sprintf("global array%dd %s", len(v.Dims), v.Elem)
		}
		n := b.addNode(KindVariable, text)
		b.varNode[v] = n
		return n, true
	case *ir.Function:
		return b.externalNode(v.Nam), true
	}
	return 0, false
}

func (b *builder) externalNode(name string) int {
	if n, ok := b.extNode[name]; ok {
		return n
	}
	n := b.addNode(KindInstruction, "declare @"+name)
	b.extNode[name] = n
	return n
}

// InstrText returns the normalized token text of an instruction: opcode
// plus the type-level detail that distinguishes its behaviour, with SSA
// names stripped (PROGRAML normalizes identifiers away).
func InstrText(in *ir.Instr) string {
	switch in.Op {
	case ir.OpICmp, ir.OpFCmp:
		return fmt.Sprintf("%s %s %s", in.Op, in.Pred, in.Operands[0].Type())
	case ir.OpCall:
		return "call @" + in.Callee
	case ir.OpLoad:
		return "load " + in.Ty.String()
	case ir.OpStore:
		return "store " + in.Operands[0].Type().String()
	case ir.OpBr:
		return "br"
	case ir.OpCondBr:
		return "br i1"
	case ir.OpRet:
		if len(in.Operands) == 0 {
			return "ret void"
		}
		return "ret " + in.Operands[0].Type().String()
	case ir.OpAlloca:
		return "alloca"
	case ir.OpGEP:
		return "getelementptr"
	case ir.OpPhi:
		return "phi " + in.Ty.String()
	default:
		return fmt.Sprintf("%s %s", in.Op, in.Ty)
	}
}

// bucketConst maps a constant literal to a coarse bucket so the vocabulary
// stays closed: zero, one, small, large, and floating variants.
func bucketConst(text string) string {
	neg := strings.HasPrefix(text, "-")
	t := strings.TrimPrefix(text, "-")
	isFloat := strings.ContainsAny(t, ".eE") || t == "true" || t == "false"
	switch t {
	case "0", "0.0":
		return "zero"
	case "1", "1.0":
		if neg {
			return "negone"
		}
		return "one"
	case "true", "false":
		return t
	}
	if isFloat {
		return "float"
	}
	if len(t) <= 2 {
		return "small"
	}
	return "large"
}
