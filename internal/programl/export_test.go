package programl

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDOTContainsAllNodesAndColors(t *testing.T) {
	g := buildGraph(t)
	dot := g.DOT()
	if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(dot, "}\n") {
		t.Fatal("malformed DOT envelope")
	}
	for _, want := range []string{"shape=box", "shape=ellipse", "shape=diamond",
		"color=black", "color=blue", "color=red"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	if got := strings.Count(dot, "->"); got != len(g.Edges) {
		t.Errorf("DOT has %d edges, want %d", got, len(g.Edges))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := buildGraph(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.RegionID != g.RegionID || len(back.Nodes) != len(g.Nodes) || len(back.Edges) != len(g.Edges) {
		t.Fatal("round trip lost structure")
	}
	for i := range g.Nodes {
		if back.Nodes[i] != g.Nodes[i] {
			t.Fatalf("node %d differs", i)
		}
	}
	for i := range g.Edges {
		if back.Edges[i] != g.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestUnmarshalRejectsCorruptGraphs(t *testing.T) {
	cases := []string{
		`{"nodes":[{"kind":"alien","text":"x"}],"edges":[]}`,
		`{"nodes":[{"kind":"variable","text":"x"}],"edges":[{"src":0,"dst":5,"rel":"data"}]}`,
		`{"nodes":[{"kind":"variable","text":"x"}],"edges":[{"src":0,"dst":0,"rel":"teleport"}]}`,
		`{invalid json`,
	}
	for i, src := range cases {
		var g Graph
		if err := g.UnmarshalJSON([]byte(src)); err == nil {
			t.Errorf("case %d: accepted corrupt graph", i)
		}
	}
}
