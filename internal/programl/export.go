package programl

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// DOT renders the graph in Graphviz format: instruction vertices as boxes,
// variables as ellipses, constants as diamonds; edge colours by relation
// (control black, data blue, call red) as in the PROGRAML paper's figures.
func (g *Graph) DOT() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "digraph %q {\n", g.RegionID)
	b.WriteString("  rankdir=TB;\n")
	for i, n := range g.Nodes {
		shape := "box"
		switch n.Kind {
		case KindVariable:
			shape = "ellipse"
		case KindConstant:
			shape = "diamond"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", i, n.Text, shape)
	}
	for _, e := range g.Edges {
		color := "black"
		switch e.Rel {
		case RelData:
			color = "blue"
		case RelCall:
			color = "red"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [color=%s];\n", e.Src, e.Dst, color)
	}
	b.WriteString("}\n")
	return b.String()
}

// jsonGraph is the serialization schema, compatible in spirit with
// PROGRAML's protobuf export.
type jsonGraph struct {
	RegionID string     `json:"region_id"`
	Nodes    []jsonNode `json:"nodes"`
	Edges    []jsonEdge `json:"edges"`
}

type jsonNode struct {
	Kind  string `json:"kind"`
	Text  string `json:"text"`
	Token int    `json:"token"`
}

type jsonEdge struct {
	Src int    `json:"src"`
	Dst int    `json:"dst"`
	Rel string `json:"rel"`
}

// MarshalJSON serializes the graph.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{RegionID: g.RegionID}
	for _, n := range g.Nodes {
		jg.Nodes = append(jg.Nodes, jsonNode{Kind: n.Kind.String(), Text: n.Text, Token: n.Token})
	}
	for _, e := range g.Edges {
		jg.Edges = append(jg.Edges, jsonEdge{Src: e.Src, Dst: e.Dst, Rel: e.Rel.String()})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON deserializes a graph produced by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("programl: decode graph: %w", err)
	}
	kinds := map[string]NodeKind{
		"instruction": KindInstruction, "variable": KindVariable, "constant": KindConstant,
	}
	rels := map[string]Relation{"control": RelControl, "data": RelData, "call": RelCall}
	g.RegionID = jg.RegionID
	g.Nodes = g.Nodes[:0]
	g.Edges = g.Edges[:0]
	for _, n := range jg.Nodes {
		k, ok := kinds[n.Kind]
		if !ok {
			return fmt.Errorf("programl: unknown node kind %q", n.Kind)
		}
		g.Nodes = append(g.Nodes, Node{Kind: k, Text: n.Text, Token: n.Token})
	}
	for _, e := range jg.Edges {
		r, ok := rels[e.Rel]
		if !ok {
			return fmt.Errorf("programl: unknown relation %q", e.Rel)
		}
		if e.Src < 0 || e.Src >= len(g.Nodes) || e.Dst < 0 || e.Dst >= len(g.Nodes) {
			return fmt.Errorf("programl: edge (%d,%d) out of range", e.Src, e.Dst)
		}
		g.Edges = append(g.Edges, Edge{Src: e.Src, Dst: e.Dst, Rel: r})
	}
	return nil
}
