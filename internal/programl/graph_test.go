package programl

import (
	"testing"

	"pnptuner/internal/frontend"
)

const src = `
const int N = 128;
double A[N][N];
double x[N];
double y[N];

void mvt_kernel() {
  #pragma omp parallel for
  for (i = 0; i < N; i++) {
    double s = 0.0;
    for (j = 0; j < N; j++) {
      s += A[i][j] * x[j];
    }
    y[i] = s + sqrt(y[i]);
  }
}
`

func buildGraph(t *testing.T) *Graph {
	t.Helper()
	prog, low, err := frontend.Compile("mvt", src)
	if err != nil {
		t.Fatal(err)
	}
	rf := low.RegionFunc[prog.Regions[0].ID]
	g, err := FromFunction(prog.Regions[0].ID, rf)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphHasAllNodeKinds(t *testing.T) {
	g := buildGraph(t)
	seen := map[NodeKind]int{}
	for _, n := range g.Nodes {
		seen[n.Kind]++
	}
	if seen[KindInstruction] == 0 || seen[KindVariable] == 0 || seen[KindConstant] == 0 {
		t.Fatalf("node kinds: %v", seen)
	}
}

func TestGraphHasAllRelations(t *testing.T) {
	g := buildGraph(t)
	seen := map[Relation]int{}
	for _, e := range g.Edges {
		seen[e.Rel]++
	}
	if seen[RelControl] == 0 || seen[RelData] == 0 || seen[RelCall] == 0 {
		t.Fatalf("edge relations: %v", seen)
	}
}

func TestGraphEdgesInRange(t *testing.T) {
	g := buildGraph(t)
	for _, e := range g.Edges {
		if e.Src < 0 || e.Src >= len(g.Nodes) || e.Dst < 0 || e.Dst >= len(g.Nodes) {
			t.Fatalf("edge %v out of range (%d nodes)", e, len(g.Nodes))
		}
		if e.Rel < 0 || e.Rel >= NumRelations {
			t.Fatalf("edge %v has bad relation", e)
		}
	}
}

func TestControlFlowFormsLoop(t *testing.T) {
	// The region is a loop, so some control edge must point "backwards"
	// (to an earlier instruction vertex).
	g := buildGraph(t)
	back := false
	for _, e := range g.Edges {
		if e.Rel == RelControl && e.Dst <= e.Src {
			back = true
			break
		}
	}
	if !back {
		t.Fatal("no control back-edge found; loop structure lost")
	}
}

func TestConstantsAreDeduplicated(t *testing.T) {
	g := buildGraph(t)
	seen := map[string]int{}
	for _, n := range g.Nodes {
		if n.Kind == KindConstant {
			seen[n.Text]++
			if seen[n.Text] > 1 {
				t.Fatalf("constant %q duplicated", n.Text)
			}
		}
	}
}

func TestCallEdgesAreBidirectional(t *testing.T) {
	g := buildGraph(t)
	fwd := map[[2]int]bool{}
	for _, e := range g.Edges {
		if e.Rel == RelCall {
			fwd[[2]int{e.Src, e.Dst}] = true
		}
	}
	if len(fwd) == 0 {
		t.Fatal("no call edges")
	}
	for k := range fwd {
		if !fwd[[2]int{k[1], k[0]}] {
			t.Fatalf("call edge %v lacks reverse", k)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a, b := buildGraph(t), buildGraph(t)
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		t.Fatal("graph size differs between runs")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs: %v vs %v", i, a.Nodes[i], b.Nodes[i])
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestRejectsDeclaration(t *testing.T) {
	prog, low, err := frontend.Compile("mvt", src)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
	decl := low.Module.Func("sqrt")
	if decl == nil {
		t.Fatal("sqrt declaration missing")
	}
	if _, err := FromFunction("x", decl); err == nil {
		t.Fatal("graphed a declaration")
	}
}

func TestBucketConst(t *testing.T) {
	cases := map[string]string{
		"0": "zero", "1": "one", "-1": "negone", "42": "small", "100": "large",
		"1.5": "float", "2e+10": "float", "true": "true", "0.0": "zero",
	}
	for in, want := range cases {
		if got := bucketConst(in); got != want {
			t.Errorf("bucketConst(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStatsString(t *testing.T) {
	g := buildGraph(t)
	s := g.Stats()
	if s == "" || g.NumNodes() == 0 {
		t.Fatal("empty stats")
	}
}
