// Package ir implements a small typed, LLVM-flavoured intermediate
// representation. The frontend lowers mini-C/OpenMP sources into this IR;
// parallel regions become outlined functions (mirroring what Clang does
// with ".omp_outlined." functions), and package programl turns outlined
// functions into flow-aware program graphs.
//
// The IR is deliberately close to LLVM in shape — modules hold functions,
// functions hold basic blocks, blocks hold instructions in SSA-ish form —
// because the downstream graph schema (PROGRAML) was designed for LLVM.
package ir

import (
	"fmt"
	"strings"
)

// Type is the type of an IR value.
type Type int

// The IR type universe. Ptr covers all pointer types (element types are
// tracked informally via instruction text, which is all the graph needs).
const (
	Void Type = iota
	I1
	I32
	I64
	F64
	Ptr
	Label
)

// String returns the LLVM-ish spelling of t.
func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I1:
		return "i1"
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F64:
		return "double"
	case Ptr:
		return "ptr"
	case Label:
		return "label"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Opcode enumerates instruction operations.
type Opcode int

// Instruction opcodes. Arithmetic comes in integer and floating flavours,
// mirroring LLVM's add/fadd split, because the distinction is visible in
// the program graphs the model learns from.
const (
	OpAlloca Opcode = iota
	OpLoad
	OpStore
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpICmp
	OpFCmp
	OpBr     // unconditional branch
	OpCondBr // conditional branch
	OpPhi
	OpCall
	OpRet
	OpGEP // getelementptr
	OpSExt
	OpSIToFP
	OpFPToSI
	OpSelect
	OpFNeg
)

var opNames = map[Opcode]string{
	OpAlloca: "alloca",
	OpLoad:   "load",
	OpStore:  "store",
	OpAdd:    "add",
	OpSub:    "sub",
	OpMul:    "mul",
	OpSDiv:   "sdiv",
	OpSRem:   "srem",
	OpFAdd:   "fadd",
	OpFSub:   "fsub",
	OpFMul:   "fmul",
	OpFDiv:   "fdiv",
	OpICmp:   "icmp",
	OpFCmp:   "fcmp",
	OpBr:     "br",
	OpCondBr: "br",
	OpPhi:    "phi",
	OpCall:   "call",
	OpRet:    "ret",
	OpGEP:    "getelementptr",
	OpSExt:   "sext",
	OpSIToFP: "sitofp",
	OpFPToSI: "fptosi",
	OpSelect: "select",
	OpFNeg:   "fneg",
}

// String returns the LLVM mnemonic for op.
func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// IsTerminator reports whether op ends a basic block.
func (op Opcode) IsTerminator() bool {
	return op == OpBr || op == OpCondBr || op == OpRet
}

// IsFloat reports whether op is a floating-point arithmetic operation.
func (op Opcode) IsFloat() bool {
	switch op {
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFCmp, OpFNeg:
		return true
	}
	return false
}

// Value is anything that can appear as an instruction operand: constants,
// function arguments, globals, and instruction results.
type Value interface {
	// Name returns the SSA name ("%t3", "@A", "42").
	Name() string
	// Type returns the value's IR type.
	Type() Type
}

// Const is a literal constant operand.
type Const struct {
	Ty   Type
	Text string // literal spelling, e.g. "42" or "1.0e+00"
}

// Name returns the literal spelling of the constant.
func (c *Const) Name() string { return c.Text }

// Type returns the constant's type.
func (c *Const) Type() Type { return c.Ty }

// ConstInt builds an i64 integer constant.
func ConstInt(v int64) *Const { return &Const{Ty: I64, Text: fmt.Sprintf("%d", v)} }

// ConstFloat builds a double constant.
func ConstFloat(v float64) *Const { return &Const{Ty: F64, Text: fmt.Sprintf("%g", v)} }

// Arg is a formal function parameter.
type Arg struct {
	Nam string
	Ty  Type
}

// Name returns the parameter's SSA name.
func (a *Arg) Name() string { return "%" + a.Nam }

// Type returns the parameter's type.
func (a *Arg) Type() Type { return a.Ty }

// Global is a module-level symbol (arrays and scalars in our dialect).
type Global struct {
	Nam   string
	Ty    Type // Ptr for arrays, element type for scalars
	Elem  Type // element type for arrays
	Dims  []int64
	Decl  string // pretty declaration text
	Bytes int64  // total footprint in bytes
}

// Name returns the global's symbol name ("@A").
func (g *Global) Name() string { return "@" + g.Nam }

// Type returns the global's IR type.
func (g *Global) Type() Type { return g.Ty }

// Instr is a single IR instruction. An instruction with a non-void type is
// itself a Value usable as an operand of later instructions.
type Instr struct {
	Op       Opcode
	Ty       Type // result type (Void for store/br/ret)
	ID       int  // dense per-function numbering, assigned by Function.Number
	Nam      string
	Operands []Value
	// Callee is the target symbol for OpCall.
	Callee string
	// Pred is the comparison predicate text for OpICmp/OpFCmp ("slt", "olt"...).
	Pred string
	// Blocks are the successor blocks for branches, and the incoming blocks
	// for phis (parallel to Operands).
	Blocks []*Block
	// Parent is the containing block.
	Parent *Block
}

// Name returns the instruction's SSA result name.
func (in *Instr) Name() string { return "%" + in.Nam }

// Type returns the instruction's result type.
func (in *Instr) Type() Type { return in.Ty }

// Text renders the instruction in LLVM-like syntax. This text is the node
// feature PROGRAML-style graphs attach to instruction vertices.
func (in *Instr) Text() string {
	var b strings.Builder
	if in.Ty != Void {
		fmt.Fprintf(&b, "%s = ", in.Name())
	}
	switch in.Op {
	case OpStore:
		fmt.Fprintf(&b, "store %s %s, ptr %s", in.Operands[0].Type(), in.Operands[0].Name(), in.Operands[1].Name())
	case OpLoad:
		fmt.Fprintf(&b, "load %s, ptr %s", in.Ty, in.Operands[0].Name())
	case OpBr:
		fmt.Fprintf(&b, "br label %%%s", in.Blocks[0].Nam)
	case OpCondBr:
		fmt.Fprintf(&b, "br i1 %s, label %%%s, label %%%s", in.Operands[0].Name(), in.Blocks[0].Nam, in.Blocks[1].Nam)
	case OpRet:
		if len(in.Operands) == 0 {
			b.WriteString("ret void")
		} else {
			fmt.Fprintf(&b, "ret %s %s", in.Operands[0].Type(), in.Operands[0].Name())
		}
	case OpICmp, OpFCmp:
		fmt.Fprintf(&b, "%s %s %s %s, %s", in.Op, in.Pred, in.Operands[0].Type(), in.Operands[0].Name(), in.Operands[1].Name())
	case OpPhi:
		fmt.Fprintf(&b, "phi %s ", in.Ty)
		for i, op := range in.Operands {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "[ %s, %%%s ]", op.Name(), in.Blocks[i].Nam)
		}
	case OpCall:
		fmt.Fprintf(&b, "call %s @%s(", in.Ty, in.Callee)
		for i, op := range in.Operands {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", op.Type(), op.Name())
		}
		b.WriteString(")")
	case OpGEP:
		fmt.Fprintf(&b, "getelementptr inbounds %s", in.Operands[0].Name())
		for _, op := range in.Operands[1:] {
			fmt.Fprintf(&b, ", %s %s", op.Type(), op.Name())
		}
	case OpAlloca:
		fmt.Fprintf(&b, "alloca %s", in.Ty)
	case OpSExt, OpSIToFP, OpFPToSI:
		fmt.Fprintf(&b, "%s %s %s to %s", in.Op, in.Operands[0].Type(), in.Operands[0].Name(), in.Ty)
	case OpFNeg:
		fmt.Fprintf(&b, "fneg %s %s", in.Ty, in.Operands[0].Name())
	case OpSelect:
		fmt.Fprintf(&b, "select i1 %s, %s %s, %s %s", in.Operands[0].Name(), in.Ty, in.Operands[1].Name(), in.Ty, in.Operands[2].Name())
	default:
		fmt.Fprintf(&b, "%s %s", in.Op, in.Ty)
		for i, op := range in.Operands {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " %s", op.Name())
		}
	}
	return b.String()
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator.
type Block struct {
	Nam    string
	Instrs []*Instr
	Fn     *Function
}

// Append adds an instruction to the block and returns it.
func (b *Block) Append(in *Instr) *Instr {
	in.Parent = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// Terminator returns the block's final instruction, or nil if the block is
// empty or unterminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the block's successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil || t.Op == OpRet {
		return nil
	}
	return t.Blocks
}

// Function is an IR function.
type Function struct {
	Nam      string
	Params   []*Arg
	Blocks   []*Block
	Ret      Type
	Mod      *Module
	IsDecl   bool // declaration only (external, e.g. sqrt)
	Outlined bool // true for ".omp_outlined." parallel-region functions
}

// Name returns the function's symbol name ("@f").
func (f *Function) Name() string { return "@" + f.Nam }

// Type returns Ptr: a function used as an operand behaves like a pointer.
func (f *Function) Type() Type { return Ptr }

// NewBlock appends a fresh basic block named nam to the function.
func (f *Function) NewBlock(nam string) *Block {
	b := &Block{Nam: nam, Fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Number assigns dense instruction IDs and fresh SSA names to every
// instruction with a result. It is idempotent and must run before printing
// or graph construction.
func (f *Function) Number() {
	id := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.ID = id
			if in.Ty != Void && in.Nam == "" {
				in.Nam = fmt.Sprintf("t%d", id)
			}
			id++
		}
	}
}

// NumInstrs returns the total instruction count.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Module is a translation unit: globals plus functions.
type Module struct {
	Nam     string
	Globals []*Global
	Funcs   []*Function
}

// NewModule creates an empty module named nam.
func NewModule(nam string) *Module { return &Module{Nam: nam} }

// Global returns the named global, or nil.
func (m *Module) Global(nam string) *Global {
	for _, g := range m.Globals {
		if g.Nam == nam {
			return g
		}
	}
	return nil
}

// Func returns the named function, or nil.
func (m *Module) Func(nam string) *Function {
	for _, f := range m.Funcs {
		if f.Nam == nam {
			return f
		}
	}
	return nil
}

// NewFunc appends a fresh function to the module.
func (m *Module) NewFunc(nam string, ret Type, params ...*Arg) *Function {
	f := &Function{Nam: nam, Ret: ret, Params: params, Mod: m}
	m.Funcs = append(m.Funcs, f)
	return f
}

// OutlinedFuncs returns the parallel-region functions, in declaration order.
func (m *Module) OutlinedFuncs() []*Function {
	var out []*Function
	for _, f := range m.Funcs {
		if f.Outlined {
			out = append(out, f)
		}
	}
	return out
}
