package ir

import (
	"strings"
	"testing"
)

// buildLoop constructs a tiny counted loop function:
//
//	for (i=0; i<n; i++) sum += a[i]
func buildLoop(t *testing.T) (*Module, *Function) {
	t.Helper()
	m := NewModule("test")
	m.Globals = append(m.Globals, &Global{Nam: "a", Ty: Ptr, Elem: F64, Dims: []int64{100}, Decl: "[100 x double]", Bytes: 800})
	n := &Arg{Nam: "n", Ty: I64}
	f := m.NewFunc("sum", F64, n)

	entry := f.NewBlock("entry")
	header := f.NewBlock("loop.header")
	body := f.NewBlock("loop.body")
	exit := f.NewBlock("exit")

	entry.Append(&Instr{Op: OpBr, Blocks: []*Block{header}})

	phiI := &Instr{Op: OpPhi, Ty: I64, Nam: "i"}
	phiS := &Instr{Op: OpPhi, Ty: F64, Nam: "s"}
	header.Append(phiI)
	header.Append(phiS)
	cmp := header.Append(&Instr{Op: OpICmp, Ty: I1, Pred: "slt", Operands: []Value{phiI, n}})
	header.Append(&Instr{Op: OpCondBr, Operands: []Value{cmp}, Blocks: []*Block{body, exit}})

	gep := body.Append(&Instr{Op: OpGEP, Ty: Ptr, Operands: []Value{m.Global("a"), phiI}})
	ld := body.Append(&Instr{Op: OpLoad, Ty: F64, Operands: []Value{gep}})
	add := body.Append(&Instr{Op: OpFAdd, Ty: F64, Operands: []Value{phiS, ld}})
	inc := body.Append(&Instr{Op: OpAdd, Ty: I64, Operands: []Value{phiI, ConstInt(1)}})
	body.Append(&Instr{Op: OpBr, Blocks: []*Block{header}})

	phiI.Operands = []Value{ConstInt(0), inc}
	phiI.Blocks = []*Block{entry, body}
	phiS.Operands = []Value{ConstFloat(0), add}
	phiS.Blocks = []*Block{entry, body}

	exit.Append(&Instr{Op: OpRet, Operands: []Value{phiS}})

	f.Number()
	return m, f
}

func TestVerifyOK(t *testing.T) {
	m, _ := buildLoop(t)
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesEmptyBlock(t *testing.T) {
	m, f := buildLoop(t)
	f.NewBlock("dangling")
	if err := m.Verify(); err == nil {
		t.Fatal("Verify accepted empty block")
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m, f := buildLoop(t)
	last := f.Blocks[len(f.Blocks)-1]
	last.Instrs = last.Instrs[:0]
	last.Append(&Instr{Op: OpAdd, Ty: I64, Operands: []Value{ConstInt(1), ConstInt(2)}})
	if err := m.Verify(); err == nil {
		t.Fatal("Verify accepted unterminated block")
	}
}

func TestVerifyCatchesForeignTarget(t *testing.T) {
	m, f := buildLoop(t)
	other := &Block{Nam: "elsewhere"}
	f.Blocks[0].Instrs[0].Blocks = []*Block{other}
	if err := m.Verify(); err == nil {
		t.Fatal("Verify accepted branch to foreign block")
	}
}

func TestVerifyCatchesNilOperand(t *testing.T) {
	m, f := buildLoop(t)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpFAdd {
				in.Operands[1] = nil
			}
		}
	}
	if err := m.Verify(); err == nil {
		t.Fatal("Verify accepted nil operand")
	}
}

func TestPrinterRendersLLVMIsh(t *testing.T) {
	m, _ := buildLoop(t)
	text := m.String()
	for _, want := range []string{
		"define double @sum(i64 %n)",
		"phi i64 [ 0, %entry ]",
		"icmp slt i64",
		"br i1",
		"load double, ptr",
		"fadd",
		"getelementptr inbounds @a",
		"ret double",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("module text missing %q\n%s", want, text)
		}
	}
}

func TestNumberAssignsDenseIDs(t *testing.T) {
	_, f := buildLoop(t)
	want := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.ID != want {
				t.Fatalf("instruction ID = %d, want %d", in.ID, want)
			}
			if in.Ty != Void && in.Nam == "" {
				t.Fatalf("instruction %d has result but no name", in.ID)
			}
			want++
		}
	}
	if f.NumInstrs() != want {
		t.Fatalf("NumInstrs = %d, want %d", f.NumInstrs(), want)
	}
}

func TestSuccsAndTerminator(t *testing.T) {
	_, f := buildLoop(t)
	entry := f.Blocks[0]
	if got := entry.Succs(); len(got) != 1 || got[0].Nam != "loop.header" {
		t.Fatalf("entry successors = %v", got)
	}
	header := f.Blocks[1]
	if got := header.Succs(); len(got) != 2 {
		t.Fatalf("header successors = %d, want 2", len(got))
	}
	exit := f.Blocks[3]
	if got := exit.Succs(); got != nil {
		t.Fatalf("exit successors = %v, want nil", got)
	}
	if exit.Terminator() == nil || exit.Terminator().Op != OpRet {
		t.Fatal("exit terminator not ret")
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !OpBr.IsTerminator() || !OpCondBr.IsTerminator() || !OpRet.IsTerminator() {
		t.Error("branch/ret must be terminators")
	}
	if OpAdd.IsTerminator() || OpLoad.IsTerminator() {
		t.Error("add/load must not be terminators")
	}
	if !OpFAdd.IsFloat() || !OpFCmp.IsFloat() || !OpFNeg.IsFloat() {
		t.Error("fadd/fcmp/fneg are float ops")
	}
	if OpAdd.IsFloat() || OpICmp.IsFloat() {
		t.Error("add/icmp are integer ops")
	}
}

func TestModuleLookups(t *testing.T) {
	m, f := buildLoop(t)
	if m.Func("sum") != f {
		t.Error("Func lookup failed")
	}
	if m.Func("nope") != nil {
		t.Error("Func lookup invented a function")
	}
	if g := m.Global("a"); g == nil || g.Bytes != 800 {
		t.Error("Global lookup failed")
	}
	if m.Global("nope") != nil {
		t.Error("Global lookup invented a global")
	}
	f.Outlined = true
	if got := m.OutlinedFuncs(); len(got) != 1 || got[0] != f {
		t.Error("OutlinedFuncs wrong")
	}
}

func TestTypeAndOpcodeStrings(t *testing.T) {
	cases := map[string]string{
		Void.String(): "void", I64.String(): "i64", F64.String(): "double",
		Ptr.String(): "ptr", I1.String(): "i1", I32.String(): "i32", Label.String(): "label",
		OpGEP.String(): "getelementptr", OpSIToFP.String(): "sitofp",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
