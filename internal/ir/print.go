package ir

import (
	"fmt"
	"strings"
)

// String renders the module in LLVM-like textual form.
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; ModuleID = '%s'\n", m.Nam)
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "%s = global %s\n", g.Name(), g.Decl)
	}
	if len(m.Globals) > 0 {
		b.WriteByte('\n')
	}
	for _, f := range m.Funcs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the function in LLVM-like textual form.
func (f *Function) String() string {
	var b strings.Builder
	kw := "define"
	if f.IsDecl {
		kw = "declare"
	}
	fmt.Fprintf(&b, "%s %s %s(", kw, f.Ret, f.Name())
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", p.Ty, p.Name())
	}
	b.WriteString(")")
	if f.IsDecl {
		b.WriteString("\n")
		return b.String()
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Nam)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", in.Text())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Verify checks structural invariants of the module: every non-declaration
// function has an entry block, every block is non-empty and ends in exactly
// one terminator, branch targets belong to the same function, phi operand
// and block lists are parallel, and operands are non-nil.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return fmt.Errorf("ir: function %s: %w", f.Nam, err)
		}
	}
	return nil
}

// Verify checks structural invariants of a single function.
func (f *Function) Verify() error {
	if f.IsDecl {
		if len(f.Blocks) != 0 {
			return fmt.Errorf("declaration has %d blocks", len(f.Blocks))
		}
		return nil
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	own := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		own[b] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s: empty", b.Nam)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				return fmt.Errorf("block %s: instruction %d (%s): terminator placement", b.Nam, i, in.Op)
			}
			for j, opnd := range in.Operands {
				if opnd == nil {
					return fmt.Errorf("block %s: %s: nil operand %d", b.Nam, in.Op, j)
				}
			}
			switch in.Op {
			case OpBr:
				if len(in.Blocks) != 1 {
					return fmt.Errorf("block %s: br needs 1 target", b.Nam)
				}
			case OpCondBr:
				if len(in.Blocks) != 2 {
					return fmt.Errorf("block %s: condbr needs 2 targets", b.Nam)
				}
			case OpPhi:
				if len(in.Blocks) != len(in.Operands) {
					return fmt.Errorf("block %s: phi operand/block mismatch", b.Nam)
				}
			}
			for _, t := range in.Blocks {
				if !own[t] {
					return fmt.Errorf("block %s: %s targets foreign block %s", b.Nam, in.Op, t.Nam)
				}
			}
		}
	}
	return nil
}
