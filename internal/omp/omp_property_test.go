package omp

import (
	"math"
	"testing"
	"testing/quick"

	"pnptuner/internal/frontend"
	"pnptuner/internal/hw"
)

// randomModel builds an arbitrary-but-valid region model from a seed.
func randomModel(seed uint64) *frontend.RegionModel {
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	u := func() float64 { return float64(next()>>11) / (1 << 53) }
	m := &frontend.RegionModel{
		Trips:         int64(100 + next()%2_000_000),
		FlopsPerIter:  1 + u()*5000,
		IntOpsPerIter: u() * 1000,
		LoadsPerIter:  u() * 500,
		StoresPerIter: u() * 100,
		GatherFrac:    u(),
		SeqFrac:       u(),
		WorkingSet:    int64(1024 + next()%(8<<30)),
	}
	switch next() % 4 {
	case 0:
		m.Imbalance = frontend.ImbUniform
		m.CostProfile = [5]float64{1, 1, 1, 1, 1}
	case 1:
		m.Imbalance = frontend.ImbIncreasing
		m.CostProfile = [5]float64{0.1, 0.55, 1, 1.45, 1.9}
	case 2:
		m.Imbalance = frontend.ImbDecreasing
		m.CostProfile = [5]float64{1.9, 1.45, 1, 0.55, 0.1}
	default:
		m.Imbalance = frontend.ImbRandom
		m.CostProfile = [5]float64{1, 1, 1, 1, 1}
		m.CV = 0.2 + u()
	}
	return m
}

// Property: every execution yields positive, finite time and energy, a
// frequency inside the envelope, and utilization in (0, 1].
func TestQuickRunAlwaysPhysical(t *testing.T) {
	f := func(seed uint64) bool {
		m := hw.Machines()[seed%2]
		ex := NewExecutor(m)
		model := randomModel(seed)
		caps := m.PowerLimits
		capW := caps[int(seed>>8)%len(caps)]
		cfg := Config{
			Threads: m.ThreadCounts[int(seed>>16)%len(m.ThreadCounts)],
			Sched:   Schedule(int(seed>>24) % 3),
			Chunk:   []int64{0, 1, 8, 32, 64, 128, 256, 512}[int(seed>>32)%8],
		}
		r := ex.Run(model, seed, cfg, capW)
		if !(r.TimeSec > 0) || math.IsInf(r.TimeSec, 0) || math.IsNaN(r.TimeSec) {
			return false
		}
		if !(r.PkgEnergyJ > 0) || r.DRAMEnergyJ < 0 {
			return false
		}
		if r.FreqGHz < m.FMin-1e-9 || r.FreqGHz > m.FMax+1e-9 {
			return false
		}
		return r.Utilization > 0 && r.Utilization <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: serial execution is never faster than the best parallel
// makespan times the iteration count would allow — i.e. makespan(n=1)
// equals total work, and makespan(n) ≥ total/n for all schedules.
func TestQuickMakespanBounds(t *testing.T) {
	f := func(seed uint64) bool {
		model := randomModel(seed)
		if model.Trips > 200_000 {
			model.Trips = 200_000 // keep exact simulation cheap
		}
		prof := newProfile(model, seed)
		total := prof.chunkWork(0, model.Trips, model.Trips)
		for _, n := range []int{2, 4, 16, 32} {
			for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
				chunk := []int64{0, 1, 32, 512}[int(seed>>7)%4]
				if sched != ScheduleStatic && chunk == 0 {
					chunk = 1
				}
				ms, _ := schedule(Config{Threads: n, Sched: sched, Chunk: chunk}, model.Trips, n, prof)
				if ms < total/float64(n)*0.98 {
					return false // beat perfect balance: impossible
				}
				if ms > total*1.02 {
					return false // worse than serial: impossible for work-conserving schedulers
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the noisy cumulative work curve is monotone and consistent
// with chunk partitioning (sum of disjoint chunks == whole range).
func TestQuickNoisyCumConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		model := randomModel(seed | 3)
		model.Imbalance = frontend.ImbRandom
		model.CV = 0.9
		prof := newProfile(model, seed)
		trips := model.Trips
		// Partition into uneven chunks; the sum must equal the whole.
		var sum float64
		var lo int64
		step := trips/17 + 1
		for lo < trips {
			hi := lo + step
			if hi > trips {
				hi = trips
			}
			w := prof.chunkWork(lo, hi, trips)
			if w < 0 {
				return false
			}
			sum += w
			lo = hi
		}
		whole := prof.chunkWork(0, trips, trips)
		return math.Abs(sum-whole) < 1e-6*whole+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy at a fixed config decreases (or holds) when the cap
// tightens, because frequency (and hence dynamic power) drops faster than
// time grows — until throttling reverses it; in all cases EDP stays
// positive and finite.
func TestQuickEDPFinite(t *testing.T) {
	f := func(seed uint64) bool {
		m := hw.Machines()[seed%2]
		ex := NewExecutor(m)
		model := randomModel(seed)
		cfg := DefaultConfig(m)
		for _, capW := range m.PowerLimits {
			r := ex.Run(model, seed, cfg, capW)
			if !(r.EDP() > 0) || math.IsInf(r.EDP(), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Locality effect: tiny static chunks must not be free for streaming
// kernels — chunk 1 pays a bandwidth penalty relative to large chunks.
func TestChunkLocalityPenalty(t *testing.T) {
	ex := NewExecutor(hw.Skylake())
	m := memModel(4_000_000)
	big := ex.Run(m, 1, Config{Threads: 16, Sched: ScheduleStatic, Chunk: 512}, 150).TimeSec
	tiny := ex.Run(m, 1, Config{Threads: 16, Sched: ScheduleStatic, Chunk: 1}, 150).TimeSec
	if tiny <= big {
		t.Fatalf("chunk-1 static (%.4g) not slower than chunk-512 (%.4g) on a streaming kernel", tiny, big)
	}
}

// Correlated-noise effect: for a Monte Carlo region, block-static
// scheduling must leave real imbalance on the table relative to
// fine-grained schedules (the property iid noise destroyed).
func TestCorrelatedNoiseKeepsImbalance(t *testing.T) {
	m := &frontend.RegionModel{
		Trips: 500_000, FlopsPerIter: 80, LoadsPerIter: 30, GatherFrac: 0.9,
		SeqFrac: 0.05, WorkingSet: 1 << 30,
		CostProfile: [5]float64{1, 1, 1, 1, 1},
		Imbalance:   frontend.ImbRandom, CV: 0.9,
	}
	prof := newProfile(m, 99)
	block := staticMakespan(0, m.Trips, 16, prof)
	fine, _ := dynamicMakespan(256, m.Trips, 16, prof)
	if block < fine*1.05 {
		t.Fatalf("block static (%.4g) should trail dynamic (%.4g) by >5%% on correlated noise", block, fine)
	}
}
