package omp_test

import (
	"fmt"

	"pnptuner/internal/frontend"
	"pnptuner/internal/hw"
	"pnptuner/internal/omp"
)

// Example runs one OpenMP region under two power caps and shows how the
// cap changes the sustained frequency.
func Example() {
	src := `
const int N = 1000000;
double a[N];
void scale() {
  #pragma omp parallel for
  for (i = 0; i < N; i++) {
    a[i] = a[i] * 1.5;
  }
}
`
	prog, _, err := frontend.Compile("demo", src)
	if err != nil {
		panic(err)
	}
	mach := hw.Haswell()
	ex := omp.NewExecutor(mach)
	cfg := omp.Config{Threads: 16, Sched: omp.ScheduleStatic}
	for _, capW := range []float64{40, 85} {
		r := ex.Run(&prog.Regions[0].Model, 1, cfg, capW)
		fmt.Printf("cap %gW: %.2f GHz, throttled=%v\n", capW, r.FreqGHz, r.Throttled)
	}
	// Output:
	// cap 40W: 1.40 GHz, throttled=true
	// cap 85W: 2.43 GHz, throttled=false
}
