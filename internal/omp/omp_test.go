package omp

import (
	"math"
	"testing"
	"testing/quick"

	"pnptuner/internal/frontend"
	"pnptuner/internal/hw"
)

// uniformModel builds a flat compute-bound region model.
func uniformModel(trips int64, flops float64) *frontend.RegionModel {
	return &frontend.RegionModel{
		Trips:        trips,
		FlopsPerIter: flops,
		LoadsPerIter: 2,
		SeqFrac:      1,
		WorkingSet:   64 << 10,
		CostProfile:  [5]float64{1, 1, 1, 1, 1},
		Imbalance:    frontend.ImbUniform,
	}
}

// triModel builds a triangular (increasing-cost) region model.
func triModel(trips int64) *frontend.RegionModel {
	return &frontend.RegionModel{
		Trips:        trips,
		FlopsPerIter: 1000,
		LoadsPerIter: 100,
		SeqFrac:      0.9,
		WorkingSet:   8 << 20,
		CostProfile:  [5]float64{0.02, 0.5, 1.0, 1.5, 1.98},
		Imbalance:    frontend.ImbIncreasing,
	}
}

// memModel builds a bandwidth-bound streaming model.
func memModel(trips int64) *frontend.RegionModel {
	return &frontend.RegionModel{
		Trips:         trips,
		FlopsPerIter:  4,
		LoadsPerIter:  48,
		StoresPerIter: 16,
		SeqFrac:       1,
		WorkingSet:    2 << 30,
		CostProfile:   [5]float64{1, 1, 1, 1, 1},
		Imbalance:     frontend.ImbUniform,
	}
}

func TestParallelSpeedupComputeBound(t *testing.T) {
	ex := NewExecutor(hw.Skylake())
	m := uniformModel(1_000_000, 200)
	t1 := ex.Run(m, 1, Config{Threads: 1, Sched: ScheduleStatic}, 150).TimeSec
	t16 := ex.Run(m, 1, Config{Threads: 16, Sched: ScheduleStatic}, 150).TimeSec
	sp := t1 / t16
	if sp < 8 || sp > 20 {
		t.Fatalf("16-thread speedup = %.2f, want near-linear", sp)
	}
}

func TestMemoryBoundStopsScaling(t *testing.T) {
	ex := NewExecutor(hw.Skylake())
	m := memModel(4_000_000)
	t8 := ex.Run(m, 1, Config{Threads: 8, Sched: ScheduleStatic}, 150).TimeSec
	t32 := ex.Run(m, 1, Config{Threads: 32, Sched: ScheduleStatic}, 150).TimeSec
	sp := t8 / t32
	if sp > 2.5 {
		t.Fatalf("memory-bound kernel scaled %.2fx from 8→32 threads; bandwidth model broken", sp)
	}
}

func TestPowerCapSlowsExecution(t *testing.T) {
	for _, mach := range hw.Machines() {
		ex := NewExecutor(mach)
		m := uniformModel(2_000_000, 400)
		cfg := DefaultConfig(mach)
		tLow := ex.Run(m, 1, cfg, mach.MinPower).TimeSec
		tHigh := ex.Run(m, 1, cfg, mach.TDP).TimeSec
		if tLow <= tHigh {
			t.Errorf("%s: capped run not slower (%.4g vs %.4g)", mach.Name, tLow, tHigh)
		}
	}
}

func TestTimeMonotoneInCap(t *testing.T) {
	mach := hw.Haswell()
	ex := NewExecutor(mach)
	m := uniformModel(500_000, 300)
	cfg := Config{Threads: 16, Sched: ScheduleStatic}
	prev := math.Inf(1)
	for _, capW := range mach.PowerLimits {
		tt := ex.Run(m, 1, cfg, capW).TimeSec
		if tt > prev*1.0001 {
			t.Fatalf("time increased with higher cap at %gW", capW)
		}
		prev = tt
	}
}

func TestDynamicBeatsStaticOnImbalanced(t *testing.T) {
	ex := NewExecutor(hw.Haswell())
	m := triModel(50_000)
	st := ex.Run(m, 1, Config{Threads: 16, Sched: ScheduleStatic}, 85).TimeSec
	dy := ex.Run(m, 1, Config{Threads: 16, Sched: ScheduleDynamic, Chunk: 32}, 85).TimeSec
	if dy >= st {
		t.Fatalf("dynamic (%.4g) not faster than block-static (%.4g) on triangular loop", dy, st)
	}
	// Block static on an increasing profile loses ~2x to perfect balance.
	if st/dy < 1.2 {
		t.Fatalf("imbalance penalty too small: %.2f", st/dy)
	}
}

func TestRoundRobinStaticFixesShapeImbalance(t *testing.T) {
	ex := NewExecutor(hw.Haswell())
	m := triModel(50_000)
	block := ex.Run(m, 1, Config{Threads: 16, Sched: ScheduleStatic, Chunk: 0}, 85).TimeSec
	cyclic := ex.Run(m, 1, Config{Threads: 16, Sched: ScheduleStatic, Chunk: 8}, 85).TimeSec
	if cyclic >= block {
		t.Fatalf("cyclic static (%.4g) not faster than block static (%.4g)", cyclic, block)
	}
}

func TestTinyRegionPrefersOneThread(t *testing.T) {
	// The trisolv edge case: a tiny region where fork overhead dominates.
	ex := NewExecutor(hw.Haswell())
	m := uniformModel(128, 60)
	t1 := ex.Run(m, 1, Config{Threads: 1, Sched: ScheduleStatic}, 40).TimeSec
	t32 := ex.Run(m, 1, Config{Threads: 32, Sched: ScheduleStatic}, 40).TimeSec
	if t1 >= t32 {
		t.Fatalf("1 thread (%.4g) not faster than 32 (%.4g) on tiny region at 40W", t1, t32)
	}
}

func TestDispatchOverheadPenalizesChunk1Dynamic(t *testing.T) {
	ex := NewExecutor(hw.Skylake())
	m := uniformModel(500_000, 50)
	d1 := ex.Run(m, 1, Config{Threads: 32, Sched: ScheduleDynamic, Chunk: 1}, 150).TimeSec
	d256 := ex.Run(m, 1, Config{Threads: 32, Sched: ScheduleDynamic, Chunk: 256}, 150).TimeSec
	if d1 <= d256 {
		t.Fatalf("chunk-1 dynamic (%.4g) should pay dispatch overhead vs chunk-256 (%.4g)", d1, d256)
	}
}

func TestEnergyPositiveAndEDPIdentity(t *testing.T) {
	ex := NewExecutor(hw.Skylake())
	m := uniformModel(100_000, 100)
	r := ex.Run(m, 1, DefaultConfig(hw.Skylake()), 120)
	if r.TimeSec <= 0 || r.PkgEnergyJ <= 0 {
		t.Fatalf("non-positive result: %+v", r)
	}
	if math.Abs(r.EDP()-r.EnergyJ()*r.TimeSec) > 1e-15*r.EDP() {
		t.Fatal("EDP != E*T")
	}
	if r.EnergyJ() < r.PkgEnergyJ {
		t.Fatal("total energy must include DRAM energy")
	}
}

func TestRaceToHaltIsNotAlwaysOptimal(t *testing.T) {
	// The §I motivating observation: for some regions, the most
	// energy-efficient execution is NOT the fastest one.
	ex := NewExecutor(hw.Haswell())
	mach := hw.Haswell()
	m := memModel(2_000_000)
	var bestT, bestE struct {
		val  float64
		capW float64
		n    int
	}
	bestT.val, bestE.val = math.Inf(1), math.Inf(1)
	for _, capW := range mach.PowerLimits {
		for _, n := range mach.ThreadCounts {
			r := ex.Run(m, 7, Config{Threads: n, Sched: ScheduleStatic}, capW)
			if r.TimeSec < bestT.val {
				bestT.val, bestT.capW, bestT.n = r.TimeSec, capW, n
			}
			if e := r.EnergyJ(); e < bestE.val {
				bestE.val, bestE.capW, bestE.n = e, capW, n
			}
		}
	}
	if bestT.capW == bestE.capW && bestT.n == bestE.n {
		t.Fatalf("time-optimal and energy-optimal coincide (cap %gW n=%d); landscape too simple",
			bestT.capW, bestT.n)
	}
}

func TestDeterministicRuns(t *testing.T) {
	ex := NewExecutor(hw.Skylake())
	m := &frontend.RegionModel{
		Trips: 10000, FlopsPerIter: 80, LoadsPerIter: 30, GatherFrac: 0.8,
		WorkingSet: 1 << 30, CostProfile: [5]float64{1, 1, 1, 1, 1},
		Imbalance: frontend.ImbRandom, CV: 0.9,
	}
	cfg := Config{Threads: 16, Sched: ScheduleDynamic, Chunk: 8}
	a := ex.Run(m, 42, cfg, 100)
	b := ex.Run(m, 42, cfg, 100)
	if a != b {
		t.Fatal("same seed+config produced different results")
	}
	c := ex.Run(m, 43, cfg, 100)
	if a.TimeSec == c.TimeSec {
		t.Fatal("different seeds produced identical random-imbalance times")
	}
}

func TestScheduleConservation(t *testing.T) {
	// Property: total scheduled work ≈ trips for every schedule/chunk.
	f := func(seed uint64) bool {
		trips := int64(100 + seed%5000)
		n := 1 + int(seed>>3)%32
		chunk := int64(1) << (seed % 8)
		model := triModel(trips)
		prof := newProfile(model, seed)
		for _, sch := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
			makespan, _ := schedule(Config{Threads: n, Sched: sch, Chunk: chunk}, trips, n, prof)
			// Makespan must be at least total/n (can't beat perfect
			// balance) and at most total (serial).
			if makespan < float64(trips)/float64(n)*0.99 {
				return false
			}
			if makespan > float64(trips)*2.01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileCumulative(t *testing.T) {
	m := triModel(1000)
	p := newProfile(m, 1)
	if math.Abs(p.cumAt(1)-1) > 1e-12 || p.cumAt(0) != 0 {
		t.Fatalf("cum endpoints: %g, %g", p.cumAt(0), p.cumAt(1))
	}
	prev := 0.0
	for x := 0.0; x <= 1.0; x += 0.01 {
		c := p.cumAt(x)
		if c < prev-1e-12 {
			t.Fatalf("cumAt not monotone at %g", x)
		}
		prev = c
	}
	// Increasing profile: first half holds less than half the work.
	if p.cumAt(0.5) >= 0.5 {
		t.Fatalf("increasing profile has cum(0.5) = %g, want < 0.5", p.cumAt(0.5))
	}
}

func TestChunkWorkPartitionSums(t *testing.T) {
	m := triModel(10_000)
	p := newProfile(m, 3)
	total := 0.0
	var lo int64
	for lo < m.Trips {
		hi := lo + 137
		if hi > m.Trips {
			hi = m.Trips
		}
		total += p.chunkWork(lo, hi, m.Trips)
		lo = hi
	}
	if math.Abs(total-float64(m.Trips)) > 1 {
		t.Fatalf("partition sums to %g, want %d", total, m.Trips)
	}
}

func TestGuidedDispatchesFewerThanDynamic(t *testing.T) {
	m := uniformModel(100_000, 50)
	p := newProfile(m, 1)
	_, dDyn := dynamicMakespan(1, m.Trips, 16, p)
	_, dGui := guidedMakespan(1, m.Trips, 16, p)
	if dGui >= dDyn {
		t.Fatalf("guided dispatches %d, dynamic %d; guided must dispatch fewer", dGui, dDyn)
	}
}

func TestLargeChunkCountApproximationContinuity(t *testing.T) {
	// Analytic path (K > exactSimLimit) must be close to the exact path
	// just below the limit.
	m := uniformModel(int64(exactSimLimit)*2, 10)
	p := newProfile(m, 1)
	exact, _ := dynamicMakespan(2, m.Trips, 8, p)  // K = exactSimLimit → exact
	approx, _ := dynamicMakespan(1, m.Trips, 8, p) // K = 2*exactSimLimit → analytic
	ratio := approx / exact
	if ratio < 0.9 || ratio > 1.2 {
		t.Fatalf("approximation discontinuity: exact %g vs approx %g", exact, approx)
	}
}

func TestSMTHelpsMemoryBoundHurtsComputeBound(t *testing.T) {
	ex := NewExecutor(hw.Skylake())
	comp := uniformModel(2_000_000, 500)
	t32 := ex.Run(comp, 1, Config{Threads: 32, Sched: ScheduleStatic}, 150).TimeSec
	t64 := ex.Run(comp, 1, Config{Threads: 64, Sched: ScheduleStatic}, 150).TimeSec
	if t64 < t32*0.98 {
		t.Fatalf("SMT sped up compute-bound kernel: %.4g vs %.4g", t64, t32)
	}
}

func TestThrottledFlagAtImpossibleCap(t *testing.T) {
	mach := hw.Skylake()
	ex := NewExecutor(mach)
	m := uniformModel(100_000, 100)
	// MinPower with every core lit can demand throttling on Skylake
	// (32 cores at fmin + uncore exceeds 75W? verify via flag coherence).
	r := ex.Run(m, 1, Config{Threads: 64, Sched: ScheduleStatic}, mach.MinPower)
	f, th := mach.FreqAtCap(64, mach.MinPower)
	if (th < 1) != r.Throttled {
		t.Fatalf("throttle flag mismatch: solver %g/%g, result %v", f, th, r.Throttled)
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Threads: 8, Sched: ScheduleGuided, Chunk: 64}
	if c.String() != "8t/guided/64" {
		t.Fatalf("String = %q", c.String())
	}
	d := Config{Threads: 32, Sched: ScheduleStatic}
	if d.String() != "32t/static/default" {
		t.Fatalf("String = %q", d.String())
	}
}

func TestFromPragma(t *testing.T) {
	if FromPragma(frontend.SchedDynamic) != ScheduleDynamic ||
		FromPragma(frontend.SchedGuided) != ScheduleGuided ||
		FromPragma(frontend.SchedStatic) != ScheduleStatic ||
		FromPragma(frontend.SchedDefault) != ScheduleStatic {
		t.Fatal("pragma mapping wrong")
	}
}
