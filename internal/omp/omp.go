// Package omp simulates an OpenMP runtime executing a parallel region on a
// simulated machine under a RAPL power cap. It is the measurement
// substrate standing in for the paper's physical testbeds: given a
// region's analytic model (from the frontend), a runtime configuration
// (threads × schedule × chunk) and a power cap, it produces execution time
// and energy.
//
// The execution model has three parts:
//
//  1. Rate model: a roofline blend of per-core compute throughput at the
//     cap-constrained frequency and shared DRAM bandwidth filtered through
//     a cache model, with SMT throughput effects.
//  2. Schedule model: STATIC (block or round-robin chunked), DYNAMIC
//     (work queue with per-dispatch overhead) and GUIDED (decaying
//     chunks) assignment over the region's iteration cost profile,
//     computing the makespan exactly for moderate chunk counts and with
//     tight analytic approximations for very large ones.
//  3. Energy model: package energy from the hw power model split into
//     busy/idle core time, plus DRAM access energy.
package omp

import (
	"container/heap"
	"fmt"
	"math"

	"pnptuner/internal/frontend"
	"pnptuner/internal/hw"
)

// Schedule is the OpenMP loop schedule kind.
type Schedule int

// Loop schedules.
const (
	ScheduleStatic Schedule = iota
	ScheduleDynamic
	ScheduleGuided
)

func (s Schedule) String() string {
	switch s {
	case ScheduleStatic:
		return "static"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleGuided:
		return "guided"
	}
	return "?"
}

// FromPragma converts a frontend schedule kind (the source-level default
// maps to static, as in libgomp/libomp).
func FromPragma(k frontend.ScheduleKind) Schedule {
	switch k {
	case frontend.SchedDynamic:
		return ScheduleDynamic
	case frontend.SchedGuided:
		return ScheduleGuided
	default:
		return ScheduleStatic
	}
}

// Config is one OpenMP runtime configuration.
type Config struct {
	Threads int
	Sched   Schedule
	// Chunk is the schedule chunk size; 0 means the implementation
	// default (block partition for static, 1 for dynamic/guided).
	Chunk int64
}

func (c Config) String() string {
	if c.Chunk == 0 {
		return fmt.Sprintf("%dt/%s/default", c.Threads, c.Sched)
	}
	return fmt.Sprintf("%dt/%s/%d", c.Threads, c.Sched, c.Chunk)
}

// DefaultConfig returns the typical (default) OpenMP configuration the
// paper measures against: all hardware threads, static schedule,
// compiler-defined (block) chunking.
func DefaultConfig(m *hw.Machine) Config {
	return Config{Threads: m.NumHWThreads(), Sched: ScheduleStatic, Chunk: 0}
}

// Result is one simulated region execution.
type Result struct {
	TimeSec     float64
	PkgEnergyJ  float64
	DRAMEnergyJ float64
	FreqGHz     float64
	// Throttled reports RAPL duty-cycle clamping (cap below the
	// minimum-frequency power draw).
	Throttled bool
	// Utilization is mean busy fraction across team threads.
	Utilization float64
}

// EnergyJ returns total (package + DRAM) energy.
func (r Result) EnergyJ() float64 { return r.PkgEnergyJ + r.DRAMEnergyJ }

// EDP returns the energy-delay product E·T, the paper's fused metric.
func (r Result) EDP() float64 { return r.EnergyJ() * r.TimeSec }

// Executor runs region models on one machine.
type Executor struct {
	M *hw.Machine
	// DRAMEnergyPerByte models DRAM access energy (J/B).
	DRAMEnergyPerByte float64
}

// NewExecutor builds an executor for machine m.
func NewExecutor(m *hw.Machine) *Executor {
	return &Executor{M: m, DRAMEnergyPerByte: 250e-12}
}

// dispatchOverheadUS is the per-chunk dequeue cost (µs at FBase) for
// dynamic and guided schedules.
const dispatchOverheadUS = 0.08

// Run executes the region under cfg and a package power cap of capW watts
// and returns time and energy. regionSeed keys the deterministic
// iteration-cost noise of ImbRandom regions so repeated runs of the same
// (region, config) agree while different regions diverge.
func (ex *Executor) Run(model *frontend.RegionModel, regionSeed uint64, cfg Config, capW float64) Result {
	m := ex.M
	n := cfg.Threads
	if n < 1 {
		n = 1
	}
	if n > m.NumHWThreads() {
		n = m.NumHWThreads()
	}
	f, throttle := m.FreqAtCap(n, capW)

	// --- Rate model -----------------------------------------------------
	cores := n
	if cores > m.NumCores() {
		cores = m.NumCores()
	}
	smtWays := float64(n) / float64(cores)

	// Per-iteration compute cycles on one core.
	cycles := model.FlopsPerIter/m.FlopsPerCycle +
		model.IntOpsPerIter/m.IntOpsPerCycle +
		(model.LoadsPerIter+model.StoresPerIter)/m.LoadsPerCycle
	tc := cycles / (f * 1e9) // seconds, one thread owning a core

	// DRAM traffic per iteration after cache filtering. Fine-grained
	// chunking sacrifices spatial locality: a thread working iterations
	// {k, k+n·c, ...} loses the streaming/prefetch benefit contiguous
	// ranges enjoy, so the stride-1 discount scales with chunk contiguity.
	contig := cfg.Chunk
	if contig <= 0 {
		if cfg.Sched == ScheduleStatic {
			contig = model.Trips / int64(n)
		} else {
			contig = 1
		}
	}
	locality := float64(contig) / 32
	if locality > 1 {
		locality = 1
	}
	dramBytes := model.BytesPerIter() * ex.dramFactor(model, locality)
	// Uncore frequency scales with the core clock under RAPL, so the
	// sustained bandwidth degrades when the cap pulls frequency below
	// base. This is what makes the best thread count cap-dependent for
	// memory-bound regions: large teams force a low frequency, which
	// starves the memory system they depend on.
	bwScale := 0.45 + 0.55*math.Min(1, f/m.FBase)
	perThreadBW := math.Min(m.MemBWSingleGBs, m.MemBWGBs*bwScale/float64(n)) * 1e9
	tm := 0.0
	if dramBytes > 0 {
		tm = dramBytes / perThreadBW
	}

	// SMT: siblings share a core. Memory-stalled threads overlap well
	// (SMTBoost); compute-bound threads serialize.
	if smtWays > 1 {
		memFrac := 0.0
		if tc+tm > 0 {
			memFrac = tm / (tc + tm)
		}
		boost := 1 + (m.SMTBoost-1)*memFrac
		tc = tc * smtWays / boost
	}

	// Roofline: compute and memory overlap; the slower stream dominates.
	tauIter := math.Max(tc, tm)
	if tauIter <= 0 {
		tauIter = 1e-12
	}
	tauIter /= throttle

	// --- Schedule model ---------------------------------------------------
	prof := newProfile(model, regionSeed)
	makespanIters, nDispatch := schedule(cfg, model.Trips, n, prof)
	dispatchCost := float64(nDispatch) * dispatchOverheadUS * 1e-6 * (m.FBase / f) / throttle
	// Dispatches contend on one queue lock: mild penalty for big teams.
	if cfg.Sched != ScheduleStatic && n > 8 {
		dispatchCost *= 1 + 0.02*float64(n-8)
	}
	loopTime := makespanIters*tauIter + dispatchCost

	// --- Fork/join/reduction overheads ------------------------------------
	forkJoin := (m.ForkBaseUS + m.ForkPerThread*float64(n)) * 1e-6 * (m.FBase / f) / throttle
	redCost := 0.0
	if model.HasReduction {
		redCost = 0.25e-6 * math.Log2(float64(n)+1) * (m.FBase / f) / throttle
	}
	total := loopTime + forkJoin + redCost

	// --- Energy model -----------------------------------------------------
	// Mean utilization: total weighted work over n·makespan.
	util := 1.0
	if makespanIters > 0 {
		util = float64(model.Trips) / (float64(n) * makespanIters)
		if util > 1 {
			util = 1
		}
	}
	cores, activeSockets := activeCoresSockets(m, n)
	idleSockets := m.Sockets - activeSockets
	idleCores := m.NumCores() - cores
	staticP := float64(activeSockets)*m.Uncore + float64(idleSockets)*m.UncoreIdle +
		float64(cores)*m.CoreStatic + float64(idleCores)*m.CoreIdle
	dynP := float64(cores) * m.DynCoeff * f * f * f * util * throttle
	pkgE := total * (staticP + dynP)
	dramE := dramBytes * float64(model.Trips) * ex.DRAMEnergyPerByte

	return Result{
		TimeSec:     total,
		PkgEnergyJ:  pkgE,
		DRAMEnergyJ: dramE,
		FreqGHz:     f,
		Throttled:   throttle < 1,
		Utilization: util,
	}
}

// RunDefault executes the region under the default OpenMP configuration.
func (ex *Executor) RunDefault(model *frontend.RegionModel, regionSeed uint64, capW float64) Result {
	return ex.Run(model, regionSeed, DefaultConfig(ex.M), capW)
}

// activeCoresSockets mirrors hw.Machine.activeTopology (package-private
// there) for the energy split.
func activeCoresSockets(m *hw.Machine, threads int) (cores, sockets int) {
	cores = threads
	if cores > m.NumCores() {
		cores = m.NumCores()
	}
	sockets = m.Sockets
	if cores <= m.CoresPerSocket/2 {
		sockets = 1
	}
	return cores, sockets
}

// dramFactor converts raw element traffic into DRAM-visible traffic: a
// working-set-driven base miss factor, reduced by streaming prefetch
// (scaled by the schedule's chunk contiguity in [0,1]), inflated by
// random gathers (cache-line waste).
func (ex *Executor) dramFactor(model *frontend.RegionModel, locality float64) float64 {
	ws := float64(model.WorkingSet)
	l2 := float64(ex.M.L2TotalBytes())
	l3 := float64(ex.M.L3TotalBytes())
	var base float64
	switch {
	case ws <= l2:
		base = 0.02
	case ws <= l3:
		base = 0.02 + 0.14*(ws-l2)/(l3-l2)
	default:
		grow := math.Log(ws/l3) / math.Log(32)
		if grow > 1 {
			grow = 1
		}
		base = 0.16 + 0.84*grow
	}
	seqAdj := 1 - 0.35*model.SeqFrac*locality
	gatherAdj := 1 + 2.5*model.GatherFrac
	fac := base * seqAdj * gatherAdj
	if fac < 0.01 {
		fac = 0.01
	}
	if fac > 4 {
		fac = 4
	}
	return fac
}

// --- Iteration cost profile -------------------------------------------

// noiseBlocks is the resolution of the correlated cost-noise field for
// ImbRandom regions: the iteration space divides into this many blocks,
// each with its own lognormal cost factor. Correlated (rather than
// per-iteration iid) noise is essential: Monte Carlo workloads have runs
// of expensive particles, so imbalance survives block partitioning — the
// property that makes dynamic/guided scheduling matter for them.
const noiseBlocks = 256

// profile evaluates the region's relative iteration cost, combining the
// piecewise-linear shape from static analysis with a deterministic
// correlated noise field for ImbRandom regions.
type profile struct {
	pts    [5]float64
	cum    [5]float64 // normalized cumulative integral at knots 0, .25, .5, .75, 1
	rawTot float64    // unnormalized integral over [0,1]
	cv     float64
	seed   uint64
	// noisyCum[i] is the cumulative noisy work over blocks [0, i); only
	// built when cv > 0. Values are in fractions of total mean work.
	noisyCum []float64
	maxBlock float64 // largest single-block relative cost
}

func newProfile(model *frontend.RegionModel, seed uint64) *profile {
	p := &profile{pts: model.CostProfile, seed: seed}
	if model.Imbalance == frontend.ImbRandom {
		p.cv = model.CV
	}
	// Trapezoid cumulative integral of the piecewise-linear shape.
	for i := 1; i < 5; i++ {
		p.cum[i] = p.cum[i-1] + 0.25*(p.pts[i-1]+p.pts[i])/2
	}
	p.rawTot = p.cum[4]
	if p.rawTot <= 0 {
		p.rawTot = 1
	}
	// Normalize so cum(1) == 1 exactly.
	inv := 1 / p.rawTot
	for i := range p.cum {
		p.cum[i] *= inv
	}
	if p.cv > 0 {
		p.noisyCum = make([]float64, noiseBlocks+1)
		p.maxBlock = 0
		for i := 0; i < noiseBlocks; i++ {
			a := float64(i) / noiseBlocks
			b := float64(i+1) / noiseBlocks
			base := p.smoothCumAt(b) - p.smoothCumAt(a)
			z := normHash(p.seed, uint64(i))
			factor := math.Exp(p.cv*z - p.cv*p.cv/2)
			w := base * factor
			p.noisyCum[i+1] = p.noisyCum[i] + w
			if rel := w * noiseBlocks; rel > p.maxBlock {
				p.maxBlock = rel
			}
		}
	}
	return p
}

// smoothCumAt returns the noise-free ∫₀ˣ w(u)du for x in [0,1],
// normalized so the full integral is 1.
func (p *profile) smoothCumAt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	seg := int(x * 4)
	if seg > 3 {
		seg = 3
	}
	u0 := float64(seg) * 0.25
	t := (x - u0) / 0.25
	w0, w1 := p.pts[seg], p.pts[seg+1]
	segInt := 0.25 * (w0*t + (w1-w0)*t*t/2)
	return p.cum[seg] + segInt/p.rawTot
}

// cumAt returns the (noisy, for ImbRandom) cumulative work fraction.
func (p *profile) cumAt(x float64) float64 {
	if p.noisyCum == nil {
		return p.smoothCumAt(x)
	}
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return p.noisyCum[noiseBlocks]
	}
	pos := x * noiseBlocks
	blk := int(pos)
	frac := pos - float64(blk)
	return p.noisyCum[blk] + frac*(p.noisyCum[blk+1]-p.noisyCum[blk])
}

// chunkWork returns the work of iterations [lo, hi) in mean-iteration
// units.
func (p *profile) chunkWork(lo, hi, trips int64) float64 {
	a := float64(lo) / float64(trips)
	b := float64(hi) / float64(trips)
	w := (p.cumAt(b) - p.cumAt(a)) * float64(trips)
	if w < 0 {
		w = 0
	}
	return w
}

// normHash maps (seed, idx) to an approximately standard-normal value,
// deterministically (sum of 4 uniforms, Irwin–Hall shifted and scaled).
func normHash(seed, idx uint64) float64 {
	x := seed ^ (idx * 0x9e3779b97f4a7c15)
	s := 0.0
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		s += float64(z>>11) / (1 << 53)
	}
	// Irwin–Hall(4): mean 2, var 4/12 → std 0.5774.
	return (s - 2) / 0.57735
}

// --- Schedulers ----------------------------------------------------------

// exactSimLimit bounds the chunk count for exact discrete simulation;
// beyond it the analytic approximations take over.
const exactSimLimit = 16384

// schedule computes the loop makespan in mean-iteration units and the
// number of queue dispatch operations.
func schedule(cfg Config, trips int64, n int, prof *profile) (makespan float64, dispatches int64) {
	if n < 1 {
		n = 1
	}
	switch cfg.Sched {
	case ScheduleStatic:
		return staticMakespan(cfg.Chunk, trips, n, prof), 0
	case ScheduleDynamic:
		chunk := cfg.Chunk
		if chunk <= 0 {
			chunk = 1
		}
		return dynamicMakespan(chunk, trips, n, prof)
	case ScheduleGuided:
		minChunk := cfg.Chunk
		if minChunk <= 0 {
			minChunk = 1
		}
		return guidedMakespan(minChunk, trips, n, prof)
	}
	return float64(trips) / float64(n), 0
}

// staticMakespan handles both block partition (chunk 0) and round-robin
// chunked static scheduling.
func staticMakespan(chunk, trips int64, n int, prof *profile) float64 {
	if n == 1 {
		return prof.chunkWork(0, trips, trips)
	}
	if chunk <= 0 {
		// Block partition: thread k gets one contiguous range.
		per := (trips + int64(n) - 1) / int64(n)
		maxW := 0.0
		for k := int64(0); k < int64(n); k++ {
			lo := k * per
			if lo >= trips {
				break
			}
			hi := lo + per
			if hi > trips {
				hi = trips
			}
			w := prof.chunkWork(lo, hi, trips)
			if w > maxW {
				maxW = w
			}
		}
		return maxW
	}
	nChunks := (trips + chunk - 1) / chunk
	if nChunks <= exactSimLimit {
		loads := make([]float64, n)
		for j := int64(0); j < nChunks; j++ {
			lo := j * chunk
			hi := lo + chunk
			if hi > trips {
				hi = trips
			}
			loads[int(j)%n] += prof.chunkWork(lo, hi, trips)
		}
		return maxOf(loads)
	}
	// Very many chunks: round-robin interleaving samples both the shape
	// profile and the correlated noise field uniformly, so the imbalance
	// vanishes up to one-chunk granularity.
	mean := prof.chunkWork(0, trips, trips) / float64(n)
	return mean * (1 + float64(chunk)/float64(trips))
}

// threadHeap is a min-heap of thread available-times.
type threadHeap []float64

func (h threadHeap) Len() int            { return len(h) }
func (h threadHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h threadHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *threadHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *threadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// dynamicMakespan simulates the work queue exactly for moderate chunk
// counts and approximates it analytically beyond that.
func dynamicMakespan(chunk, trips int64, n int, prof *profile) (float64, int64) {
	nChunks := (trips + chunk - 1) / chunk
	if n == 1 {
		return prof.chunkWork(0, trips, trips), nChunks
	}
	if nChunks <= exactSimLimit {
		h := make(threadHeap, n)
		heap.Init(&h)
		for j := int64(0); j < nChunks; j++ {
			lo := j * chunk
			hi := lo + chunk
			if hi > trips {
				hi = trips
			}
			w := prof.chunkWork(lo, hi, trips)
			t := heap.Pop(&h).(float64)
			heap.Push(&h, t+w)
		}
		makespan := 0.0
		for _, t := range h {
			if t > makespan {
				makespan = t
			}
		}
		return makespan, nChunks
	}
	// Many tiny chunks: dynamic balances almost perfectly; the tail adds
	// at most one chunk of the costliest region (shape or noise block).
	mean := prof.chunkWork(0, trips, trips) / float64(n)
	peak := maxProfilePoint(prof)
	if prof.maxBlock > peak {
		peak = prof.maxBlock
	}
	return mean + float64(chunk)*peak, nChunks
}

// guidedMakespan simulates guided self-scheduling: each dispatch takes
// ceil(remaining/(2n)) iterations, floored at the minimum chunk.
func guidedMakespan(minChunk, trips int64, n int, prof *profile) (float64, int64) {
	if n == 1 {
		return prof.chunkWork(0, trips, trips), 1
	}
	h := make(threadHeap, n)
	heap.Init(&h)
	var lo, dispatches int64
	for lo < trips {
		remaining := trips - lo
		c := (remaining + int64(2*n) - 1) / int64(2*n)
		if c < minChunk {
			c = minChunk
		}
		hi := lo + c
		if hi > trips {
			hi = trips
		}
		w := prof.chunkWork(lo, hi, trips)
		t := heap.Pop(&h).(float64)
		heap.Push(&h, t+w)
		lo = hi
		dispatches++
		if dispatches > 4*exactSimLimit {
			// Pathological minChunk; fall back to the dynamic approximation.
			rest, d2 := dynamicMakespan(minChunk, trips-lo, n, prof)
			makespan := 0.0
			for _, t := range h {
				if t > makespan {
					makespan = t
				}
			}
			return makespan + rest, dispatches + d2
		}
	}
	makespan := 0.0
	for _, t := range h {
		if t > makespan {
			makespan = t
		}
	}
	return makespan, dispatches
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func maxProfilePoint(p *profile) float64 {
	m := p.pts[0]
	for _, v := range p.pts[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
