package rgcn

import (
	"fmt"
	"testing"

	"pnptuner/internal/programl"
	"pnptuner/internal/tensor"
)

// compileAll compiles a graph list.
func compileAll(graphs []*programl.Graph) []*CompiledGraph {
	cgs := make([]*CompiledGraph, len(graphs))
	for i, g := range graphs {
		cgs[i] = CompileGraph(g)
	}
	return cgs
}

// assertBatchBitIdentical compares every observable of two batches built
// over the same graphs: offsets, norms, CSR plans, and (bit-for-bit) the
// full forward pass through an embedding and a layer.
func assertBatchBitIdentical(t *testing.T, label string, ref, got *Batch) {
	t.Helper()
	if ref.NumGraphs() != got.NumGraphs() || ref.NumNodes() != got.NumNodes() {
		t.Fatalf("%s: shape mismatch: %d/%d graphs, %d/%d nodes",
			label, ref.NumGraphs(), got.NumGraphs(), ref.NumNodes(), got.NumNodes())
	}
	for g := 0; g <= ref.NumGraphs(); g++ {
		if ref.Offsets[g] != got.Offsets[g] {
			t.Fatalf("%s: offset %d: %d vs %d", label, g, ref.Offsets[g], got.Offsets[g])
		}
	}
	for d := 0; d < NumDirections; d++ {
		if ref.Adj.EdgeCount(d) != got.Adj.EdgeCount(d) {
			t.Fatalf("%s: dir %d: %d vs %d edges", label, d, ref.Adj.EdgeCount(d), got.Adj.EdgeCount(d))
		}
		for i, v := range ref.Adj.Norm[d] {
			if got.Adj.Norm[d][i] != v {
				t.Fatalf("%s: dir %d norm[%d]: %g vs %g", label, d, i, v, got.Adj.Norm[d][i])
			}
		}
		rp, gp := &ref.Adj.plans[d], &got.Adj.plans[d]
		for i, v := range rp.dstPtr {
			if gp.dstPtr[i] != v {
				t.Fatalf("%s: dir %d dstPtr[%d]: %d vs %d", label, d, i, v, gp.dstPtr[i])
			}
		}
		for i, v := range rp.dstSrc {
			if gp.dstSrc[i] != v {
				t.Fatalf("%s: dir %d dstSrc[%d]: %d vs %d", label, d, i, v, gp.dstSrc[i])
			}
		}
		for i, v := range rp.srcPtr {
			if gp.srcPtr[i] != v {
				t.Fatalf("%s: dir %d srcPtr[%d]: %d vs %d", label, d, i, v, gp.srcPtr[i])
			}
		}
		for i, v := range rp.srcDst {
			if gp.srcDst[i] != v {
				t.Fatalf("%s: dir %d srcDst[%d]: %d vs %d", label, d, i, v, gp.srcDst[i])
			}
		}
	}
	// Full forward through shared parameters must be bit-identical.
	emb := NewEmbedding("e", 64, 8, tensor.NewRNG(9))
	layer := NewLayer("l", emb.OutDim(), 8, tensor.NewRNG(10))
	layer.SetGraph(ref.Adj)
	outRef := layer.Forward(emb.ForwardBatch(ref)).Clone()
	layer.SetGraph(got.Adj)
	outGot := layer.Forward(emb.ForwardBatch(got))
	for i := range outRef.Data {
		if outRef.Data[i] != outGot.Data[i] {
			t.Fatalf("%s: forward bit-drift at %d: %g vs %g", label, i, outRef.Data[i], outGot.Data[i])
		}
	}
}

// TestMergeCompiledMatchesNewBatch is the compile-once parity guarantee:
// merging precompiled CSR plans is bit-identical to rebuilding and
// re-finalizing the block-diagonal adjacency from edge lists.
func TestMergeCompiledMatchesNewBatch(t *testing.T) {
	rng := tensor.NewRNG(77)
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(12)
		graphs := make([]*programl.Graph, n)
		for i := range graphs {
			graphs[i] = randomGraph(rng, fmt.Sprintf("t%d-g%d", trial, i))
		}
		ref := NewBatch(graphs, nil)
		got := MergeCompiled(compileAll(graphs))
		assertBatchBitIdentical(t, fmt.Sprintf("trial %d", trial), ref, got)
	}
}

// TestMergerReuseIsStateless checks that a Merger's buffer reuse never
// leaks state between batches: merging A, then a larger B, then A again
// reproduces A's batch exactly.
func TestMergerReuseIsStateless(t *testing.T) {
	rng := tensor.NewRNG(123)
	small := compileAll([]*programl.Graph{randomGraph(rng, "s0"), randomGraph(rng, "s1")})
	var bigGraphs []*programl.Graph
	for i := 0; i < 9; i++ {
		bigGraphs = append(bigGraphs, randomGraph(rng, fmt.Sprintf("b%d", i)))
	}
	big := compileAll(bigGraphs)

	var mg Merger
	mg.Merge(small)
	mg.Merge(big)
	got := mg.Merge(small)
	ref := MergeCompiled(small)
	assertBatchBitIdentical(t, "reuse", ref, got)
}

// TestCompiledGraphClampsTokens checks compile-time clamping of negative
// tokens and gather-time clamping of tokens past the model vocabulary.
func TestCompiledGraphClampsTokens(t *testing.T) {
	g := &programl.Graph{
		RegionID: "clamp",
		Nodes: []programl.Node{
			{Token: -3},
			{Token: 2},
			{Token: 999, Kind: programl.NodeKind(2)},
		},
	}
	cg := CompileGraph(g)
	if cg.Tokens[0] != 0 {
		t.Fatalf("negative token not clamped: %d", cg.Tokens[0])
	}
	if cg.Tokens[2] != 999 {
		t.Fatalf("in-range clamp too early: %d", cg.Tokens[2])
	}
	emb := NewEmbedding("e", 10, 4, tensor.NewRNG(1))
	out := emb.ForwardBatch(MergeCompiled([]*CompiledGraph{cg}))
	// Node 2's token (999) exceeds the 10-token vocabulary: it must gather
	// row 0, exactly like the raw-graph path.
	for c := 0; c < emb.Dim; c++ {
		if out.At(2, c) != emb.Table.W.At(0, c) {
			t.Fatalf("out-of-vocab token did not clamp to row 0 at col %d", c)
		}
	}
	if out.At(2, emb.Dim+2) != 1 {
		t.Fatal("kind tag not set")
	}
}

func ExampleMergeCompiled() {
	a := &programl.Graph{
		RegionID: "a",
		Nodes:    []programl.Node{{Token: 1}, {Token: 2}},
		Edges:    []programl.Edge{{Src: 0, Dst: 1, Rel: programl.RelControl}},
	}
	b := &programl.Graph{
		RegionID: "b",
		Nodes:    []programl.Node{{Token: 3}, {Token: 4}, {Token: 5}},
		Edges:    []programl.Edge{{Src: 1, Dst: 2, Rel: programl.RelData}},
	}
	// Compile once per graph (in production this artifact is cached on the
	// region and reused by every epoch, fold, and serving window)...
	ca, cb := CompileGraph(a), CompileGraph(b)
	// ...then merge precompiled plans in O(edges) — no edge re-grouping,
	// no re-finalization.
	batch := MergeCompiled([]*CompiledGraph{ca, cb})
	fmt.Println("graphs:", batch.NumGraphs())
	fmt.Println("total nodes:", batch.NumNodes())
	lo, hi := batch.Segment(1)
	fmt.Printf("graph b owns rows [%d, %d)\n", lo, hi)
	fmt.Println("batched tokens:", batch.Tokens)
	// Output:
	// graphs: 2
	// total nodes: 5
	// graph b owns rows [2, 5)
	// batched tokens: [1 2 3 4 5]
}
