package rgcn

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"pnptuner/internal/programl"
	"pnptuner/internal/tensor"
)

// randomGraph builds a connected-ish random graph with all relations.
func randomGraph(rng *tensor.RNG, id string) *programl.Graph {
	n := 3 + rng.Intn(40)
	g := &programl.Graph{RegionID: id}
	for i := 0; i < n; i++ {
		g.Nodes = append(g.Nodes, programl.Node{
			Kind:  programl.NodeKind(rng.Intn(3)),
			Token: rng.Intn(50),
		})
	}
	nEdges := n + rng.Intn(3*n)
	for i := 0; i < nEdges; i++ {
		g.Edges = append(g.Edges, programl.Edge{
			Src: rng.Intn(n),
			Dst: rng.Intn(n),
			Rel: programl.Relation(rng.Intn(int(programl.NumRelations))),
		})
	}
	return g
}

func maxAbsDiff(a, b *tensor.Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestFinalizedPropagateMatchesReference checks that the CSR plan path
// produces the same message passing as the sequential edge-list path.
func TestFinalizedPropagateMatchesReference(t *testing.T) {
	rng := tensor.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, "p")
		ref := BuildAdjacency(g)
		fin := BuildAdjacency(g).Finalize()
		h := tensor.New(len(g.Nodes), 7)
		h.FillUniform(rng, 1)
		for d := 0; d < NumDirections; d++ {
			if diff := maxAbsDiff(ref.propagate(d, h), fin.propagate(d, h)); diff > 1e-9 {
				t.Fatalf("trial %d dir %d: propagate diff %g", trial, d, diff)
			}
			if diff := maxAbsDiff(ref.propagateT(d, h), fin.propagateT(d, h)); diff > 1e-9 {
				t.Fatalf("trial %d dir %d: propagateT diff %g", trial, d, diff)
			}
		}
	}
}

// TestBatchForwardMatchesPerGraph is the core parity guarantee: one
// block-diagonal batched forward equals N per-graph forwards within 1e-9.
func TestBatchForwardMatchesPerGraph(t *testing.T) {
	rng := tensor.NewRNG(22)
	var graphs []*programl.Graph
	for i := 0; i < 9; i++ {
		graphs = append(graphs, randomGraph(rng, fmt.Sprintf("g%d", i)))
	}
	emb := NewEmbedding("e", 50, 12, tensor.NewRNG(5))
	layer := NewLayer("l", emb.OutDim(), 16, tensor.NewRNG(6))

	batch := NewBatch(graphs, nil)
	hb := emb.ForwardBatch(batch)
	layer.SetGraph(batch.Adj)
	// Forward results live in layer-owned buffers, so snapshot the batched
	// output before running the per-graph passes.
	outBatch := layer.Forward(hb).Clone()

	for gi, g := range graphs {
		h := emb.Forward(g)
		layer.SetGraph(BuildAdjacency(g))
		out := layer.Forward(h)
		lo, hi := batch.Segment(gi)
		if hi-lo != out.Rows {
			t.Fatalf("graph %d: segment %d rows, forward %d", gi, hi-lo, out.Rows)
		}
		for r := 0; r < out.Rows; r++ {
			for c := 0; c < out.Cols; c++ {
				if d := math.Abs(out.At(r, c) - outBatch.At(lo+r, c)); d > 1e-9 {
					t.Fatalf("graph %d node %d col %d: batched %g vs per-graph %g",
						gi, r, c, outBatch.At(lo+r, c), out.At(r, c))
				}
			}
		}
	}
}

// TestBatchBackwardMatchesPerGraph checks gradient parity: the batched
// backward accumulates the same parameter gradients as N per-graph
// backwards.
func TestBatchBackwardMatchesPerGraph(t *testing.T) {
	rng := tensor.NewRNG(33)
	var graphs []*programl.Graph
	for i := 0; i < 6; i++ {
		graphs = append(graphs, randomGraph(rng, fmt.Sprintf("g%d", i)))
	}
	const dim, hidden = 10, 8
	embA := NewEmbedding("e", 50, dim, tensor.NewRNG(5))
	embB := NewEmbedding("e", 50, dim, tensor.NewRNG(5))
	layA := NewLayer("l", embA.OutDim(), hidden, tensor.NewRNG(6))
	layB := NewLayer("l", embB.OutDim(), hidden, tensor.NewRNG(6))

	batch := NewBatch(graphs, nil)
	dout := tensor.New(batch.NumNodes(), hidden)
	dout.FillUniform(rng, 1)

	// Per-graph reference: forward+backward each graph, grads accumulate.
	for gi, g := range graphs {
		h := embA.Forward(g)
		layA.SetGraph(BuildAdjacency(g))
		layA.Forward(h)
		lo, hi := batch.Segment(gi)
		dg := tensor.New(hi-lo, hidden)
		for r := lo; r < hi; r++ {
			copy(dg.Row(r-lo), dout.Row(r))
		}
		embA.Backward(layA.Backward(dg))
	}

	// Batched: one pass.
	hb := embB.ForwardBatch(batch)
	layB.SetGraph(batch.Adj)
	layB.Forward(hb)
	embB.Backward(layB.Backward(dout))

	pa, pb := append(layA.Params(), embA.Params()...), append(layB.Params(), embB.Params()...)
	for i := range pa {
		if diff := maxAbsDiff(pa[i].Grad, pb[i].Grad); diff > 1e-9 {
			t.Fatalf("%s: grad diff %g between per-graph and batched", pa[i].Name, diff)
		}
	}
}

// TestBatchParallelRace drives the batched forward/backward with the
// worker pool forced on (GOMAXPROCS raised, parallel gate floored) so
// `go test -race` exercises the concurrent scatter paths.
func TestBatchParallelRace(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(oldProcs)
	oldMin := parallelMinWork
	parallelMinWork = 1
	defer func() { parallelMinWork = oldMin }()

	rng := tensor.NewRNG(44)
	var graphs []*programl.Graph
	for i := 0; i < 12; i++ {
		graphs = append(graphs, randomGraph(rng, fmt.Sprintf("g%d", i)))
	}
	emb := NewEmbedding("e", 50, 12, tensor.NewRNG(5))
	layer := NewLayer("l", emb.OutDim(), 16, tensor.NewRNG(6))
	batch := NewBatch(graphs, nil)

	for iter := 0; iter < 3; iter++ {
		h := emb.ForwardBatch(batch)
		layer.SetGraph(batch.Adj)
		out := layer.Forward(h)
		emb.Backward(layer.Backward(out))
	}
}

// TestBatchParallelDeterministic checks that worker-pool execution does
// not change results: the pooled path must be bit-identical across runs
// and GOMAXPROCS settings, because every output row is owned by exactly
// one worker.
func TestBatchParallelDeterministic(t *testing.T) {
	rng := tensor.NewRNG(55)
	var graphs []*programl.Graph
	for i := 0; i < 8; i++ {
		graphs = append(graphs, randomGraph(rng, fmt.Sprintf("g%d", i)))
	}
	emb := NewEmbedding("e", 50, 12, tensor.NewRNG(5))
	layer := NewLayer("l", emb.OutDim(), 16, tensor.NewRNG(6))
	batch := NewBatch(graphs, nil)

	run := func() *tensor.Matrix {
		h := emb.ForwardBatch(batch)
		layer.SetGraph(batch.Adj)
		return layer.Forward(h)
	}
	ref := run()

	oldMin := parallelMinWork
	parallelMinWork = 1
	defer func() { parallelMinWork = oldMin }()
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		got := run()
		runtime.GOMAXPROCS(old)
		for i := range ref.Data {
			if ref.Data[i] != got.Data[i] {
				t.Fatalf("GOMAXPROCS=%d: element %d differs: %g vs %g",
					procs, i, got.Data[i], ref.Data[i])
			}
		}
	}
}

func ExampleBuildAdjacency() {
	g := &programl.Graph{
		RegionID: "example",
		Nodes: []programl.Node{
			{Kind: programl.KindInstruction, Token: 1},
			{Kind: programl.KindInstruction, Token: 2},
			{Kind: programl.KindVariable, Token: 3},
		},
		Edges: []programl.Edge{
			{Src: 0, Dst: 1, Rel: programl.RelControl},
			{Src: 2, Dst: 1, Rel: programl.RelData},
		},
	}
	adj := BuildAdjacency(g)
	fmt.Println("nodes:", adj.NumNodes)
	fmt.Println("control edges:", len(adj.Edges[programl.RelControl]))
	// Node 1 has one incoming control and one incoming data edge, each
	// normalized by its per-relation in-degree.
	fmt.Println("control norm of node 1:", adj.Norm[programl.RelControl][1])
	// Output:
	// nodes: 3
	// control edges: 1
	// control norm of node 1: 1
}

func ExampleNewBatch() {
	a := &programl.Graph{
		RegionID: "a",
		Nodes:    []programl.Node{{Token: 1}, {Token: 2}},
		Edges:    []programl.Edge{{Src: 0, Dst: 1, Rel: programl.RelControl}},
	}
	b := &programl.Graph{
		RegionID: "b",
		Nodes:    []programl.Node{{Token: 3}, {Token: 4}, {Token: 5}},
		Edges:    []programl.Edge{{Src: 1, Dst: 2, Rel: programl.RelData}},
	}
	batch := NewBatch([]*programl.Graph{a, b}, nil)
	fmt.Println("graphs:", batch.NumGraphs())
	fmt.Println("total nodes:", batch.NumNodes())
	lo, hi := batch.Segment(1)
	fmt.Printf("graph b owns rows [%d, %d)\n", lo, hi)
	// The merged adjacency is block-diagonal: b's data edge lands at
	// offset 2.
	e := batch.Adj.Edges[programl.RelData][0]
	fmt.Printf("merged data edge: %d -> %d\n", e[0], e[1])
	// Output:
	// graphs: 2
	// total nodes: 5
	// graph b owns rows [2, 5)
	// merged data edge: 3 -> 4
}
