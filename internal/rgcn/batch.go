// Batched, parallel graph inference: N PROGRAML graphs merge into one
// block-diagonal adjacency (offset node IDs, concatenated per-relation
// edge lists and norms) so a single forward pass scores a whole minibatch,
// and a CSR execution plan regroups every relation-direction's edges by
// output row so the per-relation scatter-add runs race-free across the
// tensor worker pool. The plan path is numerically equivalent to the
// per-graph reference path up to float summation order.
package rgcn

import (
	"fmt"

	"pnptuner/internal/programl"
	"pnptuner/internal/tensor"
)

// parallelMinWork gates the pooled propagate path: below this volume
// (edges × feature width) the per-direction scatter runs on the calling
// goroutine. Tests lower it to force the pool on for small graphs.
var parallelMinWork = 1 << 14

// csrPlan is one relation-direction's edges regrouped for parallel
// execution: by destination for the forward gather (propagate) and by
// source for the backward transpose (propagateT). Each worker owns a
// disjoint range of output rows, so no scatter-add races.
type csrPlan struct {
	dstPtr []int32 // len NumNodes+1; in-neighbours of node i are dstSrc[dstPtr[i]:dstPtr[i+1]]
	dstSrc []int32
	srcPtr []int32 // len NumNodes+1; out-neighbours of node i are srcDst[srcPtr[i]:srcPtr[i+1]]
	srcDst []int32
}

// edgeCount returns the number of edges the plan routes.
func (p *csrPlan) edgeCount() int { return len(p.dstSrc) }

// buildCSR groups values by key (stable within a key), returning the
// rowptr/index arrays of a CSR layout over n rows.
func buildCSR(n int, edges [][2]int32, keyIdx, valIdx int) (ptr, val []int32) {
	ptr = make([]int32, n+1)
	for _, e := range edges {
		ptr[e[keyIdx]+1]++
	}
	for i := 0; i < n; i++ {
		ptr[i+1] += ptr[i]
	}
	val = make([]int32, len(edges))
	next := make([]int32, n)
	for _, e := range edges {
		k := e[keyIdx]
		val[ptr[k]+next[k]] = e[valIdx]
		next[k]++
	}
	return ptr, val
}

// Finalize precomputes the per-direction CSR execution plans that let
// propagate and propagateT run across the worker pool. BuildAdjacency
// leaves the plan unset (the sequential per-graph reference path);
// NewBatch finalizes its merged adjacency. Finalize is idempotent and
// returns a for chaining.
func (a *Adjacency) Finalize() *Adjacency {
	if a.plans != nil {
		return a
	}
	plans := make([]csrPlan, NumDirections)
	for d := 0; d < NumDirections; d++ {
		p := &plans[d]
		p.dstPtr, p.dstSrc = buildCSR(a.NumNodes, a.Edges[d], 1, 0)
		p.srcPtr, p.srcDst = buildCSR(a.NumNodes, a.Edges[d], 0, 1)
	}
	a.plans = plans
	return a
}

// gather computes out[i] = norm[i] · Σ_{src→i} h[src] for every node i,
// fanning destination rows out across the pool when the volume warrants.
// The sequential path calls the range helper directly (no closure), so a
// single-worker pass allocates nothing; per-row independence makes both
// paths bit-identical.
func (p *csrPlan) gather(norm []float64, h, out *tensor.Matrix) {
	if len(p.dstSrc)*h.Cols < parallelMinWork || tensor.Workers() == 1 {
		p.gatherRange(norm, h, out, 0, out.Rows)
		return
	}
	tensor.ParallelFor(out.Rows, func(lo, hi int) { p.gatherRange(norm, h, out, lo, hi) })
}

func (p *csrPlan) gatherRange(norm []float64, h, out *tensor.Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		start, end := p.dstPtr[i], p.dstPtr[i+1]
		if start == end {
			continue
		}
		orow := out.Row(i)
		for _, s := range p.dstSrc[start:end] {
			for c, v := range h.Row(int(s)) {
				orow[c] += v
			}
		}
		w := norm[i]
		for c := range orow {
			orow[c] *= w
		}
	}
}

// gatherT computes out[i] = Σ_{i→dst} norm[dst] · h[dst] — the transpose
// of gather, grouped by source so backward scatter is also race-free.
func (p *csrPlan) gatherT(norm []float64, h, out *tensor.Matrix) {
	if len(p.srcDst)*h.Cols < parallelMinWork || tensor.Workers() == 1 {
		p.gatherTRange(norm, h, out, 0, out.Rows)
		return
	}
	tensor.ParallelFor(out.Rows, func(lo, hi int) { p.gatherTRange(norm, h, out, lo, hi) })
}

func (p *csrPlan) gatherTRange(norm []float64, h, out *tensor.Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		start, end := p.srcPtr[i], p.srcPtr[i+1]
		if start == end {
			continue
		}
		orow := out.Row(i)
		for _, dn := range p.srcDst[start:end] {
			w := norm[dn]
			for c, v := range h.Row(int(dn)) {
				orow[c] += w * v
			}
		}
	}
}

// Batch merges N program graphs into one block-diagonal adjacency so a
// single forward pass scores the whole minibatch: node i of graph g
// becomes row Offsets[g]+i of the batched feature matrix, per-relation
// edge lists concatenate with offset node IDs, and in-degree norms carry
// over unchanged (block-diagonal merging cannot create new in-edges).
type Batch struct {
	// Graphs holds the source graphs when the batch was built from raw
	// graphs (NewBatch); batches merged from compiled artifacts
	// (MergeCompiled) leave it nil and carry Tokens/Kinds instead.
	Graphs []*programl.Graph
	// Offsets has NumGraphs+1 entries; graph g owns feature rows
	// [Offsets[g], Offsets[g+1]).
	Offsets []int
	// Adj is the merged adjacency, finalized for pooled execution.
	Adj *Adjacency
	// Tokens and Kinds, when set, are the batch-wide embedding gather
	// arrays (node i of graph g at index Offsets[g]+i) — the compiled fast
	// path ForwardBatch uses instead of walking Graphs.
	Tokens []int32
	Kinds  []uint8
}

// NewBatch merges graphs into a batch. adjs may supply prebuilt per-graph
// adjacencies (index-aligned with graphs, e.g. from a cache); pass nil to
// build them here.
func NewBatch(graphs []*programl.Graph, adjs []*Adjacency) *Batch {
	if adjs != nil && len(adjs) != len(graphs) {
		panic(fmt.Sprintf("rgcn: %d adjacencies for %d graphs", len(adjs), len(graphs)))
	}
	b := &Batch{Graphs: graphs, Offsets: make([]int, len(graphs)+1)}
	total := 0
	for i, g := range graphs {
		b.Offsets[i] = total
		total += len(g.Nodes)
	}
	b.Offsets[len(graphs)] = total

	merged := &Adjacency{NumNodes: total}
	var nEdges [NumDirections]int
	for gi, g := range graphs {
		adj := adjFor(g, adjs, gi)
		for d := 0; d < NumDirections; d++ {
			nEdges[d] += len(adj.Edges[d])
		}
	}
	for d := 0; d < NumDirections; d++ {
		merged.Edges[d] = make([][2]int32, 0, nEdges[d])
		merged.Norm[d] = make([]float64, total)
	}
	for gi, g := range graphs {
		adj := adjFor(g, adjs, gi)
		off := int32(b.Offsets[gi])
		for d := 0; d < NumDirections; d++ {
			for _, e := range adj.Edges[d] {
				merged.Edges[d] = append(merged.Edges[d], [2]int32{e[0] + off, e[1] + off})
			}
			copy(merged.Norm[d][off:int(off)+adj.NumNodes], adj.Norm[d])
		}
	}
	b.Adj = merged.Finalize()
	return b
}

func adjFor(g *programl.Graph, adjs []*Adjacency, i int) *Adjacency {
	if adjs != nil && adjs[i] != nil {
		if adjs[i].NumNodes != len(g.Nodes) {
			panic(fmt.Sprintf("rgcn: adjacency %d has %d nodes, graph has %d",
				i, adjs[i].NumNodes, len(g.Nodes)))
		}
		return adjs[i]
	}
	return BuildAdjacency(g)
}

// NumGraphs returns the number of graphs in the batch.
func (b *Batch) NumGraphs() int { return len(b.Offsets) - 1 }

// NumNodes returns the total node count across the batch.
func (b *Batch) NumNodes() int { return b.Offsets[len(b.Offsets)-1] }

// Segment returns the feature-row range [lo, hi) of graph g.
func (b *Batch) Segment(g int) (lo, hi int) { return b.Offsets[g], b.Offsets[g+1] }

// ForwardBatch gathers embedding rows for every node of every graph in
// the batch; row Offsets[g]+i holds node i of graph g. The cached token
// list spans the whole batch, so the regular Backward scatters batched
// gradients into the table correctly. Compiled batches (Tokens set)
// gather straight from the flat token/kind arrays; both paths write into
// the embedding's reusable output buffer, which stays valid until the
// next Forward/ForwardBatch on this embedding.
func (e *Embedding) ForwardBatch(b *Batch) *tensor.Matrix {
	n := b.NumNodes()
	out := e.out.Get(n, e.Dim+3)
	e.tokens = growInts(e.tokens, n)
	if b.Tokens != nil {
		for i, t := range b.Tokens {
			tok := int(t)
			if tok >= e.VocabSize {
				tok = 0
			}
			e.tokens[i] = tok
			row := out.Row(i)
			copy(row[:e.Dim], e.Table.W.Row(tok))
			row[e.Dim], row[e.Dim+1], row[e.Dim+2] = 0, 0, 0
			row[e.Dim+int(b.Kinds[i])] = 1
		}
		return out
	}
	i := 0
	for _, g := range b.Graphs {
		for _, node := range g.Nodes {
			tok := node.Token
			if tok < 0 || tok >= e.VocabSize {
				tok = 0
			}
			e.tokens[i] = tok
			row := out.Row(i)
			copy(row[:e.Dim], e.Table.W.Row(tok))
			row[e.Dim], row[e.Dim+1], row[e.Dim+2] = 0, 0, 0
			row[e.Dim+int(node.Kind)] = 1
			i++
		}
	}
	return out
}

// growInts returns s resized to n, reusing its backing array when it fits.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
