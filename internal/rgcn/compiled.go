// Compile-once graph pipeline: a CompiledGraph is the per-graph artifact
// the whole training and serving stack reuses — embedding gather indices,
// node-kind tags, in-degree norms, and finalized per-relation CSR plans —
// built exactly once per graph and merged into block-diagonal minibatches
// by offset-copying the precompiled plans in O(edges), instead of
// re-concatenating edge lists and re-running CSR construction for every
// minibatch of every epoch. MergeCompiled is bit-identical to
// NewBatch-then-Finalize: concatenation preserves each destination's
// in-neighbour order, so the merged CSR arrays are the per-graph arrays
// with node and edge offsets added.
package rgcn

import (
	"pnptuner/internal/programl"
)

// CompiledGraph is a graph compiled for the GNN: the finalized adjacency
// (CSR execution plans included) plus flat token and node-kind arrays for
// the embedding gather. Compile once, reuse for every epoch, fold, and
// prediction sweep — the artifact is immutable and safe to share across
// models and goroutines.
type CompiledGraph struct {
	// Adj is the graph's finalized adjacency (plans built).
	Adj *Adjacency
	// Tokens[i] is node i's embedding row (negative tokens clamp to 0 at
	// compile time; tokens past a model's vocabulary clamp at gather time,
	// since vocabulary size is a model property).
	Tokens []int32
	// Kinds[i] is node i's one-hot kind-tag offset (0..2).
	Kinds []uint8
}

// CompileGraph builds the compile-once artifact for g: normalized
// adjacency, CSR plans, and the embedding gather arrays.
func CompileGraph(g *programl.Graph) *CompiledGraph {
	cg := &CompiledGraph{
		Adj:    BuildAdjacency(g).Finalize(),
		Tokens: make([]int32, len(g.Nodes)),
		Kinds:  make([]uint8, len(g.Nodes)),
	}
	for i, n := range g.Nodes {
		tok := n.Token
		if tok < 0 {
			tok = 0
		}
		cg.Tokens[i] = int32(tok)
		cg.Kinds[i] = uint8(n.Kind)
	}
	return cg
}

// NumNodes returns the compiled graph's node count.
func (cg *CompiledGraph) NumNodes() int { return cg.Adj.NumNodes }

// i32buf is a growable int32 scratch slice for the merged CSR arrays.
type i32buf struct{ s []int32 }

func (b *i32buf) get(n int) []int32 {
	if cap(b.s) < n {
		b.s = make([]int32, n)
	}
	b.s = b.s[:n]
	return b.s
}

// Merger merges compiled graphs into block-diagonal batches with zero
// steady-state allocations: every merged array (offsets, tokens, kinds,
// norms, CSR plans) lives in buffers the Merger owns and grows to the
// largest batch seen. Each Merge invalidates the Batch returned by the
// previous Merge on the same Merger; a Merger is not goroutine-safe.
type Merger struct {
	batch   Batch
	adj     Adjacency
	plans   []csrPlan
	dstPtr  [NumDirections]i32buf
	dstSrc  [NumDirections]i32buf
	srcPtr  [NumDirections]i32buf
	srcDst  [NumDirections]i32buf
	norm    [NumDirections][]float64
	tokens  []int32
	kinds   []uint8
	offsets []int
}

// MergeCompiled merges compiled graphs into one block-diagonal Batch by
// offset-copying their precompiled CSR plans — O(total edges), no edge
// re-grouping, no re-finalization. The result is bit-identical to
// NewBatch over the same graphs. For repeated merging (training epochs,
// serving windows) use a Merger, which reuses its buffers across calls.
func MergeCompiled(cgs []*CompiledGraph) *Batch {
	return new(Merger).Merge(cgs)
}

// Merge merges compiled graphs into a block-diagonal Batch backed by the
// Merger's buffers. The Batch (and everything it references) is valid
// until the next Merge call.
func (mg *Merger) Merge(cgs []*CompiledGraph) *Batch {
	n := len(cgs)
	if cap(mg.offsets) < n+1 {
		mg.offsets = make([]int, n+1)
	}
	mg.offsets = mg.offsets[:n+1]
	total := 0
	for i, cg := range cgs {
		mg.offsets[i] = total
		total += cg.Adj.NumNodes
	}
	mg.offsets[n] = total

	// Embedding gather arrays.
	if cap(mg.tokens) < total {
		mg.tokens = make([]int32, total)
		mg.kinds = make([]uint8, total)
	}
	mg.tokens = mg.tokens[:total]
	mg.kinds = mg.kinds[:total]
	for i, cg := range cgs {
		off := mg.offsets[i]
		copy(mg.tokens[off:], cg.Tokens)
		copy(mg.kinds[off:], cg.Kinds)
	}

	// Merged CSR plans and norms: per direction, each graph's rowptr
	// shifts by the running edge base and its index array by the node
	// offset. Graph boundaries line up exactly (ptr[n] of one graph equals
	// ptr[0]+base of the next), so a single pass per graph suffices.
	if mg.plans == nil {
		mg.plans = make([]csrPlan, NumDirections)
	}
	for d := 0; d < NumDirections; d++ {
		nEdges := 0
		for _, cg := range cgs {
			nEdges += cg.Adj.plans[d].edgeCount()
		}
		dstPtr := mg.dstPtr[d].get(total + 1)
		dstSrc := mg.dstSrc[d].get(nEdges)
		srcPtr := mg.srcPtr[d].get(total + 1)
		srcDst := mg.srcDst[d].get(nEdges)
		if cap(mg.norm[d]) < total {
			mg.norm[d] = make([]float64, total)
		}
		mg.norm[d] = mg.norm[d][:total]

		base := int32(0)
		for gi, cg := range cgs {
			off := int32(mg.offsets[gi])
			p := &cg.Adj.plans[d]
			for i, v := range p.dstPtr {
				dstPtr[int(off)+i] = base + v
			}
			for i, v := range p.srcPtr {
				srcPtr[int(off)+i] = base + v
			}
			for i, v := range p.dstSrc {
				dstSrc[int(base)+i] = v + off
			}
			for i, v := range p.srcDst {
				srcDst[int(base)+i] = v + off
			}
			copy(mg.norm[d][off:int(off)+cg.Adj.NumNodes], cg.Adj.Norm[d])
			base += int32(p.edgeCount())
		}
		if total == 0 {
			dstPtr[0], srcPtr[0] = 0, 0
		}
		mg.plans[d] = csrPlan{dstPtr: dstPtr, dstSrc: dstSrc, srcPtr: srcPtr, srcDst: srcDst}
		mg.adj.Norm[d] = mg.norm[d]
		mg.adj.Edges[d] = nil // plans are authoritative for merged batches
	}
	mg.adj.NumNodes = total
	mg.adj.plans = mg.plans

	mg.batch = Batch{
		Offsets: mg.offsets,
		Adj:     &mg.adj,
		Tokens:  mg.tokens,
		Kinds:   mg.kinds,
	}
	return &mg.batch
}
