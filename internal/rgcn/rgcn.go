// Package rgcn implements Relational Graph Convolutional Network layers
// (Schlichtkrull et al., ESWC 2018) over PROGRAML program graphs, plus the
// token-embedding input layer and mean-pool readout that complete the
// graph-encoder half of the PnP tuner.
//
// Each RGCN layer computes
//
//	H' = H·W_self + Σ_d Â_d·H·W_d + b
//
// where d ranges over every (relation, direction) pair — control, data and
// call flow, each in both edge directions, matching the paper's
// "relation specific transformations annotated by the type and direction
// of edges" — and Â_d is the in-degree-normalized adjacency.
package rgcn

import (
	"fmt"

	"pnptuner/internal/nn"
	"pnptuner/internal/programl"
	"pnptuner/internal/tensor"
)

// NumDirections is the number of adjacency blocks per graph: each relation
// appears forward and reversed.
const NumDirections = 2 * int(programl.NumRelations)

// Adjacency is the preprocessed message-passing structure of one graph:
// per relation-direction edge lists with in-degree normalization.
type Adjacency struct {
	NumNodes int
	// Edges[d] lists (src, dst) pairs for relation-direction d.
	Edges [NumDirections][][2]int32
	// Norm[d][i] is 1/indegree(i) under relation-direction d (0 if none).
	Norm [NumDirections][]float64

	// plans, when set by Finalize, holds per-direction CSR layouts that
	// route propagate/propagateT through the parallel worker pool.
	plans []csrPlan
}

// BuildAdjacency converts a program graph into its normalized adjacency.
func BuildAdjacency(g *programl.Graph) *Adjacency {
	n := len(g.Nodes)
	a := &Adjacency{NumNodes: n}
	for d := 0; d < NumDirections; d++ {
		a.Norm[d] = make([]float64, n)
	}
	for _, e := range g.Edges {
		fwd := int(e.Rel)
		rev := int(e.Rel) + int(programl.NumRelations)
		a.Edges[fwd] = append(a.Edges[fwd], [2]int32{int32(e.Src), int32(e.Dst)})
		a.Norm[fwd][e.Dst]++
		a.Edges[rev] = append(a.Edges[rev], [2]int32{int32(e.Dst), int32(e.Src)})
		a.Norm[rev][e.Src]++
	}
	for d := 0; d < NumDirections; d++ {
		for i, deg := range a.Norm[d] {
			if deg > 0 {
				a.Norm[d][i] = 1 / deg
			}
		}
	}
	return a
}

// EdgeCount returns the number of edges of relation-direction d. Merged
// batches carry only CSR plans (no edge lists), so the plan is
// authoritative when present.
func (a *Adjacency) EdgeCount(d int) int {
	if a.plans != nil {
		return a.plans[d].edgeCount()
	}
	return len(a.Edges[d])
}

// propagate computes out = Â_d·h for one relation-direction. Finalized
// adjacencies run the CSR plan across the worker pool; unfinalized ones
// walk the edge list sequentially (the reference path).
func (a *Adjacency) propagate(d int, h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(h.Rows, h.Cols)
	a.propagateInto(d, h, out)
	return out
}

// propagateInto accumulates out += Â_d·h into a zeroed target — the
// buffer-reusing form of propagate on the forward hot path.
func (a *Adjacency) propagateInto(d int, h, out *tensor.Matrix) {
	if a.plans != nil {
		a.plans[d].gather(a.Norm[d], h, out)
		return
	}
	norm := a.Norm[d]
	for _, e := range a.Edges[d] {
		src, dst := e[0], e[1]
		w := norm[dst]
		hrow := h.Row(int(src))
		orow := out.Row(int(dst))
		for c, v := range hrow {
			orow[c] += w * v
		}
	}
}

// propagateT computes out = Â_dᵀ·h (the backward direction of propagate).
func (a *Adjacency) propagateT(d int, h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(h.Rows, h.Cols)
	a.propagateTInto(d, h, out)
	return out
}

// propagateTInto accumulates out += Â_dᵀ·h, saving the temporary on the
// backward hot path.
func (a *Adjacency) propagateTInto(d int, h, out *tensor.Matrix) {
	if a.plans != nil {
		a.plans[d].gatherT(a.Norm[d], h, out)
		return
	}
	norm := a.Norm[d]
	for _, e := range a.Edges[d] {
		src, dst := e[0], e[1]
		w := norm[dst]
		hrow := h.Row(int(dst))
		orow := out.Row(int(src))
		for c, v := range hrow {
			orow[c] += w * v
		}
	}
}

// Layer is one relational graph convolution. It is graph-dependent: the
// caller sets the adjacency (SetGraph) before Forward/Backward, which lets
// one parameter set serve every graph in the corpus.
type Layer struct {
	In, Out int
	WSelf   *nn.Param
	WRel    [NumDirections]*nn.Param
	Bias    *nn.Param

	adj *Adjacency
	// caches for backward
	x    *tensor.Matrix
	msgs [NumDirections]*tensor.Matrix

	// Epoch-persistent scratch: each activation the layer produces lives
	// in a buffer that grows to the largest minibatch seen, so steady-state
	// forward/backward passes allocate nothing. Outputs are valid until
	// the next Forward/Backward on this layer.
	outBuf  tensor.Buf
	msgBufs [NumDirections]tensor.Buf
	dxBuf   tensor.Buf
	backBuf tensor.Buf
	colSums []float64
}

// NewLayer builds an RGCN layer with Xavier-initialized transforms.
func NewLayer(name string, in, out int, rng *tensor.RNG) *Layer {
	l := &Layer{
		In: in, Out: out,
		WSelf: nn.NewParam(name+".self", in, out),
		Bias:  nn.NewParam(name+".bias", 1, out),
	}
	l.WSelf.W.XavierInit(rng, in, out)
	for d := 0; d < NumDirections; d++ {
		l.WRel[d] = nn.NewParam(fmt.Sprintf("%s.rel%d", name, d), in, out)
		l.WRel[d].W.XavierInit(rng, in, out)
	}
	return l
}

// SetGraph binds the layer to one graph's adjacency for the next
// forward/backward pair.
func (l *Layer) SetGraph(adj *Adjacency) { l.adj = adj }

// Forward computes the relational convolution for the bound graph. The
// returned matrix is owned by the layer and valid until the next Forward.
func (l *Layer) Forward(x *tensor.Matrix) *tensor.Matrix {
	if l.adj == nil {
		panic("rgcn: Forward before SetGraph")
	}
	if x.Rows != l.adj.NumNodes {
		panic(fmt.Sprintf("rgcn: %d feature rows for %d nodes", x.Rows, l.adj.NumNodes))
	}
	l.x = x
	out := l.outBuf.GetZeroed(x.Rows, l.Out)
	tensor.MatMulAddInto(x, l.WSelf.W, out)
	for d := 0; d < NumDirections; d++ {
		if l.adj.EdgeCount(d) == 0 {
			l.msgs[d] = nil
			continue
		}
		msg := l.msgBufs[d].GetZeroed(x.Rows, x.Cols)
		l.adj.propagateInto(d, x, msg)
		l.msgs[d] = msg
		tensor.MatMulAddInto(msg, l.WRel[d].W, out)
	}
	out.AddRowVec(l.Bias.W.Data)
	return out
}

// Backward accumulates parameter gradients and returns ∂L/∂x. The
// returned gradient is owned by the layer and valid until the next
// Backward.
func (l *Layer) Backward(dout *tensor.Matrix) *tensor.Matrix {
	// Bias gradient.
	if l.colSums == nil {
		l.colSums = make([]float64, l.Out)
	}
	dout.ColSumsInto(l.colSums)
	for c, v := range l.colSums {
		l.Bias.Grad.Data[c] += v
	}
	// Self transform.
	tensor.MatMulTAAddInto(l.x, dout, l.WSelf.Grad)
	dx := l.dxBuf.Get(dout.Rows, l.In)
	tensor.MatMulTBInto(dout, l.WSelf.W, dx)
	// Relational transforms.
	for d := 0; d < NumDirections; d++ {
		if l.msgs[d] == nil {
			continue
		}
		tensor.MatMulTAAddInto(l.msgs[d], dout, l.WRel[d].Grad)
		// ∂L/∂x += Â_dᵀ·(dout·W_dᵀ)
		back := l.backBuf.Get(dout.Rows, l.In)
		tensor.MatMulTBInto(dout, l.WRel[d].W, back)
		l.adj.propagateTInto(d, back, dx)
	}
	return dx
}

// Params returns all transforms and the bias.
func (l *Layer) Params() []*nn.Param {
	out := []*nn.Param{l.WSelf}
	for d := 0; d < NumDirections; d++ {
		out = append(out, l.WRel[d])
	}
	return append(out, l.Bias)
}

// Embedding maps node tokens (plus a node-kind tag) to dense features.
type Embedding struct {
	VocabSize, Dim int
	Table          *nn.Param
	tokens         []int
	// out is the reusable gather target for ForwardBatch.
	out tensor.Buf
}

// NewEmbedding builds a learnable token-embedding table.
func NewEmbedding(name string, vocabSize, dim int, rng *tensor.RNG) *Embedding {
	e := &Embedding{VocabSize: vocabSize, Dim: dim, Table: nn.NewParam(name+".table", vocabSize, dim)}
	e.Table.W.FillUniform(rng, 0.25)
	return e
}

// Forward gathers embedding rows for the graph's node tokens and appends a
// 3-wide one-hot node-kind tag.
func (e *Embedding) Forward(g *programl.Graph) *tensor.Matrix {
	n := len(g.Nodes)
	out := tensor.New(n, e.Dim+3)
	e.tokens = growInts(e.tokens, n)
	for i, node := range g.Nodes {
		tok := node.Token
		if tok < 0 || tok >= e.VocabSize {
			tok = 0
		}
		e.tokens[i] = tok
		copy(out.Row(i)[:e.Dim], e.Table.W.Row(tok))
		out.Row(i)[e.Dim+int(node.Kind)] = 1
	}
	return out
}

// OutDim returns the width of Forward's output.
func (e *Embedding) OutDim() int { return e.Dim + 3 }

// Backward scatters ∂L/∂features into the table gradient. Large batches
// scatter in parallel with per-worker scratch tables.
func (e *Embedding) Backward(dout *tensor.Matrix) {
	tensor.ScatterAddRows(e.Table.Grad, e.tokens, dout, e.Dim)
}

// Params returns the embedding table.
func (e *Embedding) Params() []*nn.Param { return []*nn.Param{e.Table} }

// MeanPool is the graph-level readout: the mean of node features.
type MeanPool struct{ rows int }

// Forward returns the 1×d mean of node features.
func (m *MeanPool) Forward(x *tensor.Matrix) *tensor.Matrix {
	m.rows = x.Rows
	return x.MeanRow()
}

// Backward broadcasts the pooled gradient back to every node.
func (m *MeanPool) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(m.rows, dout.Cols)
	inv := 1 / float64(m.rows)
	for r := 0; r < m.rows; r++ {
		row := dx.Row(r)
		for c, v := range dout.Row(0) {
			row[c] = v * inv
		}
	}
	return dx
}
