package rgcn

import (
	"math"
	"testing"
	"testing/quick"

	"pnptuner/internal/nn"
	"pnptuner/internal/programl"
	"pnptuner/internal/tensor"
)

// toyGraph builds a small graph with all three relations.
func toyGraph() *programl.Graph {
	return &programl.Graph{
		RegionID: "toy",
		Nodes: []programl.Node{
			{Kind: programl.KindInstruction, Text: "a", Token: 1},
			{Kind: programl.KindInstruction, Text: "b", Token: 2},
			{Kind: programl.KindVariable, Text: "v", Token: 3},
			{Kind: programl.KindConstant, Text: "c", Token: 4},
			{Kind: programl.KindInstruction, Text: "d", Token: 5},
		},
		Edges: []programl.Edge{
			{Src: 0, Dst: 1, Rel: programl.RelControl},
			{Src: 1, Dst: 4, Rel: programl.RelControl},
			{Src: 4, Dst: 0, Rel: programl.RelControl},
			{Src: 2, Dst: 0, Rel: programl.RelData},
			{Src: 3, Dst: 1, Rel: programl.RelData},
			{Src: 1, Dst: 2, Rel: programl.RelData},
			{Src: 0, Dst: 4, Rel: programl.RelCall},
			{Src: 4, Dst: 0, Rel: programl.RelCall},
		},
	}
}

func TestAdjacencyNormalization(t *testing.T) {
	adj := BuildAdjacency(toyGraph())
	if adj.NumNodes != 5 {
		t.Fatalf("nodes = %d", adj.NumNodes)
	}
	// Every normalization weight must satisfy: sum over incoming edges of
	// norm[dst] == 1 for nodes with in-degree > 0.
	for d := 0; d < NumDirections; d++ {
		sums := make([]float64, adj.NumNodes)
		for _, e := range adj.Edges[d] {
			sums[e[1]] += adj.Norm[d][e[1]]
		}
		for i, s := range sums {
			if s != 0 && math.Abs(s-1) > 1e-12 {
				t.Fatalf("dir %d node %d: norm sum %g", d, i, s)
			}
		}
	}
}

func TestAdjacencyReverseMirrorsForward(t *testing.T) {
	adj := BuildAdjacency(toyGraph())
	for r := 0; r < int(programl.NumRelations); r++ {
		fwd, rev := adj.Edges[r], adj.Edges[r+int(programl.NumRelations)]
		if len(fwd) != len(rev) {
			t.Fatalf("relation %d: %d fwd vs %d rev edges", r, len(fwd), len(rev))
		}
		for i := range fwd {
			if fwd[i][0] != rev[i][1] || fwd[i][1] != rev[i][0] {
				t.Fatalf("relation %d edge %d not mirrored", r, i)
			}
		}
	}
}

func TestPropagateAveragesNeighbours(t *testing.T) {
	g := &programl.Graph{
		Nodes: make([]programl.Node, 3),
		Edges: []programl.Edge{
			{Src: 0, Dst: 2, Rel: programl.RelData},
			{Src: 1, Dst: 2, Rel: programl.RelData},
		},
	}
	adj := BuildAdjacency(g)
	h := tensor.FromSlice(3, 1, []float64{10, 20, 0})
	out := adj.propagate(int(programl.RelData), h)
	if math.Abs(out.At(2, 0)-15) > 1e-12 {
		t.Fatalf("node 2 message = %g, want mean 15", out.At(2, 0))
	}
	if out.At(0, 0) != 0 || out.At(1, 0) != 0 {
		t.Fatal("nodes without in-edges must receive zero")
	}
}

func TestLayerGradCheck(t *testing.T) {
	rng := tensor.NewRNG(1)
	g := toyGraph()
	adj := BuildAdjacency(g)
	layer := NewLayer("g1", 3, 2, rng)
	layer.SetGraph(adj)

	x := tensor.New(5, 3)
	x.FillUniform(rng, 1)
	labels := []int{1}

	loss := func() float64 {
		h := layer.Forward(x)
		pool := (&MeanPool{}).Forward(h)
		l, _ := nn.SoftmaxCrossEntropy(pool, labels)
		return l
	}

	nn.ZeroGrads(layer.Params())
	h := layer.Forward(x)
	mp := &MeanPool{}
	pooled := mp.Forward(h)
	_, dp := nn.SoftmaxCrossEntropy(pooled, labels)
	dx := layer.Backward(mp.Backward(dp))

	for _, p := range layer.Params() {
		for i := 0; i < len(p.W.Data); i += 2 {
			const eps = 1e-6
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := loss()
			p.W.Data[i] = orig - eps
			lm := loss()
			p.W.Data[i] = orig
			want := (lp - lm) / (2 * eps)
			if math.Abs(p.Grad.Data[i]-want) > 1e-5 {
				t.Fatalf("%s grad[%d] = %g, want %g", p.Name, i, p.Grad.Data[i], want)
			}
		}
	}
	for i := range x.Data {
		const eps = 1e-6
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		want := (lp - lm) / (2 * eps)
		if math.Abs(dx.Data[i]-want) > 1e-5 {
			t.Fatalf("dx[%d] = %g, want %g", i, dx.Data[i], want)
		}
	}
}

func TestEmbeddingGradScatter(t *testing.T) {
	rng := tensor.NewRNG(2)
	emb := NewEmbedding("emb", 10, 4, rng)
	g := toyGraph()
	// Two nodes share token 2 to exercise gradient accumulation.
	g.Nodes[4].Token = 2
	h := emb.Forward(g)
	if h.Rows != 5 || h.Cols != emb.OutDim() {
		t.Fatalf("embedding out %dx%d", h.Rows, h.Cols)
	}
	// Kind one-hot present.
	if h.At(2, 4+int(programl.KindVariable)) != 1 {
		t.Fatal("kind one-hot missing")
	}
	dout := tensor.New(5, emb.OutDim())
	for i := range dout.Data {
		dout.Data[i] = 1
	}
	nn.ZeroGrads(emb.Params())
	emb.Backward(dout)
	// Token 2 used by nodes 1 and 4 → gradient 2 per dim; token 1 used once.
	if math.Abs(emb.Table.Grad.At(2, 0)-2) > 1e-12 {
		t.Fatalf("token2 grad = %g, want 2", emb.Table.Grad.At(2, 0))
	}
	if math.Abs(emb.Table.Grad.At(1, 0)-1) > 1e-12 {
		t.Fatalf("token1 grad = %g, want 1", emb.Table.Grad.At(1, 0))
	}
	if emb.Table.Grad.At(7, 0) != 0 {
		t.Fatal("unused token received gradient")
	}
}

func TestEmbeddingOutOfRangeTokenFallsBack(t *testing.T) {
	rng := tensor.NewRNG(3)
	emb := NewEmbedding("emb", 4, 2, rng)
	g := &programl.Graph{Nodes: []programl.Node{{Token: 99}}}
	h := emb.Forward(g)
	for c := 0; c < 2; c++ {
		if h.At(0, c) != emb.Table.W.At(0, c) {
			t.Fatal("out-of-range token must use the <unk> row")
		}
	}
}

func TestMeanPoolBackwardDistributes(t *testing.T) {
	mp := &MeanPool{}
	x := tensor.FromSlice(4, 2, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	y := mp.Forward(x)
	if math.Abs(y.At(0, 0)-4) > 1e-12 || math.Abs(y.At(0, 1)-5) > 1e-12 {
		t.Fatalf("pool = %v", y.Data)
	}
	d := mp.Backward(tensor.FromSlice(1, 2, []float64{8, 4}))
	for r := 0; r < 4; r++ {
		if math.Abs(d.At(r, 0)-2) > 1e-12 || math.Abs(d.At(r, 1)-1) > 1e-12 {
			t.Fatalf("backward row %d = %v", r, d.Row(r))
		}
	}
}

// Property: propagate preserves "mass" per destination — the output row of
// any node is a convex combination of its in-neighbour rows, so for
// constant input the output is constant (where in-degree > 0).
func TestQuickPropagateConvexity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(8)
		g := &programl.Graph{Nodes: make([]programl.Node, n)}
		ne := 1 + rng.Intn(3*n)
		for i := 0; i < ne; i++ {
			g.Edges = append(g.Edges, programl.Edge{
				Src: rng.Intn(n), Dst: rng.Intn(n),
				Rel: programl.Relation(rng.Intn(int(programl.NumRelations))),
			})
		}
		adj := BuildAdjacency(g)
		h := tensor.New(n, 1)
		for i := range h.Data {
			h.Data[i] = 7.5
		}
		for d := 0; d < NumDirections; d++ {
			out := adj.propagate(d, h)
			indeg := make([]bool, n)
			for _, e := range adj.Edges[d] {
				indeg[e[1]] = true
			}
			for i := 0; i < n; i++ {
				want := 0.0
				if indeg[i] {
					want = 7.5
				}
				if math.Abs(out.At(i, 0)-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLayerParamCount(t *testing.T) {
	rng := tensor.NewRNG(4)
	l := NewLayer("x", 4, 4, rng)
	// self + 6 relation-directions + bias
	if got := len(l.Params()); got != NumDirections+2 {
		t.Fatalf("params = %d, want %d", got, NumDirections+2)
	}
}

func TestForwardPanicsWithoutGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	rng := tensor.NewRNG(5)
	NewLayer("x", 2, 2, rng).Forward(tensor.New(3, 2))
}
