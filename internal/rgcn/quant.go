// Float32 inference mirrors of the graph-encoder layers: quantized
// serving converts the trained float64 parameters once and runs every
// forward pass — embedding gather, relational convolutions, CSR
// propagation — in float32. There is no backward pass; training stays
// float64.
package rgcn

import (
	"fmt"

	"pnptuner/internal/tensor"
)

// gather32 is the float32 mirror of gather: out[i] = norm[i] · Σ h[src].
func (p *csrPlan) gather32(norm []float64, h, out *tensor.Mat32) {
	if len(p.dstSrc)*h.Cols < parallelMinWork || tensor.Workers() == 1 {
		p.gather32Range(norm, h, out, 0, out.Rows)
		return
	}
	tensor.ParallelFor(out.Rows, func(lo, hi int) { p.gather32Range(norm, h, out, lo, hi) })
}

func (p *csrPlan) gather32Range(norm []float64, h, out *tensor.Mat32, lo, hi int) {
	for i := lo; i < hi; i++ {
		start, end := p.dstPtr[i], p.dstPtr[i+1]
		if start == end {
			continue
		}
		orow := out.Row(i)
		for _, s := range p.dstSrc[start:end] {
			for c, v := range h.Row(int(s)) {
				orow[c] += v
			}
		}
		w := float32(norm[i])
		for c := range orow {
			orow[c] *= w
		}
	}
}

// propagate32Into accumulates out += Â_d·h on a zeroed float32 target.
// Finalized adjacencies (the serving path) run the CSR plan; the
// edge-list fallback mirrors the float64 reference path.
func (a *Adjacency) propagate32Into(d int, h, out *tensor.Mat32) {
	if a.plans != nil {
		a.plans[d].gather32(a.Norm[d], h, out)
		return
	}
	norm := a.Norm[d]
	for _, e := range a.Edges[d] {
		src, dst := e[0], e[1]
		w := float32(norm[dst])
		hrow := h.Row(int(src))
		orow := out.Row(int(dst))
		for c, v := range hrow {
			orow[c] += w * v
		}
	}
}

// Layer32 is the inference-only float32 mirror of Layer. SetGraph binds
// the adjacency exactly like the float64 layer; Forward follows the same
// H·W_self + Σ_d Â_d·H·W_d + b sequence.
type Layer32 struct {
	In, Out int
	WSelf   *tensor.Mat32
	WRel    [NumDirections]*tensor.Mat32
	Bias    []float32

	adj     *Adjacency
	outBuf  tensor.Buf32
	msgBufs [NumDirections]tensor.Buf32
}

// QuantizeLayer converts a trained Layer into its float32 mirror.
func QuantizeLayer(l *Layer) *Layer32 {
	q := &Layer32{
		In: l.In, Out: l.Out,
		WSelf: tensor.Quantize32(l.WSelf.W),
		Bias:  tensor.Quantize32Vec(l.Bias.W.Data),
	}
	for d := 0; d < NumDirections; d++ {
		q.WRel[d] = tensor.Quantize32(l.WRel[d].W)
	}
	return q
}

// SetGraph binds the layer to one graph's adjacency for the next Forward.
func (l *Layer32) SetGraph(adj *Adjacency) { l.adj = adj }

// Forward computes the relational convolution for the bound graph. The
// result is owned by the layer and valid until the next Forward.
func (l *Layer32) Forward(x *tensor.Mat32) *tensor.Mat32 {
	if l.adj == nil {
		panic("rgcn: Forward before SetGraph")
	}
	if x.Rows != l.adj.NumNodes {
		panic(fmt.Sprintf("rgcn: %d feature rows for %d nodes", x.Rows, l.adj.NumNodes))
	}
	out := l.outBuf.GetZeroed(x.Rows, l.Out)
	tensor.MatMul32AddInto(x, l.WSelf, out)
	for d := 0; d < NumDirections; d++ {
		if l.adj.EdgeCount(d) == 0 {
			continue
		}
		msg := l.msgBufs[d].GetZeroed(x.Rows, x.Cols)
		l.adj.propagate32Into(d, x, msg)
		tensor.MatMul32AddInto(msg, l.WRel[d], out)
	}
	out.AddRowVec(l.Bias)
	return out
}

// Embedding32 is the inference-only float32 mirror of Embedding.
type Embedding32 struct {
	VocabSize, Dim int
	Table          *tensor.Mat32
	out            tensor.Buf32
}

// QuantizeEmbedding converts a trained Embedding into its float32 mirror.
func QuantizeEmbedding(e *Embedding) *Embedding32 {
	return &Embedding32{VocabSize: e.VocabSize, Dim: e.Dim, Table: tensor.Quantize32(e.Table.W)}
}

// OutDim returns the width of ForwardBatch's output.
func (e *Embedding32) OutDim() int { return e.Dim + 3 }

// ForwardBatch gathers embedding rows plus node-kind one-hots for every
// node of a compiled batch (Tokens set), with the float64 path's
// out-of-vocabulary clamp to the unknown token. The result is owned by
// the embedding and valid until the next ForwardBatch.
func (e *Embedding32) ForwardBatch(b *Batch) *tensor.Mat32 {
	if b.Tokens == nil {
		panic("rgcn: Embedding32.ForwardBatch wants a compiled batch")
	}
	out := e.out.Get(b.NumNodes(), e.Dim+3)
	for i, t := range b.Tokens {
		tok := int(t)
		if tok >= e.VocabSize {
			tok = 0
		}
		row := out.Row(i)
		copy(row[:e.Dim], e.Table.Row(tok))
		row[e.Dim], row[e.Dim+1], row[e.Dim+2] = 0, 0, 0
		row[e.Dim+int(b.Kinds[i])] = 1
	}
	return out
}
