package papi

import (
	"testing"

	"pnptuner/internal/frontend"
	"pnptuner/internal/hw"
)

func model(ws int64, gather, seq float64) *frontend.RegionModel {
	return &frontend.RegionModel{
		Trips: 100000, FlopsPerIter: 100, IntOpsPerIter: 20,
		LoadsPerIter: 30, StoresPerIter: 10, BranchesPerIter: 3,
		GatherFrac: gather, SeqFrac: seq, WorkingSet: ws,
		CostProfile: [5]float64{1, 1, 1, 1, 1},
	}
}

func TestMissChainOrdering(t *testing.T) {
	c := Collect(model(1<<31, 0.5, 0.5), hw.Skylake())
	if !(c.L1DCM >= c.L2DCM && c.L2DCM >= c.L3TCM) {
		t.Fatalf("miss chain violated: %+v", c)
	}
	if c.TotIns <= 0 || c.BrMsp < 0 {
		t.Fatalf("bad counters: %+v", c)
	}
}

func TestGatherIncreasesMisses(t *testing.T) {
	seqC := Collect(model(1<<31, 0, 1), hw.Skylake())
	gatC := Collect(model(1<<31, 1, 0), hw.Skylake())
	if gatC.L1DCM <= seqC.L1DCM || gatC.L3TCM <= seqC.L3TCM {
		t.Fatalf("gather workload has fewer misses: %+v vs %+v", gatC, seqC)
	}
}

func TestSmallWorkingSetFewL3Misses(t *testing.T) {
	small := Collect(model(1<<20, 0, 1), hw.Skylake())
	big := Collect(model(4<<30, 0, 1), hw.Skylake())
	if small.L3TCM >= big.L3TCM {
		t.Fatalf("cache-resident region misses as much as streaming: %d vs %d", small.L3TCM, big.L3TCM)
	}
}

func TestRandomImbalanceRaisesMispredictions(t *testing.T) {
	m := model(1<<28, 0.5, 0.5)
	base := Collect(m, hw.Haswell())
	m.Imbalance = frontend.ImbRandom
	m.CV = 0.9
	irr := Collect(m, hw.Haswell())
	if irr.BrMsp <= base.BrMsp {
		t.Fatalf("random imbalance did not raise BR_MSP: %d vs %d", irr.BrMsp, base.BrMsp)
	}
}

func TestFeaturesBoundedAndInformative(t *testing.T) {
	a := Collect(model(1<<31, 1, 0), hw.Skylake()).Features()
	b := Collect(model(1<<16, 0, 1), hw.Skylake()).Features()
	diff := false
	for i := 0; i < NumFeatures; i++ {
		if a[i] < 0 || a[i] > 3 || b[i] < 0 || b[i] > 3 {
			t.Fatalf("feature %d out of range: %g / %g", i, a[i], b[i])
		}
		if a[i] != b[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("features identical for opposite workloads")
	}
}

func TestDeterministic(t *testing.T) {
	m := model(1<<30, 0.3, 0.7)
	if Collect(m, hw.Skylake()) != Collect(m, hw.Skylake()) {
		t.Fatal("counters not deterministic")
	}
}
