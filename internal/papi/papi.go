// Package papi simulates the Performance API counter collection the paper
// uses for its "dynamic features" variant (§IV-B): L1/L2/L3 data-cache
// misses, total instructions, and mispredicted branches for one execution
// of an OpenMP region. Counter values derive deterministically from the
// region's analytic model and the machine's cache hierarchy, so they carry
// exactly the signal hardware counters would: working-set pressure, access
// randomness, and control-flow irregularity.
package papi

import (
	"math"

	"pnptuner/internal/frontend"
	"pnptuner/internal/hw"
)

// Counters is one region-execution counter sample, named after the PAPI
// preset events the paper collects.
type Counters struct {
	L1DCM  int64 // PAPI_L1_DCM: level-1 data cache misses
	L2DCM  int64 // PAPI_L2_DCM: level-2 data cache misses
	L3TCM  int64 // PAPI_L3_TCM: level-3 total cache misses
	TotIns int64 // PAPI_TOT_INS: instructions completed
	BrMsp  int64 // PAPI_BR_MSP: mispredicted branches
}

// NumFeatures is the width of the normalized feature vector.
const NumFeatures = 5

// Collect simulates reading the five counters after one execution of the
// region on machine m.
func Collect(model *frontend.RegionModel, m *hw.Machine) Counters {
	trips := float64(model.Trips)
	accesses := (model.LoadsPerIter + model.StoresPerIter) * trips
	branches := model.BranchesPerIter * trips

	ws := float64(model.WorkingSet)
	l1 := 32 << 10 // per-core L1D
	l2 := float64(m.L2TotalBytes())
	l3 := float64(m.L3TotalBytes())

	// Miss chains: each level's misses are a subset of the previous.
	l1Rate := 0.03 + 0.45*model.GatherFrac + 0.04*(1-model.SeqFrac)
	if ws > float64(l1) {
		l1Rate += 0.03
	}
	l1Rate = clamp01(l1Rate)

	l2Frac := 0.15
	if ws > l2 {
		l2Frac = 0.65 + 0.25*model.GatherFrac
	}
	l2Frac = clamp01(l2Frac)

	l3Frac := 0.10
	if ws > l3 {
		l3Frac = 0.70 + 0.25*model.GatherFrac
	}
	l3Frac = clamp01(l3Frac)

	mispRate := 0.004 + 0.015*(1-model.SeqFrac)
	if model.Imbalance == frontend.ImbRandom {
		mispRate += 0.05 * math.Min(model.CV, 1)
	}

	l1m := accesses * l1Rate
	l2m := l1m * l2Frac
	l3m := l2m * l3Frac
	return Counters{
		L1DCM:  int64(l1m),
		L2DCM:  int64(l2m),
		L3TCM:  int64(l3m),
		TotIns: int64(model.InstrPerIter() * trips),
		BrMsp:  int64(branches * mispRate),
	}
}

// Features converts counters into the normalized per-instruction vector
// fed to the dense layers: log-scaled miss and misprediction rates.
func (c Counters) Features() [NumFeatures]float64 {
	ins := float64(c.TotIns)
	if ins < 1 {
		ins = 1
	}
	rate := func(v int64) float64 {
		// log1p of misses-per-kiloinstruction, squashed to O(1).
		return math.Log1p(float64(v)/ins*1000) / 5
	}
	return [NumFeatures]float64{
		rate(c.L1DCM),
		rate(c.L2DCM),
		rate(c.L3TCM),
		math.Log1p(ins) / 25, // absolute scale of the region
		rate(c.BrMsp),
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
