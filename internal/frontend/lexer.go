package frontend

import (
	"fmt"
	"strings"
)

// Lexer turns mini-C source text into a token stream. Comments (// and
// /* */) are skipped; "#pragma" lines are emitted as single TokPragma
// tokens whose literal is the full directive text.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an error for unrecognized input.
func (lx *Lexer) Next() (Token, error) {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			for lx.pos < len(lx.src) && !(lx.peek() == '*' && lx.peek2() == '/') {
				lx.advance()
			}
			if lx.pos+1 >= len(lx.src) {
				return Token{}, fmt.Errorf("line %d: unterminated block comment", lx.line)
			}
			lx.advance()
			lx.advance()
		default:
			return lx.scan()
		}
	}
	return Token{Kind: TokEOF, Line: lx.line, Col: lx.col}, nil
}

func (lx *Lexer) scan() (Token, error) {
	line, col := lx.line, lx.col
	c := lx.peek()

	if c == '#' {
		start := lx.pos
		for lx.pos < len(lx.src) && lx.peek() != '\n' {
			lx.advance()
		}
		text := strings.TrimSpace(lx.src[start:lx.pos])
		return Token{Kind: TokPragma, Lit: text, Line: line, Col: col}, nil
	}

	if isLetter(c) {
		start := lx.pos
		for lx.pos < len(lx.src) && (isLetter(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		return Token{Kind: TokIdent, Lit: lx.src[start:lx.pos], Line: line, Col: col}, nil
	}

	if isDigit(c) || (c == '.' && isDigit(lx.peek2())) {
		start := lx.pos
		isFloat := false
		for lx.pos < len(lx.src) {
			c := lx.peek()
			if isDigit(c) {
				lx.advance()
			} else if c == '.' {
				isFloat = true
				lx.advance()
			} else if c == 'e' || c == 'E' {
				isFloat = true
				lx.advance()
				if lx.peek() == '+' || lx.peek() == '-' {
					lx.advance()
				}
			} else {
				break
			}
		}
		kind := TokInt
		if isFloat {
			kind = TokFloat
		}
		return Token{Kind: kind, Lit: lx.src[start:lx.pos], Line: line, Col: col}, nil
	}

	two := func(kind TokKind) (Token, error) {
		lx.advance()
		lx.advance()
		return Token{Kind: kind, Line: line, Col: col}, nil
	}
	one := func(kind TokKind) (Token, error) {
		lx.advance()
		return Token{Kind: kind, Line: line, Col: col}, nil
	}

	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ';':
		return one(TokSemi)
	case ',':
		return one(TokComma)
	case '?':
		return one(TokQuestion)
	case ':':
		return one(TokColon)
	case '+':
		if lx.peek2() == '=' {
			return two(TokPlusEq)
		}
		if lx.peek2() == '+' {
			return two(TokPlusPlus)
		}
		return one(TokPlus)
	case '-':
		if lx.peek2() == '=' {
			return two(TokMinusEq)
		}
		if lx.peek2() == '-' {
			return two(TokMinusMin)
		}
		return one(TokMinus)
	case '*':
		if lx.peek2() == '=' {
			return two(TokStarEq)
		}
		return one(TokStar)
	case '/':
		if lx.peek2() == '=' {
			return two(TokSlashEq)
		}
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '=':
		if lx.peek2() == '=' {
			return two(TokEq)
		}
		return one(TokAssign)
	case '!':
		if lx.peek2() == '=' {
			return two(TokNe)
		}
		return one(TokNot)
	case '<':
		if lx.peek2() == '=' {
			return two(TokLe)
		}
		return one(TokLt)
	case '>':
		if lx.peek2() == '=' {
			return two(TokGe)
		}
		return one(TokGt)
	case '&':
		if lx.peek2() == '&' {
			return two(TokAndAnd)
		}
	case '|':
		if lx.peek2() == '|' {
			return two(TokOrOr)
		}
	}
	return Token{}, fmt.Errorf("line %d:%d: unexpected character %q", line, col, string(c))
}

// LexAll tokenizes the whole input, including the trailing EOF token.
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
