package frontend

import (
	"strings"
	"testing"
)

// TestLowerFullSyntaxSurface exercises every construct the dialect
// supports in one program and checks the IR verifies.
func TestLowerFullSyntaxSurface(t *testing.T) {
	src := `
const int N = 32;
const int HALF = N / 2;
double a[N];
double b[N][N];
int flags[N];
double accum;

void everything() {
  #pragma omp parallel for schedule(guided, 4)
  for (i = 0; i < N; i++) {
    int k = i * 2 % N;
    double x = 1.0;
    x *= 2.0;
    x /= 4.0;
    x -= 0.25;
    if (i >= HALF && a[i] > 0.0 || flags[i] != 0) {
      a[i] = -x + fabs(b[i][k]);
    } else {
      if (!(i == 0)) {
        a[i] = x > 0.5 ? exp(x) : log(1.0 + x);
      } else {
        a[i] = 0.0;
      }
    }
    flags[i] = i % 3;
    accum += a[i];
  }
  for (j = N - 1; j >= 0; j--) {
    a[j] = a[j] * 0.5;
  }
}
`
	prog, low, err := Compile("surface", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := low.Module.Verify(); err != nil {
		t.Fatal(err)
	}
	out := low.RegionFunc[prog.Regions[0].ID]
	text := out.String()
	// The ternary produces a double-typed select; the printer spells the
	// condition type first, so look for the value-type operands.
	if !strings.Contains(text, ", double") || strings.Count(text, "select") < 2 {
		t.Error("ternary/logical select lowering missing")
	}
	for _, want := range []string{
		"srem",      // %
		"select i1", // && / ||
		"fneg",      // unary minus on double
		"icmp eq",   // !(i == 0) lowering
		"call double @exp",
		"load i64",  // int array element
		"store i64", // flags[i] = ...
		"@accum",    // scalar global access
	} {
		if !strings.Contains(text, want) {
			t.Errorf("IR missing %q", want)
		}
	}
	// Descending sequential loop stays in the parent function.
	parent := low.Module.Func("everything")
	if !strings.Contains(parent.String(), "icmp sge") {
		t.Error("descending loop lost its sge comparison")
	}
	// Model captured the guided pragma with chunk.
	if prog.Regions[0].Pragma.Schedule != SchedGuided || prog.Regions[0].Pragma.Chunk != 4 {
		t.Errorf("pragma = %+v", prog.Regions[0].Pragma)
	}
}

func TestLowerScalarGlobal(t *testing.T) {
	src := `
const int N = 8;
double a[N];
double total;
void f() {
  total = 0.0;
  #pragma omp parallel for
  for (i = 0; i < N; i++) {
    a[i] = total + 1.0;
  }
}
`
	_, low, err := Compile("scalar", src)
	if err != nil {
		t.Fatal(err)
	}
	g := low.Module.Global("total")
	if g == nil || len(g.Dims) != 0 || g.Bytes != 8 {
		t.Fatalf("scalar global wrong: %+v", g)
	}
}

func TestLowerRejectsBadConstructs(t *testing.T) {
	cases := []string{
		// Assignment to undeclared variable.
		"void f() {\n#pragma omp parallel for\nfor (i = 0; i < 4; i++) { ghost = 1.0; } }",
		// Wrong index arity.
		"const int N = 4;\ndouble a[N][N];\nvoid f() {\n#pragma omp parallel for\nfor (i = 0; i < N; i++) { a[i] = 1.0; } }",
		// Unknown identifier in expression.
		"const int N = 4;\ndouble a[N];\nvoid f() {\n#pragma omp parallel for\nfor (i = 0; i < N; i++) { a[i] = mystery; } }",
	}
	for i, src := range cases {
		f, err := Parse("bad", src)
		if err != nil {
			continue
		}
		prog, err := Analyze(f)
		if err != nil {
			continue
		}
		if _, err := Lower(prog); err == nil {
			t.Errorf("case %d: Lower accepted invalid program", i)
		}
	}
}

func TestIntrinsicTableConsistency(t *testing.T) {
	for name, in := range Intrinsics {
		if in.Flops < 0 || in.Loads < 0 || in.Stores < 0 {
			t.Errorf("%s: negative cost", name)
		}
		if in.Irregular && in.CV <= 0 {
			t.Errorf("%s: irregular intrinsic without CV", name)
		}
		if !in.Irregular && in.CV != 0 {
			t.Errorf("%s: CV without irregular flag", name)
		}
	}
}

func TestAnalyzeDecreasingImbalance(t *testing.T) {
	// LU-style: inner trips shrink as i grows... inverted here so cost
	// falls with the parallel index.
	src := `
const int N = 256;
double a[N][N];
void f() {
  #pragma omp parallel for
  for (i = 0; i < N; i++) {
    for (j = i; j < N; j++) {
      a[i][j] = a[i][j] * 0.5;
    }
  }
}
`
	prog, err := Analyze(MustParse("dec", src))
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Regions[0].Model
	if m.Imbalance != ImbDecreasing {
		t.Fatalf("imbalance = %v, want decreasing", m.Imbalance)
	}
	if m.CostProfile[0] <= m.CostProfile[4] {
		t.Fatalf("profile not decreasing: %v", m.CostProfile)
	}
}

func TestAnalyzeBoundaryConditionalShapesProfile(t *testing.T) {
	// A statically resolvable condition on the parallel index: only the
	// first half does heavy work.
	src := `
const int N = 1000;
double a[N];
void f() {
  #pragma omp parallel for
  for (i = 0; i < N; i++) {
    if (i < 500) {
      double s = 0.0;
      for (j = 0; j < 100; j++) {
        s += a[i] * 1.5;
      }
      a[i] = s;
    } else {
      a[i] = 0.0;
    }
  }
}
`
	prog, err := Analyze(MustParse("bnd", src))
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Regions[0].Model
	if m.CostProfile[0] <= m.CostProfile[4] {
		t.Fatalf("front-loaded profile lost: %v", m.CostProfile)
	}
	if m.Imbalance != ImbDecreasing {
		t.Fatalf("imbalance = %v", m.Imbalance)
	}
}

func TestScalarTypeAndScheduleStrings(t *testing.T) {
	if TypeInt.String() != "int" || TypeDouble.String() != "double" || TypeVoid.String() != "void" {
		t.Error("ScalarType strings wrong")
	}
	if SchedDefault.String() != "default" || SchedStatic.String() != "static" ||
		SchedDynamic.String() != "dynamic" || SchedGuided.String() != "guided" {
		t.Error("ScheduleKind strings wrong")
	}
}
