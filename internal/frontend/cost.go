package frontend

import (
	"fmt"
	"math"
	"sort"
)

// counts accumulates static operation counts for one execution of a
// statement or expression under concrete loop-variable bindings.
type counts struct {
	flops     float64
	intOps    float64
	loads     float64
	seqLoads  float64 // stride-1 subset of loads
	gathers   float64 // random-access subset of loads
	stores    float64
	seqStores float64
	branches  float64
	// cv aggregates irregularity contributed by intrinsic calls, weighted
	// by their share of the total cost (resolved at the end).
	irregularFlops float64
	maxCV          float64
}

func (c *counts) add(o counts) {
	c.flops += o.flops
	c.intOps += o.intOps
	c.loads += o.loads
	c.seqLoads += o.seqLoads
	c.gathers += o.gathers
	c.stores += o.stores
	c.seqStores += o.seqStores
	c.branches += o.branches
	c.irregularFlops += o.irregularFlops
	if o.maxCV > c.maxCV {
		c.maxCV = o.maxCV
	}
}

func (c *counts) scale(k float64) {
	c.flops *= k
	c.intOps *= k
	c.loads *= k
	c.seqLoads *= k
	c.gathers *= k
	c.stores *= k
	c.seqStores *= k
	c.branches *= k
	c.irregularFlops *= k
}

// weight is the scalar cost proxy used for imbalance-shape detection.
func (c *counts) weight() float64 {
	return c.flops + 0.35*c.intOps + 2*(c.loads+c.stores) + c.branches
}

// extractModel fills r.Model by sampling the loop body's operation counts
// at five points across the parallel iteration space.
func (p *Program) extractModel(r *Region) error {
	loop := r.Loop
	lo, err := p.evalNum(loop.Init, nil)
	if err != nil {
		return fmt.Errorf("parallel loop lower bound must be compile-time evaluable: %w", err)
	}
	hi, err := p.evalNum(loop.Bound, nil)
	if err != nil {
		return fmt.Errorf("parallel loop upper bound must be compile-time evaluable: %w", err)
	}
	step, err := p.evalNum(loop.Step, nil)
	if err != nil {
		return fmt.Errorf("parallel loop step must be compile-time evaluable: %w", err)
	}
	trips := tripCount(lo, hi, step, loop.RelOp)
	if trips <= 0 {
		return fmt.Errorf("parallel loop has no iterations (lo=%g hi=%g step=%g)", lo, hi, step)
	}
	r.Model.Trips = trips

	// Sample per-iteration counts at fractions 0, 1/4, 1/2, 3/4, 1 of the
	// iteration space; the mean of the piecewise-linear profile through
	// these samples approximates the true mean for (piecewise) polynomial
	// cost shapes, which covers every nest in the corpus.
	fracs := [5]float64{0, 0.25, 0.5, 0.75, 1}
	var samples [5]counts
	for k, fr := range fracs {
		idx := lo + step*math.Floor(fr*float64(trips-1))
		env := map[string]float64{loop.Var: idx}
		samples[k] = p.countStmt(loop.Body, env, loop.Var)
	}
	var mean counts
	// Trapezoid weights for mean of piecewise-linear profile.
	w := [5]float64{0.125, 0.25, 0.25, 0.25, 0.125}
	for k := range samples {
		s := samples[k]
		s.scale(w[k])
		mean.add(s)
	}
	mean.maxCV = samples[0].maxCV
	for _, s := range samples {
		if s.maxCV > mean.maxCV {
			mean.maxCV = s.maxCV
		}
	}

	m := &r.Model
	m.FlopsPerIter = mean.flops
	m.IntOpsPerIter = mean.intOps
	m.LoadsPerIter = mean.loads
	m.StoresPerIter = mean.stores
	m.BranchesPerIter = mean.branches + 1 // + parallel loop back-edge
	if mean.loads > 0 {
		m.GatherFrac = mean.gathers / mean.loads
	}
	if acc := mean.loads + mean.stores; acc > 0 {
		m.SeqFrac = (mean.seqLoads + mean.seqStores) / acc
	}
	m.HasReduction = r.Pragma.Reduction != ""

	// Cost profile and imbalance classification.
	meanW := mean.weight()
	if meanW <= 0 {
		meanW = 1
	}
	for k := range samples {
		m.CostProfile[k] = samples[k].weight() / meanW
		if m.CostProfile[k] < 1e-9 {
			m.CostProfile[k] = 1e-9
		}
	}
	first, last := m.CostProfile[0], m.CostProfile[4]
	spread := maxProfile(m.CostProfile) / minProfile(m.CostProfile)
	switch {
	case mean.maxCV > 0.05:
		m.Imbalance = ImbRandom
		m.CV = mean.maxCV
	case spread < 1.05:
		m.Imbalance = ImbUniform
	case last > first:
		m.Imbalance = ImbIncreasing
	default:
		m.Imbalance = ImbDecreasing
	}

	// Working set: footprint of every referenced array.
	refs := map[string]bool{}
	collectArrayRefs(r.Loop.Body, refs)
	var names []string
	for n := range refs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a, ok := p.Arrays[n]
		if !ok {
			return fmt.Errorf("reference to undeclared array %q", n)
		}
		m.WorkingSet += a.Bytes
	}
	return nil
}

func tripCount(lo, hi, step float64, rel string) int64 {
	switch rel {
	case "<":
		if step <= 0 {
			return 0
		}
		return int64(math.Ceil((hi - lo) / step))
	case "<=":
		if step <= 0 {
			return 0
		}
		return int64(math.Floor((hi-lo)/step)) + 1
	case ">":
		if step >= 0 {
			return 0
		}
		return int64(math.Ceil((lo - hi) / -step))
	case ">=":
		if step >= 0 {
			return 0
		}
		return int64(math.Floor((lo-hi)/-step)) + 1
	}
	return 0
}

func maxProfile(p [5]float64) float64 {
	m := p[0]
	for _, v := range p[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func minProfile(p [5]float64) float64 {
	m := p[0]
	for _, v := range p[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// countStmt returns operation counts for one execution of s with the
// given loop-variable environment. innermost is the loop variable of the
// tightest enclosing loop, used to detect stride-1 accesses.
func (p *Program) countStmt(s Stmt, env map[string]float64, innermost string) counts {
	var c counts
	switch st := s.(type) {
	case *BlockStmt:
		for _, sub := range st.Stmts {
			c.add(p.countStmt(sub, env, innermost))
		}
	case *DeclStmt:
		if st.Init != nil {
			c.add(p.countExpr(st.Init, env, innermost))
		}
	case *AssignStmt:
		c.add(p.countExpr(st.RHS, env, innermost))
		if st.Op != "=" {
			// Compound assignment reads the target too.
			c.add(p.lvalueCounts(st.LHS, env, innermost, false))
			if st.Op == "+=" || st.Op == "-=" || st.Op == "*=" || st.Op == "/=" {
				c.flops++
			}
		}
		c.add(p.lvalueCounts(st.LHS, env, innermost, true))
	case *ExprStmt:
		c.add(p.countExpr(st.X, env, innermost))
	case *IfStmt:
		c.add(p.countExpr(st.Cond, env, innermost))
		c.branches++
		cond, err := p.evalNum(st.Cond, env)
		if err == nil {
			// Statically resolvable at this sample point: include exactly
			// the taken branch, which is what shapes boundary imbalance.
			if cond != 0 {
				c.add(p.countStmt(st.Then, env, innermost))
			} else if st.Else != nil {
				c.add(p.countStmt(st.Else, env, innermost))
			}
		} else {
			// Data-dependent: weight both sides at 1/2.
			half := p.countStmt(st.Then, env, innermost)
			half.scale(0.5)
			c.add(half)
			if st.Else != nil {
				half = p.countStmt(st.Else, env, innermost)
				half.scale(0.5)
				c.add(half)
			}
		}
	case *ForStmt:
		lo, err1 := p.evalNum(st.Init, env)
		hi, err2 := p.evalNum(st.Bound, env)
		stp, err3 := p.evalNum(st.Step, env)
		trips := int64(1)
		if err1 == nil && err2 == nil && err3 == nil {
			trips = tripCount(lo, hi, stp, st.RelOp)
		}
		if trips <= 0 {
			// Loop body never runs at this sample point; only the bound
			// check executes.
			c.intOps += 2
			c.branches++
			return c
		}
		// Evaluate the body at the midpoint of the inner range; exact for
		// costs linear in the inner variable.
		mid := lo + stp*math.Floor(float64(trips)/2)
		inner := make(map[string]float64, len(env)+1)
		for k, v := range env {
			inner[k] = v
		}
		inner[st.Var] = mid
		body := p.countStmt(st.Body, inner, st.Var)
		body.intOps += 2 // induction update + compare
		body.branches++
		body.scale(float64(trips))
		c.add(body)
	}
	return c
}

// lvalueCounts counts the accesses of reading (store=false) or writing
// (store=true) an lvalue.
func (p *Program) lvalueCounts(lv *LValue, env map[string]float64, innermost string, store bool) counts {
	var c counts
	if len(lv.Indices) == 0 {
		// Scalar locals live in registers.
		return c
	}
	for _, ix := range lv.Indices {
		c.add(p.countExpr(ix, env, innermost))
		c.intOps++ // index arithmetic
	}
	seq := exprUsesVar(lv.Indices[len(lv.Indices)-1], innermost)
	if store {
		c.stores++
		if seq {
			c.seqStores++
		}
	} else {
		c.loads++
		if seq {
			c.seqLoads++
		}
	}
	return c
}

// countExpr counts operations to evaluate e once.
func (p *Program) countExpr(e Expr, env map[string]float64, innermost string) counts {
	var c counts
	switch x := e.(type) {
	case *Ident, *IntLit, *FloatLit:
		// Registers and immediates.
	case *IndexExpr:
		c.add(p.lvalueCounts(&LValue{Name: x.Name, Indices: x.Indices}, env, innermost, false))
	case *UnaryExpr:
		c.add(p.countExpr(x.X, env, innermost))
		if x.Op == "-" {
			c.flops++
		}
	case *BinaryExpr:
		c.add(p.countExpr(x.L, env, innermost))
		c.add(p.countExpr(x.R, env, innermost))
		switch x.Op {
		case "+", "-", "*", "/":
			if exprIsIntOnly(x, p) {
				c.intOps++
			} else {
				c.flops++
				if x.Op == "/" {
					c.flops += 7 // division latency in flop equivalents
				}
			}
		case "%":
			c.intOps += 4
		default: // comparisons, && , ||
			c.intOps++
		}
	case *CondExpr:
		c.add(p.countExpr(x.Cond, env, innermost))
		c.branches++
		t := p.countExpr(x.Then, env, innermost)
		f := p.countExpr(x.Else, env, innermost)
		t.scale(0.5)
		f.scale(0.5)
		c.add(t)
		c.add(f)
	case *CallExpr:
		for _, a := range x.Args {
			c.add(p.countExpr(a, env, innermost))
		}
		in, ok := Intrinsics[x.Name]
		if !ok {
			// Unknown call: charge a conservative default.
			in = Intrinsic{Flops: 10, Returns: true}
		}
		c.flops += in.Flops
		c.intOps += in.IntOps
		c.loads += in.Loads
		c.stores += in.Stores
		if in.Gather {
			c.gathers += in.Loads
		}
		if in.Irregular {
			c.irregularFlops += in.Flops
			if in.CV > c.maxCV {
				c.maxCV = in.CV
			}
		}
	}
	return c
}

// exprUsesVar reports whether e references the variable named v.
func exprUsesVar(e Expr, v string) bool {
	switch x := e.(type) {
	case *Ident:
		return x.Name == v
	case *IndexExpr:
		for _, ix := range x.Indices {
			if exprUsesVar(ix, v) {
				return true
			}
		}
	case *BinaryExpr:
		return exprUsesVar(x.L, v) || exprUsesVar(x.R, v)
	case *UnaryExpr:
		return exprUsesVar(x.X, v)
	case *CondExpr:
		return exprUsesVar(x.Cond, v) || exprUsesVar(x.Then, v) || exprUsesVar(x.Else, v)
	case *CallExpr:
		for _, a := range x.Args {
			if exprUsesVar(a, v) {
				return true
			}
		}
	}
	return false
}

// exprIsIntOnly reports whether e is pure integer arithmetic (loop
// variables, int literals, int constants); such ops are counted as index
// arithmetic rather than flops.
func exprIsIntOnly(e Expr, p *Program) bool {
	switch x := e.(type) {
	case *IntLit:
		return true
	case *FloatLit:
		return false
	case *Ident:
		// Constants and loop variables are ints; everything else (locals)
		// is conservatively treated as double.
		_, isConst := p.Consts[x.Name]
		return isConst || looksLikeIndexVar(x.Name)
	case *BinaryExpr:
		return exprIsIntOnly(x.L, p) && exprIsIntOnly(x.R, p)
	case *UnaryExpr:
		return exprIsIntOnly(x.X, p)
	}
	return false
}

// looksLikeIndexVar applies the corpus convention that single-letter
// i/j/k/l/m/n-style names (optionally digit-suffixed) are loop indices.
func looksLikeIndexVar(name string) bool {
	if len(name) == 0 || len(name) > 2 {
		return false
	}
	c := name[0]
	if c < 'i' || c > 'n' {
		return false
	}
	return len(name) == 1 || (name[1] >= '0' && name[1] <= '9')
}

// collectArrayRefs records the names of arrays referenced under s.
func collectArrayRefs(s Stmt, out map[string]bool) {
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *IndexExpr:
			out[x.Name] = true
			for _, ix := range x.Indices {
				walkExpr(ix)
			}
		case *BinaryExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *UnaryExpr:
			walkExpr(x.X)
		case *CondExpr:
			walkExpr(x.Cond)
			walkExpr(x.Then)
			walkExpr(x.Else)
		case *CallExpr:
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	var walk func(Stmt)
	walk = func(s Stmt) {
		switch st := s.(type) {
		case *BlockStmt:
			for _, sub := range st.Stmts {
				walk(sub)
			}
		case *ForStmt:
			walkExpr(st.Init)
			walkExpr(st.Bound)
			walk(st.Body)
		case *IfStmt:
			walkExpr(st.Cond)
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *DeclStmt:
			if st.Init != nil {
				walkExpr(st.Init)
			}
		case *AssignStmt:
			if len(st.LHS.Indices) > 0 {
				out[st.LHS.Name] = true
				for _, ix := range st.LHS.Indices {
					walkExpr(ix)
				}
			}
			walkExpr(st.RHS)
		case *ExprStmt:
			walkExpr(st.X)
		}
	}
	walk(s)
}
