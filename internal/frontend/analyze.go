package frontend

import (
	"fmt"
	"math"
)

// Intrinsic describes a builtin callable: math functions and the
// simulator intrinsics that stand in for proxy-app subroutines that the
// paper's benchmarks call into (cross-section lookups, particle walks...).
type Intrinsic struct {
	Flops  float64 // floating-point work per call
	IntOps float64
	Loads  float64 // 8-byte element loads per call (mostly gathers)
	Stores float64
	// Irregular marks data-dependent per-call cost (Monte Carlo style);
	// CV is the coefficient of variation of that cost.
	Irregular bool
	CV        float64
	// Gather marks the loads as random-access (cache-hostile).
	Gather bool
	// Returns reports whether the intrinsic yields a double value.
	Returns bool
}

// Intrinsics is the builtin table. Math builtins use costs in flop
// equivalents typical of libm on the paper's hardware; proxy-app
// intrinsics model the hot subroutines of XSBench, RSBench, Quicksilver,
// and miniAMR that sit below the OpenMP region being tuned.
var Intrinsics = map[string]Intrinsic{
	"sqrt": {Flops: 8, Returns: true},
	"fabs": {Flops: 1, Returns: true},
	"exp":  {Flops: 15, Returns: true},
	"log":  {Flops: 15, Returns: true},
	"pow":  {Flops: 22, Returns: true},
	"sin":  {Flops: 14, Returns: true},
	"cos":  {Flops: 14, Returns: true},
	"fmax": {Flops: 1, Returns: true},
	"fmin": {Flops: 1, Returns: true},
	// Proxy-app subroutine stand-ins.
	"xs_lookup_macro":   {Flops: 46, IntOps: 30, Loads: 26, Irregular: true, CV: 0.35, Gather: true, Returns: true},
	"xs_lookup_micro":   {Flops: 18, IntOps: 14, Loads: 9, Irregular: true, CV: 0.30, Gather: true, Returns: true},
	"rs_eval_poles":     {Flops: 95, IntOps: 12, Loads: 11, Irregular: true, CV: 0.25, Gather: true, Returns: true},
	"rs_eval_window":    {Flops: 40, IntOps: 8, Loads: 6, Irregular: true, CV: 0.22, Gather: true, Returns: true},
	"mc_segment_walk":   {Flops: 70, IntOps: 40, Loads: 34, Stores: 6, Irregular: true, CV: 0.90, Gather: true, Returns: true},
	"mc_collision":      {Flops: 55, IntOps: 22, Loads: 18, Stores: 4, Irregular: true, CV: 0.75, Gather: true, Returns: true},
	"amr_refine_check":  {Flops: 12, IntOps: 10, Loads: 9, Irregular: true, CV: 0.50, Gather: true, Returns: true},
	"amr_face_exchange": {Flops: 6, IntOps: 12, Loads: 14, Stores: 6, Irregular: true, CV: 0.40, Gather: true, Returns: true},
	"rand01":            {Flops: 5, IntOps: 3, Returns: true},
}

// Imbalance classifies the distribution of per-iteration cost across the
// parallel iteration space. It drives how much the scheduler choice
// (static/dynamic/guided and chunk size) matters for a region.
type Imbalance int

// Imbalance kinds.
const (
	ImbUniform    Imbalance = iota
	ImbIncreasing           // cost grows with the iteration index (lower-triangular nests)
	ImbDecreasing           // cost shrinks with the iteration index (upper-triangular nests)
	ImbRandom               // data-dependent cost (Monte Carlo)
)

func (im Imbalance) String() string {
	switch im {
	case ImbUniform:
		return "uniform"
	case ImbIncreasing:
		return "increasing"
	case ImbDecreasing:
		return "decreasing"
	case ImbRandom:
		return "random"
	}
	return "?"
}

// RegionModel is the analytic performance model of one OpenMP region,
// extracted statically from its loop nest. All per-iteration quantities
// are means over the parallel iteration space.
type RegionModel struct {
	Trips         int64   // parallel-loop iterations
	FlopsPerIter  float64 // floating-point operations
	IntOpsPerIter float64 // integer/index operations
	LoadsPerIter  float64 // 8-byte element loads
	StoresPerIter float64 // 8-byte element stores
	// GatherFrac is the fraction of loads that are random-access.
	GatherFrac float64
	// SeqFrac is the fraction of accesses that are stride-1 streaming.
	SeqFrac float64
	// WorkingSet is the total footprint (bytes) of referenced arrays.
	WorkingSet int64
	// CostProfile holds relative per-iteration cost sampled at fractions
	// {0, 1/4, 1/2, 3/4, 1} of the iteration space, normalized to mean 1.
	CostProfile [5]float64
	Imbalance   Imbalance
	// CV is the coefficient of variation of iteration cost for ImbRandom.
	CV           float64
	HasReduction bool
	// BranchesPerIter counts conditional branches (loop back-edges + ifs).
	BranchesPerIter float64
}

// BytesPerIter returns the mean DRAM-visible traffic per iteration,
// before cache filtering.
func (m *RegionModel) BytesPerIter() float64 {
	return 8 * (m.LoadsPerIter + m.StoresPerIter)
}

// ArithIntensity returns flops per byte of raw traffic.
func (m *RegionModel) ArithIntensity() float64 {
	b := m.BytesPerIter()
	if b == 0 {
		return math.Inf(1)
	}
	return m.FlopsPerIter / b
}

// InstrPerIter estimates retired instructions per iteration, feeding the
// simulated PAPI_TOT_INS counter.
func (m *RegionModel) InstrPerIter() float64 {
	return m.FlopsPerIter + m.IntOpsPerIter + 1.3*(m.LoadsPerIter+m.StoresPerIter) + 2*m.BranchesPerIter
}

// ArrayInfo is an evaluated global array declaration.
type ArrayInfo struct {
	Name  string
	Elem  ScalarType
	Dims  []int64
	Bytes int64
}

// Region is one OpenMP parallel region found in a source file: the pragma,
// the annotated loop, and its extracted performance model.
type Region struct {
	ID     string // "<app>.<func>#<k>"
	App    string
	Func   string
	Index  int // ordinal within the function
	Loop   *ForStmt
	Pragma *Pragma
	Model  RegionModel
}

// Program is a semantically analyzed file: evaluated constants and arrays,
// plus the parallel regions with their models.
type Program struct {
	File    *File
	Consts  map[string]int64
	Arrays  map[string]*ArrayInfo
	Regions []*Region
}

// Analyze semantically checks f, evaluates constants and array extents,
// finds every "#pragma omp parallel for" region, and extracts each
// region's performance model.
func Analyze(f *File) (*Program, error) {
	p := &Program{
		File:   f,
		Consts: make(map[string]int64),
		Arrays: make(map[string]*ArrayInfo),
	}
	for _, cd := range f.Consts {
		v, err := p.evalConstInt(cd.Value)
		if err != nil {
			return nil, fmt.Errorf("frontend: %s: const %s: %w", f.Name, cd.Name, err)
		}
		p.Consts[cd.Name] = v
	}
	for _, ad := range f.Arrays {
		info := &ArrayInfo{Name: ad.Name, Elem: ad.Elem}
		bytes := int64(8)
		for _, d := range ad.Dims {
			v, err := p.evalConstInt(d)
			if err != nil {
				return nil, fmt.Errorf("frontend: %s: array %s: %w", f.Name, ad.Name, err)
			}
			if v <= 0 {
				return nil, fmt.Errorf("frontend: %s: array %s: non-positive dimension %d", f.Name, ad.Name, v)
			}
			info.Dims = append(info.Dims, v)
			bytes *= v
		}
		info.Bytes = bytes
		p.Arrays[ad.Name] = info
	}
	for _, fd := range f.Funcs {
		idx := 0
		var walk func(s Stmt) error
		walk = func(s Stmt) error {
			switch st := s.(type) {
			case *BlockStmt:
				for _, sub := range st.Stmts {
					if err := walk(sub); err != nil {
						return err
					}
				}
			case *ForStmt:
				if st.Pragma != nil && st.Pragma.Parallel {
					r := &Region{
						ID:     fmt.Sprintf("%s.%s#%d", f.Name, fd.Name, idx),
						App:    f.Name,
						Func:   fd.Name,
						Index:  idx,
						Loop:   st,
						Pragma: st.Pragma,
					}
					idx++
					if err := p.extractModel(r); err != nil {
						return fmt.Errorf("frontend: %s: region %s: %w", f.Name, r.ID, err)
					}
					p.Regions = append(p.Regions, r)
					// Nested pragmas inside a parallel region are not
					// supported; the body is still walked to reject them.
					if hasParallel(st.Body) {
						return fmt.Errorf("frontend: %s: nested parallel region in %s", f.Name, r.ID)
					}
					return nil
				}
				return walk(st.Body)
			case *IfStmt:
				if err := walk(st.Then); err != nil {
					return err
				}
				if st.Else != nil {
					return walk(st.Else)
				}
			}
			return nil
		}
		if err := walk(fd.Body); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func hasParallel(s Stmt) bool {
	switch st := s.(type) {
	case *BlockStmt:
		for _, sub := range st.Stmts {
			if hasParallel(sub) {
				return true
			}
		}
	case *ForStmt:
		return (st.Pragma != nil && st.Pragma.Parallel) || hasParallel(st.Body)
	case *IfStmt:
		if hasParallel(st.Then) {
			return true
		}
		if st.Else != nil {
			return hasParallel(st.Else)
		}
	}
	return false
}

// evalConstInt evaluates a compile-time integer expression.
func (p *Program) evalConstInt(e Expr) (int64, error) {
	v, err := p.evalNum(e, nil)
	if err != nil {
		return 0, err
	}
	return int64(math.Round(v)), nil
}

var errDataDependent = fmt.Errorf("data-dependent expression")

// evalNum numerically evaluates e under env (loop-variable bindings plus
// file constants). Array reads and intrinsic calls are data-dependent and
// return errDataDependent.
func (p *Program) evalNum(e Expr, env map[string]float64) (float64, error) {
	switch x := e.(type) {
	case *IntLit:
		return float64(x.Value), nil
	case *FloatLit:
		return x.Value, nil
	case *Ident:
		if env != nil {
			if v, ok := env[x.Name]; ok {
				return v, nil
			}
		}
		if v, ok := p.Consts[x.Name]; ok {
			return float64(v), nil
		}
		return 0, errDataDependent
	case *UnaryExpr:
		v, err := p.evalNum(x.X, env)
		if err != nil {
			return 0, err
		}
		if x.Op == "-" {
			return -v, nil
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case *BinaryExpr:
		l, err := p.evalNum(x.L, env)
		if err != nil {
			return 0, err
		}
		r, err := p.evalNum(x.R, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, fmt.Errorf("division by zero in constant expression")
			}
			return l / r, nil
		case "%":
			if int64(r) == 0 {
				return 0, fmt.Errorf("modulo by zero in constant expression")
			}
			return float64(int64(l) % int64(r)), nil
		case "<":
			return b2f(l < r), nil
		case ">":
			return b2f(l > r), nil
		case "<=":
			return b2f(l <= r), nil
		case ">=":
			return b2f(l >= r), nil
		case "==":
			return b2f(l == r), nil
		case "!=":
			return b2f(l != r), nil
		case "&&":
			return b2f(l != 0 && r != 0), nil
		case "||":
			return b2f(l != 0 || r != 0), nil
		}
		return 0, fmt.Errorf("unknown operator %q", x.Op)
	case *CondExpr:
		c, err := p.evalNum(x.Cond, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return p.evalNum(x.Then, env)
		}
		return p.evalNum(x.Else, env)
	case *IndexExpr, *CallExpr:
		return 0, errDataDependent
	}
	return 0, fmt.Errorf("unsupported expression %T", e)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
