package frontend

import (
	"math"
	"strings"
	"testing"
)

const gemmSrc = `
// A GEMM-like kernel: C = alpha*A*B + beta*C.
const int NI = 512;
const int NJ = 512;
const int NK = 512;
double A[NI][NK];
double B[NK][NJ];
double C[NI][NJ];

void gemm_kernel() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++) {
      double acc = 0.0;
      for (k = 0; k < NK; k++) {
        acc += A[i][k] * B[k][j];
      }
      C[i][j] = 1.5 * acc + 0.5 * C[i][j];
    }
  }
}
`

const triSrc = `
const int N = 1024;
double L[N][N];
double x[N];
double b[N];

void trisolve() {
  #pragma omp parallel for schedule(dynamic)
  for (i = 0; i < N; i++) {
    double s = b[i];
    for (j = 0; j < i; j++) {
      s -= L[i][j] * x[j];
    }
    x[i] = s / L[i][i];
  }
}
`

const mcSrc = `
const int NPART = 100000;
double tally[NPART];

void track() {
  #pragma omp parallel for schedule(guided) reduction(+:total)
  for (p = 0; p < NPART; p++) {
    tally[p] = mc_segment_walk(1.0);
  }
}
double total;
`

func TestLexerTokens(t *testing.T) {
	toks, err := LexAll("a += b[3] * 2.5e-1; // comment\n#pragma omp parallel for\nif (x <= 1) {}")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokKind, 0, len(toks))
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokKind{TokIdent, TokPlusEq, TokIdent, TokLBracket, TokInt, TokRBracket,
		TokStar, TokFloat, TokSemi, TokPragma, TokIdent, TokLParen, TokIdent, TokLe,
		TokInt, TokRParen, TokLBrace, TokRBrace, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := LexAll("/* multi\nline */ x = 1; // tail")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 { // x = 1 ; EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
}

func TestLexerRejectsGarbage(t *testing.T) {
	if _, err := LexAll("a = $b;"); err == nil {
		t.Fatal("lexer accepted '$'")
	}
	if _, err := LexAll("/* unterminated"); err == nil {
		t.Fatal("lexer accepted unterminated comment")
	}
}

func TestParsePragmaClauses(t *testing.T) {
	p, err := parsePragma("#pragma omp parallel for schedule(dynamic, 64) reduction(+:sum)", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Schedule != SchedDynamic || p.Chunk != 64 {
		t.Errorf("schedule = %v chunk %d", p.Schedule, p.Chunk)
	}
	if p.Reduction != "sum" || p.RedOp != "+" {
		t.Errorf("reduction = %q op %q", p.Reduction, p.RedOp)
	}
	if _, err := parsePragma("#pragma omp target teams", 1); err == nil {
		t.Error("accepted unsupported pragma")
	}
	if _, err := parsePragma("#pragma omp parallel for schedule(banana)", 1); err == nil {
		t.Error("accepted unknown schedule")
	}
}

func TestParseGemm(t *testing.T) {
	f, err := Parse("gemm", gemmSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Consts) != 3 || len(f.Arrays) != 3 || len(f.Funcs) != 1 {
		t.Fatalf("decl counts: %d consts %d arrays %d funcs", len(f.Consts), len(f.Arrays), len(f.Funcs))
	}
	outer, ok := f.Funcs[0].Body.Stmts[0].(*ForStmt)
	if !ok || outer.Pragma == nil || !outer.Pragma.Parallel {
		t.Fatal("missing parallel for")
	}
	if outer.Pragma.Schedule != SchedStatic {
		t.Errorf("schedule = %v", outer.Pragma.Schedule)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"void f() { for (i = 0; j < 10; i++) { } }",  // condition on wrong var
		"void f() { for (i = 0; i < 10; j++) { } }",  // step on wrong var
		"void f() { x 3; }",                          // not a statement
		"const double N = 1;",                        // const must be int
		"void f() {",                                 // unterminated block
		"#pragma omp parallel for\nconst int N = 2;", // pragma not before for
	}
	for _, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("accepted invalid source %q", src)
		}
	}
}

func TestAnalyzeGemmModel(t *testing.T) {
	prog, err := Analyze(MustParse("gemm", gemmSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(prog.Regions))
	}
	m := prog.Regions[0].Model
	if m.Trips != 512 {
		t.Errorf("trips = %d, want 512", m.Trips)
	}
	// Inner j loop (512) × k loop (512) ⇒ ~512*512 mul+add pairs per outer iter.
	if m.FlopsPerIter < 4e5 || m.FlopsPerIter > 8e5 {
		t.Errorf("flops/iter = %g, want ~5.2e5", m.FlopsPerIter)
	}
	if m.Imbalance != ImbUniform {
		t.Errorf("imbalance = %v, want uniform", m.Imbalance)
	}
	wantWS := int64(3 * 512 * 512 * 8)
	if m.WorkingSet != wantWS {
		t.Errorf("working set = %d, want %d", m.WorkingSet, wantWS)
	}
	if m.SeqFrac < 0.3 {
		t.Errorf("seqFrac = %g, want mostly sequential", m.SeqFrac)
	}
}

func TestAnalyzeTriangularImbalance(t *testing.T) {
	prog, err := Analyze(MustParse("tri", triSrc))
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Regions[0].Model
	if m.Imbalance != ImbIncreasing {
		t.Fatalf("imbalance = %v, want increasing", m.Imbalance)
	}
	if m.CostProfile[0] >= m.CostProfile[4] {
		t.Errorf("profile not increasing: %v", m.CostProfile)
	}
	// Triangular: mean inner trips = N/2, so flops/iter ~ N/2 * 2.
	if m.FlopsPerIter < 500 || m.FlopsPerIter > 3000 {
		t.Errorf("flops/iter = %g", m.FlopsPerIter)
	}
}

func TestAnalyzeMonteCarloModel(t *testing.T) {
	prog, err := Analyze(MustParse("mc", mcSrc))
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Regions[0].Model
	if m.Imbalance != ImbRandom {
		t.Fatalf("imbalance = %v, want random", m.Imbalance)
	}
	if m.CV < 0.5 {
		t.Errorf("CV = %g, want >= 0.5 from mc_segment_walk", m.CV)
	}
	if !m.HasReduction {
		t.Error("reduction clause not detected")
	}
	if m.GatherFrac < 0.5 {
		t.Errorf("gatherFrac = %g, want mostly gathers", m.GatherFrac)
	}
}

func TestAnalyzeRejectsBadPrograms(t *testing.T) {
	cases := []string{
		// Data-dependent parallel bound.
		"double a[10];\nvoid f() {\n#pragma omp parallel for\nfor (i = 0; i < a[0]; i++) { a[i] = 1.0; } }",
		// Undeclared array.
		"const int N = 4;\nvoid f() {\n#pragma omp parallel for\nfor (i = 0; i < N; i++) { zz[i] = 1.0; } }",
		// Zero-trip parallel loop.
		"const int N = 0;\ndouble a[4];\nvoid f() {\n#pragma omp parallel for\nfor (i = 0; i < N; i++) { a[i] = 1.0; } }",
		// Nested parallel regions.
		"const int N = 4;\ndouble a[N][N];\nvoid f() {\n#pragma omp parallel for\nfor (i = 0; i < N; i++) {\n#pragma omp parallel for\nfor (j = 0; j < N; j++) { a[i][j] = 1.0; } } }",
	}
	for i, src := range cases {
		f, err := Parse("bad", src)
		if err != nil {
			continue // parse-time rejection also fine
		}
		if _, err := Analyze(f); err == nil {
			t.Errorf("case %d: Analyze accepted invalid program", i)
		}
	}
}

func TestLowerGemmProducesOutlinedFunction(t *testing.T) {
	prog, low, err := Compile("gemm", gemmSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := low.Module.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	outs := low.Module.OutlinedFuncs()
	if len(outs) != 1 {
		t.Fatalf("outlined funcs = %d, want 1", len(outs))
	}
	rf, ok := low.RegionFunc[prog.Regions[0].ID]
	if !ok || rf != outs[0] {
		t.Fatal("RegionFunc mapping broken")
	}
	text := rf.String()
	for _, want := range []string{"fadd", "fmul", "getelementptr", "icmp slt", "load double"} {
		if !strings.Contains(text, want) {
			t.Errorf("outlined IR missing %q", want)
		}
	}
	// The parent function must call the fork stub, not contain the loop.
	parent := low.Module.Func("gemm_kernel")
	ptext := parent.String()
	if !strings.Contains(ptext, "call void @__omp_fork_call") {
		t.Errorf("parent missing fork call:\n%s", ptext)
	}
	if strings.Contains(ptext, "fmul") {
		t.Error("loop body not outlined out of parent")
	}
}

func TestLowerDeterministic(t *testing.T) {
	_, low1, err := Compile("gemm", gemmSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, low2, err := Compile("gemm", gemmSrc)
	if err != nil {
		t.Fatal(err)
	}
	if low1.Module.String() != low2.Module.String() {
		t.Fatal("lowering is not deterministic")
	}
}

func TestLowerControlFlowConstructs(t *testing.T) {
	src := `
const int N = 64;
double a[N];
double s;
void f() {
  #pragma omp parallel for schedule(static, 8)
  for (i = 0; i < N; i++) {
    if (i % 2 == 0) {
      a[i] = sqrt(a[i]) + (a[i] > 0.5 ? 1.0 : -1.0);
    } else {
      a[i] = -a[i];
    }
  }
}
`
	prog, low, err := Compile("cf", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := low.Module.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	out := low.RegionFunc[prog.Regions[0].ID]
	text := out.String()
	for _, want := range []string{"srem", "select", "call double @sqrt", "fneg", "br i1"} {
		if !strings.Contains(text, want) {
			t.Errorf("IR missing %q:\n%s", want, text)
		}
	}
	if prog.Regions[0].Pragma.Chunk != 8 {
		t.Errorf("chunk = %d, want 8", prog.Regions[0].Pragma.Chunk)
	}
}

func TestTripCount(t *testing.T) {
	cases := []struct {
		lo, hi, step float64
		rel          string
		want         int64
	}{
		{0, 10, 1, "<", 10},
		{0, 10, 1, "<=", 11},
		{0, 10, 3, "<", 4},
		{10, 0, -1, ">", 10},
		{10, 0, -1, ">=", 11},
		{0, 10, -1, "<", 0},
		{5, 5, 1, "<", 0},
	}
	for _, c := range cases {
		if got := tripCount(c.lo, c.hi, c.step, c.rel); got != c.want {
			t.Errorf("tripCount(%g,%g,%g,%q) = %d, want %d", c.lo, c.hi, c.step, c.rel, got, c.want)
		}
	}
}

func TestArithIntensityAndInstr(t *testing.T) {
	m := RegionModel{FlopsPerIter: 100, LoadsPerIter: 10, StoresPerIter: 2.5}
	if got := m.BytesPerIter(); got != 100 {
		t.Errorf("BytesPerIter = %g, want 100", got)
	}
	if got := m.ArithIntensity(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("ArithIntensity = %g, want 1", got)
	}
	z := RegionModel{FlopsPerIter: 5}
	if !math.IsInf(z.ArithIntensity(), 1) {
		t.Error("zero-byte region should have infinite intensity")
	}
	if m.InstrPerIter() <= m.FlopsPerIter {
		t.Error("InstrPerIter must exceed flops alone")
	}
}
