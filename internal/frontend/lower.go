package frontend

import (
	"fmt"
	"sort"

	"pnptuner/internal/ir"
)

// Lowered is the result of lowering a Program to IR: the module plus the
// mapping from parallel-region IDs to their outlined functions, which is
// what the graph builder consumes (mirroring llvm-extract on Clang's
// ".omp_outlined." functions).
type Lowered struct {
	Module     *ir.Module
	RegionFunc map[string]*ir.Function
}

// Lower translates prog into LLVM-flavoured IR. Each "#pragma omp parallel
// for" loop is outlined into a dedicated function taking (%lb, %ub) bounds,
// and the enclosing function calls the runtime fork stub in its place,
// exactly mirroring Clang's OpenMP lowering at -O0 (allocas for locals,
// loads/stores for every variable access).
func Lower(prog *Program) (*Lowered, error) {
	m := ir.NewModule(prog.File.Name)
	low := &Lowered{Module: m, RegionFunc: make(map[string]*ir.Function)}

	for _, ad := range prog.File.Arrays {
		info := prog.Arrays[ad.Name]
		elem := ir.F64
		if info.Elem == TypeInt {
			elem = ir.I64
		}
		decl := elem.String()
		for i := len(info.Dims) - 1; i >= 0; i-- {
			decl = fmt.Sprintf("[%d x %s]", info.Dims[i], decl)
		}
		m.Globals = append(m.Globals, &ir.Global{
			Nam: info.Name, Ty: ir.Ptr, Elem: elem,
			Dims: info.Dims, Decl: decl, Bytes: info.Bytes,
		})
	}

	// Runtime fork stub, mirroring __kmpc_fork_call.
	fork := m.NewFunc("__omp_fork_call", ir.Void,
		&ir.Arg{Nam: "fn", Ty: ir.Ptr}, &ir.Arg{Nam: "lb", Ty: ir.I64}, &ir.Arg{Nam: "ub", Ty: ir.I64})
	fork.IsDecl = true

	names := make([]string, 0, len(Intrinsics))
	for name := range Intrinsics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ret := ir.F64
		if !Intrinsics[name].Returns {
			ret = ir.Void
		}
		d := m.NewFunc(name, ret, &ir.Arg{Nam: "x", Ty: ir.F64})
		d.IsDecl = true
	}

	for _, fd := range prog.File.Funcs {
		lc := &lowerCtx{prog: prog, mod: m, low: low}
		if err := lc.lowerFunc(fd); err != nil {
			return nil, fmt.Errorf("frontend: %s: %s: %w", prog.File.Name, fd.Name, err)
		}
	}
	for _, f := range m.Funcs {
		f.Number()
	}
	if err := m.Verify(); err != nil {
		return nil, err
	}
	return low, nil
}

// lowerCtx carries per-function lowering state.
type lowerCtx struct {
	prog *Program
	mod  *ir.Module
	low  *Lowered

	fn     *ir.Function
	blk    *ir.Block
	locals map[string]*local
	nblk   int
	nreg   int // parallel regions outlined so far in this source function
	srcFn  string
}

type local struct {
	slot *ir.Instr // alloca
	ty   ir.Type
}

func (lc *lowerCtx) newBlock(hint string) *ir.Block {
	lc.nblk++
	return lc.fn.NewBlock(fmt.Sprintf("%s%d", hint, lc.nblk))
}

func (lc *lowerCtx) emit(in *ir.Instr) *ir.Instr { return lc.blk.Append(in) }

func (lc *lowerCtx) lowerFunc(fd *FuncDecl) error {
	lc.srcFn = fd.Name
	lc.fn = lc.mod.NewFunc(fd.Name, ir.Void)
	lc.locals = map[string]*local{}
	lc.blk = lc.fn.NewBlock("entry")
	if err := lc.lowerStmt(fd.Body); err != nil {
		return err
	}
	lc.emit(&ir.Instr{Op: ir.OpRet})
	return nil
}

// alloca inserts an alloca in the current function's entry block.
func (lc *lowerCtx) alloca(name string, ty ir.Type) *local {
	in := &ir.Instr{Op: ir.OpAlloca, Ty: ir.Ptr, Nam: name + ".addr"}
	entry := lc.fn.Blocks[0]
	// Keep allocas at the top, before any terminator.
	entry.Instrs = append([]*ir.Instr{in}, entry.Instrs...)
	in.Parent = entry
	l := &local{slot: in, ty: ty}
	lc.locals[name] = l
	return l
}

func (lc *lowerCtx) lowerStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		for _, sub := range st.Stmts {
			if err := lc.lowerStmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		ty := ir.F64
		if st.Typ == TypeInt {
			ty = ir.I64
		}
		l := lc.alloca(st.Name, ty)
		if st.Init != nil {
			v, err := lc.lowerExpr(st.Init)
			if err != nil {
				return err
			}
			v = lc.coerce(v, ty)
			lc.emit(&ir.Instr{Op: ir.OpStore, Operands: []ir.Value{v, l.slot}})
		}
		return nil
	case *AssignStmt:
		return lc.lowerAssign(st)
	case *ExprStmt:
		_, err := lc.lowerExpr(st.X)
		return err
	case *IfStmt:
		return lc.lowerIf(st)
	case *ForStmt:
		if st.Pragma != nil && st.Pragma.Parallel {
			return lc.outlineParallel(st)
		}
		return lc.lowerFor(st)
	}
	return fmt.Errorf("unsupported statement %T", s)
}

func (lc *lowerCtx) lowerAssign(st *AssignStmt) error {
	rhs, err := lc.lowerExpr(st.RHS)
	if err != nil {
		return err
	}
	addr, elemTy, err := lc.lvalueAddr(st.LHS)
	if err != nil {
		return err
	}
	if st.Op != "=" {
		cur := lc.emit(&ir.Instr{Op: ir.OpLoad, Ty: elemTy, Operands: []ir.Value{addr}})
		rhs = lc.binop(st.Op[:1], cur, rhs)
	}
	rhs = lc.coerce(rhs, elemTy)
	lc.emit(&ir.Instr{Op: ir.OpStore, Operands: []ir.Value{rhs, addr}})
	return nil
}

// lvalueAddr computes the address and element type of an lvalue.
func (lc *lowerCtx) lvalueAddr(lv *LValue) (ir.Value, ir.Type, error) {
	if len(lv.Indices) == 0 {
		if l, ok := lc.locals[lv.Name]; ok {
			return l.slot, l.ty, nil
		}
		if g := lc.mod.Global(lv.Name); g != nil && len(g.Dims) == 0 {
			return g, g.Elem, nil
		}
		return nil, 0, fmt.Errorf("assignment to unknown variable %q", lv.Name)
	}
	g := lc.mod.Global(lv.Name)
	if g == nil {
		return nil, 0, fmt.Errorf("reference to undeclared array %q", lv.Name)
	}
	if len(lv.Indices) != len(g.Dims) {
		return nil, 0, fmt.Errorf("array %q: %d indices for %d dimensions", lv.Name, len(lv.Indices), len(g.Dims))
	}
	// Linearize the index: ((i*D1)+j)*D2+k ...
	var lin ir.Value
	for k, ixe := range lv.Indices {
		iv, err := lc.lowerExpr(ixe)
		if err != nil {
			return nil, 0, err
		}
		iv = lc.coerce(iv, ir.I64)
		if lin == nil {
			lin = iv
		} else {
			mul := lc.emit(&ir.Instr{Op: ir.OpMul, Ty: ir.I64, Operands: []ir.Value{lin, ir.ConstInt(g.Dims[k])}})
			lin = lc.emit(&ir.Instr{Op: ir.OpAdd, Ty: ir.I64, Operands: []ir.Value{mul, iv}})
		}
	}
	gep := lc.emit(&ir.Instr{Op: ir.OpGEP, Ty: ir.Ptr, Operands: []ir.Value{g, lin}})
	return gep, g.Elem, nil
}

func (lc *lowerCtx) lowerIf(st *IfStmt) error {
	cond, err := lc.lowerCond(st.Cond)
	if err != nil {
		return err
	}
	thenB := lc.newBlock("if.then")
	endB := lc.newBlock("if.end")
	elseB := endB
	if st.Else != nil {
		elseB = lc.newBlock("if.else")
	}
	lc.emit(&ir.Instr{Op: ir.OpCondBr, Operands: []ir.Value{cond}, Blocks: []*ir.Block{thenB, elseB}})
	lc.blk = thenB
	if err := lc.lowerStmt(st.Then); err != nil {
		return err
	}
	lc.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{endB}})
	if st.Else != nil {
		lc.blk = elseB
		if err := lc.lowerStmt(st.Else); err != nil {
			return err
		}
		lc.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{endB}})
	}
	lc.blk = endB
	return nil
}

func relPred(rel string, float bool) string {
	if float {
		switch rel {
		case "<":
			return "olt"
		case "<=":
			return "ole"
		case ">":
			return "ogt"
		case ">=":
			return "oge"
		case "==":
			return "oeq"
		case "!=":
			return "one"
		}
	}
	switch rel {
	case "<":
		return "slt"
	case "<=":
		return "sle"
	case ">":
		return "sgt"
	case ">=":
		return "sge"
	case "==":
		return "eq"
	case "!=":
		return "ne"
	}
	return "slt"
}

// lowerFor lowers a sequential counted loop with the standard
// entry → header → body → latch → header / exit block structure.
func (lc *lowerCtx) lowerFor(st *ForStmt) error {
	l, ok := lc.locals[st.Var]
	if !ok {
		l = lc.alloca(st.Var, ir.I64)
	}
	initV, err := lc.lowerExpr(st.Init)
	if err != nil {
		return err
	}
	lc.emit(&ir.Instr{Op: ir.OpStore, Operands: []ir.Value{lc.coerce(initV, ir.I64), l.slot}})

	header := lc.newBlock("for.cond")
	body := lc.newBlock("for.body")
	latch := lc.newBlock("for.inc")
	exit := lc.newBlock("for.end")

	lc.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{header}})
	lc.blk = header
	iv := lc.emit(&ir.Instr{Op: ir.OpLoad, Ty: ir.I64, Operands: []ir.Value{l.slot}})
	bound, err := lc.lowerExpr(st.Bound)
	if err != nil {
		return err
	}
	cmp := lc.emit(&ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: relPred(st.RelOp, false),
		Operands: []ir.Value{iv, lc.coerce(bound, ir.I64)}})
	lc.emit(&ir.Instr{Op: ir.OpCondBr, Operands: []ir.Value{cmp}, Blocks: []*ir.Block{body, exit}})

	lc.blk = body
	if err := lc.lowerStmt(st.Body); err != nil {
		return err
	}
	lc.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{latch}})

	lc.blk = latch
	iv2 := lc.emit(&ir.Instr{Op: ir.OpLoad, Ty: ir.I64, Operands: []ir.Value{l.slot}})
	stepV, err := lc.lowerExpr(st.Step)
	if err != nil {
		return err
	}
	next := lc.emit(&ir.Instr{Op: ir.OpAdd, Ty: ir.I64, Operands: []ir.Value{iv2, lc.coerce(stepV, ir.I64)}})
	lc.emit(&ir.Instr{Op: ir.OpStore, Operands: []ir.Value{next, l.slot}})
	lc.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{header}})

	lc.blk = exit
	return nil
}

// outlineParallel lowers a parallel loop: the loop moves into a fresh
// ".omp_outlined." function parameterized by (%lb, %ub), and the parent
// emits a call to the fork stub.
func (lc *lowerCtx) outlineParallel(st *ForStmt) error {
	regionID := fmt.Sprintf("%s.%s#%d", lc.prog.File.Name, lc.srcFn, lc.nreg)
	name := fmt.Sprintf("%s.omp_outlined.%d", lc.srcFn, lc.nreg)
	lc.nreg++

	lo, err := lc.lowerExpr(st.Init)
	if err != nil {
		return err
	}
	hi, err := lc.lowerExpr(st.Bound)
	if err != nil {
		return err
	}
	out := lc.mod.NewFunc(name, ir.Void, &ir.Arg{Nam: "lb", Ty: ir.I64}, &ir.Arg{Nam: "ub", Ty: ir.I64})
	out.Outlined = true
	lc.low.RegionFunc[regionID] = out

	lc.emit(&ir.Instr{Op: ir.OpCall, Ty: ir.Void, Callee: "__omp_fork_call",
		Operands: []ir.Value{out, lc.coerce(lo, ir.I64), lc.coerce(hi, ir.I64)}})

	// Lower the loop body inside the outlined function with a sub-context.
	sub := &lowerCtx{prog: lc.prog, mod: lc.mod, low: lc.low, fn: out, srcFn: lc.srcFn,
		locals: map[string]*local{}}
	sub.blk = out.NewBlock("entry")

	iVar := sub.alloca(st.Var, ir.I64)
	sub.emit(&ir.Instr{Op: ir.OpStore, Operands: []ir.Value{out.Params[0], iVar.slot}})

	header := sub.newBlock("omp.cond")
	body := sub.newBlock("omp.body")
	latch := sub.newBlock("omp.inc")
	exit := sub.newBlock("omp.exit")

	sub.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{header}})
	sub.blk = header
	iv := sub.emit(&ir.Instr{Op: ir.OpLoad, Ty: ir.I64, Operands: []ir.Value{iVar.slot}})
	cmp := sub.emit(&ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: relPred(st.RelOp, false),
		Operands: []ir.Value{iv, out.Params[1]}})
	sub.emit(&ir.Instr{Op: ir.OpCondBr, Operands: []ir.Value{cmp}, Blocks: []*ir.Block{body, exit}})

	sub.blk = body
	if err := sub.lowerStmt(st.Body); err != nil {
		return err
	}
	sub.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{latch}})

	sub.blk = latch
	iv2 := sub.emit(&ir.Instr{Op: ir.OpLoad, Ty: ir.I64, Operands: []ir.Value{iVar.slot}})
	stepV, err := sub.lowerExpr(st.Step)
	if err != nil {
		return err
	}
	next := sub.emit(&ir.Instr{Op: ir.OpAdd, Ty: ir.I64, Operands: []ir.Value{iv2, sub.coerce(stepV, ir.I64)}})
	sub.emit(&ir.Instr{Op: ir.OpStore, Operands: []ir.Value{next, iVar.slot}})
	sub.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{header}})

	sub.blk = exit
	sub.emit(&ir.Instr{Op: ir.OpRet})
	return nil
}

// coerce converts v to type want, inserting sext/sitofp/fptosi as needed.
func (lc *lowerCtx) coerce(v ir.Value, want ir.Type) ir.Value {
	have := v.Type()
	if have == want {
		return v
	}
	switch {
	case have == ir.I1 && want == ir.I64:
		return lc.emit(&ir.Instr{Op: ir.OpSExt, Ty: ir.I64, Operands: []ir.Value{v}})
	case have == ir.I64 && want == ir.F64:
		return lc.emit(&ir.Instr{Op: ir.OpSIToFP, Ty: ir.F64, Operands: []ir.Value{v}})
	case have == ir.F64 && want == ir.I64:
		return lc.emit(&ir.Instr{Op: ir.OpFPToSI, Ty: ir.I64, Operands: []ir.Value{v}})
	case have == ir.I1 && want == ir.F64:
		w := lc.emit(&ir.Instr{Op: ir.OpSExt, Ty: ir.I64, Operands: []ir.Value{v}})
		return lc.emit(&ir.Instr{Op: ir.OpSIToFP, Ty: ir.F64, Operands: []ir.Value{w}})
	}
	return v
}

// binop lowers an arithmetic binary operation, promoting to double when
// either side is floating.
func (lc *lowerCtx) binop(op string, l, r ir.Value) ir.Value {
	isF := l.Type() == ir.F64 || r.Type() == ir.F64
	if isF {
		l = lc.coerce(l, ir.F64)
		r = lc.coerce(r, ir.F64)
		var oc ir.Opcode
		switch op {
		case "+":
			oc = ir.OpFAdd
		case "-":
			oc = ir.OpFSub
		case "*":
			oc = ir.OpFMul
		case "/":
			oc = ir.OpFDiv
		default:
			oc = ir.OpFAdd
		}
		return lc.emit(&ir.Instr{Op: oc, Ty: ir.F64, Operands: []ir.Value{l, r}})
	}
	l = lc.coerce(l, ir.I64)
	r = lc.coerce(r, ir.I64)
	var oc ir.Opcode
	switch op {
	case "+":
		oc = ir.OpAdd
	case "-":
		oc = ir.OpSub
	case "*":
		oc = ir.OpMul
	case "/":
		oc = ir.OpSDiv
	case "%":
		oc = ir.OpSRem
	default:
		oc = ir.OpAdd
	}
	return lc.emit(&ir.Instr{Op: oc, Ty: ir.I64, Operands: []ir.Value{l, r}})
}

// lowerCond lowers an expression used as a branch condition to an i1.
func (lc *lowerCtx) lowerCond(e Expr) (ir.Value, error) {
	v, err := lc.lowerExpr(e)
	if err != nil {
		return nil, err
	}
	if v.Type() == ir.I1 {
		return v, nil
	}
	if v.Type() == ir.F64 {
		return lc.emit(&ir.Instr{Op: ir.OpFCmp, Ty: ir.I1, Pred: "one",
			Operands: []ir.Value{v, ir.ConstFloat(0)}}), nil
	}
	return lc.emit(&ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: "ne",
		Operands: []ir.Value{v, ir.ConstInt(0)}}), nil
}

func (lc *lowerCtx) lowerExpr(e Expr) (ir.Value, error) {
	switch x := e.(type) {
	case *IntLit:
		return ir.ConstInt(x.Value), nil
	case *FloatLit:
		return ir.ConstFloat(x.Value), nil
	case *Ident:
		if l, ok := lc.locals[x.Name]; ok {
			return lc.emit(&ir.Instr{Op: ir.OpLoad, Ty: l.ty, Operands: []ir.Value{l.slot}}), nil
		}
		if v, ok := lc.prog.Consts[x.Name]; ok {
			return ir.ConstInt(v), nil
		}
		if g := lc.mod.Global(x.Name); g != nil && len(g.Dims) == 0 {
			return lc.emit(&ir.Instr{Op: ir.OpLoad, Ty: g.Elem, Operands: []ir.Value{g}}), nil
		}
		return nil, fmt.Errorf("reference to unknown identifier %q", x.Name)
	case *IndexExpr:
		addr, elemTy, err := lc.lvalueAddr(&LValue{Name: x.Name, Indices: x.Indices})
		if err != nil {
			return nil, err
		}
		return lc.emit(&ir.Instr{Op: ir.OpLoad, Ty: elemTy, Operands: []ir.Value{addr}}), nil
	case *UnaryExpr:
		v, err := lc.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		if x.Op == "-" {
			if v.Type() == ir.F64 {
				return lc.emit(&ir.Instr{Op: ir.OpFNeg, Ty: ir.F64, Operands: []ir.Value{v}}), nil
			}
			return lc.emit(&ir.Instr{Op: ir.OpSub, Ty: ir.I64,
				Operands: []ir.Value{ir.ConstInt(0), lc.coerce(v, ir.I64)}}), nil
		}
		// Logical not.
		c, err := lc.lowerCond(x.X)
		if err != nil {
			return nil, err
		}
		return lc.emit(&ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: "eq",
			Operands: []ir.Value{lc.coerce(c, ir.I64), ir.ConstInt(0)}}), nil
	case *BinaryExpr:
		switch x.Op {
		case "+", "-", "*", "/", "%":
			l, err := lc.lowerExpr(x.L)
			if err != nil {
				return nil, err
			}
			r, err := lc.lowerExpr(x.R)
			if err != nil {
				return nil, err
			}
			return lc.binop(x.Op, l, r), nil
		case "<", ">", "<=", ">=", "==", "!=":
			l, err := lc.lowerExpr(x.L)
			if err != nil {
				return nil, err
			}
			r, err := lc.lowerExpr(x.R)
			if err != nil {
				return nil, err
			}
			if l.Type() == ir.F64 || r.Type() == ir.F64 {
				return lc.emit(&ir.Instr{Op: ir.OpFCmp, Ty: ir.I1, Pred: relPred(x.Op, true),
					Operands: []ir.Value{lc.coerce(l, ir.F64), lc.coerce(r, ir.F64)}}), nil
			}
			return lc.emit(&ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: relPred(x.Op, false),
				Operands: []ir.Value{lc.coerce(l, ir.I64), lc.coerce(r, ir.I64)}}), nil
		case "&&", "||":
			// Non-short-circuit lowering via select keeps the CFG compact;
			// the corpus has no side-effecting conditions.
			l, err := lc.lowerCond(x.L)
			if err != nil {
				return nil, err
			}
			r, err := lc.lowerCond(x.R)
			if err != nil {
				return nil, err
			}
			if x.Op == "&&" {
				return lc.emit(&ir.Instr{Op: ir.OpSelect, Ty: ir.I1,
					Operands: []ir.Value{l, r, &ir.Const{Ty: ir.I1, Text: "false"}}}), nil
			}
			return lc.emit(&ir.Instr{Op: ir.OpSelect, Ty: ir.I1,
				Operands: []ir.Value{l, &ir.Const{Ty: ir.I1, Text: "true"}, r}}), nil
		}
		return nil, fmt.Errorf("unsupported binary operator %q", x.Op)
	case *CondExpr:
		c, err := lc.lowerCond(x.Cond)
		if err != nil {
			return nil, err
		}
		t, err := lc.lowerExpr(x.Then)
		if err != nil {
			return nil, err
		}
		f, err := lc.lowerExpr(x.Else)
		if err != nil {
			return nil, err
		}
		ty := t.Type()
		if t.Type() == ir.F64 || f.Type() == ir.F64 {
			ty = ir.F64
		}
		return lc.emit(&ir.Instr{Op: ir.OpSelect, Ty: ty,
			Operands: []ir.Value{c, lc.coerce(t, ty), lc.coerce(f, ty)}}), nil
	case *CallExpr:
		var args []ir.Value
		for _, a := range x.Args {
			v, err := lc.lowerExpr(a)
			if err != nil {
				return nil, err
			}
			args = append(args, lc.coerce(v, ir.F64))
		}
		ret := ir.F64
		if in, ok := Intrinsics[x.Name]; ok && !in.Returns {
			ret = ir.Void
		}
		return lc.emit(&ir.Instr{Op: ir.OpCall, Ty: ret, Callee: x.Name, Operands: args}), nil
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

// Compile is the front door: parse, analyze, and lower a source file,
// returning the analyzed program and its IR.
func Compile(name, src string) (*Program, *Lowered, error) {
	f, err := Parse(name, src)
	if err != nil {
		return nil, nil, err
	}
	prog, err := Analyze(f)
	if err != nil {
		return nil, nil, err
	}
	low, err := Lower(prog)
	if err != nil {
		return nil, nil, err
	}
	return prog, low, nil
}
