// Package frontend implements a mini-C/OpenMP dialect compiler. It lexes
// and parses benchmark kernel sources, extracts an analytic kernel model
// (trip counts, flops and bytes per iteration, imbalance shape) used by the
// hardware simulator, and lowers parallel regions into outlined ir
// functions the way Clang outlines "#pragma omp parallel for" loops.
package frontend

import "fmt"

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds. Keywords are folded into TokIdent at lex time and
// distinguished by spelling in the parser, except for the handful that
// shape the grammar.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokPragma // a whole "#pragma ..." line, payload in Lit
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokAssign   // =
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokPercent  // %
	TokPlusEq   // +=
	TokMinusEq  // -=
	TokStarEq   // *=
	TokSlashEq  // /=
	TokPlusPlus // ++
	TokMinusMin // --
	TokEq       // ==
	TokNe       // !=
	TokLt       // <
	TokGt       // >
	TokLe       // <=
	TokGe       // >=
	TokAndAnd   // &&
	TokOrOr     // ||
	TokNot      // !
	TokQuestion // ?
	TokColon    // :
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "int literal",
	TokFloat: "float literal", TokPragma: "#pragma", TokLParen: "(",
	TokRParen: ")", TokLBrace: "{", TokRBrace: "}", TokLBracket: "[",
	TokRBracket: "]", TokSemi: ";", TokComma: ",", TokAssign: "=",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPercent: "%", TokPlusEq: "+=", TokMinusEq: "-=", TokStarEq: "*=",
	TokSlashEq: "/=", TokPlusPlus: "++", TokMinusMin: "--", TokEq: "==",
	TokNe: "!=", TokLt: "<", TokGt: ">", TokLe: "<=", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||", TokNot: "!", TokQuestion: "?",
	TokColon: ":",
}

// String returns a human-readable token-kind name.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

// Token is one lexical token with source position.
type Token struct {
	Kind TokKind
	Lit  string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Lit != "" {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}
