package frontend

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser for the mini-C/OpenMP dialect.
type Parser struct {
	toks []Token
	pos  int
	name string
}

// Parse lexes and parses src into a File named name.
func Parse(name, src string) (*File, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, fmt.Errorf("frontend: %s: %w", name, err)
	}
	p := &Parser{toks: toks, name: name}
	f, err := p.file()
	if err != nil {
		return nil, fmt.Errorf("frontend: %s: %w", name, err)
	}
	return f, nil
}

// MustParse parses src and panics on error; intended for the built-in
// kernel corpus, whose sources are compile-time constants.
func MustParse(name, src string) *File {
	f, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptIdent(lit string) bool {
	if p.cur().Kind == TokIdent && p.cur().Lit == lit {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("line %d: expected %s, got %s", t.Line, k, t)
	}
	p.pos++
	return t, nil
}

func (p *Parser) expectIdent() (string, error) {
	t, err := p.expect(TokIdent)
	return t.Lit, err
}

func (p *Parser) file() (*File, error) {
	f := &File{Name: p.name}
	for p.cur().Kind != TokEOF {
		t := p.cur()
		if t.Kind != TokIdent {
			return nil, fmt.Errorf("line %d: expected declaration, got %s", t.Line, t)
		}
		switch t.Lit {
		case "const":
			d, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			f.Consts = append(f.Consts, d)
		case "double", "int":
			d, err := p.arrayDecl()
			if err != nil {
				return nil, err
			}
			f.Arrays = append(f.Arrays, d)
		case "void":
			d, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, d)
		default:
			return nil, fmt.Errorf("line %d: unexpected %q at top level", t.Line, t.Lit)
		}
	}
	return f, nil
}

func (p *Parser) constDecl() (*ConstDecl, error) {
	p.next() // const
	if !p.acceptIdent("int") {
		return nil, fmt.Errorf("line %d: const requires int", p.cur().Line)
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	v, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ConstDecl{Name: name, Value: v}, nil
}

func (p *Parser) arrayDecl() (*ArrayDecl, error) {
	elem := TypeDouble
	if p.cur().Lit == "int" {
		elem = TypeInt
	}
	p.next() // type
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &ArrayDecl{Name: name, Elem: elem}
	for p.accept(TokLBracket) {
		dim, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		d.Dims = append(d.Dims, dim)
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) funcDecl() (*FuncDecl, error) {
	p.next() // void
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name, Body: body}, nil
}

func (p *Parser) block() (*BlockStmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, fmt.Errorf("unexpected EOF in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *Parser) stmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokPragma:
		prag, err := parsePragma(t.Lit, t.Line)
		if err != nil {
			return nil, err
		}
		p.next()
		if p.cur().Kind != TokIdent || p.cur().Lit != "for" {
			return nil, fmt.Errorf("line %d: omp pragma must precede a for loop", p.cur().Line)
		}
		fs, err := p.forStmt()
		if err != nil {
			return nil, err
		}
		fs.Pragma = prag
		return fs, nil
	case TokLBrace:
		return p.block()
	case TokIdent:
		switch t.Lit {
		case "for":
			return p.forStmt()
		case "if":
			return p.ifStmt()
		case "double", "int":
			return p.declStmt()
		default:
			return p.simpleStmt()
		}
	}
	return nil, fmt.Errorf("line %d: unexpected %s", t.Line, t)
}

func (p *Parser) forStmt() (*ForStmt, error) {
	p.next() // for
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	initE, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	cv, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if cv != v {
		return nil, fmt.Errorf("for condition must test loop variable %q, got %q", v, cv)
	}
	var rel string
	switch p.cur().Kind {
	case TokLt:
		rel = "<"
	case TokLe:
		rel = "<="
	case TokGt:
		rel = ">"
	case TokGe:
		rel = ">="
	default:
		return nil, fmt.Errorf("line %d: expected relational operator", p.cur().Line)
	}
	p.next()
	bound, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	sv, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if sv != v {
		return nil, fmt.Errorf("for step must update loop variable %q, got %q", v, sv)
	}
	var step Expr
	switch p.cur().Kind {
	case TokPlusPlus:
		p.next()
		step = &IntLit{Value: 1}
	case TokMinusMin:
		p.next()
		step = &IntLit{Value: -1}
	case TokPlusEq:
		p.next()
		step, err = p.expr()
		if err != nil {
			return nil, err
		}
	case TokMinusEq:
		p.next()
		var e Expr
		e, err = p.expr()
		if err != nil {
			return nil, err
		}
		step = &UnaryExpr{Op: "-", X: e}
	default:
		return nil, fmt.Errorf("line %d: expected ++, --, += or -=", p.cur().Line)
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Var: v, Init: initE, RelOp: rel, Bound: bound, Step: step, Body: body}, nil
}

func (p *Parser) ifStmt() (*IfStmt, error) {
	p.next() // if
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then}
	if p.acceptIdent("else") {
		s.Else, err = p.stmt()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *Parser) declStmt() (Stmt, error) {
	typ := TypeDouble
	if p.cur().Lit == "int" {
		typ = TypeInt
	}
	p.next()
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: name, Typ: typ}
	if p.accept(TokAssign) {
		d.Init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

// simpleStmt parses an assignment or a bare call statement.
func (p *Parser) simpleStmt() (Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	// Bare call: intrinsic invoked for effect.
	if p.cur().Kind == TokLParen {
		call, err := p.callRest(name)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ExprStmt{X: call}, nil
	}
	lv := &LValue{Name: name}
	for p.accept(TokLBracket) {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		lv.Indices = append(lv.Indices, idx)
	}
	var op string
	switch p.cur().Kind {
	case TokAssign:
		op = "="
	case TokPlusEq:
		op = "+="
	case TokMinusEq:
		op = "-="
	case TokStarEq:
		op = "*="
	case TokSlashEq:
		op = "/="
	case TokPlusPlus:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lv, Op: "+=", RHS: &IntLit{Value: 1}}, nil
	default:
		return nil, fmt.Errorf("line %d: expected assignment operator, got %s", p.cur().Line, p.cur())
	}
	p.next()
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: lv, Op: op, RHS: rhs}, nil
}

// Expression parsing with precedence climbing:
// ternary < || < && < == != < relational < additive < multiplicative < unary.

func (p *Parser) expr() (Expr, error) { return p.ternary() }

func (p *Parser) ternary() (Expr, error) {
	cond, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if !p.accept(TokQuestion) {
		return cond, nil
	}
	then, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	els, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els}, nil
}

func (p *Parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOrOr {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) andExpr() (Expr, error) {
	l, err := p.eqExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokAndAnd {
		p.next()
		r, err := p.eqExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) eqExpr() (Expr, error) {
	l, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokEq:
			op = "=="
		case TokNe:
			op = "!="
		default:
			return l, nil
		}
		p.next()
		r, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) relExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokLt:
			op = "<"
		case TokGt:
			op = ">"
		case TokLe:
			op = "<="
		case TokGe:
			op = ">="
		default:
			return l, nil
		}
		p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokPlus:
			op = "+"
		case TokMinus:
			op = "-"
		default:
			return l, nil
		}
		p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokStar:
			op = "*"
		case TokSlash:
			op = "/"
		case TokPercent:
			op = "%"
		default:
			return l, nil
		}
		p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) unary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	case TokNot:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "!", X: x}, nil
	}
	return p.primary()
}

func (p *Parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad int %q", t.Line, t.Lit)
		}
		return &IntLit{Value: v}, nil
	case TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad float %q", t.Line, t.Lit)
		}
		return &FloatLit{Value: v}, nil
	case TokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		p.next()
		if p.cur().Kind == TokLParen {
			return p.callRest(t.Lit)
		}
		if p.cur().Kind == TokLBracket {
			ie := &IndexExpr{Name: t.Lit}
			for p.accept(TokLBracket) {
				idx, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokRBracket); err != nil {
					return nil, err
				}
				ie.Indices = append(ie.Indices, idx)
			}
			return ie, nil
		}
		return &Ident{Name: t.Lit}, nil
	}
	return nil, fmt.Errorf("line %d: unexpected %s in expression", t.Line, t)
}

func (p *Parser) callRest(name string) (Expr, error) {
	p.next() // (
	c := &CallExpr{Name: name}
	if p.accept(TokRParen) {
		return c, nil
	}
	for {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Args = append(c.Args, a)
		if p.accept(TokRParen) {
			return c, nil
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
	}
}

// parsePragma parses "#pragma omp parallel for [schedule(...)] [reduction(...)]".
func parsePragma(text string, line int) (*Pragma, error) {
	fields := strings.FieldsFunc(text, func(r rune) bool {
		return r == ' ' || r == '\t'
	})
	if len(fields) < 2 || fields[0] != "#pragma" || fields[1] != "omp" {
		return nil, fmt.Errorf("line %d: unsupported pragma %q", line, text)
	}
	rest := strings.Join(fields[2:], " ")
	if !strings.HasPrefix(rest, "parallel for") {
		return nil, fmt.Errorf("line %d: only 'parallel for' pragmas supported, got %q", line, text)
	}
	prag := &Pragma{Parallel: true, Schedule: SchedDefault}
	clauses := strings.TrimSpace(strings.TrimPrefix(rest, "parallel for"))
	for clauses != "" {
		open := strings.IndexByte(clauses, '(')
		if open < 0 {
			return nil, fmt.Errorf("line %d: malformed clause in %q", line, text)
		}
		name := strings.TrimSpace(clauses[:open])
		close := strings.IndexByte(clauses, ')')
		if close < open {
			return nil, fmt.Errorf("line %d: unbalanced clause in %q", line, text)
		}
		arg := clauses[open+1 : close]
		clauses = strings.TrimSpace(clauses[close+1:])
		switch name {
		case "schedule":
			parts := strings.Split(arg, ",")
			switch strings.TrimSpace(parts[0]) {
			case "static":
				prag.Schedule = SchedStatic
			case "dynamic":
				prag.Schedule = SchedDynamic
			case "guided":
				prag.Schedule = SchedGuided
			default:
				return nil, fmt.Errorf("line %d: unknown schedule %q", line, parts[0])
			}
			if len(parts) > 1 {
				c, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
				if err != nil || c <= 0 {
					return nil, fmt.Errorf("line %d: bad chunk %q", line, parts[1])
				}
				prag.Chunk = c
			}
		case "reduction":
			parts := strings.SplitN(arg, ":", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: bad reduction %q", line, arg)
			}
			prag.RedOp = strings.TrimSpace(parts[0])
			prag.Reduction = strings.TrimSpace(parts[1])
		default:
			return nil, fmt.Errorf("line %d: unknown clause %q", line, name)
		}
	}
	return prag, nil
}
