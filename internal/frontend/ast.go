package frontend

// ScalarType is the source-level type of a scalar value.
type ScalarType int

// Source scalar types.
const (
	TypeInt ScalarType = iota
	TypeDouble
	TypeVoid
)

func (t ScalarType) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeDouble:
		return "double"
	case TypeVoid:
		return "void"
	}
	return "?"
}

// File is a parsed translation unit.
type File struct {
	Name   string
	Consts []*ConstDecl
	Arrays []*ArrayDecl
	Funcs  []*FuncDecl
}

// ConstDecl is a compile-time integer constant ("const int N = 2000;").
type ConstDecl struct {
	Name  string
	Value Expr
}

// ArrayDecl is a global array or scalar declaration.
type ArrayDecl struct {
	Name string
	Elem ScalarType
	Dims []Expr // empty for scalars
}

// FuncDecl is a void function containing statements; parallel regions live
// inside function bodies.
type FuncDecl struct {
	Name string
	Body *BlockStmt
}

// Stmt is the statement interface.
type Stmt interface{ stmt() }

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct{ Stmts []Stmt }

// ForStmt is a counted loop, optionally annotated with an OpenMP pragma.
type ForStmt struct {
	Pragma *Pragma // nil for plain loops
	Var    string
	Init   Expr
	// Cond is Var RelOp Bound.
	RelOp string // "<", "<=", ">", ">="
	Bound Expr
	// Step: Var += StepExpr (StepExpr is 1 for ++, -1 for --).
	Step Expr
	Body Stmt
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// DeclStmt declares a local scalar, optionally initialized.
type DeclStmt struct {
	Name string
	Typ  ScalarType
	Init Expr // may be nil
}

// AssignStmt is "lvalue op= expr" where op is one of =, +=, -=, *=, /=.
type AssignStmt struct {
	LHS *LValue
	Op  string // "=", "+=", "-=", "*=", "/="
	RHS Expr
}

// ExprStmt is a bare call used for effect (intrinsics).
type ExprStmt struct{ X Expr }

// LValue is a scalar variable or an array element reference.
type LValue struct {
	Name    string
	Indices []Expr // nil for scalars
}

func (*BlockStmt) stmt()  {}
func (*ForStmt) stmt()    {}
func (*IfStmt) stmt()     {}
func (*DeclStmt) stmt()   {}
func (*AssignStmt) stmt() {}
func (*ExprStmt) stmt()   {}

// Expr is the expression interface.
type Expr interface{ expr() }

// Ident references a constant, local, parameter, or loop variable.
type Ident struct{ Name string }

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

// FloatLit is a floating literal.
type FloatLit struct{ Value float64 }

// IndexExpr reads an array element.
type IndexExpr struct {
	Name    string
	Indices []Expr
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   string // + - * / % == != < > <= >= && ||
	L, R Expr
}

// UnaryExpr is unary minus or logical not.
type UnaryExpr struct {
	Op string // "-", "!"
	X  Expr
}

// CondExpr is the ternary "c ? a : b".
type CondExpr struct {
	Cond, Then, Else Expr
}

// CallExpr invokes a math builtin or a simulator intrinsic.
type CallExpr struct {
	Name string
	Args []Expr
}

func (*Ident) expr()      {}
func (*IntLit) expr()     {}
func (*FloatLit) expr()   {}
func (*IndexExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*CondExpr) expr()   {}
func (*CallExpr) expr()   {}

// ScheduleKind mirrors the OpenMP schedule() clause.
type ScheduleKind int

// OpenMP loop schedules.
const (
	SchedDefault ScheduleKind = iota // no clause: implementation default (static)
	SchedStatic
	SchedDynamic
	SchedGuided
)

func (s ScheduleKind) String() string {
	switch s {
	case SchedStatic:
		return "static"
	case SchedDynamic:
		return "dynamic"
	case SchedGuided:
		return "guided"
	}
	return "default"
}

// Pragma is a parsed "#pragma omp parallel for" directive.
type Pragma struct {
	Parallel  bool
	Schedule  ScheduleKind
	Chunk     int64  // 0 = unspecified
	Reduction string // reduction variable name, "" if none
	RedOp     string // "+", "*", "max", "min"
}
