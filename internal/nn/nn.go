// Package nn implements the neural-network building blocks of the PnP
// tuner: parameterized layers with explicit forward/backward passes,
// softmax cross-entropy loss, and the Adam/AdamW(amsgrad) optimizers of
// the paper's Table II. There is no tape autograd — the model topology is
// fixed (RGCN stack feeding dense layers), so each layer owns its exact
// gradient computation, which keeps the hot path allocation-light.
package nn

import (
	"fmt"
	"math"

	"pnptuner/internal/tensor"
)

// Param is a learnable weight matrix with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParam allocates a named parameter of the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module.
type Layer interface {
	// Forward computes the layer output for x, caching whatever the
	// backward pass needs.
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward receives ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients along the way.
	Backward(dout *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's learnable parameters.
	Params() []*Param
}

// Linear is a fully connected layer: y = x·W + b.
type Linear struct {
	In, Out int
	Weight  *Param // In×Out
	Bias    *Param // 1×Out
	x       *tensor.Matrix

	// Reusable output/gradient buffers: forward and backward results are
	// valid until the next call on this layer.
	outBuf  tensor.Buf
	dxBuf   tensor.Buf
	colSums []float64
}

// NewLinear builds a Linear layer with Xavier-initialized weights.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		In: in, Out: out,
		Weight: NewParam(name+".weight", in, out),
		Bias:   NewParam(name+".bias", 1, out),
	}
	l.Weight.W.XavierInit(rng, in, out)
	return l
}

// Forward computes x·W + b. The result is owned by the layer and valid
// until the next Forward.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: linear %d→%d got input width %d", l.In, l.Out, x.Cols))
	}
	l.x = x
	// Seed the output with the bias rows, then accumulate x·W in place.
	y := l.outBuf.Get(x.Rows, l.Out)
	for r := 0; r < x.Rows; r++ {
		copy(y.Row(r), l.Bias.W.Data)
	}
	tensor.MatMulAddInto(x, l.Weight.W, y)
	return y
}

// Backward accumulates dW = xᵀ·dout, db = Σrows dout and returns
// dx = dout·Wᵀ, owned by the layer and valid until the next Backward.
func (l *Linear) Backward(dout *tensor.Matrix) *tensor.Matrix {
	tensor.MatMulTAAddInto(l.x, dout, l.Weight.Grad)
	if l.colSums == nil {
		l.colSums = make([]float64, l.Out)
	}
	dout.ColSumsInto(l.colSums)
	for c, v := range l.colSums {
		l.Bias.Grad.Data[c] += v
	}
	dx := l.dxBuf.Get(dout.Rows, l.In)
	tensor.MatMulTBInto(dout, l.Weight.W, dx)
	return dx
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// LeakyReLU applies max(x, alpha·x) elementwise. Alpha 0 gives plain ReLU.
type LeakyReLU struct {
	Alpha float64
	x     *tensor.Matrix

	yBuf  tensor.Buf
	dxBuf tensor.Buf
}

// NewLeakyReLU builds the activation with negative-side slope alpha.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// NewReLU builds a plain ReLU.
func NewReLU() *LeakyReLU { return &LeakyReLU{} }

// actParallelThreshold is the element count above which activations fan
// out across the worker pool (batched node-feature matrices).
const actParallelThreshold = 1 << 15

// Forward applies the activation. The result is owned by the layer and
// valid until the next Forward. The sequential path avoids the closure
// allocation of the pooled path, so single-worker passes allocate
// nothing; elementwise independence keeps both paths bit-identical.
func (a *LeakyReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	a.x = x
	y := a.yBuf.Get(x.Rows, x.Cols)
	if len(x.Data) < actParallelThreshold || tensor.Workers() == 1 {
		leakyRange(a.Alpha, x.Data, y.Data, 0, len(x.Data))
	} else {
		tensor.ParallelFor(len(x.Data), func(lo, hi int) { leakyRange(a.Alpha, x.Data, y.Data, lo, hi) })
	}
	return y
}

func leakyRange(alpha float64, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		if v := x[i]; v > 0 {
			y[i] = v
		} else {
			y[i] = alpha * v
		}
	}
}

// Backward gates the upstream gradient by the activation derivative. The
// result is owned by the layer and valid until the next Backward.
func (a *LeakyReLU) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dx := a.dxBuf.Get(dout.Rows, dout.Cols)
	if len(dout.Data) < actParallelThreshold || tensor.Workers() == 1 {
		leakyGradRange(a.Alpha, a.x.Data, dout.Data, dx.Data, 0, len(dout.Data))
	} else {
		tensor.ParallelFor(len(dout.Data), func(lo, hi int) {
			leakyGradRange(a.Alpha, a.x.Data, dout.Data, dx.Data, lo, hi)
		})
	}
	return dx
}

func leakyGradRange(alpha float64, x, dout, dx []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		if x[i] > 0 {
			dx[i] = dout[i]
		} else {
			dx[i] = alpha * dout[i]
		}
	}
}

// Params returns nil; activations are parameter-free.
func (a *LeakyReLU) Params() []*Param { return nil }

// Dropout zeroes activations with probability P during training,
// rescaling survivors by 1/(1-P) (inverted dropout).
type Dropout struct {
	P        float64
	Training bool
	rng      *tensor.RNG
	mask     []float64
}

// NewDropout builds a dropout layer with drop probability p.
func NewDropout(p float64, rng *tensor.RNG) *Dropout {
	return &Dropout{P: p, rng: rng, Training: true}
}

// Forward applies the dropout mask in training mode and is the identity in
// evaluation mode.
func (d *Dropout) Forward(x *tensor.Matrix) *tensor.Matrix {
	if !d.Training || d.P <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.P
	scale := 1 / keep
	d.mask = make([]float64, len(x.Data))
	y := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = scale
			y.Data[i] = v * scale
		}
	}
	return y
}

// Backward applies the saved mask to the upstream gradient.
func (d *Dropout) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return dout
	}
	dx := tensor.New(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		dx.Data[i] = v * d.mask[i]
	}
	return dx
}

// Params returns nil.
func (d *Dropout) Params() []*Param { return nil }

// Sequential chains layers.
type Sequential struct{ Layers []Layer }

// NewSequential builds a layer pipeline.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs every layer in order.
func (s *Sequential) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs every layer's backward pass in reverse order.
func (s *Sequential) Backward(dout *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params concatenates all layer parameters.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// (batch×classes) against integer labels, returning the loss and
// ∂L/∂logits. Rows with label < 0 are ignored (masked).
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("nn: %d labels for %d rows", len(labels), logits.Rows))
	}
	grad := tensor.New(logits.Rows, logits.Cols)
	loss := 0.0
	n := 0
	for r := 0; r < logits.Rows; r++ {
		if labels[r] < 0 {
			continue
		}
		loss += SoftmaxCrossEntropyAt(logits, r, labels[r], grad)
		n++
	}
	if n == 0 {
		return 0, grad
	}
	inv := 1 / float64(n)
	grad.ScaleInPlace(inv)
	return loss * inv, grad
}

// SoftmaxCrossEntropyAt computes the softmax cross-entropy of row r of
// logits against an integer label, writing the unscaled ∂L/∂row into row
// r of grad (every entry is overwritten) and returning the row loss. It
// is the per-row primitive the vectorized head passes build on.
func SoftmaxCrossEntropyAt(logits *tensor.Matrix, r, label int, grad *tensor.Matrix) float64 {
	if label < 0 || label >= logits.Cols {
		panic(fmt.Sprintf("nn: label %d out of range (%d classes)", label, logits.Cols))
	}
	row := logits.Row(r)
	maxv := row[0]
	for _, v := range row[1:] {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	g := grad.Row(r)
	for c, v := range row {
		e := math.Exp(v - maxv)
		g[c] = e
		sum += e
	}
	inv := 1 / sum
	for c := range g {
		g[c] *= inv
	}
	g[label] -= 1
	return math.Log(sum) - (row[label] - maxv)
}

// SoftCrossEntropy computes cross-entropy of a single-row logits matrix
// against a soft target distribution: loss = -Σ p·log softmax(z), with
// gradient softmax(z) - p. Targets must be non-negative and sum to ~1.
func SoftCrossEntropy(logits *tensor.Matrix, target []float64) (float64, *tensor.Matrix) {
	if logits.Rows != 1 {
		panic(fmt.Sprintf("nn: soft CE wants 1-row logits, got %dx%d", logits.Rows, logits.Cols))
	}
	grad := tensor.New(1, logits.Cols)
	loss := SoftCrossEntropyAt(logits, 0, target, grad)
	return loss, grad
}

// SoftCrossEntropyAt computes the cross-entropy of row r of logits
// against a soft target distribution, writing ∂L/∂row into row r of grad
// (every entry is overwritten) and returning the row loss — the per-row
// primitive of SoftCrossEntropy.
func SoftCrossEntropyAt(logits *tensor.Matrix, r int, target []float64, grad *tensor.Matrix) float64 {
	if len(target) != logits.Cols {
		panic(fmt.Sprintf("nn: soft CE target len %d for %d classes", len(target), logits.Cols))
	}
	row := logits.Row(r)
	maxv := row[0]
	for _, v := range row[1:] {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	g := grad.Row(r)
	for c, v := range row {
		e := math.Exp(v - maxv)
		g[c] = e
		sum += e
	}
	logZ := math.Log(sum) + maxv
	loss := 0.0
	inv := 1 / sum
	for c := range g {
		g[c] *= inv
	}
	for c, p := range target {
		if p > 0 {
			loss += p * (logZ - row[c])
		}
		g[c] -= p
	}
	return loss
}

// Softmax returns row-wise softmax probabilities of logits.
func Softmax(logits *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(logits.Rows, logits.Cols)
	for r := 0; r < logits.Rows; r++ {
		row := logits.Row(r)
		o := out.Row(r)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for c, v := range row {
			e := math.Exp(v - maxv)
			o[c] = e
			sum += e
		}
		inv := 1 / sum
		for c := range o {
			o[c] *= inv
		}
	}
	return out
}

// Argmax returns the index of the largest value in row r of m.
func Argmax(m *tensor.Matrix, r int) int {
	row := m.Row(r)
	best, bv := 0, row[0]
	for c, v := range row[1:] {
		if v > bv {
			best, bv = c+1, v
		}
	}
	return best
}

// TopK returns the indices of the k largest values in row r, best first.
func TopK(m *tensor.Matrix, r, k int) []int {
	row := m.Row(r)
	if k > len(row) {
		k = len(row)
	}
	idx := make([]int, len(row))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is small.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if row[idx[j]] > row[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
