package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Checkpoint is a serializable snapshot of named parameters, used by the
// transfer-learning path (save the GNN trained on Haswell, reload it on
// Skylake and retrain only the dense layers).
type Checkpoint struct {
	Shapes map[string][2]int
	Values map[string][]float64
}

// Snapshot captures the current values of params.
func Snapshot(params []*Param) *Checkpoint {
	ck := &Checkpoint{
		Shapes: make(map[string][2]int, len(params)),
		Values: make(map[string][]float64, len(params)),
	}
	for _, p := range params {
		ck.Shapes[p.Name] = [2]int{p.W.Rows, p.W.Cols}
		vals := make([]float64, len(p.W.Data))
		copy(vals, p.W.Data)
		ck.Values[p.Name] = vals
	}
	return ck
}

// Restore loads checkpointed values into matching parameters (by name and
// shape). It returns the number of parameters restored, the names of
// checkpoint entries that matched no parameter (sorted — a loud signal
// that the checkpoint belongs to a different model), and an error if a
// name matches with a different shape. Callers loading a full model must
// treat a non-empty unmatched list as a failed load; partial restores
// (e.g. encoder-only transfer into a larger model) may tolerate it.
func (ck *Checkpoint) Restore(params []*Param) (restored int, unmatched []string, err error) {
	used := make(map[string]bool, len(params))
	for _, p := range params {
		vals, ok := ck.Values[p.Name]
		if !ok {
			continue
		}
		shape := ck.Shapes[p.Name]
		if shape[0] != p.W.Rows || shape[1] != p.W.Cols {
			return restored, nil, fmt.Errorf("nn: checkpoint %s shape %v vs param %dx%d",
				p.Name, shape, p.W.Rows, p.W.Cols)
		}
		copy(p.W.Data, vals)
		used[p.Name] = true
		restored++
	}
	for name := range ck.Values {
		if !used[name] {
			unmatched = append(unmatched, name)
		}
	}
	sort.Strings(unmatched)
	return restored, unmatched, nil
}

// RestoreStrict is Restore that additionally fails when any checkpoint
// entry matches no parameter — the right call when the checkpoint is
// supposed to describe params exactly (full-model loads).
func (ck *Checkpoint) RestoreStrict(params []*Param) (int, error) {
	n, unmatched, err := ck.Restore(params)
	if err != nil {
		return n, err
	}
	if len(unmatched) > 0 {
		return n, fmt.Errorf("nn: checkpoint entries matched no parameter: %s",
			strings.Join(unmatched, ", "))
	}
	return n, nil
}

// Encode serializes the checkpoint with gob.
func (ck *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, fmt.Errorf("nn: encode checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint deserializes a checkpoint produced by Encode.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	return &ck, nil
}

// Save writes the checkpoint to path.
func (ck *Checkpoint) Save(path string) error {
	data, err := ck.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadCheckpoint reads a checkpoint from path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}
