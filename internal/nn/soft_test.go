package nn

import (
	"math"
	"testing"
	"testing/quick"

	"pnptuner/internal/tensor"
)

func TestSoftCrossEntropyMatchesHardOnOneHot(t *testing.T) {
	logits := tensor.FromSlice(1, 4, []float64{0.3, -1.2, 2.0, 0.1})
	hardLoss, hardGrad := SoftmaxCrossEntropy(logits, []int{2})
	target := []float64{0, 0, 1, 0}
	softLoss, softGrad := SoftCrossEntropy(logits, target)
	if math.Abs(hardLoss-softLoss) > 1e-12 {
		t.Fatalf("one-hot soft loss %g != hard loss %g", softLoss, hardLoss)
	}
	for i := range hardGrad.Data {
		if math.Abs(hardGrad.Data[i]-softGrad.Data[i]) > 1e-12 {
			t.Fatalf("grad[%d]: %g vs %g", i, hardGrad.Data[i], softGrad.Data[i])
		}
	}
}

func TestSoftCrossEntropyGradCheck(t *testing.T) {
	rng := tensor.NewRNG(3)
	logits := tensor.New(1, 5)
	logits.FillUniform(rng, 2)
	target := []float64{0.5, 0.2, 0.0, 0.25, 0.05}
	_, grad := SoftCrossEntropy(logits, target)
	for i := range logits.Data {
		const h = 1e-6
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		lp, _ := SoftCrossEntropy(logits, target)
		logits.Data[i] = orig - h
		lm, _ := SoftCrossEntropy(logits, target)
		logits.Data[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(grad.Data[i]-want) > 1e-5 {
			t.Fatalf("grad[%d] = %g, want %g", i, grad.Data[i], want)
		}
	}
}

func TestSoftCrossEntropyMinimizedAtTarget(t *testing.T) {
	// Loss is minimized when softmax(logits) == target: gradient vanishes.
	target := []float64{0.1, 0.6, 0.3}
	logits := tensor.FromSlice(1, 3, []float64{math.Log(0.1), math.Log(0.6), math.Log(0.3)})
	_, grad := SoftCrossEntropy(logits, target)
	for i, g := range grad.Data {
		if math.Abs(g) > 1e-12 {
			t.Fatalf("grad[%d] = %g at optimum", i, g)
		}
	}
}

func TestSoftCrossEntropyPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	SoftCrossEntropy(tensor.New(2, 3), []float64{1, 0, 0})
}

// Property: soft-CE gradient sums to zero when the target sums to one.
func TestQuickSoftCEGradSumsZero(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(8)
		logits := tensor.New(1, n)
		logits.FillUniform(rng, 3)
		target := make([]float64, n)
		sum := 0.0
		for i := range target {
			target[i] = rng.Float64()
			sum += target[i]
		}
		for i := range target {
			target[i] /= sum
		}
		_, grad := SoftCrossEntropy(logits, target)
		s := 0.0
		for _, g := range grad.Data {
			s += g
		}
		return math.Abs(s) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
