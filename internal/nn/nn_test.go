package nn

import (
	"math"
	"testing"
	"testing/quick"

	"pnptuner/internal/tensor"
)

// numericalGrad estimates dLoss/dTheta by central differences.
func numericalGrad(theta []float64, i int, loss func() float64) float64 {
	const h = 1e-6
	orig := theta[i]
	theta[i] = orig + h
	lp := loss()
	theta[i] = orig - h
	lm := loss()
	theta[i] = orig
	return (lp - lm) / (2 * h)
}

func TestLinearGradCheck(t *testing.T) {
	rng := tensor.NewRNG(1)
	lin := NewLinear("l", 4, 3, rng)
	x := tensor.New(5, 4)
	x.FillUniform(rng, 1)
	labels := []int{0, 2, 1, 0, 2}

	loss := func() float64 {
		y := lin.Forward(x)
		l, _ := SoftmaxCrossEntropy(y, labels)
		return l
	}
	// Analytic gradients.
	ZeroGrads(lin.Params())
	y := lin.Forward(x)
	_, dy := SoftmaxCrossEntropy(y, labels)
	dx := lin.Backward(dy)

	for _, p := range lin.Params() {
		for i := 0; i < len(p.W.Data); i += 3 {
			want := numericalGrad(p.W.Data, i, loss)
			got := p.Grad.Data[i]
			if math.Abs(got-want) > 1e-5 {
				t.Fatalf("%s grad[%d] = %g, want %g", p.Name, i, got, want)
			}
		}
	}
	// Input gradient check.
	for i := 0; i < len(x.Data); i += 4 {
		want := numericalGrad(x.Data, i, loss)
		if math.Abs(dx.Data[i]-want) > 1e-5 {
			t.Fatalf("dx[%d] = %g, want %g", i, dx.Data[i], want)
		}
	}
}

func TestLeakyReLUGradCheck(t *testing.T) {
	rng := tensor.NewRNG(2)
	act := NewLeakyReLU(0.1)
	lin := NewLinear("l", 3, 2, rng)
	x := tensor.New(4, 3)
	x.FillUniform(rng, 1)
	labels := []int{0, 1, 1, 0}

	loss := func() float64 {
		y := lin.Forward(act.Forward(x))
		l, _ := SoftmaxCrossEntropy(y, labels)
		return l
	}
	ZeroGrads(lin.Params())
	y := lin.Forward(act.Forward(x))
	_, dy := SoftmaxCrossEntropy(y, labels)
	dx := act.Backward(lin.Backward(dy))

	for i := range x.Data {
		want := numericalGrad(x.Data, i, loss)
		if math.Abs(dx.Data[i]-want) > 1e-5 {
			t.Fatalf("dx[%d] = %g, want %g", i, dx.Data[i], want)
		}
	}
}

func TestSequentialComposesBackward(t *testing.T) {
	rng := tensor.NewRNG(3)
	model := NewSequential(
		NewLinear("a", 4, 8, rng),
		NewLeakyReLU(0.01),
		NewLinear("b", 8, 3, rng),
	)
	x := tensor.New(6, 4)
	x.FillUniform(rng, 1)
	labels := []int{0, 1, 2, 0, 1, 2}

	loss := func() float64 {
		l, _ := SoftmaxCrossEntropy(model.Forward(x), labels)
		return l
	}
	ZeroGrads(model.Params())
	_, dy := SoftmaxCrossEntropy(model.Forward(x), labels)
	model.Backward(dy)

	if len(model.Params()) != 4 {
		t.Fatalf("params = %d, want 4", len(model.Params()))
	}
	for _, p := range model.Params() {
		for i := 0; i < len(p.W.Data); i += 5 {
			want := numericalGrad(p.W.Data, i, loss)
			if math.Abs(p.Grad.Data[i]-want) > 1e-5 {
				t.Fatalf("%s grad mismatch", p.Name)
			}
		}
	}
}

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	logits := tensor.FromSlice(1, 2, []float64{0, 0})
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("loss = %g, want ln2", loss)
	}
	if math.Abs(grad.At(0, 0)-(-0.5)) > 1e-12 || math.Abs(grad.At(0, 1)-0.5) > 1e-12 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestSoftmaxCrossEntropyMasksNegativeLabels(t *testing.T) {
	logits := tensor.FromSlice(2, 3, []float64{5, 0, 0, 0, 5, 0})
	loss1, grad := SoftmaxCrossEntropy(logits, []int{0, -1})
	for _, g := range grad.Row(1) {
		if g != 0 {
			t.Fatal("masked row contributed gradient")
		}
	}
	loss2, _ := SoftmaxCrossEntropy(tensor.FromSlice(1, 3, []float64{5, 0, 0}), []int{0})
	if math.Abs(loss1-loss2) > 1e-12 {
		t.Fatalf("masked loss %g != unmasked %g", loss1, loss2)
	}
}

// Property: softmax CE gradient rows sum to ~0 for labeled rows.
func TestQuickCEGradientRowsSumToZero(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		rows, cols := 1+rng.Intn(6), 2+rng.Intn(7)
		logits := tensor.New(rows, cols)
		logits.FillUniform(rng, 3)
		labels := make([]int, rows)
		for i := range labels {
			labels[i] = rng.Intn(cols)
		}
		_, grad := SoftmaxCrossEntropy(logits, labels)
		for r := 0; r < rows; r++ {
			s := 0.0
			for _, g := range grad.Row(r) {
				s += g
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax rows are valid distributions.
func TestQuickSoftmaxIsDistribution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		rows, cols := 1+rng.Intn(5), 1+rng.Intn(8)
		logits := tensor.New(rows, cols)
		logits.FillUniform(rng, 10)
		p := Softmax(logits)
		for r := 0; r < rows; r++ {
			s := 0.0
			for _, v := range p.Row(r) {
				if v < 0 || v > 1 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAdamConvergesOnToyProblem(t *testing.T) {
	// Learn to classify x by sign of its first coordinate.
	rng := tensor.NewRNG(4)
	model := NewSequential(
		NewLinear("a", 2, 8, rng),
		NewLeakyReLU(0.01),
		NewLinear("b", 8, 2, rng),
	)
	opt := NewAdam(DefaultAdamWConfig())
	x := tensor.New(32, 2)
	labels := make([]int, 32)
	for i := 0; i < 32; i++ {
		v := 2*rng.Float64() - 1
		x.Set(i, 0, v)
		x.Set(i, 1, rng.Float64())
		if v > 0 {
			labels[i] = 1
		}
	}
	var first, last float64
	for epoch := 0; epoch < 200; epoch++ {
		ZeroGrads(model.Params())
		loss, dy := SoftmaxCrossEntropy(model.Forward(x), labels)
		model.Backward(dy)
		opt.Step(model.Params())
		if epoch == 0 {
			first = loss
		}
		last = loss
	}
	if last > first/2 {
		t.Fatalf("Adam failed to converge: first %g last %g", first, last)
	}
}

func TestAMSGradKeepsMaxSecondMoment(t *testing.T) {
	p := NewParam("w", 1, 1)
	p.W.Data[0] = 1
	opt := NewAdam(AdamConfig{LR: 0.1, Beta1: 0.9, Beta2: 0.9, Eps: 1e-8, AMSGrad: true})
	// Large gradient then tiny gradients: amsgrad should keep the
	// effective step small because vhat remembers the large moment.
	p.Grad.Data[0] = 10
	opt.Step([]*Param{p})
	st := opt.state[p]
	vAfterBig := st.vhat[0]
	for i := 0; i < 5; i++ {
		p.Grad.Data[0] = 1e-4
		opt.Step([]*Param{p})
	}
	if st.vhat[0] < vAfterBig {
		t.Fatalf("vhat decreased: %g < %g", st.vhat[0], vAfterBig)
	}
}

func TestSGDMomentumMovesDownhill(t *testing.T) {
	p := NewParam("w", 1, 1)
	p.W.Data[0] = 5
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 100; i++ {
		p.ZeroGrad()
		p.Grad.Data[0] = 2 * p.W.Data[0] // d/dw of w²
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W.Data[0]) > 0.1 {
		t.Fatalf("SGD did not minimize w²: w = %g", p.W.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", 1, 4)
	copy(p.Grad.Data, []float64{3, 4, 0, 0})
	norm := ClipGradNorm([]*Param{p}, 1.0)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %g, want 5", norm)
	}
	after := math.Hypot(p.Grad.Data[0], p.Grad.Data[1])
	if math.Abs(after-1) > 1e-9 {
		t.Fatalf("post-clip norm = %g, want 1", after)
	}
	// Under the limit: untouched.
	copy(p.Grad.Data, []float64{0.1, 0, 0, 0})
	ClipGradNorm([]*Param{p}, 1.0)
	if p.Grad.Data[0] != 0.1 {
		t.Fatal("clip modified an in-bounds gradient")
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := tensor.NewRNG(8)
	d := NewDropout(0.5, rng)
	x := tensor.New(10, 20)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := d.Forward(x)
	zeros := 0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("kept value = %g, want 2 (inverted dropout)", v)
		}
	}
	if zeros < 50 || zeros > 150 {
		t.Fatalf("dropped %d of 200, want ~100", zeros)
	}
	d.Training = false
	y2 := d.Forward(x)
	for _, v := range y2.Data {
		if v != 1 {
			t.Fatal("eval mode must be identity")
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(5)
	src := NewLinear("shared", 4, 6, rng)
	ck := Snapshot(src.Params())
	data, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewLinear("shared", 4, 6, tensor.NewRNG(99))
	n, unmatched, err := ck2.Restore(dst.Params())
	if err != nil || n != 2 || len(unmatched) != 0 {
		t.Fatalf("restored %d params, unmatched %v, err %v", n, unmatched, err)
	}
	for i := range src.Weight.W.Data {
		if src.Weight.W.Data[i] != dst.Weight.W.Data[i] {
			t.Fatal("restored weights differ")
		}
	}
	// Shape mismatch must error.
	bad := NewLinear("shared", 4, 7, rng)
	if _, _, err := ck2.Restore(bad.Params()); err == nil {
		t.Fatal("Restore accepted shape mismatch")
	}
	// Checkpoint entries matching no parameter are reported, not dropped.
	other := NewLinear("other", 4, 6, rng)
	n, unmatched, err = ck2.Restore(other.Params())
	if err != nil || n != 0 {
		t.Fatalf("unknown name: restored %d, err %v", n, err)
	}
	if len(unmatched) != 2 || unmatched[0] != "shared.bias" || unmatched[1] != "shared.weight" {
		t.Fatalf("unmatched = %v, want sorted [shared.bias shared.weight]", unmatched)
	}
	// RestoreStrict turns unmatched entries into a loud failure.
	if _, err := ck2.RestoreStrict(other.Params()); err == nil {
		t.Fatal("RestoreStrict accepted a checkpoint for a different model")
	}
	if _, err := ck2.RestoreStrict(dst.Params()); err != nil {
		t.Fatalf("RestoreStrict rejected an exact match: %v", err)
	}
}

func TestCheckpointFileIO(t *testing.T) {
	rng := tensor.NewRNG(6)
	lin := NewLinear("f", 3, 3, rng)
	path := t.TempDir() + "/ck.gob"
	if err := Snapshot(lin.Params()).Save(path); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ck.Restore(lin.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path + ".missing"); err == nil {
		t.Fatal("loaded a missing file")
	}
}

func TestArgmaxAndTopK(t *testing.T) {
	m := tensor.FromSlice(2, 4, []float64{1, 9, 3, 7, 0, 0, 5, 1})
	if Argmax(m, 0) != 1 || Argmax(m, 1) != 2 {
		t.Fatal("argmax wrong")
	}
	top := TopK(m, 0, 3)
	want := []int{1, 3, 2}
	for i, w := range want {
		if top[i] != w {
			t.Fatalf("topk = %v, want %v", top, want)
		}
	}
	if got := TopK(m, 0, 99); len(got) != 4 {
		t.Fatalf("topk overflow len = %d", len(got))
	}
}
