package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears nothing; callers zero gradients.
	Step(params []*Param)
}

// AdamConfig configures Adam/AdamW. The defaults mirror the paper's
// Table II: lr 0.001, standard betas, and amsgrad for the power-constraint
// experiments.
type AdamConfig struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64 // decoupled (AdamW-style); 0 disables
	AMSGrad     bool
}

// DefaultAdamConfig returns the Table II hyperparameters for plain Adam.
func DefaultAdamConfig() AdamConfig {
	return AdamConfig{LR: 0.001, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// DefaultAdamWConfig returns the Table II hyperparameters for
// AdamW(amsgrad), used in the power-constrained tuning experiments.
func DefaultAdamWConfig() AdamConfig {
	c := DefaultAdamConfig()
	c.WeightDecay = 0.01
	c.AMSGrad = true
	return c
}

type adamState struct {
	m, v, vhat []float64
}

// Adam implements Adam and AdamW (decoupled weight decay), optionally with
// the AMSGrad max-of-v correction.
type Adam struct {
	Cfg   AdamConfig
	t     int
	state map[*Param]*adamState
}

// NewAdam builds an optimizer with cfg.
func NewAdam(cfg AdamConfig) *Adam {
	return &Adam{Cfg: cfg, state: make(map[*Param]*adamState)}
}

// Step applies one Adam update to every parameter.
func (a *Adam) Step(params []*Param) {
	a.t++
	c := a.Cfg
	bc1 := 1 - math.Pow(c.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(c.Beta2, float64(a.t))
	for _, p := range params {
		st, ok := a.state[p]
		if !ok {
			st = &adamState{
				m: make([]float64, len(p.W.Data)),
				v: make([]float64, len(p.W.Data)),
			}
			if c.AMSGrad {
				st.vhat = make([]float64, len(p.W.Data))
			}
			a.state[p] = st
		}
		for i, g := range p.Grad.Data {
			st.m[i] = c.Beta1*st.m[i] + (1-c.Beta1)*g
			st.v[i] = c.Beta2*st.v[i] + (1-c.Beta2)*g*g
			vEff := st.v[i]
			if c.AMSGrad {
				if st.v[i] > st.vhat[i] {
					st.vhat[i] = st.v[i]
				}
				vEff = st.vhat[i]
			}
			mhat := st.m[i] / bc1
			vhat := vEff / bc2
			upd := mhat / (math.Sqrt(vhat) + c.Eps)
			if c.WeightDecay > 0 {
				upd += c.WeightDecay * p.W.Data[i]
			}
			p.W.Data[i] -= c.LR * upd
		}
	}
}

// SGD is a plain (optionally momentum) gradient-descent optimizer, used by
// the lightweight baseline models.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param][]float64
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param][]float64)}
}

// Step applies one SGD update.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := s.vel[p]
		if !ok {
			v = make([]float64, len(p.W.Data))
			s.vel[p] = v
		}
		for i, g := range p.Grad.Data {
			v[i] = s.Momentum*v[i] - s.LR*g
			p.W.Data[i] += v[i]
		}
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}

// ZeroGrads clears every parameter's gradient.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}
