package nn

import (
	"fmt"

	"pnptuner/internal/tensor"
)

// This file is the float32 inference mirror of the forward-only layers:
// quantized serving converts weights once (Quantize*) and then runs the
// whole predict path in float32. There is no backward pass — training
// stays float64; these types exist purely for the serving hot path.

// Linear32 is the inference-only float32 mirror of Linear.
type Linear32 struct {
	In, Out int
	W       *tensor.Mat32 // In×Out
	B       []float32     // Out

	outBuf tensor.Buf32
}

// QuantizeLinear converts a trained Linear into its float32 mirror.
func QuantizeLinear(l *Linear) *Linear32 {
	return &Linear32{
		In: l.In, Out: l.Out,
		W: tensor.Quantize32(l.Weight.W),
		B: tensor.Quantize32Vec(l.Bias.W.Data),
	}
}

// Forward computes x·W + b. The result is owned by the layer and valid
// until the next Forward.
func (l *Linear32) Forward(x *tensor.Mat32) *tensor.Mat32 {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: linear32 %d→%d got input width %d", l.In, l.Out, x.Cols))
	}
	y := l.outBuf.Get(x.Rows, l.Out)
	for r := 0; r < x.Rows; r++ {
		copy(y.Row(r), l.B)
	}
	tensor.MatMul32AddInto(x, l.W, y)
	return y
}

// Act32 is the inference-only float32 mirror of LeakyReLU.
type Act32 struct {
	Alpha float32
	yBuf  tensor.Buf32
}

// QuantizeAct converts a LeakyReLU into its float32 mirror.
func QuantizeAct(a *LeakyReLU) *Act32 { return &Act32{Alpha: float32(a.Alpha)} }

// Forward applies the activation. The result is owned by the layer and
// valid until the next Forward.
func (a *Act32) Forward(x *tensor.Mat32) *tensor.Mat32 {
	y := a.yBuf.Get(x.Rows, x.Cols)
	tensor.LeakyReLU32Into(a.Alpha, x, y)
	return y
}

// Layer32 is a forward-only float32 layer.
type Layer32 interface {
	Forward(x *tensor.Mat32) *tensor.Mat32
}

// Sequential32 chains float32 layers — the quantized dense head.
type Sequential32 struct{ Layers []Layer32 }

// QuantizeSequential converts a trained Sequential (Linear and
// LeakyReLU/ReLU layers; Dropout quantizes to the identity it is in
// evaluation mode) into its float32 mirror.
func QuantizeSequential(s *Sequential) (*Sequential32, error) {
	out := &Sequential32{}
	for _, l := range s.Layers {
		switch t := l.(type) {
		case *Linear:
			out.Layers = append(out.Layers, QuantizeLinear(t))
		case *LeakyReLU:
			out.Layers = append(out.Layers, QuantizeAct(t))
		case *Dropout:
			// Inference-only path: dropout is the identity.
		default:
			return nil, fmt.Errorf("nn: cannot quantize layer %T", l)
		}
	}
	return out, nil
}

// Forward runs every layer in order.
func (s *Sequential32) Forward(x *tensor.Mat32) *tensor.Mat32 {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// SegmentPool32 is the inference-only float32 mirror of SegmentPool.
type SegmentPool32 struct {
	outBuf tensor.Buf32
}

// Forward mean-pools each row segment of x, returning a
// (len(offsets)-1)×Cols matrix owned by the pool and valid until the
// next Forward. Same offsets contract as SegmentPool.Forward.
func (p *SegmentPool32) Forward(x *tensor.Mat32, offsets []int) *tensor.Mat32 {
	if len(offsets) < 1 || offsets[0] != 0 || offsets[len(offsets)-1] != x.Rows {
		panic(fmt.Sprintf("nn: segment pool32 offsets %v over %d rows", offsets, x.Rows))
	}
	out := p.outBuf.GetZeroed(len(offsets)-1, x.Cols)
	for g := 0; g+1 < len(offsets); g++ {
		lo, hi := offsets[g], offsets[g+1]
		if lo == hi {
			continue
		}
		orow := out.Row(g)
		for r := lo; r < hi; r++ {
			for c, v := range x.Row(r) {
				orow[c] += v
			}
		}
		inv := 1 / float32(hi-lo)
		for c := range orow {
			orow[c] *= inv
		}
	}
	return out
}

// Argmax32 returns the index of the largest value in row r of m, first
// maximum winning ties — the same tie-break as the float64 Argmax, so
// equal logits pick the same class on both paths.
func Argmax32(m *tensor.Mat32, r int) int {
	row := m.Row(r)
	best, bv := 0, row[0]
	for c, v := range row[1:] {
		if v > bv {
			best, bv = c+1, v
		}
	}
	return best
}

// TopK32 returns the indices of the k largest values in row r, best
// first, with the float64 TopK's partial-selection-sort tie semantics.
func TopK32(m *tensor.Mat32, r, k int) []int {
	row := m.Row(r)
	if k > len(row) {
		k = len(row)
	}
	idx := make([]int, len(row))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if row[idx[j]] > row[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
