package nn

import (
	"fmt"

	"pnptuner/internal/tensor"
)

// SegmentPool is the batch-aware mean-pool readout: row segment g of the
// input — rows [offsets[g], offsets[g+1]), one graph of a block-diagonal
// batch — pools to output row g. It generalizes the single-graph MeanPool
// (offsets {0, n} reproduce it exactly) so one batched forward pass yields
// every graph's pooled vector at once.
type SegmentPool struct {
	offsets []int
	cols    int

	outBuf tensor.Buf
	dxBuf  tensor.Buf
}

// Forward mean-pools each row segment of x, returning a
// (len(offsets)-1)×Cols matrix. offsets must be non-decreasing, start at
// 0, and end at x.Rows. The result is owned by the pool and valid until
// the next Forward.
func (p *SegmentPool) Forward(x *tensor.Matrix, offsets []int) *tensor.Matrix {
	if len(offsets) < 1 || offsets[0] != 0 || offsets[len(offsets)-1] != x.Rows {
		panic(fmt.Sprintf("nn: segment pool offsets %v over %d rows", offsets, x.Rows))
	}
	p.offsets = offsets
	p.cols = x.Cols
	out := p.outBuf.GetZeroed(len(offsets)-1, x.Cols)
	for g := 0; g+1 < len(offsets); g++ {
		lo, hi := offsets[g], offsets[g+1]
		if lo == hi {
			continue
		}
		orow := out.Row(g)
		for r := lo; r < hi; r++ {
			for c, v := range x.Row(r) {
				orow[c] += v
			}
		}
		inv := 1 / float64(hi-lo)
		for c := range orow {
			orow[c] *= inv
		}
	}
	return out
}

// Backward broadcasts each pooled-row gradient back over its segment,
// scaled by 1/segment size — the batched analogue of MeanPool.Backward.
// The result is owned by the pool and valid until the next Backward.
func (p *SegmentPool) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if dout.Rows != len(p.offsets)-1 || dout.Cols != p.cols {
		panic(fmt.Sprintf("nn: segment pool backward %dx%d, want %dx%d",
			dout.Rows, dout.Cols, len(p.offsets)-1, p.cols))
	}
	dx := p.dxBuf.GetZeroed(p.offsets[len(p.offsets)-1], p.cols)
	for g := 0; g+1 < len(p.offsets); g++ {
		lo, hi := p.offsets[g], p.offsets[g+1]
		if lo == hi {
			continue
		}
		inv := 1 / float64(hi-lo)
		drow := dout.Row(g)
		for r := lo; r < hi; r++ {
			row := dx.Row(r)
			for c, v := range drow {
				row[c] = v * inv
			}
		}
	}
	return dx
}
