package nn

import (
	"math"
	"testing"

	"pnptuner/internal/tensor"
)

// TestSegmentPoolMatchesMeanPoolPerSegment: pooling a batch segment-wise
// must equal mean-pooling each segment's rows alone.
func TestSegmentPoolMatchesMeanPoolPerSegment(t *testing.T) {
	rng := tensor.NewRNG(3)
	x := tensor.New(10, 5)
	x.FillUniform(rng, 1)
	offsets := []int{0, 3, 3, 7, 10} // includes an empty segment

	var p SegmentPool
	out := p.Forward(x, offsets)
	if out.Rows != 4 || out.Cols != 5 {
		t.Fatalf("pooled shape %dx%d", out.Rows, out.Cols)
	}
	for g := 0; g+1 < len(offsets); g++ {
		lo, hi := offsets[g], offsets[g+1]
		for c := 0; c < x.Cols; c++ {
			want := 0.0
			for r := lo; r < hi; r++ {
				want += x.At(r, c)
			}
			if hi > lo {
				want /= float64(hi - lo)
			}
			if d := math.Abs(out.At(g, c) - want); d > 1e-12 {
				t.Fatalf("segment %d col %d: %g want %g", g, c, out.At(g, c), want)
			}
		}
	}
}

func TestSegmentPoolBackwardBroadcasts(t *testing.T) {
	rng := tensor.NewRNG(4)
	x := tensor.New(6, 3)
	x.FillUniform(rng, 1)
	offsets := []int{0, 2, 6}

	var p SegmentPool
	p.Forward(x, offsets)
	dout := tensor.New(2, 3)
	dout.FillUniform(rng, 1)
	dx := p.Backward(dout)
	if dx.Rows != 6 || dx.Cols != 3 {
		t.Fatalf("dx shape %dx%d", dx.Rows, dx.Cols)
	}
	for g := 0; g+1 < len(offsets); g++ {
		lo, hi := offsets[g], offsets[g+1]
		inv := 1 / float64(hi-lo)
		for r := lo; r < hi; r++ {
			for c := 0; c < 3; c++ {
				if want := dout.At(g, c) * inv; math.Abs(dx.At(r, c)-want) > 1e-12 {
					t.Fatalf("row %d col %d: %g want %g", r, c, dx.At(r, c), want)
				}
			}
		}
	}
}

func TestSegmentPoolPanicsOnBadOffsets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for offsets not covering the matrix")
		}
	}()
	var p SegmentPool
	p.Forward(tensor.New(5, 2), []int{0, 3})
}
