// Package vocab assigns stable integer tokens to program-graph node texts.
// The vocabulary is closed and deterministic: identical sources produce
// identical token streams on every machine, which is what makes the
// paper's Haswell→Skylake transfer-learning trick possible (the GNN
// weights keyed on these tokens are portable across systems).
package vocab

import (
	"sort"
	"sync"

	"pnptuner/internal/programl"
)

// UnknownToken is the id reserved for texts outside the vocabulary.
const UnknownToken = 0

// Vocabulary maps node texts to dense token ids. The zero id is the
// unknown token.
type Vocabulary struct {
	mu    sync.Mutex
	ids   map[string]int
	texts []string
	// frozen vocabularies reject new texts (they map to UnknownToken).
	frozen bool
}

// New creates a vocabulary pre-seeded with the closed token set produced
// by the frontend/programl pipeline, in deterministic order.
func New() *Vocabulary {
	v := &Vocabulary{ids: map[string]int{}, texts: []string{"<unk>"}}
	seed := baseTokens()
	sort.Strings(seed)
	for _, t := range seed {
		v.intern(t)
	}
	return v
}

func (v *Vocabulary) intern(text string) int {
	if id, ok := v.ids[text]; ok {
		return id
	}
	if v.frozen {
		return UnknownToken
	}
	id := len(v.texts)
	v.ids[text] = id
	v.texts = append(v.texts, text)
	return id
}

// Freeze closes the vocabulary; subsequent unseen texts map to the
// unknown token. Models freeze their vocabulary at train time.
func (v *Vocabulary) Freeze() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.frozen = true
}

// Size returns the number of tokens including the unknown token.
func (v *Vocabulary) Size() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.texts)
}

// Token returns the id for text, interning it if the vocabulary is open.
func (v *Vocabulary) Token(text string) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.intern(text)
}

// Text returns the text of token id, or "<unk>".
func (v *Vocabulary) Text(id int) string {
	v.mu.Lock()
	defer v.mu.Unlock()
	if id < 0 || id >= len(v.texts) {
		return v.texts[UnknownToken]
	}
	return v.texts[id]
}

// Annotate fills g.Nodes[i].Token for every node.
func (v *Vocabulary) Annotate(g *programl.Graph) {
	for i := range g.Nodes {
		g.Nodes[i].Token = v.Token(g.Nodes[i].Text)
	}
}

// baseTokens enumerates every node text the pipeline can produce:
// instruction texts for each opcode/type combination in use, call targets
// for the intrinsic table, and the variable/constant buckets.
func baseTokens() []string {
	toks := []string{
		"alloca", "getelementptr", "br", "br i1", "ret void", "ret double", "ret i64",
		"load double", "load i64", "store double", "store i64",
		"add i64", "sub i64", "mul i64", "sdiv i64", "srem i64",
		"fadd double", "fsub double", "fmul double", "fdiv double", "fneg double",
		"sext i64", "sitofp double", "fptosi i64",
		"select i1", "select i64", "select double",
		"phi i64", "phi double",
	}
	for _, pred := range []string{"slt", "sle", "sgt", "sge", "eq", "ne"} {
		toks = append(toks, "icmp "+pred+" i64", "icmp "+pred+" i1")
	}
	for _, pred := range []string{"olt", "ole", "ogt", "oge", "oeq", "one"} {
		toks = append(toks, "fcmp "+pred+" double")
	}
	callees := []string{
		"__omp_fork_call", "sqrt", "fabs", "exp", "log", "pow", "sin", "cos",
		"fmax", "fmin", "xs_lookup_macro", "xs_lookup_micro", "rs_eval_poles",
		"rs_eval_window", "mc_segment_walk", "mc_collision", "amr_refine_check",
		"amr_face_exchange", "rand01",
	}
	for _, c := range callees {
		toks = append(toks, "call @"+c, "declare @"+c)
	}
	toks = append(toks,
		"param i64", "param double",
		"global double", "global i64",
		"global array1d double", "global array2d double", "global array3d double",
		"global array1d i64", "global array2d i64", "global array3d i64",
	)
	for _, ty := range []string{"i64", "double", "i1"} {
		for _, b := range []string{"zero", "one", "negone", "small", "large", "float", "true", "false"} {
			toks = append(toks, "const "+ty+" "+b)
		}
	}
	return toks
}
