package vocab

import (
	"testing"

	"pnptuner/internal/frontend"
	"pnptuner/internal/programl"
)

func TestDeterministicTokenIDs(t *testing.T) {
	a, b := New(), New()
	if a.Size() != b.Size() {
		t.Fatal("vocab sizes differ")
	}
	for i := 0; i < a.Size(); i++ {
		if a.Text(i) != b.Text(i) {
			t.Fatalf("token %d differs: %q vs %q", i, a.Text(i), b.Text(i))
		}
	}
}

func TestUnknownTokenIsZero(t *testing.T) {
	v := New()
	if v.Text(UnknownToken) != "<unk>" {
		t.Fatalf("token 0 = %q", v.Text(UnknownToken))
	}
	if v.Text(-5) != "<unk>" || v.Text(1<<20) != "<unk>" {
		t.Fatal("out-of-range ids must map to <unk>")
	}
}

func TestFreezeRejectsNewTexts(t *testing.T) {
	v := New()
	id := v.Token("something brand new")
	if id == UnknownToken {
		t.Fatal("open vocab should intern new text")
	}
	v.Freeze()
	if got := v.Token("another new thing"); got != UnknownToken {
		t.Fatalf("frozen vocab interned new text as %d", got)
	}
	// Existing text still resolves after freezing.
	if got := v.Token("something brand new"); got != id {
		t.Fatalf("frozen vocab lost existing text: %d != %d", got, id)
	}
}

func TestPipelineTextsAreCovered(t *testing.T) {
	// Every node text produced by compiling a kernel that exercises most
	// syntax must already be in the base vocabulary (no <unk> tokens).
	src := `
const int N = 64;
double A[N][N];
double v[N];
double s;
void f() {
  #pragma omp parallel for schedule(guided) reduction(+:s)
  for (i = 0; i < N; i++) {
    double acc = 0.0;
    for (j = 0; j < i; j++) {
      acc += A[i][j] * v[j] / 3.0;
    }
    if (i % 2 == 0) {
      v[i] = sqrt(fabs(acc)) + pow(acc, 2.0);
    } else {
      v[i] = acc > 1.0 ? exp(acc) : log(1.0 + acc * acc);
    }
    s += v[i];
  }
}
`
	prog, low, err := frontend.Compile("cov", src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := programl.FromFunction(prog.Regions[0].ID, low.RegionFunc[prog.Regions[0].ID])
	if err != nil {
		t.Fatal(err)
	}
	v := New()
	v.Freeze()
	v.Annotate(g)
	for _, n := range g.Nodes {
		if n.Token == UnknownToken {
			t.Errorf("node text %q not in base vocabulary", n.Text)
		}
	}
}

func TestAnnotateFillsTokens(t *testing.T) {
	v := New()
	g := &programl.Graph{Nodes: []programl.Node{
		{Kind: programl.KindInstruction, Text: "fadd double"},
		{Kind: programl.KindConstant, Text: "const double zero"},
	}}
	v.Annotate(g)
	if g.Nodes[0].Token == UnknownToken || g.Nodes[1].Token == UnknownToken {
		t.Fatal("known texts mapped to <unk>")
	}
	if g.Nodes[0].Token == g.Nodes[1].Token {
		t.Fatal("distinct texts share a token")
	}
}
