package autotune_test

import (
	"testing"

	"pnptuner/internal/autotune"
	"pnptuner/internal/bliss"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/opentuner"
)

// parityCase is one pre-refactor tuning outcome, captured from the
// monolithic bliss.Tuner / opentuner.Tuner implementations at commit
// d4c9f73 (seeds include each region's own, as the figures use). capIdx
// -1 marks a joint-space EDP tuning task.
type parityCase struct {
	machine   string
	regionIdx int
	seed      uint64
	capIdx    int
	bliss     int
	opentuner int
}

var parityCases = []parityCase{
	{"skylake", 0, 1, 0, 90, 111},
	{"skylake", 0, 1, 1, 107, 109},
	{"skylake", 0, 1, 2, 110, 105},
	{"skylake", 0, 1, 3, 107, 107},
	{"skylake", 0, 1, -1, 491, 363},
	{"skylake", 0, 42, 0, 80, 106},
	{"skylake", 0, 42, 1, 109, 105},
	{"skylake", 0, 42, 2, 104, 88},
	{"skylake", 0, 42, 3, 104, 102},
	{"skylake", 0, 42, -1, 492, 343},
	{"skylake", 0, 9983386848092761977, 0, 88, 82},
	{"skylake", 0, 9983386848092761977, 1, 88, 48},
	{"skylake", 0, 9983386848092761977, 2, 111, 81},
	{"skylake", 0, 9983386848092761977, 3, 106, 104},
	{"skylake", 0, 9983386848092761977, -1, 491, 338},
	{"skylake", 5, 1, 0, 69, 58},
	{"skylake", 5, 1, 1, 48, 44},
	{"skylake", 5, 1, 2, 69, 42},
	{"skylake", 5, 1, 3, 69, 66},
	{"skylake", 5, 1, -1, 450, 171},
	{"skylake", 5, 42, 0, 64, 68},
	{"skylake", 5, 42, 1, 67, 84},
	{"skylake", 5, 42, 2, 69, 86},
	{"skylake", 5, 42, 3, 69, 89},
	{"skylake", 5, 42, -1, 450, 170},
	{"skylake", 5, 6235986073284285404, 0, 65, 64},
	{"skylake", 5, 6235986073284285404, 1, 66, 84},
	{"skylake", 5, 6235986073284285404, 2, 89, 65},
	{"skylake", 5, 6235986073284285404, 3, 69, 67},
	{"skylake", 5, 6235986073284285404, -1, 196, 192},
	{"skylake", 12, 1, 0, 90, 88},
	{"skylake", 12, 1, 1, 107, 109},
	{"skylake", 12, 1, 2, 110, 101},
	{"skylake", 12, 1, 3, 107, 88},
	{"skylake", 12, 1, -1, 468, 214},
	{"skylake", 12, 42, 0, 80, 88},
	{"skylake", 12, 42, 1, 109, 85},
	{"skylake", 12, 42, 2, 108, 88},
	{"skylake", 12, 42, 3, 108, 109},
	{"skylake", 12, 42, -1, 485, 465},
	{"skylake", 12, 858834293842216780, 0, 62, 86},
	{"skylake", 12, 858834293842216780, 1, 111, 88},
	{"skylake", 12, 858834293842216780, 2, 78, 69},
	{"skylake", 12, 858834293842216780, 3, 69, 82},
	{"skylake", 12, 858834293842216780, -1, 481, 66},
	{"skylake", 33, 1, 0, 47, 44},
	{"skylake", 33, 1, 1, 48, 44},
	{"skylake", 33, 1, 2, 69, 45},
	{"skylake", 33, 1, 3, 48, 43},
	{"skylake", 33, 1, -1, 175, 171},
	{"skylake", 33, 42, 0, 42, 40},
	{"skylake", 33, 42, 1, 44, 66},
	{"skylake", 33, 42, 2, 42, 45},
	{"skylake", 33, 42, 3, 42, 68},
	{"skylake", 33, 42, -1, 194, 170},
	{"skylake", 33, 18104592414702090148, 0, 48, 62},
	{"skylake", 33, 18104592414702090148, 1, 48, 37},
	{"skylake", 33, 18104592414702090148, 2, 64, 42},
	{"skylake", 33, 18104592414702090148, 3, 69, 44},
	{"skylake", 33, 18104592414702090148, -1, 48, 317},
	{"skylake", 60, 1, 0, 98, 105},
	{"skylake", 60, 1, 1, 105, 107},
	{"skylake", 60, 1, 2, 126, 113},
	{"skylake", 60, 1, 3, 126, 93},
	{"skylake", 60, 1, -1, 507, 487},
	{"skylake", 60, 42, 0, 78, 84},
	{"skylake", 60, 42, 1, 113, 92},
	{"skylake", 60, 42, 2, 113, 98},
	{"skylake", 60, 42, 3, 120, 87},
	{"skylake", 60, 42, -1, 502, 51},
	{"skylake", 60, 18096596585462880131, 0, 98, 87},
	{"skylake", 60, 18096596585462880131, 1, 99, 87},
	{"skylake", 60, 18096596585462880131, 2, 119, 87},
	{"skylake", 60, 18096596585462880131, 3, 105, 80},
	{"skylake", 60, 18096596585462880131, -1, 501, 348},
	{"haswell", 0, 1, 0, 98, 111},
	{"haswell", 0, 1, 1, 104, 109},
	{"haswell", 0, 1, 2, 121, 105},
	{"haswell", 0, 1, 3, 107, 107},
	{"haswell", 0, 1, -1, 504, 483},
	{"haswell", 0, 42, 0, 99, 106},
	{"haswell", 0, 42, 1, 109, 98},
	{"haswell", 0, 42, 2, 104, 88},
	{"haswell", 0, 42, 3, 104, 123},
	{"haswell", 0, 42, -1, 504, 490},
	{"haswell", 0, 9983386848092761977, 0, 107, 108},
	{"haswell", 0, 9983386848092761977, 1, 120, 125},
	{"haswell", 0, 9983386848092761977, 2, 106, 81},
	{"haswell", 0, 9983386848092761977, 3, 110, 100},
	{"haswell", 0, 9983386848092761977, -1, 486, 338},
	{"haswell", 5, 1, 0, 69, 88},
	{"haswell", 5, 1, 1, 107, 109},
	{"haswell", 5, 1, 2, 85, 87},
	{"haswell", 5, 1, 3, 126, 88},
	{"haswell", 5, 1, -1, 447, 212},
	{"haswell", 5, 42, 0, 67, 88},
	{"haswell", 5, 42, 1, 89, 84},
	{"haswell", 5, 42, 2, 90, 88},
	{"haswell", 5, 42, 3, 108, 90},
	{"haswell", 5, 42, -1, 471, 465},
	{"haswell", 5, 6235986073284285404, 0, 88, 65},
	{"haswell", 5, 6235986073284285404, 1, 90, 84},
	{"haswell", 5, 6235986073284285404, 2, 89, 87},
	{"haswell", 5, 6235986073284285404, 3, 89, 108},
	{"haswell", 5, 6235986073284285404, -1, 196, 342},
	{"haswell", 12, 1, 0, 98, 111},
	{"haswell", 12, 1, 1, 107, 109},
	{"haswell", 12, 1, 2, 104, 105},
	{"haswell", 12, 1, 3, 107, 107},
	{"haswell", 12, 1, -1, 361, 483},
	{"haswell", 12, 42, 0, 80, 106},
	{"haswell", 12, 42, 1, 109, 98},
	{"haswell", 12, 42, 2, 104, 88},
	{"haswell", 12, 42, 3, 122, 102},
	{"haswell", 12, 42, -1, 504, 490},
	{"haswell", 12, 858834293842216780, 0, 102, 86},
	{"haswell", 12, 858834293842216780, 1, 86, 87},
	{"haswell", 12, 858834293842216780, 2, 100, 79},
	{"haswell", 12, 858834293842216780, 3, 121, 89},
	{"haswell", 12, 858834293842216780, -1, 505, 232},
	{"haswell", 33, 1, 0, 47, 58},
	{"haswell", 33, 1, 1, 65, 44},
	{"haswell", 33, 1, 2, 69, 65},
	{"haswell", 33, 1, 3, 69, 66},
	{"haswell", 33, 1, -1, 175, 319},
	{"haswell", 33, 42, 0, 61, 47},
	{"haswell", 33, 42, 1, 67, 84},
	{"haswell", 33, 42, 2, 67, 88},
	{"haswell", 33, 42, 3, 66, 68},
	{"haswell", 33, 42, -1, 194, 170},
	{"haswell", 33, 18104592414702090148, 0, 68, 44},
	{"haswell", 33, 18104592414702090148, 1, 69, 89},
	{"haswell", 33, 18104592414702090148, 2, 105, 87},
	{"haswell", 33, 18104592414702090148, 3, 87, 69},
	{"haswell", 33, 18104592414702090148, -1, 196, 317},
	{"haswell", 60, 1, 0, 126, 105},
	{"haswell", 60, 1, 1, 119, 107},
	{"haswell", 60, 1, 2, 119, 114},
	{"haswell", 60, 1, 3, 113, 93},
	{"haswell", 60, 1, -1, 352, 234},
	{"haswell", 60, 42, 0, 105, 106},
	{"haswell", 60, 42, 1, 120, 100},
	{"haswell", 60, 42, 2, 92, 92},
	{"haswell", 60, 42, 3, 120, 98},
	{"haswell", 60, 42, -1, 500, 51},
	{"haswell", 60, 18096596585462880131, 0, 98, 115},
	{"haswell", 60, 18096596585462880131, 1, 121, 112},
	{"haswell", 60, 18096596585462880131, 2, 119, 87},
	{"haswell", 60, 18096596585462880131, 3, 105, 119},
	{"haswell", 60, 18096596585462880131, -1, 501, 369},
}

// TestBaselineParity pins the refactored engine-driven BLISS and
// OpenTuner strategies to the exact picks of the pre-refactor monolithic
// tuners: same seed, same budget, same noise stream — bit-identical
// final choice.
func TestBaselineParity(t *testing.T) {
	data := map[string]*dataset.Dataset{}
	for _, m := range hw.Machines() {
		data[m.Name] = dataset.MustBuild(m)
	}
	for _, pc := range parityCases {
		d := data[pc.machine]
		rd := d.Regions[pc.regionIdx]
		var obj autotune.Objective
		if pc.capIdx >= 0 {
			obj = autotune.TimeUnderCap{Cap: pc.capIdx}
		} else {
			obj = autotune.EDP{}
		}
		task := autotune.Task{
			Problem:  autotune.Problem{Obj: obj, Space: d.Space, Seed: pc.seed},
			RegionID: rd.Region.ID,
		}
		if got := autotune.RunEntry(bliss.Entry("BLISS"), rd, task).Best; got != pc.bliss {
			t.Errorf("%s region %d seed %d cap %d: BLISS pick %d, pre-refactor %d",
				pc.machine, pc.regionIdx, pc.seed, pc.capIdx, got, pc.bliss)
		}
		if got := autotune.RunEntry(opentuner.Entry("OpenTuner"), rd, task).Best; got != pc.opentuner {
			t.Errorf("%s region %d seed %d cap %d: OpenTuner pick %d, pre-refactor %d",
				pc.machine, pc.regionIdx, pc.seed, pc.capIdx, got, pc.opentuner)
		}
	}
}
