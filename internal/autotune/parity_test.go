package autotune_test

import (
	"testing"

	"pnptuner/internal/autotune"
	"pnptuner/internal/bliss"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/opentuner"
)

// parityCase is one pinned tuning outcome (seeds include each region's
// own, as the figures use). capIdx -1 marks a joint-space EDP tuning
// task. The table was originally captured from the monolithic
// bliss.Tuner / opentuner.Tuner implementations at commit d4c9f73 and
// deliberately regenerated (scripts/paritygen) when Noise re-keyed its
// RNG state from seed^(key·mix) to seed^mix^(key·noiseKeyMul) — the old
// seeding collapsed every mix stream to one draw at NoiseKey 0, so every
// noisy trace legitimately changed.
type parityCase struct {
	machine   string
	regionIdx int
	seed      uint64
	capIdx    int
	bliss     int
	opentuner int
}

var parityCases = []parityCase{
	{"skylake", 0, 1, 0, 110, 80},
	{"skylake", 0, 1, 1, 107, 107},
	{"skylake", 0, 1, 2, 110, 87},
	{"skylake", 0, 1, 3, 110, 106},
	{"skylake", 0, 1, -1, 361, 363},
	{"skylake", 0, 42, 0, 109, 84},
	{"skylake", 0, 42, 1, 109, 84},
	{"skylake", 0, 42, 2, 102, 103},
	{"skylake", 0, 42, 3, 109, 109},
	{"skylake", 0, 42, -1, 492, 487},
	{"skylake", 0, 9983386848092761977, 0, 84, 81},
	{"skylake", 0, 9983386848092761977, 1, 109, 111},
	{"skylake", 0, 9983386848092761977, 2, 88, 100},
	{"skylake", 0, 9983386848092761977, 3, 105, 87},
	{"skylake", 0, 9983386848092761977, -1, 486, 484},
	{"skylake", 5, 1, 0, 57, 65},
	{"skylake", 5, 1, 1, 46, 67},
	{"skylake", 5, 1, 2, 69, 66},
	{"skylake", 5, 1, 3, 65, 44},
	{"skylake", 5, 1, -1, 171, 299},
	{"skylake", 5, 42, 0, 62, 58},
	{"skylake", 5, 42, 1, 67, 47},
	{"skylake", 5, 42, 2, 90, 88},
	{"skylake", 5, 42, 3, 67, 47},
	{"skylake", 5, 42, -1, 194, 172},
	{"skylake", 5, 6235986073284285404, 0, 69, 65},
	{"skylake", 5, 6235986073284285404, 1, 66, 45},
	{"skylake", 5, 6235986073284285404, 2, 90, 66},
	{"skylake", 5, 6235986073284285404, 3, 66, 84},
	{"skylake", 5, 6235986073284285404, -1, 196, 65},
	{"skylake", 12, 1, 0, 57, 42},
	{"skylake", 12, 1, 1, 107, 107},
	{"skylake", 12, 1, 2, 110, 87},
	{"skylake", 12, 1, 3, 110, 106},
	{"skylake", 12, 1, -1, 361, 191},
	{"skylake", 12, 42, 0, 81, 88},
	{"skylake", 12, 42, 1, 107, 84},
	{"skylake", 12, 42, 2, 79, 89},
	{"skylake", 12, 42, 3, 109, 87},
	{"skylake", 12, 42, -1, 492, 487},
	{"skylake", 12, 858834293842216780, 0, 83, 54},
	{"skylake", 12, 858834293842216780, 1, 104, 86},
	{"skylake", 12, 858834293842216780, 2, 110, 105},
	{"skylake", 12, 858834293842216780, 3, 110, 66},
	{"skylake", 12, 858834293842216780, -1, 485, 468},
	{"skylake", 33, 1, 0, 48, 46},
	{"skylake", 33, 1, 1, 48, 42},
	{"skylake", 33, 1, 2, 69, 57},
	{"skylake", 33, 1, 3, 44, 44},
	{"skylake", 33, 1, -1, 175, 299},
	{"skylake", 33, 42, 0, 42, 48},
	{"skylake", 33, 42, 1, 42, 25},
	{"skylake", 33, 42, 2, 67, 47},
	{"skylake", 33, 42, 3, 67, 47},
	{"skylake", 33, 42, -1, 194, 172},
	{"skylake", 33, 18104592414702090148, 0, 48, 38},
	{"skylake", 33, 18104592414702090148, 1, 46, 60},
	{"skylake", 33, 18104592414702090148, 2, 48, 68},
	{"skylake", 33, 18104592414702090148, 3, 68, 42},
	{"skylake", 33, 18104592414702090148, -1, 48, 444},
	{"skylake", 60, 1, 0, 77, 65},
	{"skylake", 60, 1, 1, 106, 107},
	{"skylake", 60, 1, 2, 126, 92},
	{"skylake", 60, 1, 3, 105, 93},
	{"skylake", 60, 1, -1, 359, 212},
	{"skylake", 60, 42, 0, 73, 66},
	{"skylake", 60, 42, 1, 119, 86},
	{"skylake", 60, 42, 2, 114, 73},
	{"skylake", 60, 42, 3, 113, 92},
	{"skylake", 60, 42, -1, 500, 488},
	{"skylake", 60, 18096596585462880131, 0, 77, 81},
	{"skylake", 60, 18096596585462880131, 1, 119, 92},
	{"skylake", 60, 18096596585462880131, 2, 105, 99},
	{"skylake", 60, 18096596585462880131, 3, 105, 94},
	{"skylake", 60, 18096596585462880131, -1, 501, 341},
	{"haswell", 0, 1, 0, 122, 80},
	{"haswell", 0, 1, 1, 122, 107},
	{"haswell", 0, 1, 2, 104, 87},
	{"haswell", 0, 1, 3, 124, 109},
	{"haswell", 0, 1, -1, 506, 217},
	{"haswell", 0, 42, 0, 109, 90},
	{"haswell", 0, 42, 1, 109, 101},
	{"haswell", 0, 42, 2, 102, 98},
	{"haswell", 0, 42, 3, 124, 105},
	{"haswell", 0, 42, -1, 492, 489},
	{"haswell", 0, 9983386848092761977, 0, 84, 81},
	{"haswell", 0, 9983386848092761977, 1, 109, 107},
	{"haswell", 0, 9983386848092761977, 2, 111, 89},
	{"haswell", 0, 9983386848092761977, 3, 105, 101},
	{"haswell", 0, 9983386848092761977, -1, 486, 484},
	{"haswell", 5, 1, 0, 78, 65},
	{"haswell", 5, 1, 1, 82, 67},
	{"haswell", 5, 1, 2, 84, 87},
	{"haswell", 5, 1, 3, 64, 90},
	{"haswell", 5, 1, -1, 215, 212},
	{"haswell", 5, 42, 0, 48, 56},
	{"haswell", 5, 42, 1, 108, 84},
	{"haswell", 5, 42, 2, 90, 89},
	{"haswell", 5, 42, 3, 109, 89},
	{"haswell", 5, 42, -1, 492, 211},
	{"haswell", 5, 6235986073284285404, 0, 90, 84},
	{"haswell", 5, 6235986073284285404, 1, 66, 87},
	{"haswell", 5, 6235986073284285404, 2, 90, 66},
	{"haswell", 5, 6235986073284285404, 3, 89, 84},
	{"haswell", 5, 6235986073284285404, -1, 471, 486},
	{"haswell", 12, 1, 0, 77, 65},
	{"haswell", 12, 1, 1, 107, 107},
	{"haswell", 12, 1, 2, 104, 87},
	{"haswell", 12, 1, 3, 124, 106},
	{"haswell", 12, 1, -1, 361, 217},
	{"haswell", 12, 42, 0, 109, 84},
	{"haswell", 12, 42, 1, 109, 84},
	{"haswell", 12, 42, 2, 102, 107},
	{"haswell", 12, 42, 3, 124, 88},
	{"haswell", 12, 42, -1, 492, 489},
	{"haswell", 12, 858834293842216780, 0, 110, 54},
	{"haswell", 12, 858834293842216780, 1, 101, 86},
	{"haswell", 12, 858834293842216780, 2, 100, 105},
	{"haswell", 12, 858834293842216780, 3, 100, 66},
	{"haswell", 12, 858834293842216780, -1, 471, 359},
	{"haswell", 33, 1, 0, 57, 65},
	{"haswell", 33, 1, 1, 65, 67},
	{"haswell", 33, 1, 2, 65, 68},
	{"haswell", 33, 1, 3, 83, 64},
	{"haswell", 33, 1, -1, 175, 450},
	{"haswell", 33, 42, 0, 62, 58},
	{"haswell", 33, 42, 1, 67, 47},
	{"haswell", 33, 42, 2, 67, 80},
	{"haswell", 33, 42, 3, 67, 67},
	{"haswell", 33, 42, -1, 194, 172},
	{"haswell", 33, 18104592414702090148, 0, 48, 62},
	{"haswell", 33, 18104592414702090148, 1, 68, 79},
	{"haswell", 33, 18104592414702090148, 2, 90, 88},
	{"haswell", 33, 18104592414702090148, 3, 90, 89},
	{"haswell", 33, 18104592414702090148, -1, 48, 446},
	{"haswell", 60, 1, 0, 106, 65},
	{"haswell", 60, 1, 1, 105, 107},
	{"haswell", 60, 1, 2, 98, 92},
	{"haswell", 60, 1, 3, 105, 106},
	{"haswell", 60, 1, -1, 352, 374},
	{"haswell", 60, 42, 0, 112, 100},
	{"haswell", 60, 42, 1, 119, 84},
	{"haswell", 60, 42, 2, 114, 107},
	{"haswell", 60, 42, 3, 113, 92},
	{"haswell", 60, 42, -1, 479, 362},
	{"haswell", 60, 18096596585462880131, 0, 77, 108},
	{"haswell", 60, 18096596585462880131, 1, 119, 105},
	{"haswell", 60, 18096596585462880131, 2, 105, 99},
	{"haswell", 60, 18096596585462880131, 3, 105, 122},
	{"haswell", 60, 18096596585462880131, -1, 500, 341},
}

// TestBaselineParity pins the refactored engine-driven BLISS and
// OpenTuner strategies to the exact picks of the pre-refactor monolithic
// tuners: same seed, same budget, same noise stream — bit-identical
// final choice.
func TestBaselineParity(t *testing.T) {
	data := map[string]*dataset.Dataset{}
	for _, m := range hw.Machines() {
		data[m.Name] = dataset.MustBuild(m)
	}
	for _, pc := range parityCases {
		d := data[pc.machine]
		rd := d.Regions[pc.regionIdx]
		var obj autotune.Objective
		if pc.capIdx >= 0 {
			obj = autotune.TimeUnderCap{Cap: pc.capIdx}
		} else {
			obj = autotune.EDP{}
		}
		task := autotune.Task{
			Problem:  autotune.Problem{Obj: obj, Space: d.Space, Seed: pc.seed},
			RegionID: rd.Region.ID,
		}
		if got := autotune.RunEntry(bliss.Entry("BLISS"), rd, task).Best; got != pc.bliss {
			t.Errorf("%s region %d seed %d cap %d: BLISS pick %d, pre-refactor %d",
				pc.machine, pc.regionIdx, pc.seed, pc.capIdx, got, pc.bliss)
		}
		if got := autotune.RunEntry(opentuner.Entry("OpenTuner"), rd, task).Best; got != pc.opentuner {
			t.Errorf("%s region %d seed %d cap %d: OpenTuner pick %d, pre-refactor %d",
				pc.machine, pc.regionIdx, pc.seed, pc.capIdx, got, pc.opentuner)
		}
	}
}
