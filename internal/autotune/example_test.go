package autotune_test

import (
	"fmt"
	"math"

	"pnptuner/internal/autotune"
)

// ExampleEngine runs one full propose/observe/best session: a Shortlist
// strategy proposes its candidates in rank order, the evaluator (here a
// toy cost function standing in for dataset replay or a RAPL runner)
// measures them, and the engine returns the best measured candidate with
// the full reproducible trace.
func ExampleEngine() {
	strategy := autotune.NewShortlist([]int{2, 9, 7, 4})
	evaluator := autotune.EvaluatorFunc(func(config int) float64 {
		return math.Abs(float64(config-7)) + 1 // config 7 is optimal
	})

	result := autotune.Engine{Eval: evaluator, Budget: 3}.Run(strategy)

	fmt.Println("evals:", result.Evals)
	for _, obs := range result.Trace {
		fmt.Printf("observed config %d -> cost %.0f\n", obs.Config, obs.Value)
	}
	fmt.Println("best:", result.Best)
	// Output:
	// evals: 3
	// observed config 2 -> cost 6
	// observed config 9 -> cost 3
	// observed config 7 -> cost 1
	// best: 7
}
