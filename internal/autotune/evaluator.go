package autotune

import (
	"math"

	"pnptuner/internal/dataset"
	"pnptuner/internal/space"
)

// Evaluator measures candidates for the engine. Implementations range
// from dataset replay (the simulated testbed) to a hook a real
// RAPL/variorum runner satisfies by executing the region and reading
// energy counters.
type Evaluator interface {
	// Measure returns the observed objective value of one candidate
	// (lower is better). Deterministic evaluators make whole tuning
	// traces reproducible.
	Measure(config int) float64
}

// EvaluatorFunc adapts a measurement function — e.g. a closure around
// hw/rapl region execution — to the Evaluator interface.
type EvaluatorFunc func(config int) float64

// Measure calls f.
func (f EvaluatorFunc) Measure(config int) float64 { return f(config) }

// ReplayMix is the default stream constant of Replay measurement noise;
// strategies replaying pre-refactor traces pass their historical one.
const ReplayMix uint64 = 0x9e3779b97f4a7c15

// Replay measures candidates by replaying the exhaustive dataset grid,
// optionally under multiplicative log-normal run-to-run noise — what the
// baseline tuners see in place of real repeated executions (turbo, cache
// state, interference keep best-of-N sampling away from the true
// optimum). NoiseSD 0 replays the grid verbatim (the noise-free oracle
// evaluator). Noise is deterministic per (Seed, Mix, candidate), so a
// trace depends only on (strategy, seed, budget).
type Replay struct {
	RD  *dataset.RegionData
	S   *space.Space
	Obj Objective
	// NoiseSD is the relative measurement noise of one execution
	// (0 = noise-free).
	NoiseSD float64
	// Seed decorrelates tuning runs; Mix decorrelates the noise streams
	// of different consumers at the same seed (0 = ReplayMix).
	Seed uint64
	Mix  uint64
}

// NewReplay builds the noisy replay evaluator the baseline comparisons
// use.
func NewReplay(rd *dataset.RegionData, s *space.Space, obj Objective, seed uint64, noiseSD float64, mix uint64) *Replay {
	return &Replay{RD: rd, S: s, Obj: obj, NoiseSD: noiseSD, Seed: seed, Mix: mix}
}

// NewOracle builds the noise-free replay evaluator: every measurement is
// the true grid value.
func NewOracle(rd *dataset.RegionData, s *space.Space, obj Objective) *Replay {
	return &Replay{RD: rd, S: s, Obj: obj}
}

// Measure replays candidate config, with noise when configured.
func (r *Replay) Measure(config int) float64 {
	v := r.Obj.Value(r.RD, r.S, config)
	if r.NoiseSD <= 0 {
		return v
	}
	mix := r.Mix
	if mix == 0 {
		mix = ReplayMix
	}
	return v * Noise(r.Seed, mix, r.Obj.NoiseKey(config), r.NoiseSD)
}

// noiseKeyMul spreads measurement keys across the seed space before
// mixing. It is a fixed odd constant deliberately distinct from every
// stream (mix) constant and from the splitmix64 mixers, so key·noiseKeyMul
// can never cancel against them.
const noiseKeyMul uint64 = 0xd1342543de82ef95

// Noise returns the deterministic multiplicative noise factor of one
// simulated execution: log-normal with unit mean and relative spread sd,
// keyed so every (seed, measurement) pair has its own draw. mix selects
// an independent stream at the same seed; it is XORed into the state
// rather than multiplied with the key, so key 0 (candidate 0 of a joint
// space) still sees independent draws per stream — the earlier
// seed^(key*mix) seeding collapsed every mix to the same draw there.
func Noise(seed, mix, key uint64, sd float64) float64 {
	r := NewRNG(seed ^ mix ^ (key * noiseKeyMul))
	u1 := float64(r.Next()>>11) / (1 << 53)
	u2 := float64(r.Next()>>11) / (1 << 53)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(sd*z - sd*sd/2)
}

// RNG is the tiny deterministic (splitmix64) generator behind every
// engine stream. Strategies draw their decisions from one seeded by the
// engine, so a session is reproducible from its seed.
type RNG struct{ x uint64 }

// NewRNG returns an RNG seeded for one stream.
func NewRNG(seed uint64) *RNG { return &RNG{x: seed} }

// Next returns the next pseudo-random 64-bit value.
func (s *RNG) Next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
