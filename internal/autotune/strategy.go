package autotune

// Fixed is a zero-execution strategy: it proposes nothing and always
// recommends the same candidate. Trained-model predictions and the
// default configuration enter figures as Fixed entries.
type Fixed int

// Propose never proposes; a Fixed strategy spends no budget.
func (f Fixed) Propose(int) []int { return nil }

// Observe ignores measurements.
func (f Fixed) Observe(int, float64) {}

// Best returns the fixed candidate.
func (f Fixed) Best() int { return int(f) }

// Shortlist proposes a precomputed candidate list in rank order and
// recommends the best measured one — the refinement half of the hybrid
// GNN-predict-then-search scenario: the model shortlists top-k
// configurations, a small execution budget validates them. With no
// budget it degenerates to the pure static pick (the list head).
type Shortlist struct {
	cands []int
	next  int

	measured bool
	best     int
	bestV    float64
}

// NewShortlist builds a Shortlist over cands (best-first; must be
// non-empty).
func NewShortlist(cands []int) *Shortlist {
	if len(cands) == 0 {
		panic("autotune: empty shortlist")
	}
	return &Shortlist{cands: cands}
}

// Propose returns the next up-to-k unproposed candidates in list order.
func (s *Shortlist) Propose(k int) []int {
	if s.next >= len(s.cands) || k <= 0 {
		return nil
	}
	hi := s.next + k
	if hi > len(s.cands) {
		hi = len(s.cands)
	}
	out := s.cands[s.next:hi]
	s.next = hi
	return out
}

// Observe keeps the best measured candidate (first measurement wins
// ties, preserving the list's rank order).
func (s *Shortlist) Observe(config int, value float64) {
	if !s.measured || value < s.bestV {
		s.measured, s.best, s.bestV = true, config, value
	}
}

// Best returns the best measured candidate, or the list head if nothing
// was measured.
func (s *Shortlist) Best() int {
	if !s.measured {
		return s.cands[0]
	}
	return s.best
}
