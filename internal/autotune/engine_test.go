package autotune_test

import (
	"context"
	"math"
	"testing"

	"pnptuner/internal/autotune"
	"pnptuner/internal/bliss"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/opentuner"
)

// strategyEntries returns one entry per strategy family, including the
// model-shaped ones (Fixed, Shortlist) with synthetic proposals.
func strategyEntries() []autotune.Entry {
	return []autotune.Entry{
		bliss.Entry("bliss"),
		opentuner.Entry("opentuner"),
		func() autotune.Entry {
			e := autotune.HybridEntry("hybrid", func(t autotune.Task) []int { return []int{5, 17, 2} })
			return e
		}(),
		autotune.FixedEntry("fixed", func(t autotune.Task) int { return 9 }),
	}
}

// TestTraceDeterminism is the reproducibility contract: for every
// strategy, the same (seed, budget) produces a bit-identical
// proposal/observation trace and final pick.
func TestTraceDeterminism(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	rd := d.Regions[3]
	for _, en := range strategyEntries() {
		for _, seed := range []uint64{1, 42, rd.Region.Seed} {
			task := autotune.Task{
				Problem:  autotune.Problem{Obj: autotune.TimeUnderCap{Cap: 2}, Space: d.Space, Seed: seed},
				RegionID: rd.Region.ID,
			}
			a := autotune.RunEntry(en, rd, task)
			b := autotune.RunEntry(en, rd, task)
			if a.Best != b.Best || a.Evals != b.Evals || len(a.Trace) != len(b.Trace) {
				t.Fatalf("%s seed %d: sessions diverge (%d/%d evals, best %d/%d)",
					en.Name, seed, a.Evals, b.Evals, a.Best, b.Best)
			}
			for i := range a.Trace {
				if a.Trace[i] != b.Trace[i] {
					t.Fatalf("%s seed %d: trace[%d] = %+v vs %+v",
						en.Name, seed, i, a.Trace[i], b.Trace[i])
				}
			}
			if a.Evals != en.Budget {
				// Search strategies must spend exactly their budget on a
				// 127-point space; zero-execution ones spend nothing.
				t.Fatalf("%s: spent %d evals, budget %d", en.Name, a.Evals, en.Budget)
			}
		}
	}
}

// TestEngineBudgetIsHardCap pins the engine's accounting: an
// over-proposing strategy is truncated at the budget.
func TestEngineBudgetIsHardCap(t *testing.T) {
	s := autotune.NewShortlist([]int{0, 1, 2, 3, 4, 5, 6, 7})
	evals := 0
	res := autotune.Engine{
		Eval:   autotune.EvaluatorFunc(func(c int) float64 { evals++; return float64(c) }),
		Budget: 3,
	}.Run(s)
	if evals != 3 || res.Evals != 3 {
		t.Fatalf("spent %d/%d evals, budget 3", evals, res.Evals)
	}
	if res.Best != 0 {
		t.Fatalf("best = %d, want cheapest measured 0", res.Best)
	}
}

// TestShortlistDegeneratesToStatic: with no budget the shortlist head is
// the recommendation — the pure zero-execution scenario.
func TestShortlistDegeneratesToStatic(t *testing.T) {
	s := autotune.NewShortlist([]int{42, 7, 1})
	res := autotune.Engine{}.Run(s)
	if res.Best != 42 || res.Evals != 0 {
		t.Fatalf("zero-budget shortlist: best %d evals %d, want 42/0", res.Best, res.Evals)
	}
}

// TestOracleMatchesDatasetLabels: the generic grid scan reproduces the
// dataset's precomputed per-cap and EDP labels.
func TestOracleMatchesDatasetLabels(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	for _, rd := range d.Regions[:10] {
		for ci := range d.Space.Caps() {
			best, v := autotune.Oracle(rd, d.Space, autotune.TimeUnderCap{Cap: ci})
			if want := rd.BestTimeCfg[ci]; rd.Results[ci][best].TimeSec != rd.Results[ci][want].TimeSec {
				t.Fatalf("%s cap %d: oracle %d (%g) != label %d", rd.Region.ID, ci, best, v, want)
			}
		}
		best, _ := autotune.Oracle(rd, d.Space, autotune.EDP{})
		bc, bk := d.Space.SplitJoint(best)
		if rd.Results[bc][bk].EDP() != rd.BestEDP(d.Space) {
			t.Fatalf("%s: EDP oracle %d != label %d", rd.Region.ID, best, rd.BestEDPJoint)
		}
	}
}

// TestEnergyObjective: the label-free objective stays consistent with
// the grid and its oracle is the grid minimum.
func TestEnergyObjective(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	rd := d.Regions[0]
	obj := autotune.Energy{}
	best, v := autotune.Oracle(rd, d.Space, obj)
	if v <= 0 {
		t.Fatalf("oracle energy %g", v)
	}
	for j := 0; j < d.Space.NumJoint(); j++ {
		if obj.Value(rd, d.Space, j) < v {
			t.Fatalf("candidate %d beats the energy oracle %d", j, best)
		}
	}
}

// TestNoiseIsUnbiasedAndSpread checks the shared measurement-noise
// stream: unit mean, the configured relative spread, and stream
// independence between the BLISS and OpenTuner mix constants.
func TestNoiseIsUnbiasedAndSpread(t *testing.T) {
	for _, sd := range []float64{0.15, 0.20} {
		sum, sumsq := 0.0, 0.0
		n := 5000
		for i := 0; i < n; i++ {
			v := autotune.Noise(3, autotune.ReplayMix, uint64(i), sd)
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(n)
		got := math.Sqrt(sumsq/float64(n) - mean*mean)
		if math.Abs(mean-1) > 0.02 {
			t.Fatalf("sd %g: noise mean = %g, want ~1", sd, mean)
		}
		if got < sd-0.05 || got > sd+0.05 {
			t.Fatalf("noise sd = %g, want ~%g", got, sd)
		}
	}
	// Different mixes must decorrelate at the same (seed, key).
	same := 0
	for i := 0; i < 100; i++ {
		a := autotune.Noise(7, bliss.NoiseMix, uint64(i), 0.15)
		b := autotune.Noise(7, opentuner.NoiseMix, uint64(i), 0.15)
		if a == b {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("%d/100 identical draws across noise streams", same)
	}
}

// TestRunContextCancellation: a cancelled context stops a session before
// its next measurement — including mid-batch — and an uncancelled
// context changes nothing about the trace (the async-job cancellation
// contract of the serving layer).
func TestRunContextCancellation(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	rd := d.Regions[3]
	task := autotune.Task{
		Problem:  autotune.Problem{Obj: autotune.TimeUnderCap{Cap: 1}, Space: d.Space, Seed: 7},
		RegionID: rd.Region.ID,
	}
	for _, en := range strategyEntries() {
		// Parity: a live context is invisible.
		plain := autotune.RunEntry(en, rd, task)
		withCtx := autotune.RunEntryContext(context.Background(), en, rd, task)
		if plain.Best != withCtx.Best || plain.Evals != withCtx.Evals || len(plain.Trace) != len(withCtx.Trace) {
			t.Fatalf("%s: live context changed the session (%d/%d evals)", en.Name, plain.Evals, withCtx.Evals)
		}

		// Already-cancelled: zero measurements, but still a recommendation.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res := autotune.RunEntryContext(ctx, en, rd, task)
		if res.Evals != 0 || len(res.Trace) != 0 {
			t.Fatalf("%s: cancelled session spent %d evals", en.Name, res.Evals)
		}
	}

	// Cancel mid-session, from inside the evaluator: the engine must stop
	// at the next measurement check, not run out the budget.
	const stopAfter = 3
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	eval := autotune.EvaluatorFunc(func(config int) float64 {
		evals++
		if evals == stopAfter {
			cancel()
		}
		return float64(config)
	})
	p := autotune.Problem{Obj: autotune.TimeUnderCap{Cap: 0}, Space: d.Space, Seed: 1, Budget: 50}
	res := autotune.RunContext(ctx, p, eval, autotune.NewShortlist([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}))
	if res.Evals != stopAfter {
		t.Fatalf("session spent %d evals after cancel at %d", res.Evals, stopAfter)
	}
	if res.Best != 1 {
		t.Fatalf("best = %d, want the lowest measured value's config", res.Best)
	}
}
