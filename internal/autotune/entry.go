package autotune

import (
	"context"

	"pnptuner/internal/dataset"
)

// Entry is one strategy column of a comparison: a display name plus how
// to build the strategy, its evaluator, and its execution budget for a
// task. Figure drivers iterate a []Entry instead of hardcoding tuner
// calls, so a new strategy (or a real-hardware evaluator) is a new entry,
// not a fork of the driver.
type Entry struct {
	// Name labels the column (figure legends, CLI output).
	Name string
	// Budget is the number of candidate executions granted per task
	// (0 = zero-execution).
	Budget int
	// New constructs the strategy for one task.
	New func(t Task) Strategy
	// Eval builds the evaluator measuring this entry's executions for
	// one region task; nil uses the noise-free replay oracle. Search
	// baselines install noisy replay here, a hardware runner would
	// install its execution hook.
	Eval func(rd *dataset.RegionData, t Task) Evaluator
	// Observe, when non-nil, taps every measurement of the entry's
	// sessions (Engine.Observe) — telemetry, never search logic.
	Observe func(config int, value float64)
}

// Hybrid scenario defaults: the GNN shortlists HybridK candidates and
// the same number of validation executions picks the winner, each
// execution carrying HybridNoiseSD relative measurement noise on its own
// stream — the accuracy/cost point between the zero-execution static
// scenario and the baselines' 20-execution searches.
const (
	HybridK        = 3
	HybridNoiseSD  = 0.15
	HybridNoiseMix = uint64(0x94d049bb133111eb)
)

// HybridEntry builds the GNN-predict-then-search entry: topk looks up
// the model's shortlist for a task, and HybridK noisy executions refine
// it. Callers override Budget for a different k.
func HybridEntry(name string, topk func(t Task) []int) Entry {
	return Entry{
		Name:   name,
		Budget: HybridK,
		New: func(t Task) Strategy {
			return NewShortlist(topk(t))
		},
		Eval: func(rd *dataset.RegionData, t Task) Evaluator {
			return NewReplay(rd, t.Space, t.Obj, t.Seed, HybridNoiseSD, HybridNoiseMix)
		},
	}
}

// FixedEntry builds a zero-execution entry from a per-task prediction —
// how trained-model argmaxes and the default configuration enter
// comparisons.
func FixedEntry(name string, pick func(t Task) int) Entry {
	return Entry{
		Name: name,
		New: func(t Task) Strategy {
			return Fixed(pick(t))
		},
	}
}

// RunEntry runs one engine session for entry e on region rd: the entry's
// budget overrides the task's, its evaluator measures, and its strategy
// searches.
func RunEntry(e Entry, rd *dataset.RegionData, t Task) Result {
	return RunEntryContext(context.Background(), e, rd, t)
}

// RunEntryContext is RunEntry with a cancellation context: a cancelled
// ctx stops the session before its next measurement, which is how async
// serving jobs abort engine sessions promptly.
func RunEntryContext(ctx context.Context, e Entry, rd *dataset.RegionData, t Task) Result {
	t.Budget = e.Budget
	var eval Evaluator
	if e.Eval != nil {
		eval = e.Eval(rd, t)
	} else {
		eval = NewOracle(rd, t.Space, t.Obj)
	}
	return Engine{Eval: eval, Budget: t.Budget, Ctx: ctx, Observe: e.Observe}.Run(e.New(t))
}
