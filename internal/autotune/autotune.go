// Package autotune is the unified tuning engine: one propose/observe/best
// loop that every tuner — the paper's search-based baselines (BLISS,
// OpenTuner), the zero-execution GNN predictor, and the hybrid
// GNN-predict-then-search extension — plugs into as a Strategy. The
// engine owns what the siloed implementations used to duplicate: the
// measurement budget, the seeded RNG streams, and how candidates are
// measured (an Evaluator: noisy dataset replay, a noise-free oracle, or a
// hook a real RAPL/variorum runner can satisfy). Objectives
// (time-under-cap, EDP, energy) are first-class and shared between
// training labels, search, and reporting, so a tuning trace is
// reproducible from (strategy, seed, budget) alone.
package autotune

import "context"

// Strategy is an iterative tuning policy. The engine alternates Propose
// and Observe until the budget is spent or the strategy has nothing left
// to propose, then takes Best as the recommendation.
//
// Strategies never measure anything themselves — they see the candidate
// space through the Problem they were constructed from and learn values
// only through Observe. A zero-execution strategy (a trained model)
// simply proposes nothing, or proposes candidates it is happy to have
// validated.
type Strategy interface {
	// Propose returns up to k candidate indices to measure next, in
	// order. Returning an empty slice ends the session early (the
	// candidate space is exhausted or the strategy is done).
	Propose(k int) []int
	// Observe reports the measured value of one proposed candidate.
	// Candidates are observed in proposal order, before the next
	// Propose call.
	Observe(config int, value float64)
	// Best returns the strategy's recommendation given everything
	// observed so far.
	Best() int
}

// Observation is one measured candidate of a session trace.
type Observation struct {
	Config int
	Value  float64
}

// Result is the outcome of one engine session.
type Result struct {
	// Best is the recommended candidate index.
	Best int
	// Evals is how many measurements were spent.
	Evals int
	// Trace is the full (config, value) measurement sequence; with a
	// deterministic evaluator it is reproducible from
	// (strategy, seed, budget) alone.
	Trace []Observation
}

// Engine drives one tuning session: it owns the measurement budget and
// the evaluator, and runs the propose/observe loop. The zero value (no
// evaluator, zero budget) runs zero-execution sessions.
type Engine struct {
	// Eval measures proposed candidates. It may be nil when Budget is 0.
	Eval Evaluator
	// Budget is the maximum number of measurements.
	Budget int
	// Ctx, when non-nil, cancels a running session: the engine checks it
	// before every measurement (the promptness a replay evaluator needs;
	// a real-hardware evaluator should additionally watch the context
	// inside Measure) and returns early with whatever was observed so
	// far. A nil context never cancels, so traces of uncancelled
	// sessions are bit-identical with or without one.
	Ctx context.Context
	// Observe, when non-nil, is called after every measurement with the
	// candidate and its value — an observability tap on the loop that
	// never influences it (the strategy has already seen the value).
	Observe func(config int, value float64)
}

// Run drives s until the budget is spent, s stops proposing, or the
// engine's context is cancelled, then returns s's recommendation and the
// measurement trace.
func (e Engine) Run(s Strategy) Result {
	var res Result
	for res.Evals < e.Budget && !e.cancelled() {
		cands := s.Propose(e.Budget - res.Evals)
		if len(cands) == 0 {
			break
		}
		for _, c := range cands {
			if res.Evals >= e.Budget || e.cancelled() {
				break
			}
			v := e.Eval.Measure(c)
			s.Observe(c, v)
			if e.Observe != nil {
				e.Observe(c, v)
			}
			res.Trace = append(res.Trace, Observation{Config: c, Value: v})
			res.Evals++
		}
	}
	res.Best = s.Best()
	return res
}

func (e Engine) cancelled() bool {
	return e.Ctx != nil && e.Ctx.Err() != nil
}

// Run is the convenience form of Engine.Run: one session over problem p,
// measuring through eval.
func Run(p Problem, eval Evaluator, s Strategy) Result {
	return Engine{Eval: eval, Budget: p.Budget}.Run(s)
}

// RunContext is Run with a cancellation context: a cancelled ctx stops
// the session before its next measurement.
func RunContext(ctx context.Context, p Problem, eval Evaluator, s Strategy) Result {
	return Engine{Eval: eval, Budget: p.Budget, Ctx: ctx}.Run(s)
}
