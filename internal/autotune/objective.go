package autotune

import (
	"pnptuner/internal/dataset"
	"pnptuner/internal/space"
)

// Objective is a tuning goal over one machine's search space: it defines
// the candidate index space, the true measured value of a candidate on a
// region's measurement grid (lower is better), and the two candidate
// encodings the strategies need — surrogate feature vectors (BLISS-style
// model-guided search) and a lattice shape (OpenTuner-style structured
// search). The same objective values feed training labels (soft
// near-optimal targets), engine evaluators, and figure reporting.
type Objective interface {
	// Name is the objective's wire/CLI name.
	Name() string
	// NumCandidates is the size of the candidate index space.
	NumCandidates(s *space.Space) int
	// Value is the true (noise-free) objective of candidate cand on rd.
	Value(rd *dataset.RegionData, s *space.Space, cand int) float64
	// Features is a normalized numeric encoding of cand for surrogate
	// models.
	Features(s *space.Space, cand int) []float64
	// Dims is the lattice shape of the candidate space for
	// structure-aware strategies; Decode maps a lattice coordinate back
	// to a candidate index. The lattice may be a subset of the index
	// space (the per-cap grid excludes the trailing default config).
	Dims(s *space.Space) []int
	Decode(s *space.Space, p []int) int
	// NoiseKey identifies cand's simulated execution for the replay
	// evaluator's per-measurement noise stream.
	NoiseKey(cand int) uint64
}

// Problem describes one tuning task to a strategy: the objective, the
// machine search space, and the resources the engine grants. Strategies
// size themselves from it (bootstrap fractions, lattice dims) but learn
// measured values only through Observe.
type Problem struct {
	Obj    Objective
	Space  *space.Space
	Budget int
	// Seed drives every RNG stream of the session — strategy decisions
	// and replay measurement noise alike.
	Seed uint64
}

// N returns the candidate count of the problem's objective.
func (p Problem) N() int { return p.Obj.NumCandidates(p.Space) }

// Task is a problem bound to a region, which is how figure drivers and
// serving construct per-region strategies (prediction lookups key on the
// region ID).
type Task struct {
	Problem
	RegionID string
}

// TimeUnderCap is scenario 1: minimize execution time over the per-cap
// configuration space at power cap index Cap.
type TimeUnderCap struct {
	Cap int
}

func (o TimeUnderCap) Name() string                     { return "time" }
func (o TimeUnderCap) NumCandidates(s *space.Space) int { return s.NumConfigs() }

func (o TimeUnderCap) Value(rd *dataset.RegionData, s *space.Space, cand int) float64 {
	return rd.Results[o.Cap][cand].TimeSec
}

func (o TimeUnderCap) Features(s *space.Space, cand int) []float64 {
	return s.ConfigFeatures(cand)
}

func (o TimeUnderCap) Dims(s *space.Space) []int {
	return []int{len(s.M.ThreadCounts), len(space.Schedules), len(space.Chunks)}
}

func (o TimeUnderCap) Decode(s *space.Space, p []int) int {
	return (p[0]*len(space.Schedules)+p[1])*len(space.Chunks) + p[2]
}

func (o TimeUnderCap) NoiseKey(cand int) uint64 {
	return uint64(o.Cap)*1000 + uint64(cand)
}

// jointObjective factors what EDP and Energy share: candidates are joint
// (cap × config) labels.
type jointObjective struct{}

func (jointObjective) NumCandidates(s *space.Space) int { return s.NumJoint() }

func (jointObjective) Features(s *space.Space, cand int) []float64 {
	ci, ki := s.SplitJoint(cand)
	f := s.ConfigFeatures(ki)
	return append(append(make([]float64, 0, len(f)+1), f...), s.Caps()[ci]/s.M.TDP)
}

func (jointObjective) Dims(s *space.Space) []int {
	return []int{len(s.Caps()), len(s.M.ThreadCounts), len(space.Schedules), len(space.Chunks)}
}

func (jointObjective) Decode(s *space.Space, p []int) int {
	cfg := (p[1]*len(space.Schedules)+p[2])*len(space.Chunks) + p[3]
	return s.JointIndex(p[0], cfg)
}

func (jointObjective) NoiseKey(cand int) uint64 { return uint64(cand) }

// EDP is scenario 2: minimize the energy-delay product over the joint
// (power cap × configuration) space.
type EDP struct{ jointObjective }

func (EDP) Name() string { return "edp" }

func (EDP) Value(rd *dataset.RegionData, s *space.Space, cand int) float64 {
	ci, ki := s.SplitJoint(cand)
	return rd.Results[ci][ki].EDP()
}

// Energy minimizes total energy over the joint space — a constraint-free
// green-computing objective the dataset has no precomputed label for
// (Oracle scans the grid on demand).
type Energy struct{ jointObjective }

func (Energy) Name() string { return "energy" }

func (Energy) Value(rd *dataset.RegionData, s *space.Space, cand int) float64 {
	ci, ki := s.SplitJoint(cand)
	return rd.Results[ci][ki].EnergyJ()
}

// Oracle scans the full grid and returns the candidate minimizing obj on
// rd, with its value — the exhaustive-search reference every figure
// normalizes against. For TimeUnderCap and EDP it reproduces the
// dataset's precomputed labels; for objectives without labels (Energy)
// it is the label.
func Oracle(rd *dataset.RegionData, s *space.Space, obj Objective) (best int, value float64) {
	n := obj.NumCandidates(s)
	value = obj.Value(rd, s, 0)
	for c := 1; c < n; c++ {
		if v := obj.Value(rd, s, c); v < value {
			best, value = c, v
		}
	}
	return best, value
}
