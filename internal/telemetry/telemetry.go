// Package telemetry is the fleet observability subsystem: a
// zero-dependency concurrent metrics registry (counters, gauges and
// log-linear histograms with labeled families, exposed in Prometheus
// text format at GET /metrics) plus in-process request tracing (a trace
// ID propagated on the X-Request-ID header across gate → replica →
// peer-fetch hops, with a bounded span recorder queryable at
// GET /v1/traces/{id} and sampled into log/slog).
//
// The package imports only the standard library, so every layer of the
// stack — client SDK, gate, registry, measure runner — can depend on it
// without cycles. It is distinct from internal/metrics, which is the
// paper's evaluation arithmetic, not operational telemetry.
//
// Cardinality discipline: label values must come from bounded sets
// (mux route patterns, outcome enums, replica indices) — never model
// keys, paths or user input. Each family additionally clamps itself to
// maxSeries distinct label combinations; past that, new combinations
// collapse into a single overflow series labeled "other", so a bug can
// cost accuracy but never unbounded memory.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Histogram scales: the exposed value of one recorded unit. Durations
// are recorded in nanoseconds and exposed in seconds per Prometheus
// convention; sizes are recorded and exposed as-is.
const (
	Seconds = 1e-9
	Units   = 1.0
)

// DurationBuckets is the default latency exposition ladder, in seconds.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets is the default ladder for small-count histograms
// (batch window sizes and the like).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// maxSeries bounds the distinct label combinations per family; see the
// package comment.
const maxSeries = 128

// overflowLabel replaces every label value of a combination created
// past the maxSeries bound.
const overflowLabel = "other"

// Registry holds metric families and renders them in Prometheus text
// exposition format. Safe for concurrent use; the zero value is not
// usable — construct with New.
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order drives exposition order
	byName   map[string]*family
	hooks    []func()
}

// New builds an empty metrics registry.
func New() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// OnScrape registers a hook run before every exposition — the place to
// refresh gauges whose source of truth lives elsewhere (breaker states,
// queue depths snapshotted from another subsystem).
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// family is one named metric with a fixed label schema and one series
// per label-value combination.
type family struct {
	name, help, typ string
	labelKeys       []string

	// Histogram families only.
	scale    float64
	bounds   []float64 // exposition ladder, exposed units, ascending
	boundIdx []int     // per bound: last fine bucket at or under it

	// Func-backed families (CounterFunc/GaugeFunc) only.
	fn func() float64

	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	labelVals []string
	val       atomic.Int64 // counter / gauge
	hist      *Histogram   // histogram
}

// register returns the family for name, creating it on first use. A
// name reused with a different type or label schema is a programming
// error and panics — silent divergence would corrupt the exposition.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || strings.Join(f.labelKeys, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s%v (was %s%v)",
				name, typ, labels, f.typ, f.labelKeys))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labelKeys: labels,
		series:    map[string]*series{},
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// with returns the series for one label-value combination, creating it
// on first use and collapsing combinations past the maxSeries bound
// into the overflow series.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labelKeys) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d",
			f.name, len(f.labelKeys), len(values)))
	}
	key := strings.Join(values, "\x1f")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	if len(f.series) >= maxSeries {
		values = make([]string, len(f.labelKeys))
		for i := range values {
			values[i] = overflowLabel
		}
		key = strings.Join(values, "\x1f")
		if s, ok := f.series[key]; ok {
			return s
		}
	}
	s := &series{labelVals: append([]string(nil), values...)}
	if f.typ == "histogram" {
		s.hist = newHistogram()
	}
	f.series[key] = s
	return s
}

// snapshot returns the series sorted by label values, for deterministic
// exposition.
func (f *family) snapshot() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	f.mu.Unlock()
	return out
}

// Counter is a monotonically increasing metric handle. All methods are
// nil-safe, so optional instrumentation costs a nil check when absent.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be ≥ 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.s.val.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.s.val.Load()
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for one label-value combination.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{s: v.f.with(values)}
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labels)}
}

// Gauge is a set-to-current-value metric handle. Nil-safe.
type Gauge struct{ s *series }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.s.val.Store(n)
	}
}

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.s.val.Add(n)
	}
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.s.val.Load()
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{s: v.f.with(values)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", labels)}
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time — for sources that already keep their own monotonic
// counts (registry cache stats) and should not be double-tracked.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "counter", nil)
	f.fn = fn
}

// GaugeFunc registers a gauge sampled from fn at scrape time (queue
// depths, pool sizes).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil)
	f.fn = fn
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.with(values).hist
}

// Histogram registers (or finds) an unlabeled histogram. scale is the
// exposed value of one recorded unit (Seconds for durations recorded
// in nanoseconds, Units for plain values); buckets is the exposition
// ladder in exposed units, ascending (+Inf is implicit). Quantiles
// keep the fine log-linear resolution regardless of the ladder.
func (r *Registry) Histogram(name, help string, scale float64, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, scale, buckets).With()
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, scale float64, buckets []float64, labels ...string) *HistogramVec {
	f := r.register(name, help, "histogram", labels)
	r.mu.Lock()
	if f.bounds == nil {
		if scale <= 0 {
			scale = Units
		}
		f.scale = scale
		f.bounds = append([]float64(nil), buckets...)
		f.boundIdx = ladderIndexes(f.bounds, scale)
	}
	r.mu.Unlock()
	return &HistogramVec{f: f}
}

// ladderIndexes precomputes, per exposition bound, the last fine
// log-linear bucket whose midpoint is at or under it, so scrapes
// render cumulative counts with one pass over the fine buckets.
func ladderIndexes(bounds []float64, scale float64) []int {
	out := make([]int, len(bounds))
	for i, b := range bounds {
		limit := b / scale
		idx := -1
		for j := 0; j < numBucket; j++ {
			if float64(bucketValue(j)) <= limit {
				idx = j
			} else {
				break
			}
		}
		out[i] = idx
	}
	return out
}
