package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries the request's trace ID. It is deliberately the
// same header as the pre-existing correlation ID (X-Request-ID): one
// ID is minted at the first hop (gate or a direct client), echoed on
// every response, forwarded verbatim on every proxied replica call and
// peer model fetch, and keys the span timeline at GET /v1/traces/{id}
// on every process that touched the request.
const TraceHeader = "X-Request-ID"

type traceIDKey struct{}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceID returns the context's trace ID, "" when untraced.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// newTraceID mints 12 hex chars of entropy. crypto/rand never fails on
// supported platforms; a silent fallback would risk colliding IDs, so
// fail loudly.
func newTraceID() string {
	b := make([]byte, 6)
	if _, err := rand.Read(b); err != nil {
		panic("telemetry: trace ID entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b)
}

// Span is one timed step of a request within this process, offset
// against the trace's start.
type Span struct {
	Name    string            `json:"name"`
	StartNs int64             `json:"start_ns"` // offset from Trace.Start
	DurNs   int64             `json:"duration_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Trace is the wire view of one request's span timeline in this
// process, served at GET /v1/traces/{id}. A request that crossed
// processes (gate → replica) has the same ID in each, each holding its
// own hops.
type Trace struct {
	ID      string    `json:"id"`
	Start   time.Time `json:"start"`
	Spans   []Span    `json:"spans"`
	Dropped int       `json:"dropped_spans,omitempty"`
}

type spanRec struct {
	name  string
	start time.Time
	dur   time.Duration
	attrs map[string]string
}

type traceRec struct {
	spans   []spanRec
	dropped int
}

// Recorder keeps a bounded in-process window of recent traces: at most
// maxTraces traces (FIFO eviction) of at most maxSpans spans each, so
// tracing is always on without unbounded memory. All methods are
// nil-safe — components hold a *Recorder that is simply nil outside a
// server.
type Recorder struct {
	maxTraces int
	maxSpans  int

	mu     sync.Mutex
	order  []string // insertion order, for FIFO eviction
	traces map[string]*traceRec

	logger   *slog.Logger
	logEvery int64
	roots    atomic.Int64
}

// NewRecorder builds a recorder holding up to maxTraces traces of
// maxSpans spans each (≤ 0 picks the defaults, 512 and 64).
func NewRecorder(maxTraces, maxSpans int) *Recorder {
	if maxTraces <= 0 {
		maxTraces = 512
	}
	if maxSpans <= 0 {
		maxSpans = 64
	}
	return &Recorder{
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
		traces:    map[string]*traceRec{},
	}
}

// SetLogging samples every Nth root span into l as a structured slog
// record (0 disables). Call before serving traffic.
func (r *Recorder) SetLogging(l *slog.Logger, every int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.logger = l
	r.logEvery = int64(every)
	r.mu.Unlock()
}

// Add records one finished span under a trace ID, creating the trace
// on first use and evicting the oldest trace past the bound. Empty IDs
// (untraced work) are dropped.
func (r *Recorder) Add(id, name string, start time.Time, d time.Duration, attrs ...string) {
	if r == nil || id == "" {
		return
	}
	var m map[string]string
	if len(attrs) >= 2 {
		m = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	r.mu.Lock()
	tr, ok := r.traces[id]
	if !ok {
		for len(r.traces) >= r.maxTraces && len(r.order) > 0 {
			delete(r.traces, r.order[0])
			r.order = r.order[1:]
		}
		tr = &traceRec{}
		r.traces[id] = tr
		r.order = append(r.order, id)
	}
	if len(tr.spans) >= r.maxSpans {
		tr.dropped++
	} else {
		tr.spans = append(tr.spans, spanRec{name: name, start: start, dur: d, attrs: m})
	}
	r.mu.Unlock()
}

// Start begins a span on the context's trace and returns the function
// that ends it; extra attribute pairs may be appended at the end. When
// the recorder is nil or the context untraced, the returned func is a
// no-op — instrumented code never branches.
func (r *Recorder) Start(ctx context.Context, name string, attrs ...string) func(extra ...string) {
	id := TraceID(ctx)
	if r == nil || id == "" {
		return func(...string) {}
	}
	start := time.Now()
	return func(extra ...string) {
		r.Add(id, name, start, time.Since(start), append(attrs, extra...)...)
	}
}

// Get returns the wire view of one trace: spans sorted by start time
// and offset against the earliest one.
func (r *Recorder) Get(id string) (Trace, bool) {
	if r == nil {
		return Trace{}, false
	}
	r.mu.Lock()
	tr, ok := r.traces[id]
	if !ok {
		r.mu.Unlock()
		return Trace{}, false
	}
	spans := append([]spanRec(nil), tr.spans...)
	dropped := tr.dropped
	r.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].start.Before(spans[j].start) })
	out := Trace{ID: id, Dropped: dropped}
	if len(spans) > 0 {
		out.Start = spans[0].start
	}
	for _, s := range spans {
		out.Spans = append(out.Spans, Span{
			Name:    s.name,
			StartNs: s.start.Sub(out.Start).Nanoseconds(),
			DurNs:   s.dur.Nanoseconds(),
			Attrs:   s.attrs,
		})
	}
	return out, true
}

// Len returns the number of retained traces.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}

// maybeLog emits every logEvery-th root span as a structured record.
func (r *Recorder) maybeLog(id, method, path string, status int, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	l, every := r.logger, r.logEvery
	r.mu.Unlock()
	if l == nil || every <= 0 {
		return
	}
	if n := r.roots.Add(1); n%every != 0 {
		return
	}
	l.Info("request sampled",
		slog.String("trace", id),
		slog.String("method", method),
		slog.String("path", path),
		slog.Int("status", status),
		slog.Duration("duration", d),
	)
}

// WithRequestID is the request-correlation middleware shared by the
// gate and the replica server: echo the incoming X-Request-ID (so the
// first hop's ID survives every subsequent hop) or mint one, expose it
// on the response, inject it into the request context so outbound
// client calls re-stamp it, and record the root span for the request
// in rec (which may be nil to disable tracing).
func WithRequestID(rec *Recorder, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(TraceHeader)
		if id == "" {
			id = newTraceID()
			r.Header.Set(TraceHeader, id)
		}
		w.Header().Set(TraceHeader, id)
		ctx := WithTraceID(r.Context(), id)
		if rec == nil {
			next.ServeHTTP(w, r.WithContext(ctx))
			return
		}
		start := time.Now()
		sw := &statusCapture{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		d := time.Since(start)
		rec.Add(id, "http "+r.Method+" "+r.URL.Path, start, d,
			"status", strconv.Itoa(sw.status))
		rec.maybeLog(id, r.Method, r.URL.Path, sw.status, d)
	})
}

// statusCapture records the response status for the root span.
type statusCapture struct {
	http.ResponseWriter
	status int
}

func (w *statusCapture) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
