package telemetry

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentMetrics hammers one registry from many goroutines —
// counter increments, gauge stores, histogram observes — while other
// goroutines scrape and read quantiles. Run under -race (CI's verify
// job does), this is the data-race certification for the hot-path
// atomics and the snapshot locking.
func TestConcurrentMetrics(t *testing.T) {
	const (
		workers = 8
		perG    = 2000
	)
	r := New()
	c := r.CounterVec("race_total", "Total.", "op").With("x")
	g := r.Gauge("race_depth", "Depth.")
	h := r.Histogram("race_lat", "Lat.", Seconds, DurationBuckets)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(seed*1000 + uint64(i))
			}
		}(uint64(w))
	}
	// Concurrent readers: scrapes and quantiles must never race the
	// writers.
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				_ = h.Quantile(0.99)
				_ = c.Value()
			}
		}
	}()
	wg.Wait()
	close(done)
	readers.Wait()

	if got := c.Value(); got != workers*perG {
		t.Errorf("counter = %d, want %d", got, workers*perG)
	}
	if got := h.Count(); got != workers*perG {
		t.Errorf("histogram count = %d, want %d", got, workers*perG)
	}
}

// TestConcurrentRecorder races span recording, trace reads and FIFO
// eviction across goroutines.
func TestConcurrentRecorder(t *testing.T) {
	rec := NewRecorder(16, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := string(rune('a' + (w+i)%32))
				rec.Add(id, "span", time.Now(), 0, "k", "v")
				rec.Get(id)
				rec.Len()
			}
		}(w)
	}
	wg.Wait()
	if rec.Len() > 16 {
		t.Errorf("recorder retained %d traces, bound 16", rec.Len())
	}
}
