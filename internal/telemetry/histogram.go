package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucketing, identical to internal/loadgen's client-side
// histograms: values below 2^subBits are exact; above, each power of
// two splits into 2^subBits sub-buckets, bounding the relative
// quantile error at ~1/2^subBits (≈3%) across the full range. Keeping
// the schemes identical means server-side quantiles scraped from
// /metrics and client-side quantiles in a pnpload report are directly
// comparable (and parity-tested so).
const (
	subBits   = 5
	subCount  = 1 << subBits
	numBucket = (64 - subBits + 1) * subCount
)

// bucketIndex maps a recorded value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	oct := bits.Len64(v) - 1 // position of the leading bit, ≥ subBits
	sub := (v >> (uint(oct) - subBits)) & (subCount - 1)
	return (oct-subBits+1)*subCount + int(sub)
}

// bucketValue returns the midpoint value a bucket represents.
func bucketValue(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	block := idx >> subBits
	sub := uint64(idx & (subCount - 1))
	oct := uint(block + subBits - 1)
	width := uint64(1) << (oct - subBits)
	return int64(uint64(1)<<oct + sub*width + width/2)
}

// Histogram records values into log-linear buckets with lock-free
// atomic increments — it sits on the serving hot path (every batched
// predict observes queue wait and forward time), so unlike loadgen's
// mutex-guarded histogram, the write path is a few atomic adds.
// Snapshots taken during concurrent writes are internally consistent
// enough for monitoring (counts are monotone; a reader may see an
// observation in the bucket array before the total, never after).
// All methods are nil-safe.
type Histogram struct {
	counts []atomic.Uint64 // numBucket fine buckets
	n      atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, numBucket)}
}

// Observe records one value in the histogram's recorded unit
// (nanoseconds for duration families).
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if int64(v) <= cur || h.max.CompareAndSwap(cur, int64(v)) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds (negative clamps
// to zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations in recorded units.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the q-quantile (0 < q ≤ 1) in recorded units, 0
// when empty. The rank is ceil(q·n) — the smallest value with at least
// a q fraction of observations at or below it — and the answer is that
// rank's bucket midpoint, mirroring loadgen's quantile exactly.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			return uint64(bucketValue(i))
		}
	}
	return uint64(h.max.Load())
}

// cumulative fills counts with a point-in-time copy of the fine
// buckets and returns their total (used for exposition so the +Inf
// bucket and _count line always agree even mid-write).
func (h *Histogram) cumulative(counts []uint64) uint64 {
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		total += c
	}
	return total
}
