package telemetry_test

import (
	"math/rand"
	"testing"
	"time"

	"pnptuner/internal/loadgen"
	"pnptuner/internal/telemetry"
)

// TestQuantileParityWithLoadgen feeds identical duration streams into
// a telemetry histogram (atomic, server-side) and a loadgen histogram
// (mutex-guarded, client-side) and requires bit-identical quantiles:
// both use the same subBits=5 log-linear bucketing and the same
// ceil(q·n) rank, so a p99 scraped from /metrics and a p99 in a
// pnpload report describe the same latency the same way. This test is
// in the external package because loadgen imports telemetry (for the
// /metrics scrape parser) — the dependency only works this way around.
func TestQuantileParityWithLoadgen(t *testing.T) {
	reg := telemetry.New()
	rng := rand.New(rand.NewSource(42))

	for name, gen := range map[string]func() time.Duration{
		"uniform":   func() time.Duration { return time.Duration(rng.Int63n(int64(5 * time.Second))) },
		"lognormal": func() time.Duration { return time.Duration(1000 * (1 + rng.ExpFloat64()*1e6)) },
		"tiny":      func() time.Duration { return time.Duration(rng.Int63n(40)) },
	} {
		th := reg.Histogram("parity_"+name, "Parity.", telemetry.Seconds, telemetry.DurationBuckets)
		lh := &loadgen.Histogram{}
		n := 1 + rng.Intn(3000)
		for i := 0; i < n; i++ {
			d := gen()
			th.ObserveDuration(d)
			lh.Record(d)
		}
		if th.Count() != lh.Count() {
			t.Fatalf("%s: counts diverge (%d vs %d)", name, th.Count(), lh.Count())
		}
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			got := time.Duration(th.Quantile(q))
			want := lh.Quantile(q)
			if got != want {
				t.Errorf("%s: q=%v telemetry=%v loadgen=%v", name, q, got, want)
			}
		}
	}
}
