package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition bytes for a
// registry exercising every family kind: counters (labeled and not),
// gauges, func-backed metrics and a histogram with its cumulative le
// ladder. Monitoring pipelines parse this text — format drift is a
// regression, not a cosmetic change.
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	reqs := r.CounterVec("test_requests_total", "Requests by route.", "route")
	reqs.With("/v1/predict").Add(3)
	reqs.With("/v1/tune").Inc()
	r.Gauge("test_depth", "Current queue depth.").Set(7)
	r.GaugeFunc("test_pool_size", "Sampled pool size.", func() float64 { return 2.5 })
	h := r.Histogram("test_latency", "Latency in fake units.", Units, []float64{1, 10, 100})
	for _, v := range []uint64{0, 5, 50, 500} {
		h.Observe(v)
	}

	want := strings.Join([]string{
		"# HELP test_requests_total Requests by route.",
		"# TYPE test_requests_total counter",
		`test_requests_total{route="/v1/predict"} 3`,
		`test_requests_total{route="/v1/tune"} 1`,
		"# HELP test_depth Current queue depth.",
		"# TYPE test_depth gauge",
		"test_depth 7",
		"# HELP test_pool_size Sampled pool size.",
		"# TYPE test_pool_size gauge",
		"test_pool_size 2.5",
		"# HELP test_latency Latency in fake units.",
		"# TYPE test_latency histogram",
		`test_latency_bucket{le="1"} 1`,
		`test_latency_bucket{le="10"} 2`,
		`test_latency_bucket{le="100"} 3`,
		`test_latency_bucket{le="+Inf"} 4`,
		"test_latency_sum 555",
		"test_latency_count 4",
		"",
	}, "\n")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestParseTextRoundTrip feeds the writer's output back through the
// parser — the pair is what pnpload relies on to diff server metrics.
func TestParseTextRoundTrip(t *testing.T) {
	r := New()
	r.CounterVec("rt_total", "Total.", "op").With("a").Add(42)
	r.Histogram("rt_lat", "Lat.", Units, []float64{10}).Observe(4)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	for key, want := range map[string]float64{
		`rt_total{op="a"}`:       42,
		`rt_lat_bucket{le="10"}`: 1,
		`rt_lat_count`:           1,
		`rt_lat_sum`:             4,
	} {
		if got[key] != want {
			t.Errorf("%s = %v, want %v (parsed %v)", key, got[key], want, got)
		}
	}

	if _, err := ParseText(strings.NewReader("not a metric line\n")); err == nil {
		t.Errorf("ParseText accepted a malformed line")
	}
}

// TestHandler covers the HTTP face: content type, method filtering.
func TestHandler(t *testing.T) {
	r := New()
	r.Counter("h_total", "Total.").Inc()

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	}
}

// TestSeriesOverflow checks the cardinality clamp: combinations past
// maxSeries collapse into the "other" series instead of growing the
// map without bound.
func TestSeriesOverflow(t *testing.T) {
	r := New()
	v := r.CounterVec("of_total", "Total.", "who")
	for i := 0; i < maxSeries+50; i++ {
		v.With(string(rune('a'+i%26)) + string(rune('0'+i/26))).Inc()
	}
	f := v.f
	f.mu.Lock()
	n := len(f.series)
	f.mu.Unlock()
	if n > maxSeries+1 {
		t.Errorf("family grew to %d series, bound is %d+overflow", n, maxSeries)
	}
	if v.With(overflowLabel).Value() == 0 {
		t.Errorf("overflow series never used")
	}
}
