package telemetry

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRecorderSpans checks span accumulation, ordering by start time,
// offsetting against the trace start, and the per-trace span cap.
func TestRecorderSpans(t *testing.T) {
	rec := NewRecorder(4, 3)
	base := time.Now()
	// Recorded out of order: the inner span first (as real handlers do
	// — the root middleware records last).
	rec.Add("t1", "inner", base.Add(10*time.Millisecond), 5*time.Millisecond, "k", "v")
	rec.Add("t1", "root", base, 20*time.Millisecond)

	tr, ok := rec.Get("t1")
	if !ok {
		t.Fatalf("trace t1 missing")
	}
	if len(tr.Spans) != 2 || tr.Spans[0].Name != "root" || tr.Spans[1].Name != "inner" {
		t.Fatalf("spans = %+v, want root then inner", tr.Spans)
	}
	if tr.Spans[0].StartNs != 0 {
		t.Errorf("root offset = %d, want 0", tr.Spans[0].StartNs)
	}
	if tr.Spans[1].StartNs != (10 * time.Millisecond).Nanoseconds() {
		t.Errorf("inner offset = %d", tr.Spans[1].StartNs)
	}
	if tr.Spans[1].Attrs["k"] != "v" {
		t.Errorf("attrs = %v", tr.Spans[1].Attrs)
	}

	// Past the span cap, spans drop but are counted.
	rec.Add("t1", "extra1", base, 0)
	rec.Add("t1", "extra2", base, 0)
	tr, _ = rec.Get("t1")
	if len(tr.Spans) != 3 || tr.Dropped != 1 {
		t.Errorf("after overflow: %d spans, %d dropped (want 3, 1)", len(tr.Spans), tr.Dropped)
	}
}

// TestRecorderEviction checks the FIFO trace bound.
func TestRecorderEviction(t *testing.T) {
	rec := NewRecorder(2, 8)
	now := time.Now()
	for i := 0; i < 5; i++ {
		rec.Add(fmt.Sprintf("t%d", i), "s", now, time.Millisecond)
	}
	if rec.Len() != 2 {
		t.Fatalf("retained %d traces, want 2", rec.Len())
	}
	if _, ok := rec.Get("t0"); ok {
		t.Errorf("oldest trace survived eviction")
	}
	if _, ok := rec.Get("t4"); !ok {
		t.Errorf("newest trace evicted")
	}
}

// TestWithRequestID covers the unified middleware: minting, echoing,
// context injection, response exposure and root-span recording.
func TestWithRequestID(t *testing.T) {
	rec := NewRecorder(8, 8)
	var seenCtx, seenHeader string
	h := WithRequestID(rec, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenCtx = TraceID(r.Context())
		seenHeader = r.Header.Get(TraceHeader)
		time.Sleep(time.Millisecond)
		w.WriteHeader(http.StatusTeapot)
	}))

	// Incoming ID is echoed everywhere.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(TraceHeader, "upstream-id")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if seenCtx != "upstream-id" || seenHeader != "upstream-id" {
		t.Errorf("ctx=%q header=%q, want upstream-id in both", seenCtx, seenHeader)
	}
	if got := w.Header().Get(TraceHeader); got != "upstream-id" {
		t.Errorf("response header = %q", got)
	}
	tr, ok := rec.Get("upstream-id")
	if !ok || len(tr.Spans) != 1 {
		t.Fatalf("root span not recorded: %+v ok=%v", tr, ok)
	}
	if tr.Spans[0].DurNs <= 0 {
		t.Errorf("root span duration = %d, want > 0", tr.Spans[0].DurNs)
	}
	if tr.Spans[0].Attrs["status"] != "418" {
		t.Errorf("status attr = %q", tr.Spans[0].Attrs["status"])
	}

	// Absent ID is minted and still lands on the response.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/x", nil))
	minted := w.Header().Get(TraceHeader)
	if minted == "" || minted == "upstream-id" {
		t.Fatalf("minted ID = %q", minted)
	}
	if seenCtx != minted {
		t.Errorf("ctx carried %q, response carried %q", seenCtx, minted)
	}
}

// TestStartNoops verifies the nil-safety contract instrumented code
// leans on: nil recorders and untraced contexts produce working no-op
// closures, nil metric handles absorb operations.
func TestStartNoops(t *testing.T) {
	var rec *Recorder
	rec.Start(context.Background(), "x")("k", "v") // must not panic
	rec.Add("id", "x", time.Now(), 0)
	if _, ok := rec.Get("id"); ok {
		t.Errorf("nil recorder returned a trace")
	}

	live := NewRecorder(2, 2)
	live.Start(context.Background(), "x")() // untraced ctx: no span
	if live.Len() != 0 {
		t.Errorf("untraced Start recorded a span")
	}
	end := live.Start(WithTraceID(context.Background(), "tid"), "x")
	end("result", "ok")
	tr, _ := live.Get("tid")
	if len(tr.Spans) != 1 || tr.Spans[0].Attrs["result"] != "ok" {
		t.Errorf("traced Start: %+v", tr)
	}

	var c *Counter
	c.Inc()
	var g *Gauge
	g.Set(3)
	var h *Histogram
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("nil handles reported values")
	}
}
