package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): families in registration order, series
// sorted by label values, histograms as cumulative le buckets plus
// _sum and _count. OnScrape hooks run first so sampled gauges are
// fresh.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	families := append([]*family{}, r.families...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	bw := bufio.NewWriter(w)
	for _, f := range families {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		if f.fn != nil {
			fmt.Fprintf(bw, "%s %s\n", f.name, formatValue(f.fn()))
			continue
		}
		for _, s := range f.snapshot() {
			switch f.typ {
			case "histogram":
				writeHistogram(bw, f, s)
			default:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(f.labelKeys, s.labelVals, "", 0), s.val.Load())
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: a cumulative count per
// ladder bound, the implicit +Inf bound, then _sum (in exposed units)
// and _count.
func writeHistogram(w io.Writer, f *family, s *series) {
	counts := make([]uint64, numBucket)
	total := s.hist.cumulative(counts)
	prefix := make([]uint64, numBucket+1) // running cumulative sum over fine buckets
	for i, c := range counts {
		prefix[i+1] = prefix[i] + c
	}
	for bi, bound := range f.bounds {
		var n uint64
		if idx := f.boundIdx[bi]; idx >= 0 {
			n = prefix[idx+1]
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelString(f.labelKeys, s.labelVals, "le", bound), n)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, infLabel(f.labelKeys, s.labelVals), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
		labelString(f.labelKeys, s.labelVals, "", 0), formatValue(float64(s.hist.Sum())*f.scale))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name,
		labelString(f.labelKeys, s.labelVals, "", 0), total)
}

// labelString renders {k="v",...}, appending le=bound when leKey is
// non-empty; no labels at all renders as the empty string.
func labelString(keys, vals []string, leKey string, bound float64) string {
	if len(keys) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(formatValue(bound))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// infLabel is labelString with le="+Inf" (which formatValue cannot
// produce).
func infLabel(keys, vals []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if len(keys) > 0 {
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the exposition at GET /metrics. The endpoint is
// deliberately unversioned (outside /v1/): it is an operational
// surface scraped by monitoring, not part of the API contract.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// ParseText reads a Prometheus text exposition into a flat
// series → value map, keyed by the full series name including labels
// (`pnp_http_requests_total{route="/v1/predict"}`). Comment and blank
// lines are skipped; any other malformed line is an error. The parser
// is the inverse of WritePrometheus and is what pnpload uses to diff a
// target's /metrics before and after a run.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		cut := strings.LastIndexByte(text, ' ')
		if cut <= 0 {
			return nil, fmt.Errorf("telemetry: exposition line %d malformed: %q", line, text)
		}
		v, err := strconv.ParseFloat(text[cut+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: exposition line %d value: %v", line, err)
		}
		out[text[:cut]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
