package kernels

import (
	"testing"

	"pnptuner/internal/frontend"
	"pnptuner/internal/vocab"
)

func TestCorpusCompiles(t *testing.T) {
	c, err := Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Apps); got != 30 {
		t.Errorf("apps = %d, want 30", got)
	}
	if got := len(c.Regions); got != 68 {
		t.Errorf("regions = %d, want 68", got)
	}
}

func TestRegionCountsPerApp(t *testing.T) {
	c := MustCompile()
	want := map[string]int{
		"LULESH": 12, "Quicksilver": 6, "miniAMR": 6, "miniFE": 5,
		"XSBench": 3, "RSBench": 3,
		"adi": 2, "jacobi-2d": 2, "gramschmidt": 2, "correlation": 2,
		"covariance": 2, "gemver": 2, "fdtd-2d": 2, "fdtd-apml": 2, "2mm": 2,
		"gemm": 1, "trisolv": 1, "lu": 1, "seidel-2d": 1,
	}
	for app, n := range want {
		if got := len(c.ByApp[app]); got != n {
			t.Errorf("%s: %d regions, want %d", app, got, n)
		}
	}
}

func TestEveryRegionHasGraphAndModel(t *testing.T) {
	c := MustCompile()
	for _, r := range c.Regions {
		if r.Graph == nil || r.Graph.NumNodes() < 10 {
			t.Errorf("%s: degenerate graph (%d nodes)", r.ID, r.Graph.NumNodes())
		}
		m := r.Info.Model
		if m.Trips <= 0 {
			t.Errorf("%s: no iterations", r.ID)
		}
		if m.FlopsPerIter <= 0 && m.LoadsPerIter+m.StoresPerIter <= 0 {
			t.Errorf("%s: region does no work", r.ID)
		}
		if m.WorkingSet <= 0 {
			t.Errorf("%s: empty working set", r.ID)
		}
	}
}

func TestNoUnknownVocabTokens(t *testing.T) {
	c := MustCompile()
	for _, r := range c.Regions {
		for _, n := range r.Graph.Nodes {
			if n.Token == vocab.UnknownToken {
				t.Errorf("%s: node text %q missing from vocabulary", r.ID, n.Text)
			}
		}
	}
}

func TestCorpusDiversity(t *testing.T) {
	c := MustCompile()
	imb := map[frontend.Imbalance]int{}
	reductions := 0
	var minTrips, maxTrips int64 = 1 << 62, 0
	for _, r := range c.Regions {
		m := r.Info.Model
		imb[m.Imbalance]++
		if m.HasReduction {
			reductions++
		}
		if m.Trips < minTrips {
			minTrips = m.Trips
		}
		if m.Trips > maxTrips {
			maxTrips = m.Trips
		}
	}
	if imb[frontend.ImbUniform] < 20 {
		t.Errorf("uniform regions = %d, want plenty", imb[frontend.ImbUniform])
	}
	if imb[frontend.ImbIncreasing] < 3 {
		t.Errorf("increasing-imbalance regions = %d, want triangular kernels", imb[frontend.ImbIncreasing])
	}
	if imb[frontend.ImbDecreasing] < 2 {
		t.Errorf("decreasing-imbalance regions = %d", imb[frontend.ImbDecreasing])
	}
	if imb[frontend.ImbRandom] < 5 {
		t.Errorf("random-imbalance regions = %d, want Monte Carlo kernels", imb[frontend.ImbRandom])
	}
	if reductions < 5 {
		t.Errorf("reduction regions = %d", reductions)
	}
	if minTrips >= 10000 {
		t.Errorf("no small regions (min trips %d); trisolv/LULESH BC missing", minTrips)
	}
	if maxTrips < 500000 {
		t.Errorf("no large regions (max trips %d)", maxTrips)
	}
}

func TestRegionSeedsAreDistinct(t *testing.T) {
	c := MustCompile()
	seen := map[uint64]string{}
	for _, r := range c.Regions {
		if prev, ok := seen[r.Seed]; ok {
			t.Errorf("seed collision: %s and %s", prev, r.ID)
		}
		seen[r.Seed] = r.ID
	}
}

func TestLookupHelpers(t *testing.T) {
	c := MustCompile()
	ids := c.RegionIDs()
	if len(ids) != 68 {
		t.Fatalf("ids = %d", len(ids))
	}
	if r := c.Region(ids[0]); r == nil || r.ID != ids[0] {
		t.Fatal("Region lookup broken")
	}
	if c.Region("nope") != nil {
		t.Fatal("Region invented an entry")
	}
	names := AppNames()
	if len(names) != 30 || names[0] != "RSBench" {
		t.Fatalf("AppNames = %v", names[:3])
	}
}

func TestMotivatingExampleShape(t *testing.T) {
	// The §I example: LULESH's boundary-condition kernel must be tiny
	// relative to the element sweeps.
	c := MustCompile()
	var bc, eos *Region
	for _, r := range c.ByApp["LULESH"] {
		switch r.Info.Func {
		case "ApplyAccelerationBoundaryConditionsForNodes":
			bc = r
		case "EvalEOSForElems":
			eos = r
		}
	}
	if bc == nil || eos == nil {
		t.Fatal("LULESH kernels missing")
	}
	if bc.Info.Model.Trips*20 > eos.Info.Model.Trips {
		t.Errorf("BC kernel not small: %d vs %d trips", bc.Info.Model.Trips, eos.Info.Model.Trips)
	}
}

func TestGraphSizesReasonable(t *testing.T) {
	c := MustCompile()
	for _, r := range c.Regions {
		n := r.Graph.NumNodes()
		if n > 700 {
			t.Errorf("%s: graph too large (%d nodes) for the GNN batch budget", r.ID, n)
		}
	}
}
