// Package kernels holds the paper's benchmark corpus: 24 PolyBench
// programs plus the six proxy/mini applications (XSBench, RSBench, miniFE,
// miniAMR, Quicksilver, LULESH), totalling 30 applications with 68 OpenMP
// parallel regions, written in the repository's mini-C/OpenMP dialect.
//
// Each region serves two consumers from the same source text: the
// frontend's static analysis feeds the hardware simulator, and the lowered
// IR feeds the PROGRAML graph pipeline the GNN learns from.
package kernels

import (
	"fmt"
	"sort"
	"sync"

	"pnptuner/internal/frontend"
	"pnptuner/internal/ir"
	"pnptuner/internal/programl"
	"pnptuner/internal/rgcn"
	"pnptuner/internal/vocab"
)

// App is one benchmark application source.
type App struct {
	Name   string
	Suite  string // "polybench" or "proxy"
	Source string
}

// Region is a compiled OpenMP region: the frontend analysis plus the
// program graph.
type Region struct {
	App    string
	Suite  string
	ID     string
	Info   *frontend.Region
	Func   *ir.Function
	Graph  *programl.Graph
	Seed   uint64 // deterministic per-region noise seed
	Pragma ompPragma

	compileOnce sync.Once
	compiled    *rgcn.CompiledGraph
}

// CompiledGraph returns the region's compile-once GNN artifact — gather
// indices, node-kind tags, and finalized per-relation CSR plans — built on
// first use and shared by every model, fold, and epoch thereafter (the
// corpus is cached process-wide, so each region graph is compiled exactly
// once per process). The artifact is immutable and goroutine-safe.
func (r *Region) CompiledGraph() *rgcn.CompiledGraph {
	r.compileOnce.Do(func() { r.compiled = rgcn.CompileGraph(r.Graph) })
	return r.compiled
}

// ompPragma records the source-level schedule for reference.
type ompPragma struct {
	Schedule frontend.ScheduleKind
	Chunk    int64
}

// Corpus is the compiled benchmark set.
type Corpus struct {
	Apps    []App
	Regions []*Region
	// ByApp groups region indices per application, in app order.
	ByApp map[string][]*Region
	Vocab *vocab.Vocabulary
}

// Apps returns the corpus sources in the paper's figure order: proxy apps
// first, then PolyBench.
func Apps() []App {
	apps := make([]App, 0, len(proxyApps)+len(polybenchApps))
	apps = append(apps, proxyApps...)
	apps = append(apps, polybenchApps...)
	return apps
}

// AppNames returns application names in figure order.
func AppNames() []string {
	apps := Apps()
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Name
	}
	return names
}

var (
	compileOnce sync.Once
	compiled    *Corpus
	compileErr  error
)

// Compile parses, analyzes, lowers and graphs the whole corpus. The result
// is cached; the corpus is immutable.
func Compile() (*Corpus, error) {
	compileOnce.Do(func() { compiled, compileErr = compileAll() })
	return compiled, compileErr
}

// MustCompile is Compile, panicking on error (the corpus is a compile-time
// constant of the repository, so failure is a programming error).
func MustCompile() *Corpus {
	c, err := Compile()
	if err != nil {
		panic(err)
	}
	return c
}

func compileAll() (*Corpus, error) {
	v := vocab.New()
	c := &Corpus{Apps: Apps(), ByApp: make(map[string][]*Region), Vocab: v}
	for _, app := range c.Apps {
		prog, low, err := frontend.Compile(app.Name, app.Source)
		if err != nil {
			return nil, fmt.Errorf("kernels: %s: %w", app.Name, err)
		}
		for _, fr := range prog.Regions {
			fn, ok := low.RegionFunc[fr.ID]
			if !ok {
				return nil, fmt.Errorf("kernels: %s: region %s has no outlined function", app.Name, fr.ID)
			}
			g, err := programl.FromFunction(fr.ID, fn)
			if err != nil {
				return nil, fmt.Errorf("kernels: %s: %w", app.Name, err)
			}
			v.Annotate(g)
			r := &Region{
				App:   app.Name,
				Suite: app.Suite,
				ID:    fr.ID,
				Info:  fr,
				Func:  fn,
				Graph: g,
				Seed:  hashString(fr.ID),
				Pragma: ompPragma{
					Schedule: fr.Pragma.Schedule,
					Chunk:    fr.Pragma.Chunk,
				},
			}
			c.Regions = append(c.Regions, r)
			c.ByApp[app.Name] = append(c.ByApp[app.Name], r)
		}
	}
	v.Freeze()
	return c, nil
}

// RegionIDs returns all region IDs, sorted.
func (c *Corpus) RegionIDs() []string {
	ids := make([]string, len(c.Regions))
	for i, r := range c.Regions {
		ids[i] = r.ID
	}
	sort.Strings(ids)
	return ids
}

// Region returns the region with the given ID, or nil.
func (c *Corpus) Region(id string) *Region {
	for _, r := range c.Regions {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// hashString is FNV-1a, giving each region a stable noise seed.
func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
