package kernels

// polybenchApps is the PolyBench slice of the corpus, in the order of the
// paper's figures. Problem sizes follow PolyBench's LARGE dataset scaled
// so the suite spans cache-resident, LLC-resident, and streaming regimes,
// and loop nests keep their characteristic shapes (triangular solvers,
// stencils, reductions).
var polybenchApps = []App{
	{Name: "seidel-2d", Suite: "polybench", Source: srcSeidel2D},
	{Name: "adi", Suite: "polybench", Source: srcADI},
	{Name: "jacobi-2d", Suite: "polybench", Source: srcJacobi2D},
	{Name: "bicg", Suite: "polybench", Source: srcBicg},
	{Name: "atax", Suite: "polybench", Source: srcAtax},
	{Name: "gramschmidt", Suite: "polybench", Source: srcGramschmidt},
	{Name: "correlation", Suite: "polybench", Source: srcCorrelation},
	{Name: "doitgen", Suite: "polybench", Source: srcDoitgen},
	{Name: "covariance", Suite: "polybench", Source: srcCovariance},
	{Name: "gemm", Suite: "polybench", Source: srcGemm},
	{Name: "syrk", Suite: "polybench", Source: srcSyrk},
	{Name: "cholesky", Suite: "polybench", Source: srcCholesky},
	{Name: "gemver", Suite: "polybench", Source: srcGemver},
	{Name: "mvt", Suite: "polybench", Source: srcMvt},
	{Name: "durbin", Suite: "polybench", Source: srcDurbin},
	{Name: "trisolv", Suite: "polybench", Source: srcTrisolv},
	{Name: "syr2k", Suite: "polybench", Source: srcSyr2k},
	{Name: "lu", Suite: "polybench", Source: srcLU},
	{Name: "symm", Suite: "polybench", Source: srcSymm},
	{Name: "fdtd-2d", Suite: "polybench", Source: srcFdtd2D},
	{Name: "fdtd-apml", Suite: "polybench", Source: srcFdtdApml},
	{Name: "2mm", Suite: "polybench", Source: src2mm},
	{Name: "gesummv", Suite: "polybench", Source: srcGesummv},
	{Name: "trmm", Suite: "polybench", Source: srcTrmm},
}

const srcSeidel2D = `
// seidel-2d: 9-point Gauss-Seidel sweep (streaming, memory-bound).
const int N = 2800;
double A[N][N];
double B[N][N];

void kernel_seidel_2d() {
  #pragma omp parallel for schedule(static)
  for (i = 1; i < N - 1; i++) {
    for (j = 1; j < N - 1; j++) {
      B[i][j] = (A[i-1][j-1] + A[i-1][j] + A[i-1][j+1]
               + A[i][j-1] + A[i][j] + A[i][j+1]
               + A[i+1][j-1] + A[i+1][j] + A[i+1][j+1]) / 9.0;
    }
  }
}
`

const srcADI = `
// adi: alternating direction implicit solver, column then row sweeps.
const int N = 1400;
double u[N][N];
double v[N][N];
double p[N][N];
double q[N][N];

void kernel_adi_column() {
  #pragma omp parallel for schedule(static)
  for (i = 1; i < N - 1; i++) {
    double a = -0.5;
    double c = -0.5;
    for (j = 1; j < N - 1; j++) {
      p[i][j] = -c / (a * p[i][j-1] + 2.0);
      q[i][j] = (u[j][i-1] + u[j][i+1] - u[j][i] - a * q[i][j-1]) / (a * p[i][j-1] + 2.0);
    }
  }
}

void kernel_adi_row() {
  #pragma omp parallel for schedule(static)
  for (i = 1; i < N - 1; i++) {
    v[N-1][i] = 1.0;
    for (j = N - 2; j >= 1; j--) {
      v[j][i] = p[i][j] * v[j+1][i] + q[i][j];
    }
  }
}
`

const srcJacobi2D = `
// jacobi-2d: 5-point stencil, two sweeps per step (streaming).
const int N = 2600;
double A[N][N];
double B[N][N];

void kernel_jacobi_sweep1() {
  #pragma omp parallel for schedule(static)
  for (i = 1; i < N - 1; i++) {
    for (j = 1; j < N - 1; j++) {
      B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
    }
  }
}

void kernel_jacobi_sweep2() {
  #pragma omp parallel for schedule(static)
  for (i = 1; i < N - 1; i++) {
    for (j = 1; j < N - 1; j++) {
      A[i][j] = 0.2 * (B[i][j] + B[i][j-1] + B[i][j+1] + B[i+1][j] + B[i-1][j]);
    }
  }
}
`

const srcBicg = `
// bicg: biconjugate gradient sub-kernel, two matvecs fused.
const int NX = 2200;
const int NY = 2000;
double A[NX][NY];
double r[NX];
double p[NY];
double q[NX];
double s[NY];

void kernel_bicg() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NX; i++) {
    double acc = 0.0;
    for (j = 0; j < NY; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      acc = acc + A[i][j] * p[j];
    }
    q[i] = acc;
  }
}
`

const srcAtax = `
// atax: y = A^T (A x).
const int M = 2100;
const int N = 2100;
double A[M][N];
double x[N];
double y[N];
double tmp[M];

void kernel_atax() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < M; i++) {
    double acc = 0.0;
    for (j = 0; j < N; j++) {
      acc = acc + A[i][j] * x[j];
    }
    tmp[i] = acc;
    for (j = 0; j < N; j++) {
      y[j] = y[j] + A[i][j] * acc;
    }
  }
}
`

const srcGramschmidt = `
// gramschmidt: QR decomposition by modified Gram-Schmidt.
const int M = 1000;
const int N = 900;
double A[M][N];
double R[N][N];
double Q[M][N];

void kernel_gs_norm() {
  #pragma omp parallel for schedule(static)
  for (k = 0; k < N; k++) {
    double nrm = 0.0;
    for (i = 0; i < M; i++) {
      nrm = nrm + A[i][k] * A[i][k];
    }
    R[k][k] = sqrt(nrm);
  }
}

void kernel_gs_project() {
  #pragma omp parallel for schedule(dynamic)
  for (k = 0; k < N; k++) {
    for (j = k + 1; j < N; j++) {
      double acc = 0.0;
      for (i = 0; i < M; i++) {
        acc = acc + Q[i][k] * A[i][j];
      }
      R[k][j] = acc;
    }
  }
}
`

const srcCorrelation = `
// correlation: column means/stddevs then the correlation matrix.
const int M = 1000;
const int N = 1100;
double data[N][M];
double corr[M][M];
double mean[M];
double stddev[M];

void kernel_corr_stats() {
  #pragma omp parallel for schedule(static)
  for (j = 0; j < M; j++) {
    double mu = 0.0;
    for (i = 0; i < N; i++) {
      mu = mu + data[i][j];
    }
    mu = mu / 1100.0;
    mean[j] = mu;
    double sd = 0.0;
    for (i = 0; i < N; i++) {
      sd = sd + (data[i][j] - mu) * (data[i][j] - mu);
    }
    stddev[j] = sqrt(sd / 1100.0) + 0.1;
  }
}

void kernel_corr_matrix() {
  #pragma omp parallel for schedule(dynamic)
  for (i = 0; i < M - 1; i++) {
    corr[i][i] = 1.0;
    for (j = i + 1; j < M; j++) {
      double acc = 0.0;
      for (k = 0; k < N; k++) {
        acc = acc + (data[k][i] - mean[i]) * (data[k][j] - mean[j]);
      }
      corr[i][j] = acc / (1100.0 * stddev[i] * stddev[j]);
      corr[j][i] = corr[i][j];
    }
  }
}
`

const srcDoitgen = `
// doitgen: multi-resolution analysis tensor contraction (compute-bound).
const int NR = 150;
const int NQ = 140;
const int NP = 160;
double A[NR][NQ][NP];
double C4[NP][NP];
double sum[NR][NQ][NP];

void kernel_doitgen() {
  #pragma omp parallel for schedule(static)
  for (r = 0; r < NR; r++) {
    for (q = 0; q < NQ; q++) {
      for (p = 0; p < NP; p++) {
        double acc = 0.0;
        for (s = 0; s < NP; s++) {
          acc = acc + A[r][q][s] * C4[s][p];
        }
        sum[r][q][p] = acc;
      }
      for (p = 0; p < NP; p++) {
        A[r][q][p] = sum[r][q][p];
      }
    }
  }
}
`

const srcCovariance = `
// covariance: column means then the covariance matrix (triangular).
const int M = 1000;
const int N = 1100;
double data[N][M];
double cov[M][M];
double mean[M];

void kernel_cov_mean() {
  #pragma omp parallel for schedule(static)
  for (j = 0; j < M; j++) {
    double mu = 0.0;
    for (i = 0; i < N; i++) {
      mu = mu + data[i][j];
    }
    mean[j] = mu / 1100.0;
  }
}

void kernel_cov_matrix() {
  #pragma omp parallel for schedule(dynamic)
  for (i = 0; i < M; i++) {
    for (j = i; j < M; j++) {
      double acc = 0.0;
      for (k = 0; k < N; k++) {
        acc = acc + (data[k][i] - mean[i]) * (data[k][j] - mean[j]);
      }
      cov[i][j] = acc / 1099.0;
      cov[j][i] = cov[i][j];
    }
  }
}
`

const srcGemm = `
// gemm: C = alpha*A*B + beta*C (classic compute-bound matmul).
const int NI = 1100;
const int NJ = 1150;
const int NK = 1200;
double A[NI][NK];
double B[NK][NJ];
double C[NI][NJ];

void kernel_gemm() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++) {
      C[i][j] = C[i][j] * 1.2;
    }
    for (k = 0; k < NK; k++) {
      for (j = 0; j < NJ; j++) {
        C[i][j] = C[i][j] + 1.5 * A[i][k] * B[k][j];
      }
    }
  }
}
`

const srcSyrk = `
// syrk: symmetric rank-k update, lower-triangular (increasing imbalance).
const int N = 1000;
const int M = 1100;
double A[N][M];
double C[N][N];

void kernel_syrk() {
  #pragma omp parallel for schedule(dynamic)
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++) {
      C[i][j] = C[i][j] * 1.1;
      for (k = 0; k < M; k++) {
        C[i][j] = C[i][j] + 1.3 * A[i][k] * A[j][k];
      }
    }
  }
}
`

const srcCholesky = `
// cholesky: in-place factorization row kernel (increasing triangular).
const int N = 1000;
double A[N][N];

void kernel_cholesky_row() {
  #pragma omp parallel for schedule(dynamic, 8)
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      double acc = A[i][j];
      for (k = 0; k < j; k++) {
        acc = acc - A[i][k] * A[j][k];
      }
      A[i][j] = acc / (A[j][j] + 1.0);
    }
    double d = A[i][i];
    for (k = 0; k < i; k++) {
      d = d - A[i][k] * A[i][k];
    }
    A[i][i] = sqrt(fabs(d) + 1.0);
  }
}
`

const srcGemver = `
// gemver: vector generalizations of matrix-vector products (streaming).
const int N = 2400;
double A[N][N];
double u1[N];
double v1[N];
double u2[N];
double v2[N];
double x[N];
double y[N];
double z[N];
double w[N];

void kernel_gemver_update() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
    }
  }
}

void kernel_gemver_xw() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < N; i++) {
    double acc = x[i];
    for (j = 0; j < N; j++) {
      acc = acc + 1.2 * A[j][i] * y[j];
    }
    x[i] = acc + z[i];
    double wv = 0.0;
    for (j = 0; j < N; j++) {
      wv = wv + 1.5 * A[i][j] * x[j];
    }
    w[i] = wv;
  }
}
`

const srcMvt = `
// mvt: two transposed matrix-vector products.
const int N = 2200;
double A[N][N];
double x1[N];
double x2[N];
double y1[N];
double y2[N];

void kernel_mvt() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < N; i++) {
    double a1 = x1[i];
    double a2 = x2[i];
    for (j = 0; j < N; j++) {
      a1 = a1 + A[i][j] * y1[j];
      a2 = a2 + A[j][i] * y2[j];
    }
    x1[i] = a1;
    x2[i] = a2;
  }
}
`

const srcDurbin = `
// durbin: Toeplitz solver step; small and latency-bound.
const int N = 600;
double r[N];
double y[N];
double z[N];

void kernel_durbin_step() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < N; i++) {
    double acc = 0.0;
    for (j = 0; j < i; j++) {
      acc = acc + r[i-j-1] * y[j];
    }
    z[i] = acc * 0.25 + r[i];
  }
}
`

const srcTrisolv = `
// trisolv: dense triangular solve; tiny region, the paper's 1-thread
// outlier.
const int N = 340;
double L[N][N];
double x[N];
double b[N];

void kernel_trisolv() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < N; i++) {
    double acc = b[i];
    for (j = 0; j < i; j++) {
      acc = acc - L[i][j] * x[j];
    }
    x[i] = acc / (L[i][i] + 1.0);
  }
}
`

const srcSyr2k = `
// syr2k: symmetric rank-2k update (triangular, compute-bound).
const int N = 900;
const int M = 1000;
double A[N][M];
double B[N][M];
double C[N][N];

void kernel_syr2k() {
  #pragma omp parallel for schedule(dynamic)
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++) {
      C[i][j] = C[i][j] * 1.1;
      for (k = 0; k < M; k++) {
        C[i][j] = C[i][j] + A[j][k] * B[i][k] + B[j][k] * A[i][k];
      }
    }
  }
}
`

const srcLU = `
// lu: LU decomposition row elimination (decreasing triangular: early rows
// do the most work on the trailing submatrix).
const int N = 1000;
double A[N][N];

void kernel_lu_eliminate() {
  #pragma omp parallel for schedule(dynamic, 4)
  for (i = 0; i < N; i++) {
    for (j = i + 1; j < N; j++) {
      double m = A[j][i] / (A[i][i] + 1.0);
      for (k = i + 1; k < N; k++) {
        A[j][k] = A[j][k] - m * A[i][k];
      }
      A[j][i] = m;
    }
  }
}
`

const srcSymm = `
// symm: symmetric matrix-matrix multiply (triangular inner structure).
const int M = 900;
const int N = 950;
double A[M][M];
double B[M][N];
double C[M][N];

void kernel_symm() {
  #pragma omp parallel for schedule(guided)
  for (i = 0; i < M; i++) {
    for (j = 0; j < N; j++) {
      double acc = 0.0;
      for (k = 0; k < i; k++) {
        C[k][j] = C[k][j] + 1.2 * B[i][j] * A[i][k];
        acc = acc + B[k][j] * A[i][k];
      }
      C[i][j] = 1.1 * C[i][j] + 1.2 * B[i][j] * A[i][i] + 1.2 * acc;
    }
  }
}
`

const srcFdtd2D = `
// fdtd-2d: finite-difference time domain field updates (streaming).
const int NX = 1800;
const int NY = 1900;
double ex[NX][NY];
double ey[NX][NY];
double hz[NX][NY];

void kernel_fdtd_e() {
  #pragma omp parallel for schedule(static)
  for (i = 1; i < NX; i++) {
    for (j = 1; j < NY; j++) {
      ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
      ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
    }
  }
}

void kernel_fdtd_h() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NX - 1; i++) {
    for (j = 0; j < NY - 1; j++) {
      hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
    }
  }
}
`

const srcFdtdApml = `
// fdtd-apml: FDTD with anisotropic perfectly matched layer absorber
// (heavier per-point stencil with divisions).
const int CZ = 256;
const int CYM = 256;
const int CXM = 256;
double Ex[CZ][CYM][CXM];
double Ey[CZ][CYM][CXM];
double Bza[CZ][CYM][CXM];
double Hz[CZ][CYM][CXM];
double czm[CZ];
double czp[CZ];
double cymh[CYM];
double cyph[CYM];

void kernel_apml_bz() {
  #pragma omp parallel for schedule(static)
  for (iz = 0; iz < CZ - 1; iz++) {
    for (iy = 0; iy < CYM - 1; iy++) {
      for (ix = 0; ix < CXM - 1; ix++) {
        double clf = Ex[iz][iy][ix] - Ex[iz][iy+1][ix] + Ey[iz][iy][ix+1] - Ey[iz][iy][ix];
        double tmp = (cymh[iy] / cyph[iy]) * Bza[iz][iy][ix] - (0.57 / cyph[iy]) * clf;
        Bza[iz][iy][ix] = tmp;
      }
    }
  }
}

void kernel_apml_hz() {
  #pragma omp parallel for schedule(static)
  for (iz = 0; iz < CZ - 1; iz++) {
    for (iy = 0; iy < CYM - 1; iy++) {
      for (ix = 0; ix < CXM - 1; ix++) {
        Hz[iz][iy][ix] = (czm[iz] / czp[iz]) * Hz[iz][iy][ix]
                       + (0.87 / czp[iz]) * Bza[iz][iy][ix] - 0.93 * Bza[iz][iy][ix];
      }
    }
  }
}
`

const src2mm = `
// 2mm: D = alpha*A*B*C + beta*D as two chained matmuls.
const int NI = 900;
const int NJ = 950;
const int NK = 1000;
const int NL = 1050;
double A[NI][NK];
double B[NK][NJ];
double tmp[NI][NJ];
double C[NJ][NL];
double D[NI][NL];

void kernel_2mm_first() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++) {
      double acc = 0.0;
      for (k = 0; k < NK; k++) {
        acc = acc + 1.5 * A[i][k] * B[k][j];
      }
      tmp[i][j] = acc;
    }
  }
}

void kernel_2mm_second() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NL; j++) {
      double acc = D[i][j] * 1.2;
      for (k = 0; k < NJ; k++) {
        acc = acc + tmp[i][k] * C[k][j];
      }
      D[i][j] = acc;
    }
  }
}
`

const srcGesummv = `
// gesummv: y = alpha*A*x + beta*B*x (two matvecs, bandwidth-bound).
const int N = 1700;
double A[N][N];
double B[N][N];
double x[N];
double y[N];

void kernel_gesummv() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < N; i++) {
    double ta = 0.0;
    double tb = 0.0;
    for (j = 0; j < N; j++) {
      ta = ta + A[i][j] * x[j];
      tb = tb + B[i][j] * x[j];
    }
    y[i] = 1.5 * ta + 1.2 * tb;
  }
}
`

const srcTrmm = `
// trmm: triangular matrix multiply (decreasing triangular imbalance).
const int M = 900;
const int N = 950;
double A[M][M];
double B[M][N];

void kernel_trmm() {
  #pragma omp parallel for schedule(guided)
  for (i = 0; i < M; i++) {
    for (j = 0; j < N; j++) {
      double acc = B[i][j];
      for (k = i + 1; k < M; k++) {
        acc = acc + A[k][i] * B[k][j];
      }
      B[i][j] = 1.1 * acc;
    }
  }
}
`
