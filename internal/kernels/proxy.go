package kernels

// proxyApps holds the six proxy/mini applications in the paper's figure
// order. Hot subroutines below the tuned OpenMP regions (cross-section
// lookups, particle walks, refinement tests) are intrinsic calls whose
// cost/irregularity models live in the frontend's intrinsic table.
var proxyApps = []App{
	{Name: "RSBench", Suite: "proxy", Source: srcRSBench},
	{Name: "XSBench", Suite: "proxy", Source: srcXSBench},
	{Name: "miniFE", Suite: "proxy", Source: srcMiniFE},
	{Name: "Quicksilver", Suite: "proxy", Source: srcQuicksilver},
	{Name: "miniAMR", Suite: "proxy", Source: srcMiniAMR},
	{Name: "LULESH", Suite: "proxy", Source: srcLULESH},
}

const srcXSBench = `
// XSBench: Monte Carlo neutron cross-section lookup proxy. The hot loop
// performs randomized binary-search lookups into nuclide grids — heavy
// gather traffic with data-dependent cost.
const int LOOKUPS = 600000;
const int GRIDPOINTS = 120000;
const int NUCLIDES = 68;
double egrid[GRIDPOINTS];
double xs_results[LOOKUPS];
double nuclide_grids[NUCLIDES][4000];
double verification;

void xs_lookup_kernel() {
  #pragma omp parallel for schedule(dynamic, 64)
  for (l = 0; l < LOOKUPS; l++) {
    double e = rand01(1.0);
    double macro = xs_lookup_macro(e);
    xs_results[l] = macro;
  }
}

void xs_grid_init() {
  #pragma omp parallel for schedule(static)
  for (g = 0; g < GRIDPOINTS; g++) {
    egrid[g] = 0.0001 + 19.9 * g / 120000.0;
  }
}

void xs_verification() {
  #pragma omp parallel for schedule(static) reduction(+:verification)
  for (l = 0; l < LOOKUPS; l++) {
    verification += xs_results[l] * 0.5;
  }
}
`

const srcRSBench = `
// RSBench: multipole cross-section representation proxy. Like XSBench but
// compute-heavier per lookup (complex pole evaluation).
const int LOOKUPS = 400000;
const int WINDOWS = 12000;
double rs_results[LOOKUPS];
double window_data[WINDOWS];
double poles_re[WINDOWS];
double poles_im[WINDOWS];
double rs_verification;

void rs_lookup_kernel() {
  #pragma omp parallel for schedule(dynamic, 32)
  for (l = 0; l < LOOKUPS; l++) {
    double e = rand01(1.0);
    double micro = rs_eval_poles(e);
    double win = rs_eval_window(e);
    rs_results[l] = micro + win;
  }
}

void rs_window_init() {
  #pragma omp parallel for schedule(static)
  for (w = 0; w < WINDOWS; w++) {
    window_data[w] = poles_re[w] * poles_re[w] + poles_im[w] * poles_im[w];
  }
}

void rs_verification_sum() {
  #pragma omp parallel for schedule(static) reduction(+:rs_verification)
  for (l = 0; l < LOOKUPS; l++) {
    rs_verification += rs_results[l];
  }
}
`

const srcMiniFE = `
// miniFE: unstructured implicit finite elements mini-app. The CG solve is
// dominated by a 27-point sparse matvec plus vector kernels.
const int NROWS = 1100000;
const int NNZ = 27;
double matval[NROWS][NNZ];
double xvec[NROWS];
double yvec[NROWS];
double rvec[NROWS];
double pvec[NROWS];
double dot_result;
double norm_result;

void minife_matvec() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NROWS; i++) {
    double acc = 0.0;
    for (k = 0; k < NNZ; k++) {
      acc = acc + matval[i][k] * xvec[(i + k * 37) % NROWS];
    }
    yvec[i] = acc;
  }
}

void minife_dot() {
  #pragma omp parallel for schedule(static) reduction(+:dot_result)
  for (i = 0; i < NROWS; i++) {
    dot_result += rvec[i] * pvec[i];
  }
}

void minife_waxpby() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NROWS; i++) {
    pvec[i] = rvec[i] + 0.85 * pvec[i];
  }
}

void minife_assembly() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NROWS; i++) {
    for (k = 0; k < NNZ; k++) {
      matval[i][k] = matval[i][k] + 0.125 * (k + 1);
    }
  }
}

void minife_norm() {
  #pragma omp parallel for schedule(static) reduction(+:norm_result)
  for (i = 0; i < NROWS; i++) {
    norm_result += rvec[i] * rvec[i];
  }
}
`

const srcQuicksilver = `
// Quicksilver: Monte Carlo particle transport proxy. Per-particle work is
// highly variable (segment counts are data dependent), making schedule
// choice decisive.
const int NPARTICLES = 250000;
const int NCELLS = 64000;
double ptime[NPARTICLES];
double penergy[NPARTICLES];
double tally[NCELLS];
double census_buf[NPARTICLES];
double total_absorb;
double source_rate;

void qs_cycle_tracking() {
  #pragma omp parallel for schedule(dynamic, 16)
  for (p = 0; p < NPARTICLES; p++) {
    double segs = mc_segment_walk(penergy[p]);
    double col = mc_collision(segs);
    ptime[p] = ptime[p] + segs;
    penergy[p] = penergy[p] * 0.98 + col * 0.01;
  }
}

void qs_collision_apply() {
  #pragma omp parallel for schedule(guided)
  for (p = 0; p < NPARTICLES; p++) {
    double c = mc_collision(penergy[p]);
    tally[p % NCELLS] = tally[p % NCELLS] + c;
  }
}

void qs_census() {
  #pragma omp parallel for schedule(static)
  for (p = 0; p < NPARTICLES; p++) {
    census_buf[p] = ptime[p] + penergy[p];
  }
}

void qs_tally_reduce() {
  #pragma omp parallel for schedule(static) reduction(+:total_absorb)
  for (c = 0; c < NCELLS; c++) {
    total_absorb += tally[c];
  }
}

void qs_source_gen() {
  #pragma omp parallel for schedule(static)
  for (p = 0; p < NPARTICLES; p++) {
    penergy[p] = rand01(1.0) * 14.1;
    ptime[p] = 0.0;
  }
}

void qs_population_control() {
  #pragma omp parallel for schedule(static) reduction(+:source_rate)
  for (p = 0; p < NPARTICLES; p++) {
    if (penergy[p] > 1.0e-6) {
      source_rate += 1.0;
    } else {
      census_buf[p] = 0.0;
    }
  }
}
`

const srcMiniAMR = `
// miniAMR: adaptive mesh refinement proxy. Regular stencils on resident
// blocks mixed with irregular refinement and communication phases.
const int NBLOCKS = 4096;
const int BLK = 1000;
double blocks[NBLOCKS][BLK];
double work[NBLOCKS][BLK];
double refine_flags[NBLOCKS];
double total_energy;

void amr_stencil() {
  #pragma omp parallel for schedule(static)
  for (b = 0; b < NBLOCKS; b++) {
    for (c = 1; c < BLK - 1; c++) {
      work[b][c] = 0.25 * (blocks[b][c-1] + 2.0 * blocks[b][c] + blocks[b][c+1]);
    }
  }
}

void amr_refine() {
  #pragma omp parallel for schedule(dynamic, 8)
  for (b = 0; b < NBLOCKS; b++) {
    refine_flags[b] = amr_refine_check(blocks[b][0]);
  }
}

void amr_exchange() {
  #pragma omp parallel for schedule(dynamic, 4)
  for (b = 0; b < NBLOCKS; b++) {
    double f = amr_face_exchange(blocks[b][0]);
    work[b][0] = f;
  }
}

void amr_energy_sum() {
  #pragma omp parallel for schedule(static) reduction(+:total_energy)
  for (b = 0; b < NBLOCKS; b++) {
    for (c = 0; c < BLK; c++) {
      total_energy += work[b][c];
    }
  }
}

void amr_copyback() {
  #pragma omp parallel for schedule(static)
  for (b = 0; b < NBLOCKS; b++) {
    for (c = 0; c < BLK; c++) {
      blocks[b][c] = work[b][c];
    }
  }
}

void amr_gradient() {
  #pragma omp parallel for schedule(static)
  for (b = 0; b < NBLOCKS; b++) {
    for (c = 1; c < BLK - 1; c++) {
      work[b][c] = fabs(blocks[b][c+1] - blocks[b][c-1]) * 0.5;
    }
  }
}
`

const srcLULESH = `
// LULESH: Livermore unstructured Lagrangian explicit shock hydrodynamics
// proxy. Twelve OpenMP regions spanning large element sweeps, nodal
// updates, and the tiny boundary-condition kernel of the paper's
// motivating example.
const int NELEM = 91125;
const int NNODE = 97336;
const int NBC = 2116;
double fx[NNODE];
double fy[NNODE];
double fz[NNODE];
double xdd[NNODE];
double ydd[NNODE];
double zdd[NNODE];
double xd[NNODE];
double yd[NNODE];
double zd[NNODE];
double xpos[NNODE];
double ypos[NNODE];
double zpos[NNODE];
double nodalMass[NNODE];
double sigxx[NELEM];
double determ[NELEM];
double dvdx[NELEM];
double delv[NELEM];
double vol[NELEM];
double volo[NELEM];
double ss[NELEM];
double e_old[NELEM];
double p_old[NELEM];
double q_old[NELEM];
double elemMass[NELEM];
double dxx[NELEM];
double dyy[NELEM];
double dzz[NELEM];
double vnew[NELEM];
double boundary[NBC];

void CalcForceForNodes() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NNODE; i++) {
    fx[i] = 0.0;
    fy[i] = 0.0;
    fz[i] = 0.0;
    for (k = 0; k < 8; k++) {
      fx[i] = fx[i] + sigxx[(i + k * 11) % NELEM] * 0.125;
      fy[i] = fy[i] + sigxx[(i + k * 13) % NELEM] * 0.125;
      fz[i] = fz[i] + sigxx[(i + k * 17) % NELEM] * 0.125;
    }
  }
}

void CalcAccelerationForNodes() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NNODE; i++) {
    xdd[i] = fx[i] / nodalMass[i];
    ydd[i] = fy[i] / nodalMass[i];
    zdd[i] = fz[i] / nodalMass[i];
  }
}

void ApplyAccelerationBoundaryConditionsForNodes() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NBC; i++) {
    xdd[i % NNODE] = 0.0;
    boundary[i] = 0.0;
  }
}

void CalcVelocityForNodes() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NNODE; i++) {
    double xdtmp = xd[i] + xdd[i] * 0.001;
    if (fabs(xdtmp) < 1.0e-8) {
      xdtmp = 0.0;
    }
    xd[i] = xdtmp;
    yd[i] = yd[i] + ydd[i] * 0.001;
    zd[i] = zd[i] + zdd[i] * 0.001;
  }
}

void CalcPositionForNodes() {
  #pragma omp parallel for schedule(static)
  for (i = 0; i < NNODE; i++) {
    xpos[i] = xpos[i] + xd[i] * 0.001;
    ypos[i] = ypos[i] + yd[i] * 0.001;
    zpos[i] = zpos[i] + zd[i] * 0.001;
  }
}

void CalcKinematicsForElems() {
  #pragma omp parallel for schedule(static)
  for (e = 0; e < NELEM; e++) {
    double v = 0.0;
    for (k = 0; k < 8; k++) {
      v = v + xpos[(e + k * 7) % NNODE] * ypos[(e + k * 5) % NNODE] * 0.04;
    }
    vnew[e] = v / volo[e];
    determ[e] = v;
    double dt = 1.0 / (sqrt(fabs(v)) + 1.0e-6);
    dxx[e] = dt * v;
    dyy[e] = dt * v * 0.5;
    dzz[e] = dt * v * 0.25;
  }
}

void CalcMonotonicQGradientsForElems() {
  #pragma omp parallel for schedule(static)
  for (e = 0; e < NELEM; e++) {
    double dx = xpos[(e + 3) % NNODE] - xpos[e % NNODE];
    double dy = ypos[(e + 3) % NNODE] - ypos[e % NNODE];
    double dz = zpos[(e + 3) % NNODE] - zpos[e % NNODE];
    dvdx[e] = (dx * dy + dy * dz + dz * dx) / (vol[e] + 1.0e-12);
  }
}

void CalcMonotonicQForElems() {
  #pragma omp parallel for schedule(static)
  for (e = 0; e < NELEM; e++) {
    double phi = dvdx[e];
    if (phi > 1.0) {
      phi = 1.0;
    }
    if (phi < 0.0) {
      phi = 0.0;
    }
    q_old[e] = ss[e] * phi + elemMass[e] * phi * phi;
  }
}

void EvalEOSForElems() {
  #pragma omp parallel for schedule(static)
  for (e = 0; e < NELEM; e++) {
    double c = 0.5 * (e_old[e] + p_old[e] * delv[e]);
    double bvc = 0.66 * (1.0 + c);
    p_old[e] = bvc * delv[e] + exp(-fabs(c) * 0.001);
    e_old[e] = fabs(c - bvc) + q_old[e] * 0.5;
  }
}

void CalcSoundSpeedForElems() {
  #pragma omp parallel for schedule(static)
  for (e = 0; e < NELEM; e++) {
    double pbvc = e_old[e] + vnew[e] * vnew[e] * p_old[e];
    if (pbvc < 1.0e-12) {
      pbvc = 1.0e-12;
    }
    ss[e] = sqrt(pbvc / elemMass[e]);
  }
}

void UpdateVolumesForElems() {
  #pragma omp parallel for schedule(static)
  for (e = 0; e < NELEM; e++) {
    double v = vnew[e];
    if (fabs(v - 1.0) < 1.0e-8) {
      v = 1.0;
    }
    vol[e] = v;
  }
}

void CalcLagrangeElements() {
  #pragma omp parallel for schedule(static)
  for (e = 0; e < NELEM; e++) {
    double vdov = dxx[e] + dyy[e] + dzz[e];
    double vdovthird = vdov / 3.0;
    dxx[e] = dxx[e] - vdovthird;
    dyy[e] = dyy[e] - vdovthird;
    dzz[e] = dzz[e] - vdovthird;
    delv[e] = vdov * determ[e];
  }
}
`
