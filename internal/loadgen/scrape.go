package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"time"

	"pnptuner/internal/telemetry"
)

// ScrapeMetrics pulls the target's /metrics exposition into a flat
// series → value map (telemetry.ParseText's shape). pnpload scrapes the
// target once before and once after a run so the report can carry the
// server's own view of the load — queue waits, sheds, cache hits —
// next to the client-observed latencies.
func ScrapeMetrics(ctx context.Context, baseURL string) (map[string]float64, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: %s/metrics: %s", baseURL, resp.Status)
	}
	return telemetry.ParseText(resp.Body)
}

// MetricsDelta subtracts a before scrape from an after scrape,
// keeping only the series that moved (gauges that held still and
// counters nothing touched carry no information about the run).
// Series that first appear in the after scrape count from zero —
// a family born under load is exactly the kind of movement the
// delta exists to show.
func MetricsDelta(before, after map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// DeltaKeys returns a delta map's series names sorted, for stable
// human-readable summaries of what a run moved server-side.
func DeltaKeys(delta map[string]float64) []string {
	keys := make([]string, 0, len(delta))
	for k := range delta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
