package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"pnptuner/internal/telemetry"
)

// TestScrapeMetricsDelta: scraping a live /metrics before and after
// traffic yields exactly the series that moved, counted from the
// before value (and series born between scrapes count from zero).
func TestScrapeMetricsDelta(t *testing.T) {
	tel := telemetry.New()
	reqs := tel.Counter("demo_requests_total", "requests")
	tel.Counter("demo_idle_total", "never moves")
	errs := tel.CounterVec("demo_errors_total", "errors", "code")

	mux := http.NewServeMux()
	mux.Handle("/metrics", tel.Handler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	before, err := ScrapeMetrics(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	reqs.Inc()
	reqs.Inc()
	errs.With("overloaded").Inc() // a series born after the first scrape
	after, err := ScrapeMetrics(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	got := MetricsDelta(before, after)
	want := map[string]float64{
		"demo_requests_total":                  2,
		`demo_errors_total{code="overloaded"}`: 1,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta = %v, want %v", got, want)
	}
	if keys := DeltaKeys(got); len(keys) != 2 || keys[0] > keys[1] {
		t.Fatalf("DeltaKeys = %v, want 2 sorted keys", keys)
	}
}

// TestScrapeMetricsErrors: a non-200 target and a dead target both
// surface as errors, not empty maps (pnpload distinguishes "no deltas
// because the scrape failed" from "nothing moved").
func TestScrapeMetricsErrors(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	if _, err := ScrapeMetrics(context.Background(), ts.URL); err == nil {
		t.Fatal("404 target scraped without error")
	}
	ts.Close()
	if _, err := ScrapeMetrics(context.Background(), ts.URL); err == nil {
		t.Fatal("dead target scraped without error")
	}
}
