package loadgen

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"pnptuner/internal/client"
	"pnptuner/internal/testutil"
)

// TestBucketRoundTrip: every bucket's midpoint maps back to the same
// bucket, and the midpoint is within the scheme's relative error of
// any value placed in that bucket.
func TestBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		v := uint64(rng.Int63n(int64(10 * time.Minute)))
		idx := bucketIndex(v)
		mid := uint64(bucketValue(idx))
		if got := bucketIndex(mid); got != idx {
			t.Fatalf("midpoint of bucket %d lands in bucket %d (v=%d)", idx, got, v)
		}
		if v >= subCount {
			rel := float64(mid) - float64(v)
			if rel < 0 {
				rel = -rel
			}
			if rel/float64(v) > 1.0/float64(subCount)+1e-9 {
				t.Fatalf("bucket error for %d: midpoint %d off by %.1f%%", v, mid, 100*rel/float64(v))
			}
		}
	}
}

// TestHistogramQuantiles: known uniform data comes back with the right
// count, near-exact mean/max, and quantiles within the bucketing
// error.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000*time.Millisecond {
		t.Fatalf("max = %s", h.Max())
	}
	if mean := h.Mean(); mean < 499*time.Millisecond || mean > 502*time.Millisecond {
		t.Fatalf("mean = %s, want ≈500.5ms", mean)
	}
	check := func(q float64, want time.Duration) {
		t.Helper()
		got := h.Quantile(q)
		lo := want - want/16 // one sub-bucket of slack
		hi := want + want/16
		if got < lo || got > hi {
			t.Fatalf("q%.2f = %s, want %s ± 6%%", q, got, want)
		}
	}
	check(0.50, 500*time.Millisecond)
	check(0.90, 900*time.Millisecond)
	check(0.99, 990*time.Millisecond)
	if h.Quantile(1.0) < 990*time.Millisecond {
		t.Fatalf("q1.0 = %s", h.Quantile(1.0))
	}
	if len(h.Buckets()) == 0 {
		t.Fatal("no exported buckets")
	}
}

// TestRunAgainstCluster drives a short mixed-op run against a real
// 2-replica cluster: clean error-free completion with nonzero
// throughput and populated per-op quantiles.
func TestRunAgainstCluster(t *testing.T) {
	c := testutil.StartCluster(t, 2)
	rep, err := Run(context.Background(), Config{
		Target:   c.GateURL,
		Client:   client.New(c.GateURL),
		Rate:     150,
		Duration: 400 * time.Millisecond,
		Seed:     7,
		Machines: []string{"haswell"},
		Budget:   1,
		Regions:  2,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 || rep.Completed == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("run saw %d errors: %+v", rep.Errors, rep.Ops)
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v", rep.ThroughputRPS)
	}
	pred := rep.Ops[OpPredict]
	if pred.Count == 0 || pred.P50Millis <= 0 || pred.P99Millis < pred.P50Millis {
		t.Fatalf("predict stats = %+v", pred)
	}
	if len(pred.Histogram) == 0 {
		t.Fatal("histogram missing from artifact")
	}
}
