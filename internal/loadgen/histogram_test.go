package loadgen

import (
	"testing"
	"time"
)

// TestQuantileRank pins Quantile's rank arithmetic on counts where q·n is
// fractional: the rank must be ceil(q·n), the smallest observation with
// at least a q fraction at or below it. Values stay below 2^subBits ns so
// buckets are exact and the assertions are rank-for-rank, free of the
// log-linear ~3% midpoint error.
func TestQuantileRank(t *testing.T) {
	cases := []struct {
		name string
		n    int // observations 1ns..n ns, one each
		q    float64
		want time.Duration // value at rank ceil(q·n)
	}{
		{"p90 of 15 is rank 14", 15, 0.90, 14},
		{"p50 of 5 is rank 3", 5, 0.50, 3},
		{"p50 of 4 is rank 2", 4, 0.50, 2},
		{"p99 of 10 is rank 10", 10, 0.99, 10},
		{"p99 of 7 is rank 7", 7, 0.99, 7},
		{"p25 of 9 is rank 3", 9, 0.25, 3},
		{"p100 of 3 is rank 3", 3, 1.00, 3},
		{"p10 of 3 is rank 1", 3, 0.10, 1},
		{"tiny q clamps to rank 1", 21, 0.001, 1},
	}
	for _, tc := range cases {
		var h Histogram
		for v := 1; v <= tc.n; v++ {
			h.Record(time.Duration(v))
		}
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) over 1..%d = %v, want %v",
				tc.name, tc.q, tc.n, got, tc.want)
		}
	}
}

// TestQuantileEmpty keeps the empty-histogram contract.
func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}
