// Package loadgen is the open-loop load generator behind cmd/pnpload:
// Poisson arrivals at a fixed offered rate (arrivals never wait for
// completions, so server slowdowns surface as latency instead of
// silently throttling the load), a weighted predict/tune/job traffic
// mix over the model-key space, and HDR-style log-linear latency
// histograms with exact counts and bounded relative error, from which
// the per-op p50/p90/p99 and throughput report is derived.
package loadgen

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

// Log-linear bucketing: values below 2^subBits nanoseconds are exact;
// above, each power of two splits into 2^subBits sub-buckets, bounding
// the relative quantile error at ~1/2^subBits (≈3%) across the full
// nanoseconds-to-minutes range.
const (
	subBits   = 5
	subCount  = 1 << subBits
	numBucket = (64 - subBits + 1) * subCount
)

// Histogram records durations into log-linear buckets. Safe for
// concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts [numBucket]uint64
	total  uint64
	sumNs  float64
	maxNs  int64
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	oct := bits.Len64(v) - 1 // position of the leading bit, ≥ subBits
	sub := (v >> (uint(oct) - subBits)) & (subCount - 1)
	return (oct-subBits+1)*subCount + int(sub)
}

// bucketValue returns the midpoint duration a bucket represents.
func bucketValue(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	block := idx >> subBits
	sub := uint64(idx & (subCount - 1))
	oct := uint(block + subBits - 1)
	width := uint64(1) << (oct - subBits)
	return int64(uint64(1)<<oct + sub*width + width/2)
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.mu.Lock()
	h.counts[bucketIndex(uint64(ns))]++
	h.total++
	h.sumNs += float64(ns)
	if ns > h.maxNs {
		h.maxNs = ns
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Quantile returns the q-quantile (0 < q ≤ 1) as a duration, 0 when
// empty. The answer is the midpoint of the bucket holding the target
// rank, so it carries the bucketing's ~3% relative error. The rank is
// ceil(q·n): the smallest value with at least a q fraction of the
// observations at or below it (truncating instead would read one rank
// low whenever q·n is fractional — p90 of 15 samples is rank 14, not
// 13).
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	if target > h.total {
		target = h.total
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return time.Duration(bucketValue(i))
		}
	}
	return time.Duration(h.maxNs)
}

// Mean returns the arithmetic mean (exact, not bucketed).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sumNs / float64(h.total))
}

// Max returns the largest observation (exact).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.maxNs)
}

// Buckets exports the non-empty buckets (midpoint milliseconds →
// count) for report artifacts.
func (h *Histogram) Buckets() []BucketCount {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []BucketCount
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, BucketCount{
				UpToMillis: float64(bucketValue(i)) / 1e6,
				Count:      c,
			})
		}
	}
	return out
}

// BucketCount is one exported histogram bucket.
type BucketCount struct {
	UpToMillis float64 `json:"le_ms"`
	Count      uint64  `json:"count"`
}
