package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/client"
	"pnptuner/internal/kernels"
)

// Op names in reports.
const (
	OpPredict = "predict"
	OpTune    = "tune"
	OpJob     = "job"
)

// Config parameterizes one load run.
type Config struct {
	// Target is the base URL (a pnpgate or a single pnpserve).
	Target string
	// Rate is the offered arrival rate in requests/second (Poisson).
	Rate float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// MaxInFlight caps concurrent requests; arrivals beyond it are shed
	// and counted (default 256). Open-loop means completions never pace
	// arrivals — only this safety cap does.
	MaxInFlight int
	// Seed fixes the arrival process and traffic mix (default 1).
	Seed int64
	// PredictWeight/TuneWeight/JobWeight set the traffic mix (defaults
	// 0.8/0.1/0.1). Zero-total falls back to all-predict.
	PredictWeight, TuneWeight, JobWeight float64
	// Machines/Objectives/Scenarios span the model-key space requests
	// draw from uniformly (defaults: haswell+skylake × time+edp × full).
	Machines, Objectives, Scenarios []string
	// Budget is the per-tune execution budget (default 2).
	Budget int
	// Timeout bounds each request with its own context deadline; the
	// client stamps it onto X-Deadline, so the budget propagates to the
	// gate and replicas (0 = unbounded).
	Timeout time.Duration
	// Regions bounds how many distinct corpus regions requests cycle
	// through (default 4).
	Regions int
	// Client overrides the SDK client (tests); built from Target when
	// nil.
	Client *client.Client
}

func (c *Config) defaults() {
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PredictWeight+c.TuneWeight+c.JobWeight <= 0 {
		c.PredictWeight, c.TuneWeight, c.JobWeight = 0.8, 0.1, 0.1
	}
	if len(c.Machines) == 0 {
		c.Machines = []string{"haswell", "skylake"}
	}
	if len(c.Objectives) == 0 {
		c.Objectives = []string{"time", "edp"}
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = []string{"full"}
	}
	if c.Budget <= 0 {
		c.Budget = 2
	}
	if c.Regions <= 0 {
		c.Regions = 4
	}
}

// OpReport is one operation's share of a Report. Timeouts (the
// request's deadline budget ran out), Shed (the server load-shed with a
// typed retry-later code), and Degraded (the gate answered from its
// degraded path) are expected overload/chaos outcomes and counted
// apart; Errors is unexpected failures only.
type OpReport struct {
	Count      int64            `json:"count"`
	Errors     int64            `json:"errors"`
	Timeouts   int64            `json:"timeouts,omitempty"`
	Shed       int64            `json:"shed,omitempty"`
	Degraded   int64            `json:"degraded,omitempty"`
	ErrorCodes map[string]int64 `json:"error_codes,omitempty"`
	P50Millis  float64          `json:"p50_ms"`
	P90Millis  float64          `json:"p90_ms"`
	P99Millis  float64          `json:"p99_ms"`
	MeanMillis float64          `json:"mean_ms"`
	MaxMillis  float64          `json:"max_ms"`
	Histogram  []BucketCount    `json:"histogram,omitempty"`
}

// Report is one load run's outcome. Latency quantiles cover successful
// requests only; failures are tallied by stable API code per op.
// Errors counts unexpected failures; Timeouts and ShedByServer are the
// typed overload outcomes; Shed is arrivals the generator itself
// dropped at its in-flight cap (never sent); Degraded counts answers
// served from the gate's degraded path.
type Report struct {
	Target        string               `json:"target"`
	OfferedRate   float64              `json:"offered_rate_rps"`
	DurationSec   float64              `json:"duration_sec"`
	Sent          int64                `json:"sent"`
	Completed     int64                `json:"completed"`
	Errors        int64                `json:"errors"`
	Timeouts      int64                `json:"timeouts"`
	ShedByServer  int64                `json:"shed_by_server"`
	Degraded      int64                `json:"degraded"`
	Shed          int64                `json:"shed"`
	ThroughputRPS float64              `json:"throughput_rps"`
	Ops           map[string]*OpReport `json:"ops"`

	// ServerDeltas is the target's /metrics movement across the run
	// (after minus before, nonzero series only; see MetricsDelta) —
	// the server's own account of the load, embedded in the artifact
	// so a benchmark report pairs client-observed latency with
	// server-side queue/shed/cache behaviour. Empty when the target
	// predates /metrics or the scrape failed.
	ServerDeltas map[string]float64 `json:"server_metrics_delta,omitempty"`
}

// opStats accumulates one op's outcomes during the run.
type opStats struct {
	hist     Histogram
	count    atomic.Int64
	errs     atomic.Int64
	timeouts atomic.Int64
	shed     atomic.Int64
	degraded atomic.Int64
	mu       sync.Mutex
	byCode   map[string]int64
}

func (s *opStats) fail(err error) {
	code := client.ErrorCode(err)
	switch {
	case code == api.CodeDeadlineExceeded || errors.Is(err, context.DeadlineExceeded):
		// The budget ran out — server-side typed shed or the client's
		// own deadline firing first; either way the same outcome.
		s.timeouts.Add(1)
		if code == "" {
			code = api.CodeDeadlineExceeded
		}
	case code == api.CodeOverloaded || code == api.CodeQueueFull ||
		code == api.CodeUnavailable || code == api.CodeNoReplica:
		// Typed load-shed: the server refused before doing work and said
		// when to come back. Expected under overload, not an error.
		s.shed.Add(1)
	default:
		s.errs.Add(1)
		if code == "" {
			code = "transport"
		}
	}
	s.mu.Lock()
	if s.byCode == nil {
		s.byCode = map[string]int64{}
	}
	s.byCode[code]++
	s.mu.Unlock()
}

func (s *opStats) report(withHist bool) *OpReport {
	r := &OpReport{
		Count:      s.count.Load(),
		Errors:     s.errs.Load(),
		Timeouts:   s.timeouts.Load(),
		Shed:       s.shed.Load(),
		Degraded:   s.degraded.Load(),
		P50Millis:  ms(s.hist.Quantile(0.50)),
		P90Millis:  ms(s.hist.Quantile(0.90)),
		P99Millis:  ms(s.hist.Quantile(0.99)),
		MeanMillis: ms(s.hist.Mean()),
		MaxMillis:  ms(s.hist.Max()),
	}
	s.mu.Lock()
	if len(s.byCode) > 0 {
		r.ErrorCodes = make(map[string]int64, len(s.byCode))
		for k, v := range s.byCode {
			r.ErrorCodes[k] = v
		}
	}
	s.mu.Unlock()
	if withHist {
		r.Histogram = s.hist.Buckets()
	}
	return r
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// Run drives the configured load until Duration elapses (or ctx is
// cancelled), waits for stragglers, and returns the report.
// withHistograms includes the raw buckets in the artifact.
func Run(ctx context.Context, cfg Config, withHistograms bool) (*Report, error) {
	cfg.defaults()
	cl := cfg.Client
	if cl == nil {
		if cfg.Target == "" {
			return nil, fmt.Errorf("loadgen: no target configured")
		}
		cl = client.New(cfg.Target)
	}

	// Pre-marshal the graphs and region IDs traffic cycles through, so
	// generation cost stays off the measured path.
	corpus := kernels.MustCompile()
	n := cfg.Regions
	if n > len(corpus.Regions) {
		n = len(corpus.Regions)
	}
	graphs := make([]api.RawObject, n)
	regions := make([]string, n)
	for i := 0; i < n; i++ {
		b, err := json.Marshal(corpus.Regions[i].Graph)
		if err != nil {
			return nil, fmt.Errorf("loadgen: marshal region graph: %w", err)
		}
		graphs[i], regions[i] = b, corpus.Regions[i].ID
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	wsum := cfg.PredictWeight + cfg.TuneWeight + cfg.JobWeight
	stats := map[string]*opStats{OpPredict: {}, OpTune: {}, OpJob: {}}
	var sent, shed atomic.Int64
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		// Poisson arrivals: exponential inter-arrival gaps.
		gap := time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		time.Sleep(gap)

		// Draw the whole request on the generator goroutine so the rng
		// stays single-threaded and the run is reproducible per seed.
		var op string
		switch w := rng.Float64() * wsum; {
		case w < cfg.PredictWeight:
			op = OpPredict
		case w < cfg.PredictWeight+cfg.TuneWeight:
			op = OpTune
		default:
			op = OpJob
		}
		machine := cfg.Machines[rng.Intn(len(cfg.Machines))]
		objective := cfg.Objectives[rng.Intn(len(cfg.Objectives))]
		scenario := cfg.Scenarios[rng.Intn(len(cfg.Scenarios))]
		region := rng.Intn(n)
		seed := rng.Uint64()

		select {
		case sem <- struct{}{}:
		default:
			shed.Add(1)
			continue
		}
		sent.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			st := stats[op]
			st.count.Add(1)
			rctx, cancel := ctx, func() {}
			if cfg.Timeout > 0 {
				rctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
			}
			defer cancel()
			t0 := time.Now()
			var err error
			switch op {
			case OpPredict:
				var out *api.PredictResponse
				out, err = cl.Predict(rctx, api.PredictRequest{
					Machine: machine, Objective: objective, Scenario: scenario,
					Graph: graphs[region],
				})
				if err == nil && out.Degraded {
					st.degraded.Add(1)
				}
			case OpTune:
				_, err = cl.Tune(rctx, api.TuneRequest{
					Machine: machine, Objective: objective, Scenario: scenario,
					Strategy: "bliss", RegionID: regions[region],
					Budget: cfg.Budget, Seed: seed,
				})
			case OpJob:
				var job *api.Job
				job, err = cl.TuneAsync(rctx, api.TuneRequest{
					Machine: machine, Objective: objective, Scenario: scenario,
					Strategy: "bliss", RegionID: regions[region],
					Budget: cfg.Budget, Seed: seed,
				})
				if err == nil {
					// The job op's latency is submit → terminal.
					_, err = cl.Wait(rctx, job.ID, 5*time.Millisecond)
				}
			}
			if err != nil {
				st.fail(err)
				return
			}
			st.hist.Record(time.Since(t0))
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Target:      cfg.Target,
		OfferedRate: cfg.Rate,
		DurationSec: elapsed.Seconds(),
		Sent:        sent.Load(),
		Shed:        shed.Load(),
		Ops:         map[string]*OpReport{},
	}
	for op, st := range stats {
		r := st.report(withHistograms)
		rep.Ops[op] = r
		rep.Completed += r.Count - r.Errors - r.Timeouts - r.Shed
		rep.Errors += r.Errors
		rep.Timeouts += r.Timeouts
		rep.ShedByServer += r.Shed
		rep.Degraded += r.Degraded
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Completed) / elapsed.Seconds()
	}
	if math.IsNaN(rep.ThroughputRPS) {
		rep.ThroughputRPS = 0
	}
	return rep, nil
}
