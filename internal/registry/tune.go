package registry

import (
	"context"
	"errors"
	"fmt"

	"pnptuner/internal/api"
	"pnptuner/internal/autotune"
	"pnptuner/internal/bliss"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/measure"
	"pnptuner/internal/opentuner"
	"pnptuner/internal/papi"
)

// tuneStrategies maps the wire names to their default budgets.
var tuneStrategies = map[string]int{
	"gnn":       0,
	"hybrid":    autotune.HybridK,
	"bliss":     bliss.Budget,
	"opentuner": opentuner.Budget,
}

// tuneSession is one fully validated tune request, ready to run. The
// split matters for async jobs: prepTune runs on the request goroutine
// so malformed requests fail with 4xx before a job is ever created,
// while run — which may train a model and replays engine sessions —
// runs wherever the caller wants (inline for sync, a job-store worker
// for async) under a cancellable context.
type tuneSession struct {
	s     *Server
	req   api.TuneRequest    // normalized: scenario defaulted, budget resolved
	joint autotune.Objective // nil for the per-cap time objective
	d     *dataset.Dataset
	rd    *dataset.RegionData
	seed  uint64
}

// prepTune validates req and binds it to its corpus region. Every error
// here is the client's (a stable 4xx code); failures after it are
// server-side.
func (s *Server) prepTune(req api.TuneRequest) (*tuneSession, *api.ErrorInfo) {
	defBudget, ok := tuneStrategies[req.Strategy]
	if !ok {
		return nil, api.Errorf(api.CodeBadRequest,
			"unknown strategy %q (valid: gnn, bliss, opentuner, hybrid)", req.Strategy)
	}
	if req.Budget < 0 || req.Budget > api.MaxTuneBudget {
		return nil, api.Errorf(api.CodeBudgetExceeded,
			"budget %d outside [0, %d]", req.Budget, api.MaxTuneBudget)
	}
	if req.MeasureBudget < 0 || req.MeasureBudget > api.MaxMeasureBudget {
		return nil, api.Errorf(api.CodeBudgetExceeded,
			"measure_budget %d outside [0, %d]", req.MeasureBudget, api.MaxMeasureBudget)
	}
	if req.Budget == 0 {
		req.Budget = defBudget
	}
	if req.Scenario == "" {
		req.Scenario = ScenarioFull
	}
	modelDriven := req.Strategy == "gnn" || req.Strategy == "hybrid"

	// Objective validation: model strategies serve the registry's
	// objectives; the searches additionally tune raw energy.
	var joint autotune.Objective
	switch req.Objective {
	case ObjectiveTime:
	case ObjectiveEDP:
		joint = autotune.EDP{}
	case "energy":
		if modelDriven {
			return nil, api.Errorf(api.CodeBadRequest,
				"objective \"energy\" has no trained model; use strategy bliss or opentuner")
		}
		joint = autotune.Energy{}
	default:
		return nil, api.Errorf(api.CodeBadRequest,
			"unknown objective %q (valid: time, edp, energy)", req.Objective)
	}
	if modelDriven {
		key := Key{Machine: req.Machine, Scenario: req.Scenario, Objective: req.Objective}
		if err := key.Validate(); err != nil {
			return nil, api.Errorf(api.CodeBadRequest, "%v", err)
		}
	}

	m, err := hw.ByName(req.Machine)
	if err != nil {
		return nil, api.Errorf(api.CodeBadRequest, "%v", err)
	}
	// The exhaustive sweep backing the replay evaluator; built once per
	// machine and cached process-wide.
	d, err := dataset.Build(m)
	if err != nil {
		return nil, api.Errorf(api.CodeInternal, "%v", err)
	}
	rd := d.Region(req.RegionID)
	if rd == nil {
		return nil, api.Errorf(api.CodeRegionNotFound,
			"unknown region %q: tuning replays the measurement corpus, so the region must be a corpus region ID", req.RegionID)
	}
	seed := req.Seed
	if seed == 0 {
		seed = rd.Region.Seed
	}
	return &tuneSession{s: s, req: req, joint: joint, d: d, rd: rd, seed: seed}, nil
}

// run executes the session's engine sessions under ctx: model-driven
// strategies first shortlist through the micro-batcher (training the
// model on first use), then each head's session runs the
// propose/observe loop, which checks ctx before every measurement. The
// response is bit-identical for the same request whether run inline
// (sync /v1/tune, legacy /tune) or on a job-store worker (async).
func (ts *tuneSession) run(ctx context.Context) (*api.TuneResponse, *api.ErrorInfo) {
	req, d, rd := ts.req, ts.d, ts.rd
	modelDriven := req.Strategy == "gnn" || req.Strategy == "hybrid"

	// A measurement budget swaps the replay evaluator for real
	// executions on the simulated hardware, split evenly across the
	// session's heads (one per cap for the time objective).
	heads := 1
	if req.Objective == ObjectiveTime {
		heads = len(d.Space.Caps())
	}
	var runner *measure.Runner
	share := 0
	if req.MeasureBudget > 0 {
		runner = measure.NewRunner(d.Machine, rd.Region, d.Space, ts.seed, -1)
		// Deadline propagation into the engine: once the request budget is
		// spent, measured runs stop consuming (simulated) machine time.
		runner.Bind(ctx)
		runner.OnSample(func(measure.Sample) { ts.s.tele.measureRuns.Inc() })
		if share = req.MeasureBudget / heads; share < 1 {
			share = 1
		}
		defer func() {
			// Even a cancelled session's real runs are real data: feed
			// whatever was measured back for refresh retraining.
			// Objective "energy" has no trained model to refresh.
			if req.Objective == ObjectiveTime || req.Objective == ObjectiveEDP {
				key := Key{Machine: req.Machine, Scenario: req.Scenario, Objective: req.Objective}
				ts.s.recordMeasured(key, runner.DatasetSamples())
			}
		}()
	}

	// Model-driven strategies shortlist through the micro-batcher (the
	// model is not goroutine-safe; the batcher is its serialization
	// point). k=1 is the pure static pick.
	var shortlists [][]int
	modelVersion := 0
	if modelDriven {
		key := Key{Machine: req.Machine, Scenario: req.Scenario, Objective: req.Objective}
		k := 1
		if req.Strategy == "hybrid" {
			k = req.Budget
			if runner != nil {
				k = share
			}
		}
		var err error
		shortlists, modelVersion, err = ts.s.modelShortlists(ctx, key, rd, k)
		if err != nil {
			return nil, resolveErrInfo(err)
		}
	}

	budget := req.Budget
	if runner != nil && req.Strategy != "gnn" {
		budget = share
	}
	entry := tuneEntry(req.Strategy, budget, shortlists)
	if runner != nil && req.Strategy != "gnn" {
		entry.Eval = func(_ *dataset.RegionData, t autotune.Task) autotune.Evaluator {
			return runner.Evaluator(t.Obj)
		}
	}
	// Telemetry taps: per-strategy handles resolve once per session, the
	// engine loop pays one atomic add per measurement.
	sessionC := ts.s.tele.engineSessions.With(req.Strategy)
	evalC := ts.s.tele.engineEvals.With(req.Strategy)
	entry.Observe = func(int, float64) { evalC.Inc() }
	resp := &api.TuneResponse{
		RegionID:     req.RegionID,
		Machine:      req.Machine,
		Objective:    req.Objective,
		Strategy:     req.Strategy,
		Budget:       entry.Budget,
		ModelVersion: modelVersion,
	}
	session := func(obj autotune.Objective) autotune.Result {
		sessionC.Inc()
		task := autotune.Task{
			Problem:  autotune.Problem{Obj: obj, Space: d.Space, Seed: ts.seed},
			RegionID: req.RegionID,
		}
		return autotune.RunEntryContext(ctx, entry, rd, task)
	}
	if req.Objective == ObjectiveTime {
		// One session per power cap, mirroring /v1/predict's shape.
		for ci, capW := range d.Space.Caps() {
			if ctx.Err() != nil {
				return nil, cancelInfo(ctx)
			}
			obj := autotune.TimeUnderCap{Cap: ci}
			res := session(obj)
			_, oracleV := autotune.Oracle(rd, d.Space, obj)
			resp.Picks = append(resp.Picks, api.TunePick{
				CapW:        capW,
				ConfigIndex: res.Best,
				Config:      d.Space.Configs[res.Best].String(),
				Evals:       res.Evals,
				OracleFrac:  oracleV / obj.Value(rd, d.Space, res.Best),
				Trace:       tracePoints(res.Trace),
			})
		}
	} else {
		res := session(ts.joint)
		capW, cfg := d.Space.At(res.Best)
		_, oracleV := autotune.Oracle(rd, d.Space, ts.joint)
		resp.Picks = []api.TunePick{{
			CapW:        capW,
			ConfigIndex: res.Best,
			Config:      cfg.String(),
			Evals:       res.Evals,
			OracleFrac:  oracleV / ts.joint.Value(rd, d.Space, res.Best),
			Trace:       tracePoints(res.Trace),
		}}
	}
	// The zero-execution gnn strategy spends its measurement budget
	// verifying the picks: one real run each, as far as the budget goes.
	if runner != nil && req.Strategy == "gnn" {
		for i, pick := range resp.Picks {
			if runner.Runs() >= req.MeasureBudget || ctx.Err() != nil {
				break
			}
			var obj autotune.Objective = ts.joint
			if req.Objective == ObjectiveTime {
				obj = autotune.TimeUnderCap{Cap: i}
			}
			runner.Evaluator(obj).Measure(pick.ConfigIndex)
		}
	}
	if ctx.Err() != nil {
		// Cancelled mid-way: a truncated session's picks must not
		// masquerade as the real result.
		return nil, cancelInfo(ctx)
	}
	if runner != nil {
		resp.MeasuredRuns = runner.Runs()
		resp.Samples = wireSamples(runner.Samples())
	}
	return resp, nil
}

// wireSamples converts a measurement session's samples to the contract
// shape.
func wireSamples(ss []measure.Sample) []api.MeasuredSample {
	out := make([]api.MeasuredSample, len(ss))
	for i, s := range ss {
		out[i] = api.MeasuredSample{
			CapW:        s.CapW,
			ConfigIndex: s.ConfigIndex,
			Config:      s.Config,
			TimeSec:     s.Result.TimeSec,
			EnergyJ:     s.EnergyJ,
			Value:       s.Value,
			Throttled:   s.Result.Throttled,
		}
	}
	return out
}

// tracePoints converts an engine trace to the wire shape.
func tracePoints(trace []autotune.Observation) []api.TracePoint {
	if len(trace) == 0 {
		return nil
	}
	out := make([]api.TracePoint, len(trace))
	for i, o := range trace {
		out[i] = api.TracePoint{ConfigIndex: o.Config, Value: o.Value}
	}
	return out
}

// tuneEntry builds the engine entry for a tune session. shortlists is
// the per-head model proposal list for model-driven strategies (head =
// cap index for the time objective, a single joint head otherwise).
func tuneEntry(strategy string, budget int, shortlists [][]int) autotune.Entry {
	switch strategy {
	case "gnn":
		return autotune.FixedEntry("gnn", func(t autotune.Task) int {
			return shortlists[tuneHead(t)][0]
		})
	case "hybrid":
		e := autotune.HybridEntry("hybrid", func(t autotune.Task) []int {
			return shortlists[tuneHead(t)]
		})
		e.Budget = budget
		return e
	case "bliss":
		e := bliss.Entry("bliss")
		e.Budget = budget
		return e
	default:
		e := opentuner.Entry("opentuner")
		e.Budget = budget
		return e
	}
}

// tuneHead maps a task's objective to the serving model's head index.
func tuneHead(t autotune.Task) int {
	if o, ok := t.Obj.(autotune.TimeUnderCap); ok {
		return o.Cap
	}
	return 0
}

// modelShortlists resolves the key's model and returns each head's top-k
// classes for the region's graph, routed through the micro-batcher so
// tuning traffic batches with /v1/predict traffic on the shared model,
// plus the serving model's version.
func (s *Server) modelShortlists(ctx context.Context, key Key, rd *dataset.RegionData, k int) ([][]int, int, error) {
	b, err := s.batcherFor(ctx, key)
	if err != nil {
		return nil, 0, err
	}
	var extras []float64
	switch b.model.ExtraDim {
	case 0:
	case papi.NumFeatures:
		f := rd.Counters.Features()
		extras = f[:]
	default:
		return nil, 0, fmt.Errorf("registry: model %s wants %d extra features; tuning can only supply corpus counters", key, b.model.ExtraDim)
	}
	lists, err := b.PredictTopKContext(ctx, Request{Graph: rd.Region.Graph, Extras: extras}, k)
	if err != nil {
		return nil, 0, err
	}
	return lists, b.Meta.Version, nil
}

// cancelInfo maps a mid-session context failure to its wire error: a
// spent deadline budget is typed deadline_exceeded (retrying cannot
// un-spend it), everything else is the retryable unavailable.
func cancelInfo(ctx context.Context) *api.ErrorInfo {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return api.Errorf(api.CodeDeadlineExceeded, "request budget spent mid-session")
	}
	return api.Errorf(api.CodeUnavailable, "session cancelled: %v", ctx.Err())
}

// resolveErrInfo maps a model-resolve or batcher failure to its wire
// error.
func resolveErrInfo(err error) *api.ErrorInfo {
	switch {
	case errors.Is(err, ErrModelNotFound):
		return api.Errorf(api.CodeModelNotFound, "%v", err)
	case errors.Is(err, ErrClosed):
		return api.Errorf(api.CodeUnavailable, "%v", err)
	case errors.Is(err, ErrOverloaded):
		return api.Errorf(api.CodeOverloaded, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		return api.Errorf(api.CodeDeadlineExceeded, "request budget spent before the model answered")
	case errors.Is(err, context.Canceled):
		return api.Errorf(api.CodeUnavailable, "%v", err)
	}
	return api.Errorf(api.CodeInternal, "%v", err)
}
