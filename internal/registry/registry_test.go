package registry

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pnptuner/internal/core"
	"pnptuner/internal/hw"
	"pnptuner/internal/kernels"
	"pnptuner/internal/space"
)

// tinyModel builds a small deterministic model without training (the
// seeded initialization is reproducible, which is all registry semantics
// need) plus metadata consistent with the key and the real search space
// (so the staleness check on disk loads passes).
func tinyModel(k Key) (*core.Model, core.ModelMeta) {
	c := kernels.MustCompile()
	mach, err := hw.ByName(k.Machine)
	if err != nil {
		panic(err)
	}
	sp := space.New(mach)
	cfg := core.DefaultModelConfig()
	cfg.EmbedDim, cfg.Hidden, cfg.Epochs = 6, 6, 0
	nHeads, classes := len(sp.Caps()), 16
	if k.Objective == ObjectiveEDP {
		nHeads, classes = 1, 64
	}
	m := core.NewModel(cfg, c.Vocab.Size(), nHeads, classes)
	meta := core.ModelMeta{
		Machine: k.Machine, Scenario: k.Scenario, Objective: k.Objective,
		Caps:       append([]float64(nil), sp.Caps()...),
		NumConfigs: sp.NumConfigs(), NumJoint: sp.NumJoint(),
		VocabSize: c.Vocab.Size(),
	}
	return m, meta
}

// countingTrainer counts invocations and dawdles a little so concurrent
// Gets genuinely overlap the training window.
func countingTrainer(calls *atomic.Int32) TrainFunc {
	return func(k Key) (*core.Model, core.ModelMeta, error) {
		calls.Add(1)
		time.Sleep(20 * time.Millisecond)
		m, meta := tinyModel(k)
		return m, meta, nil
	}
}

func TestKeyIDAndValidate(t *testing.T) {
	a := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	if a.ID() != a.ID() || len(a.ID()) != 24 {
		t.Fatalf("unstable or oddly sized id %q", a.ID())
	}
	b := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveEDP}
	if a.ID() == b.ID() {
		t.Fatal("distinct keys share an id")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Key{
		{Machine: "epyc", Scenario: ScenarioFull, Objective: ObjectiveTime},
		{Machine: "haswell", Scenario: ScenarioFull, Objective: "latency"},
		{Machine: "haswell", Scenario: "half", Objective: ObjectiveTime},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("key %v validated", bad)
		}
	}
	if err := (Key{Machine: "haswell", Scenario: "loocv:LULESH", Objective: ObjectiveTime}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSingleFlight is the core concurrency contract: N concurrent Gets of
// one missing key train exactly once and all observe the same entry.
func TestSingleFlight(t *testing.T) {
	var calls atomic.Int32
	reg, err := New("", 4, countingTrainer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	const n = 16
	entries := make([]*Entry, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := reg.Get(key)
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("trained %d times, want exactly 1", got)
	}
	for i := 1; i < n; i++ {
		if entries[i] != entries[0] {
			t.Fatal("concurrent Gets observed different entries")
		}
	}
	if st := reg.Stats(); st.Trained != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	var calls atomic.Int32
	reg, err := New("", 1, countingTrainer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	a := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	b := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveEDP}
	if _, err := reg.Get(a); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get(a); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := reg.Get(b); err != nil { // evicts a
		t.Fatal(err)
	}
	if _, err := reg.Get(a); err != nil { // miss again: no disk store, retrains
		t.Fatal(err)
	}
	st := reg.Stats()
	if st.Hits != 1 || st.Trained != 3 || st.Evicted < 2 {
		t.Fatalf("stats = %+v, want 1 hit, 3 trainings, ≥2 evictions", st)
	}
}

// TestDiskStoreRoundTrip: a second registry over the same directory must
// deserialize the stored model instead of retraining, bit-identically.
func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int32
	reg1, err := New(dir, 2, countingTrainer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Machine: "skylake", Scenario: "loocv:gemm", Objective: ObjectiveTime}
	e1, err := reg1.Get(key)
	if err != nil {
		t.Fatal(err)
	}

	reg2, err := New(dir, 2, countingTrainer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := reg2.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("trained %d times across registries, want 1 (second loads from disk)", got)
	}
	if st := reg2.Stats(); st.DiskLoads != 1 || st.Trained != 0 {
		t.Fatalf("stats = %+v", st)
	}
	p1, p2 := e1.Model.Params(), e2.Model.Params()
	for i := range p1 {
		for j := range p1[i].W.Data {
			if math.Float64bits(p1[i].W.Data[j]) != math.Float64bits(p2[i].W.Data[j]) {
				t.Fatalf("stored model differs at %s[%d]", p1[i].Name, j)
			}
		}
	}
}

// TestDiskStoreRejectsStaleModel: a stored model whose metadata no
// longer matches this binary's search space or vocabulary must fail the
// load instead of silently recommending wrong config indices.
func TestDiskStoreRejectsStaleModel(t *testing.T) {
	dir := t.TempDir()
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	m, meta := tinyModel(key)
	meta.NumConfigs = 99 // a Table I grid this build does not have
	reg, err := New(dir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(reg.path(key), meta); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get(key); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("served a stale stored model (err %v)", err)
	}
}

// TestPersistFailureStillServes: a broken store must not turn successful
// training into a serving failure — the model serves from memory and the
// failure is counted.
func TestPersistFailureStillServes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	var calls atomic.Int32
	reg, err := New(dir, 2, countingTrainer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	// Replace the store directory with a plain file so every Save fails
	// (works even as root, unlike permission tricks).
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	e, err := reg.Get(key)
	if err != nil || e == nil {
		t.Fatalf("Get with broken store: %v", err)
	}
	st := reg.Stats()
	if st.Trained != 1 || st.PersistFailures != 1 {
		t.Fatalf("stats = %+v, want 1 trained + 1 persist failure", st)
	}
	// The cached entry keeps serving without retraining.
	if _, err := reg.Get(key); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("retrained despite cache: %d calls", calls.Load())
	}
}

func TestGetWithoutTrainerFails(t *testing.T) {
	reg, err := New("", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	if _, err := reg.Get(key); err == nil {
		t.Fatal("miss with no trainer succeeded")
	}
	// A failed resolve must not wedge the key: a later Get retries.
	if _, err := reg.Get(key); err == nil {
		t.Fatal("second miss succeeded")
	}
}

func TestListShowsCachedAndDisk(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int32
	reg, err := New(dir, 1, countingTrainer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	a := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	b := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveEDP}
	if _, err := reg.Get(a); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get(b); err != nil { // evicts a from memory; both on disk
		t.Fatal(err)
	}
	infos := reg.List()
	if len(infos) != 2 {
		t.Fatalf("listed %d models, want 2: %+v", len(infos), infos)
	}
	for _, info := range infos {
		if !info.OnDisk {
			t.Fatalf("%s not on disk", info.Key)
		}
		cachedWant := info.Key == b
		if info.Cached != cachedWant {
			t.Fatalf("%s cached=%v, want %v", info.Key, info.Cached, cachedWant)
		}
	}
}
