package registry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/autotune"
	"pnptuner/internal/core"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/kernels"
	"pnptuner/internal/measure"
	"pnptuner/internal/space"
)

// fullShapeModel builds an untrained model whose heads span the real
// config space — unlike tinyModel's truncated 16-class heads, it can be
// refresh-retrained against genuine dataset targets.
func fullShapeModel(k Key) (*core.Model, core.ModelMeta) {
	c := kernels.MustCompile()
	mach, err := hw.ByName(k.Machine)
	if err != nil {
		panic(err)
	}
	sp := space.New(mach)
	cfg := core.DefaultModelConfig()
	cfg.EmbedDim, cfg.Hidden, cfg.Epochs = 6, 6, 0
	nHeads, classes := len(sp.Caps()), sp.NumConfigs()
	if k.Objective == ObjectiveEDP {
		nHeads, classes = 1, sp.NumJoint()
	}
	m := core.NewModel(cfg, c.Vocab.Size(), nHeads, classes)
	meta := core.ModelMeta{
		Machine: k.Machine, Scenario: k.Scenario, Objective: k.Objective,
		Caps:       append([]float64(nil), sp.Caps()...),
		NumConfigs: sp.NumConfigs(), NumJoint: sp.NumJoint(),
		VocabSize: c.Vocab.Size(),
	}
	return m, meta
}

// newRefreshServer wires a server with the measure→learn loop enabled.
func newRefreshServer(t *testing.T, refresh RefreshConfig) (*Server, *httptest.Server) {
	t.Helper()
	reg, err := New("", 4, func(k Key) (*core.Model, core.ModelMeta, error) {
		m, meta := fullShapeModel(k)
		return m, meta, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := kernels.MustCompile()
	srv := NewServer(reg, c.Vocab, ServerConfig{
		MaxBatch: 8, MaxWait: 2 * time.Millisecond, Refresh: refresh,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// realSamples takes n real executions of corpus region 0 on the measure
// runner — the same path a measured tune session feeds the registry.
func realSamples(t testing.TB, machine string, seed uint64, n int) []dataset.MeasuredSample {
	t.Helper()
	m, err := hw.ByName(machine)
	if err != nil {
		t.Fatal(err)
	}
	c := kernels.MustCompile()
	sp := space.New(m)
	runner := measure.NewRunner(m, c.Regions[0], sp, seed, -1)
	ev := runner.Evaluator(autotune.TimeUnderCap{Cap: 0})
	for i := 0; i < n; i++ {
		ev.Measure(i % sp.NumConfigs())
	}
	return runner.DatasetSamples()
}

// cloneBumped clones an entry through its serialized form (exactly what
// Retrain does) and bumps the version, yielding a shadow candidate whose
// predictions tie the original bit-for-bit.
func cloneBumped(t *testing.T, e *Entry) *Entry {
	t.Helper()
	blob, err := e.Model.Marshal(e.Meta)
	if err != nil {
		t.Fatal(err)
	}
	m, meta, err := core.UnmarshalModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	meta.Normalize()
	meta.Version = e.Meta.Version + 1
	return &Entry{Key: e.Key, Model: m, Meta: meta}
}

func countEvents(history []api.VersionEvent, event string) int {
	n := 0
	for _, ev := range history {
		if ev.Event == event {
			n++
		}
	}
	return n
}

// TestRetrainIncrementsVersionAndConsumesSamples: the registry half of
// the loop — a refresh retrain clones the serving model, trains on the
// sample-refined dataset, and returns a new version carrying the
// consumed sample count, all without touching the serving entry.
func TestRetrainIncrementsVersionAndConsumesSamples(t *testing.T) {
	reg, err := New("", 4, func(k Key) (*core.Model, core.ModelMeta, error) {
		m, meta := fullShapeModel(k)
		return m, meta, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	cur, err := reg.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Meta.Version != 1 {
		t.Fatalf("fresh model version = %d, want 1", cur.Meta.Version)
	}

	if _, err := reg.Retrain(key, cur, 1); err == nil {
		t.Fatal("retrain with no measured samples succeeded")
	}

	samples := realSamples(t, key.Machine, 42, 6)
	reg.SampleLog(key).Append(samples...)
	next, err := reg.Retrain(key, cur, 1)
	if err != nil {
		t.Fatal(err)
	}
	if next.Meta.Version != 2 || next.Meta.Samples != len(samples) {
		t.Fatalf("retrained meta = v%d/%d samples, want v2/%d",
			next.Meta.Version, next.Meta.Samples, len(samples))
	}
	if cur.Meta.Version != 1 || next.Model == cur.Model {
		t.Fatal("retrain mutated the serving entry")
	}
	if got := reg.SampleLog(key).SinceTrain(); got != 0 {
		t.Fatalf("%d samples still pending after retrain, want 0", got)
	}

	id := key.ID()
	hist := reg.History(id)
	if countEvents(hist, api.EventTrained) != 2 { // initial train + refresh
		t.Fatalf("history = %+v, want 2 trained events", hist)
	}

	// Promotion installs the new version as the serving entry.
	reg.Promote(next)
	after, err := reg.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if after.Meta.Version != 2 {
		t.Fatalf("serving version after promote = %d, want 2", after.Meta.Version)
	}
	if countEvents(reg.History(id), api.EventPromoted) != 1 {
		t.Fatalf("history after promote = %+v", reg.History(id))
	}
}

// TestServerCanaryPromote: a shadow whose answers tie the serving
// version must be promoted at the end of the window, the serving version
// answering every request in between without interruption, and the
// promoted version taking over the batcher in place.
func TestServerCanaryPromote(t *testing.T) {
	srv, ts := newRefreshServer(t, RefreshConfig{Threshold: 1 << 30, CanaryWindow: 2})
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	body := predictBody(t, "haswell", ObjectiveTime, 0)

	before := postPredict(t, ts, api.PathPredict, body)
	if before.ModelVersion != 1 {
		t.Fatalf("serving version = %d, want 1", before.ModelVersion)
	}

	e, err := srv.reg.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	srv.startCanary(key, cloneBumped(t, e))
	if v := srv.canaryVersion(key.ID()); v != 2 {
		t.Fatalf("canary version = %d, want 2", v)
	}

	// The window's predicts are answered by v1 while the shadow scores.
	for i := 0; i < 2; i++ {
		during := postPredict(t, ts, api.PathPredict, body)
		if during.ModelVersion != 1 {
			t.Fatalf("predict %d mid-canary served v%d, want v1", i, during.ModelVersion)
		}
		if !reflect.DeepEqual(during.Picks, before.Picks) {
			t.Fatalf("picks changed mid-canary: %+v vs %+v", during.Picks, before.Picks)
		}
	}

	// Scoring runs off the request path, so the verdict lands asynchronously
	// shortly after the window's samples drain.
	deadline := time.Now().Add(30 * time.Second)
	for srv.canaryVersion(key.ID()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("canary verdict never landed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The tie promoted the shadow: v2 serves, identically (same weights).
	after := postPredict(t, ts, api.PathPredict, body)
	if after.ModelVersion != 2 {
		t.Fatalf("post-canary version = %d, want 2 (promoted)", after.ModelVersion)
	}
	if !reflect.DeepEqual(after.Picks, before.Picks) {
		t.Fatalf("promoted clone changed picks: %+v vs %+v", after.Picks, before.Picks)
	}
	if v := srv.canaryVersion(key.ID()); v != 0 {
		t.Fatalf("canary still in flight after verdict (v%d)", v)
	}
	promoted, err := srv.reg.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if promoted.Meta.Version != 2 {
		t.Fatalf("registry serves v%d after promote, want v2", promoted.Meta.Version)
	}
	if countEvents(srv.reg.History(key.ID()), api.EventPromoted) != 1 {
		t.Fatalf("history = %+v, want one promoted event", srv.reg.History(key.ID()))
	}
}

// TestServerCanaryDemote: a shadow that loses the window (here: scored
// against oracle-quality answers it cannot beat) is discarded — the
// serving version and its batcher stay exactly as they were.
func TestServerCanaryDemote(t *testing.T) {
	srv, ts := newRefreshServer(t, RefreshConfig{Threshold: 1 << 30, CanaryWindow: 2})
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	body := predictBody(t, "haswell", ObjectiveTime, 0)

	before := postPredict(t, ts, api.PathPredict, body)
	e, err := srv.reg.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	srv.startCanary(key, cloneBumped(t, e))
	srv.mu.Lock()
	c := srv.canaries[key.ID()]
	srv.mu.Unlock()
	if c == nil {
		t.Fatal("canary not installed")
	}

	// Score the shadow against the per-cap oracle picks. An untrained
	// tiny model cannot match the oracle on every head, so feeding the
	// window oracle-quality "serving" answers forces a loss.
	g := kernels.MustCompile().Regions[0].Graph
	rd, sp := srv.groundTruth(key, g.RegionID)
	if rd == nil {
		t.Fatal("corpus region has no ground truth")
	}
	oracle := make([]int, len(sp.Caps()))
	for h := range oracle {
		oracle[h], _ = autotune.Oracle(rd, sp, autotune.TimeUnderCap{Cap: h})
	}
	shadowPicks, err := c.b.Predict(Request{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if predictQuality(rd, sp, key.Objective, shadowPicks) >= predictQuality(rd, sp, key.Objective, oracle) {
		t.Fatal("untrained shadow matches the oracle; demote fixture broken")
	}
	for i := 0; i < 2; i++ {
		srv.scoreCanary(c, canarySample{g: g, curPicks: oracle})
	}

	if v := srv.canaryVersion(key.ID()); v != 0 {
		t.Fatalf("canary still in flight after losing window (v%d)", v)
	}
	hist := srv.reg.History(key.ID())
	if countEvents(hist, api.EventDemoted) != 1 || countEvents(hist, api.EventPromoted) != 0 {
		t.Fatalf("history = %+v, want one demoted and no promoted event", hist)
	}
	after := postPredict(t, ts, api.PathPredict, body)
	if after.ModelVersion != 1 || !reflect.DeepEqual(after.Picks, before.Picks) {
		t.Fatalf("demote disturbed serving: v%d %+v vs %+v", after.ModelVersion, after.Picks, before.Picks)
	}
	cur, err := srv.reg.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Meta.Version != 1 {
		t.Fatalf("registry version after demote = %d, want 1", cur.Meta.Version)
	}
}

// TestServerMeasuredTuneFeedsLoop is the end-to-end acceptance path: a
// tune session with a measurement budget executes for real, reports its
// runs and samples, feeds the registry's log, trips the refresh
// threshold, and the resulting canary reaches a verdict on live predict
// traffic — with the serving version answering uninterrupted throughout.
func TestServerMeasuredTuneFeedsLoop(t *testing.T) {
	srv, ts := newRefreshServer(t, RefreshConfig{Threshold: 4, CanaryWindow: 2, Epochs: 1})
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	body := predictBody(t, "haswell", ObjectiveTime, 0)
	c := kernels.MustCompile()

	before := postPredict(t, ts, api.PathPredict, body)
	if before.ModelVersion != 1 {
		t.Fatalf("serving version = %d, want 1", before.ModelVersion)
	}

	resp, tr := postTune(t, ts.URL, api.PathTune, tuneBody(t, api.TuneRequest{
		Machine: "haswell", Objective: ObjectiveTime, Strategy: "hybrid",
		RegionID: c.Regions[0].ID, Budget: 3, Seed: 7, MeasureBudget: 8,
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measured tune status %d", resp.StatusCode)
	}
	if tr.MeasuredRuns == 0 || len(tr.Samples) == 0 {
		t.Fatalf("measured tune reported no real runs: %+v", tr)
	}
	if tr.ModelVersion != 1 {
		t.Fatalf("measured tune served v%d, want v1", tr.ModelVersion)
	}
	for _, s := range tr.Samples {
		if s.TimeSec <= 0 || s.EnergyJ <= 0 || s.CapW <= 0 {
			t.Fatalf("degenerate sample %+v", s)
		}
	}

	// The samples tripped the threshold: a background retrain is under
	// way. Keep predicting — the traffic both proves v1 serves
	// uninterrupted and carries the canary to its verdict.
	id := key.ID()
	deadline := time.Now().Add(60 * time.Second)
	for {
		pred := postPredict(t, ts, api.PathPredict, body)
		if len(pred.Picks) == 0 {
			t.Fatalf("predict lost picks mid-refresh: %+v", pred)
		}
		hist := srv.reg.History(id)
		promoted := countEvents(hist, api.EventPromoted)
		demoted := countEvents(hist, api.EventDemoted)
		if promoted+demoted > 0 {
			cur, err := srv.reg.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			wantVersion := 1
			if promoted > 0 {
				wantVersion = 2
			}
			if cur.Meta.Version != wantVersion {
				t.Fatalf("verdict (%d promoted, %d demoted) but registry serves v%d",
					promoted, demoted, cur.Meta.Version)
			}
			if countEvents(hist, api.EventTrained) != 2 {
				t.Fatalf("history = %+v, want initial + refresh trained events", hist)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canary never reached a verdict; history = %+v", hist)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerModelDetail pins GET /v1/models/{id}: version, sample
// counters, and history are the loop's observability surface.
func TestServerModelDetail(t *testing.T) {
	srv, ts := newRefreshServer(t, RefreshConfig{Threshold: 1 << 30, CanaryWindow: 2})
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	postPredict(t, ts, api.PathPredict, predictBody(t, "haswell", ObjectiveTime, 0))

	get := func(id string) (*http.Response, api.ModelDetail) {
		resp, err := http.Get(ts.URL + api.PathModel(id))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		var det api.ModelDetail
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&det); err != nil {
				t.Fatal(err)
			}
		}
		return resp, det
	}

	id := key.ID()
	resp, det := get(id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detail status %d", resp.StatusCode)
	}
	if det.ID != id || det.Version != 1 || !det.Cached || det.Key.Machine != "haswell" {
		t.Fatalf("detail = %+v", det)
	}
	if countEvents(det.History, api.EventTrained) != 1 {
		t.Fatalf("detail history = %+v, want the initial train", det.History)
	}
	if det.CanaryVersion != 0 || det.PendingSamples != 0 {
		t.Fatalf("idle model shows refresh activity: %+v", det)
	}

	// Pending samples and the in-flight canary surface in the detail.
	srv.reg.SampleLog(key).Append(realSamples(t, key.Machine, 9, 3)...)
	e, err := srv.reg.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	srv.startCanary(key, cloneBumped(t, e))
	_, det = get(id)
	if det.PendingSamples != 3 || len(det.SampleRegions) == 0 {
		t.Fatalf("pending samples missing from detail: %+v", det)
	}
	if det.CanaryVersion != 2 {
		t.Fatalf("canary version in detail = %d, want 2", det.CanaryVersion)
	}

	resp, _ = get("000000000000000000000000")
	if body := decodeError(t, resp); body.Error.Code != api.CodeModelNotFound {
		t.Fatalf("unknown id code = %q, want model_not_found", body.Error.Code)
	}
	postResp, err := http.Post(ts.URL+api.PathModel(id), "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if body := decodeError(t, postResp); body.Error.Code != api.CodeMethodNotAllowed {
		t.Fatalf("POST detail code = %q, want method_not_allowed", body.Error.Code)
	}
	postResp.Body.Close()
}

// TestServerTuneMeasureBudgetRejected pins the measurement-budget
// validation to its stable code.
func TestServerTuneMeasureBudgetRejected(t *testing.T) {
	_, ts := newTestServer(t)
	c := kernels.MustCompile()
	for _, budget := range []int{-1, api.MaxMeasureBudget + 1} {
		resp, err := http.Post(ts.URL+api.PathTune, "application/json", bytes.NewReader(tuneBody(t, api.TuneRequest{
			Machine: "haswell", Objective: ObjectiveTime, Strategy: "hybrid",
			RegionID: c.Regions[0].ID, Budget: 3, MeasureBudget: budget,
		})))
		if err != nil {
			t.Fatal(err)
		}
		body := decodeError(t, resp)
		resp.Body.Close()
		if body.Error.Code != api.CodeBudgetExceeded {
			t.Fatalf("measure budget %d: code %q, want budget_exceeded", budget, body.Error.Code)
		}
	}
}
