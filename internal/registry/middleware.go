package registry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pnptuner/internal/api"
)

// RequestIDHeader carries the per-request correlation ID. Incoming
// values are echoed (so a gateway's IDs survive); absent ones are
// generated. Error envelopes repeat the ID in request_id.
const RequestIDHeader = "X-Request-ID"

// withRequestID ensures every request has a correlation ID, visible to
// the handler via the request headers and to the client via the
// response headers.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = randomHex(6)
			r.Header.Set(RequestIDHeader, id)
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r)
	})
}

// randomHex returns 2n hex chars of entropy — request correlation IDs
// and job IDs. crypto/rand never fails on supported platforms; a silent
// fallback would risk colliding IDs, so fail loudly.
func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic("registry: ID entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b)
}

// requestID returns the request's correlation ID (set by withRequestID).
func requestID(r *http.Request) string {
	return r.Header.Get(RequestIDHeader)
}

// withDeadline enforces the X-Deadline budget a client (or the gate)
// stamped on the request: an already-spent budget is shed before the
// handler runs (no body read, no batcher admission), and a live one
// becomes the request context's deadline so every downstream check —
// batcher queueing, engine measurements — observes it for free. A
// malformed header is a client error, not a silently unbounded request.
func withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		remaining, ok, err := api.ParseDeadline(r.Header.Get(api.DeadlineHeader))
		if err != nil {
			writeShed(w, r, api.Errorf(api.CodeBadRequest, "%v", err))
			return
		}
		if !ok {
			next.ServeHTTP(w, r)
			return
		}
		if remaining <= 0 {
			writeShed(w, r, api.Errorf(api.CodeDeadlineExceeded,
				"request budget already spent (%s %s)", api.DeadlineHeader, r.Header.Get(api.DeadlineHeader)))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), remaining)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// withLimit bounds a route's concurrent requests: past n in flight the
// request is shed with CodeOverloaded before any work (no body decode).
// The bound is per wrapped handler, so predict and tune each get their
// own — one route melting down cannot starve the other, and overload
// never wedges background work (refresh retrains and canary scoring run
// off-request and never pass through here).
func withLimit(n int, next http.HandlerFunc) http.HandlerFunc {
	if n <= 0 {
		return next
	}
	slots := make(chan struct{}, n)
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case slots <- struct{}{}:
			defer func() { <-slots }()
			next.ServeHTTP(w, r)
		default:
			writeShed(w, r, api.Errorf(api.CodeOverloaded,
				"route at its concurrency limit (%d in flight); retry later", n))
		}
	}
}

// writeShed renders a middleware-level error envelope, with the
// Retry-After hint for backpressure codes.
func writeShed(w http.ResponseWriter, r *http.Request, info *api.ErrorInfo) {
	if secs := api.RetryAfterSecs(info.Code); secs > 0 {
		w.Header().Set(api.RetryAfterHeader, strconv.Itoa(secs))
	}
	writeJSON(w, api.StatusFor(info.Code), api.ErrorBody{Error: *info, RequestID: requestID(r)})
}

// routeMetrics aggregates per-route request/error counters and latency,
// surfaced in /healthz. Routes are the mux patterns, not raw paths, so
// cardinality is fixed.
type routeMetrics struct {
	mu   sync.Mutex
	byRt map[string]*routeCounter
}

type routeCounter struct {
	count   int64
	errors  int64
	totalNs int64
}

func newRouteMetrics() *routeMetrics {
	return &routeMetrics{byRt: map[string]*routeCounter{}}
}

// wrap instruments h under the route label.
func (m *routeMetrics) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)

		m.mu.Lock()
		c := m.byRt[route]
		if c == nil {
			c = &routeCounter{}
			m.byRt[route] = c
		}
		c.count++
		if sw.status >= 400 {
			c.errors++
		}
		c.totalNs += int64(elapsed)
		m.mu.Unlock()
	}
}

// snapshot renders the counters as the wire stats map.
func (m *routeMetrics) snapshot() map[string]api.RouteStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]api.RouteStats, len(m.byRt))
	for route, c := range m.byRt {
		st := api.RouteStats{Count: c.count, Errors: c.errors}
		if c.count > 0 {
			st.AvgMillis = float64(c.totalNs) / float64(c.count) / 1e6
		}
		out[route] = st
	}
	return out
}

// statusWriter records the response status for the metrics wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
