package registry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/telemetry"
)

// RequestIDHeader carries the per-request correlation ID, which is
// also the request's trace ID. Incoming values are echoed (so a
// gateway's IDs survive); absent ones are generated. Error envelopes
// repeat the ID in request_id, and GET /v1/traces/{id} serves the
// request's span timeline under it. The echo/mint/ctx-inject
// middleware itself is telemetry.WithRequestID, shared with the gate.
const RequestIDHeader = telemetry.TraceHeader

// randomHex returns 2n hex chars of entropy — request correlation IDs
// and job IDs. crypto/rand never fails on supported platforms; a silent
// fallback would risk colliding IDs, so fail loudly.
func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic("registry: ID entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b)
}

// requestID returns the request's correlation ID (set by withRequestID).
func requestID(r *http.Request) string {
	return r.Header.Get(RequestIDHeader)
}

// withDeadline enforces the X-Deadline budget a client (or the gate)
// stamped on the request: an already-spent budget is shed before the
// handler runs (no body read, no batcher admission), and a live one
// becomes the request context's deadline so every downstream check —
// batcher queueing, engine measurements — observes it for free. A
// malformed header is a client error, not a silently unbounded request.
func withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		remaining, ok, err := api.ParseDeadline(r.Header.Get(api.DeadlineHeader))
		if err != nil {
			writeShed(w, r, api.Errorf(api.CodeBadRequest, "%v", err))
			return
		}
		if !ok {
			next.ServeHTTP(w, r)
			return
		}
		if remaining <= 0 {
			writeShed(w, r, api.Errorf(api.CodeDeadlineExceeded,
				"request budget already spent (%s %s)", api.DeadlineHeader, r.Header.Get(api.DeadlineHeader)))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), remaining)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// withLimit bounds a route's concurrent requests: past n in flight the
// request is shed with CodeOverloaded before any work (no body decode).
// The bound is per wrapped handler, so predict and tune each get their
// own — one route melting down cannot starve the other, and overload
// never wedges background work (refresh retrains and canary scoring run
// off-request and never pass through here).
func withLimit(n int, next http.HandlerFunc) http.HandlerFunc {
	if n <= 0 {
		return next
	}
	slots := make(chan struct{}, n)
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case slots <- struct{}{}:
			defer func() { <-slots }()
			next.ServeHTTP(w, r)
		default:
			writeShed(w, r, api.Errorf(api.CodeOverloaded,
				"route at its concurrency limit (%d in flight); retry later", n))
		}
	}
}

// writeShed renders a middleware-level error envelope, with the
// Retry-After hint for backpressure codes.
func writeShed(w http.ResponseWriter, r *http.Request, info *api.ErrorInfo) {
	if secs := api.RetryAfterSecs(info.Code); secs > 0 {
		w.Header().Set(api.RetryAfterHeader, strconv.Itoa(secs))
	}
	writeJSON(w, api.StatusFor(info.Code), api.ErrorBody{Error: *info, RequestID: requestID(r)})
}

// routeMetrics aggregates per-route request/error counters and latency,
// surfaced in /healthz and (when a telemetry registry is attached)
// exported as the pnp_http_* Prometheus families. Routes are the mux
// patterns, not raw paths, so cardinality is fixed.
type routeMetrics struct {
	mu   sync.Mutex
	byRt map[string]*routeCounter

	// Telemetry families (nil handles when tel was nil): per-route
	// handles resolve once in wrap, so the request path pays atomics,
	// not map lookups.
	reqs *telemetry.CounterVec
	errs *telemetry.CounterVec
	dur  *telemetry.HistogramVec
}

type routeCounter struct {
	count   int64
	errors  int64
	totalNs int64
}

func newRouteMetrics(tel *telemetry.Registry) *routeMetrics {
	m := &routeMetrics{byRt: map[string]*routeCounter{}}
	if tel != nil {
		m.reqs = tel.CounterVec("pnp_http_requests_total",
			"HTTP requests served, by mux route pattern.", "route")
		m.errs = tel.CounterVec("pnp_http_errors_total",
			"HTTP responses with status >= 400, by mux route pattern.", "route")
		m.dur = tel.HistogramVec("pnp_http_request_duration_seconds",
			"HTTP request latency, by mux route pattern.",
			telemetry.Seconds, telemetry.DurationBuckets, "route")
	}
	return m
}

// wrap instruments h under the route label.
func (m *routeMetrics) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	var reqC, errC *telemetry.Counter
	var durH *telemetry.Histogram
	if m.reqs != nil {
		reqC = m.reqs.With(route)
		errC = m.errs.With(route)
		durH = m.dur.With(route)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)

		reqC.Inc()
		if sw.status >= 400 {
			errC.Inc()
		}
		durH.ObserveDuration(elapsed)

		m.mu.Lock()
		c := m.byRt[route]
		if c == nil {
			c = &routeCounter{}
			m.byRt[route] = c
		}
		c.count++
		if sw.status >= 400 {
			c.errors++
		}
		c.totalNs += int64(elapsed)
		m.mu.Unlock()
	}
}

// snapshot renders the counters as the wire stats map.
func (m *routeMetrics) snapshot() map[string]api.RouteStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]api.RouteStats, len(m.byRt))
	for route, c := range m.byRt {
		st := api.RouteStats{Count: c.count, Errors: c.errors}
		if c.count > 0 {
			st.AvgMillis = float64(c.totalNs) / float64(c.count) / 1e6
		}
		out[route] = st
	}
	return out
}

// statusWriter records the response status for the metrics wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
