package registry

import (
	"strconv"
	"sync"
	"time"

	"pnptuner/internal/autotune"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/programl"
	"pnptuner/internal/space"
)

// Canary refresh: the serving half of the measure→learn loop. Tune
// sessions with a measurement budget feed real-execution samples into
// the registry's per-key SampleLog (recordMeasured); once a key
// accumulates RefreshConfig.Threshold of them, a background goroutine
// retrains the model incrementally on the sample-refined dataset and
// starts a shadow rollout: the current version keeps serving every
// request while the refreshed version re-answers the same live predict
// traffic, both scored against the corpus ground truth. After
// CanaryWindow scoreable predicts the verdict is final — the refreshed
// version is promoted (takes over serving and persists, version
// incremented) on a win or tie, demoted (discarded) on a loss. The
// serving version is never interrupted either way.

// RefreshConfig tunes the loop. The zero value disables it.
type RefreshConfig struct {
	// Threshold is the measured-sample count per model key that triggers
	// a background refresh retrain; 0 disables refresh entirely.
	Threshold int
	// CanaryWindow is how many scoreable live predicts the refreshed
	// model shadows before the promote/demote verdict (default 16).
	CanaryWindow int
	// Epochs is the fine-tune epoch count of one refresh retrain
	// (default 4; the full recipe's epoch count would retrain from how
	// the model already predicts, so a short burst suffices).
	Epochs int
}

// canary is one in-flight shadow rollout. Scoring runs off the request
// path: handlePredict enqueues onto the bounded scores queue and returns
// to the client immediately; the canary's worker goroutine drains the
// queue through scoreCanary. A full queue drops the sample (the window
// just takes a little longer to fill) — live predict latency never pays
// for a shadow forward pass.
type canary struct {
	key   Key
	entry *Entry   // the refreshed (vN+1) entry under evaluation
	b     *Batcher // its own batcher; the serving batcher is untouched

	scores  chan canarySample
	stopped chan struct{}
	stop    sync.Once

	mu        sync.Mutex
	scored    int
	curSum    float64 // serving version's summed prediction quality
	shadowSum float64 // refreshed version's
	decided   bool
}

// canarySample is one live predict captured for off-path shadow scoring.
// tid is the originating request's trace ID, so the shadow score lands
// as a span on the trace of the predict it shadowed.
type canarySample struct {
	g        *programl.Graph
	extras   []float64
	curPicks []int
	tid      string
}

// enqueue hands one live predict to the scoring worker without blocking:
// a full queue or a decided canary drops the sample.
func (c *canary) enqueue(s canarySample) bool {
	select {
	case <-c.stopped:
		return false
	default:
	}
	select {
	case c.scores <- s:
		return true
	default:
		return false
	}
}

// halt ends the scoring worker. Safe to call more than once.
func (c *canary) halt() { c.stop.Do(func() { close(c.stopped) }) }

// recordMeasured feeds one tune session's real-execution samples into
// the key's measurement log and kicks the refresh check. Partial streams
// from cancelled sessions land here too — a real run is a real run.
func (s *Server) recordMeasured(key Key, samples []dataset.MeasuredSample) {
	if len(samples) == 0 {
		return
	}
	s.reg.SampleLog(key).Append(samples...)
	s.maybeRefresh(key)
}

// maybeRefresh starts a background retrain for key when the sample
// threshold is met and no retrain or canary is already in flight.
func (s *Server) maybeRefresh(key Key) {
	if s.refresh.Threshold <= 0 {
		return
	}
	if s.reg.SampleLog(key).SinceTrain() < s.refresh.Threshold {
		return
	}
	id := key.ID()
	s.mu.Lock()
	if s.closed || s.refreshing[id] || s.canaries[id] != nil {
		s.mu.Unlock()
		return
	}
	s.refreshing[id] = true
	s.mu.Unlock()
	go s.refreshModel(key)
}

// refreshModel retrains key on its accumulated samples and hands the
// result to a canary. Runs on its own goroutine; the refreshing flag
// clears only after the canary is installed (or the retrain failed), so
// at most one refresh per key is ever in flight.
func (s *Server) refreshModel(key Key) {
	id := key.ID()
	defer func() {
		s.mu.Lock()
		delete(s.refreshing, id)
		s.mu.Unlock()
	}()
	cur, err := s.reg.Get(key)
	if err != nil {
		return
	}
	next, err := s.reg.Retrain(key, cur, s.refresh.Epochs)
	if err != nil {
		return
	}
	s.startCanary(key, next)
}

// startCanary publishes a shadow rollout for key serving entry next and
// starts its scoring worker. The shadow batcher is built the same way
// serving batchers are, so quantized servers canary quantized snapshots.
func (s *Server) startCanary(key Key, next *Entry) {
	b := s.newServingBatcher(next)
	id := key.ID()
	c := &canary{
		key: key, entry: next, b: b,
		// A few windows of headroom: scoring lags live traffic slightly,
		// and anything past that is droppable — the verdict only needs
		// CanaryWindow scoreable samples eventually, not every request.
		scores:  make(chan canarySample, 64),
		stopped: make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed || s.canaries[id] != nil {
		s.mu.Unlock()
		b.Close()
		return
	}
	s.canaries[id] = c
	s.mu.Unlock()
	go s.canaryWorker(c)
}

// canaryWorker drains one canary's score queue until the verdict (or
// shutdown) halts it.
func (s *Server) canaryWorker(c *canary) {
	for {
		select {
		case sample := <-c.scores:
			s.scoreCanary(c, sample)
		case <-c.stopped:
			return
		}
	}
}

// scoreCanary runs one live predict's graph through the shadow model and
// scores both versions against the corpus ground truth. Requests for
// regions outside the corpus can't be judged and don't count toward the
// window. sample.curPicks is what the serving version answered the
// client.
func (s *Server) scoreCanary(c *canary, sample canarySample) {
	key, g := c.key, sample.g
	rd, sp := s.groundTruth(key, g.RegionID)
	if rd == nil {
		return
	}
	start := time.Now()
	shadowPicks, err := c.b.Predict(Request{Graph: g, Extras: sample.extras})
	if err != nil {
		// A shadow that can't answer live traffic loses outright.
		s.finishCanary(c, false)
		return
	}
	cur := predictQuality(rd, sp, key.Objective, sample.curPicks)
	shadow := predictQuality(rd, sp, key.Objective, shadowPicks)
	s.tele.canaryScored.Inc()
	s.tele.rec.Add(sample.tid, "canary.score", start, time.Since(start),
		"shadow_version", strconv.Itoa(c.entry.Meta.Version))

	c.mu.Lock()
	if c.decided {
		c.mu.Unlock()
		return
	}
	c.scored++
	c.curSum += cur
	c.shadowSum += shadow
	decide := c.scored >= s.refresh.CanaryWindow
	if decide {
		c.decided = true
	}
	win := c.shadowSum >= c.curSum
	c.mu.Unlock()
	if decide {
		s.finishCanary(c, win)
	}
}

// groundTruth resolves the exhaustive-sweep region the canary scores
// against (nil when the region isn't in the corpus).
func (s *Server) groundTruth(key Key, regionID string) (*dataset.RegionData, *space.Space) {
	m, err := hw.ByName(key.Machine)
	if err != nil {
		return nil, nil
	}
	d, err := dataset.Build(m)
	if err != nil {
		return nil, nil
	}
	return d.Region(regionID), d.Space
}

// predictQuality scores one version's picks for a region: the mean
// oracle fraction over heads (1 = every head picked the optimum).
func predictQuality(rd *dataset.RegionData, sp *space.Space, objective string, picks []int) float64 {
	switch objective {
	case ObjectiveTime:
		sum := 0.0
		for h, p := range picks {
			obj := autotune.TimeUnderCap{Cap: h}
			_, best := autotune.Oracle(rd, sp, obj)
			sum += best / obj.Value(rd, sp, p)
		}
		return sum / float64(len(picks))
	case ObjectiveEDP:
		obj := autotune.EDP{}
		_, best := autotune.Oracle(rd, sp, obj)
		return best / obj.Value(rd, sp, picks[0])
	}
	return 0
}

// finishCanary resolves a shadow rollout: on promote the refreshed entry
// replaces the registry's serving entry and its batcher swaps in under
// the server lock (in-place, so concurrent predicts never miss); on
// demote the refreshed version is discarded. Either way the rollout is
// removed and its loser's batcher drains off-request.
func (s *Server) finishCanary(c *canary, promote bool) {
	c.halt()
	id := c.key.ID()
	s.mu.Lock()
	if s.canaries[id] != c {
		s.mu.Unlock()
		return
	}
	delete(s.canaries, id)
	if !promote {
		s.mu.Unlock()
		s.tele.canaryVerdicts.With("demote").Inc()
		s.reg.Demote(c.entry)
		go c.b.Close()
		return
	}
	var old *Batcher
	if v, ok := s.batchers.get(id); ok {
		old = v.(*Batcher)
		// put on an existing key replaces in place and evicts nothing,
		// so the displaced batcher must be closed explicitly.
		s.batchers.put(id, c.b)
	}
	s.mu.Unlock()
	s.tele.canaryVerdicts.With("promote").Inc()
	s.tele.promotions.Inc()
	s.reg.Promote(c.entry)
	if old != nil {
		go old.Close()
	} else {
		// The serving batcher was evicted mid-canary: don't force the
		// slot back; the promoted entry rebuilds on next use.
		go c.b.Close()
	}
}

// canaryVersion reports the shadow version in flight for id (0 = none).
func (s *Server) canaryVersion(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.canaries[id]; ok {
		return c.entry.Meta.Version
	}
	return 0
}
