package registry

import "container/list"

// lruCache is the one LRU implementation both the registry's model cache
// and the server's batcher table use. It is not goroutine-safe — callers
// hold their own mutex — and it never touches the values it evicts;
// owners decide what eviction means (the registry just drops entries,
// the server closes batchers).
type lruCache struct {
	capacity int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key → element holding *lruItem
}

type lruItem struct {
	key   string
	value any
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{capacity: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the value for key, marking it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).value, true
}

// put inserts (or refreshes) key at the front and returns whatever fell
// off the back past capacity, key and value both.
func (c *lruCache) put(key string, value any) (evicted []lruItem) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).value = value
		c.ll.MoveToFront(el)
		return nil
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, value: value})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		item := back.Value.(*lruItem)
		c.ll.Remove(back)
		delete(c.items, item.key)
		evicted = append(evicted, *item)
	}
	return evicted
}

// len returns the live entry count.
func (c *lruCache) len() int { return c.ll.Len() }

// all returns every value, most recently used first.
func (c *lruCache) all() []any {
	out := make([]any, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruItem).value)
	}
	return out
}

// clear empties the cache and returns everything it held.
func (c *lruCache) clear() []any {
	out := c.all()
	c.ll.Init()
	c.items = map[string]*list.Element{}
	return out
}
