package registry

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/programl"
	"pnptuner/internal/telemetry"
	"pnptuner/internal/vocab"
)

// Server is the HTTP face of the registry, serving the versioned v1
// contract (internal/api): a JSON predict endpoint that funnels
// concurrent requests through per-model micro-batchers, sync and async
// tuning sessions (the latter on a bounded job store), plus health and
// model introspection. Live batchers are LRU-bounded by the registry's
// cache capacity, so the operator's -cache flag bounds resident models,
// not just registry entries.
//
// Routes (legacy pre-versioning aliases in parentheses):
//
//	POST   /v1/predict    (/predict)  micro-batched model predictions
//	POST   /v1/tune       (/tune)     engine session; async:true → 202 + Job
//	GET    /v1/jobs                   list retained jobs
//	GET    /v1/jobs/{id}              poll one job's status/trace/result
//	DELETE /v1/jobs/{id}              cancel a queued or running job
//	GET    /v1/models     (/models)   registry contents
//	GET    /v1/models/{id}            one model's version + refresh detail
//	GET    /v1/models/{id}/blob       export a model's serialized blob
//	PUT    /v1/models/{id}/blob       import a peer's serialized blob
//	GET    /v1/healthz    (/healthz)  liveness, traffic and route counters
type Server struct {
	reg      *Registry
	vocab    *vocab.Vocabulary
	maxBatch int
	maxWait  time.Duration
	start    time.Time
	jobs     *JobStore
	tele     *serverTelemetry
	metrics  *routeMetrics
	inflight int
	quantize bool

	refresh RefreshConfig

	mu       sync.Mutex
	closed   bool
	batchers *lruCache // Key.ID() → *Batcher
	// closing marks evicted batchers still draining: creating a new
	// batcher for one of these ids waits on its channel, because the
	// registry may hand the same (not goroutine-safe) *core.Model back
	// out and two batchers must never forward on it concurrently.
	closing map[string]chan struct{}
	// canaries holds in-flight shadow rollouts (canary.go): the refreshed
	// model scoring against the serving one on live predict traffic.
	// refreshing marks keys with a background retrain under way.
	canaries   map[string]*canary
	refreshing map[string]bool

	served atomic.Int64
}

// ServerConfig tunes a server. Zero values get defaults.
type ServerConfig struct {
	// MaxBatch bounds every model's micro-batching window size
	// (default 16).
	MaxBatch int
	// MaxWait bounds how long the first request of a window waits for
	// company (default 2ms).
	MaxWait time.Duration
	// Jobs bounds the async tune job subsystem.
	Jobs JobStoreConfig
	// Refresh tunes the measure→learn loop (canary.go); the zero value
	// disables it.
	Refresh RefreshConfig
	// MaxInflight bounds each heavy route's (predict, tune) concurrent
	// requests; past it the route sheds with CodeOverloaded before any
	// work (default 1024, negative = unlimited).
	MaxInflight int
	// Quantize serves every model through a float32 quantized snapshot
	// (batcher forwards run the CompiledModel kernels). Picks are parity-
	// gated bit-equal to the float64 path; default off.
	Quantize bool
}

// NewServer builds a server over reg. v is the (frozen) corpus
// vocabulary incoming graphs are token-annotated with.
func NewServer(reg *Registry, v *vocab.Vocabulary, cfg ServerConfig) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * time.Millisecond
	}
	if cfg.Refresh.CanaryWindow <= 0 {
		cfg.Refresh.CanaryWindow = 16
	}
	if cfg.Refresh.Epochs <= 0 {
		cfg.Refresh.Epochs = 4
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 1024
	}
	jobs := NewJobStore(cfg.Jobs)
	tele := newServerTelemetry(reg, jobs)
	return &Server{
		reg:        reg,
		vocab:      v,
		maxBatch:   cfg.MaxBatch,
		maxWait:    cfg.MaxWait,
		refresh:    cfg.Refresh,
		quantize:   cfg.Quantize,
		start:      time.Now(),
		inflight:   cfg.MaxInflight,
		jobs:       jobs,
		tele:       tele,
		metrics:    newRouteMetrics(tele.tel),
		batchers:   newLRU(reg.Capacity()),
		closing:    map[string]chan struct{}{},
		canaries:   map[string]*canary{},
		refreshing: map[string]bool{},
	}
}

// Handler returns the route mux: the v1 surface, the deprecated legacy
// aliases, and the request-ID + per-route-metrics middleware around
// everything.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.metrics.wrap(pattern, h))
	}
	// The heavy routes share one limiter per handler across their v1 and
	// legacy mounts — the bound is on the work, not the spelling of the
	// path. Cheap routes (jobs, models, healthz) stay unlimited so
	// overload never blinds the operator or wedges the refresh loop.
	predict := withLimit(s.inflight, s.handlePredict)
	tune := withLimit(s.inflight, s.handleTune)
	route(api.PathPredict, predict)
	route(api.PathTune, tune)
	route(api.PathJobs, s.handleJobs)
	route(api.PathJobs+"/", s.handleJob)
	route(api.PathModels, s.handleModels)
	route(api.PathModels+"/", s.handleModelBlob)
	route(api.PathHealthz, s.handleHealthz)
	route(api.PathTraces+"/", s.handleTrace)
	// /metrics stays outside the route wrapper: scrapes must not skew the
	// pnp_http_* families they read, and the path is unversioned by
	// convention (Prometheus scrapers expect exactly /metrics).
	mux.Handle("/metrics", s.tele.tel.Handler())

	// Legacy pre-versioning aliases: same handlers, same bodies, plus
	// deprecation headers pointing at the successor route.
	legacy := func(pattern string, successor string, h http.HandlerFunc) {
		route(pattern, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", "<"+successor+">; rel=\"successor-version\"")
			h(w, r)
		})
	}
	legacy("/predict", api.PathPredict, predict)
	legacy("/tune", api.PathTune, tune)
	legacy("/models", api.PathModels, s.handleModels)
	legacy("/healthz", api.PathHealthz, s.handleHealthz)

	mux.HandleFunc("/", s.metrics.wrap("(unmatched)", func(w http.ResponseWriter, r *http.Request) {
		s.writeErr(w, r, api.Errorf(api.CodeNotFound, "no route %s %s", r.Method, r.URL.Path))
	}))
	return telemetry.WithRequestID(s.tele.rec, withDeadline(mux))
}

// Shutdown stops the server gracefully: the job store drains (queued
// jobs cancel immediately, running sessions finish until ctx expires and
// are then cancelled via their contexts), then every batcher closes and
// further requests get CodeUnavailable. Call after http.Server.Shutdown
// so no new requests race the drain.
func (s *Server) Shutdown(ctx context.Context) {
	// Jobs first: running sessions shortlist through the batchers, which
	// must outlive them.
	s.jobs.Stop(ctx)

	s.mu.Lock()
	s.closed = true
	evicted := s.batchers.clear()
	canaries := s.canaries
	s.canaries = map[string]*canary{}
	s.mu.Unlock()
	for _, v := range evicted {
		v.(*Batcher).Close()
	}
	for _, c := range canaries {
		c.halt()
		c.b.Close()
	}
}

// Close stops the server immediately: running jobs are cancelled rather
// than drained. A handler racing Close gets CodeUnavailable instead of
// leaking a goroutine.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
}

// batcherFor returns the micro-batcher serving key, resolving the model
// through the registry (training on miss) and starting the batcher on
// first use. Inserting past capacity evicts the least-recently-used
// batcher: it drains on its own goroutine (no global stall), but its id
// sits in s.closing until the drain finishes, and only a batcher whose
// id is fully closed may be recreated — the registry can hand the same
// (not goroutine-safe) *core.Model back out for an evicted key, and two
// batchers must never forward on one model concurrently.
// newServingBatcher builds the batcher for one registry entry, honoring
// the server's quantized-serving mode. A model that cannot quantize
// (never one this registry trains) falls back to float64 serving rather
// than failing the request.
func (s *Server) newServingBatcher(entry *Entry) *Batcher {
	var b *Batcher
	if s.quantize {
		if qb, err := NewQuantizedBatcher(entry.Model, s.maxBatch, s.maxWait); err == nil {
			b = qb
		}
	}
	if b == nil {
		b = NewBatcher(entry.Model, s.maxBatch, s.maxWait)
	}
	b.Meta = entry.Meta
	b.obs = s.tele.batch
	return b
}

func (s *Server) batcherFor(ctx context.Context, key Key) (*Batcher, error) {
	id := key.ID()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if v, ok := s.batchers.get(id); ok {
		s.mu.Unlock()
		return v.(*Batcher), nil
	}
	s.mu.Unlock()

	// Resolve outside the lock: Get may train for minutes, and other
	// models must keep serving meanwhile. Registry single-flight already
	// collapses duplicate resolves. ctx rides along for its values (the
	// trace ID crosses the peer-fetch hop); its cancellation does not.
	entry, err := s.reg.GetContext(ctx, key)
	if err != nil {
		return nil, err
	}

	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		if v, ok := s.batchers.get(id); ok {
			s.mu.Unlock()
			return v.(*Batcher), nil
		}
		if ch, ok := s.closing[id]; ok {
			// Our own previous batcher is still draining; wait it out.
			s.mu.Unlock()
			<-ch
			continue
		}
		b := s.newServingBatcher(entry)
		for _, item := range s.batchers.put(id, b) {
			ch := make(chan struct{})
			s.closing[item.key] = ch
			go func(old *Batcher, evictedID string, done chan struct{}) {
				old.Close()
				s.mu.Lock()
				delete(s.closing, evictedID)
				s.mu.Unlock()
				close(done)
			}(item.value.(*Batcher), item.key, ch)
		}
		s.mu.Unlock()
		return b, nil
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if info := requireMethod(r, http.MethodPost); info != nil {
		s.writeErr(w, r, info)
		return
	}
	var req api.PredictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, api.MaxRequestBytes)).Decode(&req); err != nil {
		s.writeErr(w, r, decodeErrInfo(err))
		return
	}
	if req.Scenario == "" {
		req.Scenario = ScenarioFull
	}
	key := Key{Machine: req.Machine, Scenario: req.Scenario, Objective: req.Objective}
	if err := key.Validate(); err != nil {
		s.writeErr(w, r, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	if len(req.Graph) == 0 || string(req.Graph) == "null" {
		s.writeErr(w, r, api.Errorf(api.CodeBadRequest, "request has no graph"))
		return
	}
	g := &programl.Graph{}
	if err := json.Unmarshal(req.Graph, g); err != nil {
		s.writeErr(w, r, api.Errorf(api.CodeBadRequest, "decode graph: %v", err))
		return
	}
	if len(g.Nodes) > api.MaxGraphNodes || len(g.Edges) > api.MaxGraphEdges {
		s.writeErr(w, r, api.Errorf(api.CodeGraphTooLarge,
			"graph too large (%d nodes, %d edges; limits %d, %d)",
			len(g.Nodes), len(g.Edges), api.MaxGraphNodes, api.MaxGraphEdges))
		return
	}
	s.vocab.Annotate(g)

	sp, err := key.Space()
	if err != nil {
		// Unreachable after key.Validate; classified as server-side.
		s.writeErr(w, r, api.Errorf(api.CodeInternal, "%v", err))
		return
	}

	b, err := s.batcherFor(r.Context(), key)
	if err != nil {
		// The key already validated, so resolve failures are server-side
		// (or the model is genuinely absent and untrainable).
		s.writeErr(w, r, resolveErrInfo(err))
		return
	}
	picks, err := b.PredictContext(r.Context(), Request{Graph: g, Extras: req.Counters})
	if err != nil {
		// Validation failures are the client's; forward failures, shed
		// admissions, expired budgets, and a batcher torn down mid-request
		// are not.
		info := api.Errorf(api.CodeBadRequest, "%v", err)
		switch {
		case errors.Is(err, ErrClosed):
			info.Code = api.CodeUnavailable
		case errors.Is(err, ErrForward):
			info.Code = api.CodeInternal
		case errors.Is(err, ErrOverloaded):
			info.Code = api.CodeOverloaded
		case errors.Is(err, context.DeadlineExceeded):
			info = api.Errorf(api.CodeDeadlineExceeded, "request budget spent before prediction completed")
		case errors.Is(err, context.Canceled):
			info = api.Errorf(api.CodeUnavailable, "request cancelled before prediction completed")
		}
		s.writeErr(w, r, info)
		return
	}

	resp := api.PredictResponse{
		RegionID:     g.RegionID,
		Machine:      key.Machine,
		Objective:    key.Objective,
		Scenario:     key.Scenario,
		ModelVersion: b.Meta.Version,
	}
	switch key.Objective {
	case ObjectiveTime:
		// One head per cap: picks[h] indexes the per-cap config space.
		for h, pick := range picks {
			resp.Picks = append(resp.Picks, api.Pick{
				CapW:        sp.Caps()[h],
				ConfigIndex: pick,
				Config:      sp.Configs[pick].String(),
			})
		}
	case ObjectiveEDP:
		// Single head over the joint space: decode (cap, config).
		capW, cfg := sp.At(picks[0])
		resp.Picks = []api.Pick{{CapW: capW, ConfigIndex: picks[0], Config: cfg.String()}}
	}
	// Shadow rollout: while a canary is in flight for this model, every
	// scoreable predict is also handed to the refreshed version, and the
	// window's verdict promotes or demotes it. Scoring is asynchronous —
	// the request only pays a non-blocking enqueue (a full queue drops the
	// sample), and the client's picks above always come from the serving
	// version — vN serves uninterrupted.
	s.mu.Lock()
	c := s.canaries[key.ID()]
	s.mu.Unlock()
	if c != nil {
		c.enqueue(canarySample{
			g: g, extras: req.Counters, curPicks: picks,
			tid: telemetry.TraceID(r.Context()),
		})
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	if info := requireMethod(r, http.MethodPost); info != nil {
		s.writeErr(w, r, info)
		return
	}
	var req api.TuneRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, api.MaxRequestBytes)).Decode(&req); err != nil {
		s.writeErr(w, r, decodeErrInfo(err))
		return
	}
	// Model-free strategies never touch the batchers, so without this
	// check a drained server would still run full engine sessions.
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		s.writeErr(w, r, api.Errorf(api.CodeUnavailable, "server is shutting down"))
		return
	}
	ts, info := s.prepTune(req)
	if info != nil {
		s.writeErr(w, r, info)
		return
	}
	if req.Async {
		job, info := s.jobs.Submit(ts.req, ts.run)
		if info != nil {
			s.writeErr(w, r, info)
			return
		}
		s.served.Add(1)
		writeJSON(w, http.StatusAccepted, job)
		return
	}
	resp, info := ts.run(r.Context())
	if info != nil {
		s.writeErr(w, r, info)
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handleJobs lists retained jobs, oldest first.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if info := requireMethod(r, http.MethodGet); info != nil {
		s.writeErr(w, r, info)
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.List())
}

// handleJob polls (GET) or cancels (DELETE) one job by ID.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, api.PathJobs+"/")
	if id == "" || strings.Contains(id, "/") {
		s.writeErr(w, r, api.Errorf(api.CodeNotFound, "no route %s", r.URL.Path))
		return
	}
	var job api.Job
	var info *api.ErrorInfo
	switch r.Method {
	case http.MethodGet:
		job, info = s.jobs.Get(id)
	case http.MethodDelete:
		job, info = s.jobs.Cancel(id)
	default:
		info = api.Errorf(api.CodeMethodNotAllowed, "%s not allowed (want GET or DELETE)", r.Method)
	}
	if info != nil {
		s.writeErr(w, r, info)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if info := requireMethod(r, http.MethodGet); info != nil {
		s.writeErr(w, r, info)
		return
	}
	s.mu.Lock()
	nBatchers := s.batchers.len()
	s.mu.Unlock()
	st := s.reg.Stats()
	writeJSON(w, http.StatusOK, api.Health{
		Status:          "ok",
		UptimeSec:       time.Since(s.start).Seconds(),
		Served:          s.served.Load(),
		Batchers:        nBatchers,
		CacheHits:       st.Hits,
		DiskLoads:       st.DiskLoads,
		ModelsTrained:   st.Trained,
		ModelsFetched:   st.Fetched,
		ModelsImported:  st.Imported,
		Evicted:         st.Evicted,
		PersistFailures: st.PersistFailures,
		Jobs:            s.jobs.Stats(),
		Routes:          s.metrics.snapshot(),
	})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if info := requireMethod(r, http.MethodGet); info != nil {
		s.writeErr(w, r, info)
		return
	}
	infos := s.reg.List()
	out := make([]api.ModelInfo, 0, len(infos))
	for _, info := range infos {
		meta, err := json.Marshal(info.Meta)
		if err != nil {
			meta = nil
		}
		out = append(out, api.ModelInfo{
			Key: api.ModelKey{
				Machine:   info.Key.Machine,
				Scenario:  info.Key.Scenario,
				Objective: info.Key.Objective,
			},
			ID:     info.ID,
			Cached: info.Cached,
			OnDisk: info.OnDisk,
			Meta:   meta,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// requireMethod returns the method_not_allowed error when r's method
// isn't want.
func requireMethod(r *http.Request, want string) *api.ErrorInfo {
	if r.Method != want {
		return api.Errorf(api.CodeMethodNotAllowed, "%s not allowed (want %s)", r.Method, want)
	}
	return nil
}

// decodeErrInfo classifies a request-body decode failure: an oversized
// body trips the contract ceiling, everything else is malformed JSON.
func decodeErrInfo(err error) *api.ErrorInfo {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return api.Errorf(api.CodeGraphTooLarge, "request body over %d bytes", api.MaxRequestBytes)
	}
	return api.Errorf(api.CodeBadRequest, "decode request: %v", err)
}

// writeErr renders the v1 error envelope with the request's correlation
// ID and the code's canonical status, plus the Retry-After hint for
// backpressure codes so clients can pace their retries off the server's
// word instead of guessing with backoff.
func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, info *api.ErrorInfo) {
	writeShed(w, r, info)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
