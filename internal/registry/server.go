package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pnptuner/internal/autotune"
	"pnptuner/internal/bliss"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/opentuner"
	"pnptuner/internal/papi"
	"pnptuner/internal/programl"
	"pnptuner/internal/vocab"
)

// Server is the HTTP face of the registry: a JSON predict endpoint that
// funnels concurrent requests through per-model micro-batchers, plus
// /healthz and /models introspection. Live batchers are LRU-bounded by
// the registry's cache capacity, so the operator's -cache flag bounds
// resident models, not just registry entries.
type Server struct {
	reg      *Registry
	vocab    *vocab.Vocabulary
	maxBatch int
	maxWait  time.Duration
	start    time.Time

	mu       sync.Mutex
	closed   bool
	batchers *lruCache // Key.ID() → *Batcher
	// closing marks evicted batchers still draining: creating a new
	// batcher for one of these ids waits on its channel, because the
	// registry may hand the same (not goroutine-safe) *core.Model back
	// out and two batchers must never forward on it concurrently.
	closing map[string]chan struct{}

	served atomic.Int64
}

// NewServer builds a server over reg. v is the (frozen) corpus vocabulary
// incoming graphs are token-annotated with; maxBatch/maxWait configure
// every model's micro-batching window.
func NewServer(reg *Registry, v *vocab.Vocabulary, maxBatch int, maxWait time.Duration) *Server {
	return &Server{
		reg:      reg,
		vocab:    v,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		start:    time.Now(),
		batchers: newLRU(reg.Capacity()),
		closing:  map[string]chan struct{}{},
	}
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/tune", s.handleTune)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/models", s.handleModels)
	return mux
}

// Close stops every batcher and refuses further batcher creation; a
// handler racing Close gets ErrClosed instead of leaking a goroutine.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	evicted := s.batchers.clear()
	s.mu.Unlock()
	for _, v := range evicted {
		v.(*Batcher).Close()
	}
}

// batcherFor returns the micro-batcher serving key, resolving the model
// through the registry (training on miss) and starting the batcher on
// first use. Inserting past capacity evicts the least-recently-used
// batcher: it drains on its own goroutine (no global stall), but its id
// sits in s.closing until the drain finishes, and only a batcher whose
// id is fully closed may be recreated — the registry can hand the same
// (not goroutine-safe) *core.Model back out for an evicted key, and two
// batchers must never forward on one model concurrently.
func (s *Server) batcherFor(key Key) (*Batcher, error) {
	id := key.ID()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if v, ok := s.batchers.get(id); ok {
		s.mu.Unlock()
		return v.(*Batcher), nil
	}
	s.mu.Unlock()

	// Resolve outside the lock: Get may train for minutes, and other
	// models must keep serving meanwhile. Registry single-flight already
	// collapses duplicate resolves.
	entry, err := s.reg.Get(key)
	if err != nil {
		return nil, err
	}

	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		if v, ok := s.batchers.get(id); ok {
			s.mu.Unlock()
			return v.(*Batcher), nil
		}
		if ch, ok := s.closing[id]; ok {
			// Our own previous batcher is still draining; wait it out.
			s.mu.Unlock()
			<-ch
			continue
		}
		b := NewBatcher(entry.Model, s.maxBatch, s.maxWait)
		for _, item := range s.batchers.put(id, b) {
			ch := make(chan struct{})
			s.closing[item.key] = ch
			go func(old *Batcher, evictedID string, done chan struct{}) {
				old.Close()
				s.mu.Lock()
				delete(s.closing, evictedID)
				s.mu.Unlock()
				close(done)
			}(item.value.(*Batcher), item.key, ch)
		}
		s.mu.Unlock()
		return b, nil
	}
}

// PredictRequest is the /predict wire format. Graph is the programl JSON
// export; node tokens are re-annotated server-side from the corpus
// vocabulary, so clients only need node texts. Counters feed models
// trained with dynamic features and must be omitted otherwise.
type PredictRequest struct {
	Machine   string          `json:"machine"`
	Objective string          `json:"objective"`
	Scenario  string          `json:"scenario,omitempty"` // default "full"
	Graph     json.RawMessage `json:"graph"`
	Counters  []float64       `json:"counters,omitempty"`
}

// Pick is one recommended configuration.
type Pick struct {
	CapW        float64 `json:"cap_w"`
	ConfigIndex int     `json:"config_index"`
	Config      string  `json:"config"`
}

// PredictResponse is the /predict reply: one pick per power cap for the
// time objective, a single joint (cap, config) pick for EDP.
type PredictResponse struct {
	RegionID  string `json:"region_id"`
	Machine   string `json:"machine"`
	Objective string `json:"objective"`
	Scenario  string `json:"scenario"`
	Picks     []Pick `json:"picks"`
}

// Request ceilings: a public endpoint must not let one client exhaust
// memory or stall the shared batch window. Corpus graphs are hundreds of
// nodes; these bounds are orders of magnitude above any legitimate use.
const (
	maxRequestBytes = 8 << 20
	maxGraphNodes   = 1 << 19
	maxGraphEdges   = 1 << 21
)

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.Scenario == "" {
		req.Scenario = ScenarioFull
	}
	key := Key{Machine: req.Machine, Scenario: req.Scenario, Objective: req.Objective}
	if err := key.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Graph) == 0 {
		httpError(w, http.StatusBadRequest, "request has no graph")
		return
	}
	g := &programl.Graph{}
	if err := json.Unmarshal(req.Graph, g); err != nil {
		httpError(w, http.StatusBadRequest, "decode graph: %v", err)
		return
	}
	if len(g.Nodes) > maxGraphNodes || len(g.Edges) > maxGraphEdges {
		httpError(w, http.StatusBadRequest, "graph too large (%d nodes, %d edges)",
			len(g.Nodes), len(g.Edges))
		return
	}
	s.vocab.Annotate(g)

	sp, err := key.Space()
	if err != nil {
		// Unreachable after key.Validate; classified as server-side.
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	b, err := s.batcherFor(key)
	if err != nil {
		// The key already validated, so resolve failures are server-side.
		httpError(w, resolveStatus(err), "%v", err)
		return
	}
	picks, err := b.Predict(Request{Graph: g, Extras: req.Counters})
	if err != nil {
		// Validation failures are the client's; forward failures and a
		// batcher torn down mid-request are not.
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, ErrForward):
			status = http.StatusInternalServerError
		}
		httpError(w, status, "%v", err)
		return
	}

	resp := PredictResponse{
		RegionID:  g.RegionID,
		Machine:   key.Machine,
		Objective: key.Objective,
		Scenario:  key.Scenario,
	}
	switch key.Objective {
	case ObjectiveTime:
		// One head per cap: picks[h] indexes the per-cap config space.
		for h, pick := range picks {
			resp.Picks = append(resp.Picks, Pick{
				CapW:        sp.Caps()[h],
				ConfigIndex: pick,
				Config:      sp.Configs[pick].String(),
			})
		}
	case ObjectiveEDP:
		// Single head over the joint space: decode (cap, config).
		capW, cfg := sp.At(picks[0])
		resp.Picks = []Pick{{CapW: capW, ConfigIndex: picks[0], Config: cfg.String()}}
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// TuneRequest is the /tune wire format: run a bounded autotune engine
// session for one corpus region. Strategies "gnn" and "hybrid" resolve
// the (machine, objective, scenario) model through the registry and
// shortlist through the micro-batcher; "bliss" and "opentuner" are
// model-free searches. The evaluator is noisy dataset replay — the
// simulated stand-in for executing the region under RAPL.
type TuneRequest struct {
	Machine   string `json:"machine"`
	Objective string `json:"objective"`
	Strategy  string `json:"strategy"`
	Scenario  string `json:"scenario,omitempty"` // default "full"
	RegionID  string `json:"region_id"`
	// Budget is the executions granted per tuning task (0 = the
	// strategy's default; capped at MaxTuneBudget).
	Budget int `json:"budget,omitempty"`
	// Seed decorrelates tuning runs (0 = the region's corpus seed).
	Seed uint64 `json:"seed,omitempty"`
}

// TunePick is one recommended configuration with its session cost and
// quality.
type TunePick struct {
	CapW        float64 `json:"cap_w"`
	ConfigIndex int     `json:"config_index"`
	Config      string  `json:"config"`
	Evals       int     `json:"evals"`
	// OracleFrac is the achieved fraction of the exhaustive-search
	// optimum (1 = oracle).
	OracleFrac float64 `json:"oracle_frac"`
}

// TuneResponse is the /tune reply: one pick per power cap for the time
// objective, a single joint pick otherwise.
type TuneResponse struct {
	RegionID  string     `json:"region_id"`
	Machine   string     `json:"machine"`
	Objective string     `json:"objective"`
	Strategy  string     `json:"strategy"`
	Budget    int        `json:"budget"`
	Picks     []TunePick `json:"picks"`
}

// MaxTuneBudget bounds one /tune session's replay executions; a public
// endpoint must not let a single request monopolize the server.
const MaxTuneBudget = 256

// tuneStrategies maps the wire names to their default budgets.
var tuneStrategies = map[string]int{
	"gnn":       0,
	"hybrid":    autotune.HybridK,
	"bliss":     bliss.Budget,
	"opentuner": opentuner.Budget,
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req TuneRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	defBudget, ok := tuneStrategies[req.Strategy]
	if !ok {
		httpError(w, http.StatusBadRequest,
			"unknown strategy %q (valid: gnn, bliss, opentuner, hybrid)", req.Strategy)
		return
	}
	if req.Budget < 0 || req.Budget > MaxTuneBudget {
		httpError(w, http.StatusBadRequest, "budget %d outside [0, %d]", req.Budget, MaxTuneBudget)
		return
	}
	budget := req.Budget
	if budget == 0 {
		budget = defBudget
	}
	if req.Scenario == "" {
		req.Scenario = ScenarioFull
	}
	modelDriven := req.Strategy == "gnn" || req.Strategy == "hybrid"

	// Objective validation: model strategies serve the registry's
	// objectives; the searches additionally tune raw energy.
	var joint autotune.Objective
	switch req.Objective {
	case ObjectiveTime:
	case ObjectiveEDP:
		joint = autotune.EDP{}
	case "energy":
		if modelDriven {
			httpError(w, http.StatusBadRequest,
				"objective \"energy\" has no trained model; use strategy bliss or opentuner")
			return
		}
		joint = autotune.Energy{}
	default:
		httpError(w, http.StatusBadRequest, "unknown objective %q (valid: time, edp, energy)", req.Objective)
		return
	}

	m, err := hw.ByName(req.Machine)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The exhaustive sweep backing the replay evaluator; built once per
	// machine and cached process-wide.
	d, err := dataset.Build(m)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	rd := d.Region(req.RegionID)
	if rd == nil {
		httpError(w, http.StatusBadRequest,
			"unknown region %q: /tune replays the measurement corpus, so the region must be a corpus region ID", req.RegionID)
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = rd.Region.Seed
	}

	// Model-driven strategies shortlist through the micro-batcher (the
	// model is not goroutine-safe; the batcher is its serialization
	// point). k=1 is the pure static pick.
	var shortlists [][]int
	if modelDriven {
		key := Key{Machine: req.Machine, Scenario: req.Scenario, Objective: req.Objective}
		if err := key.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		k := 1
		if req.Strategy == "hybrid" {
			k = budget
		}
		shortlists, err = s.modelShortlists(key, rd, k)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			httpError(w, status, "%v", err)
			return
		}
	}

	entry := s.tuneEntry(req.Strategy, budget, shortlists)
	resp := TuneResponse{
		RegionID:  req.RegionID,
		Machine:   req.Machine,
		Objective: req.Objective,
		Strategy:  req.Strategy,
		Budget:    entry.Budget,
	}
	session := func(obj autotune.Objective) autotune.Result {
		task := autotune.Task{
			Problem:  autotune.Problem{Obj: obj, Space: d.Space, Seed: seed},
			RegionID: req.RegionID,
		}
		return autotune.RunEntry(entry, rd, task)
	}
	if req.Objective == ObjectiveTime {
		// One session per power cap, mirroring /predict's shape.
		for ci, capW := range d.Space.Caps() {
			obj := autotune.TimeUnderCap{Cap: ci}
			res := session(obj)
			_, oracleV := autotune.Oracle(rd, d.Space, obj)
			resp.Picks = append(resp.Picks, TunePick{
				CapW:        capW,
				ConfigIndex: res.Best,
				Config:      d.Space.Configs[res.Best].String(),
				Evals:       res.Evals,
				OracleFrac:  oracleV / obj.Value(rd, d.Space, res.Best),
			})
		}
	} else {
		res := session(joint)
		capW, cfg := d.Space.At(res.Best)
		_, oracleV := autotune.Oracle(rd, d.Space, joint)
		resp.Picks = []TunePick{{
			CapW:        capW,
			ConfigIndex: res.Best,
			Config:      cfg.String(),
			Evals:       res.Evals,
			OracleFrac:  oracleV / joint.Value(rd, d.Space, res.Best),
		}}
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// tuneEntry builds the engine entry for a /tune session. shortlists is
// the per-head model proposal list for model-driven strategies (head =
// cap index for the time objective, a single joint head otherwise).
func (s *Server) tuneEntry(strategy string, budget int, shortlists [][]int) autotune.Entry {
	switch strategy {
	case "gnn":
		return autotune.FixedEntry("gnn", func(t autotune.Task) int {
			return shortlists[tuneHead(t)][0]
		})
	case "hybrid":
		e := autotune.HybridEntry("hybrid", func(t autotune.Task) []int {
			return shortlists[tuneHead(t)]
		})
		e.Budget = budget
		return e
	case "bliss":
		e := bliss.Entry("bliss")
		e.Budget = budget
		return e
	default:
		e := opentuner.Entry("opentuner")
		e.Budget = budget
		return e
	}
}

// tuneHead maps a task's objective to the serving model's head index.
func tuneHead(t autotune.Task) int {
	if o, ok := t.Obj.(autotune.TimeUnderCap); ok {
		return o.Cap
	}
	return 0
}

// modelShortlists resolves the key's model and returns each head's top-k
// classes for the region's graph, routed through the micro-batcher so
// /tune traffic batches with /predict traffic on the shared model.
func (s *Server) modelShortlists(key Key, rd *dataset.RegionData, k int) ([][]int, error) {
	b, err := s.batcherFor(key)
	if err != nil {
		return nil, err
	}
	var extras []float64
	switch b.model.ExtraDim {
	case 0:
	case papi.NumFeatures:
		f := rd.Counters.Features()
		extras = f[:]
	default:
		return nil, fmt.Errorf("registry: model %s wants %d extra features; /tune can only supply corpus counters", key, b.model.ExtraDim)
	}
	return b.PredictTopK(Request{Graph: rd.Region.Graph, Extras: extras}, k)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	nBatchers := s.batchers.len()
	s.mu.Unlock()
	st := s.reg.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           "ok",
		"uptime_sec":       time.Since(s.start).Seconds(),
		"served":           s.served.Load(),
		"batchers":         nBatchers,
		"cache_hits":       st.Hits,
		"disk_loads":       st.DiskLoads,
		"models_trained":   st.Trained,
		"evicted":          st.Evicted,
		"persist_failures": st.PersistFailures,
	})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func resolveStatus(err error) int {
	if errors.Is(err, ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
