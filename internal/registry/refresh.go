package registry

import (
	"fmt"
	"strings"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/core"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
)

// Model refresh: the registry half of the measure→learn loop. Tune
// sessions with a measurement budget feed their real-execution samples
// into a per-key SampleLog; once enough accumulate, the serving layer
// retrains the key incrementally on the sample-refined dataset
// (Retrain), canaries the result against live traffic, and either
// Promotes it — the new version takes over serving and persists — or
// Demotes it, discarding the retrain while the prior version keeps
// serving. Every step lands in the key's version history, served by
// GET /v1/models/{id}.

// SampleLog returns the measurement feed for key, creating it on first
// use. Tune sessions append to it; refresh retrains snapshot and consume
// from it.
func (r *Registry) SampleLog(key Key) *dataset.SampleLog {
	id := key.ID()
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.samples[id]
	if !ok {
		l = &dataset.SampleLog{}
		r.samples[id] = l
	}
	return l
}

// recordEvent appends one event to a key's version history.
func (r *Registry) recordEvent(id string, ev api.VersionEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.history[id] = append(r.history[id], ev)
}

// History returns a copy of the key's version history, oldest first.
// Only events from this process's lifetime appear: a model restored from
// disk starts with the version its metadata carries and an empty history.
func (r *Registry) History(id string) []api.VersionEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]api.VersionEvent(nil), r.history[id]...)
}

// Retrain fine-tunes cur on the key's accumulated measurements: it
// snapshots the sample log, derives a dataset whose measured cells are
// the sample means, and continues training the current model's weights
// on the derived fold for epochs epochs (0 = the model's own epoch
// count). The returned entry carries the incremented version and the
// consumed sample count; cur is never mutated — the clone trains, so the
// current version keeps serving concurrently. The snapshot-consume pair
// is not atomic against concurrent appends, which is fine: late samples
// count toward the next refresh.
func (r *Registry) Retrain(key Key, cur *Entry, epochs int) (*Entry, error) {
	log := r.SampleLog(key)
	snap := log.Snapshot()
	if len(snap) == 0 {
		return nil, fmt.Errorf("registry: refresh %s: no measured samples", key)
	}
	m, err := hw.ByName(key.Machine)
	if err != nil {
		return nil, err
	}
	base, err := dataset.Build(m)
	if err != nil {
		return nil, err
	}
	derived := base.WithSamples(snap)
	fold := derived.FullFold()
	if app, ok := strings.CutPrefix(key.Scenario, "loocv:"); ok {
		fold, ok = derived.FoldByApp(app)
		if !ok {
			return nil, fmt.Errorf("registry: refresh %s: unknown application %q", key, app)
		}
	}

	start := time.Now()
	// Clone through the serialized form: same weights, same config, and
	// by construction exactly what a restart would load.
	blob, err := cur.Model.Marshal(cur.Meta)
	if err != nil {
		return nil, fmt.Errorf("registry: refresh %s: %w", key, err)
	}
	clone, meta, err := core.UnmarshalModel(blob)
	if err != nil {
		return nil, fmt.Errorf("registry: refresh %s: %w", key, err)
	}
	if epochs > 0 {
		clone.Cfg.Epochs = epochs
	}
	var samples []core.Sample
	switch key.Objective {
	case ObjectiveTime:
		samples = core.PowerSamples(derived, fold.Train, clone.Cfg)
	case ObjectiveEDP:
		samples = core.EDPSamples(derived, fold.Train, clone.Cfg)
	default:
		return nil, fmt.Errorf("registry: refresh %s: unknown objective %q", key, key.Objective)
	}
	clone.Fit(samples)
	r.observe("retrain", time.Since(start))

	consumed := log.MarkTrained()
	meta.Normalize()
	meta.Version++
	meta.Samples += consumed
	r.recordEvent(key.ID(), api.VersionEvent{
		Version: meta.Version, Event: api.EventTrained, Samples: consumed, At: time.Now(),
	})
	return &Entry{Key: key, Model: clone, Meta: meta}, nil
}

// Promote installs e as the key's serving entry: it replaces the cached
// entry, persists to the store (best-effort, like post-training
// persists), and records the promotion.
func (r *Registry) Promote(e *Entry) {
	id := e.Key.ID()
	r.mu.Lock()
	r.stats.Evicted += int64(len(r.cache.put(id, e)))
	dir := r.dir
	r.mu.Unlock()
	if dir != "" {
		if err := e.Model.Save(r.path(e.Key), e.Meta); err != nil {
			r.mu.Lock()
			r.stats.PersistFailures++
			r.mu.Unlock()
		}
	}
	r.recordEvent(id, api.VersionEvent{Version: e.Meta.Version, Event: api.EventPromoted, At: time.Now()})
}

// Demote records that e lost its canary; the entry is discarded and the
// prior version keeps serving.
func (r *Registry) Demote(e *Entry) {
	r.recordEvent(e.Key.ID(), api.VersionEvent{Version: e.Meta.Version, Event: api.EventDemoted, At: time.Now()})
}

// Describe assembles the model-detail view for id: the listing info plus
// the measurement feed counters and version history. ok is false when
// the registry knows no model under id.
func (r *Registry) Describe(id string) (api.ModelDetail, bool) {
	for _, info := range r.List() {
		if info.ID != id {
			continue
		}
		det := api.ModelDetail{
			Key: api.ModelKey{
				Machine:   info.Key.Machine,
				Scenario:  info.Key.Scenario,
				Objective: info.Key.Objective,
			},
			ID:      id,
			Version: info.Meta.Version,
			Cached:  info.Cached,
			OnDisk:  info.OnDisk,
			Samples: info.Meta.Samples,
			History: r.History(id),
		}
		if det.Version < 1 {
			det.Version = 1 // pre-versioning metadata on disk
		}
		r.mu.Lock()
		if l, ok := r.samples[id]; ok {
			r.mu.Unlock()
			det.PendingSamples = l.SinceTrain()
			if per := l.PerRegion(); len(per) > 0 {
				det.SampleRegions = per
			}
		} else {
			r.mu.Unlock()
		}
		return det, true
	}
	return api.ModelDetail{}, false
}
