package registry

import (
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/telemetry"
)

// serverTelemetry bundles the metric handles and trace recorder one
// serving process owns. Every handle is resolved once here, so the
// request path pays atomic increments, never registry lookups; scrape-
// time families (queue depths, cache counters) sample their sources
// through Func metrics instead of double-counting them.
type serverTelemetry struct {
	tel *telemetry.Registry
	rec *telemetry.Recorder

	batch *batcherObs
	jobs  *jobObs

	canaryScored   *telemetry.Counter
	canaryVerdicts *telemetry.CounterVec // verdict: promote | demote
	promotions     *telemetry.Counter

	trainDur *telemetry.HistogramVec // kind: train | retrain

	engineSessions *telemetry.CounterVec // by strategy
	engineEvals    *telemetry.CounterVec // by strategy
	measureRuns    *telemetry.Counter
}

// batcherObs is the shared micro-batching instrumentation: one set of
// handles across every live batcher of a server (per-model labels
// would be unbounded cardinality). depth tracks requests admitted but
// not yet collected into a window.
type batcherObs struct {
	depth   atomic.Int64
	shed    *telemetry.Counter
	wait    *telemetry.Histogram
	window  *telemetry.Histogram
	forward *telemetry.Histogram
	rec     *telemetry.Recorder
}

// jobObs instruments the async tune job store.
type jobObs struct {
	outcomes *telemetry.CounterVec // outcome: done | failed | cancelled
	rejected *telemetry.Counter
	dur      *telemetry.Histogram
}

// newServerTelemetry builds the registry server's observability plane
// and wires the scrape-time samplers into reg and jobs.
func newServerTelemetry(reg *Registry, jobs *JobStore) *serverTelemetry {
	tel := telemetry.New()
	st := &serverTelemetry{
		tel: tel,
		rec: telemetry.NewRecorder(0, 0),

		canaryScored: tel.Counter("pnp_canary_scored_total",
			"Live predicts shadow-scored by an in-flight canary."),
		canaryVerdicts: tel.CounterVec("pnp_canary_verdicts_total",
			"Canary rollout verdicts, by outcome.", "verdict"),
		promotions: tel.Counter("pnp_model_promotions_total",
			"Refreshed model versions promoted to serving."),

		trainDur: tel.HistogramVec("pnp_model_train_seconds",
			"Model training wall time, by kind (train = on-miss full recipe, retrain = incremental refresh).",
			telemetry.Seconds, telemetry.DurationBuckets, "kind"),

		engineSessions: tel.CounterVec("pnp_engine_sessions_total",
			"Autotune engine sessions run, by strategy.", "strategy"),
		engineEvals: tel.CounterVec("pnp_engine_evals_total",
			"Autotune engine candidate evaluations, by strategy.", "strategy"),
		measureRuns: tel.Counter("pnp_measure_runs_total",
			"Real kernel executions performed by measure runners."),
	}

	st.batch = &batcherObs{
		shed: tel.Counter("pnp_batch_shed_total",
			"Predict requests shed because the batch queue was full."),
		wait: tel.Histogram("pnp_batch_queue_wait_seconds",
			"Time from predict admission to its batch window running (queue + window wait).",
			telemetry.Seconds, telemetry.DurationBuckets),
		window: tel.Histogram("pnp_batch_window_size",
			"Requests per batched forward pass.",
			telemetry.Units, telemetry.SizeBuckets),
		forward: tel.Histogram("pnp_batch_forward_seconds",
			"Batched forward pass wall time.",
			telemetry.Seconds, telemetry.DurationBuckets),
		rec: st.rec,
	}
	tel.GaugeFunc("pnp_batch_queue_depth",
		"Predict requests admitted but not yet collected into a window, across all batchers.",
		func() float64 { return float64(st.batch.depth.Load()) })

	st.jobs = &jobObs{
		outcomes: tel.CounterVec("pnp_jobs_total",
			"Async tune jobs finished, by outcome.", "outcome"),
		rejected: tel.Counter("pnp_jobs_rejected_total",
			"Async tune submissions rejected with queue_full."),
		dur: tel.Histogram("pnp_job_duration_seconds",
			"Async tune job wall time from start to finish.",
			telemetry.Seconds, telemetry.DurationBuckets),
	}
	jobs.setObs(st.jobs)
	tel.GaugeFunc("pnp_jobs_queued",
		"Async tune jobs waiting for a worker.",
		func() float64 { return float64(jobs.Stats().Queued) })
	tel.GaugeFunc("pnp_jobs_running",
		"Async tune jobs currently running.",
		func() float64 { return float64(jobs.Stats().Running) })

	// Registry traffic counters already live in reg.Stats (healthz reads
	// them too); expose them as sampled counters rather than tracking
	// the same events twice.
	regCounter := func(name, help string, read func(Stats) int64) {
		tel.CounterFunc(name, help, func() float64 { return float64(read(reg.Stats())) })
	}
	regCounter("pnp_registry_cache_hits_total",
		"Model resolves served from the in-memory LRU cache.",
		func(s Stats) int64 { return s.Hits })
	regCounter("pnp_registry_disk_loads_total",
		"Model resolves deserialized from the on-disk store.",
		func(s Stats) int64 { return s.DiskLoads })
	regCounter("pnp_registry_models_trained_total",
		"Models trained on a full miss.",
		func(s Stats) int64 { return s.Trained })
	regCounter("pnp_registry_models_fetched_total",
		"Models fetched from a peer replica on a miss.",
		func(s Stats) int64 { return s.Fetched })
	regCounter("pnp_registry_models_imported_total",
		"Models installed via blob import (peer fetches included).",
		func(s Stats) int64 { return s.Imported })
	regCounter("pnp_registry_evictions_total",
		"Models evicted from the LRU cache.",
		func(s Stats) int64 { return s.Evicted })
	regCounter("pnp_registry_persist_failures_total",
		"Trained models the store failed to persist.",
		func(s Stats) int64 { return s.PersistFailures })

	reg.SetObserver(func(kind string, d time.Duration) {
		st.trainDur.With(kind).ObserveDuration(d)
	})
	return st
}

// Telemetry returns the server's metrics registry (the /metrics
// exposition source) — tests and embedders read it directly.
func (s *Server) Telemetry() *telemetry.Registry { return s.tele.tel }

// Traces returns the server's span recorder.
func (s *Server) Traces() *telemetry.Recorder { return s.tele.rec }

// SetTraceLogging samples every Nth request's root span into slog
// (0 disables) — the pnpserve -trace-log flag.
func (s *Server) SetTraceLogging(every int) {
	s.tele.rec.SetLogging(slog.Default(), every)
}

// handleTrace serves GET /v1/traces/{id}: the span timeline this
// process recorded for one request, keyed by its X-Request-ID. Traces
// are a bounded in-memory window — an unknown ID means the request
// never reached this process or has been evicted.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if info := requireMethod(r, http.MethodGet); info != nil {
		s.writeErr(w, r, info)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, api.PathTraces+"/")
	if id == "" || strings.Contains(id, "/") {
		s.writeErr(w, r, api.Errorf(api.CodeNotFound, "no route %s", r.URL.Path))
		return
	}
	tr, ok := s.tele.rec.Get(id)
	if !ok {
		s.writeErr(w, r, api.Errorf(api.CodeNotFound,
			"no trace %q (unknown, or evicted from the bounded trace window)", id))
		return
	}
	writeJSON(w, http.StatusOK, tr)
}
