package registry

import (
	"strings"
	"sync"
	"testing"
	"time"

	"pnptuner/internal/core"
	"pnptuner/internal/kernels"
	"pnptuner/internal/programl"
	"pnptuner/internal/tensor"
)

// corpusGraphs returns a mixed bag of real program graphs.
func corpusGraphs(t *testing.T, n int) []*programl.Graph {
	t.Helper()
	c := kernels.MustCompile()
	if len(c.Regions) < n {
		n = len(c.Regions)
	}
	graphs := make([]*programl.Graph, n)
	for i := 0; i < n; i++ {
		graphs[i] = c.Regions[i*len(c.Regions)/n].Graph
	}
	return graphs
}

// TestBatcherMatchesSingleRequestExactly is the serving-parity contract:
// N goroutines hammering the micro-batch queue with mixed graphs must get
// exactly the picks a lone request gets. Runs under -race in CI.
func TestBatcherMatchesSingleRequestExactly(t *testing.T) {
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	m, _ := tinyModel(key)
	graphs := corpusGraphs(t, 12)

	// Golden picks: one graph per forward pass, before any concurrency.
	want := make([][]int, len(graphs))
	for i, g := range graphs {
		want[i] = m.PredictGraphs([]*programl.Graph{g}, nil)[0]
	}

	b := NewBatcher(m, 8, 2*time.Millisecond)
	defer b.Close()

	const workers = 16
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := tensor.NewRNG(seed)
			for i := 0; i < perWorker; i++ {
				gi := rng.Intn(len(graphs))
				got, err := b.Predict(Request{Graph: graphs[gi]})
				if err != nil {
					t.Errorf("worker %d: %v", seed, err)
					return
				}
				if len(got) != len(want[gi]) {
					t.Errorf("graph %d: %d picks, want %d", gi, len(got), len(want[gi]))
					return
				}
				for h := range got {
					if got[h] != want[gi][h] {
						t.Errorf("graph %d head %d: batched pick %d != single pick %d",
							gi, h, got[h], want[gi][h])
						return
					}
				}
			}
		}(uint64(w) + 1)
	}
	wg.Wait()
}

func TestBatcherValidatesRequests(t *testing.T) {
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	m, _ := tinyModel(key)
	b := NewBatcher(m, 4, time.Millisecond)
	defer b.Close()

	if _, err := b.Predict(Request{}); err == nil {
		t.Fatal("accepted a nil graph")
	}
	if _, err := b.Predict(Request{Graph: &programl.Graph{}}); err == nil {
		t.Fatal("accepted an empty graph")
	}
	broken := &programl.Graph{
		RegionID: "broken",
		Nodes:    []programl.Node{{Kind: programl.KindInstruction, Text: "br"}},
		Edges:    []programl.Edge{{Src: 0, Dst: 9, Rel: programl.RelControl}},
	}
	if _, err := b.Predict(Request{Graph: broken}); err == nil {
		t.Fatal("accepted an out-of-range edge")
	}
	outOfVocab := &programl.Graph{
		RegionID: "outofvocab",
		Nodes:    []programl.Node{{Kind: programl.KindInstruction, Text: "br", Token: 1 << 20}},
	}
	if _, err := b.Predict(Request{Graph: outOfVocab}); err == nil ||
		!strings.Contains(err.Error(), "vocabulary") {
		t.Fatalf("token outside the model vocabulary: err = %v", err)
	}
	good := corpusGraphs(t, 1)[0]
	if _, err := b.Predict(Request{Graph: good, Extras: []float64{1, 2}}); err == nil {
		t.Fatal("accepted extras on a static model")
	}
	if _, err := b.Predict(Request{Graph: good}); err != nil {
		t.Fatalf("rejected a valid request: %v", err)
	}
}

// TestBatcherExtrasModels: models with dynamic features get their extras
// threaded through the batch correctly.
func TestBatcherExtrasModels(t *testing.T) {
	c := kernels.MustCompile()
	cfg := core.DefaultModelConfig()
	cfg.EmbedDim, cfg.Hidden, cfg.Epochs = 6, 6, 0
	cfg.UseCounters = true
	m := core.NewModel(cfg, c.Vocab.Size(), 2, 8)
	g := c.Regions[0].Graph
	ex := []float64{0.1, 0.2, 0.3, 0.4, 0.5}

	want := m.PredictGraphs([]*programl.Graph{g}, [][]float64{ex})[0]

	b := NewBatcher(m, 4, time.Millisecond)
	defer b.Close()
	got, err := b.Predict(Request{Graph: g, Extras: ex})
	if err != nil {
		t.Fatal(err)
	}
	for h := range want {
		if got[h] != want[h] {
			t.Fatalf("head %d: %d != %d", h, got[h], want[h])
		}
	}
	if _, err := b.Predict(Request{Graph: g}); err == nil {
		t.Fatal("accepted missing extras on a counters model")
	}
}

func TestBatcherClose(t *testing.T) {
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	m, _ := tinyModel(key)
	b := NewBatcher(m, 4, time.Millisecond)
	g := corpusGraphs(t, 1)[0]

	// Requests racing Close either complete or fail with ErrClosed —
	// never hang, never panic.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := b.Predict(Request{Graph: g}); err != nil {
					if err != ErrClosed {
						t.Errorf("unexpected error: %v", err)
					}
					return
				}
			}
		}()
	}
	time.Sleep(3 * time.Millisecond)
	b.Close()
	b.Close() // idempotent
	wg.Wait()

	if _, err := b.Predict(Request{Graph: g}); err != ErrClosed {
		t.Fatalf("Predict after Close = %v, want ErrClosed", err)
	}
}

// TestBatcherServesManyConcurrent floods a generous window with more
// requests than one batch holds: every request must answer with an
// in-range pick (the parity test above proves per-batch correctness).
func TestBatcherServesManyConcurrent(t *testing.T) {
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveEDP}
	m, _ := tinyModel(key)
	b := NewBatcher(m, 16, 3*time.Millisecond)
	defer b.Close()
	graphs := corpusGraphs(t, 6)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			picks, err := b.Predict(Request{Graph: graphs[i%len(graphs)]})
			if err != nil {
				errs <- err
				return
			}
			if len(picks) != 1 || picks[0] < 0 || picks[0] >= 64 {
				errs <- errInvalidPick
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errInvalidPick = &invalidPickError{}

type invalidPickError struct{}

func (*invalidPickError) Error() string { return "pick out of range" }

// sanity: the error string formatter in validate covers the extras case.
func TestValidateErrorMentionsExtras(t *testing.T) {
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	m, _ := tinyModel(key)
	b := NewBatcher(m, 1, time.Millisecond)
	defer b.Close()
	_, err := b.Predict(Request{Graph: corpusGraphs(t, 1)[0], Extras: []float64{1}})
	if err == nil || !strings.Contains(err.Error(), "extra features") {
		t.Fatalf("err = %v", err)
	}
}

// TestBatcherPredictTopK pins the shortlist contract: k=1 equals the
// argmax pick, larger k returns rank-ordered prefixes of the same
// per-head scoring, and mixed Predict/PredictTopK traffic shares windows
// without cross-talk.
func TestBatcherPredictTopK(t *testing.T) {
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	m, _ := tinyModel(key)
	graphs := corpusGraphs(t, 6)

	b := NewBatcher(m, 8, 2*time.Millisecond)
	defer b.Close()

	for _, g := range graphs {
		picks, err := b.Predict(Request{Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		top1, err := b.PredictTopK(Request{Graph: g}, 1)
		if err != nil {
			t.Fatal(err)
		}
		top3, err := b.PredictTopK(Request{Graph: g}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(top1) != len(picks) || len(top3) != len(picks) {
			t.Fatalf("head counts diverge: %d picks, %d top1, %d top3", len(picks), len(top1), len(top3))
		}
		for h := range picks {
			if top1[h][0] != picks[h] {
				t.Fatalf("head %d: top-1 %d != argmax %d", h, top1[h][0], picks[h])
			}
			if len(top3[h]) != 3 || top3[h][0] != picks[h] {
				t.Fatalf("head %d: top-3 %v must lead with argmax %d", h, top3[h], picks[h])
			}
		}
	}

	if _, err := b.PredictTopK(Request{Graph: graphs[0]}, 0); err == nil {
		t.Fatal("k=0 top-k request must fail")
	}
}
