package registry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"pnptuner/internal/api"
	"pnptuner/internal/core"
)

// FetchFunc pulls a model's serialized blob from somewhere else in the
// fleet — a peer replica's blob endpoint — on a local miss. It returns
// the raw Marshal bytes; (nil, nil) or an error both mean "no peer has
// it" and the resolve falls through to training. The registry validates
// whatever comes back exactly like a disk load, so a byte-flipped or
// stale peer blob can never be served. ctx carries the resolving
// request's values — notably its trace ID, which the client SDK stamps
// on the outbound fetch so one trace spans the peer hop — but never
// cancellation (the resolve is shared by every single-flight waiter).
type FetchFunc func(ctx context.Context, k Key) ([]byte, error)

// SetFetcher installs the peer-fetch hook consulted after the on-disk
// store and before training. Call before serving traffic; the hook must
// be safe for concurrent use (single-flight means at most one fetch per
// key is in flight, but different keys fetch concurrently).
func (r *Registry) SetFetcher(f FetchFunc) {
	r.mu.Lock()
	r.fetch = f
	r.mu.Unlock()
}

// ExportBlob returns the serialized blob of the model with content
// address id: the on-disk store file verbatim when present, otherwise a
// fresh Marshal of the cached entry. Reading weights concurrently with
// batched forwards is safe — forwards never mutate parameters — and
// training always finishes before an entry is published.
func (r *Registry) ExportBlob(id string) ([]byte, error) {
	r.mu.Lock()
	var entry *Entry
	for _, v := range r.cache.all() {
		if e := v.(*Entry); e.Key.ID() == id {
			entry = e
			break
		}
	}
	dir := r.dir
	r.mu.Unlock()

	if dir != "" {
		if entry != nil {
			if data, err := os.ReadFile(r.path(entry.Key)); err == nil {
				return data, nil
			}
		} else {
			// Not cached: the store file's own metadata says whether it
			// exists; serve it verbatim (the importer re-validates).
			for _, info := range r.List() {
				if info.ID == id && info.OnDisk {
					return os.ReadFile(r.path(info.Key))
				}
			}
		}
	}
	if entry != nil {
		return entry.Model.Marshal(entry.Meta)
	}
	return nil, fmt.Errorf("registry: no model with id %s: %w", id, ErrModelNotFound)
}

// ImportBlob installs a serialized model blob (the PUT blob endpoint,
// and the tail of a peer fetch): digest-checked unmarshal, key
// validation, staleness check against this binary's space/vocabulary,
// best-effort persist of the verbatim bytes, then publication in the
// cache. wantID, when non-empty, must match the blob's own content
// address — nothing is installed on a mismatch, so a confused peer can
// never poison an address. Returns the resolved entry.
func (r *Registry) ImportBlob(data []byte, wantID string) (*Entry, error) {
	e, err := r.entryFromBlob(data)
	if err != nil {
		return nil, err
	}
	if wantID != "" && e.Key.ID() != wantID {
		return nil, fmt.Errorf("registry: blob content address %s does not match requested id %s", e.Key.ID(), wantID)
	}
	r.persistBlob(e.Key, data)

	r.mu.Lock()
	r.stats.Imported++
	r.stats.Evicted += int64(len(r.cache.put(e.Key.ID(), e)))
	r.mu.Unlock()
	return e, nil
}

// entryFromBlob validates blob bytes into a servable entry, sharing the
// disk-load validation sequence: digest + strict restore, then the
// stored key must be well-formed and current for this binary.
func (r *Registry) entryFromBlob(data []byte) (*Entry, error) {
	m, meta, err := core.UnmarshalModel(data)
	if err != nil {
		return nil, fmt.Errorf("registry: blob unusable: %w", err)
	}
	key := Key{Machine: meta.Machine, Scenario: meta.Scenario, Objective: meta.Objective}
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("registry: blob names invalid model %s: %w", key, err)
	}
	if err := checkMetaCurrent(key, meta); err != nil {
		return nil, fmt.Errorf("registry: blob for %s is stale: %w", key, err)
	}
	meta.Normalize()
	return &Entry{Key: key, Model: m, Meta: meta}, nil
}

// persistBlob writes the verbatim blob bytes to the store (atomic
// tmp+rename). Best-effort like the post-training persist: a full disk
// must not fail serving, so failures only bump the persist counter.
func (r *Registry) persistBlob(key Key, data []byte) {
	if r.dir == "" {
		return
	}
	path := r.path(key)
	tmp := path + ".tmp"
	err := os.WriteFile(tmp, data, 0o644)
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		r.mu.Lock()
		r.stats.PersistFailures++
		r.mu.Unlock()
	}
}

// handleModelBlob serves GET/PUT /v1/models/{id}/blob: export a model's
// serialized bytes to a peer, or import a peer's bytes into this
// replica's store. This pair is the replication path of the
// shared-nothing replica tier — one replica trains, the others fetch.
func (s *Server) handleModelBlob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, api.PathModels+"/")
	id, suffix, ok := strings.Cut(rest, "/")
	if !ok {
		// No suffix: GET /v1/models/{id} is the model-detail endpoint.
		s.handleModelDetail(w, r, rest)
		return
	}
	if suffix != "blob" || id == "" {
		s.writeErr(w, r, api.Errorf(api.CodeNotFound, "no route %s", r.URL.Path))
		return
	}
	switch r.Method {
	case http.MethodGet:
		data, err := s.reg.ExportBlob(id)
		if err != nil {
			if errors.Is(err, ErrModelNotFound) {
				s.writeErr(w, r, api.Errorf(api.CodeModelNotFound, "%v", err))
			} else {
				s.writeErr(w, r, api.Errorf(api.CodeInternal, "%v", err))
			}
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(len(data)))
		w.Write(data)
	case http.MethodPut:
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, api.MaxBlobBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.writeErr(w, r, api.Errorf(api.CodeGraphTooLarge, "blob over %d bytes", api.MaxBlobBytes))
			} else {
				s.writeErr(w, r, api.Errorf(api.CodeBadRequest, "read blob: %v", err))
			}
			return
		}
		e, err := s.reg.ImportBlob(data, id)
		if err != nil {
			s.writeErr(w, r, api.Errorf(api.CodeBadRequest, "%v", err))
			return
		}
		writeJSON(w, http.StatusOK, api.ModelInfo{
			Key: api.ModelKey{Machine: e.Key.Machine, Scenario: e.Key.Scenario, Objective: e.Key.Objective},
			ID:  e.Key.ID(), Cached: true, OnDisk: s.reg.dir != "",
		})
	default:
		s.writeErr(w, r, api.Errorf(api.CodeMethodNotAllowed, "%s not allowed (want GET or PUT)", r.Method))
	}
}

// handleModelDetail serves GET /v1/models/{id}: one model's serving
// version, measurement-feed counters, in-flight canary, and version
// history — the observability face of the measure→learn loop.
func (s *Server) handleModelDetail(w http.ResponseWriter, r *http.Request, id string) {
	if id == "" {
		s.writeErr(w, r, api.Errorf(api.CodeNotFound, "no route %s", r.URL.Path))
		return
	}
	if info := requireMethod(r, http.MethodGet); info != nil {
		s.writeErr(w, r, info)
		return
	}
	det, ok := s.reg.Describe(id)
	if !ok {
		s.writeErr(w, r, api.Errorf(api.CodeModelNotFound, "no model with id %s", id))
		return
	}
	det.CanaryVersion = s.canaryVersion(id)
	writeJSON(w, http.StatusOK, det)
}
