package registry

// Quantized-serving tests (ISSUE 9): a server in Quantize mode funnels
// every forward pass through the float32 CompiledModel, and its picks
// must match the float64 server's bit-for-bit. Plus the off-request-path
// canary scoring semantics satellite: enqueue never blocks, drops when
// the queue is full, and goes dead after the verdict.

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/core"
	"pnptuner/internal/kernels"
	"pnptuner/internal/programl"
)

// newQuantizedServer is newTestServer with the quantized serving path on.
func newQuantizedServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	reg, err := New("", 4, func(k Key) (*core.Model, core.ModelMeta, error) {
		m, meta := tinyModel(k)
		return m, meta, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := kernels.MustCompile()
	srv := NewServer(reg, c.Vocab, ServerConfig{
		MaxBatch: 8, MaxWait: 2 * time.Millisecond, Quantize: true,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// TestQuantizedBatcherMatchesFloat64: the same model behind a quantized
// and a float64 batcher answers Predict and PredictTopK identically.
func TestQuantizedBatcherMatchesFloat64(t *testing.T) {
	m, _ := tinyModel(Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime})
	ref := NewBatcher(m, 4, time.Millisecond)
	defer ref.Close()
	qb, err := NewQuantizedBatcher(m, 4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer qb.Close()
	if !qb.Quantized() || ref.Quantized() {
		t.Fatal("Quantized() flags wrong")
	}

	c := kernels.MustCompile()
	for _, idx := range []int{0, 3, 7} {
		g := c.Regions[idx].Graph
		want, err := ref.Predict(Request{Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		got, err := qb.Predict(Request{Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("region %d: float64 picks %v, quantized %v", idx, want, got)
		}
		wantK, err := ref.PredictTopK(Request{Graph: g}, 3)
		if err != nil {
			t.Fatal(err)
		}
		gotK, err := qb.PredictTopK(Request{Graph: g}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantK, gotK) {
			t.Fatalf("region %d: float64 top-3 %v, quantized %v", idx, wantK, gotK)
		}
	}
}

// TestServerQuantizedServesIdenticalPicks: end to end over HTTP, the
// quantized server's responses match the float64 server's for both
// objectives.
func TestServerQuantizedServesIdenticalPicks(t *testing.T) {
	srv, qts := newQuantizedServer(t)
	_, ts := newTestServer(t)

	for _, objective := range []string{ObjectiveTime, ObjectiveEDP} {
		body := predictBody(t, "haswell", objective, 0)
		want := postPredict(t, ts, api.PathPredict, body)
		got := postPredict(t, qts, api.PathPredict, body)
		if !reflect.DeepEqual(want.Picks, got.Picks) {
			t.Fatalf("%s: float64 served %+v, quantized %+v", objective, want.Picks, got.Picks)
		}
	}

	// The serving batcher really is the quantized one, not a fallback.
	b, err := srv.batcherFor(context.Background(), Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Quantized() {
		t.Fatal("quantized server built a float64 batcher")
	}
}

// TestCanaryEnqueueSemantics: the predict-path handoff to canary scoring
// never blocks — it drops on a full queue and goes dead after halt.
func TestCanaryEnqueueSemantics(t *testing.T) {
	c := &canary{
		scores:  make(chan canarySample, 2),
		stopped: make(chan struct{}),
	}
	g := &programl.Graph{}
	if !c.enqueue(canarySample{g: g}) || !c.enqueue(canarySample{g: g}) {
		t.Fatal("enqueue with queue headroom failed")
	}
	if c.enqueue(canarySample{g: g}) {
		t.Fatal("enqueue past capacity claims success instead of dropping")
	}
	c.halt()
	c.halt() // idempotent
	<-c.scores
	if c.enqueue(canarySample{g: g}) {
		t.Fatal("enqueue after halt claims success")
	}
}
