package registry

import (
	"context"
	"sort"
	"sync"
	"time"

	"pnptuner/internal/api"
)

// JobRunner executes one async tuning session under ctx. A cancelled ctx
// must stop the session promptly (the engine checks it before every
// measurement); the runner reports either a result or a wire error.
type JobRunner func(ctx context.Context) (*api.TuneResponse, *api.ErrorInfo)

// JobStoreConfig bounds the async tune subsystem. The zero value gets
// the defaults below — a job store is always bounded.
type JobStoreConfig struct {
	// Workers is the number of concurrent engine sessions (default 2).
	// Sessions shortlist through the shared micro-batchers, so workers
	// add queueing, not model contention.
	Workers int
	// Queue is the maximum number of jobs waiting for a worker
	// (default 32); past it Submit answers CodeQueueFull.
	Queue int
	// TTL is how long finished jobs stay pollable before GC
	// (default 15m).
	TTL time.Duration
	// MaxJobs bounds total retained jobs; past it the oldest finished
	// jobs are dropped early, before their TTL (default 1024).
	MaxJobs int
}

func (c JobStoreConfig) withDefaults() JobStoreConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Queue <= 0 {
		c.Queue = 32
	}
	if c.TTL <= 0 {
		c.TTL = 15 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	return c
}

// jobState is one tracked job: the wire view plus the runtime handles
// the store needs to run and cancel it. All fields are guarded by the
// store's mutex except ctx/cancel/run, which are set once at submit.
type jobState struct {
	job    api.Job
	run    JobRunner
	ctx    context.Context
	cancel context.CancelFunc
}

// JobStore runs async tuning sessions on a bounded worker pool: Submit
// enqueues (bounded queue depth), workers run sessions off-request under
// a cancellable context, finished jobs stay pollable for a TTL and are
// then garbage-collected. All methods are safe for concurrent use.
type JobStore struct {
	cfg JobStoreConfig

	mu        sync.Mutex
	jobs      map[string]*jobState
	stopped   bool
	running   int
	done      int64
	failed    int64
	cancelled int64
	obs       *jobObs // nil disables telemetry (library use, tests)

	queue  chan *jobState
	quit   chan struct{} // closed by Stop: workers exit after their current job
	gcQuit chan struct{}
	wg     sync.WaitGroup // worker goroutines
	gcWG   sync.WaitGroup
}

// NewJobStore starts a job store with cfg's bounds (zero values get
// defaults). Call Stop to shut it down.
func NewJobStore(cfg JobStoreConfig) *JobStore {
	cfg = cfg.withDefaults()
	s := &JobStore{
		cfg:    cfg,
		jobs:   make(map[string]*jobState),
		queue:  make(chan *jobState, cfg.Queue),
		quit:   make(chan struct{}),
		gcQuit: make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.gcWG.Add(1)
	go s.gcLoop()
	return s
}

// Submit registers req as a new job and enqueues run. It answers
// CodeQueueFull when the queue is at depth and CodeUnavailable after
// Stop. The Async flag is cleared in the echoed request: a job's result
// is the synchronous response for that request.
func (s *JobStore) Submit(req api.TuneRequest, run JobRunner) (api.Job, *api.ErrorInfo) {
	req.Async = false
	ctx, cancel := context.WithCancel(context.Background())
	st := &jobState{
		job: api.Job{
			ID:        newJobID(),
			Status:    api.JobQueued,
			Request:   req,
			CreatedAt: time.Now(),
		},
		run:    run,
		ctx:    ctx,
		cancel: cancel,
	}

	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		cancel()
		return api.Job{}, api.Errorf(api.CodeUnavailable, "job store is shutting down")
	}
	// The (non-blocking, buffered) enqueue happens under the lock so it
	// is atomic with the stopped check: Stop sets stopped and drains the
	// queue in one critical section, so no job can slip in after the
	// drain and sit queued forever.
	select {
	case s.queue <- st:
	default:
		obs := s.obs
		s.mu.Unlock()
		cancel()
		if obs != nil {
			obs.rejected.Inc()
		}
		return api.Job{}, api.Errorf(api.CodeQueueFull,
			"job queue full (%d queued); retry later", s.cfg.Queue)
	}
	s.jobs[st.job.ID] = st
	// The just-inserted job is non-terminal and can't be evicted; the
	// pass keeps retained jobs at the cap even between GC ticks.
	s.evictLocked(time.Now())
	// Snapshot before releasing the lock: once a worker can see st,
	// st.job is mutable only under the lock.
	snapshot := st.job
	s.mu.Unlock()
	return snapshot, nil
}

// Get returns a snapshot of job id, or CodeJobNotFound (never existed,
// or GC'd after its TTL).
func (s *JobStore) Get(id string) (api.Job, *api.ErrorInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.jobs[id]
	if !ok {
		return api.Job{}, api.Errorf(api.CodeJobNotFound, "no job %q (unknown, or expired after %s)", id, s.cfg.TTL)
	}
	return st.job, nil
}

// List returns snapshots of every retained job, oldest first.
func (s *JobStore) List() []api.Job {
	s.mu.Lock()
	out := make([]api.Job, 0, len(s.jobs))
	for _, st := range s.jobs {
		out = append(out, st.job)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Cancel requests cancellation of job id and returns its snapshot. A
// queued job is cancelled immediately; a running job's context is
// cancelled and the engine session stops before its next measurement
// (the snapshot still reads "running" with cancel_requested until it
// does). Cancelling a finished job is a no-op, not an error.
func (s *JobStore) Cancel(id string) (api.Job, *api.ErrorInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.jobs[id]
	if !ok {
		return api.Job{}, api.Errorf(api.CodeJobNotFound, "no job %q (unknown, or expired after %s)", id, s.cfg.TTL)
	}
	if st.job.Terminal() {
		return st.job, nil
	}
	st.job.CancelRequested = true
	st.cancel()
	if st.job.Status == api.JobQueued {
		// The worker that eventually pops it will skip it; finish it now
		// so pollers see the terminal status immediately.
		s.finishLocked(st, api.JobCancelled)
	}
	return st.job, nil
}

// Stats snapshots the store's counters for /healthz.
func (s *JobStore) Stats() api.JobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := api.JobStats{
		Running:   s.running,
		Done:      s.done,
		Failed:    s.failed,
		Cancelled: s.cancelled,
	}
	for _, j := range s.jobs {
		if j.job.Status == api.JobQueued {
			st.Queued++
		}
	}
	return st
}

// stopGrace bounds how long Stop keeps waiting after it has cancelled
// the running sessions' contexts: the engine observes cancellation
// between measurements (microseconds on replay), so this only trips for
// a session stuck in non-cancellable work — model training inside a
// registry resolve — which is then abandoned to finish in the
// background (its result is discarded as cancelled).
const stopGrace = 2 * time.Second

// Stop shuts the store down: no new submissions, queued jobs are
// cancelled, and running sessions drain gracefully until ctx expires —
// then their contexts are cancelled and the engine stops them before
// the next measurement. A session that cannot observe its context (it
// is inside model training, not the engine loop) is abandoned after a
// short grace rather than blocking shutdown indefinitely. Safe to call
// more than once.
func (s *JobStore) Stop(ctx context.Context) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.gcWG.Wait()
		return
	}
	s.stopped = true
	// Drain the queue in the same critical section that flips stopped:
	// Submit enqueues under this lock, so nothing can be queued after
	// this loop. Workers may still pop concurrently — whatever they win
	// runs to completion as a normal drain.
	for {
		var st *jobState
		select {
		case st = <-s.queue:
		default:
		}
		if st == nil {
			break
		}
		if !st.job.Terminal() {
			st.job.CancelRequested = true
			s.finishLocked(st, api.JobCancelled)
		}
		st.cancel()
	}
	s.mu.Unlock()

	close(s.quit)
	close(s.gcQuit)

	// Drain running sessions until the deadline, then cancel them.
	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
	case <-ctx.Done():
		s.mu.Lock()
		for _, st := range s.jobs {
			if !st.job.Terminal() {
				st.job.CancelRequested = true
				st.cancel()
			}
		}
		s.mu.Unlock()
		select {
		case <-workersDone:
		case <-time.After(stopGrace):
		}
	}
	s.gcWG.Wait()
}

// worker runs queued jobs until Stop.
func (s *JobStore) worker() {
	defer s.wg.Done()
	for {
		select {
		case st := <-s.queue:
			s.runJob(st)
		case <-s.quit:
			return
		}
	}
}

// runJob executes one job and records its terminal status.
func (s *JobStore) runJob(st *jobState) {
	s.mu.Lock()
	if st.job.Status != api.JobQueued {
		// Cancelled while waiting for a worker.
		s.mu.Unlock()
		return
	}
	now := time.Now()
	st.job.Status = api.JobRunning
	st.job.StartedAt = &now
	s.running++
	s.mu.Unlock()

	resp, errInfo := st.run(st.ctx)

	s.mu.Lock()
	s.running--
	switch {
	case st.ctx.Err() != nil:
		// Cancelled mid-session (Cancel or Stop deadline); a result from
		// a truncated session must not masquerade as the real one.
		s.finishLocked(st, api.JobCancelled)
	case errInfo != nil:
		st.job.Error = errInfo
		s.finishLocked(st, api.JobFailed)
	default:
		st.job.Result = resp
		s.finishLocked(st, api.JobDone)
	}
	s.mu.Unlock()
	st.cancel()
}

// finishLocked moves st to terminal status and bumps the counter.
// Callers hold s.mu.
func (s *JobStore) finishLocked(st *jobState, status string) {
	now := time.Now()
	st.job.Status = status
	st.job.FinishedAt = &now
	switch status {
	case api.JobDone:
		s.done++
	case api.JobFailed:
		s.failed++
	case api.JobCancelled:
		s.cancelled++
	}
	if s.obs != nil {
		s.obs.outcomes.With(status).Inc()
		if st.job.StartedAt != nil {
			s.obs.dur.ObserveDuration(now.Sub(*st.job.StartedAt))
		}
	}
}

// setObs attaches the server's job instrumentation; outcome strings
// become the counter's outcome label, so label cardinality is the three
// terminal statuses.
func (s *JobStore) setObs(obs *jobObs) {
	s.mu.Lock()
	s.obs = obs
	s.mu.Unlock()
}

// gcLoop drops expired finished jobs on a timer.
func (s *JobStore) gcLoop() {
	defer s.gcWG.Done()
	interval := s.cfg.TTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case now := <-ticker.C:
			s.mu.Lock()
			s.evictLocked(now)
			s.mu.Unlock()
		case <-s.gcQuit:
			return
		}
	}
}

// evictLocked removes finished jobs past their TTL, then — if the store
// still holds more than MaxJobs — the oldest finished ones beyond the
// cap. Callers hold s.mu.
func (s *JobStore) evictLocked(now time.Time) {
	for id, st := range s.jobs {
		if st.job.Terminal() && now.Sub(*st.job.FinishedAt) > s.cfg.TTL {
			delete(s.jobs, id)
		}
	}
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	finished := make([]*jobState, 0, len(s.jobs))
	for _, st := range s.jobs {
		if st.job.Terminal() {
			finished = append(finished, st)
		}
	}
	sort.Slice(finished, func(i, j int) bool {
		return finished[i].job.FinishedAt.Before(*finished[j].job.FinishedAt)
	})
	for _, st := range finished {
		if len(s.jobs) <= s.cfg.MaxJobs {
			break
		}
		delete(s.jobs, st.job.ID)
	}
}

// newJobID returns a 16-hex-char random job ID.
func newJobID() string { return randomHex(8) }
