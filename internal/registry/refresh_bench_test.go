package registry

import (
	"net/http/httptest"
	"testing"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/core"
	"pnptuner/internal/kernels"
)

// BenchmarkRefreshRetrain measures one background refresh retrain — the
// cost the measure→learn loop pays per version: dataset derivation from
// the sample log, the serialized-clone round trip, and a one-epoch
// fine-tune on the refined fold. This is what a pnpserve replica spends
// off the request path every time -refresh-threshold trips
// (BENCH_7.json tracks it).
func BenchmarkRefreshRetrain(b *testing.B) {
	reg, err := New("", 4, func(k Key) (*core.Model, core.ModelMeta, error) {
		m, meta := fullShapeModel(k)
		return m, meta, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	cur, err := reg.Get(key)
	if err != nil {
		b.Fatal(err)
	}
	reg.SampleLog(key).Append(realSamples(b, key.Machine, 1, 16)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Retrain(key, cur, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanaryPredict measures the live-traffic cost of a shadow
// rollout: /v1/predict round trips with no canary in flight versus with
// one scoring inline (shadow forward + two ground-truth oracle scans per
// request). The window never closes, so every iteration pays the full
// shadow path — the worst case a client sees mid-rollout.
func BenchmarkCanaryPredict(b *testing.B) {
	newServer := func(b *testing.B) (*Server, *httptest.Server) {
		reg, err := New("", 4, func(k Key) (*core.Model, core.ModelMeta, error) {
			m, meta := fullShapeModel(k)
			return m, meta, nil
		})
		if err != nil {
			b.Fatal(err)
		}
		srv := NewServer(reg, kernels.MustCompile().Vocab, ServerConfig{
			MaxBatch: 8, MaxWait: time.Millisecond,
			Refresh: RefreshConfig{Threshold: 1 << 30, CanaryWindow: 1 << 30},
		})
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		return srv, ts
	}
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	body := predictBody(b, "haswell", ObjectiveTime, 0)

	b.Run("serving", func(b *testing.B) {
		_, ts := newServer(b)
		postPredict(b, ts, api.PathPredict, body) // train + warm the batcher
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			postPredict(b, ts, api.PathPredict, body)
		}
	})
	b.Run("with-canary", func(b *testing.B) {
		srv, ts := newServer(b)
		postPredict(b, ts, api.PathPredict, body)
		e, err := srv.reg.Get(key)
		if err != nil {
			b.Fatal(err)
		}
		blob, err := e.Model.Marshal(e.Meta)
		if err != nil {
			b.Fatal(err)
		}
		m, meta, err := core.UnmarshalModel(blob)
		if err != nil {
			b.Fatal(err)
		}
		meta.Version++
		srv.startCanary(key, &Entry{Key: key, Model: m, Meta: meta})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			postPredict(b, ts, api.PathPredict, body)
		}
	})
}
