package registry

import (
	"context"
	"sync"
	"testing"
	"time"

	"pnptuner/internal/api"
)

// okRunner returns a trivial successful session result.
func okRunner(region string) JobRunner {
	return func(ctx context.Context) (*api.TuneResponse, *api.ErrorInfo) {
		return &api.TuneResponse{RegionID: region, Picks: []api.TunePick{{ConfigIndex: 7}}}, nil
	}
}

// waitTerminal polls until job id reaches a terminal status.
func waitTerminal(t *testing.T, js *JobStore, id string) api.Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, errInfo := js.Get(id)
		if errInfo != nil {
			t.Fatalf("get %s: %v", id, errInfo)
		}
		if j.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, j)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJobStoreLifecycle(t *testing.T) {
	js := NewJobStore(JobStoreConfig{Workers: 2, Queue: 8})
	defer js.Stop(context.Background())

	j, errInfo := js.Submit(api.TuneRequest{RegionID: "r#0", Async: true}, okRunner("r#0"))
	if errInfo != nil {
		t.Fatal(errInfo)
	}
	if j.ID == "" || j.Status != api.JobQueued || j.Request.Async {
		t.Fatalf("submitted job = %+v", j)
	}
	fin := waitTerminal(t, js, j.ID)
	if fin.Status != api.JobDone || fin.Result == nil || fin.Result.Picks[0].ConfigIndex != 7 {
		t.Fatalf("finished job = %+v", fin)
	}
	if fin.StartedAt == nil || fin.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", fin)
	}

	// Failure is a terminal status carrying the wire error.
	jf, _ := js.Submit(api.TuneRequest{RegionID: "r#1"}, func(ctx context.Context) (*api.TuneResponse, *api.ErrorInfo) {
		return nil, api.Errorf(api.CodeInternal, "boom")
	})
	fin = waitTerminal(t, js, jf.ID)
	if fin.Status != api.JobFailed || fin.Error == nil || fin.Error.Code != api.CodeInternal {
		t.Fatalf("failed job = %+v", fin)
	}

	if _, errInfo := js.Get("nope"); errInfo == nil || errInfo.Code != api.CodeJobNotFound {
		t.Fatalf("unknown job error = %v", errInfo)
	}
}

// TestJobStoreCancelRunning: cancelling a running job cancels its
// context, the session stops promptly, and the status reads cancelled —
// the contract the engine's per-measurement ctx check backs.
func TestJobStoreCancelRunning(t *testing.T) {
	js := NewJobStore(JobStoreConfig{Workers: 1, Queue: 8})
	defer js.Stop(context.Background())

	started := make(chan struct{})
	j, errInfo := js.Submit(api.TuneRequest{RegionID: "slow"}, func(ctx context.Context) (*api.TuneResponse, *api.ErrorInfo) {
		close(started)
		<-ctx.Done() // a long engine session observing its context
		return &api.TuneResponse{RegionID: "slow"}, nil
	})
	if errInfo != nil {
		t.Fatal(errInfo)
	}
	<-started
	got, errInfo := js.Cancel(j.ID)
	if errInfo != nil {
		t.Fatal(errInfo)
	}
	if !got.CancelRequested {
		t.Fatalf("cancel snapshot = %+v", got)
	}
	fin := waitTerminal(t, js, j.ID)
	if fin.Status != api.JobCancelled || fin.Result != nil {
		t.Fatalf("cancelled job = %+v", fin)
	}
	// Cancelling a finished job is a no-op, not an error.
	again, errInfo := js.Cancel(j.ID)
	if errInfo != nil || again.Status != api.JobCancelled {
		t.Fatalf("re-cancel = %+v, %v", again, errInfo)
	}
}

// TestJobStoreCancelQueued: with the lone worker busy, a queued job
// cancels immediately without ever running.
func TestJobStoreCancelQueued(t *testing.T) {
	js := NewJobStore(JobStoreConfig{Workers: 1, Queue: 8})
	defer js.Stop(context.Background())

	release := make(chan struct{})
	started := make(chan struct{})
	blocker, _ := js.Submit(api.TuneRequest{RegionID: "blocker"}, func(ctx context.Context) (*api.TuneResponse, *api.ErrorInfo) {
		close(started)
		<-release
		return &api.TuneResponse{}, nil
	})
	<-started
	queued, errInfo := js.Submit(api.TuneRequest{RegionID: "queued"}, okRunner("queued"))
	if errInfo != nil {
		t.Fatal(errInfo)
	}
	got, errInfo := js.Cancel(queued.ID)
	if errInfo != nil {
		t.Fatal(errInfo)
	}
	if got.Status != api.JobCancelled {
		t.Fatalf("queued cancel status = %s", got.Status)
	}
	close(release)
	fin := waitTerminal(t, js, blocker.ID)
	if fin.Status != api.JobDone {
		t.Fatalf("blocker = %+v", fin)
	}
	// The worker must skip the cancelled job, never run it.
	if fin, _ := js.Get(queued.ID); fin.StartedAt != nil {
		t.Fatalf("cancelled queued job ran: %+v", fin)
	}
}

// TestJobStoreQueueFull: queue depth bounds admissions with a stable
// error code.
func TestJobStoreQueueFull(t *testing.T) {
	js := NewJobStore(JobStoreConfig{Workers: 1, Queue: 2})
	defer js.Stop(context.Background())

	release := make(chan struct{})
	started := make(chan struct{})
	js.Submit(api.TuneRequest{}, func(ctx context.Context) (*api.TuneResponse, *api.ErrorInfo) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &api.TuneResponse{}, nil
	})
	<-started
	blocked := func(ctx context.Context) (*api.TuneResponse, *api.ErrorInfo) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &api.TuneResponse{}, nil
	}
	js.Submit(api.TuneRequest{}, blocked)
	js.Submit(api.TuneRequest{}, blocked)
	if _, errInfo := js.Submit(api.TuneRequest{}, blocked); errInfo == nil || errInfo.Code != api.CodeQueueFull {
		t.Fatalf("overflow error = %v", errInfo)
	}
	close(release)
}

// TestJobStoreGC: finished jobs expire after their TTL; unfinished ones
// never do.
func TestJobStoreGC(t *testing.T) {
	js := NewJobStore(JobStoreConfig{Workers: 1, Queue: 8, TTL: 20 * time.Millisecond})
	defer js.Stop(context.Background())

	j, _ := js.Submit(api.TuneRequest{RegionID: "gc"}, okRunner("gc"))
	waitTerminal(t, js, j.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, errInfo := js.Get(j.ID); errInfo != nil && errInfo.Code == api.CodeJobNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never GC'd")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobStoreMaxJobs: the retained-job cap evicts the oldest finished
// jobs before their TTL.
func TestJobStoreMaxJobs(t *testing.T) {
	js := NewJobStore(JobStoreConfig{Workers: 2, Queue: 8, TTL: time.Hour, MaxJobs: 3})
	defer js.Stop(context.Background())

	var ids []string
	for i := 0; i < 6; i++ {
		j, errInfo := js.Submit(api.TuneRequest{}, okRunner("x"))
		if errInfo != nil {
			t.Fatal(errInfo)
		}
		waitTerminal(t, js, j.ID)
		ids = append(ids, j.ID)
	}
	if n := len(js.List()); n > 3 {
		t.Fatalf("%d jobs retained, cap 3", n)
	}
	// The newest job always survives.
	if _, errInfo := js.Get(ids[len(ids)-1]); errInfo != nil {
		t.Fatalf("newest job evicted: %v", errInfo)
	}
}

// TestJobStoreStopDrains: Stop cancels queued jobs, drains the running
// one, and refuses later submissions.
func TestJobStoreStopDrains(t *testing.T) {
	js := NewJobStore(JobStoreConfig{Workers: 1, Queue: 8})

	started := make(chan struct{})
	running, _ := js.Submit(api.TuneRequest{RegionID: "run"}, func(ctx context.Context) (*api.TuneResponse, *api.ErrorInfo) {
		close(started)
		// Finishes on its own: Stop must wait for it, not kill it.
		time.Sleep(10 * time.Millisecond)
		return &api.TuneResponse{RegionID: "run"}, nil
	})
	<-started
	queued, _ := js.Submit(api.TuneRequest{RegionID: "q"}, okRunner("q"))

	js.Stop(context.Background())

	if j, _ := js.Get(running.ID); j.Status != api.JobDone {
		t.Fatalf("running job after drain = %+v", j)
	}
	if j, _ := js.Get(queued.ID); j.Status != api.JobCancelled {
		t.Fatalf("queued job after stop = %+v", j)
	}
	if _, errInfo := js.Submit(api.TuneRequest{}, okRunner("late")); errInfo == nil || errInfo.Code != api.CodeUnavailable {
		t.Fatalf("submit after stop = %v", errInfo)
	}
	js.Stop(context.Background()) // idempotent
}

// TestJobStoreStopDeadline: a session that ignores completion but
// honours its context is cancelled once the drain deadline passes.
func TestJobStoreStopDeadline(t *testing.T) {
	js := NewJobStore(JobStoreConfig{Workers: 1, Queue: 8})
	started := make(chan struct{})
	j, _ := js.Submit(api.TuneRequest{RegionID: "stuck"}, func(ctx context.Context) (*api.TuneResponse, *api.ErrorInfo) {
		close(started)
		<-ctx.Done()
		return nil, api.Errorf(api.CodeInternal, "interrupted")
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	js.Stop(ctx)
	fin, _ := js.Get(j.ID)
	if fin.Status != api.JobCancelled {
		t.Fatalf("deadline-cancelled job = %+v", fin)
	}
}

// TestJobStoreConcurrent is the -race exercise: many goroutines
// submitting, polling, listing, and cancelling at once.
func TestJobStoreConcurrent(t *testing.T) {
	js := NewJobStore(JobStoreConfig{Workers: 4, Queue: 64, TTL: 50 * time.Millisecond})
	defer js.Stop(context.Background())

	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, errInfo := js.Submit(api.TuneRequest{RegionID: "r"}, okRunner("r"))
			if errInfo != nil {
				return // queue_full under pressure is legitimate
			}
			if i%3 == 0 {
				js.Cancel(j.ID)
			}
			waitTerminal(t, js, j.ID)
			js.List()
			js.Stats()
		}(i)
	}
	wg.Wait()
	st := js.Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
	if st.Done+st.Cancelled+st.Failed == 0 {
		t.Fatalf("no jobs accounted: %+v", st)
	}
}
