package registry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pnptuner/internal/core"
	"pnptuner/internal/kernels"
)

// newTestServer wires a registry with the tiny trainer behind httptest.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	reg, err := New("", 4, func(k Key) (*core.Model, core.ModelMeta, error) {
		m, meta := tinyModel(k)
		return m, meta, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := kernels.MustCompile()
	srv := NewServer(reg, c.Vocab, 8, 2*time.Millisecond)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// predictBody builds a /predict request for a corpus region's graph.
func predictBody(t *testing.T, machine, objective string, regionIdx int) []byte {
	t.Helper()
	c := kernels.MustCompile()
	graphJSON, err := json.Marshal(c.Regions[regionIdx].Graph)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(PredictRequest{
		Machine: machine, Objective: objective, Graph: graphJSON,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestServerPredictTimeAndEDP(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Post(ts.URL+"/predict", "application/json",
		bytes.NewReader(predictBody(t, "haswell", ObjectiveTime, 0)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Picks) != 4 { // tiny time model: one head per Haswell cap
		t.Fatalf("got %d picks, want 4: %+v", len(pr.Picks), pr)
	}
	for _, p := range pr.Picks {
		if p.Config == "" || p.CapW <= 0 {
			t.Fatalf("bad pick %+v", p)
		}
	}

	resp2, err := http.Post(ts.URL+"/predict", "application/json",
		bytes.NewReader(predictBody(t, "haswell", ObjectiveEDP, 1)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var pr2 PredictResponse
	if err := json.NewDecoder(resp2.Body).Decode(&pr2); err != nil {
		t.Fatal(err)
	}
	if len(pr2.Picks) != 1 || pr2.Picks[0].CapW <= 0 {
		t.Fatalf("edp picks = %+v", pr2.Picks)
	}
}

// TestServerConcurrentPredictionsDeterministic: the acceptance criterion
// — concurrent HTTP predictions must equal each other (and therefore the
// single-request answer) for the same graph.
func TestServerConcurrentPredictionsDeterministic(t *testing.T) {
	_, ts := newTestServer(t)

	// Golden single request.
	golden := postPredict(t, ts, predictBody(t, "haswell", ObjectiveTime, 2))

	const n = 24
	results := make([]PredictResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = postPredict(t, ts, predictBody(t, "haswell", ObjectiveTime, 2))
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if len(r.Picks) != len(golden.Picks) {
			t.Fatalf("request %d: %d picks", i, len(r.Picks))
		}
		for h := range r.Picks {
			if r.Picks[h].ConfigIndex != golden.Picks[h].ConfigIndex {
				t.Fatalf("request %d head %d: %d != golden %d",
					i, h, r.Picks[h].ConfigIndex, golden.Picks[h].ConfigIndex)
			}
		}
	}
}

func postPredict(t *testing.T, ts *httptest.Server, body []byte) PredictResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"GET /predict", func() (*http.Response, error) {
			return http.Get(ts.URL + "/predict")
		}, http.StatusMethodNotAllowed},
		{"bad JSON", func() (*http.Response, error) {
			return http.Post(ts.URL+"/predict", "application/json", bytes.NewReader([]byte("{")))
		}, http.StatusBadRequest},
		{"unknown machine", func() (*http.Response, error) {
			return http.Post(ts.URL+"/predict", "application/json",
				bytes.NewReader(predictBody(t, "epyc", ObjectiveTime, 0)))
		}, http.StatusBadRequest},
		{"unknown objective", func() (*http.Response, error) {
			return http.Post(ts.URL+"/predict", "application/json",
				bytes.NewReader(predictBody(t, "haswell", "latency", 0)))
		}, http.StatusBadRequest},
		{"unknown loocv app", func() (*http.Response, error) {
			c := kernels.MustCompile()
			graphJSON, _ := json.Marshal(c.Regions[0].Graph)
			body, _ := json.Marshal(PredictRequest{
				Machine: "haswell", Objective: ObjectiveTime,
				Scenario: "loocv:nosuchapp", Graph: graphJSON,
			})
			return http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		}, http.StatusBadRequest},
		{"no graph", func() (*http.Response, error) {
			body, _ := json.Marshal(PredictRequest{Machine: "haswell", Objective: ObjectiveTime})
			return http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		}, http.StatusBadRequest},
		{"oversized body", func() (*http.Response, error) {
			huge := bytes.Repeat([]byte("x"), maxRequestBytes+1)
			return http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(huge))
		}, http.StatusBadRequest},
		{"counters on static model", func() (*http.Response, error) {
			c := kernels.MustCompile()
			graphJSON, _ := json.Marshal(c.Regions[0].Graph)
			body, _ := json.Marshal(PredictRequest{
				Machine: "haswell", Objective: ObjectiveTime, Graph: graphJSON,
				Counters: []float64{1, 2, 3},
			})
			return http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestServerBatcherLRUBounded: the operator's cache capacity bounds live
// batchers too — serving a third model on a capacity-2 server closes the
// least-recently-used batcher instead of accumulating all three.
func TestServerBatcherLRUBounded(t *testing.T) {
	reg, err := New("", 2, func(k Key) (*core.Model, core.ModelMeta, error) {
		m, meta := tinyModel(k)
		return m, meta, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := kernels.MustCompile()
	srv := NewServer(reg, c.Vocab, 4, time.Millisecond)
	defer srv.Close()

	keys := []Key{
		{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime},
		{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveEDP},
		{Machine: "skylake", Scenario: ScenarioFull, Objective: ObjectiveTime},
	}
	batchers := make([]*Batcher, len(keys))
	for i, k := range keys {
		b, err := srv.batcherFor(k)
		if err != nil {
			t.Fatal(err)
		}
		batchers[i] = b
	}
	srv.mu.Lock()
	live := srv.batchers.len()
	srv.mu.Unlock()
	if live != 2 {
		t.Fatalf("%d live batchers, want 2 (capacity)", live)
	}
	// The evicted (oldest) batcher drains and closes on its own
	// goroutine; poll until it refuses work.
	g := corpusGraphs(t, 1)[0]
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := batchers[0].Predict(Request{Graph: g}); err == ErrClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evicted batcher never closed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The survivors still serve.
	if _, err := batchers[2].Predict(Request{Graph: g}); err != nil {
		t.Fatalf("surviving batcher failed: %v", err)
	}
}

// TestServerClosedRefusesNewBatchers: batcherFor racing Close must not
// leak a live batcher.
func TestServerClosedRefusesNewBatchers(t *testing.T) {
	reg, err := New("", 2, func(k Key) (*core.Model, core.ModelMeta, error) {
		m, meta := tinyModel(k)
		return m, meta, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := kernels.MustCompile()
	srv := NewServer(reg, c.Vocab, 4, time.Millisecond)
	srv.Close()
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	if _, err := srv.batcherFor(key); err != ErrClosed {
		t.Fatalf("batcherFor on a closed server = %v, want ErrClosed", err)
	}
}

func TestServerHealthzAndModels(t *testing.T) {
	_, ts := newTestServer(t)
	postPredict(t, ts, predictBody(t, "haswell", ObjectiveTime, 0))

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("health = %+v", health)
	}
	if health["served"].(float64) < 1 || health["models_trained"].(float64) != 1 {
		t.Fatalf("health counters = %+v", health)
	}

	resp2, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var infos []Info
	if err := json.NewDecoder(resp2.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || !infos[0].Cached || infos[0].Key.Machine != "haswell" {
		t.Fatalf("models = %+v", infos)
	}
}

// tuneBody builds a /tune request for a corpus region.
func tuneBody(t *testing.T, req TuneRequest) []byte {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postTune(t *testing.T, url string, body []byte) (*http.Response, TuneResponse) {
	t.Helper()
	resp, err := http.Post(url+"/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var tr TuneResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, tr
}

// TestServerTuneStrategies runs one bounded engine session per strategy
// through /tune and checks shape, budgets, and determinism.
func TestServerTuneStrategies(t *testing.T) {
	_, ts := newTestServer(t)
	c := kernels.MustCompile()
	region := c.Regions[0].ID

	// gnn: zero-execution, one pick per Haswell cap.
	resp, tr := postTune(t, ts.URL, tuneBody(t, TuneRequest{
		Machine: "haswell", Objective: ObjectiveTime, Strategy: "gnn", RegionID: region,
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gnn status %d", resp.StatusCode)
	}
	if len(tr.Picks) != 4 {
		t.Fatalf("gnn picks = %d, want 4", len(tr.Picks))
	}
	for _, p := range tr.Picks {
		if p.Evals != 0 {
			t.Fatalf("gnn spent %d evals, want 0", p.Evals)
		}
		if p.OracleFrac <= 0 || p.OracleFrac > 1.0001 {
			t.Fatalf("gnn oracle frac %g out of range", p.OracleFrac)
		}
	}

	// hybrid: the shortlist budget is spent per cap, and sessions are
	// reproducible from (strategy, seed, budget).
	hybridReq := tuneBody(t, TuneRequest{
		Machine: "haswell", Objective: ObjectiveTime, Strategy: "hybrid", RegionID: region, Budget: 3,
	})
	resp, tr = postTune(t, ts.URL, hybridReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hybrid status %d", resp.StatusCode)
	}
	for _, p := range tr.Picks {
		if p.Evals != 3 {
			t.Fatalf("hybrid spent %d evals, want 3", p.Evals)
		}
	}
	_, tr2 := postTune(t, ts.URL, hybridReq)
	for i := range tr.Picks {
		if tr.Picks[i] != tr2.Picks[i] {
			t.Fatalf("hybrid not reproducible: %+v vs %+v", tr.Picks[i], tr2.Picks[i])
		}
	}

	// bliss over the model-free energy objective: one joint pick.
	resp, tr = postTune(t, ts.URL, tuneBody(t, TuneRequest{
		Machine: "haswell", Objective: "energy", Strategy: "bliss", RegionID: region,
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bliss/energy status %d", resp.StatusCode)
	}
	if len(tr.Picks) != 1 || tr.Picks[0].Evals == 0 || tr.Budget == 0 {
		t.Fatalf("bliss/energy picks = %+v (budget %d)", tr.Picks, tr.Budget)
	}

	// opentuner over EDP with an explicit budget.
	resp, tr = postTune(t, ts.URL, tuneBody(t, TuneRequest{
		Machine: "haswell", Objective: ObjectiveEDP, Strategy: "opentuner", RegionID: region, Budget: 8,
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("opentuner status %d", resp.StatusCode)
	}
	if len(tr.Picks) != 1 || tr.Picks[0].Evals > 8 {
		t.Fatalf("opentuner picks = %+v", tr.Picks)
	}
}

// TestServerTuneRejections pins the /tune validation surface.
func TestServerTuneRejections(t *testing.T) {
	_, ts := newTestServer(t)
	c := kernels.MustCompile()
	region := c.Regions[0].ID

	cases := []struct {
		name string
		req  TuneRequest
		want string
	}{
		{"unknown strategy", TuneRequest{Machine: "haswell", Objective: "time", Strategy: "annealing", RegionID: region}, "valid: gnn"},
		{"unknown objective", TuneRequest{Machine: "haswell", Objective: "latency", Strategy: "bliss", RegionID: region}, "valid: time"},
		{"energy needs search", TuneRequest{Machine: "haswell", Objective: "energy", Strategy: "gnn", RegionID: region}, "no trained model"},
		{"unknown region", TuneRequest{Machine: "haswell", Objective: "time", Strategy: "bliss", RegionID: "nope#9"}, "unknown region"},
		{"oversized budget", TuneRequest{Machine: "haswell", Objective: "time", Strategy: "bliss", RegionID: region, Budget: MaxTuneBudget + 1}, "budget"},
		{"bad machine", TuneRequest{Machine: "epyc", Objective: "time", Strategy: "bliss", RegionID: region}, ""},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/tune", "application/json", bytes.NewReader(tuneBody(t, tc.req)))
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", tc.name, resp.StatusCode, body)
			continue
		}
		if tc.want != "" && !strings.Contains(body["error"], tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, body["error"], tc.want)
		}
	}
}
