package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/core"
	"pnptuner/internal/kernels"
)

// newTestServer wires a registry with the tiny trainer behind httptest.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	reg, err := New("", 4, func(k Key) (*core.Model, core.ModelMeta, error) {
		m, meta := tinyModel(k)
		return m, meta, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := kernels.MustCompile()
	srv := NewServer(reg, c.Vocab, ServerConfig{MaxBatch: 8, MaxWait: 2 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// predictBody builds a /v1/predict request for a corpus region's graph.
func predictBody(t testing.TB, machine, objective string, regionIdx int) []byte {
	t.Helper()
	c := kernels.MustCompile()
	graphJSON, err := json.Marshal(c.Regions[regionIdx].Graph)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(api.PredictRequest{
		Machine: machine, Objective: objective, Graph: graphJSON,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// decodeError reads a non-2xx response's ErrorBody envelope.
func decodeError(t *testing.T, resp *http.Response) api.ErrorBody {
	t.Helper()
	var body api.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error response is not the envelope: %v", err)
	}
	if body.Error.Code == "" {
		t.Fatalf("error envelope has no code: %+v", body)
	}
	if want := api.StatusFor(body.Error.Code); want != resp.StatusCode {
		t.Fatalf("status %d does not match code %q (want %d)", resp.StatusCode, body.Error.Code, want)
	}
	return body
}

func TestServerPredictTimeAndEDP(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Post(ts.URL+api.PathPredict, "application/json",
		bytes.NewReader(predictBody(t, "haswell", ObjectiveTime, 0)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("no request ID header on the response")
	}
	var pr api.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Picks) != 4 { // tiny time model: one head per Haswell cap
		t.Fatalf("got %d picks, want 4: %+v", len(pr.Picks), pr)
	}
	for _, p := range pr.Picks {
		if p.Config == "" || p.CapW <= 0 {
			t.Fatalf("bad pick %+v", p)
		}
	}

	resp2, err := http.Post(ts.URL+api.PathPredict, "application/json",
		bytes.NewReader(predictBody(t, "haswell", ObjectiveEDP, 1)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var pr2 api.PredictResponse
	if err := json.NewDecoder(resp2.Body).Decode(&pr2); err != nil {
		t.Fatal(err)
	}
	if len(pr2.Picks) != 1 || pr2.Picks[0].CapW <= 0 {
		t.Fatalf("edp picks = %+v", pr2.Picks)
	}
}

// TestServerLegacyPredictAlias: the pre-versioning /predict path serves
// the identical body, flagged deprecated.
func TestServerLegacyPredictAlias(t *testing.T) {
	_, ts := newTestServer(t)
	body := predictBody(t, "haswell", ObjectiveTime, 0)

	v1 := postPredict(t, ts, api.PathPredict, body)
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy alias not flagged deprecated")
	}
	if !strings.Contains(resp.Header.Get("Link"), api.PathPredict) {
		t.Fatalf("legacy Link header = %q", resp.Header.Get("Link"))
	}
	var legacy api.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&legacy); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1, legacy) {
		t.Fatalf("legacy /predict diverges from v1: %+v vs %+v", legacy, v1)
	}
}

// TestServerConcurrentPredictionsDeterministic: the acceptance criterion
// — concurrent HTTP predictions must equal each other (and therefore the
// single-request answer) for the same graph.
func TestServerConcurrentPredictionsDeterministic(t *testing.T) {
	_, ts := newTestServer(t)

	// Golden single request.
	golden := postPredict(t, ts, api.PathPredict, predictBody(t, "haswell", ObjectiveTime, 2))

	const n = 24
	results := make([]api.PredictResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = postPredict(t, ts, api.PathPredict, predictBody(t, "haswell", ObjectiveTime, 2))
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if len(r.Picks) != len(golden.Picks) {
			t.Fatalf("request %d: %d picks", i, len(r.Picks))
		}
		for h := range r.Picks {
			if r.Picks[h].ConfigIndex != golden.Picks[h].ConfigIndex {
				t.Fatalf("request %d head %d: %d != golden %d",
					i, h, r.Picks[h].ConfigIndex, golden.Picks[h].ConfigIndex)
			}
		}
	}
}

func postPredict(t testing.TB, ts *httptest.Server, path string, body []byte) api.PredictResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr api.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestServerErrorCodes pins every client-visible error path to its
// stable machine-readable code — the contract the SDK switches on.
func TestServerErrorCodes(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		do   func() (*http.Response, error)
		code string
	}{
		{"GET /v1/predict", func() (*http.Response, error) {
			return http.Get(ts.URL + api.PathPredict)
		}, api.CodeMethodNotAllowed},
		{"GET legacy /predict", func() (*http.Response, error) {
			return http.Get(ts.URL + "/predict")
		}, api.CodeMethodNotAllowed},
		{"POST /v1/healthz", func() (*http.Response, error) {
			return http.Post(ts.URL+api.PathHealthz, "application/json", nil)
		}, api.CodeMethodNotAllowed},
		{"POST /v1/models", func() (*http.Response, error) {
			return http.Post(ts.URL+api.PathModels, "application/json", nil)
		}, api.CodeMethodNotAllowed},
		{"POST legacy /healthz", func() (*http.Response, error) {
			return http.Post(ts.URL+"/healthz", "application/json", nil)
		}, api.CodeMethodNotAllowed},
		{"POST legacy /models", func() (*http.Response, error) {
			return http.Post(ts.URL+"/models", "application/json", nil)
		}, api.CodeMethodNotAllowed},
		{"unknown route", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v2/predict")
		}, api.CodeNotFound},
		{"bad JSON", func() (*http.Response, error) {
			return http.Post(ts.URL+api.PathPredict, "application/json", bytes.NewReader([]byte("{")))
		}, api.CodeBadRequest},
		{"unknown machine", func() (*http.Response, error) {
			return http.Post(ts.URL+api.PathPredict, "application/json",
				bytes.NewReader(predictBody(t, "epyc", ObjectiveTime, 0)))
		}, api.CodeBadRequest},
		{"unknown objective", func() (*http.Response, error) {
			return http.Post(ts.URL+api.PathPredict, "application/json",
				bytes.NewReader(predictBody(t, "haswell", "latency", 0)))
		}, api.CodeBadRequest},
		{"unknown loocv app", func() (*http.Response, error) {
			c := kernels.MustCompile()
			graphJSON, _ := json.Marshal(c.Regions[0].Graph)
			body, _ := json.Marshal(api.PredictRequest{
				Machine: "haswell", Objective: ObjectiveTime,
				Scenario: "loocv:nosuchapp", Graph: graphJSON,
			})
			return http.Post(ts.URL+api.PathPredict, "application/json", bytes.NewReader(body))
		}, api.CodeBadRequest},
		{"no graph", func() (*http.Response, error) {
			body, _ := json.Marshal(api.PredictRequest{Machine: "haswell", Objective: ObjectiveTime})
			return http.Post(ts.URL+api.PathPredict, "application/json", bytes.NewReader(body))
		}, api.CodeBadRequest},
		{"oversized body", func() (*http.Response, error) {
			// Valid JSON whose decode must cross the byte ceiling.
			huge := append([]byte(`{"machine":"`), bytes.Repeat([]byte("x"), api.MaxRequestBytes+1)...)
			huge = append(huge, `"}`...)
			return http.Post(ts.URL+api.PathPredict, "application/json", bytes.NewReader(huge))
		}, api.CodeGraphTooLarge},
		{"counters on static model", func() (*http.Response, error) {
			c := kernels.MustCompile()
			graphJSON, _ := json.Marshal(c.Regions[0].Graph)
			body, _ := json.Marshal(api.PredictRequest{
				Machine: "haswell", Objective: ObjectiveTime, Graph: graphJSON,
				Counters: []float64{1, 2, 3},
			})
			return http.Post(ts.URL+api.PathPredict, "application/json", bytes.NewReader(body))
		}, api.CodeBadRequest},
		{"unknown job", func() (*http.Response, error) {
			return http.Get(ts.URL + api.PathJobs + "/nosuchjob")
		}, api.CodeJobNotFound},
		{"cancel unknown job", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+api.PathJobs+"/nosuchjob", nil)
			return http.DefaultClient.Do(req)
		}, api.CodeJobNotFound},
		{"PUT on a job", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodPut, ts.URL+api.PathJobs+"/nosuchjob", nil)
			return http.DefaultClient.Do(req)
		}, api.CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body := decodeError(t, resp)
		resp.Body.Close()
		if body.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q (%s)", tc.name, body.Error.Code, tc.code, body.Error.Message)
		}
	}
}

// TestServerModelNotFound: with no trainer and no store, a prediction
// for a missing model is a 404 with the stable code, not a 500.
func TestServerModelNotFound(t *testing.T) {
	reg, err := New("", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := kernels.MustCompile()
	srv := NewServer(reg, c.Vocab, ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	resp, err := http.Post(ts.URL+api.PathPredict, "application/json",
		bytes.NewReader(predictBody(t, "haswell", ObjectiveTime, 0)))
	if err != nil {
		t.Fatal(err)
	}
	body := decodeError(t, resp)
	resp.Body.Close()
	if body.Error.Code != api.CodeModelNotFound {
		t.Fatalf("code = %q, want %q", body.Error.Code, api.CodeModelNotFound)
	}

	// The tune path resolves models the same way.
	tuneResp, err := http.Post(ts.URL+api.PathTune, "application/json", bytes.NewReader(tuneBody(t, api.TuneRequest{
		Machine: "haswell", Objective: ObjectiveTime, Strategy: "gnn",
		RegionID: kernels.MustCompile().Regions[0].ID,
	})))
	if err != nil {
		t.Fatal(err)
	}
	body = decodeError(t, tuneResp)
	tuneResp.Body.Close()
	if body.Error.Code != api.CodeModelNotFound {
		t.Fatalf("tune code = %q, want %q", body.Error.Code, api.CodeModelNotFound)
	}
}

// TestServerRequestID: the correlation ID round-trips into error
// envelopes, and absent ones are generated.
func TestServerRequestID(t *testing.T) {
	_, ts := newTestServer(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+api.PathJobs+"/missing", nil)
	req.Header.Set(RequestIDHeader, "corr-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := decodeError(t, resp)
	resp.Body.Close()
	if body.RequestID != "corr-42" || resp.Header.Get(RequestIDHeader) != "corr-42" {
		t.Fatalf("request ID not echoed: body %q header %q", body.RequestID, resp.Header.Get(RequestIDHeader))
	}
}

// TestServerBatcherLRUBounded: the operator's cache capacity bounds live
// batchers too — serving a third model on a capacity-2 server closes the
// least-recently-used batcher instead of accumulating all three.
func TestServerBatcherLRUBounded(t *testing.T) {
	reg, err := New("", 2, func(k Key) (*core.Model, core.ModelMeta, error) {
		m, meta := tinyModel(k)
		return m, meta, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := kernels.MustCompile()
	srv := NewServer(reg, c.Vocab, ServerConfig{MaxBatch: 4, MaxWait: time.Millisecond})
	defer srv.Close()

	keys := []Key{
		{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime},
		{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveEDP},
		{Machine: "skylake", Scenario: ScenarioFull, Objective: ObjectiveTime},
	}
	batchers := make([]*Batcher, len(keys))
	for i, k := range keys {
		b, err := srv.batcherFor(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		batchers[i] = b
	}
	srv.mu.Lock()
	live := srv.batchers.len()
	srv.mu.Unlock()
	if live != 2 {
		t.Fatalf("%d live batchers, want 2 (capacity)", live)
	}
	// The evicted (oldest) batcher drains and closes on its own
	// goroutine; poll until it refuses work.
	g := corpusGraphs(t, 1)[0]
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := batchers[0].Predict(Request{Graph: g}); err == ErrClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evicted batcher never closed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The survivors still serve.
	if _, err := batchers[2].Predict(Request{Graph: g}); err != nil {
		t.Fatalf("surviving batcher failed: %v", err)
	}
}

// TestServerClosedRefusesNewBatchers: batcherFor racing Close must not
// leak a live batcher.
func TestServerClosedRefusesNewBatchers(t *testing.T) {
	reg, err := New("", 2, func(k Key) (*core.Model, core.ModelMeta, error) {
		m, meta := tinyModel(k)
		return m, meta, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := kernels.MustCompile()
	srv := NewServer(reg, c.Vocab, ServerConfig{MaxBatch: 4, MaxWait: time.Millisecond})
	srv.Close()
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	if _, err := srv.batcherFor(context.Background(), key); err != ErrClosed {
		t.Fatalf("batcherFor on a closed server = %v, want ErrClosed", err)
	}
}

func TestServerHealthzAndModels(t *testing.T) {
	_, ts := newTestServer(t)
	postPredict(t, ts, api.PathPredict, predictBody(t, "haswell", ObjectiveTime, 0))

	for _, path := range []string{api.PathHealthz, "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var health api.Health
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if health.Status != "ok" {
			t.Fatalf("%s health = %+v", path, health)
		}
		if health.Served < 1 || health.ModelsTrained != 1 {
			t.Fatalf("%s health counters = %+v", path, health)
		}
		// Per-route metrics surface in the health body.
		if health.Routes[api.PathPredict].Count < 1 {
			t.Fatalf("%s route metrics missing /v1/predict: %+v", path, health.Routes)
		}
	}

	for _, path := range []string{api.PathModels, "/models"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var infos []api.ModelInfo
		if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(infos) != 1 || !infos[0].Cached || infos[0].Key.Machine != "haswell" {
			t.Fatalf("%s models = %+v", path, infos)
		}
		if len(infos[0].Meta) == 0 {
			t.Fatalf("%s model meta missing: %+v", path, infos[0])
		}
	}
}

// tuneBody builds a tune request body.
func tuneBody(t *testing.T, req api.TuneRequest) []byte {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postTune(t *testing.T, url, path string, body []byte) (*http.Response, api.TuneResponse) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var tr api.TuneResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, tr
}

// TestServerTuneStrategies runs one bounded engine session per strategy
// through /v1/tune and checks shape, budgets, traces, and determinism.
func TestServerTuneStrategies(t *testing.T) {
	_, ts := newTestServer(t)
	c := kernels.MustCompile()
	region := c.Regions[0].ID

	// gnn: zero-execution, one pick per Haswell cap, no trace.
	resp, tr := postTune(t, ts.URL, api.PathTune, tuneBody(t, api.TuneRequest{
		Machine: "haswell", Objective: ObjectiveTime, Strategy: "gnn", RegionID: region,
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gnn status %d", resp.StatusCode)
	}
	if len(tr.Picks) != 4 {
		t.Fatalf("gnn picks = %d, want 4", len(tr.Picks))
	}
	for _, p := range tr.Picks {
		if p.Evals != 0 || len(p.Trace) != 0 {
			t.Fatalf("gnn spent %d evals (trace %d), want 0", p.Evals, len(p.Trace))
		}
		if p.OracleFrac <= 0 || p.OracleFrac > 1.0001 {
			t.Fatalf("gnn oracle frac %g out of range", p.OracleFrac)
		}
	}

	// hybrid: the shortlist budget is spent per cap, the trace records
	// each measurement, and sessions are reproducible from
	// (strategy, seed, budget).
	hybridReq := tuneBody(t, api.TuneRequest{
		Machine: "haswell", Objective: ObjectiveTime, Strategy: "hybrid", RegionID: region, Budget: 3,
	})
	resp, tr = postTune(t, ts.URL, api.PathTune, hybridReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hybrid status %d", resp.StatusCode)
	}
	for _, p := range tr.Picks {
		if p.Evals != 3 || len(p.Trace) != 3 {
			t.Fatalf("hybrid spent %d evals, trace %d, want 3", p.Evals, len(p.Trace))
		}
	}
	_, tr2 := postTune(t, ts.URL, api.PathTune, hybridReq)
	if !reflect.DeepEqual(tr, tr2) {
		t.Fatalf("hybrid not reproducible: %+v vs %+v", tr, tr2)
	}

	// bliss over the model-free energy objective: one joint pick.
	resp, tr = postTune(t, ts.URL, api.PathTune, tuneBody(t, api.TuneRequest{
		Machine: "haswell", Objective: "energy", Strategy: "bliss", RegionID: region,
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bliss/energy status %d", resp.StatusCode)
	}
	if len(tr.Picks) != 1 || tr.Picks[0].Evals == 0 || tr.Budget == 0 {
		t.Fatalf("bliss/energy picks = %+v (budget %d)", tr.Picks, tr.Budget)
	}
	if len(tr.Picks[0].Trace) != tr.Picks[0].Evals {
		t.Fatalf("bliss trace %d != evals %d", len(tr.Picks[0].Trace), tr.Picks[0].Evals)
	}

	// opentuner over EDP with an explicit budget.
	resp, tr = postTune(t, ts.URL, api.PathTune, tuneBody(t, api.TuneRequest{
		Machine: "haswell", Objective: ObjectiveEDP, Strategy: "opentuner", RegionID: region, Budget: 8,
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("opentuner status %d", resp.StatusCode)
	}
	if len(tr.Picks) != 1 || tr.Picks[0].Evals > 8 {
		t.Fatalf("opentuner picks = %+v", tr.Picks)
	}
}

// TestServerTuneRejections pins the tune validation surface to its
// stable codes.
func TestServerTuneRejections(t *testing.T) {
	_, ts := newTestServer(t)
	c := kernels.MustCompile()
	region := c.Regions[0].ID

	cases := []struct {
		name string
		req  api.TuneRequest
		code string
		want string
	}{
		{"unknown strategy", api.TuneRequest{Machine: "haswell", Objective: "time", Strategy: "annealing", RegionID: region}, api.CodeBadRequest, "valid: gnn"},
		{"unknown objective", api.TuneRequest{Machine: "haswell", Objective: "latency", Strategy: "bliss", RegionID: region}, api.CodeBadRequest, "valid: time"},
		{"energy needs search", api.TuneRequest{Machine: "haswell", Objective: "energy", Strategy: "gnn", RegionID: region}, api.CodeBadRequest, "no trained model"},
		{"unknown region", api.TuneRequest{Machine: "haswell", Objective: "time", Strategy: "bliss", RegionID: "nope#9"}, api.CodeRegionNotFound, "unknown region"},
		{"oversized budget", api.TuneRequest{Machine: "haswell", Objective: "time", Strategy: "bliss", RegionID: region, Budget: api.MaxTuneBudget + 1}, api.CodeBudgetExceeded, "budget"},
		{"bad machine", api.TuneRequest{Machine: "epyc", Objective: "time", Strategy: "bliss", RegionID: region}, api.CodeBadRequest, ""},
		{"async rejects like sync", api.TuneRequest{Machine: "haswell", Objective: "time", Strategy: "bliss", RegionID: region, Budget: api.MaxTuneBudget + 1, Async: true}, api.CodeBudgetExceeded, "budget"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+api.PathTune, "application/json", bytes.NewReader(tuneBody(t, tc.req)))
		if err != nil {
			t.Fatal(err)
		}
		body := decodeError(t, resp)
		resp.Body.Close()
		if body.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q (%s)", tc.name, body.Error.Code, tc.code, body.Error.Message)
			continue
		}
		if tc.want != "" && !strings.Contains(body.Error.Message, tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, body.Error.Message, tc.want)
		}
	}
}

// pollJob GETs a job until it reaches a terminal status.
func pollJob(t *testing.T, base, id string) api.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + api.PathJobs + "/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			body := decodeError(t, resp)
			resp.Body.Close()
			t.Fatalf("poll %s: %+v", id, body)
		}
		var job api.Job
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if job.Terminal() {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, job)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerAsyncTuneParity is the acceptance criterion: for the same
// (model, region, strategy, seed, budget), the synchronous /v1/tune
// response, the async job's result, and the legacy /tune response are
// bit-identical — best config and full trace.
func TestServerAsyncTuneParity(t *testing.T) {
	_, ts := newTestServer(t)
	c := kernels.MustCompile()

	reqs := []api.TuneRequest{
		{Machine: "haswell", Objective: ObjectiveTime, Strategy: "hybrid", RegionID: c.Regions[0].ID, Budget: 3, Seed: 99},
		{Machine: "haswell", Objective: ObjectiveEDP, Strategy: "opentuner", RegionID: c.Regions[1].ID, Budget: 8, Seed: 7},
		{Machine: "haswell", Objective: "energy", Strategy: "bliss", RegionID: c.Regions[2].ID, Budget: 10},
		{Machine: "haswell", Objective: ObjectiveTime, Strategy: "gnn", RegionID: c.Regions[3].ID},
	}
	for _, req := range reqs {
		name := req.Strategy + "/" + req.Objective

		resp, sync := postTune(t, ts.URL, api.PathTune, tuneBody(t, req))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: sync status %d", name, resp.StatusCode)
		}
		resp, legacy := postTune(t, ts.URL, "/tune", tuneBody(t, req))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: legacy status %d", name, resp.StatusCode)
		}
		if !reflect.DeepEqual(sync, legacy) {
			t.Fatalf("%s: legacy /tune diverges from v1:\n%+v\n%+v", name, legacy, sync)
		}

		async := req
		async.Async = true
		aresp, err := http.Post(ts.URL+api.PathTune, "application/json", bytes.NewReader(tuneBody(t, async)))
		if err != nil {
			t.Fatal(err)
		}
		if aresp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: async status %d, want 202", name, aresp.StatusCode)
		}
		var job api.Job
		if err := json.NewDecoder(aresp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		aresp.Body.Close()
		if job.ID == "" || job.Request.Async {
			t.Fatalf("%s: submitted job = %+v", name, job)
		}
		fin := pollJob(t, ts.URL, job.ID)
		if fin.Status != api.JobDone || fin.Result == nil {
			t.Fatalf("%s: job = %+v", name, fin)
		}
		if !reflect.DeepEqual(sync, *fin.Result) {
			t.Fatalf("%s: async result diverges from sync:\n%+v\n%+v", name, *fin.Result, sync)
		}
	}

	// The jobs listing shows the finished jobs.
	resp, err := http.Get(ts.URL + api.PathJobs)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []api.Job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jobs) != len(reqs) {
		t.Fatalf("%d jobs listed, want %d", len(jobs), len(reqs))
	}
}

// TestServerJobCancel: cancelling through the HTTP surface — a finished
// job is a no-op, and DELETE answers with the job snapshot.
func TestServerJobCancel(t *testing.T) {
	_, ts := newTestServer(t)
	c := kernels.MustCompile()

	body := tuneBody(t, api.TuneRequest{
		Machine: "haswell", Objective: ObjectiveTime, Strategy: "hybrid",
		RegionID: c.Regions[0].ID, Budget: 3, Async: true,
	})
	resp, err := http.Post(ts.URL+api.PathTune, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job api.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := pollJob(t, ts.URL, job.ID)
	if fin.Status != api.JobDone {
		t.Fatalf("job = %+v", fin)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+api.PathJobs+"/"+job.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var after api.Job
	if err := json.NewDecoder(dresp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || after.Status != api.JobDone {
		t.Fatalf("cancel of finished job = %d %+v", dresp.StatusCode, after)
	}
}

// TestServerShutdownDrains: Shutdown with headroom lets a running async
// job finish; afterwards new work is refused with the unavailable code.
func TestServerShutdownDrains(t *testing.T) {
	srv, ts := newTestServer(t)
	c := kernels.MustCompile()

	body := tuneBody(t, api.TuneRequest{
		Machine: "haswell", Objective: ObjectiveTime, Strategy: "hybrid",
		RegionID: c.Regions[0].ID, Budget: 3, Async: true,
	})
	resp, err := http.Post(ts.URL+api.PathTune, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job api.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Wait until a worker has picked the job up: Shutdown cancels jobs
	// still sitting in the queue (correctly), and this test is about the
	// drain of *running* work.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, info := srv.jobs.Get(job.ID)
		if info != nil {
			t.Fatalf("job lost before shutdown: %v", info)
		}
		if snap.Status != api.JobQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)

	// The job either finished (drained) or was cancelled after the
	// deadline — with 10s of headroom on a µs-scale session, it drained.
	fin, info := srv.jobs.Get(job.ID)
	if info != nil {
		t.Fatalf("job lost after shutdown: %v", info)
	}
	if fin.Status != api.JobDone {
		t.Fatalf("job after drain = %+v", fin)
	}

	// New sync work is refused with the stable code — including
	// model-free strategies, which never touch the (closed) batchers.
	for _, strategy := range []string{"gnn", "bliss"} {
		resp2, err := http.Post(ts.URL+api.PathTune, "application/json", bytes.NewReader(tuneBody(t, api.TuneRequest{
			Machine: "haswell", Objective: ObjectiveTime, Strategy: strategy, RegionID: c.Regions[0].ID,
		})))
		if err != nil {
			t.Fatal(err)
		}
		errBody := decodeError(t, resp2)
		resp2.Body.Close()
		if errBody.Error.Code != api.CodeUnavailable {
			t.Fatalf("post-shutdown %s code = %q, want %q", strategy, errBody.Error.Code, api.CodeUnavailable)
		}
	}
}
