package registry

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"pnptuner/internal/core"
	"pnptuner/internal/programl"
	"pnptuner/internal/rgcn"
	"pnptuner/internal/telemetry"
)

// ErrClosed is returned by Predict after Close.
var ErrClosed = errors.New("registry: batcher closed")

// ErrOverloaded is returned when the batcher's bounded predict queue is
// at depth: the request was shed before any work (no compilation result
// queued, no forward pass), so retrying after backoff is always safe.
// HTTP handlers map it to CodeOverloaded with a Retry-After hint.
var ErrOverloaded = errors.New("registry: predict queue full")

// ErrForward marks a server-side failure of the batched forward pass, as
// opposed to request-validation errors — HTTP handlers map it to 5xx.
var ErrForward = errors.New("registry: batched forward failed")

// Request is one prediction: a program graph (already token-annotated)
// plus the extra features the model expects (nil for static models).
// TopK > 1 additionally requests each head's k best classes (hybrid
// tuning shortlists); 0 asks for argmax picks only.
type Request struct {
	Graph  *programl.Graph
	Extras []float64
	TopK   int
}

// reply carries one request's result back to its caller.
type reply struct {
	picks []int
	topk  [][]int
	err   error
}

// request is a queued Request with its reply channel. The graph is
// compiled on the caller's goroutine before queuing, so compilation (CSR
// plan construction, gather arrays) runs in parallel across concurrent
// requests while the single batcher goroutine only merges precompiled
// plans and runs the forward pass.
type request struct {
	req   Request
	cg    *rgcn.CompiledGraph
	reply chan reply
	// Telemetry (set at admission when the batcher carries an obs): the
	// request's trace ID for batch spans, and its enqueue time for the
	// queue-wait histogram.
	tid string
	enq time.Time
}

// Batcher funnels concurrent predictions into micro-batches: the first
// queued request opens a collection window, further requests join until
// the batch hits MaxBatch or MaxWait elapses, and the whole window runs
// as one block-diagonal forward pass on the model. A Model is not
// goroutine-safe (layers cache per-call state), so the single batcher
// goroutine is also the serialization point — batching is what turns that
// constraint into throughput instead of a bottleneck.
type Batcher struct {
	model    *core.Model
	quant    *core.CompiledModel // non-nil: forward on the float32 snapshot
	maxBatch int
	maxWait  time.Duration

	// Meta is the served model's metadata (notably Meta.Version, which
	// responses echo). Set it before the batcher is published to other
	// goroutines; the batcher itself never touches it.
	Meta core.ModelMeta

	// obs is the server's shared batching instrumentation; nil (library
	// use, tests) disables it. Like Meta: set before publishing.
	obs *batcherObs

	reqs chan *request
	done chan struct{} // closed by Close after all senders finish
	exit chan struct{} // closed when the loop goroutine returns

	mu      sync.RWMutex
	closed  bool
	senders sync.WaitGroup
}

// NewBatcher starts a batcher over m. maxBatch bounds the window size
// (min 1); maxWait bounds how long the first request of a window waits
// for company.
func NewBatcher(m *core.Model, maxBatch int, maxWait time.Duration) *Batcher {
	return newBatcher(m, nil, maxBatch, maxWait)
}

// NewQuantizedBatcher starts a batcher that forwards on a float32
// quantized snapshot of m (converted once, here) instead of the float64
// model. Request validation still reads m's shape; m itself is never
// forwarded on, so it stays free for background retraining. Fails only
// for model shapes Quantize cannot mirror.
func NewQuantizedBatcher(m *core.Model, maxBatch int, maxWait time.Duration) (*Batcher, error) {
	q, err := m.Quantize()
	if err != nil {
		return nil, err
	}
	return newBatcher(m, q, maxBatch, maxWait), nil
}

func newBatcher(m *core.Model, q *core.CompiledModel, maxBatch int, maxWait time.Duration) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxWait <= 0 {
		maxWait = time.Millisecond
	}
	// The queue bound is the admission-control limit: four windows deep
	// (floored so tiny batch sizes keep useful burst headroom), past
	// which submit sheds with ErrOverloaded instead of queueing latency.
	queueCap := 4 * maxBatch
	if queueCap < 64 {
		queueCap = 64
	}
	b := &Batcher{
		model:    m,
		quant:    q,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		reqs:     make(chan *request, queueCap),
		done:     make(chan struct{}),
		exit:     make(chan struct{}),
	}
	go b.loop()
	return b
}

// NumHeads returns the width of every reply (one pick per model head).
func (b *Batcher) NumHeads() int { return len(b.model.Heads) }

// Quantized reports whether the batcher forwards on a float32 snapshot.
func (b *Batcher) Quantized() bool { return b.quant != nil }

// Predict queues a request and blocks for its result: the argmax class of
// every model head, index-aligned with the heads (per-cap picks for a
// scenario-1 model, a single joint pick for scenario 2).
func (b *Batcher) Predict(req Request) ([]int, error) {
	return b.PredictContext(context.Background(), req)
}

// PredictContext is Predict under a caller deadline: an expired ctx
// sheds the request before any work, and a ctx that expires while the
// request is queued abandons the wait (the window still computes the
// answer into the buffered reply, which is then discarded).
func (b *Batcher) PredictContext(ctx context.Context, req Request) ([]int, error) {
	req.TopK = 0
	rep, err := b.submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return rep.picks, nil
}

// PredictTopK queues a request and blocks for each head's k best
// classes, best first — the model-as-proposer path hybrid tuning
// sessions build their shortlists from. It batches with concurrent
// Predict traffic; the window runs one shared forward either way.
func (b *Batcher) PredictTopK(req Request, k int) ([][]int, error) {
	return b.PredictTopKContext(context.Background(), req, k)
}

// PredictTopKContext is PredictTopK under a caller deadline, with the
// same shed-before-work semantics as PredictContext.
func (b *Batcher) PredictTopKContext(ctx context.Context, req Request, k int) ([][]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("registry: top-k request with k=%d", k)
	}
	req.TopK = k
	rep, err := b.submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return rep.topk, nil
}

func (b *Batcher) submit(ctx context.Context, req Request) (reply, error) {
	if err := b.validate(req); err != nil {
		return reply{}, err
	}
	// Shed-before-work ordering: an already-expired budget costs nothing,
	// not a graph compilation.
	if err := ctx.Err(); err != nil {
		return reply{}, err
	}
	// Fast-fail before paying for compilation; the authoritative closed
	// check below still guards admission.
	b.mu.RLock()
	closed := b.closed
	b.mu.RUnlock()
	if closed {
		return reply{}, ErrClosed
	}
	cg := rgcn.CompileGraph(req.Graph)
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return reply{}, ErrClosed
	}
	r := &request{req: req, cg: cg, reply: make(chan reply, 1)}
	if b.obs != nil {
		r.tid = telemetry.TraceID(ctx)
		r.enq = time.Now()
	}
	b.senders.Add(1)
	b.mu.RUnlock()
	// Bounded admission: the queue never blocks a caller. A full queue
	// means the single consumer is maxBatch windows behind — shedding now
	// (cheap, typed, retryable) beats stacking latency onto every queued
	// request until something times out.
	select {
	case b.reqs <- r:
		if b.obs != nil {
			b.obs.depth.Add(1)
		}
	default:
		b.senders.Done()
		if b.obs != nil {
			b.obs.shed.Inc()
		}
		return reply{}, ErrOverloaded
	}
	b.senders.Done()
	select {
	case rep := <-r.reply:
		return rep, rep.err
	case <-ctx.Done():
		// The reply channel is buffered, so the window's eventual answer
		// is simply dropped; no goroutine is stranded.
		return reply{}, ctx.Err()
	}
}

// validate rejects malformed requests before they can reach (and panic)
// the batch engine, which would take the whole window down with them.
func (b *Batcher) validate(req Request) error {
	if req.Graph == nil {
		return errors.New("registry: request has no graph")
	}
	if err := req.Graph.Validate(); err != nil {
		return err
	}
	// Tokens past the model's vocabulary would silently embed as the
	// unknown token — a client/model mismatch worth failing loudly.
	if vocab := b.model.Enc.Emb.VocabSize; vocab > 0 {
		for i, n := range req.Graph.Nodes {
			if n.Token >= vocab {
				return fmt.Errorf("registry: node %d token %d outside the model's %d-token vocabulary",
					i, n.Token, vocab)
			}
		}
	}
	if want := b.model.ExtraDim; len(req.Extras) != want {
		return fmt.Errorf("registry: request has %d extra features, model wants %d",
			len(req.Extras), want)
	}
	return nil
}

// Close stops the batcher: in-flight requests finish, queued requests are
// answered ErrClosed, and subsequent Predicts fail fast. Safe to call
// more than once; blocks until the loop goroutine exits.
func (b *Batcher) Close() {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	b.mu.Unlock()
	if !already {
		b.senders.Wait() // every admitted Predict has finished its send
		close(b.done)
	}
	<-b.exit
}

// loop is the single consumer: collect a window, run it, repeat.
func (b *Batcher) loop() {
	defer close(b.exit)
	for {
		var first *request
		select {
		case first = <-b.reqs:
		case <-b.done:
			b.drain()
			return
		}
		batch := []*request{first}
		timer := time.NewTimer(b.maxWait)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
			case <-timer.C:
				break collect
			case <-b.done:
				break collect
			}
		}
		timer.Stop()
		b.run(batch)
	}
}

// drain answers everything still queued after Close.
func (b *Batcher) drain() {
	for {
		select {
		case r := <-b.reqs:
			if b.obs != nil {
				b.obs.depth.Add(-1)
			}
			r.reply <- reply{err: ErrClosed}
		default:
			return
		}
	}
}

// run scores one window in a single batched forward pass — merging the
// requests' precompiled plans instead of rebuilding adjacencies — and
// fans the per-head results back out to the callers: argmax picks for
// Predict requests, per-head shortlists for PredictTopK ones (the window
// computes the widest k any member asked for and slices). A panic from
// the model (a malformed graph that slipped past validation) fails the
// window, not the process.
func (b *Batcher) run(batch []*request) {
	cgs := make([]*rgcn.CompiledGraph, len(batch))
	var extras [][]float64
	if b.model.ExtraDim > 0 {
		extras = make([][]float64, len(batch))
	}
	maxK := 1
	for i, r := range batch {
		cgs[i] = r.cg
		if extras != nil {
			extras[i] = r.req.Extras
		}
		if r.req.TopK > maxK {
			maxK = r.req.TopK
		}
	}
	start := time.Now()
	if b.obs != nil {
		b.obs.depth.Add(-int64(len(batch)))
		b.obs.window.Observe(uint64(len(batch)))
		for _, r := range batch {
			// Queue wait spans admission through window collection: the
			// latency batching itself adds to this request.
			wait := start.Sub(r.enq)
			b.obs.wait.ObserveDuration(wait)
			b.obs.rec.Add(r.tid, "batch.queue", r.enq, wait)
		}
	}
	lists, err := b.forward(cgs, extras, maxK)
	if b.obs != nil {
		fdur := time.Since(start)
		b.obs.forward.ObserveDuration(fdur)
		size := strconv.Itoa(len(batch))
		for _, r := range batch {
			b.obs.rec.Add(r.tid, "batch.forward", start, fdur, "batch_size", size)
		}
	}
	for i, r := range batch {
		if err != nil {
			r.reply <- reply{err: err}
			continue
		}
		if k := r.req.TopK; k > 0 {
			topk := make([][]int, len(lists[i]))
			for h, l := range lists[i] {
				if k < len(l) {
					l = l[:k]
				}
				topk[h] = l
			}
			r.reply <- reply{topk: topk}
			continue
		}
		picks := make([]int, len(lists[i]))
		for h, l := range lists[i] {
			picks[h] = l[0]
		}
		r.reply <- reply{picks: picks}
	}
}

func (b *Batcher) forward(cgs []*rgcn.CompiledGraph, extras [][]float64, k int) (lists [][][]int, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v", ErrForward, p)
		}
	}()
	// k=1 is exactly the argmax of PredictCompiled (first-max tie-break).
	if b.quant != nil {
		return b.quant.TopKCompiled(cgs, extras, k), nil
	}
	return b.model.TopKCompiled(cgs, extras, k), nil
}
