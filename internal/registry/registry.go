// Package registry turns trained PnP models into reusable, servable
// artifacts: a content-addressed on-disk store keyed by (machine,
// scenario, objective), fronted by an LRU in-memory cache and a
// single-flight training path so concurrent requests for a missing model
// train it exactly once. It also provides the micro-batching inference
// queue and the HTTP serving layer behind cmd/pnpserve — the whole
// train-once/predict-many half of the system.
package registry

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pnptuner/internal/api"
	"pnptuner/internal/core"
	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/kernels"
	"pnptuner/internal/space"
)

// Objectives a registry key may carry (scenario 1 and scenario 2 of the
// paper).
const (
	ObjectiveTime = "time"
	ObjectiveEDP  = "edp"
)

// ScenarioFull is the production training split: all corpus regions, no
// holdout. LOOCV scenarios are spelled "loocv:<App>".
const ScenarioFull = "full"

// ErrModelNotFound marks a resolve miss that cannot self-heal: the model
// is neither cached nor on disk and no trainer is configured. The HTTP
// layer maps it to api.CodeModelNotFound.
var ErrModelNotFound = errors.New("model not found")

// Key identifies one servable model.
type Key struct {
	Machine   string // hw machine name: "haswell" or "skylake"
	Scenario  string // "full" or "loocv:<App>"
	Objective string // ObjectiveTime or ObjectiveEDP
}

// String renders the key for logs and listings.
func (k Key) String() string {
	return k.Machine + "/" + k.Objective + "/" + k.Scenario
}

// ID returns the content address of the key: a SHA-256 over its canonical
// string, hex-truncated. Store filenames and batcher identities hang off
// this, so renaming display formats never orphans stored models.
func (k Key) ID() string {
	sum := sha256.Sum256([]byte(k.Machine + "\x00" + k.Scenario + "\x00" + k.Objective))
	return hex.EncodeToString(sum[:12])
}

// Validate rejects malformed keys before they reach training, so callers
// can treat a Validate failure as client error and everything after it as
// server-side.
func (k Key) Validate() error {
	if _, err := hw.ByName(k.Machine); err != nil {
		return err
	}
	if k.Objective != ObjectiveTime && k.Objective != ObjectiveEDP {
		return fmt.Errorf("registry: unknown objective %q", k.Objective)
	}
	if app, ok := strings.CutPrefix(k.Scenario, "loocv:"); ok {
		for _, name := range kernels.AppNames() {
			if name == app {
				return nil
			}
		}
		return fmt.Errorf("registry: unknown application %q in scenario", app)
	}
	if k.Scenario != ScenarioFull {
		return fmt.Errorf("registry: unknown scenario %q", k.Scenario)
	}
	return nil
}

// Space returns the key's machine search space (the thing predictions
// index into).
func (k Key) Space() (*space.Space, error) {
	m, err := hw.ByName(k.Machine)
	if err != nil {
		return nil, err
	}
	return space.New(m), nil
}

// Entry is a resolved model: the network plus the metadata pinning it to
// its machine and search space.
type Entry struct {
	Key   Key
	Model *core.Model
	Meta  core.ModelMeta
}

// TrainFunc produces a model for a key on a registry miss.
type TrainFunc func(Key) (*core.Model, core.ModelMeta, error)

// Stats counts registry traffic.
type Stats struct {
	Hits            int64 // served from the LRU cache
	DiskLoads       int64 // deserialized from the store
	Trained         int64 // trained on miss
	Fetched         int64 // pulled from a peer replica on miss
	Imported        int64 // installed via the blob import endpoint or a fetch
	Evicted         int64 // dropped from the LRU cache
	PersistFailures int64 // trained models the store failed to persist
}

// Registry is the model store. All methods are safe for concurrent use.
type Registry struct {
	dir   string // on-disk store; "" keeps models in memory only
	train TrainFunc

	mu       sync.Mutex
	fetch    FetchFunc // peer-fetch hook, consulted between disk and training
	observer func(kind string, d time.Duration)
	capacity int
	cache    *lruCache // Key.ID() → *Entry
	inflight map[string]*flight
	stats    Stats
	// metaCache spares List from re-reading and re-digesting unchanged
	// store files; keyed by path, invalidated by (mtime, size).
	metaCache map[string]cachedMeta
	// history and samples drive the measure→learn loop (refresh.go):
	// per-key version events and the measured-execution feed retrains
	// consume. Both keyed by Key.ID().
	history map[string][]api.VersionEvent
	samples map[string]*dataset.SampleLog
}

// cachedMeta is one List metadata read, pinned to the file it came from.
type cachedMeta struct {
	modTime time.Time
	size    int64
	meta    core.ModelMeta
}

// flight is one in-progress resolve; waiters block on done.
type flight struct {
	done chan struct{}
	e    *Entry
	err  error
}

// New builds a registry over dir (created if missing; "" disables the
// on-disk store) holding at most capacity models in memory. train runs on
// a full miss; it may be nil, in which case misses fail.
func New(dir string, capacity int, train TrainFunc) (*Registry, error) {
	if capacity < 1 {
		capacity = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("registry: create store dir: %w", err)
		}
	}
	return &Registry{
		dir:       dir,
		train:     train,
		capacity:  capacity,
		cache:     newLRU(capacity),
		inflight:  map[string]*flight{},
		metaCache: map[string]cachedMeta{},
		history:   map[string][]api.VersionEvent{},
		samples:   map[string]*dataset.SampleLog{},
	}, nil
}

// path returns the content-addressed store file for a key.
func (r *Registry) path(key Key) string {
	return filepath.Join(r.dir, key.ID()+".pnpm")
}

// SetObserver installs the training-duration hook: it is called with
// kind "train" after every on-miss training and "retrain" after every
// refresh retrain, with the wall time spent. The serving layer wires
// it to the pnp_model_train_seconds telemetry family. Call before
// serving traffic; nil disables.
func (r *Registry) SetObserver(fn func(kind string, d time.Duration)) {
	r.mu.Lock()
	r.observer = fn
	r.mu.Unlock()
}

// observe reports one training duration to the observer, if any.
func (r *Registry) observe(kind string, d time.Duration) {
	r.mu.Lock()
	fn := r.observer
	r.mu.Unlock()
	if fn != nil {
		fn(kind, d)
	}
}

// Get resolves key: LRU cache, then the on-disk store, then training.
// Concurrent calls for the same missing key share one resolve — the model
// trains exactly once and every caller gets the same *Entry.
func (r *Registry) Get(key Key) (*Entry, error) {
	return r.GetContext(context.Background(), key)
}

// GetContext is Get carrying the resolving request's context *values*
// (most importantly its trace ID, which a peer fetch forwards so one
// trace spans gate → replica → peer). Cancellation deliberately does
// not propagate: the resolve is single-flight and its result is shared
// by every waiter, so the first caller hanging up must not abort work
// other callers are waiting on.
func (r *Registry) GetContext(ctx context.Context, key Key) (*Entry, error) {
	if err := key.Validate(); err != nil {
		return nil, err
	}
	id := key.ID()

	r.mu.Lock()
	if v, ok := r.cache.get(id); ok {
		r.stats.Hits++
		r.mu.Unlock()
		return v.(*Entry), nil
	}
	if fl, ok := r.inflight[id]; ok {
		r.mu.Unlock()
		<-fl.done
		return fl.e, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	r.inflight[id] = fl
	r.mu.Unlock()

	// A panicking trainer must not wedge the flight — waiters block on
	// fl.done forever and every later Get joins the dead flight — so the
	// panic becomes this Get's error and cleanup always runs.
	e, origin, err := r.safeResolve(ctx, key)

	r.mu.Lock()
	if err == nil {
		r.stats.Evicted += int64(len(r.cache.put(id, e)))
		switch origin {
		case originDisk:
			r.stats.DiskLoads++
		case originFetched:
			r.stats.Fetched++
			r.stats.Imported++
		default:
			r.stats.Trained++
			// The version history starts here; restored models carry
			// their version in metadata but no in-process events.
			r.history[id] = append(r.history[id], api.VersionEvent{
				Version: e.Meta.Version, Event: api.EventTrained, At: time.Now(),
			})
		}
	}
	delete(r.inflight, id)
	r.mu.Unlock()

	fl.e, fl.err = e, err
	close(fl.done)
	return e, err
}

// Where a resolve found its model; Get turns this into stats.
const (
	originTrained = iota
	originDisk
	originFetched
)

// safeResolve converts a resolve panic into an error.
func (r *Registry) safeResolve(ctx context.Context, key Key) (e *Entry, origin int, err error) {
	defer func() {
		if p := recover(); p != nil {
			e, origin, err = nil, 0, fmt.Errorf("registry: resolving %s panicked: %v", key, p)
		}
	}()
	return r.resolve(ctx, key)
}

// resolve loads key from disk, fetches it from a peer, or trains it.
// Runs without the lock — this is the slow path single-flight protects.
func (r *Registry) resolve(ctx context.Context, key Key) (e *Entry, origin int, err error) {
	if r.dir != "" {
		path := r.path(key)
		if _, statErr := os.Stat(path); statErr == nil {
			m, meta, loadErr := core.LoadModel(path)
			if loadErr != nil {
				return nil, 0, fmt.Errorf("registry: stored model %s unusable: %w", key, loadErr)
			}
			if meta.Machine != key.Machine || meta.Objective != key.Objective || meta.Scenario != key.Scenario {
				return nil, 0, fmt.Errorf("registry: stored model %s is for %s/%s/%s (store corrupted?)",
					key, meta.Machine, meta.Objective, meta.Scenario)
			}
			if err := checkMetaCurrent(key, meta); err != nil {
				return nil, 0, fmt.Errorf("registry: stored model %s is stale: %w", key, err)
			}
			meta.Normalize()
			return &Entry{Key: key, Model: m, Meta: meta}, originDisk, nil
		}
	}

	// Before paying for training, ask the fleet: a peer that already
	// trained this key hands over its blob, validated exactly like a
	// disk load. Fetch failures and bad blobs fall through to training —
	// a confused peer must not take this replica down with it.
	r.mu.Lock()
	fetch := r.fetch
	r.mu.Unlock()
	if fetch != nil {
		// Values only (trace ID), no cancellation — see GetContext.
		if data, ferr := fetch(context.WithoutCancel(ctx), key); ferr == nil && len(data) > 0 {
			if e, berr := r.entryFromBlob(data); berr == nil && e.Key == key {
				r.persistBlob(key, data)
				return e, originFetched, nil
			}
		}
	}

	if r.train == nil {
		return nil, 0, fmt.Errorf("registry: model %s not in store and no trainer configured: %w", key, ErrModelNotFound)
	}
	start := time.Now()
	m, meta, err := r.train(key)
	if err != nil {
		return nil, 0, fmt.Errorf("registry: train %s: %w", key, err)
	}
	r.observe("train", time.Since(start))
	meta.Normalize()
	if r.dir != "" {
		if err := m.Save(r.path(key), meta); err != nil {
			// A full or read-only store must not turn minutes of
			// successful training into a serving failure that repeats on
			// every request: serve the model in-memory and count the
			// persist failure for /healthz to surface.
			r.mu.Lock()
			r.stats.PersistFailures++
			r.mu.Unlock()
		}
	}
	return &Entry{Key: key, Model: m, Meta: meta}, originTrained, nil
}

// checkMetaCurrent rejects a stored model whose search space or
// vocabulary no longer matches this binary: predictions are config
// *indices*, so serving a model trained over a different Table I grid
// would silently recommend the wrong configurations. Cheap — it builds
// the space and compiles the (process-cached) corpus, not the dataset.
func checkMetaCurrent(key Key, meta core.ModelMeta) error {
	m, err := hw.ByName(key.Machine)
	if err != nil {
		return err
	}
	corpus, err := kernels.Compile()
	if err != nil {
		return err
	}
	return meta.CheckSpace(space.New(m), corpus.Vocab.Size())
}

// Capacity returns the LRU cache bound.
func (r *Registry) Capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.capacity
}

// Stats returns a snapshot of registry traffic counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Info describes one known model for listings.
type Info struct {
	Key    Key            `json:"key"`
	ID     string         `json:"id"`
	Cached bool           `json:"cached"`
	OnDisk bool           `json:"on_disk"`
	Meta   core.ModelMeta `json:"meta"`
}

// List enumerates every model the registry knows: in-memory entries plus
// on-disk store files, sorted by key string.
func (r *Registry) List() []Info {
	byID := map[string]*Info{}
	r.mu.Lock()
	for _, v := range r.cache.all() {
		e := v.(*Entry)
		byID[e.Key.ID()] = &Info{Key: e.Key, ID: e.Key.ID(), Cached: true, Meta: e.Meta}
	}
	dir := r.dir
	r.mu.Unlock()

	if dir != "" {
		matches, _ := filepath.Glob(filepath.Join(dir, "*.pnpm"))
		for _, path := range matches {
			meta, err := r.storedMeta(path)
			if err != nil {
				continue // unreadable blobs don't belong in listings
			}
			key := Key{Machine: meta.Machine, Scenario: meta.Scenario, Objective: meta.Objective}
			if info, ok := byID[key.ID()]; ok {
				info.OnDisk = true
				continue
			}
			byID[key.ID()] = &Info{Key: key, ID: key.ID(), OnDisk: true, Meta: meta}
		}
	}

	out := make([]Info, 0, len(byID))
	for _, info := range byID {
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// storedMeta reads a store file's metadata through a (path, mtime, size)
// cache, so repeated /models listings don't re-read and re-digest every
// multi-megabyte weight blob.
func (r *Registry) storedMeta(path string) (core.ModelMeta, error) {
	st, err := os.Stat(path)
	if err != nil {
		return core.ModelMeta{}, err
	}
	r.mu.Lock()
	if c, ok := r.metaCache[path]; ok && c.modTime.Equal(st.ModTime()) && c.size == st.Size() {
		r.mu.Unlock()
		return c.meta, nil
	}
	r.mu.Unlock()

	meta, err := core.ReadModelMeta(path)
	if err != nil {
		return core.ModelMeta{}, err
	}
	r.mu.Lock()
	r.metaCache[path] = cachedMeta{modTime: st.ModTime(), size: st.Size(), meta: meta}
	r.mu.Unlock()
	return meta, nil
}

// DefaultTrainer returns the TrainFunc cmd/pnpserve and cmd/pnptune use:
// build the machine's exhaustive dataset, pick the key's fold, and run
// the paper's training recipe under cfg.
func DefaultTrainer(cfg core.ModelConfig) TrainFunc {
	return func(k Key) (*core.Model, core.ModelMeta, error) {
		m, err := hw.ByName(k.Machine)
		if err != nil {
			return nil, core.ModelMeta{}, err
		}
		d, err := dataset.Build(m)
		if err != nil {
			return nil, core.ModelMeta{}, err
		}
		fold := d.FullFold()
		if app, ok := strings.CutPrefix(k.Scenario, "loocv:"); ok {
			fold, ok = d.FoldByApp(app)
			if !ok {
				return nil, core.ModelMeta{}, fmt.Errorf("registry: unknown application %q", app)
			}
		}
		meta := core.MetaFor(d, k.Scenario, k.Objective)
		switch k.Objective {
		case ObjectiveTime:
			return core.TrainPower(d, fold, cfg).Model, meta, nil
		case ObjectiveEDP:
			return core.TrainEDP(d, fold, cfg).Model, meta, nil
		}
		return nil, core.ModelMeta{}, fmt.Errorf("registry: unknown objective %q", k.Objective)
	}
}
