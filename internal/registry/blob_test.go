package registry

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pnptuner/internal/core"
	"pnptuner/internal/kernels"
)

// TestExportImportRoundTrip: a trained model's blob exports from one
// registry and imports into another bit-identically, from both the
// disk-backed and memory-only paths.
func TestExportImportRoundTrip(t *testing.T) {
	for _, disk := range []bool{true, false} {
		name := "memory"
		dir := ""
		if disk {
			name, dir = "disk", t.TempDir()
		}
		t.Run(name, func(t *testing.T) {
			src, err := New(dir, 2, func(k Key) (*core.Model, core.ModelMeta, error) {
				m, meta := tinyModel(k)
				return m, meta, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
			if _, err := src.Get(key); err != nil {
				t.Fatal(err)
			}
			blob, err := src.ExportBlob(key.ID())
			if err != nil {
				t.Fatal(err)
			}
			blob2, err := src.ExportBlob(key.ID())
			if err != nil {
				t.Fatal(err)
			}
			if disk && !bytes.Equal(blob, blob2) {
				t.Fatal("disk-backed export is not stable")
			}

			dst, err := New(t.TempDir(), 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			e, err := dst.ImportBlob(blob, key.ID())
			if err != nil {
				t.Fatal(err)
			}
			if e.Key != key {
				t.Fatalf("imported key = %v, want %v", e.Key, key)
			}
			// The import must serve without a trainer, and re-export the
			// same bytes (content addressing holds across the fleet).
			if _, err := dst.Get(key); err != nil {
				t.Fatalf("imported model does not serve: %v", err)
			}
			back, err := dst.ExportBlob(key.ID())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, back) {
				t.Fatal("re-exported blob differs from imported bytes")
			}
			st := dst.Stats()
			if st.Imported != 1 || st.Trained != 0 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

// TestImportBlobRejects: corrupted bytes, a content-address mismatch,
// and garbage all refuse without installing anything.
func TestImportBlobRejects(t *testing.T) {
	src, err := New("", 2, func(k Key) (*core.Model, core.ModelMeta, error) {
		m, meta := tinyModel(k)
		return m, meta, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	if _, err := src.Get(key); err != nil {
		t.Fatal(err)
	}
	blob, err := src.ExportBlob(key.ID())
	if err != nil {
		t.Fatal(err)
	}

	dst, err := New("", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0xff
	if _, err := dst.ImportBlob(bad, key.ID()); err == nil {
		t.Fatal("corrupted blob imported")
	}
	if _, err := dst.ImportBlob(blob, "deadbeef"); err == nil {
		t.Fatal("address-mismatched blob imported")
	}
	if _, err := dst.ImportBlob([]byte("junk"), ""); err == nil {
		t.Fatal("garbage imported")
	}
	if _, err := dst.Get(key); err == nil {
		t.Fatal("rejected imports still installed a model")
	}
	if st := dst.Stats(); st.Imported != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFetcherResolvesMiss: a registry miss consults the peer-fetch hook
// before training; a valid fetched blob serves (and counts as fetched),
// a failing fetcher falls through to the trainer.
func TestFetcherResolvesMiss(t *testing.T) {
	src, err := New("", 2, func(k Key) (*core.Model, core.ModelMeta, error) {
		m, meta := tinyModel(k)
		return m, meta, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}
	if _, err := src.Get(key); err != nil {
		t.Fatal(err)
	}
	blob, err := src.ExportBlob(key.ID())
	if err != nil {
		t.Fatal(err)
	}

	var trained, fetched atomic.Int32
	dst, err := New(t.TempDir(), 2, func(k Key) (*core.Model, core.ModelMeta, error) {
		trained.Add(1)
		m, meta := tinyModel(k)
		return m, meta, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	dst.SetFetcher(func(_ context.Context, k Key) ([]byte, error) {
		fetched.Add(1)
		if k == key {
			return blob, nil
		}
		return nil, nil
	})

	if _, err := dst.Get(key); err != nil {
		t.Fatal(err)
	}
	if trained.Load() != 0 || fetched.Load() != 1 {
		t.Fatalf("trained=%d fetched=%d, want 0/1", trained.Load(), fetched.Load())
	}
	st := dst.Stats()
	if st.Fetched != 1 || st.Trained != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// A fetched blob persists: re-export serves the identical bytes.
	back, err := dst.ExportBlob(key.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, back) {
		t.Fatal("fetched blob not persisted verbatim")
	}

	// A key no peer has falls through to training.
	other := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveEDP}
	if _, err := dst.Get(other); err != nil {
		t.Fatal(err)
	}
	if trained.Load() != 1 {
		t.Fatalf("miss with no peer blob trained %d times, want 1", trained.Load())
	}
}

// TestServerBlobEndpoints drives GET/PUT /v1/models/{id}/blob over HTTP:
// export from a warm server, import into a cold one, and the typed
// error paths (missing model, bad method, bad path, corrupt body).
func TestServerBlobEndpoints(t *testing.T) {
	_, warm := newTestServer(t)
	// Warm the model so the blob exists.
	resp, err := http.Post(warm.URL+"/v1/predict", "application/json",
		bytes.NewReader(predictBody(t, "haswell", ObjectiveTime, 0)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	key := Key{Machine: "haswell", Scenario: ScenarioFull, Objective: ObjectiveTime}

	resp, err = http.Get(warm.URL + "/v1/models/" + key.ID() + "/blob")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("blob GET: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	blob := readAll(t, resp)

	// Import into a fresh trainerless server: predictions then serve
	// without training.
	reg, err := New("", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, kernels.MustCompile().Vocab, ServerConfig{MaxBatch: 4, MaxWait: time.Millisecond})
	cold := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { cold.Close(); srv.Close() })

	put, err := http.NewRequest(http.MethodPut, cold.URL+"/v1/models/"+key.ID()+"/blob", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blob PUT: %d: %s", resp.StatusCode, readAll(t, resp))
	}
	resp.Body.Close()
	resp, err = http.Post(cold.URL+"/v1/predict", "application/json",
		bytes.NewReader(predictBody(t, "haswell", ObjectiveTime, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after import: %d: %s", resp.StatusCode, readAll(t, resp))
	}
	resp.Body.Close()

	// Typed error paths.
	cases := []struct {
		name, method, path string
		body               []byte
		code               string
	}{
		{"missing model", http.MethodGet, "/v1/models/ffffffffffffffffffffffff/blob", nil, "model_not_found"},
		{"bad suffix", http.MethodGet, "/v1/models/" + key.ID() + "/weights", nil, "not_found"},
		{"bad method", http.MethodPost, "/v1/models/" + key.ID() + "/blob", []byte("x"), "method_not_allowed"},
		{"corrupt body", http.MethodPut, "/v1/models/" + key.ID() + "/blob", []byte("junk"), "bad_request"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, warm.URL+tc.path, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body := decodeError(t, resp)
		resp.Body.Close()
		if body.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, body.Error.Code, tc.code)
		}
	}
}

// readAll drains a response body for assertions.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
