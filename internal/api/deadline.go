package api

import (
	"fmt"
	"strconv"
	"time"
)

// DeadlineHeader carries a request's remaining time budget across hops
// as fractional milliseconds (e.g. "1500" or "250.5"). The value is
// relative — each hop re-stamps it from its own context deadline just
// before sending — so propagation never depends on synchronized clocks.
// A server receiving it derives a context deadline for all downstream
// work (batcher admission, measured runs, proxied attempts); a value
// that has already reached zero is shed before any work with
// CodeDeadlineExceeded.
const DeadlineHeader = "X-Deadline"

// RetryAfterHeader is the standard backpressure hint emitted alongside
// retryable 429/503 responses (CodeQueueFull, CodeOverloaded,
// CodeUnavailable, CodeNoReplica): how many seconds the client should
// wait before retrying. The SDK honors it over its own exponential
// backoff.
const RetryAfterHeader = "Retry-After"

// FormatDeadline renders a remaining budget for DeadlineHeader.
func FormatDeadline(remaining time.Duration) string {
	ms := float64(remaining) / float64(time.Millisecond)
	return strconv.FormatFloat(ms, 'f', 3, 64)
}

// ParseDeadline reads a DeadlineHeader value back into a remaining
// budget. ok is false when the header is absent (empty); a present but
// malformed value is an error so a garbled budget fails loudly instead
// of silently serving without one.
func ParseDeadline(value string) (remaining time.Duration, ok bool, err error) {
	if value == "" {
		return 0, false, nil
	}
	ms, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return 0, false, fmt.Errorf("api: malformed %s %q: %w", DeadlineHeader, value, err)
	}
	return time.Duration(ms * float64(time.Millisecond)), true, nil
}

// RetryAfterSecs returns the Retry-After hint (in seconds) a response
// with the given error code should carry, or 0 when the code is not a
// backpressure signal. Queue-full and overload clear fastest; a
// draining or replica-less server needs longer.
func RetryAfterSecs(code string) int {
	switch code {
	case CodeQueueFull, CodeOverloaded:
		return 1
	case CodeUnavailable, CodeNoReplica:
		return 2
	}
	return 0
}
