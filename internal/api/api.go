// Package api is the versioned wire contract of the pnptuner serving
// API: every request, response, and error body exchanged over HTTP lives
// here, shared by the server (internal/registry) and the Go client SDK
// (internal/client) so the two can never drift apart. The package has no
// dependencies on the rest of the module — it is pure data.
//
// # Versioning
//
// All endpoints are mounted under the Version prefix ("/v1"). Breaking
// changes to any type in this package require a new version prefix; the
// old prefix keeps serving the old contract for at least one release.
// The pre-versioning paths (/predict, /tune, /healthz, /models) remain
// as deprecated aliases of their /v1 equivalents: same handlers, same
// bodies, plus a Deprecation response header.
//
// # Errors
//
// Every non-2xx response carries an ErrorBody envelope with a stable
// machine-readable code (see the Code* constants); clients switch on the
// code, never on message text.
package api

import "time"

// Version is the current API version prefix.
const Version = "/v1"

// Endpoint paths under Version. PathJobs and PathTraces are prefixes:
// one job is addressed as PathJobs + "/" + id, one request's span
// timeline as PathTraces + "/" + traceID (the X-Request-ID the server
// echoed).
const (
	PathPredict = Version + "/predict"
	PathTune    = Version + "/tune"
	PathJobs    = Version + "/jobs"
	PathModels  = Version + "/models"
	PathHealthz = Version + "/healthz"
	PathTraces  = Version + "/traces"
)

// PathModelBlob returns the export/import endpoint for one model's
// serialized blob: GET streams the content-addressed bytes, PUT imports
// them into the replica's store. This is how shared-nothing replicas
// replicate a model one of them trained.
func PathModelBlob(id string) string {
	return PathModels + "/" + id + "/blob"
}

// PathModel returns the detail endpoint for one model: GET answers a
// ModelDetail with the serving version, accumulated measurement counts,
// and the version history.
func PathModel(id string) string {
	return PathModels + "/" + id
}

// Request ceilings, part of the public contract: a serving deployment
// must not let one client exhaust memory or stall the shared batch
// window. Corpus graphs are hundreds of nodes; these bounds are orders
// of magnitude above any legitimate use.
const (
	// MaxRequestBytes bounds any request body.
	MaxRequestBytes = 8 << 20
	// MaxGraphNodes / MaxGraphEdges bound one prediction graph; beyond
	// them the server answers CodeGraphTooLarge.
	MaxGraphNodes = 1 << 19
	MaxGraphEdges = 1 << 21
	// MaxTuneBudget bounds one tuning session's replay executions;
	// beyond it the server answers CodeBudgetExceeded.
	MaxTuneBudget = 256
	// MaxMeasureBudget bounds one tuning session's real executions on
	// the simulated hardware (TuneRequest.MeasureBudget). Real runs are
	// far costlier than replay lookups, so the ceiling is its own knob.
	MaxMeasureBudget = 512
	// MaxBlobBytes bounds one serialized model blob on the import path
	// (PUT model blob). Far above any real model; it only exists so a
	// malicious peer cannot stream unbounded bytes into a replica.
	MaxBlobBytes = 1 << 29
)

// PredictRequest is the POST /v1/predict body. Graph is the programl
// JSON export; node tokens are re-annotated server-side from the corpus
// vocabulary, so clients only need node texts. Counters feed models
// trained with dynamic features and must be omitted otherwise.
type PredictRequest struct {
	Machine   string `json:"machine"`
	Objective string `json:"objective"`
	Scenario  string `json:"scenario,omitempty"` // default "full"
	// Graph is the programl.Graph JSON export, kept raw so this package
	// stays dependency-free; the server decodes it.
	Graph    RawObject `json:"graph"`
	Counters []float64 `json:"counters,omitempty"`
}

// RawObject is a pass-through JSON value, the api-local equivalent of
// json.RawMessage (redeclared so the package stays import-light and the
// field marshals verbatim in both directions).
type RawObject []byte

// MarshalJSON returns r verbatim (or null when empty).
func (r RawObject) MarshalJSON() ([]byte, error) {
	if len(r) == 0 {
		return []byte("null"), nil
	}
	return r, nil
}

// UnmarshalJSON stores data verbatim.
func (r *RawObject) UnmarshalJSON(data []byte) error {
	*r = append((*r)[:0], data...)
	return nil
}

// Pick is one recommended configuration.
type Pick struct {
	CapW        float64 `json:"cap_w"`
	ConfigIndex int     `json:"config_index"`
	Config      string  `json:"config"`
}

// PredictResponse is the /v1/predict reply: one pick per power cap for
// the time objective, a single joint (cap, config) pick for EDP.
type PredictResponse struct {
	RegionID  string `json:"region_id"`
	Machine   string `json:"machine"`
	Objective string `json:"objective"`
	Scenario  string `json:"scenario"`
	Picks     []Pick `json:"picks"`
	// ModelVersion is the version of the model that served the picks —
	// the initial training is 1 and every promoted refresh retrain
	// increments it.
	ModelVersion int `json:"model_version,omitempty"`
	// Degraded marks an answer the gate produced without a serving
	// replica (all down, draining, or unreachable): better than a 503
	// for a caller that just needs a configuration, but not a live model
	// prediction. DegradedSource says which fallback answered —
	// "cache" (last-known-good response for this exact graph) or
	// "heuristic" (the machine's default configuration per cap).
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedSource string `json:"degraded_source,omitempty"`
}

// TuneRequest is the POST /v1/tune body: run a bounded autotune engine
// session for one corpus region. Strategies "gnn" and "hybrid" resolve
// the (machine, objective, scenario) model through the registry and
// shortlist through the micro-batcher; "bliss" and "opentuner" are
// model-free searches. The evaluator is noisy dataset replay — the
// simulated stand-in for executing the region under RAPL.
type TuneRequest struct {
	Machine   string `json:"machine"`
	Objective string `json:"objective"`
	Strategy  string `json:"strategy"`
	Scenario  string `json:"scenario,omitempty"` // default "full"
	RegionID  string `json:"region_id"`
	// Budget is the executions granted per tuning task (0 = the
	// strategy's default; capped at MaxTuneBudget).
	Budget int `json:"budget,omitempty"`
	// Seed decorrelates tuning runs (0 = the region's corpus seed).
	Seed uint64 `json:"seed,omitempty"`
	// MeasureBudget grants the session real executions on the simulated
	// hardware instead of dataset replay: search strategies spend it
	// measuring candidates under their RAPL caps (split across the
	// session's heads), the zero-execution "gnn" strategy spends it
	// verifying its picks. Every completed — or cancelled — session
	// feeds its samples back for incremental model refresh. 0 keeps the
	// classic replay evaluator; capped at MaxMeasureBudget.
	MeasureBudget int `json:"measure_budget,omitempty"`
	// Async submits the session as a job: the server answers 202 with a
	// Job immediately and the session runs off-request; poll
	// GET /v1/jobs/{id} for status/trace/result. The finished job's
	// Result is bit-identical to the synchronous response for the same
	// request.
	Async bool `json:"async,omitempty"`
}

// TracePoint is one measured candidate of a tuning session, in
// measurement order.
type TracePoint struct {
	ConfigIndex int     `json:"config_index"`
	Value       float64 `json:"value"`
}

// TunePick is one recommended configuration with its session cost,
// quality, and full measurement trace.
type TunePick struct {
	CapW        float64 `json:"cap_w"`
	ConfigIndex int     `json:"config_index"`
	Config      string  `json:"config"`
	Evals       int     `json:"evals"`
	// OracleFrac is the achieved fraction of the exhaustive-search
	// optimum (1 = oracle).
	OracleFrac float64 `json:"oracle_frac"`
	// Trace is the session's (config, value) measurement sequence; with
	// the deterministic replay evaluator it is reproducible from
	// (strategy, seed, budget) alone. Empty for zero-execution sessions.
	Trace []TracePoint `json:"trace,omitempty"`
}

// TuneResponse is the synchronous /v1/tune reply (and the Result of a
// finished async Job): one pick per power cap for the time objective, a
// single joint pick otherwise.
type TuneResponse struct {
	RegionID  string     `json:"region_id"`
	Machine   string     `json:"machine"`
	Objective string     `json:"objective"`
	Strategy  string     `json:"strategy"`
	Budget    int        `json:"budget"`
	Picks     []TunePick `json:"picks"`
	// ModelVersion is the serving model version that shortlisted for the
	// session (model-driven strategies only).
	ModelVersion int `json:"model_version,omitempty"`
	// MeasuredRuns counts the real executions the session took
	// (MeasureBudget > 0 only); Samples is each one in execution order.
	MeasuredRuns int              `json:"measured_runs,omitempty"`
	Samples      []MeasuredSample `json:"samples,omitempty"`
}

// MeasuredSample is one real execution of a tuning session: the
// configuration run, the RAPL cap it ran under, and what the hardware
// reported.
type MeasuredSample struct {
	CapW        float64 `json:"cap_w"`
	ConfigIndex int     `json:"config_index"`
	Config      string  `json:"config"`
	TimeSec     float64 `json:"time_sec"`
	// EnergyJ is the package+DRAM energy as read back from the wrapping
	// RAPL counter.
	EnergyJ float64 `json:"energy_j"`
	// Value is the objective value the search observed for this run.
	Value     float64 `json:"value"`
	Throttled bool    `json:"throttled,omitempty"`
}

// ModelKey identifies one servable model.
type ModelKey struct {
	Machine   string `json:"machine"`
	Scenario  string `json:"scenario"`
	Objective string `json:"objective"`
}

// ModelInfo describes one known model in /v1/models listings. Meta is
// the model's provenance metadata (core.ModelMeta), kept raw here so the
// contract package stays dependency-free.
type ModelInfo struct {
	Key    ModelKey  `json:"key"`
	ID     string    `json:"id"`
	Cached bool      `json:"cached"`
	OnDisk bool      `json:"on_disk"`
	Meta   RawObject `json:"meta"`
	// Replica is the base URL of the replica holding this model, set
	// only in gate-merged listings (single replicas leave it empty).
	Replica string `json:"replica,omitempty"`
}

// Version-history event names in ModelDetail.History.
const (
	// EventTrained marks a version coming out of training — the initial
	// resolve or a background refresh retrain.
	EventTrained = "trained"
	// EventPromoted marks a refreshed version winning its canary and
	// taking over serving.
	EventPromoted = "promoted"
	// EventDemoted marks a refreshed version losing its canary and being
	// discarded; the prior version keeps serving.
	EventDemoted = "demoted"
)

// VersionEvent is one entry in a model's version history.
type VersionEvent struct {
	Version int    `json:"version"`
	Event   string `json:"event"`
	// Samples is how many measured executions the event's retrain
	// consumed (EventTrained of a refresh only).
	Samples int       `json:"samples,omitempty"`
	At      time.Time `json:"at"`
}

// ModelDetail is the GET /v1/models/{id} reply: one model's serving
// version, its measurement feed, and the version history of the
// measure→learn loop.
type ModelDetail struct {
	Key ModelKey `json:"key"`
	ID  string   `json:"id"`
	// Version is the model version currently serving (1 = initial
	// training, incremented by every promoted refresh).
	Version int  `json:"version"`
	Cached  bool `json:"cached"`
	OnDisk  bool `json:"on_disk"`
	// Samples is how many measured executions the serving version has
	// incorporated; PendingSamples counts those accumulated since, not
	// yet consumed by a refresh retrain.
	Samples        int `json:"samples"`
	PendingSamples int `json:"pending_samples"`
	// SampleRegions is the per-region measurement count feeding this key.
	SampleRegions map[string]int `json:"sample_regions,omitempty"`
	// CanaryVersion is the shadow version currently under canary scoring
	// (0 = no canary in flight).
	CanaryVersion int            `json:"canary_version,omitempty"`
	History       []VersionEvent `json:"history,omitempty"`
	// Replica is set by the gate on merged lookups: the replica whose
	// answer won (highest version).
	Replica string `json:"replica,omitempty"`
}

// RouteStats is one route's traffic counters in Health.
type RouteStats struct {
	// Count is requests served (any status).
	Count int64 `json:"count"`
	// Errors is responses with status ≥ 400.
	Errors int64 `json:"errors"`
	// AvgMillis is the mean handler latency.
	AvgMillis float64 `json:"avg_ms"`
}

// JobStats is the async job subsystem's snapshot in Health.
type JobStats struct {
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
}

// Health is the GET /v1/healthz reply: liveness plus traffic counters.
type Health struct {
	Status          string                `json:"status"`
	UptimeSec       float64               `json:"uptime_sec"`
	Served          int64                 `json:"served"`
	Batchers        int                   `json:"batchers"`
	CacheHits       int64                 `json:"cache_hits"`
	DiskLoads       int64                 `json:"disk_loads"`
	ModelsTrained   int64                 `json:"models_trained"`
	ModelsFetched   int64                 `json:"models_fetched"`
	ModelsImported  int64                 `json:"models_imported"`
	Evicted         int64                 `json:"evicted"`
	PersistFailures int64                 `json:"persist_failures"`
	Jobs            JobStats              `json:"jobs"`
	Routes          map[string]RouteStats `json:"routes,omitempty"`
}

// Replica health states reported by the gate. A replica is routable
// while ReplicaUp or ReplicaHalfOpen; ReplicaDown replicas receive no
// traffic until a background probe succeeds.
const (
	ReplicaUp       = "up"
	ReplicaHalfOpen = "half-open"
	ReplicaDown     = "down"
)

// ReplicaStatus is one replica's entry in the gate's health reply.
type ReplicaStatus struct {
	// Index is the replica's stable position in the gate's configured
	// replica list; job IDs issued through the gate are prefixed
	// "r<index>-" so polls route back to the owning replica.
	Index int    `json:"index"`
	URL   string `json:"url"`
	State string `json:"state"`
	// ConsecutiveFails counts transport-level failures (traffic or
	// probe) since the last success; FailThreshold of them mark the
	// replica down.
	ConsecutiveFails int `json:"consecutive_fails"`
	// Probes / ProbeFailures count background health probes.
	Probes        int64 `json:"probes"`
	ProbeFailures int64 `json:"probe_failures"`
}

// GateHealth is the gate's GET /v1/healthz reply: the gate is not a
// replica, so instead of model counters it reports the cluster view.
type GateHealth struct {
	Status    string          `json:"status"`
	UptimeSec float64         `json:"uptime_sec"`
	Served    int64           `json:"served"`
	Replicas  []ReplicaStatus `json:"replicas"`
	// Retries counts requests the gate re-sent to another replica after
	// a retryable failure; Failovers counts requests that ultimately
	// succeeded on a non-first-choice replica.
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	// Hedges counts predicts the gate speculatively duplicated onto the
	// next preference-order replica after the hedge delay; HedgeWins
	// counts those where the hedge answered first.
	Hedges    int64 `json:"hedges,omitempty"`
	HedgeWins int64 `json:"hedge_wins,omitempty"`
	// Degraded counts predicts answered from the degraded path (cache or
	// heuristic) because no replica could serve.
	Degraded int64                 `json:"degraded,omitempty"`
	Routes   map[string]RouteStats `json:"routes,omitempty"`
}

// Job statuses. Terminal statuses are JobDone, JobFailed, JobCancelled.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// Job is one async tuning session: returned by POST /v1/tune with
// async:true (202) and polled via GET /v1/jobs/{id}.
type Job struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Request echoes the submitted tune request (with Async cleared —
	// the job's result is the synchronous response for this request).
	Request    TuneRequest `json:"request"`
	CreatedAt  time.Time   `json:"created_at"`
	StartedAt  *time.Time  `json:"started_at,omitempty"`
	FinishedAt *time.Time  `json:"finished_at,omitempty"`
	// CancelRequested is set once DELETE /v1/jobs/{id} has been seen; a
	// running session stops at its next measurement and the status then
	// becomes JobCancelled.
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Result is the finished session's response (status JobDone only).
	Result *TuneResponse `json:"result,omitempty"`
	// Error is why the session failed (status JobFailed only).
	Error *ErrorInfo `json:"error,omitempty"`
}

// Terminal reports whether the job has reached a final status.
func (j *Job) Terminal() bool {
	switch j.Status {
	case JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}
