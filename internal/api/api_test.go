package api

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestErrorBodyGolden pins the error envelope's wire shape: the contract
// clients switch on.
func TestErrorBodyGolden(t *testing.T) {
	body := ErrorBody{Error: ErrorInfo{Code: CodeModelNotFound, Message: "no model"}, RequestID: "r-1"}
	got, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"model_not_found","message":"no model"},"request_id":"r-1"}`
	if string(got) != want {
		t.Fatalf("envelope = %s, want %s", got, want)
	}
	var back ErrorBody
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back != body {
		t.Fatalf("round trip = %+v", back)
	}
}

// TestStatusFor pins every code's canonical HTTP status.
func TestStatusFor(t *testing.T) {
	cases := map[string]int{
		CodeBadRequest:         http.StatusBadRequest,
		CodeMethodNotAllowed:   http.StatusMethodNotAllowed,
		CodeNotFound:           http.StatusNotFound,
		CodeModelNotFound:      http.StatusNotFound,
		CodeRegionNotFound:     http.StatusNotFound,
		CodeGraphTooLarge:      http.StatusRequestEntityTooLarge,
		CodeBudgetExceeded:     http.StatusBadRequest,
		CodeJobNotFound:        http.StatusNotFound,
		CodeQueueFull:          http.StatusTooManyRequests,
		CodeUnavailable:        http.StatusServiceUnavailable,
		CodeNoReplica:          http.StatusServiceUnavailable,
		CodeReplicaUnavailable: http.StatusBadGateway,
		CodeInternal:           http.StatusInternalServerError,
		"some_future_code":     http.StatusInternalServerError,
	}
	for code, want := range cases {
		if got := StatusFor(code); got != want {
			t.Errorf("StatusFor(%q) = %d, want %d", code, got, want)
		}
	}
}

// TestPathModelBlob pins the blob endpoint shape replicas replicate
// through.
func TestPathModelBlob(t *testing.T) {
	if got, want := PathModelBlob("abc123"), "/v1/models/abc123/blob"; got != want {
		t.Fatalf("PathModelBlob = %q, want %q", got, want)
	}
}

// TestPredictRequestGraphRoundTrip: the raw graph field passes through
// marshalling byte-for-byte in both directions.
func TestPredictRequestGraphRoundTrip(t *testing.T) {
	graph := `{"nodes":[{"text":"add"}],"edges":[]}`
	req := PredictRequest{Machine: "haswell", Objective: "time", Graph: RawObject(graph)}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"graph":`+graph) {
		t.Fatalf("graph not embedded verbatim: %s", b)
	}
	var back PredictRequest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if string(back.Graph) != graph {
		t.Fatalf("graph = %s", back.Graph)
	}
}

// TestJobTerminal: exactly done/failed/cancelled are terminal.
func TestJobTerminal(t *testing.T) {
	terminal := map[string]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobFailed: true, JobCancelled: true,
	}
	for status, want := range terminal {
		j := Job{Status: status}
		if got := j.Terminal(); got != want {
			t.Errorf("Terminal(%s) = %v, want %v", status, got, want)
		}
	}
}

// TestJobGoldenShape pins the async job's wire field names.
func TestJobGoldenShape(t *testing.T) {
	now := time.Date(2026, 7, 28, 0, 0, 0, 0, time.UTC)
	j := Job{
		ID: "j-1", Status: JobRunning,
		Request:         TuneRequest{Machine: "haswell", Objective: "time", Strategy: "gnn", RegionID: "r#0"},
		CreatedAt:       now,
		StartedAt:       &now,
		CancelRequested: true,
	}
	b, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"id":"j-1"`, `"status":"running"`, `"request":`, `"created_at":`,
		`"started_at":`, `"cancel_requested":true`, `"region_id":"r#0"`,
	} {
		if !strings.Contains(string(b), field) {
			t.Errorf("job JSON missing %s: %s", field, b)
		}
	}
	if strings.Contains(string(b), "finished_at") || strings.Contains(string(b), "result") {
		t.Errorf("unset optional fields leaked: %s", b)
	}
}
