package api

import (
	"fmt"
	"net/http"
)

// Stable machine-readable error codes. Codes are part of the v1
// contract: clients switch on them, messages are for humans and may
// change freely.
const (
	// CodeBadRequest: the request body or a field failed validation.
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed: wrong HTTP method for the route.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound: no such route.
	CodeNotFound = "not_found"
	// CodeModelNotFound: the (machine, scenario, objective) model is not
	// in the store and the server has no trainer to make it.
	CodeModelNotFound = "model_not_found"
	// CodeRegionNotFound: the tune region is not a corpus region ID.
	CodeRegionNotFound = "region_not_found"
	// CodeGraphTooLarge: the prediction graph or request body exceeds
	// the contract ceilings.
	CodeGraphTooLarge = "graph_too_large"
	// CodeBudgetExceeded: the tune budget is outside [0, MaxTuneBudget].
	CodeBudgetExceeded = "budget_exceeded"
	// CodeJobNotFound: no such job (never existed, or GC'd after TTL).
	CodeJobNotFound = "job_not_found"
	// CodeQueueFull: the async job queue is at capacity; retry later.
	CodeQueueFull = "queue_full"
	// CodeOverloaded: the server shed the request before doing any work
	// (predict queue at depth, or the route's concurrency limit reached);
	// nothing happened and any method may retry after Retry-After.
	CodeOverloaded = "overloaded"
	// CodeDeadlineExceeded: the request's time budget (X-Deadline header
	// or context deadline) ran out before the work could finish; the
	// remaining work was shed or abandoned.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeUnavailable: the server is shutting down or the model's
	// batcher is draining; safe to retry.
	CodeUnavailable = "unavailable"
	// CodeNoReplica: the gate has no healthy replica for the key (all
	// marked down, or the ring is empty); safe to retry once replicas
	// recover.
	CodeNoReplica = "no_replica"
	// CodeReplicaUnavailable: the gate picked a replica but every
	// eligible one failed at the transport level before answering.
	CodeReplicaUnavailable = "replica_unavailable"
	// CodeInternal: a server-side failure (model forward pass, dataset
	// build); not the client's fault.
	CodeInternal = "internal"
)

// StatusFor maps an error code to its canonical HTTP status. Unknown
// codes map to 500 so a server bug can never read as client error.
func StatusFor(code string) int {
	switch code {
	case CodeBadRequest, CodeBudgetExceeded:
		return http.StatusBadRequest
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeNotFound, CodeModelNotFound, CodeRegionNotFound, CodeJobNotFound:
		return http.StatusNotFound
	case CodeGraphTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeUnavailable, CodeNoReplica, CodeOverloaded:
		return http.StatusServiceUnavailable
	case CodeReplicaUnavailable:
		return http.StatusBadGateway
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// ErrorInfo is the machine-readable half of every non-2xx response.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements error, so an ErrorInfo can travel through Go error
// chains (the client SDK wraps one in every API failure).
func (e *ErrorInfo) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Errorf builds an ErrorInfo with a formatted message.
func Errorf(code, format string, args ...any) *ErrorInfo {
	return &ErrorInfo{Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrorBody is the JSON envelope of every non-2xx response.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
	// RequestID echoes the X-Request-ID the failing request was served
	// under, for log correlation.
	RequestID string `json:"request_id,omitempty"`
}
