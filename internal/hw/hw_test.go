package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMachinesValidate(t *testing.T) {
	for _, m := range Machines() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestTopologyCounts(t *testing.T) {
	sky, has := Skylake(), Haswell()
	if sky.NumCores() != 32 || sky.NumHWThreads() != 64 {
		t.Errorf("skylake cores=%d threads=%d", sky.NumCores(), sky.NumHWThreads())
	}
	if has.NumCores() != 16 || has.NumHWThreads() != 32 {
		t.Errorf("haswell cores=%d threads=%d", has.NumCores(), has.NumHWThreads())
	}
}

func TestPowerAtBaseNearTDP(t *testing.T) {
	// Calibration invariant: all physical cores at base frequency should
	// draw approximately TDP (within 15%).
	for _, m := range Machines() {
		p := m.Power(m.NumCores(), m.FBase)
		if p < 0.85*m.TDP || p > 1.15*m.TDP {
			t.Errorf("%s: P(allcores, fbase) = %.1fW vs TDP %.0fW", m.Name, p, m.TDP)
		}
	}
}

func TestPowerMonotoneInThreadsAndFreq(t *testing.T) {
	for _, m := range Machines() {
		for n := 1; n < m.NumCores(); n++ {
			if m.Power(n+1, m.FBase) < m.Power(n, m.FBase)-1e-9 {
				t.Errorf("%s: power not monotone in threads at n=%d", m.Name, n)
			}
		}
		for f := m.FMin; f < m.FMax; f += 0.1 {
			if m.Power(8, f+0.1) < m.Power(8, f)-1e-9 {
				t.Errorf("%s: power not monotone in frequency at f=%.1f", m.Name, f)
			}
		}
	}
}

func TestFreqAtCapRespectsCap(t *testing.T) {
	for _, m := range Machines() {
		for _, capW := range m.PowerLimits {
			for _, n := range m.ThreadCounts {
				f, throttle := m.FreqAtCap(n, capW)
				if f < m.FMin-1e-9 || f > m.FMax+1e-9 {
					t.Errorf("%s n=%d cap=%g: f=%g outside envelope", m.Name, n, capW, f)
				}
				if throttle == 1 {
					// Unthrottled: power at f must be within the cap (+ε).
					if p := m.Power(n, f); p > capW*1.001 && f > m.FMin {
						t.Errorf("%s n=%d cap=%g: power %g exceeds cap", m.Name, n, capW, p)
					}
				} else if throttle <= 0 || throttle > 1 {
					t.Errorf("throttle out of range: %g", throttle)
				}
			}
		}
	}
}

func TestFreqAtCapMonotoneInCap(t *testing.T) {
	for _, m := range Machines() {
		for _, n := range m.ThreadCounts {
			prev := 0.0
			for capW := m.MinPower; capW <= m.TDP; capW += 5 {
				f, th := m.FreqAtCap(n, capW)
				eff := f * th
				if eff+1e-9 < prev {
					t.Errorf("%s n=%d: effective freq decreased with higher cap", m.Name, n)
				}
				prev = eff
			}
		}
	}
}

func TestFewerThreadsRunFaster(t *testing.T) {
	// Under a tight cap, a smaller team sustains a higher frequency.
	for _, m := range Machines() {
		capW := m.MinPower
		f1, _ := m.FreqAtCap(1, capW)
		fall, _ := m.FreqAtCap(m.NumCores(), capW)
		if f1 <= fall {
			t.Errorf("%s at %gW: f(1)=%g <= f(all)=%g", m.Name, capW, f1, fall)
		}
	}
}

func TestTurboFreqCappedByEnvelope(t *testing.T) {
	for _, m := range Machines() {
		if f := m.TurboFreq(1); f != m.FMax {
			t.Errorf("%s: single-core turbo %g, want fmax %g", m.Name, f, m.FMax)
		}
		fAll := m.TurboFreq(m.NumCores())
		if fAll >= m.FMax || fAll < m.FBase*0.8 {
			t.Errorf("%s: all-core turbo %g implausible", m.Name, fAll)
		}
	}
}

func TestValidateCatchesBadMachines(t *testing.T) {
	bad := Skylake()
	bad.FMin = 5
	if err := bad.Validate(); err == nil {
		t.Error("accepted FMin > FBase")
	}
	bad = Skylake()
	bad.PowerLimits = []float64{10}
	if err := bad.Validate(); err == nil {
		t.Error("accepted cap below MinPower")
	}
	bad = Skylake()
	bad.ThreadCounts = []int{999}
	if err := bad.Validate(); err == nil {
		t.Error("accepted thread count beyond hardware")
	}
}

func TestByName(t *testing.T) {
	if m, err := ByName("haswell"); err != nil || m.Name != "haswell" {
		t.Errorf("ByName(haswell) = %v, %v", m, err)
	}
	if _, err := ByName("epyc"); err == nil {
		t.Error("ByName invented a machine")
	}
}

func TestRAPLClampsAndReads(t *testing.T) {
	r := NewRAPL(Skylake())
	if err := r.SetPowerLimit(-3); err == nil {
		t.Error("accepted negative limit")
	}
	if err := r.SetPowerLimit(10); err != nil {
		t.Fatal(err)
	}
	if got := r.PowerLimit(); got != 75 {
		t.Errorf("clamped limit = %g, want MinPower 75", got)
	}
	if err := r.SetPowerLimit(500); err != nil {
		t.Fatal(err)
	}
	if got := r.PowerLimit(); got != 150 {
		t.Errorf("clamped limit = %g, want TDP 150", got)
	}
	r.ClearPowerLimit()
	if got := r.PowerLimit(); got != 150 {
		t.Errorf("uncapped limit = %g, want TDP", got)
	}
}

func TestRAPLEnergyCounterWraps(t *testing.T) {
	r := NewRAPL(Haswell())
	before := r.EnergyStatus()
	r.AccumulateEnergy(100) // 100 J
	after := r.EnergyStatus()
	got := EnergyDelta(before, after)
	if math.Abs(got-100) > 0.01 {
		t.Errorf("energy delta = %g, want 100", got)
	}
	// Force a wrap: push the counter near 2³².
	big := float64(1<<32) * EnergyUnitJ * 0.999
	r.AccumulateEnergy(big)
	b2 := r.EnergyStatus()
	r.AccumulateEnergy(50)
	a2 := r.EnergyStatus()
	if a2 > b2 {
		// Depending on position it may not wrap; force again.
		r.AccumulateEnergy(big)
		b2 = r.EnergyStatus()
		r.AccumulateEnergy(50)
		a2 = r.EnergyStatus()
	}
	if d := EnergyDelta(b2, a2); math.Abs(d-50) > 0.01 {
		t.Errorf("wrapped delta = %g, want 50", d)
	}
}

func TestVariorumFacade(t *testing.T) {
	v := NewVariorum(Haswell())
	if err := v.CapBestEffortNodePowerLimit(60); err != nil {
		t.Fatal(err)
	}
	if got := v.RAPL().PowerLimit(); got != 60 {
		t.Errorf("limit = %g", got)
	}
	minW, tdp := v.PowerEnvelope()
	if minW != 40 || tdp != 85 {
		t.Errorf("envelope = [%g, %g]", minW, tdp)
	}
	if s := v.PrintPowerLimit(); s == "" {
		t.Error("empty print")
	}
	if err := v.CapBestEffortNodePowerLimit(-1); err == nil {
		t.Error("accepted negative cap")
	}
}

// Property: FreqAtCap never returns a frequency whose (unthrottled) power
// exceeds the cap by more than the FMin floor allows.
func TestQuickFreqAtCapSound(t *testing.T) {
	f := func(seed uint64) bool {
		m := Machines()[int(seed%2)]
		n := 1 + int(seed>>2)%m.NumHWThreads()
		capW := m.MinPower + float64(seed%97)/96*(m.TDP-m.MinPower)
		fq, th := m.FreqAtCap(n, capW)
		if th < 1 {
			return fq == m.FMin
		}
		return m.Power(n, fq) <= capW*1.001 || fq == m.FMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
