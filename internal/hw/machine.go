// Package hw models the paper's two experimental systems — a dual-socket
// 32-core Intel Skylake (Xeon Gold 6142) and a dual-socket 16-core Haswell
// (Xeon E5-2630 v3) — at the fidelity the tuning problem needs: package
// power as a function of active cores and frequency, a RAPL-style power
// capping interface that solves for the highest sustainable frequency
// under a cap, shared-memory-bandwidth saturation, a three-level cache
// hierarchy, and SMT.
//
// The analytic power model is the classic static + dynamic split:
//
//	P(n, f) = Σ_sockets P_uncore + n·(P_static + c·f³)
//
// with the cubic frequency term standing in for the joint
// voltage-frequency scaling of DVFS. Calibrated so that all cores at base
// frequency draw approximately TDP, matching the nameplate numbers of the
// paper's testbeds.
package hw

import (
	"fmt"
	"math"
)

// Machine describes one simulated system.
type Machine struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int // SMT ways

	// Frequency envelope in GHz.
	FMin, FBase, FMax float64

	// Power model parameters in watts (per socket for uncore, per core
	// otherwise). UncoreIdle is the draw of a socket with no active cores.
	TDP        float64
	MinPower   float64
	Uncore     float64
	UncoreIdle float64
	CoreStatic float64
	CoreIdle   float64
	// DynCoeff is c in P_dyn = c·f³ (watts at f in GHz).
	DynCoeff float64

	// Compute throughput per core per cycle.
	FlopsPerCycle  float64
	IntOpsPerCycle float64
	LoadsPerCycle  float64

	// Memory system.
	MemBWGBs       float64 // total sustained DRAM bandwidth, all sockets
	MemBWSingleGBs float64 // bandwidth one thread can draw
	L2PerCoreKB    int
	L3PerSocketMB  int

	// SMTBoost is the total-throughput multiplier a core gets from running
	// two memory-stalled threads (1.0 = SMT useless, compute-bound limit).
	SMTBoost float64

	// Fork/join overhead model: microseconds at FBase for a parallel
	// region, affine in the team size.
	ForkBaseUS    float64
	ForkPerThread float64

	// PowerLimits are the RAPL cap levels of the paper's Table I.
	PowerLimits []float64
	// ThreadCounts are the tunable team sizes of Table I.
	ThreadCounts []int
}

// NumCores returns the physical core count.
func (m *Machine) NumCores() int { return m.Sockets * m.CoresPerSocket }

// NumHWThreads returns the hardware thread count (the default OpenMP team
// size, i.e. what OMP_NUM_THREADS defaults to).
func (m *Machine) NumHWThreads() int { return m.NumCores() * m.ThreadsPerCore }

// L3TotalBytes returns the total last-level cache capacity.
func (m *Machine) L3TotalBytes() int64 {
	return int64(m.Sockets) * int64(m.L3PerSocketMB) << 20
}

// L2TotalBytes returns the total L2 capacity.
func (m *Machine) L2TotalBytes() int64 {
	return int64(m.NumCores()) * int64(m.L2PerCoreKB) << 10
}

// activeTopology returns physical cores and sockets engaged by a team of
// n software threads (threads pack cores first, then SMT siblings;
// cores spread across sockets round-robin as libgomp/libomp pinning does
// with a spread policy).
func (m *Machine) activeTopology(threads int) (cores, sockets int) {
	if threads <= 0 {
		return 0, 0
	}
	cores = threads
	if cores > m.NumCores() {
		cores = m.NumCores()
	}
	sockets = m.Sockets
	perSocket := (cores + m.Sockets - 1) / m.Sockets
	if cores <= m.CoresPerSocket/2 {
		// Small teams stay on one socket (first-touch locality).
		sockets = 1
		perSocket = cores
	}
	_ = perSocket
	return cores, sockets
}

// Power returns package power in watts with n software threads running at
// frequency f (GHz).
func (m *Machine) Power(threads int, f float64) float64 {
	cores, sockets := m.activeTopology(threads)
	idleSockets := m.Sockets - sockets
	idleCores := m.NumCores() - cores
	p := float64(sockets)*m.Uncore + float64(idleSockets)*m.UncoreIdle
	p += float64(cores) * (m.CoreStatic + m.DynCoeff*f*f*f)
	p += float64(idleCores) * m.CoreIdle
	return p
}

// FreqAtCap returns the highest frequency in [FMin, FMax] whose package
// power with n threads stays within capW, plus a throttle factor in (0,1]
// applied to throughput when even FMin exceeds the cap (RAPL duty-cycle
// clamping).
func (m *Machine) FreqAtCap(threads int, capW float64) (f float64, throttle float64) {
	cores, sockets := m.activeTopology(threads)
	idleSockets := m.Sockets - sockets
	idleCores := m.NumCores() - cores
	static := float64(sockets)*m.Uncore + float64(idleSockets)*m.UncoreIdle +
		float64(cores)*m.CoreStatic + float64(idleCores)*m.CoreIdle
	dynBudget := capW - static
	den := float64(cores) * m.DynCoeff
	if den <= 0 {
		return m.FBase, 1
	}
	f = math.Cbrt(dynBudget / den)
	switch {
	case dynBudget <= 0 || f < m.FMin:
		// Even the minimum frequency busts the cap: RAPL falls back to
		// duty-cycle clamping, which is superlinearly expensive (idle
		// windows stall the pipeline and the memory system beyond the
		// pure power ratio), hence the squared penalty.
		pmin := m.Power(threads, m.FMin)
		ratio := capW / pmin
		return m.FMin, math.Max(0.05, ratio*ratio)
	case f > m.FMax:
		return m.FMax, 1
	}
	return f, 1
}

// TurboFreq returns the sustained frequency with n threads and no cap
// beyond TDP (all-core turbo limited by the TDP budget).
func (m *Machine) TurboFreq(threads int) float64 {
	f, _ := m.FreqAtCap(threads, m.TDP)
	return f
}

// Validate checks internal consistency of the machine description.
func (m *Machine) Validate() error {
	switch {
	case m.Sockets <= 0 || m.CoresPerSocket <= 0 || m.ThreadsPerCore <= 0:
		return fmt.Errorf("hw: %s: bad topology", m.Name)
	case m.FMin <= 0 || m.FMin > m.FBase || m.FBase > m.FMax:
		return fmt.Errorf("hw: %s: bad frequency envelope", m.Name)
	case m.MinPower >= m.TDP:
		return fmt.Errorf("hw: %s: MinPower >= TDP", m.Name)
	case m.DynCoeff <= 0 || m.MemBWGBs <= 0:
		return fmt.Errorf("hw: %s: bad power/memory parameters", m.Name)
	case len(m.PowerLimits) == 0 || len(m.ThreadCounts) == 0:
		return fmt.Errorf("hw: %s: missing tuning levels", m.Name)
	}
	for _, l := range m.PowerLimits {
		if l < m.MinPower || l > m.TDP {
			return fmt.Errorf("hw: %s: power limit %gW outside [%g, %g]", m.Name, l, m.MinPower, m.TDP)
		}
	}
	for _, t := range m.ThreadCounts {
		if t < 1 || t > m.NumHWThreads() {
			return fmt.Errorf("hw: %s: thread count %d outside [1, %d]", m.Name, t, m.NumHWThreads())
		}
	}
	return nil
}

// Skylake returns the paper's 32-core dual-socket Intel Xeon Gold 6142
// system (75–150 W package power envelope).
func Skylake() *Machine {
	m := &Machine{
		Name:           "skylake",
		Sockets:        2,
		CoresPerSocket: 16,
		ThreadsPerCore: 2,
		FMin:           1.2,
		FBase:          2.6,
		FMax:           3.7,
		TDP:            150,
		MinPower:       75,
		Uncore:         14,
		UncoreIdle:     7,
		CoreStatic:     1.4,
		CoreIdle:       0.25,
		DynCoeff:       0.160,
		FlopsPerCycle:  4,
		IntOpsPerCycle: 4,
		LoadsPerCycle:  2,
		MemBWGBs:       205,
		MemBWSingleGBs: 13,
		L2PerCoreKB:    1024,
		L3PerSocketMB:  22,
		SMTBoost:       1.22,
		ForkBaseUS:     3.5,
		ForkPerThread:  0.28,
		PowerLimits:    []float64{75, 100, 120, 150},
		ThreadCounts:   []int{1, 4, 8, 16, 32, 64},
	}
	return m
}

// Haswell returns the paper's 16-core dual-socket Intel Xeon E5-2630 v3
// system (40–85 W package power envelope).
func Haswell() *Machine {
	m := &Machine{
		Name:           "haswell",
		Sockets:        2,
		CoresPerSocket: 8,
		ThreadsPerCore: 2,
		FMin:           1.4,
		FBase:          2.4,
		FMax:           3.2,
		TDP:            85,
		MinPower:       40,
		Uncore:         9,
		UncoreIdle:     4.5,
		CoreStatic:     1.25,
		CoreIdle:       0.2,
		DynCoeff:       0.205,
		FlopsPerCycle:  4,
		IntOpsPerCycle: 4,
		LoadsPerCycle:  2,
		MemBWGBs:       110,
		MemBWSingleGBs: 11,
		L2PerCoreKB:    256,
		L3PerSocketMB:  20,
		SMTBoost:       1.20,
		ForkBaseUS:     4.0,
		ForkPerThread:  0.35,
		PowerLimits:    []float64{40, 60, 70, 85},
		ThreadCounts:   []int{1, 2, 4, 8, 16, 32},
	}
	return m
}

// Machines returns the experimental systems in paper order.
func Machines() []*Machine { return []*Machine{Skylake(), Haswell()} }

// ByName returns the machine named name, or an error.
func ByName(name string) (*Machine, error) {
	for _, m := range Machines() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("hw: unknown machine %q", name)
}
