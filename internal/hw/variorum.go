package hw

import "fmt"

// Variorum mirrors the slice of LLNL Variorum's API the paper uses: a
// vendor-neutral façade over RAPL for capping package power and reading
// the power envelope. The tuners talk to this interface rather than RAPL
// directly, exactly as the paper's harness does.
type Variorum struct {
	rapl *RAPL
}

// NewVariorum wraps a machine in the Variorum façade.
func NewVariorum(m *Machine) *Variorum { return &Variorum{rapl: NewRAPL(m)} }

// RAPL exposes the underlying interface for energy accounting.
func (v *Variorum) RAPL() *RAPL { return v.rapl }

// CapBestEffortNodePowerLimit applies a node-level cap, mirroring
// variorum_cap_best_effort_node_power_limit. Out-of-envelope requests are
// clamped rather than rejected (best effort).
func (v *Variorum) CapBestEffortNodePowerLimit(watts float64) error {
	if err := v.rapl.SetPowerLimit(watts); err != nil {
		return fmt.Errorf("variorum: %w", err)
	}
	return nil
}

// PrintPowerLimit returns a human-readable dump of the power domain state,
// mirroring variorum_print_power_limit.
func (v *Variorum) PrintPowerLimit() string {
	m := v.rapl.Machine()
	return fmt.Sprintf("_PACKAGE_POWER_LIMIT host=%s limit=%gW envelope=[%g, %g]W",
		m.Name, v.rapl.PowerLimit(), m.MinPower, m.TDP)
}

// PowerEnvelope returns the valid cap range, mirroring the
// variorum_get_node_power_domain_info query.
func (v *Variorum) PowerEnvelope() (minW, tdpW float64) {
	m := v.rapl.Machine()
	return m.MinPower, m.TDP
}
