package hw

import (
	"fmt"
	"sync"
)

// RAPL emulates Intel's Running Average Power Limit interface for a
// simulated machine: a package power-limit register and a wrapping
// 32-bit energy-status counter in energy units of 61 µJ (the common
// ENERGY_UNIT on server parts), as exposed through MSRs.
type RAPL struct {
	mu sync.Mutex
	m  *Machine
	// limitW is the active package power cap; 0 means uncapped (TDP).
	limitW float64
	// energyRaw is the MSR_PKG_ENERGY_STATUS counter (wraps at 2³²).
	energyRaw uint64
}

// EnergyUnitJ is the joules-per-count granularity of the energy counter.
const EnergyUnitJ = 61e-6

// NewRAPL creates the RAPL interface for machine m, uncapped.
func NewRAPL(m *Machine) *RAPL { return &RAPL{m: m} }

// Machine returns the underlying machine.
func (r *RAPL) Machine() *Machine { return r.m }

// SetPowerLimit programs the package cap in watts. Values are clamped to
// the hardware envelope [MinPower, TDP], as firmware does.
func (r *RAPL) SetPowerLimit(watts float64) error {
	if watts <= 0 {
		return fmt.Errorf("rapl: non-positive power limit %g", watts)
	}
	if watts < r.m.MinPower {
		watts = r.m.MinPower
	}
	if watts > r.m.TDP {
		watts = r.m.TDP
	}
	r.mu.Lock()
	r.limitW = watts
	r.mu.Unlock()
	return nil
}

// ClearPowerLimit removes the cap (limit returns to TDP).
func (r *RAPL) ClearPowerLimit() {
	r.mu.Lock()
	r.limitW = 0
	r.mu.Unlock()
}

// PowerLimit returns the active cap in watts (TDP when uncapped).
func (r *RAPL) PowerLimit() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limitW == 0 {
		return r.m.TDP
	}
	return r.limitW
}

// AccumulateEnergy adds joules to the package energy counter, emulating
// consumption observed by the hardware meter.
func (r *RAPL) AccumulateEnergy(joules float64) {
	if joules < 0 {
		return
	}
	counts := uint64(joules / EnergyUnitJ)
	r.mu.Lock()
	r.energyRaw = (r.energyRaw + counts) & 0xFFFFFFFF
	r.mu.Unlock()
}

// EnergyStatus returns the raw wrapping counter, as MSR 0x611 would.
func (r *RAPL) EnergyStatus() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.energyRaw
}

// EnergyDelta converts two counter readings (possibly wrapped once) into
// joules, the way PAPI's RAPL component does.
func EnergyDelta(before, after uint64) float64 {
	d := (after - before) & 0xFFFFFFFF
	return float64(d) * EnergyUnitJ
}

// FreqAtCap resolves the sustained frequency and throttle factor for a
// team of n threads under the active limit.
func (r *RAPL) FreqAtCap(threads int) (f, throttle float64) {
	return r.m.FreqAtCap(threads, r.PowerLimit())
}
