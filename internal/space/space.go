// Package space defines the paper's Table I search space: four power
// limits per machine crossed with 126 OpenMP runtime configurations
// (6 thread counts × 3 schedules × 7 chunk sizes) plus the default OpenMP
// configuration, for 504 + 4 = 508 valid points per machine.
package space

import (
	"fmt"
	"math"

	"pnptuner/internal/hw"
	"pnptuner/internal/omp"
)

// Chunks are the tunable chunk sizes of Table I.
var Chunks = []int64{1, 8, 32, 64, 128, 256, 512}

// Schedules are the tunable scheduling policies of Table I.
var Schedules = []omp.Schedule{omp.ScheduleStatic, omp.ScheduleDynamic, omp.ScheduleGuided}

// Space is the instantiated search space for one machine.
type Space struct {
	M *hw.Machine
	// Configs are the per-cap OpenMP configurations: the 126-point grid
	// followed by the default configuration (index NumConfigs-1).
	Configs []omp.Config
}

// New builds the Table I space for machine m.
func New(m *hw.Machine) *Space {
	s := &Space{M: m}
	for _, t := range m.ThreadCounts {
		for _, sched := range Schedules {
			for _, c := range Chunks {
				s.Configs = append(s.Configs, omp.Config{Threads: t, Sched: sched, Chunk: c})
			}
		}
	}
	s.Configs = append(s.Configs, omp.DefaultConfig(m))
	return s
}

// NumConfigs returns the per-cap configuration count (grid + default).
func (s *Space) NumConfigs() int { return len(s.Configs) }

// DefaultIndex returns the index of the default configuration.
func (s *Space) DefaultIndex() int { return len(s.Configs) - 1 }

// Caps returns the machine's power limits (Table I rows).
func (s *Space) Caps() []float64 { return s.M.PowerLimits }

// NumJoint returns the joint (cap × config) space size; 508 on both of
// the paper's machines.
func (s *Space) NumJoint() int { return len(s.Caps()) * s.NumConfigs() }

// JointIndex encodes (capIdx, cfgIdx) into a joint label.
func (s *Space) JointIndex(capIdx, cfgIdx int) int {
	return capIdx*s.NumConfigs() + cfgIdx
}

// SplitJoint decodes a joint label into (capIdx, cfgIdx).
func (s *Space) SplitJoint(joint int) (capIdx, cfgIdx int) {
	return joint / s.NumConfigs(), joint % s.NumConfigs()
}

// At returns the (cap, config) pair of a joint label.
func (s *Space) At(joint int) (capW float64, cfg omp.Config) {
	ci, ki := s.SplitJoint(joint)
	return s.Caps()[ci], s.Configs[ki]
}

// ConfigIndex returns the per-cap index of cfg, inverting Configs —
// how external tooling (serving requests, trace replay) maps a concrete
// OpenMP configuration back into the search space.
func (s *Space) ConfigIndex(cfg omp.Config) (int, error) {
	for i, c := range s.Configs {
		if c == cfg {
			return i, nil
		}
	}
	return 0, fmt.Errorf("space: %s is not a Table I configuration on %s", cfg, s.M.Name)
}

// CapIndex returns the index of capW in the machine's power limits.
func (s *Space) CapIndex(capW float64) (int, error) {
	for i, c := range s.Caps() {
		if c == capW {
			return i, nil
		}
	}
	return 0, fmt.Errorf("space: %gW is not a %s power limit", capW, s.M.Name)
}

// ConfigFeatures returns a normalized numeric encoding of configuration
// cfgIdx, used by the baseline tuners' surrogate models: log-threads,
// schedule one-hot, log-chunk, and a default flag.
func (s *Space) ConfigFeatures(cfgIdx int) []float64 {
	cfg := s.Configs[cfgIdx]
	f := make([]float64, 7)
	f[0] = log2f(float64(cfg.Threads)) / log2f(float64(s.M.NumHWThreads()))
	switch cfg.Sched {
	case omp.ScheduleStatic:
		f[1] = 1
	case omp.ScheduleDynamic:
		f[2] = 1
	case omp.ScheduleGuided:
		f[3] = 1
	}
	chunk := cfg.Chunk
	if chunk <= 0 {
		f[5] = 1 // default (block) chunking
		chunk = 1
	}
	f[4] = log2f(float64(chunk)) / log2f(512)
	if cfgIdx == s.DefaultIndex() {
		f[6] = 1
	}
	return f
}

func log2f(x float64) float64 {
	if x <= 1 {
		return 0.0001
	}
	return math.Log2(x)
}
