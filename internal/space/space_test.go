package space

import (
	"testing"
	"testing/quick"

	"pnptuner/internal/hw"
	"pnptuner/internal/omp"
)

func TestTableISizes(t *testing.T) {
	for _, m := range hw.Machines() {
		s := New(m)
		if got := s.NumConfigs(); got != 127 {
			t.Errorf("%s: configs = %d, want 127 (126 grid + default)", m.Name, got)
		}
		if got := s.NumJoint(); got != 508 {
			t.Errorf("%s: joint = %d, want 508", m.Name, got)
		}
		if len(s.Caps()) != 4 {
			t.Errorf("%s: caps = %d, want 4", m.Name, len(s.Caps()))
		}
	}
}

func TestDefaultIsLast(t *testing.T) {
	m := hw.Skylake()
	s := New(m)
	def := s.Configs[s.DefaultIndex()]
	want := omp.DefaultConfig(m)
	if def != want {
		t.Fatalf("default config = %v, want %v", def, want)
	}
}

func TestGridCoversTableI(t *testing.T) {
	s := New(hw.Haswell())
	seen := map[string]bool{}
	for _, c := range s.Configs[:s.NumConfigs()-1] {
		seen[c.String()] = true
	}
	if len(seen) != 126 {
		t.Fatalf("grid has %d distinct configs, want 126", len(seen))
	}
	for _, want := range []omp.Config{
		{Threads: 1, Sched: omp.ScheduleStatic, Chunk: 1},
		{Threads: 32, Sched: omp.ScheduleGuided, Chunk: 512},
		{Threads: 8, Sched: omp.ScheduleDynamic, Chunk: 64},
	} {
		if !seen[want.String()] {
			t.Errorf("grid missing %v", want)
		}
	}
}

func TestJointIndexRoundTrip(t *testing.T) {
	s := New(hw.Skylake())
	f := func(seed uint64) bool {
		j := int(seed) % s.NumJoint()
		if j < 0 {
			j = -j
		}
		ci, ki := s.SplitJoint(j)
		return s.JointIndex(ci, ki) == j && ci < len(s.Caps()) && ki < s.NumConfigs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConfigIndexRoundTrip is the index ↔ omp.Config round-trip
// property: every valid index maps to a configuration that maps back to
// the same index, on both machines.
func TestQuickConfigIndexRoundTrip(t *testing.T) {
	spaces := []*Space{New(hw.Haswell()), New(hw.Skylake())}
	f := func(seed uint64) bool {
		s := spaces[seed%2]
		i := int((seed >> 8) % uint64(s.NumConfigs()))
		cfg := s.Configs[i]
		j, err := s.ConfigIndex(cfg)
		return err == nil && j == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestConfigIndexRejectsForeignConfig pins the inverse's error path.
func TestConfigIndexRejectsForeignConfig(t *testing.T) {
	s := New(hw.Haswell())
	if _, err := s.ConfigIndex(omp.Config{Threads: 5, Sched: omp.ScheduleStatic, Chunk: 3}); err == nil {
		t.Fatal("ConfigIndex accepted a configuration outside Table I")
	}
	// The default configuration (chunk 0) must resolve to DefaultIndex,
	// not a grid point.
	def := omp.DefaultConfig(hw.Haswell())
	if i, err := s.ConfigIndex(def); err != nil || i != s.DefaultIndex() {
		t.Fatalf("ConfigIndex(default) = %d, %v; want %d", i, err, s.DefaultIndex())
	}
}

func TestAtResolvesCapAndConfig(t *testing.T) {
	s := New(hw.Haswell())
	j := s.JointIndex(2, 5)
	capW, cfg := s.At(j)
	if capW != 70 {
		t.Errorf("cap = %g, want 70", capW)
	}
	if cfg != s.Configs[5] {
		t.Errorf("cfg = %v", cfg)
	}
}

func TestCapIndex(t *testing.T) {
	s := New(hw.Skylake())
	if i, err := s.CapIndex(120); err != nil || i != 2 {
		t.Errorf("CapIndex(120) = %d, %v", i, err)
	}
	if _, err := s.CapIndex(99); err == nil {
		t.Error("CapIndex accepted a non-Table-I cap")
	}
}

func TestConfigFeaturesDistinct(t *testing.T) {
	s := New(hw.Skylake())
	seen := map[[7]float64]int{}
	for i := range s.Configs {
		f := s.ConfigFeatures(i)
		var key [7]float64
		copy(key[:], f)
		if prev, dup := seen[key]; dup {
			t.Fatalf("configs %d and %d share features %v", prev, i, f)
		}
		seen[key] = i
		for _, v := range f {
			if v < 0 || v > 1.0001 {
				t.Fatalf("feature out of [0,1]: %v", f)
			}
		}
	}
}
