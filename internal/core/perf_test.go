package core

// Parity and allocation-regression tests for the compile-once graph
// pipeline (ISSUE 3): the compiled/merged path must be bit-identical to
// the rebuild-from-edge-lists path on real corpus graphs, ScoreAll must
// be bit-identical to the per-config 1-row loop it replaces, and the
// steady-state training step and prediction sweep must stay within their
// allocation budgets (≥5× below the pre-compile-once baseline of ~15.5k
// allocs per training epoch and ~370 per sweep).

import (
	"testing"

	"pnptuner/internal/dataset"
	"pnptuner/internal/hw"
	"pnptuner/internal/kernels"
	"pnptuner/internal/programl"
	"pnptuner/internal/rgcn"
	"pnptuner/internal/tensor"
)

// TestCompiledPipelineMatchesRawBatch: encoding corpus regions through
// the compile-once pipeline (cached CompiledGraph artifacts merged by
// plan-copy) is bit-identical to encoding a batch rebuilt from the raw
// graphs' edge lists.
func TestCompiledPipelineMatchesRawBatch(t *testing.T) {
	c := kernels.MustCompile()
	cfg := testConfig()
	m := NewModel(cfg, c.Vocab.Size(), 1, 16)
	regions := c.Regions[:12]
	graphs := make([]*programl.Graph, len(regions))
	for i, r := range regions {
		graphs[i] = r.Graph
	}
	ref := m.Enc.ForwardBatch(rgcn.NewBatch(graphs, nil)).Clone()
	got := m.Enc.ForwardBatch(m.Batch(regions))
	if ref.Rows != got.Rows || ref.Cols != got.Cols {
		t.Fatalf("shape %dx%d vs %dx%d", ref.Rows, ref.Cols, got.Rows, got.Cols)
	}
	for i := range ref.Data {
		if ref.Data[i] != got.Data[i] {
			t.Fatalf("pooled bit-drift at %d: %g vs %g", i, ref.Data[i], got.Data[i])
		}
	}
}

// TestScoreAllMatchesPerConfigLoop: scoring every candidate extras row in
// one assembled matrix pass is bit-identical to the per-candidate loop of
// Assemble + 1-row Logits calls it replaces.
func TestScoreAllMatchesPerConfigLoop(t *testing.T) {
	d := dataset.MustBuild(hw.Haswell())
	cfg := testConfig()
	cfg.UseCounters = true
	cfg.UseCapFeature = true
	m := NewModel(cfg, d.Corpus.Vocab.Size(), 1, d.Space.NumConfigs())
	rd := d.Regions[3]

	// Candidate sweep: one extras row per power cap (the cap-conditioned
	// prediction profile), plus a duplicate to exercise repeated rows.
	var exs [][]float64
	for _, capW := range d.Space.Caps() {
		exs = append(exs, extras(cfg, rd.Counters, capW/d.Machine.TDP))
	}
	exs = append(exs, exs[0])

	pooled := m.Enc.Forward(rd.Region, m.Adjacency(rd.Region))
	// Reference: per-config 1-row head passes, copied out before the next
	// pass reuses the head buffers.
	ref := make([][]float64, len(exs))
	for i, ex := range exs {
		logits := m.Logits(m.Assemble(pooled, ex), 0)
		row := make([]float64, logits.Cols)
		copy(row, logits.Row(0))
		ref[i] = row
	}
	got := m.ScoreAll(pooled, exs, 0)
	if got.Rows != len(exs) || got.Cols != d.Space.NumConfigs() {
		t.Fatalf("ScoreAll shape %dx%d", got.Rows, got.Cols)
	}
	for i, row := range ref {
		for c, v := range row {
			if got.At(i, c) != v {
				t.Fatalf("candidate %d class %d: ScoreAll %g vs per-config %g", i, c, got.At(i, c), v)
			}
		}
	}
}

// pinWorkers serializes the kernel pool for the duration of an
// allocation measurement: goroutine spawns inside ParallelFor would
// otherwise count against the budget on multi-core machines.
func pinWorkers(t *testing.T) {
	t.Helper()
	restore := tensor.SetWorkerCap(1)
	t.Cleanup(restore)
}

// TestTrainStepAllocsRegression bounds the steady-state allocations of a
// full training epoch (every minibatch of the corpus). The pre-ISSUE-3
// path allocated ~15.5k times per epoch; the compiled pipeline with
// epoch-persistent arenas must stay ≥5× below that.
func TestTrainStepAllocsRegression(t *testing.T) {
	pinWorkers(t)
	d := dataset.MustBuild(hw.Haswell())
	cfg := testConfig()
	cfg.Epochs = 1
	m := NewModel(cfg, d.Corpus.Vocab.Size(), len(d.Space.Caps()), d.Space.NumConfigs())
	samples := powerSamples(d, d.Regions, cfg)
	m.Fit(samples) // reach buffer high-water marks
	per := testing.AllocsPerRun(3, func() { m.Fit(samples) })
	// Measured ~960 at the time of writing (optimizer state and the
	// deterministic reduction scratch dominate); budget leaves headroom
	// while staying ~10× under the old path.
	if per > 1500 {
		t.Fatalf("training epoch allocates %.0f times, budget 1500 (pre-compile-once: ~15500)", per)
	}
}

// TestPredictSweepAllocsRegression bounds the allocations of a full
// prediction sweep (every corpus region scored across every per-cap
// head). The pre-ISSUE-3 path allocated ~370 times per sweep.
func TestPredictSweepAllocsRegression(t *testing.T) {
	pinWorkers(t)
	d := dataset.MustBuild(hw.Haswell())
	cfg := testConfig()
	cfg.Epochs = 1
	m := NewModel(cfg, d.Corpus.Vocab.Size(), len(d.Space.Caps()), d.Space.NumConfigs())
	m.Fit(powerSamples(d, d.Regions, cfg))
	PredictPower(d, m, d.Regions) // warm buffers
	per := testing.AllocsPerRun(5, func() { PredictPower(d, m, d.Regions) })
	// Measured 7 at the time of writing (result map + flat picks + the
	// two encode scratch slices); budget leaves headroom while staying
	// ~10× under the old path.
	if per > 40 {
		t.Fatalf("prediction sweep allocates %.0f times, budget 40 (pre-compile-once: ~370)", per)
	}
}

// TestServingPathCompiledParity: the serving path (PredictCompiled over
// precompiled wire graphs) picks exactly what PredictGraphs picks over
// the same raw graphs.
func TestServingPathCompiledParity(t *testing.T) {
	c := kernels.MustCompile()
	cfg := testConfig()
	m := NewModel(cfg, c.Vocab.Size(), 3, 32)
	graphs := []*programl.Graph{c.Regions[0].Graph, c.Regions[5].Graph, c.Regions[9].Graph}
	ref := m.PredictGraphs(graphs, nil)
	cgs := make([]*rgcn.CompiledGraph, len(graphs))
	for i, g := range graphs {
		cgs[i] = rgcn.CompileGraph(g)
	}
	got := m.PredictCompiled(cgs, nil)
	for i := range ref {
		for h := range ref[i] {
			if ref[i][h] != got[i][h] {
				t.Fatalf("graph %d head %d: raw %d vs compiled %d", i, h, ref[i][h], got[i][h])
			}
		}
	}
}
