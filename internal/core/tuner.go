package core

import (
	"pnptuner/internal/autotune"
	"pnptuner/internal/dataset"
	"pnptuner/internal/kernels"
	"pnptuner/internal/nn"
	"pnptuner/internal/papi"
	"pnptuner/internal/tensor"
)

// extras assembles the extra-feature vector for a region under cfg.
func extras(cfg ModelConfig, counters papi.Counters, capNorm float64) []float64 {
	var out []float64
	if cfg.UseCounters {
		f := counters.Features()
		out = append(out, f[:]...)
	}
	if cfg.UseCapFeature {
		out = append(out, capNorm)
	}
	return out
}

// PowerResult is a trained scenario-1 model plus its held-out predictions.
type PowerResult struct {
	Model *Model
	Stats TrainStats
	// Pred maps region ID → per-cap predicted config index.
	Pred map[string][]int
}

// TrainPower trains the scenario-1 model (best config per power cap) on a
// LOOCV fold: one classifier head per cap over the per-cap configuration
// space, shared graph encoder.
func TrainPower(d *dataset.Dataset, fold dataset.Fold, cfg ModelConfig) *PowerResult {
	nCaps := len(d.Space.Caps())
	m := NewModel(cfg, d.Corpus.Vocab.Size(), nCaps, d.Space.NumConfigs())
	samples := powerSamples(d, fold.Train, cfg)
	stats := m.Fit(samples)
	return &PowerResult{Model: m, Stats: stats, Pred: predictPower(d, m, cfg, fold.Val)}
}

// TransferPower trains a scenario-1 model for d reusing a source model's
// encoder (the Haswell→Skylake trick of §IV-B): encoder weights are
// restored and frozen; only the dense heads train.
func TransferPower(src *Model, d *dataset.Dataset, fold dataset.Fold, cfg ModelConfig) (*PowerResult, error) {
	nCaps := len(d.Space.Caps())
	m := NewModel(cfg, d.Corpus.Vocab.Size(), nCaps, d.Space.NumConfigs())
	if _, err := m.RestoreEncoder(src.EncoderCheckpoint()); err != nil {
		return nil, err
	}
	samples := powerSamples(d, fold.Train, cfg)
	stats := m.FitFrozen(samples)
	return &PowerResult{Model: m, Stats: stats, Pred: predictPower(d, m, cfg, fold.Val)}, nil
}

// softTargets builds the near-optimal label distribution: p ∝ (best/v)^γ
// for entries within 20% of the best value (values are times or EDPs;
// lower is better). Returns nil when soft labels are disabled.
func softTargets(cfg ModelConfig, values func(int) float64, n int, best float64) []float64 {
	if !cfg.SoftLabels {
		return nil
	}
	gamma := cfg.SoftGamma
	if gamma <= 0 {
		gamma = 24
	}
	p := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		r := best / values(i)
		if r >= 0.8 {
			w := pow(r, gamma)
			p[i] = w
			sum += w
		}
	}
	if sum <= 0 {
		return nil
	}
	inv := 1 / sum
	for i := range p {
		p[i] *= inv
	}
	return p
}

// pow is a fast integer-ish power for the soft-label sharpening exponent.
func pow(x, g float64) float64 {
	r := 1.0
	for g >= 1 {
		r *= x
		g--
	}
	return r
}

// PowerSamples builds the scenario-1 training set for the given regions:
// one sample per region, one case per power cap (head). Exported so
// benchmarks and serving-side retraining can assemble the same set
// TrainPower trains on.
func PowerSamples(d *dataset.Dataset, train []*dataset.RegionData, cfg ModelConfig) []Sample {
	return powerSamples(d, train, cfg)
}

func powerSamples(d *dataset.Dataset, train []*dataset.RegionData, cfg ModelConfig) []Sample {
	samples := make([]Sample, 0, len(train))
	for _, rd := range train {
		s := Sample{Region: rd.Region}
		ex := extras(cfg, rd.Counters, 0)
		for h, lbl := range rd.BestTimeCfg {
			// Labels and soft targets read the same objective the engine
			// searches and the figures report.
			obj := autotune.TimeUnderCap{Cap: h}
			soft := softTargets(cfg, func(i int) float64 { return obj.Value(rd, d.Space, i) },
				d.Space.NumConfigs(), obj.Value(rd, d.Space, lbl))
			s.Cases = append(s.Cases, Case{Extras: ex, Head: h, Label: lbl, Soft: soft})
		}
		samples = append(samples, s)
	}
	return samples
}

// encodeRegions batch-encodes the regions of val with their per-region
// extra features: row i of the result feeds the heads for val[i].
func encodeRegions(m *Model, cfg ModelConfig, val []*dataset.RegionData, capNorm float64) *tensor.Matrix {
	regions := make([]*kernels.Region, len(val))
	exs := make([][]float64, len(val))
	for i, rd := range val {
		regions[i] = rd.Region
		exs[i] = extras(cfg, rd.Counters, capNorm)
	}
	return m.EncodeBatch(regions, exs)
}

// predictPower scores every validation region in one batched encoder pass,
// then reads each head's argmax row-wise. Per-region pick slices share one
// flat backing array, so a full sweep costs a handful of allocations.
func predictPower(d *dataset.Dataset, m *Model, cfg ModelConfig, val []*dataset.RegionData) map[string][]int {
	pred := make(map[string][]int, len(val))
	if len(val) == 0 {
		return pred
	}
	enc := encodeRegions(m, cfg, val, 0)
	nCaps := len(d.Space.Caps())
	flat := make([]int, len(val)*nCaps)
	for i, rd := range val {
		pred[rd.Region.ID] = flat[i*nCaps : (i+1)*nCaps]
	}
	for h := 0; h < nCaps; h++ {
		logits := m.Logits(enc, h)
		for i := range val {
			flat[i*nCaps+h] = nn.Argmax(logits, i)
		}
	}
	return pred
}

// PredictPower scores validation regions with an already-trained
// scenario-1 model (e.g. one restored by LoadModel), returning per-region
// per-cap config picks — the train-once/predict-many path.
func PredictPower(d *dataset.Dataset, m *Model, val []*dataset.RegionData) map[string][]int {
	return predictPower(d, m, m.Cfg, val)
}

// PredictEDP scores validation regions with an already-trained scenario-2
// model, returning per-region joint (cap, config) picks.
func PredictEDP(d *dataset.Dataset, m *Model, val []*dataset.RegionData) map[string]int {
	pred := make(map[string]int, len(val))
	if len(val) == 0 {
		return pred
	}
	logits := m.Logits(encodeRegions(m, m.Cfg, val, 0), 0)
	for i, rd := range val {
		pred[rd.Region.ID] = nn.Argmax(logits, i)
	}
	return pred
}

// EDPResult is a trained scenario-2 model plus its held-out predictions.
type EDPResult struct {
	Model *Model
	Stats TrainStats
	// Pred maps region ID → predicted joint (cap, config) index.
	Pred map[string]int
}

// TrainEDP trains the scenario-2 model: a single classifier over the
// joint 508-point (power cap × OpenMP configuration) space targeting the
// minimum energy-delay product.
func TrainEDP(d *dataset.Dataset, fold dataset.Fold, cfg ModelConfig) *EDPResult {
	m := NewModel(cfg, d.Corpus.Vocab.Size(), 1, d.Space.NumJoint())
	stats := m.Fit(EDPSamples(d, fold.Train, cfg))
	return &EDPResult{Model: m, Stats: stats, Pred: PredictEDP(d, m, fold.Val)}
}

// EDPSamples builds the scenario-2 training set for the given regions:
// one single-head joint-label case per region. Exported (like
// PowerSamples) so serving-side retraining assembles the same set
// TrainEDP trains on — against a sample-refined dataset, the labels and
// soft targets shift with the measured grid.
func EDPSamples(d *dataset.Dataset, train []*dataset.RegionData, cfg ModelConfig) []Sample {
	obj := autotune.EDP{}
	samples := make([]Sample, 0, len(train))
	for _, rd := range train {
		soft := softTargets(cfg, func(j int) float64 { return obj.Value(rd, d.Space, j) },
			d.Space.NumJoint(), rd.BestEDP(d.Space))
		samples = append(samples, Sample{
			Region: rd.Region,
			Cases:  []Case{{Extras: extras(cfg, rd.Counters, 0), Head: 0, Label: rd.BestEDPJoint, Soft: soft}},
		})
	}
	return samples
}

// UnseenCapResult is a cap-conditioned model evaluated at a power
// constraint excluded from training (Figs. 4–5).
type UnseenCapResult struct {
	Model *Model
	Stats TrainStats
	// Pred maps region ID → predicted config index at the unseen cap.
	Pred map[string]int
}

// TrainUnseenCap trains the cap-conditioned variant: counters and the
// normalized power cap join the feature set, a single head classifies the
// per-cap configuration space, and every measurement at the target cap is
// excluded from training (in addition to the LOOCV holdout).
func TrainUnseenCap(d *dataset.Dataset, fold dataset.Fold, targetCapIdx int, cfg ModelConfig) *UnseenCapResult {
	cfg.UseCounters = true
	cfg.UseCapFeature = true
	m := NewModel(cfg, d.Corpus.Vocab.Size(), 1, d.Space.NumConfigs())

	caps := d.Space.Caps()
	tdp := d.Machine.TDP
	var samples []Sample
	for _, rd := range fold.Train {
		s := Sample{Region: rd.Region}
		for ci := range caps {
			if ci == targetCapIdx {
				continue
			}
			obj := autotune.TimeUnderCap{Cap: ci}
			soft := softTargets(cfg, func(i int) float64 { return obj.Value(rd, d.Space, i) },
				d.Space.NumConfigs(), obj.Value(rd, d.Space, rd.BestTimeCfg[ci]))
			s.Cases = append(s.Cases, Case{
				Extras: extras(cfg, rd.Counters, caps[ci]/tdp),
				Head:   0,
				Label:  rd.BestTimeCfg[ci],
				Soft:   soft,
			})
		}
		samples = append(samples, s)
	}
	stats := m.Fit(samples)

	pred := make(map[string]int, len(fold.Val))
	if len(fold.Val) > 0 {
		logits := m.Logits(encodeRegions(m, cfg, fold.Val, caps[targetCapIdx]/tdp), 0)
		for i, rd := range fold.Val {
			pred[rd.Region.ID] = nn.Argmax(logits, i)
		}
	}
	return &UnseenCapResult{Model: m, Stats: stats, Pred: pred}
}

// PredictTopK returns head h's k highest-scoring classes for region r,
// best first. It powers the hybrid tuning mode: the static model proposes
// k candidates and a handful of validation executions picks the winner,
// trading the paper's zero-execution property for extra headroom — an
// extension the paper's Discussion suggests ("limiting the number of
// sampling runs").
func (m *Model) PredictTopK(r *kernels.Region, extraFeats []float64, h, k int) []int {
	pooled := m.Enc.Forward(r, m.Adjacency(r))
	logits := m.ScoreAll(pooled, [][]float64{extraFeats}, h)
	return nn.TopK(logits, 0, k)
}

// Strategy wraps the trained model as an autotune.Strategy for one
// region: a shortlist of head h's top-k predictions, best-first. With a
// zero engine budget it is the paper's zero-execution static scenario
// (Best is the top-1 prediction); under a small budget it is the hybrid
// GNN-predict-then-search scenario (the engine measures the shortlist
// and the best measured candidate wins).
func (m *Model) Strategy(r *kernels.Region, extraFeats []float64, h, k int) autotune.Strategy {
	return autotune.NewShortlist(m.PredictTopK(r, extraFeats, h, k))
}

// TopKPower returns, per validation region and cap, the model's k
// highest-scoring config indices (best first) from one batched encoder
// pass — the proposal shortlists hybrid tuning sessions refine by
// measurement.
func TopKPower(d *dataset.Dataset, m *Model, val []*dataset.RegionData, k int) map[string][][]int {
	out := make(map[string][][]int, len(val))
	if len(val) == 0 {
		return out
	}
	enc := encodeRegions(m, m.Cfg, val, 0)
	nCaps := len(d.Space.Caps())
	lists := make([][][]int, len(val))
	for i, rd := range val {
		lists[i] = make([][]int, nCaps)
		out[rd.Region.ID] = lists[i]
	}
	for h := 0; h < nCaps; h++ {
		logits := m.Logits(enc, h)
		for i := range val {
			lists[i][h] = nn.TopK(logits, i, k)
		}
	}
	return out
}

// TopKEDP returns, per validation region, the scenario-2 model's k
// highest-scoring joint (cap, config) labels, best first, from one
// batched encoder pass.
func TopKEDP(d *dataset.Dataset, m *Model, val []*dataset.RegionData, k int) map[string][]int {
	out := make(map[string][]int, len(val))
	if len(val) == 0 {
		return out
	}
	logits := m.Logits(encodeRegions(m, m.Cfg, val, 0), 0)
	for i, rd := range val {
		out[rd.Region.ID] = nn.TopK(logits, i, k)
	}
	return out
}

// HybridPower picks, per validation region and cap, the best of the
// model's top-k candidates by measuring them through a noise-free engine
// session (k executions per cap instead of BLISS's 20 per region). All
// validation regions encode in one batched pass; only the per-(region,
// cap) refinement runs through the engine.
func HybridPower(d *dataset.Dataset, res *PowerResult, fold dataset.Fold, k int) map[string][]int {
	topk := TopKPower(d, res.Model, fold.Val, k)
	out := make(map[string][]int, len(fold.Val))
	nCaps := len(d.Space.Caps())
	for _, rd := range fold.Val {
		picks := make([]int, nCaps)
		for ci := range picks {
			p := autotune.Problem{
				Obj:    autotune.TimeUnderCap{Cap: ci},
				Space:  d.Space,
				Budget: k,
				Seed:   rd.Region.Seed,
			}
			eval := autotune.NewOracle(rd, d.Space, p.Obj)
			picks[ci] = autotune.Run(p, eval, autotune.NewShortlist(topk[rd.Region.ID][ci])).Best
		}
		out[rd.Region.ID] = picks
	}
	return out
}

// RefineEDPWithCounters is the §IV-C analogue of RefineWithCounters:
// regions whose static EDP prediction falls below a normalized-improvement
// threshold are re-predicted with the dynamic-feature model.
func RefineEDPWithCounters(d *dataset.Dataset, fold dataset.Fold, staticPred map[string]int,
	threshold float64, cfg ModelConfig) map[string]int {

	cfg.UseCounters = true
	dyn := TrainEDP(d, fold, cfg)
	merged := make(map[string]int, len(staticPred))
	for _, rd := range fold.Val {
		pick := staticPred[rd.Region.ID]
		ci, ki := d.Space.SplitJoint(pick)
		best := rd.BestEDP(d.Space)
		got := rd.Results[ci][ki].EDP()
		if best/got < threshold {
			pick = dyn.Pred[rd.Region.ID]
		}
		merged[rd.Region.ID] = pick
	}
	return merged
}

// RefineWithCounters mirrors the paper's §IV-B refinement: regions whose
// static prediction falls below a normalized-speedup threshold are
// re-predicted with the dynamic-feature model. It returns the merged
// per-cap predictions.
func RefineWithCounters(d *dataset.Dataset, fold dataset.Fold, staticPred map[string][]int,
	threshold float64, cfg ModelConfig) map[string][]int {

	cfg.UseCounters = true
	dyn := TrainPower(d, fold, cfg)
	merged := make(map[string][]int, len(staticPred))
	for _, rd := range fold.Val {
		static := staticPred[rd.Region.ID]
		out := make([]int, len(static))
		copy(out, static)
		for ci := range static {
			best := rd.BestTime(ci)
			got := rd.Results[ci][static[ci]].TimeSec
			if best/got < threshold {
				out[ci] = dyn.Pred[rd.Region.ID][ci]
			}
		}
		merged[rd.Region.ID] = out
	}
	return merged
}
